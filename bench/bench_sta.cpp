/// \file bench_sta.cpp
/// Incremental-STA engine bench: measures what the persistent engine buys
/// over from-scratch rebuilds, and checks the exact min-period solve
/// against the legacy bisection. Three parts, each an A/B with asserted
/// value equality (the speedup only counts if the answers match bit for
/// bit):
///
///  A. Per-edit micro: the same resize sequence timed against (a) a fresh
///     Sta per edit and (b) one persistent engine fed applyResize +
///     invalidateNets, asserting the post-edit WNS values are identical.
///  B. Min-period: exact single-sweep findMinPeriod vs the 40-iteration
///     findMinPeriodBisect, caches busted between reps, values within
///     1e-12.
///  C. Opt-stage headline: optimizeForMaxFrequency with
///     OptimizerOptions::incrementalSta off/on over copies of the same
///     placed tile, asserting the final netlists hash-identical and the
///     min periods equal, and recording the wall-clock speedup. The full
///     run uses the paper's large-cache tile and enforces the >= 3x
///     acceptance bound; --smoke runs the tiny tile and writes
///     BENCH_sta_smoke.json for the checked-in-baseline diff in
///     scripts/quickcheck.sh.

#include <chrono>
#include <cmath>
#include <cstring>

#include "bench_common.hpp"
#include "db/codec.hpp"
#include "opt/optimizer.hpp"

namespace {

using namespace m3d;
using namespace m3d::bench;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Same reduced tile as the determinism/serve/hpwl smoke tests.
TileConfig tinyTile() {
  TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

/// A placed, unoptimized tile (the state the pre-route opt stage sees):
/// place + CTS only, no opt stages, no routing-dependent steps needed.
FlowOutput placedTile(const TileConfig& cfg) {
  FlowOptions fopt;
  fopt.preRouteOpt = false;
  fopt.postRouteOpt = false;
  fopt.signoff = false;
  return runFlowMacro3D(cfg, fopt);
}

/// Nets whose pin caps change when \p inst changes size.
std::vector<NetId> inputNetsOf(const Netlist& nl, InstId inst) {
  std::vector<NetId> out;
  const CellType& c = nl.cellOf(inst);
  for (std::size_t p = 0; p < c.pins.size(); ++p) {
    if (c.pins[p].dir != PinDir::kInput) continue;
    const NetId n = nl.instance(inst).pinNets[p];
    if (n != kInvalidId) out.push_back(n);
  }
  return out;
}

/// Deterministic resize sequence: every sizable cell in instance order,
/// alternating up/down so the netlist never saturates. Returns the edited
/// instances (at most \p maxEdits).
std::vector<InstId> pickEdits(const Netlist& nl, int maxEdits) {
  std::vector<InstId> edits;
  const Library& lib = nl.library();
  for (InstId i = 0; i < nl.numInstances() && static_cast<int>(edits.size()) < maxEdits; ++i) {
    const CellType& c = nl.cellOf(i);
    if (c.isMacro() || c.cls == CellClass::kFiller || c.family.empty()) continue;
    const bool up = (edits.size() % 2) == 0;
    const CellTypeId next =
        up ? lib.nextSizeUp(nl.instance(i).type) : lib.nextSizeDown(nl.instance(i).type);
    if (next == kInvalidCellType) continue;
    edits.push_back(i);
  }
  return edits;
}

/// Applies edit \p k of the sequence to \p nl and refreshes parasitics;
/// mirrors into \p sta when non-null. Returns the resize target.
void applyEdit(Netlist& nl, std::vector<NetParasitics>& paras, ParasiticsProvider& provider,
               InstId inst, bool up, Sta* sta) {
  const Library& lib = nl.library();
  const CellTypeId next =
      up ? lib.nextSizeUp(nl.instance(inst).type) : lib.nextSizeDown(nl.instance(inst).type);
  if (next == kInvalidCellType) return;
  nl.resize(inst, next);
  if (sta != nullptr) sta->applyResize(inst);
  const std::vector<NetId> dirty = inputNetsOf(nl, inst);
  provider.refresh(nl, dirty, paras);
  if (sta != nullptr) sta->invalidateNets(dirty);
}

struct MicroResult {
  double fullWallS = 0.0;
  double incrWallS = 0.0;
  std::vector<double> fullWns;
  std::vector<double> incrWns;
};

/// Part A: per-edit WNS probe cost, fresh-Sta-per-edit vs persistent.
MicroResult runEditMicro(const Netlist& base, const EstimationOptions& eopt, double period,
                         int maxEdits) {
  MicroResult r;
  const std::vector<InstId> edits = pickEdits(base, maxEdits);
  {
    Netlist nl = base;
    std::vector<NetParasitics> paras = estimateDesign(nl, eopt);
    EstimatedParasitics provider(eopt);
    const auto t0 = Clock::now();
    for (std::size_t k = 0; k < edits.size(); ++k) {
      applyEdit(nl, paras, provider, edits[k], (k % 2) == 0, nullptr);
      const Sta fresh(nl, paras, nullptr, kTypicalCorner, 1);
      r.fullWns.push_back(fresh.worstSlack(period));
    }
    r.fullWallS = secondsSince(t0);
  }
  {
    Netlist nl = base;
    std::vector<NetParasitics> paras = estimateDesign(nl, eopt);
    EstimatedParasitics provider(eopt);
    const auto t0 = Clock::now();
    Sta sta(nl, paras, nullptr, kTypicalCorner, 1);
    for (std::size_t k = 0; k < edits.size(); ++k) {
      applyEdit(nl, paras, provider, edits[k], (k % 2) == 0, &sta);
      r.incrWns.push_back(sta.worstSlack(period));
    }
    r.incrWallS = secondsSince(t0);
  }
  return r;
}

struct OptResult {
  double wallS = 0.0;
  double minPeriod = 0.0;
  std::uint64_t netlistHash = 0;
  int cellsResized = 0;
  int buffersInserted = 0;
};

/// Part C: the max-frequency opt recipe with the persistent engine off/on.
OptResult runOpt(const Netlist& base, const EstimationOptions& eopt, bool incremental,
                 int rounds, int maxPasses) {
  Netlist nl = base;
  std::vector<NetParasitics> paras = estimateDesign(nl, eopt);
  EstimatedParasitics provider(eopt);
  OptimizerOptions oo;
  oo.numThreads = 1;
  oo.maxPasses = maxPasses;
  oo.incrementalSta = incremental;
  const auto t0 = Clock::now();
  const MaxFreqOptResult res = optimizeForMaxFrequency(nl, paras, provider, nullptr, oo, rounds);
  OptResult r;
  r.wallS = secondsSince(t0);
  r.minPeriod = res.minPeriod;
  r.netlistHash = db::hashNetlist(nl);
  r.cellsResized = res.cellsResized;
  r.buffersInserted = res.buffersInserted;
  return r;
}

int runBench(bool smoke) {
  const TileConfig cfg =
      smoke ? tinyTile() : maybeShrink(makeLargeCacheTileConfig());
  BenchJson bj(smoke ? "sta_smoke" : "sta");
  bj.config("tile", cfg.name);

  std::printf("bench_sta: placing tile '%s'...\n", cfg.name.c_str());
  const FlowOutput placed = placedTile(cfg);
  const Netlist& base = placed.tile->netlist;
  const EstimationOptions eopt = makeEstimationOptions(placed.routingBeol);
  std::printf("bench_sta: %d instances, %d nets\n", base.numInstances(), base.numNets());

  bool ok = true;
  const double period = 1.5e-9;

  // --- A. per-edit micro --------------------------------------------------
  const int maxEdits = smoke ? 60 : 400;
  const MicroResult micro = runEditMicro(base, eopt, period, maxEdits);
  for (std::size_t k = 0; k < micro.fullWns.size(); ++k) {
    if (micro.fullWns[k] != micro.incrWns[k]) {
      std::printf("FAIL: edit %zu WNS mismatch: full %.17g vs incr %.17g\n", k,
                  micro.fullWns[k], micro.incrWns[k]);
      ok = false;
    }
  }
  const double editSpeedup = micro.incrWallS > 0.0 ? micro.fullWallS / micro.incrWallS : 0.0;
  std::printf("edit micro (%zu edits): full %.3f s, incr %.3f s (%.1fx)\n",
              micro.fullWns.size(), micro.fullWallS, micro.incrWallS, editSpeedup);
  bj.scalar("edit_count", static_cast<double>(micro.fullWns.size()));
  bj.scalar("edit_full_wall_s", micro.fullWallS);
  bj.scalar("edit_incr_wall_s", micro.incrWallS);
  bj.scalar("edit_speedup", editSpeedup);

  // --- B. min-period: exact vs bisection ----------------------------------
  {
    std::vector<NetParasitics> paras = estimateDesign(base, eopt);
    Sta sta(base, paras, nullptr, kTypicalCorner, 1);
    const int reps = smoke ? 5 : 20;
    double exact = 0.0;
    double bisect = 0.0;
    const auto tExact = Clock::now();
    for (int i = 0; i < reps; ++i) {
      sta.invalidateAllNets();  // bust the arrival caches each rep
      exact = sta.findMinPeriod();
    }
    const double exactWallS = secondsSince(tExact);
    const auto tBisect = Clock::now();
    for (int i = 0; i < reps; ++i) {
      sta.invalidateAllNets();
      bisect = sta.findMinPeriodBisect();
    }
    const double bisectWallS = secondsSince(tBisect);
    if (std::abs(exact - bisect) > 1e-12) {
      std::printf("FAIL: min-period mismatch: exact %.17g vs bisect %.17g\n", exact, bisect);
      ok = false;
    }
    const double speedup = exactWallS > 0.0 ? bisectWallS / exactWallS : 0.0;
    std::printf("min-period (%d reps): exact %.4f s, bisect %.4f s (%.1fx), T=%.1f ps\n", reps,
                exactWallS, bisectWallS, speedup, exact * 1e12);
    bj.scalar("min_period_ps", exact * 1e12);
    bj.scalar("minp_exact_wall_s", exactWallS);
    bj.scalar("minp_bisect_wall_s", bisectWallS);
    bj.scalar("minp_speedup", speedup);
  }

  // --- C. opt-stage headline ----------------------------------------------
  const int rounds = smoke ? 2 : 4;
  const int maxPasses = smoke ? 6 : 20;
  const OptResult legacy = runOpt(base, eopt, /*incremental=*/false, rounds, maxPasses);
  const OptResult incr = runOpt(base, eopt, /*incremental=*/true, rounds, maxPasses);
  const bool hashMatch =
      legacy.netlistHash == incr.netlistHash && legacy.minPeriod == incr.minPeriod &&
      legacy.cellsResized == incr.cellsResized && legacy.buffersInserted == incr.buffersInserted;
  if (!hashMatch) {
    std::printf("FAIL: incremental opt diverged: hash %016llx vs %016llx, T %.17g vs %.17g\n",
                static_cast<unsigned long long>(legacy.netlistHash),
                static_cast<unsigned long long>(incr.netlistHash), legacy.minPeriod,
                incr.minPeriod);
    ok = false;
  }
  const double optSpeedup = incr.wallS > 0.0 ? legacy.wallS / incr.wallS : 0.0;
  std::printf(
      "opt stage (%d rounds x %d passes): legacy %.3f s, incremental %.3f s (%.2fx), "
      "T=%.1f ps, %d resized, %d buffers, hash %s\n",
      rounds, maxPasses, legacy.wallS, incr.wallS, optSpeedup, incr.minPeriod * 1e12,
      incr.cellsResized, incr.buffersInserted, hashMatch ? "match" : "MISMATCH");
  bj.scalar("hash_match", hashMatch ? 1.0 : 0.0);
  bj.scalar("opt_min_period_ps", incr.minPeriod * 1e12);
  bj.scalar("opt_cells_resized", static_cast<double>(incr.cellsResized));
  bj.scalar("opt_buffers_inserted", static_cast<double>(incr.buffersInserted));
  bj.scalar("opt_legacy_wall_s", legacy.wallS);
  bj.scalar("opt_incr_wall_s", incr.wallS);
  bj.scalar("opt_speedup", optSpeedup);

  // The acceptance bound holds on the real (large) tile; the smoke tile is
  // too small for the rebuild cost to dominate, so there the bench only
  // gates on value equality.
  if (!smoke && !fastMode() && optSpeedup < 3.0) {
    std::printf("FAIL: opt-stage speedup %.2fx below the 3x acceptance bound\n", optSpeedup);
    ok = false;
  }

  const std::string path = bj.write();
  std::printf("wrote %s\n%s\n", path.c_str(), ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return runBench(smoke);
}
