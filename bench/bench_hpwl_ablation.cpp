/// \file bench_hpwl_ablation.cpp
/// Two HPWL studies sharing one binary:
///
/// 1. Paper Sec. I scaling claim (default mode): F2F stacking shrinks each
///    die dimension by sqrt(2), reducing the maximum half-perimeter
///    wirelength by "almost 30%". We verify both the analytic bound and the
///    measured placed-HPWL / routed-wirelength reductions of the case study.
///
/// 2. Placement-engine ablation (default + --smoke): the quadratic B2B +
///    diffusion engine vs the analytic ePlace-style engine
///    (PlacerOptions::engine), on both paper tile configs: placed HPWL,
///    place-stage density overflow, post-route overflow and wall-clock.
///    --smoke runs the tiny tile with both engines, asserts the analytic
///    engine wins HPWL and post-route overflow within 1.5x the B2B
///    wall-clock, and writes BENCH_hpwl_ablation_smoke.json for the
///    checked-in-baseline diff in scripts/quickcheck.sh.

#include <chrono>
#include <cmath>
#include <cstring>

#include "bench_common.hpp"

namespace {

using namespace m3d;
using namespace m3d::bench;

/// Same reduced tile as the determinism/serve smoke tests: big enough for a
/// non-trivial placement, small enough for a sub-minute double flow.
TileConfig tinyTile() {
  TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

struct EngineRun {
  DesignMetrics metrics;
  double wallMs = 0.0;
};

/// One Macro-3D flow with the given placement engine. Signoff is skipped:
/// the ablation compares place/route QoR, and verification adds identical
/// cost to both sides.
EngineRun runEngine(const TileConfig& tile, PlaceEngine engine, bool fast) {
  FlowOptions opt;
  opt.placer.engine = engine;
  opt.signoff = false;
  if (fast) {
    opt.maxFreqRounds = 2;
    opt.optBase.maxPasses = 6;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const FlowOutput out = runFlowMacro3D(tile, opt);
  EngineRun r;
  r.metrics = out.metrics;
  r.wallMs = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                 .count();
  return r;
}

/// Emits the per-engine scalars under "<label>." and a table row.
void recordEngine(BenchJson& bj, Table& t, const std::string& label, const std::string& tile,
                  const char* engine, const EngineRun& r) {
  bj.scalar(label + ".place_hpwl_mm", r.metrics.placeHpwlMm);
  bj.scalar(label + ".place_overflow", r.metrics.placeOverflow);
  bj.scalar(label + ".route_overflowed_edges", static_cast<double>(r.metrics.overflowedEdges));
  bj.scalar(label + ".unrouted_nets", static_cast<double>(r.metrics.unroutedNets));
  bj.scalar(label + ".wall_ms", r.wallMs);
  t.addRow({tile, engine, Table::num(r.metrics.placeHpwlMm, 3),
            Table::num(r.metrics.placeOverflow, 4),
            std::to_string(r.metrics.overflowedEdges), std::to_string(r.metrics.unroutedNets),
            Table::num(r.wallMs / 1000.0, 2) + " s"});
}

double pctNum(double ours, double base) {
  return base == 0.0 ? 0.0 : (ours - base) / base * 100.0;
}

/// Compares analytic vs B2B on one tile; returns false when the analytic
/// engine misses an acceptance bound (HPWL, post-route overflow, wall).
bool compareEngines(const std::string& tileLabel, const EngineRun& b2b, const EngineRun& ana,
                    bool enforce) {
  const double hpwlDelta = pctNum(ana.metrics.placeHpwlMm, b2b.metrics.placeHpwlMm);
  const double wallRatio = b2b.wallMs > 0.0 ? ana.wallMs / b2b.wallMs : 1.0;
  std::printf("%s: analytic vs b2b: hpwl %+.1f%%, route overflow %d vs %d, wall %.2fx\n",
              tileLabel.c_str(), hpwlDelta, ana.metrics.overflowedEdges,
              b2b.metrics.overflowedEdges, wallRatio);
  if (!enforce) return true;
  bool ok = true;
  if (ana.metrics.placeHpwlMm >= b2b.metrics.placeHpwlMm) {
    std::printf("FAIL(%s): analytic HPWL %.3f mm did not beat b2b %.3f mm\n", tileLabel.c_str(),
                ana.metrics.placeHpwlMm, b2b.metrics.placeHpwlMm);
    ok = false;
  }
  if (ana.metrics.overflowedEdges > b2b.metrics.overflowedEdges) {
    std::printf("FAIL(%s): analytic post-route overflow %d worse than b2b %d\n",
                tileLabel.c_str(), ana.metrics.overflowedEdges, b2b.metrics.overflowedEdges);
    ok = false;
  }
  if (ana.metrics.unroutedNets > b2b.metrics.unroutedNets) {
    std::printf("FAIL(%s): analytic left %d nets unrouted vs b2b %d\n", tileLabel.c_str(),
                ana.metrics.unroutedNets, b2b.metrics.unroutedNets);
    ok = false;
  }
  // 250 ms absolute slack absorbs scheduler noise on sub-second smoke runs
  // (the gate runs inside a parallel ctest); a real blow-up still trips it.
  if (ana.wallMs > 1.5 * b2b.wallMs + 250.0) {
    std::printf("FAIL(%s): analytic wall %.0f ms exceeds 1.5x b2b %.0f ms\n", tileLabel.c_str(),
                ana.wallMs, b2b.wallMs);
    ok = false;
  }
  return ok;
}

int runSmoke() {
  BenchJson bj("hpwl_ablation_smoke");
  const TileConfig tile = tinyTile();
  bj.config("tile", tile.name);
  Table t("Placement-engine ablation (tiny tile, smoke)");
  t.setHeader({"tile", "engine", "place HPWL", "overflow", "route ovfl", "unrouted", "wall"});

  const EngineRun b2b = runEngine(tile, PlaceEngine::kB2B, /*fast=*/true);
  const EngineRun ana = runEngine(tile, PlaceEngine::kAnalytic, /*fast=*/true);
  recordEngine(bj, t, "b2b_tiny", tile.name, "b2b", b2b);
  recordEngine(bj, t, "analytic_tiny", tile.name, "analytic", ana);
  std::cout << t.str() << "\n";

  const bool ok = compareEngines("tiny", b2b, ana, /*enforce=*/true);
  bj.scalar("analytic_beats_b2b", ok ? 1.0 : 0.0);
  bj.write();
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int runFull() {
  std::cout << "HPWL ablation bench" << (fastMode() ? " (FAST mode)" : "") << "\n\n";

  const TileConfig cfg = smallTile();
  BenchJson bj("hpwl_ablation");
  bj.config("tile", cfg.name);
  const FlowOutput d2 = runFlow2D(cfg);
  const FlowOutput m3 = runFlowMacro3D(cfg);
  bj.addFlow("2D", d2.metrics);
  bj.addFlow("Macro-3D", m3.metrics);

  const double analytic = (1.0 - 1.0 / std::sqrt(2.0)) * 100.0;
  bj.scalar("analytic_shrink_pct", analytic);

  Table t("Sec. I claim: sqrt(2) footprint shrink cuts max HPWL by ~30%");
  t.setHeader({"quantity", "paper/analytic", "measured"});
  t.addRow({"per-side shrink", "29.3%",
            pct(dbuToUm(m3.fp.die.width()), dbuToUm(d2.fp.die.width()))});
  t.addRow({"max HPWL (die half-perimeter)", "-29.3%",
            pct(dbuToUm(m3.fp.die.halfPerimeter()), dbuToUm(d2.fp.die.halfPerimeter()))});
  t.addRow({"placed HPWL", "(design dependent)",
            pct(m3.metrics.placeHpwlMm, d2.metrics.placeHpwlMm)});
  t.addRow({"routed wirelength", "-11.8% (paper Table II)",
            pct(m3.metrics.totalWirelengthM, d2.metrics.totalWirelengthM)});
  t.addRow({"critical-path wirelength", "-63.0% (paper Table II)",
            pct(m3.metrics.critPathWirelengthMm, d2.metrics.critPathWirelengthMm)});
  std::cout << t.str() << "\n";
  std::cout << "analytic per-side shrink = " << Table::num(analytic, 1) << "%\n";

  // The measured placed-HPWL reduction must fall between the analytic die
  // shrink applied to boundary-limited nets and zero (local nets do not
  // shrink); report where it lands.
  const double measured =
      (d2.metrics.placeHpwlMm - m3.metrics.placeHpwlMm) / d2.metrics.placeHpwlMm * 100.0;
  std::cout << "measured placed-HPWL reduction = " << Table::num(measured, 1)
            << "% (expected between 0% and ~29.3%+macro-adjacency bonus)" << std::endl;
  bj.scalar("measured_hpwl_reduction_pct", measured);

  // Engine ablation on both paper tile configs: B2B + diffusion vs the
  // analytic ePlace-style engine through the full Macro-3D flow.
  std::cout << "\nPlacement-engine ablation (Macro-3D flow, both tile configs)\n";
  Table et("B2B vs analytic placement engine");
  et.setHeader({"tile", "engine", "place HPWL", "overflow", "route ovfl", "unrouted", "wall"});
  bool allOk = true;
  const TileConfig tiles[] = {smallTile(), largeTile()};
  const char* labels[] = {"small", "large"};
  for (int i = 0; i < 2; ++i) {
    const EngineRun b2b = runEngine(tiles[i], PlaceEngine::kB2B, /*fast=*/false);
    const EngineRun ana = runEngine(tiles[i], PlaceEngine::kAnalytic, /*fast=*/false);
    recordEngine(bj, et, std::string("b2b_") + labels[i], tiles[i].name, "b2b", b2b);
    recordEngine(bj, et, std::string("analytic_") + labels[i], tiles[i].name, "analytic", ana);
    allOk = compareEngines(labels[i], b2b, ana, /*enforce=*/true) && allOk;
  }
  std::cout << et.str() << "\n";
  bj.scalar("analytic_beats_b2b", allOk ? 1.0 : 0.0);
  bj.write();
  if (!allOk) {
    std::printf("FAIL: analytic engine missed an acceptance bound (see above)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return smoke ? runSmoke() : runFull();
}
