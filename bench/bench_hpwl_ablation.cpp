/// \file bench_hpwl_ablation.cpp
/// Reproduces the paper's Sec. I scaling claim: F2F stacking shrinks each
/// die dimension by sqrt(2), reducing the maximum half-perimeter wirelength
/// by "almost 30%". We verify both the analytic bound and the measured
/// placed-HPWL / routed-wirelength reductions of the case study.

#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace m3d;
  using namespace m3d::bench;

  std::cout << "HPWL ablation bench" << (fastMode() ? " (FAST mode)" : "") << "\n\n";

  const TileConfig cfg = smallTile();
  BenchJson bj("hpwl_ablation");
  bj.config("tile", cfg.name);
  const FlowOutput d2 = runFlow2D(cfg);
  const FlowOutput m3 = runFlowMacro3D(cfg);
  bj.addFlow("2D", d2.metrics);
  bj.addFlow("Macro-3D", m3.metrics);

  const double analytic = (1.0 - 1.0 / std::sqrt(2.0)) * 100.0;
  bj.scalar("analytic_shrink_pct", analytic);

  Table t("Sec. I claim: sqrt(2) footprint shrink cuts max HPWL by ~30%");
  t.setHeader({"quantity", "paper/analytic", "measured"});
  t.addRow({"per-side shrink", "29.3%",
            pct(dbuToUm(m3.fp.die.width()), dbuToUm(d2.fp.die.width()))});
  t.addRow({"max HPWL (die half-perimeter)", "-29.3%",
            pct(dbuToUm(m3.fp.die.halfPerimeter()), dbuToUm(d2.fp.die.halfPerimeter()))});
  t.addRow({"placed HPWL", "(design dependent)",
            pct(m3.metrics.placeHpwlMm, d2.metrics.placeHpwlMm)});
  t.addRow({"routed wirelength", "-11.8% (paper Table II)",
            pct(m3.metrics.totalWirelengthM, d2.metrics.totalWirelengthM)});
  t.addRow({"critical-path wirelength", "-63.0% (paper Table II)",
            pct(m3.metrics.critPathWirelengthMm, d2.metrics.critPathWirelengthMm)});
  std::cout << t.str() << "\n";
  std::cout << "analytic per-side shrink = " << Table::num(analytic, 1) << "%\n";

  // The measured placed-HPWL reduction must fall between the analytic die
  // shrink applied to boundary-limited nets and zero (local nets do not
  // shrink); report where it lands.
  const double measured =
      (d2.metrics.placeHpwlMm - m3.metrics.placeHpwlMm) / d2.metrics.placeHpwlMm * 100.0;
  std::cout << "measured placed-HPWL reduction = " << Table::num(measured, 1)
            << "% (expected between 0% and ~29.3%+macro-adjacency bonus)" << std::endl;
  bj.scalar("measured_hpwl_reduction_pct", measured);
  bj.write();
  return 0;
}
