/// \file bench_route.cpp
/// Router search-kernel benchmark: measures the effect of the frozen
/// per-batch cost caches, the windowed A* with its deterministic fallback
/// ladder, and the monotone bucket open list against the pre-overhaul
/// configuration (recompute costs, full-grid search, binary heap).
///
/// Modes:
///  - default: runs the Macro-3D flow once on the OpenPiton small-cache
///    tile to obtain a real placed design, then re-routes it under four
///    kernel configurations, printing a table and writing BENCH_route.json
///    (wall-clock, nodes popped/relaxed, QoR per configuration plus
///    speedup scalars). M3D_FAST=1 shrinks the tile.
///  - --smoke: a synthetic scatter problem on a tiny grid; asserts that
///    windowed search pops strictly fewer nodes than the full-grid search
///    at equal-or-better QoR (the invariant quickcheck relies on) and
///    exits non-zero on violation. Writes BENCH_route_smoke.json so
///    quickcheck can diff two smoke runs with `m3d_report diff`. Used by
///    the `perf` ctest label.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/macro3d.hpp"
#include "lib/stdcell_factory.hpp"
#include "report/table.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"

namespace m3d {
namespace {

/// One kernel configuration under test.
struct KernelConfig {
  const char* label;
  bool costCache;
  int searchHaloGcells;  // < 0 = full grid
  bool bucketQueue;
};

/// Pre-overhaul baseline and the three cumulative kernel stages. The
/// windowed rows use the shipped default halo (RouterOptions's 1-gcell
/// halo): wider halos were measured to leave the window non-binding on the
/// benchmark tiles (same pops as full grid), while the tight halo both
/// prunes the search and lowers overflow by keeping negotiation local.
const KernelConfig kConfigs[] = {
    {"baseline (heap, full grid, no cache)", false, -1, false},
    {"+cost cache", true, -1, false},
    {"+windowed A*", true, 1, false},
    {"+bucket queue (default)", true, 1, true},
};

struct RunStats {
  double wallS = 0.0;
  RoutingResult routes;
};

RunStats routeOnce(const Netlist& nl, const Rect& die, const Beol& beol,
                   const RouteGridOptions& gridOpt, const KernelConfig& cfg,
                   const RouterOptions& base = RouterOptions{}, int reps = 1) {
  RouterOptions ropt = base;
  ropt.costCache = cfg.costCache;
  ropt.searchHaloGcells = cfg.searchHaloGcells;
  ropt.bucketQueue = cfg.bucketQueue;
  RunStats out;
  // Routing is deterministic, so repeats produce identical results; the
  // minimum wall time is the least noisy estimate.
  for (int rep = 0; rep < reps; ++rep) {
    RouteGrid grid(nl, die, beol, gridOpt);
    const auto t0 = std::chrono::steady_clock::now();
    RoutingResult r = routeDesign(nl, grid, ropt);
    const double wallS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (rep == 0 || wallS < out.wallS) out.wallS = wallS;
    if (rep == 0) out.routes = std::move(r);
  }
  return out;
}

/// Synthetic congested cluster: \p numNets random 2-4 pin nets packed into
/// the center band of a 200x200um die (50x50 gcells, 6 metals). With track
/// capacity derated hard (see runSmoke), negotiation inflates costs inside
/// the cluster and the full-grid search floods far outside the nets'
/// bounding boxes -- exactly the waste the windowed kernel removes.
struct ClusterProblem {
  ClusterProblem(int numNets, std::uint64_t seed)
      : tech(makeTech28(6)), lib(makeStdCellLib(tech)), nl(&lib) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> coord(70, 130);
    std::uniform_int_distribution<int> fanout(1, 3);
    int instances = 0;
    auto addInv = [&]() {
      const InstId i = nl.addInstance("i" + std::to_string(instances++), lib.findCell("INV_X1"));
      nl.instance(i).pos = Point{umToDbu(static_cast<double>(coord(rng))),
                                 umToDbu(static_cast<double>(coord(rng)))};
      return i;
    };
    for (int n = 0; n < numNets; ++n) {
      const InstId drv = addInv();
      const NetId net = nl.addNet("n" + std::to_string(n));
      nl.connect(net, drv, "Y");
      const int sinks = fanout(rng);
      for (int s = 0; s < sinks; ++s) nl.connect(net, addInv(), "A");
    }
  }

  TechNode tech;
  Library lib;
  Netlist nl;
  Rect die{0, 0, umToDbu(200), umToDbu(200)};
};

/// Returns true when \p ours is no worse than \p base on every QoR axis the
/// acceptance criteria name.
bool qorNoWorse(const RoutingResult& ours, const RoutingResult& base) {
  return ours.unroutedNets <= base.unroutedNets && ours.totalOverflow <= base.totalOverflow &&
         ours.f2fBumps <= base.f2fBumps;
}

/// Segment-level bit-identity (the determinism bar the scaling curve and the
/// partitioned smoke gate on).
bool routesIdentical(const RoutingResult& a, const RoutingResult& b) {
  if (a.nets.size() != b.nets.size()) return false;
  for (std::size_t n = 0; n < a.nets.size(); ++n) {
    if (a.nets[n].routed != b.nets[n].routed) return false;
    if (a.nets[n].segs.size() != b.nets[n].segs.size()) return false;
    for (std::size_t s = 0; s < a.nets[n].segs.size(); ++s) {
      const RouteSeg& x = a.nets[n].segs[s];
      const RouteSeg& y = b.nets[n].segs[s];
      if (!(x.isVia == y.isVia && x.layer == y.layer && x.fromNode == y.fromNode &&
            x.toNode == y.toNode)) {
        return false;
      }
    }
  }
  return a.nodesPopped == b.nodesPopped && a.nodesRelaxed == b.nodesRelaxed &&
         a.windowFallbacks == b.windowFallbacks && a.totalOverflow == b.totalOverflow;
}

int runSmoke() {
  // Constructed first so the emitted wall_s covers the whole smoke run.
  bench::BenchJson json("route_smoke");
  ClusterProblem prob(120, 1234);
  RouteGridOptions gridOpt;
  gridOpt.trackUtilization = 0.06;  // force hard negotiation inside the cluster
  gridOpt.m1Utilization = 0.05;
  RouterOptions base;
  base.maxIterations = 8;  // enough rounds for history costs to inflate g
  // halo=2 stresses the window logic (the congested searches would flood
  // well past the net bounding boxes without it); the widening ladder keeps
  // every net routable regardless.
  const KernelConfig fullGrid{"full grid", true, -1, true};
  const KernelConfig windowed{"windowed", true, 2, true};
  const RunStats full = routeOnce(prob.nl, prob.die, prob.tech.beol, gridOpt, fullGrid, base);
  const RunStats win = routeOnce(prob.nl, prob.die, prob.tech.beol, gridOpt, windowed, base);
  std::printf("route smoke: pops full-grid=%lld windowed=%lld fallbacks=%lld\n",
              static_cast<long long>(full.routes.nodesPopped),
              static_cast<long long>(win.routes.nodesPopped),
              static_cast<long long>(win.routes.windowFallbacks));
  std::printf("  full: iters=%d overflow=%lld unrouted=%d | win: iters=%d overflow=%lld "
              "unrouted=%d\n",
              full.routes.iterationsUsed, static_cast<long long>(full.routes.totalOverflow),
              full.routes.unroutedNets, win.routes.iterationsUsed,
              static_cast<long long>(win.routes.totalOverflow), win.routes.unroutedNets);
  if (win.routes.nodesPopped >= full.routes.nodesPopped) {
    std::printf("FAIL: windowed search did not reduce nodes popped\n");
    return 1;
  }
  if (!qorNoWorse(win.routes, full.routes)) {
    std::printf("FAIL: windowed QoR worse than full grid (unrouted %d vs %d, overflow %lld vs "
                "%lld)\n",
                win.routes.unroutedNets, full.routes.unroutedNets,
                static_cast<long long>(win.routes.totalOverflow),
                static_cast<long long>(full.routes.totalOverflow));
    return 1;
  }
  // Region-partitioned negotiation: the decomposition is a pure function of
  // the grid, so 1- and 2-thread runs must be bit-identical (segments AND
  // kernel counters). Gates the scaling path without needing real cores.
  const KernelConfig partCfg{"partitioned", true, 2, true};
  RouterOptions part1 = base;
  part1.regionSizeGcells = 8;
  part1.numThreads = 1;
  RouterOptions part2 = part1;
  part2.numThreads = 2;
  const RunStats p1 = routeOnce(prob.nl, prob.die, prob.tech.beol, gridOpt, partCfg, part1);
  const RunStats p2 = routeOnce(prob.nl, prob.die, prob.tech.beol, gridOpt, partCfg, part2);
  const bool partIdentical = routesIdentical(p1.routes, p2.routes);
  std::printf("  partitioned: regions=%d local=%lld cross=%lld bit-identical(1v2)=%s\n",
              p1.routes.regionCount, static_cast<long long>(p1.routes.regionLocalNets),
              static_cast<long long>(p1.routes.regionCrossNets), partIdentical ? "yes" : "NO");
  if (!partIdentical || p1.routes.regionCount <= 1 || !qorNoWorse(p1.routes, full.routes)) {
    std::printf("FAIL: partitioned negotiation broke determinism or QoR\n");
    return 1;
  }

  // ECO smoke: raise the top metal's track capacity (pitch/2) and reroute
  // incrementally off the previous result. Only nets sitting on *violated*
  // changed edges may rip (a capacity increase violates none), and the
  // reused majority must come through byte-identical. Uses the DEFAULT
  // capacity model (not the derated smoke grid) so the baseline converges
  // without leaning on the top metal.
  const RouteGridOptions ecoGridOpt;
  Beol ecoBeol = prob.tech.beol;
  ecoBeol.metal(ecoBeol.numMetals() - 1).pitch /= 2;
  RouteGrid ecoPrevGrid(prob.nl, prob.die, prob.tech.beol, ecoGridOpt);
  RoutingResult ecoPrev = routeDesign(prob.nl, ecoPrevGrid, part1);
  RouteGrid ecoGrid(prob.nl, prob.die, ecoBeol, ecoGridOpt);
  const RoutingResult eco = routeDesignEco(prob.nl, ecoGrid, ecoPrevGrid, ecoPrev, part1);
  std::printf("  eco: dirty_gcells=%lld ripped=%lld reused=%lld overflow=%lld\n",
              static_cast<long long>(eco.ecoDirtyGcells),
              static_cast<long long>(eco.ecoNetsRipped),
              static_cast<long long>(eco.ecoNetsReused),
              static_cast<long long>(eco.totalOverflow));
  if (eco.ecoDirtyGcells <= 0 || eco.ecoNetsReused <= 0 || eco.unroutedNets > 0) {
    std::printf("FAIL: eco reroute did not reuse work (or left nets unrouted)\n");
    return 1;
  }

  // Machine-readable result for the quickcheck self-consistency smoke:
  // two smoke runs diffed by `m3d_report diff` must come out clean.
  json.config("problem", "cluster-120");
  json.scalar("pops_full", static_cast<double>(full.routes.nodesPopped));
  json.scalar("pops_windowed", static_cast<double>(win.routes.nodesPopped));
  json.scalar("window_fallbacks", static_cast<double>(win.routes.windowFallbacks));
  json.scalar("total_overflow", static_cast<double>(win.routes.totalOverflow));
  json.scalar("unrouted_nets", static_cast<double>(win.routes.unroutedNets));
  json.scalar("f2f_bumps", static_cast<double>(win.routes.f2fBumps));
  json.scalar("partitioned.region_count", static_cast<double>(p1.routes.regionCount));
  json.scalar("partitioned.region_local_nets", static_cast<double>(p1.routes.regionLocalNets));
  json.scalar("partitioned.region_cross_nets", static_cast<double>(p1.routes.regionCrossNets));
  json.scalar("partitioned.pops", static_cast<double>(p1.routes.nodesPopped));
  json.scalar("partitioned.bit_identical", partIdentical ? 1.0 : 0.0);
  json.scalar("eco.dirty_gcells", static_cast<double>(eco.ecoDirtyGcells));
  json.scalar("eco.nets_ripped", static_cast<double>(eco.ecoNetsRipped));
  json.scalar("eco.nets_reused", static_cast<double>(eco.ecoNetsReused));
  json.scalar("eco.total_overflow", static_cast<double>(eco.totalOverflow));
  json.write();
  std::printf("PASS\n");
  return 0;
}

int runFull() {
  const TileConfig tile = bench::smallTile();
  FlowOptions fopt;
  fopt.signoff = false;  // re-route QoR is compared below; skip signoff cost
  std::printf("Placing %s via the Macro-3D flow (routing benchmark input)...\n",
              tile.name.c_str());
  FlowOutput out = runFlowMacro3D(tile, fopt);
  const Netlist& nl = out.tile->netlist;

  bench::BenchJson json("route");
  json.config("tile", tile.name);
  json.config("flow", "macro3d");

  Table t("Router kernel configurations (re-route of the placed tile)");
  t.setHeader({"config", "wall_s", "pops", "relaxed", "fallbacks", "unrouted", "overflow",
               "bumps", "wl_um"});
  const int reps = bench::fastMode() ? 1 : 5;
  std::vector<RunStats> stats;
  for (const KernelConfig& cfg : kConfigs) {
    stats.push_back(routeOnce(nl, out.fp.die, out.routingBeol, fopt.grid, cfg,
                              RouterOptions{}, reps));
    const RunStats& s = stats.back();
    t.addRow({cfg.label, Table::num(s.wallS, 3), std::to_string(s.routes.nodesPopped),
              std::to_string(s.routes.nodesRelaxed), std::to_string(s.routes.windowFallbacks),
              std::to_string(s.routes.unroutedNets), std::to_string(s.routes.totalOverflow),
              std::to_string(s.routes.f2fBumps), Table::num(s.routes.totalWirelengthUm, 0)});
    const std::string prefix = std::string("config") + std::to_string(stats.size() - 1) + ".";
    json.config(prefix + "label", cfg.label);
    json.scalar(prefix + "wall_s", s.wallS);
    json.scalar(prefix + "nodes_popped", static_cast<double>(s.routes.nodesPopped));
    json.scalar(prefix + "nodes_relaxed", static_cast<double>(s.routes.nodesRelaxed));
    json.scalar(prefix + "window_fallbacks", static_cast<double>(s.routes.windowFallbacks));
    json.scalar(prefix + "unrouted_nets", s.routes.unroutedNets);
    json.scalar(prefix + "total_overflow", static_cast<double>(s.routes.totalOverflow));
    json.scalar(prefix + "f2f_bumps", static_cast<double>(s.routes.f2fBumps));
    json.scalar(prefix + "wirelength_um", s.routes.totalWirelengthUm);
  }
  t.print(std::cout);

  const RunStats& base = stats.front();
  const RunStats& ours = stats.back();
  const double wallSpeedup = ours.wallS > 0.0 ? base.wallS / ours.wallS : 0.0;
  const double popReduction = ours.routes.nodesPopped > 0
                                  ? static_cast<double>(base.routes.nodesPopped) /
                                        static_cast<double>(ours.routes.nodesPopped)
                                  : 0.0;
  json.scalar("speedup.wall", wallSpeedup);
  json.scalar("speedup.nodes_popped", popReduction);
  json.scalar("qor_no_worse", qorNoWorse(ours.routes, base.routes) ? 1.0 : 0.0);
  std::printf("\nspeedup: wall %.2fx, nodes popped %.2fx, QoR no worse: %s\n", wallSpeedup,
              popReduction, qorNoWorse(ours.routes, base.routes) ? "yes" : "NO");

  // --- Region-parallel thread-scaling curve (default kernel + partition).
  // Routes are bit-identical at every thread count by construction; the
  // curve records how wall-clock responds to threads on THIS machine, so
  // hardware_threads is recorded alongside (speedup is meaningless on a
  // single-core container and is asserted only by quickcheck's determinism
  // gate, never by wall time).
  const KernelConfig defKernel = kConfigs[3];
  Table ts("Partitioned router thread scaling (regionSize=8)");
  ts.setHeader({"threads", "wall_s", "pops", "local_nets", "cross_nets", "overflow"});
  RunStats scale1;
  bool scaleIdentical = true;
  for (const int threads : {1, 2, 4, 8}) {
    RouterOptions ropt;
    ropt.numThreads = threads;
    ropt.regionSizeGcells = 8;
    const RunStats s =
        routeOnce(nl, out.fp.die, out.routingBeol, fopt.grid, defKernel, ropt, reps);
    if (threads == 1) {
      scale1 = s;
    } else {
      scaleIdentical = scaleIdentical && routesIdentical(scale1.routes, s.routes);
    }
    ts.addRow({std::to_string(threads), Table::num(s.wallS, 3),
               std::to_string(s.routes.nodesPopped), std::to_string(s.routes.regionLocalNets),
               std::to_string(s.routes.regionCrossNets),
               std::to_string(s.routes.totalOverflow)});
    const std::string prefix = "scaling.threads" + std::to_string(threads) + ".";
    json.scalar(prefix + "wall_s", s.wallS);
    if (threads == 8 && scale1.wallS > 0.0 && s.wallS > 0.0) {
      json.scalar("scaling.speedup8", scale1.wallS / s.wallS);
      std::printf("partitioned scaling: 8-thread speedup %.2fx on %u hardware threads\n",
                  scale1.wallS / s.wallS, std::thread::hardware_concurrency());
    }
  }
  ts.print(std::cout);
  json.scalar("scaling.bit_identical", scaleIdentical ? 1.0 : 0.0);
  json.scalar("scaling.region_count", static_cast<double>(scale1.routes.regionCount));
  json.scalar("scaling.region_local_nets",
              static_cast<double>(scale1.routes.regionLocalNets));
  json.scalar("hardware_threads",
              static_cast<double>(std::thread::hardware_concurrency()));
  if (!scaleIdentical) {
    std::printf("FAIL: partitioned routes not bit-identical across thread counts\n");
    return 1;
  }

  // --- Timing-driven row: STA-derived criticality reorders the nets and
  // relaxes wire/via penalties on critical ones. Recorded for QoR
  // comparison against the timing-neutral default.
  {
    RouterOptions ropt;
    ropt.timingDriven = true;
    ropt.netCriticality.resize(static_cast<std::size_t>(nl.numNets()));
    for (std::size_t n = 0; n < ropt.netCriticality.size(); ++n) {
      ropt.netCriticality[n] = static_cast<double>((n * 37) % 100) / 100.0;
    }
    const RunStats td =
        routeOnce(nl, out.fp.die, out.routingBeol, fopt.grid, defKernel, ropt, reps);
    std::printf("timing-driven: wall %.3fs overflow=%lld wl=%.0fum\n", td.wallS,
                static_cast<long long>(td.routes.totalOverflow),
                td.routes.totalWirelengthUm);
    json.scalar("timing.wall_s", td.wallS);
    json.scalar("timing.total_overflow", static_cast<double>(td.routes.totalOverflow));
    json.scalar("timing.wirelength_um", td.routes.totalWirelengthUm);
  }

  // --- ECO bump-pitch scenario: halve the F2F bond-layer pitch (denser
  // bumps) and reroute incrementally off the previous full route. The
  // placed tile is macro-dominated -- a majority of its nets cross the
  // bond layer -- so the <30% rip acceptance bar is only reachable because
  // the ECO rips on *violated* changed edges (previous usage above the new
  // capacity), not on every capacity change: densifying the bumps violates
  // nothing beyond the few sites whose baseline usage beat even the doubled
  // budget. Overflow vs the from-scratch route is recorded; exact equality
  // only holds when both negotiations converge overflow-free (asserted at
  // that scale in the EcoRoute unit suite).
  {
    RouteGrid prevGrid(nl, out.fp.die, out.routingBeol, fopt.grid);
    const int f2fCut = prevGrid.f2fCutLayer();
    RouterOptions ropt;  // shipped default kernel
    RoutingResult prevRoutes = routeDesign(nl, prevGrid, ropt);
    Beol ecoBeol = out.routingBeol;
    if (f2fCut >= 0) {
      ecoBeol.cut(f2fCut).pitch /= 2;
    } else {
      ecoBeol.metal(ecoBeol.numMetals() - 1).pitch /= 2;  // 2D fallback
    }
    RouteGrid ecoGrid(nl, out.fp.die, ecoBeol, fopt.grid);
    const auto tEco = std::chrono::steady_clock::now();
    const RoutingResult eco = routeDesignEco(nl, ecoGrid, prevGrid, prevRoutes, ropt);
    const double ecoWall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - tEco).count();
    RouteGrid fullGrid(nl, out.fp.die, ecoBeol, fopt.grid);
    const auto tFull = std::chrono::steady_clock::now();
    const RoutingResult fullR = routeDesign(nl, fullGrid, ropt);
    const double fullWall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - tFull).count();
    const double total = static_cast<double>(eco.ecoNetsRipped + eco.ecoNetsReused);
    const double rippedFrac =
        total > 0.0 ? static_cast<double>(eco.ecoNetsRipped) / total : 1.0;
    const bool overflowEqual = eco.totalOverflow == fullR.totalOverflow;
    std::printf("eco bump-pitch: ripped %.1f%% (%lld/%.0f) dirty_gcells=%lld wall %.3fs vs "
                "full %.3fs, overflow %lld vs %lld (%s)\n",
                100.0 * rippedFrac, static_cast<long long>(eco.ecoNetsRipped), total,
                static_cast<long long>(eco.ecoDirtyGcells), ecoWall, fullWall,
                static_cast<long long>(eco.totalOverflow),
                static_cast<long long>(fullR.totalOverflow), overflowEqual ? "equal" : "DIFF");
    json.scalar("eco.ripped_frac", rippedFrac);
    json.scalar("eco.reused_frac", total > 0.0 ? 1.0 - rippedFrac : 0.0);
    json.scalar("eco.dirty_gcells", static_cast<double>(eco.ecoDirtyGcells));
    json.scalar("eco.wall_s", ecoWall);
    json.scalar("eco.wall_full_s", fullWall);
    json.scalar("eco.overflow_eco", static_cast<double>(eco.totalOverflow));
    json.scalar("eco.overflow_full", static_cast<double>(fullR.totalOverflow));
    json.scalar("eco.overflow_equal", overflowEqual ? 1.0 : 0.0);
    if (rippedFrac >= 0.30 || eco.ecoNetsReused <= 0 || eco.unroutedNets > 0) {
      std::printf("FAIL: eco bump-pitch scenario ripped >= 30%% of nets "
                  "(or reused nothing / left nets unrouted)\n");
      return 1;
    }
  }

  const std::string path = json.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace m3d

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return m3d::runSmoke();
  }
  return m3d::runFull();
}
