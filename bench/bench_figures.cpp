/// \file bench_figures.cpp
/// Regenerates the paper's figures:
///  - Fig. 1: 2D vs MoL-3D structure (stack order report + per-die views)
///  - Fig. 2: the Macro-3D flow steps (trace log)
///  - Fig. 3: OpenPiton tile architecture (netlist statistics)
///  - Fig. 4: memory-macro floorplans of the 2D and MoL designs (SVG)
///  - Fig. 5: final placed-and-routed 2D layouts (SVG)
///  - Fig. 6: final placed-and-routed MoL layouts with F2F bumps (SVG)
/// SVGs land in ./figures/.

#include <filesystem>

#include "bench_common.hpp"
#include "flows/case_study.hpp"
#include "lib/stdcell_factory.hpp"
#include "report/svg.hpp"

int main() {
  using namespace m3d;
  using namespace m3d::bench;

  std::filesystem::create_directories("figures");
  std::cout << "Figures bench" << (fastMode() ? " (FAST mode)" : "") << "\n\n";
  BenchJson bj("figures");

  for (const bool large : {false, true}) {
    const TileConfig cfg = large ? largeTile() : smallTile();
    const std::string tag = cfg.name;

    // --- Fig. 3: architecture statistics -----------------------------------
    {
      TechNode tech = makeCaseStudyTech();
      Library lib = makeStdCellLib(tech);
      const Tile tile = generateTile(lib, tech, cfg);
      const NetlistStats st = computeStats(tile.netlist);
      Table t("Fig. 3: OpenPiton tile '" + tag + "' (generated netlist)");
      t.setHeader({"quantity", "value"});
      t.addRow({"std cells", std::to_string(st.numStdCells)});
      t.addRow({"flip-flops", std::to_string(st.numSequential)});
      t.addRow({"SRAM macros", std::to_string(st.numMacros)});
      t.addRow({"nets", std::to_string(st.numNets)});
      t.addRow({"ports", std::to_string(st.numPorts)});
      t.addRow({"macro substrate fraction",
                Table::num(st.macroAreaFraction() * 100.0, 1) + "%"});
      t.addRow({"caches [KB] L1I/L1D/L2/L3",
                std::to_string(cfg.cache.l1iKb) + "/" + std::to_string(cfg.cache.l1dKb) + "/" +
                    std::to_string(cfg.cache.l2Kb) + "/" + std::to_string(cfg.cache.l3Kb)});
      std::cout << t.str() << "\n";
    }

    // --- 2D flow: Figs 4 (left) and 5 --------------------------------------
    const FlowOutput d2 = runFlow2D(cfg);
    writeSvgFile("figures/fig4_2d_floorplan_" + tag + ".svg",
                 renderDieSvg(d2.tile->netlist, d2.fp.die, DieId::kLogic, nullptr, nullptr,
                              SvgOptions{.pxPerUm = 2.0, .drawStdCells = false,
                                         .drawF2fBumps = false, .drawMacroLabels = true}));
    writeSvgFile("figures/fig5_2d_layout_" + tag + ".svg",
                 renderDieSvg(d2.tile->netlist, d2.fp.die, DieId::kLogic, d2.grid.get(),
                              &d2.routes));
    std::cout << "[fig4/fig5 " << tag << "] written (2D fclk=" << Table::num(d2.metrics.fclkMhz, 0)
              << " MHz)\n";

    // --- Macro-3D flow: Figs 1, 2, 4 (right), 6 -----------------------------
    const FlowOutput m3 = runFlowMacro3D(cfg);
    writeSvgFile("figures/fig4_mol_macro_die_" + tag + ".svg",
                 renderDieSvg(m3.tile->netlist, m3.fp.die, DieId::kMacro, nullptr, nullptr,
                              SvgOptions{.pxPerUm = 2.0, .drawStdCells = false,
                                         .drawF2fBumps = false, .drawMacroLabels = true}));
    writeSvgFile("figures/fig6_mol_macro_die_" + tag + ".svg",
                 renderDieSvg(m3.tile->netlist, m3.fp.die, DieId::kMacro, m3.grid.get(),
                              &m3.routes));
    writeSvgFile("figures/fig6_mol_logic_die_" + tag + ".svg",
                 renderDieSvg(m3.tile->netlist, m3.fp.die, DieId::kLogic, m3.grid.get(),
                              &m3.routes));
    std::cout << "[fig4/fig6 " << tag << "] written (Macro-3D fclk="
              << Table::num(m3.metrics.fclkMhz, 0) << " MHz)\n\n";

    // Fig. 1: structural cross-view as layer-order report.
    Table f1("Fig. 1: 2D IC vs F2F-stacked MoL 3D IC (" + tag + ")");
    f1.setHeader({"view", "stack"});
    f1.addRow({"2D BEOL", d2.routingBeol.orderString()});
    f1.addRow({"MoL combined BEOL", m3.routingBeol.orderString()});
    std::cout << f1.str() << "\n";

    // Fig. 2: flow steps.
    std::cout << "Fig. 2: Macro-3D flow trace (" << tag << "):\n" << m3.trace << "\n";

    bj.addFlow("2D " + tag, d2.metrics);
    bj.addFlow("Macro-3D " + tag, m3.metrics);
  }
  std::cout << "SVG figures written to ./figures/" << std::endl;
  bj.write();
  return 0;
}
