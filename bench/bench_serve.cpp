/// \file bench_serve.cpp
/// Flow-service bench: drives a live in-process m3d_serve server over its
/// Unix-domain socket and measures the three serving regimes against one
/// shared stage cache:
///   - cold    : first job of a spec (computes + publishes all 7 stages),
///   - warm    : repeat of the same spec (replays the full prefix),
///   - ECO     : a coalesced batch of 4 bump-pitch ECOs (3-stage prefix
///               replay + seeded ECO reroute each),
/// plus warm-replay throughput (jobs/s) under concurrent clients and the
/// shared cache's hit/miss/write/eviction census from the stats op.
///
/// Writes BENCH_serve.json (BENCH_serve_smoke.json with --smoke; the smoke
/// variant runs the tiny test tile and is gated against bench/baselines/ by
/// scripts/quickcheck.sh -- every scalar except wall clock and jobs/s is a
/// pure function of the deterministic flows, so it must match exactly).

#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace m3d {
namespace {

namespace fs = std::filesystem;
using namespace m3d::serve;

JobSpec benchSpec(bool smoke) {
  JobSpec spec;
  spec.flow = "macro3d";
  spec.tile = smoke ? "tiny" : "small";
  spec.maxFreqRounds = smoke ? 2 : 4;
  spec.optMaxPasses = smoke ? 6 : 0;
  spec.threads = 1;
  return spec;
}

int benchServeMain(bool smoke) {
  bench::BenchJson bj(smoke ? "serve_smoke" : "serve");
  bj.config("mode", smoke ? "smoke" : "full");

  const std::string dir =
      (fs::temp_directory_path() / (smoke ? "m3d_bench_serve_smoke" : "m3d_bench_serve"))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  ServerOptions sopt;
  sopt.socketPath = dir + "/serve.sock";
  sopt.cacheDir = dir + "/cache";
  sopt.executors = 4;
  sopt.jobThreads = 1;
  sopt.reportPath = dir + "/report.json";
  Server server(std::move(sopt));
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "bench_serve: server start failed: " << err << "\n";
    return 1;
  }
  const std::string socket = server.options().socketPath;
  bj.config("tile", benchSpec(smoke).tile);
  bj.config("executors", "4");

  Client c;
  if (!c.connect(socket, &err)) {
    std::cerr << "bench_serve: connect failed: " << err << "\n";
    return 1;
  }

  // Cold: first sight of the spec, computes + publishes every stage.
  JobSpec spec = benchSpec(smoke);
  spec.label = "cold";
  JobResult cold;
  if (!c.runJob(spec, &cold, &err)) {
    std::cerr << "bench_serve: cold job failed: " << err << "\n";
    return 1;
  }
  bj.scalar("cold_wall_ms", cold.wallMs);
  bj.scalar("cold_prefix_stages", cold.cachePrefixStages);
  bj.addFlow("cold", cold.metrics);

  // Warm: identical spec replays the full 7-stage prefix from the cache.
  spec.label = "warm";
  JobResult warm;
  if (!c.runJob(spec, &warm, &err)) {
    std::cerr << "bench_serve: warm job failed: " << err << "\n";
    return 1;
  }
  bj.scalar("warm_wall_ms", warm.wallMs);
  bj.scalar("warm_prefix_stages", warm.cachePrefixStages);
  bj.addFlow("warm", warm.metrics);

  // Coalesced ECO batch: 4 bump-pitch perturbations of the base design,
  // submitted at once. The queue serializes them behind the shared baseKey;
  // each replays the place/pre_route_opt/cts prefix and ECO-reroutes from
  // the base flow job's route checkpoint.
  const double scales[4] = {1.25, 1.5, 1.75, 2.0};
  std::vector<std::uint64_t> ecoIds;
  for (const double s : scales) {
    JobSpec eco = benchSpec(smoke);
    eco.kind = JobKind::kEco;
    eco.f2fPitchScale = s;
    eco.label = "eco-x" + std::to_string(s).substr(0, 4);
    std::uint64_t id = 0;
    if (!c.submit(eco, &id, &err)) {
      std::cerr << "bench_serve: eco submit failed: " << err << "\n";
      return 1;
    }
    ecoIds.push_back(id);
  }
  double ecoWallSum = 0.0;
  int ecoPrefixMin = 7;
  int ecoCoalesced = 0;
  std::int64_t ecoRippedTotal = 0;
  std::int64_t ecoReusedTotal = 0;
  bool firstEco = true;
  for (const std::uint64_t id : ecoIds) {
    JobState state = JobState::kQueued;
    if (!c.waitJob(id, 0, &state, &err) || state != JobState::kDone) {
      std::cerr << "bench_serve: eco job " << id << " did not complete: " << err << "\n";
      return 1;
    }
    JobResult r;
    if (!c.result(id, &r, &err)) {
      std::cerr << "bench_serve: eco result failed: " << err << "\n";
      return 1;
    }
    ecoWallSum += r.wallMs;
    ecoPrefixMin = std::min(ecoPrefixMin, r.cachePrefixStages);
    ecoCoalesced += r.coalesced ? 1 : 0;
    if (r.ecoRipped >= 0) ecoRippedTotal += r.ecoRipped;
    if (r.ecoReused >= 0) ecoReusedTotal += r.ecoReused;
    if (firstEco) {
      bj.addFlow("eco", r.metrics);
      firstEco = false;
    }
  }
  bj.scalar("eco_mean_wall_ms", ecoWallSum / 4.0);
  bj.scalar("eco_prefix_stages_min", ecoPrefixMin);
  bj.scalar("eco_coalesced_jobs", ecoCoalesced);
  bj.scalar("eco_nets_ripped_total", static_cast<double>(ecoRippedTotal));
  bj.scalar("eco_nets_reused_total", static_cast<double>(ecoReusedTotal));

  // Warm-replay throughput: 4 concurrent clients draining 8/16 repeats of
  // the (now fully warm) base spec. They share a baseKey, so this measures
  // the serialized coalesced-replay path end to end (socket + queue +
  // 7-stage restore), not parallel compute.
  const int throughputJobs = smoke ? 8 : 16;
  std::vector<std::uint64_t> hashes(static_cast<std::size_t>(throughputJobs), 0);
  std::vector<int> oks(static_cast<std::size_t>(throughputJobs), 0);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    for (int ci = 0; ci < 4; ++ci) {
      clients.emplace_back([&, ci] {
        Client cc;
        std::string cerrs;
        if (!cc.connect(socket, &cerrs)) return;
        for (int j = ci; j < throughputJobs; j += 4) {
          JobSpec s = benchSpec(smoke);
          s.label = "tp-" + std::to_string(j);
          JobResult r;
          if (cc.runJob(s, &r, &cerrs)) {
            oks[static_cast<std::size_t>(j)] = 1;
            hashes[static_cast<std::size_t>(j)] = r.artifactHash;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double tpWallS = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  int identical = 1;
  for (int j = 0; j < throughputJobs; ++j) {
    if (oks[static_cast<std::size_t>(j)] != 1 ||
        hashes[static_cast<std::size_t>(j)] != cold.artifactHash) {
      identical = 0;
    }
  }
  bj.scalar("throughput_jobs", throughputJobs);
  bj.scalar("throughput_wall_ms", tpWallS * 1000.0);
  bj.scalar("jobs_per_s", tpWallS > 0.0 ? throughputJobs / tpWallS : 0.0);
  bj.scalar("identical_artifacts", identical);

  // Shared-cache census straight from the stats op.
  obs::JsonValue stats;
  if (!c.request(encodeStats(), &stats, &err)) {
    std::cerr << "bench_serve: stats failed: " << err << "\n";
    return 1;
  }
  if (const obs::JsonValue* cache = stats.find("cache")) {
    bj.scalar("cache_hits", cache->numberOr("hits", -1));
    bj.scalar("cache_misses", cache->numberOr("misses", -1));
    bj.scalar("cache_writes", cache->numberOr("writes", -1));
    bj.scalar("cache_evictions", cache->numberOr("evictions", -1));
  }
  if (const obs::JsonValue* jobs = stats.find("jobs")) {
    bj.scalar("jobs_done", jobs->numberOr("done", -1));
    bj.scalar("jobs_failed", jobs->numberOr("failed", -1));
    bj.scalar("jobs_coalesced", jobs->numberOr("coalesced", -1));
  }

  if (!c.shutdownServer(&err)) {
    std::cerr << "bench_serve: shutdown failed: " << err << "\n";
    return 1;
  }
  c.close();
  const int failed = server.wait();

  std::cout << "bench_serve (" << (smoke ? "smoke" : "full") << ")\n"
            << "  cold        " << Table::num(cold.wallMs, 1) << " ms (prefix "
            << cold.cachePrefixStages << ")\n"
            << "  warm        " << Table::num(warm.wallMs, 1) << " ms (prefix "
            << warm.cachePrefixStages << ")\n"
            << "  eco (mean)  " << Table::num(ecoWallSum / 4.0, 1) << " ms (prefix >= "
            << ecoPrefixMin << ", " << ecoCoalesced << "/4 coalesced)\n"
            << "  throughput  " << Table::num(tpWallS > 0.0 ? throughputJobs / tpWallS : 0.0, 1)
            << " warm jobs/s (" << throughputJobs << " jobs, identical="
            << identical << ")\n";

  bj.write();
  fs::remove_all(dir);

  if (failed > 0) {
    std::cerr << "bench_serve: " << failed << " job(s) failed\n";
    return 1;
  }
  if (identical != 1) {
    std::cerr << "bench_serve: artifact hashes diverged across serving modes\n";
    return 1;
  }
  if (warm.cachePrefixStages != 7 || ecoPrefixMin < 3 || ecoCoalesced != 4) {
    std::cerr << "bench_serve: cache-reuse contract violated (warm prefix "
              << warm.cachePrefixStages << ", eco prefix min " << ecoPrefixMin
              << ", coalesced " << ecoCoalesced << "/4)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace m3d

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return m3d::benchServeMain(smoke);
}
