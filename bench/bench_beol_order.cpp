/// \file bench_beol_order.cpp
/// Ablation of the combined-stack layer ordering (DESIGN.md decision):
/// the physically faithful flipped order (macro-die top metal adjacent to
/// the F2F bond) vs the order as literally listed in the paper's text
/// (M1_MD adjacent to F2F_VIA). The ordering changes how many macro-die
/// vias a route traverses to reach a macro pin, so it shifts parasitics and
/// bump-adjacent congestion.

#include "bench_common.hpp"

int main() {
  using namespace m3d;
  using namespace m3d::bench;

  std::cout << "BEOL stack-order ablation" << (fastMode() ? " (FAST mode)" : "") << "\n\n";
  const TileConfig cfg = smallTile();

  FlowOptions flipped;
  flipped.stackOrder = MacroDieStackOrder::kFlipped;
  FlowOptions asListed;
  asListed.stackOrder = MacroDieStackOrder::kAsListed;

  BenchJson bj("beol_order");
  bj.config("tile", cfg.name);
  const FlowOutput a = runFlowMacro3D(cfg, flipped);
  std::cout << "[flipped done]\n";
  const FlowOutput b = runFlowMacro3D(cfg, asListed);
  std::cout << "[as-listed done]\n\n";
  bj.addFlow("flipped", a.metrics);
  bj.addFlow("as-listed", b.metrics);

  Table t("Combined-stack layer order (Macro-3D, small-cache)");
  t.setHeader({"metric", "flipped (physical)", "as-listed (paper text)"});
  t.addRow({"fclk [MHz]", Table::num(a.metrics.fclkMhz, 0),
            Table::withDelta(b.metrics.fclkMhz, a.metrics.fclkMhz, 0)});
  t.addRow({"Emean [fJ/cycle]", Table::num(a.metrics.emeanFj, 1),
            Table::withDelta(b.metrics.emeanFj, a.metrics.emeanFj, 1)});
  t.addRow({"F2F bumps", std::to_string(a.metrics.f2fBumps),
            std::to_string(b.metrics.f2fBumps)});
  t.addRow({"macro-die WL [m]", Table::num(a.metrics.wirelengthMacroDieM, 3),
            Table::num(b.metrics.wirelengthMacroDieM, 3)});
  t.addRow({"total WL [m]", Table::num(a.metrics.totalWirelengthM, 2),
            Table::num(b.metrics.totalWirelengthM, 2)});
  t.addRow({"stack (bottom..top)", a.routingBeol.orderString().substr(0, 60) + "...",
            b.routingBeol.orderString().substr(0, 60) + "..."});
  std::cout << t.str() << std::endl;
  bj.write();
  return 0;
}
