/// \file bench_micro.cpp
/// google-benchmark micro-benchmarks of the engine components: placer,
/// legalizer, router, extraction and STA throughput on synthetic clouds.

#include <benchmark/benchmark.h>

#include "extract/extraction.hpp"
#include "flows/case_study.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "tech/combined_beol.hpp"
#include "sta/sta.hpp"

namespace {

using namespace m3d;

struct CloudBench {
  CloudBench(int gates, int regs) : tech(makeCaseStudyTech()), lib(makeStdCellLib(tech)),
                                    nl(&lib) {
    const PortId clkPort = nl.addPort("clk", PinDir::kInput, Side::kWest, true);
    clk = nl.addNet("clk");
    nl.connectPort(clk, clkPort);
    Rng rng(42);
    CloudSpec spec;
    spec.prefix = "b";
    spec.numGates = gates;
    spec.numRegs = regs;
    spec.clockNet = clk;
    buildLogicCloud(nl, rng, spec);

    const double sideUm = std::sqrt(gates * 3.0);
    fp.die = Rect{0, 0, snapUp(umToDbu(sideUm), tech.siteWidth),
                  snapUp(umToDbu(sideUm), tech.rowHeight)};
    fp.rowHeight = tech.rowHeight;
    fp.siteWidth = tech.siteWidth;
    assignPorts(nl, fp.die);
  }

  TechNode tech;
  Library lib;
  Netlist nl;
  Floorplan fp;
  NetId clk = kInvalidId;
};

void BM_GlobalPlace(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  for (auto _ : state) {
    const PlaceResult r = globalPlace(b.nl, b.fp);
    benchmark::DoNotOptimize(r.hpwlUm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlobalPlace)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_Legalize(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  globalPlace(b.nl, b.fp);
  for (auto _ : state) {
    const LegalizeResult r = legalize(b.nl, b.fp);
    benchmark::DoNotOptimize(r.avgDisplacementUm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Legalize)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_Route(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  globalPlace(b.nl, b.fp);
  for (auto _ : state) {
    RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
    const RoutingResult r = routeDesign(b.nl, grid);
    benchmark::DoNotOptimize(r.totalWirelengthUm);
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_Route)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ExtractAndSta(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  globalPlace(b.nl, b.fp);
  RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
  const RoutingResult routes = routeDesign(b.nl, grid);
  for (auto _ : state) {
    const auto paras = extractDesign(b.nl, grid, routes);
    Sta sta(b.nl, paras);
    benchmark::DoNotOptimize(sta.findMinPeriod());
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_ExtractAndSta)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_StaOnly(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  globalPlace(b.nl, b.fp);
  RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
  const RoutingResult routes = routeDesign(b.nl, grid);
  const auto paras = extractDesign(b.nl, grid, routes);
  Sta sta(b.nl, paras);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sta.worstSlack(2e-9));
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_StaOnly)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_CombinedBeolBuild(benchmark::State& state) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  for (auto _ : state) {
    const Beol c = buildCombinedBeol(logic.beol, macro.beol, F2fViaSpec{});
    benchmark::DoNotOptimize(c.numMetals());
  }
}
BENCHMARK(BM_CombinedBeolBuild);

}  // namespace

BENCHMARK_MAIN();
