/// \file bench_micro.cpp
/// google-benchmark micro-benchmarks of the engine components: placer,
/// legalizer, router, extraction and STA throughput on synthetic clouds.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <random>

#include "bench_common.hpp"
#include "core/macro3d.hpp"
#include "core/parallel.hpp"
#include "db/design_db.hpp"
#include "db/stage_cache.hpp"
#include "extract/extraction.hpp"
#include "flows/case_study.hpp"
#include "flows/flow_checkpoint.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "tech/combined_beol.hpp"
#include "sta/sta.hpp"
#include "verify/verify.hpp"

namespace {

using namespace m3d;

struct CloudBench {
  CloudBench(int gates, int regs) : tech(makeCaseStudyTech()), lib(makeStdCellLib(tech)),
                                    nl(&lib) {
    const PortId clkPort = nl.addPort("clk", PinDir::kInput, Side::kWest, true);
    clk = nl.addNet("clk");
    nl.connectPort(clk, clkPort);
    Rng rng(42);
    CloudSpec spec;
    spec.prefix = "b";
    spec.numGates = gates;
    spec.numRegs = regs;
    spec.clockNet = clk;
    buildLogicCloud(nl, rng, spec);

    const double sideUm = std::sqrt(gates * 3.0);
    fp.die = Rect{0, 0, snapUp(umToDbu(sideUm), tech.siteWidth),
                  snapUp(umToDbu(sideUm), tech.rowHeight)};
    fp.rowHeight = tech.rowHeight;
    fp.siteWidth = tech.siteWidth;
    assignPorts(nl, fp.die);
  }

  TechNode tech;
  Library lib;
  Netlist nl;
  Floorplan fp;
  NetId clk = kInvalidId;
};

void BM_GlobalPlace(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  for (auto _ : state) {
    const PlaceResult r = globalPlace(b.nl, b.fp);
    benchmark::DoNotOptimize(r.hpwlUm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlobalPlace)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_Legalize(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  globalPlace(b.nl, b.fp);
  for (auto _ : state) {
    const LegalizeResult r = legalize(b.nl, b.fp);
    benchmark::DoNotOptimize(r.avgDisplacementUm);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Legalize)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_Route(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  globalPlace(b.nl, b.fp);
  for (auto _ : state) {
    RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
    const RoutingResult r = routeDesign(b.nl, grid);
    benchmark::DoNotOptimize(r.totalWirelengthUm);
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_Route)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ExtractAndSta(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  globalPlace(b.nl, b.fp);
  RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
  const RoutingResult routes = routeDesign(b.nl, grid);
  for (auto _ : state) {
    const auto paras = extractDesign(b.nl, grid, routes);
    Sta sta(b.nl, paras);
    benchmark::DoNotOptimize(sta.findMinPeriod());
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_ExtractAndSta)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_StaOnly(benchmark::State& state) {
  CloudBench b(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 5);
  globalPlace(b.nl, b.fp);
  RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
  const RoutingResult routes = routeDesign(b.nl, grid);
  const auto paras = extractDesign(b.nl, grid, routes);
  Sta sta(b.nl, paras);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sta.worstSlack(2e-9));
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_StaOnly)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_CombinedBeolBuild(benchmark::State& state) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  for (auto _ : state) {
    const Beol c = buildCombinedBeol(logic.beol, macro.beol, F2fViaSpec{});
    benchmark::DoNotOptimize(c.numMetals());
  }
}
BENCHMARK(BM_CombinedBeolBuild);

// --- Thread-scaling entries: identical work at 1/2/4/8 threads. ------------
// Every parallel stage is deterministic, so these measure pure schedule
// overhead/speedup -- the results are bit-identical across the Arg values.

void BM_ParallelForHpwl(benchmark::State& state) {
  CloudBench b(8000, 1600);
  std::mt19937_64 rng(7);
  for (InstId i = 0; i < b.nl.numInstances(); ++i) {
    b.nl.instance(i).pos =
        Point{static_cast<Dbu>(rng() % static_cast<std::uint64_t>(b.fp.die.xhi)),
              static_cast<Dbu>(rng() % static_cast<std::uint64_t>(b.fp.die.yhi))};
  }
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.nl.totalHpwl(threads));
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_ParallelForHpwl)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RouteThreads(benchmark::State& state) {
  CloudBench b(2000, 400);
  globalPlace(b.nl, b.fp);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
    RouterOptions opt;
    opt.numThreads = threads;
    const RoutingResult r = routeDesign(b.nl, grid, opt);
    benchmark::DoNotOptimize(r.totalWirelengthUm);
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_RouteThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_StaThreads(benchmark::State& state) {
  CloudBench b(8000, 1600);
  globalPlace(b.nl, b.fp);
  RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
  const RoutingResult routes = routeDesign(b.nl, grid);
  const auto paras = extractDesign(b.nl, grid, routes);
  const int threads = static_cast<int>(state.range(0));
  Sta sta(b.nl, paras, nullptr, kTypicalCorner, threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sta.worstSlack(2e-9));
  }
  state.SetItemsProcessed(state.iterations() * b.nl.numNets());
}
BENCHMARK(BM_StaThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// --- Signoff verifier benchmarks (large-cache tile, Macro-3D flow) ---------

/// One large-cache Macro-3D implementation, built once and shared by every
/// BM_Verify* entry and by writeVerifyBenchJson.
const FlowOutput& verifiedTile() {
  static const FlowOutput out = [] {
    FlowOptions opt;
    opt.maxFreqRounds = 2;
    opt.report.logSummary = false;
    return runFlowMacro3D(makeLargeCacheTileConfig(), opt);
  }();
  return out;
}

VerifyOptions onlyFamily(bool drc, bool connectivity, bool placement, bool f2f) {
  VerifyOptions opt;
  opt.drc = drc;
  opt.connectivity = connectivity;
  opt.placement = placement;
  opt.f2f = f2f;
  return opt;
}

void benchVerify(benchmark::State& state, const VerifyOptions& vopt) {
  const FlowOutput& o = verifiedTile();
  for (auto _ : state) {
    const VerifyReport rep = verifyDesign(o.tile->netlist, o.fp, *o.grid, o.routes, vopt);
    benchmark::DoNotOptimize(rep.errors + rep.warnings);
  }
}

void BM_VerifyDrc(benchmark::State& state) {
  benchVerify(state, onlyFamily(true, false, false, false));
}
BENCHMARK(BM_VerifyDrc)->Unit(benchmark::kMillisecond);

void BM_VerifyConnectivity(benchmark::State& state) {
  benchVerify(state, onlyFamily(false, true, false, false));
}
BENCHMARK(BM_VerifyConnectivity)->Unit(benchmark::kMillisecond);

void BM_VerifyPlacement(benchmark::State& state) {
  benchVerify(state, onlyFamily(false, false, true, false));
}
BENCHMARK(BM_VerifyPlacement)->Unit(benchmark::kMillisecond);

void BM_VerifyF2f(benchmark::State& state) {
  benchVerify(state, onlyFamily(false, false, false, true));
}
BENCHMARK(BM_VerifyF2f)->Unit(benchmark::kMillisecond);

void BM_VerifyFull(benchmark::State& state) {
  benchVerify(state, VerifyOptions{});
}
BENCHMARK(BM_VerifyFull)->Unit(benchmark::kMillisecond);

// --- Design-database benchmarks (small-cache tile, Macro-3D flow) ----------

/// One small-cache Macro-3D implementation shared by the BM_Db* entries.
/// Non-const: BM_StageCacheHit restores the checkpoint back into the live
/// output (idempotent -- the checkpoint holds exactly this state).
FlowOutput& dbBenchTile() {
  static FlowOutput out = [] {
    FlowOptions opt;
    opt.maxFreqRounds = 2;
    opt.report.logSummary = false;
    return runFlowMacro3D(bench::smallTile(), opt);
  }();
  return out;
}

std::string dbBenchDir() {
  const auto dir = std::filesystem::temp_directory_path() / "m3d_bench_db";
  std::filesystem::create_directories(dir);
  return dir.string();
}

void BM_DbSave(benchmark::State& state) {
  const FlowOutput& o = dbBenchTile();
  const std::string path = dbBenchDir() + "/bm_save.m3ddb";
  for (auto _ : state) {
    const db::DbStatus st = saveStageCheckpoint(o, o.trace, 6, 0x1234u, path);
    if (!st.ok()) state.SkipWithError("save failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_DbSave)->Unit(benchmark::kMillisecond);

void BM_DbLoad(benchmark::State& state) {
  const FlowOutput& o = dbBenchTile();
  const std::string path = dbBenchDir() + "/bm_load.m3ddb";
  saveStageCheckpoint(o, o.trace, 6, 0x1234u, path);
  for (auto _ : state) {
    FlowOutput loaded;
    const db::DbStatus st = loadFlowCheckpoint(path, loaded);
    if (!st.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(loaded.metrics.fclkMhz);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_DbLoad)->Unit(benchmark::kMillisecond);

/// Full in-pipeline cache-hit path: key lookup (existence check) plus
/// restore of the signoff checkpoint into the live flow output -- the cost
/// a warm pipeline pays per restored stage.
void BM_StageCacheHit(benchmark::State& state) {
  FlowOutput& o = dbBenchTile();
  const db::StageCache cache(dbBenchDir() + "/cache", true);
  const std::uint64_t key = 0x5eedu;
  const std::string path = cache.path(6, "signoff", key);
  saveStageCheckpoint(o, o.trace, 6, key, path);
  for (auto _ : state) {
    if (!cache.has(6, "signoff", key)) state.SkipWithError("expected a cache hit");
    std::string trace;
    const db::DbStatus st = restoreStageCheckpoint(path, o, trace);
    if (!st.ok()) state.SkipWithError("restore failed");
    benchmark::DoNotOptimize(trace.size());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_StageCacheHit)->Unit(benchmark::kMillisecond);

/// Per-family verifier wall clock (best of three) on the large-cache tile,
/// written to BENCH_verify.json together with the verdict the run produced
/// and a 1-vs-8-thread determinism cross-check.
void writeVerifyBenchJson() {
  using Clock = std::chrono::steady_clock;
  const auto timeS = [](const auto& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      fn();
      best = std::min(best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best;
  };

  const FlowOutput& o = verifiedTile();
  const Netlist& nl = o.tile->netlist;

  bench::BenchJson bj("verify");
  bj.config("bench", "signoff verifier runtime per checker family (large-cache tile, Macro-3D)");
  bj.scalar("hardware_threads", static_cast<double>(par::hardwareConcurrency()));
  bj.scalar("nets", static_cast<double>(nl.numNets()));
  bj.scalar("instances", static_cast<double>(nl.numInstances()));

  const struct {
    const char* name;
    VerifyOptions opt;
  } families[] = {
      {"drc", onlyFamily(true, false, false, false)},
      {"connectivity", onlyFamily(false, true, false, false)},
      {"placement", onlyFamily(false, false, true, false)},
      {"f2f", onlyFamily(false, false, false, true)},
      {"full", VerifyOptions{}},
  };
  for (const auto& fam : families) {
    VerifyReport rep;
    const double s = timeS(
        [&] { rep = verifyDesign(nl, o.fp, *o.grid, o.routes, fam.opt); });
    bj.scalar(std::string(fam.name) + "_s", s);
    bj.scalar(std::string(fam.name) + "_violations",
              static_cast<double>(rep.errors + rep.warnings));
  }

  VerifyOptions t1 = VerifyOptions{};
  t1.numThreads = 1;
  VerifyOptions t8 = VerifyOptions{};
  t8.numThreads = 8;
  const VerifyReport rep1 = verifyDesign(nl, o.fp, *o.grid, o.routes, t1);
  const VerifyReport rep8 = verifyDesign(nl, o.fp, *o.grid, o.routes, t8);
  if (!(rep1 == rep8)) {
    std::cerr << "VERIFY DETERMINISM VIOLATION between 1 and 8 threads\n";
    bj.scalar("determinism_violation", 1.0);
  }
  bj.scalar("errors", static_cast<double>(rep1.errors));
  bj.scalar("warnings", static_cast<double>(rep1.warnings));
  bj.scalar("clean", rep1.clean() ? 1.0 : 0.0);
  bj.scalar("f2f_bumps", static_cast<double>(rep1.f2fBumpCount));
  bj.write();
}

/// Direct wall-clock thread-scaling measurement, written to
/// BENCH_parallel.json. Runs the router, the STA sweep, and the
/// parallel-reduce HPWL kernel at 1/2/4/8 threads (best of three), checking
/// along the way that the results stay bit-identical. On a single-core host
/// the speedups sit near 1.0 by construction -- the json records
/// hardware_threads so downstream tooling can tell saturation from
/// regression.
void writeParallelScalingJson() {
  using Clock = std::chrono::steady_clock;
  const auto timeS = [](const auto& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      fn();
      best = std::min(best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best;
  };

  bench::BenchJson bj("parallel");
  bj.config("bench", "thread scaling: router / sta / parallel-reduce hpwl");
  bj.scalar("hardware_threads", static_cast<double>(par::hardwareConcurrency()));

  CloudBench b(2000, 400);
  globalPlace(b.nl, b.fp);
  RouteGrid staGrid(b.nl, b.fp.die, b.tech.beol);
  const RoutingResult staRoutes = routeDesign(b.nl, staGrid);
  const auto paras = extractDesign(b.nl, staGrid, staRoutes);

  const int counts[] = {1, 2, 4, 8};
  double routeT1 = 0.0, staT1 = 0.0, hpwlT1 = 0.0;
  double refWl = 0.0;
  std::int64_t refHpwl = 0;
  for (const int t : counts) {
    double wl = 0.0;
    const double routeS = timeS([&] {
      RouteGrid grid(b.nl, b.fp.die, b.tech.beol);
      RouterOptions opt;
      opt.numThreads = t;
      wl = routeDesign(b.nl, grid, opt).totalWirelengthUm;
    });
    const Sta sta(b.nl, paras, nullptr, kTypicalCorner, t);
    const double staS = timeS([&] {
      for (int i = 0; i < 20; ++i) benchmark::DoNotOptimize(sta.worstSlack(2e-9));
    });
    std::int64_t hp = 0;
    const double hpwlS = timeS([&] {
      for (int i = 0; i < 50; ++i) hp = b.nl.totalHpwl(t);
    });
    if (t == 1) {
      routeT1 = routeS;
      staT1 = staS;
      hpwlT1 = hpwlS;
      refWl = wl;
      refHpwl = hp;
    } else if (wl != refWl || hp != refHpwl) {
      std::cerr << "DETERMINISM VIOLATION at " << t << " threads\n";
      bj.scalar("determinism_violation", 1.0);
    }
    const std::string suffix = "_t" + std::to_string(t);
    bj.scalar("route_s" + suffix, routeS);
    bj.scalar("route_speedup" + suffix, routeT1 / routeS);
    bj.scalar("sta_s" + suffix, staS);
    bj.scalar("sta_speedup" + suffix, staT1 / staS);
    bj.scalar("hpwl_s" + suffix, hpwlS);
    bj.scalar("hpwl_speedup" + suffix, hpwlT1 / hpwlS);
  }
  bj.write();
}

/// Cold-vs-warm stage-cache timing on the small-cache Macro-3D flow plus
/// container-level save/load wall clock, written to BENCH_db.json. The cold
/// run writes all seven stage checkpoints into a fresh cache directory; the
/// warm run restores them and must be measurably faster and bit-identical
/// (the json records both times, the speedup, and the identity check).
void writeDbBenchJson() {
  using Clock = std::chrono::steady_clock;
  namespace fs = std::filesystem;
  const auto timeOnceS = [](const auto& fn) {
    const auto t0 = Clock::now();
    fn();
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const auto bestOf3S = [](const auto& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      fn();
      best = std::min(best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best;
  };

  const fs::path dir = fs::temp_directory_path() / "m3d_bench_db_flow";
  std::error_code ec;
  fs::remove_all(dir, ec);

  FlowOptions opt;
  opt.maxFreqRounds = 2;
  opt.report.logSummary = false;
  opt.checkpointDir = dir.string();

  // Cold (empty cache, writes checkpoints) vs warm (restores every stage).
  // Single-shot timings: a repeat of the cold run would itself be warm.
  FlowOutput cold;
  const double coldS =
      timeOnceS([&] { cold = runFlowMacro3D(bench::smallTile(), opt); });
  FlowOutput warm;
  const double warmS =
      timeOnceS([&] { warm = runFlowMacro3D(bench::smallTile(), opt); });

  std::uint64_t cacheBytes = 0;
  int cacheFiles = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++cacheFiles;
    cacheBytes += entry.file_size();
  }

  const bool identical = warm.verify == cold.verify &&
                         warm.metrics.fclkMhz == cold.metrics.fclkMhz &&
                         warm.metrics.totalWirelengthM == cold.metrics.totalWirelengthM &&
                         warm.metrics.emeanFj == cold.metrics.emeanFj;
  if (!identical) std::cerr << "STAGE CACHE WARM RUN NOT BIT-IDENTICAL\n";

  // Container-level cost of one full-state checkpoint (signoff stage).
  const std::string ckpt = (dir / "bench_signoff.m3ddb").string();
  const double saveS =
      bestOf3S([&] { saveStageCheckpoint(cold, cold.trace, 6, 0x1234u, ckpt); });
  double loadedFclk = 0.0;
  const double loadS = bestOf3S([&] {
    FlowOutput loaded;
    loadFlowCheckpoint(ckpt, loaded);
    loadedFclk = loaded.metrics.fclkMhz;
  });
  const auto ckptBytes = static_cast<double>(fs::file_size(ckpt));

  bench::BenchJson bj("db");
  bj.config("bench",
            "design database: cold vs warm stage-cached Macro-3D flow (small-cache tile)");
  bj.scalar("hardware_threads", static_cast<double>(par::hardwareConcurrency()));
  bj.scalar("cold_s", coldS);
  bj.scalar("warm_s", warmS);
  bj.scalar("warm_speedup", warmS > 0.0 ? coldS / warmS : 0.0);
  bj.scalar("warm_bit_identical", identical ? 1.0 : 0.0);
  bj.scalar("cache_files", static_cast<double>(cacheFiles));
  bj.scalar("cache_bytes", static_cast<double>(cacheBytes));
  bj.scalar("checkpoint_bytes", ckptBytes);
  bj.scalar("checkpoint_save_s", saveS);
  bj.scalar("checkpoint_load_s", loadS);
  bj.scalar("fclk_mhz", cold.metrics.fclkMhz);
  bj.scalar("loaded_fclk_mhz", loadedFclk);
  bj.write();

  fs::remove_all(dir, ec);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeParallelScalingJson();
  writeVerifyBenchJson();
  writeDbBenchJson();
  return 0;
}
