#pragma once

/// \file bench_common.hpp
/// Shared helpers for the paper-reproduction benches: tile selection (full
/// size by default, reduced when M3D_FAST=1 is set for smoke runs), paper
/// reference values, and table formatting.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/macro3d.hpp"
#include "flows/flows.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "report/table.hpp"

namespace m3d::bench {

inline bool fastMode() {
  const char* v = std::getenv("M3D_FAST");
  return v != nullptr && v[0] == '1';
}

/// Shrinks a tile configuration for smoke runs (M3D_FAST=1).
inline TileConfig maybeShrink(TileConfig cfg) {
  if (!fastMode()) return cfg;
  cfg.name += "-fast";
  cfg.coreGates /= 4;
  cfg.coreRegs /= 4;
  cfg.l1CtrlGates /= 2;
  cfg.l1CtrlRegs /= 2;
  cfg.l2CtrlGates /= 2;
  cfg.l2CtrlRegs /= 2;
  cfg.l3CtrlGates /= 2;
  cfg.l3CtrlRegs /= 2;
  cfg.nocGates /= 2;
  cfg.nocRegs /= 2;
  cfg.cache.l3Kb /= 2;
  cfg.nocDataBits = 8;
  return cfg;
}

inline TileConfig smallTile() { return maybeShrink(makeSmallCacheTileConfig()); }
inline TileConfig largeTile() { return maybeShrink(makeLargeCacheTileConfig()); }

/// Paper reference values (DATE 2020, Tables I-III) for side-by-side
/// comparison. Absolute magnitudes are not expected to match (different
/// substrate); ratios/shape are the reproduction target.
struct PaperTable1 {
  // 2D, MoL S2D, BF S2D, Macro-3D
  static constexpr double fclk[4] = {390, 227, 260, 470};
  static constexpr double emean[4] = {116.7, 123.1, 112.9, 117.6};
  static constexpr double afoot[4] = {1.20, 0.60, 0.60, 0.60};
  static constexpr double bumps[4] = {0, 5405, 8703, 4740};
};

struct PaperTable2 {
  // small: 2D vs M3D; large: 2D vs M3D
  static constexpr double fclkSmall[2] = {390, 470};
  static constexpr double fclkLarge[2] = {328, 421};
  static constexpr double wlSmall[2] = {6.3, 5.6};
  static constexpr double wlLarge[2] = {12.2, 10.4};
  static constexpr double critWlSmall[2] = {1.49, 0.55};
  static constexpr double critWlLarge[2] = {2.21, 1.50};
  static constexpr double clkDepthSmall[2] = {13, 14};
  static constexpr double clkDepthLarge[2] = {20, 16};
  static constexpr double bumpsSmall = 4740;
  static constexpr double bumpsLarge = 1215;
};

struct PaperTable3 {
  // small M6-M6, small M6-M4, large M6-M6, large M6-M4
  static constexpr double fclk[4] = {470, 462, 421, 423};
  static constexpr double ametal[4] = {7.20, 6.0, 23.3, 19.4};
  static constexpr double bumps[4] = {4740, 3866, 1215, 922};
};

inline std::string pct(double ours, double base) {
  if (base == 0.0) return "-";
  return Table::num((ours - base) / base * 100.0, 1) + "%";
}

/// Machine-readable companion to the bench tables: collects per-flow
/// DesignMetrics plus free-form scalars and writes BENCH_<name>.json in the
/// working directory (schema m3d.bench/1). The human-readable tables on
/// stdout are unchanged.
class BenchJson {
 public:
  explicit BenchJson(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  void config(std::string key, std::string value) {
    config_.emplace_back(std::move(key), std::move(value));
  }
  void scalar(std::string key, double value) {
    scalars_.emplace_back(std::move(key), value);
  }
  void addFlow(std::string label, const DesignMetrics& m) {
    flows_.emplace_back(std::move(label), m);
  }

  /// Writes BENCH_<name>.json; returns the path ("" on failure).
  std::string write() const {
    const double wallS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    std::ostringstream buf;
    obs::JsonWriter w(buf, /*pretty=*/true);
    w.beginObject();
    w.kv("schema", "m3d.bench/1");
    w.kv("bench", name_);
    w.kv("fast_mode", fastMode());
    w.kv("wall_s", wallS);
    w.key("config");
    w.beginObject();
    for (const auto& [k, v] : config_) w.kv(k, v);
    w.endObject();
    w.key("scalars");
    w.beginObject();
    for (const auto& [k, v] : scalars_) w.kv(k, v);
    w.endObject();
    w.key("flows");
    w.beginArray();
    for (const auto& [label, m] : flows_) {
      w.beginObject();
      w.kv("label", label);
      w.key("metrics");
      writeDesignMetricsJson(w, m);
      w.endObject();
    }
    w.endArray();
    w.endObject();

    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      M3D_LOG(error) << "bench json: cannot open " << path;
      return "";
    }
    os << buf.str() << "\n";
    M3D_LOG(info) << "bench json written: " << path;
    return path;
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, DesignMetrics>> flows_;
};

}  // namespace m3d::bench
