#pragma once

/// \file bench_common.hpp
/// Shared helpers for the paper-reproduction benches: tile selection (full
/// size by default, reduced when M3D_FAST=1 is set for smoke runs), paper
/// reference values, and table formatting.

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/macro3d.hpp"
#include "flows/flows.hpp"
#include "report/table.hpp"

namespace m3d::bench {

inline bool fastMode() {
  const char* v = std::getenv("M3D_FAST");
  return v != nullptr && v[0] == '1';
}

/// Shrinks a tile configuration for smoke runs (M3D_FAST=1).
inline TileConfig maybeShrink(TileConfig cfg) {
  if (!fastMode()) return cfg;
  cfg.name += "-fast";
  cfg.coreGates /= 4;
  cfg.coreRegs /= 4;
  cfg.l1CtrlGates /= 2;
  cfg.l1CtrlRegs /= 2;
  cfg.l2CtrlGates /= 2;
  cfg.l2CtrlRegs /= 2;
  cfg.l3CtrlGates /= 2;
  cfg.l3CtrlRegs /= 2;
  cfg.nocGates /= 2;
  cfg.nocRegs /= 2;
  cfg.cache.l3Kb /= 2;
  cfg.nocDataBits = 8;
  return cfg;
}

inline TileConfig smallTile() { return maybeShrink(makeSmallCacheTileConfig()); }
inline TileConfig largeTile() { return maybeShrink(makeLargeCacheTileConfig()); }

/// Paper reference values (DATE 2020, Tables I-III) for side-by-side
/// comparison. Absolute magnitudes are not expected to match (different
/// substrate); ratios/shape are the reproduction target.
struct PaperTable1 {
  // 2D, MoL S2D, BF S2D, Macro-3D
  static constexpr double fclk[4] = {390, 227, 260, 470};
  static constexpr double emean[4] = {116.7, 123.1, 112.9, 117.6};
  static constexpr double afoot[4] = {1.20, 0.60, 0.60, 0.60};
  static constexpr double bumps[4] = {0, 5405, 8703, 4740};
};

struct PaperTable2 {
  // small: 2D vs M3D; large: 2D vs M3D
  static constexpr double fclkSmall[2] = {390, 470};
  static constexpr double fclkLarge[2] = {328, 421};
  static constexpr double wlSmall[2] = {6.3, 5.6};
  static constexpr double wlLarge[2] = {12.2, 10.4};
  static constexpr double critWlSmall[2] = {1.49, 0.55};
  static constexpr double critWlLarge[2] = {2.21, 1.50};
  static constexpr double clkDepthSmall[2] = {13, 14};
  static constexpr double clkDepthLarge[2] = {20, 16};
  static constexpr double bumpsSmall = 4740;
  static constexpr double bumpsLarge = 1215;
};

struct PaperTable3 {
  // small M6-M6, small M6-M4, large M6-M6, large M6-M4
  static constexpr double fclk[4] = {470, 462, 421, 423};
  static constexpr double ametal[4] = {7.20, 6.0, 23.3, 19.4};
  static constexpr double bumps[4] = {4740, 3866, 1215, 922};
};

inline std::string pct(double ours, double base) {
  if (base == 0.0) return "-";
  return Table::num((ours - base) / base * 100.0, 1) + "%";
}

}  // namespace m3d::bench
