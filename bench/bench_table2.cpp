/// \file bench_table2.cpp
/// Reproduces paper Table II: in-depth 2D vs Macro-3D comparison for the
/// small-cache and large-cache tiles, plus the iso-performance power
/// comparison quoted in Sec. V-A (paper: -3.2% small, -3.8% large at the 2D
/// max frequency).

#include "bench_common.hpp"

namespace {

using namespace m3d;

void printPair(const char* title, const FlowOutput& d2, const FlowOutput& m3) {
  Table t(title);
  t.setHeader({"metric", "2D", "Macro-3D"});
  const DesignMetrics& a = d2.metrics;
  const DesignMetrics& b = m3.metrics;
  t.addRow({"fclk [MHz]", Table::num(a.fclkMhz, 0), Table::withDelta(b.fclkMhz, a.fclkMhz, 0)});
  t.addRow({"Emean [fJ/cycle]", Table::num(a.emeanFj, 1),
            Table::withDelta(b.emeanFj, a.emeanFj, 1)});
  t.addRow({"Afootprint [mm^2]", Table::num(a.footprintMm2, 2),
            Table::withDelta(b.footprintMm2, a.footprintMm2, 2)});
  t.addRow({"Alogic-cells [mm^2]", Table::num(a.logicCellAreaMm2, 3),
            Table::withDelta(b.logicCellAreaMm2, a.logicCellAreaMm2, 3)});
  t.addRow({"Total wirelength [m]", Table::num(a.totalWirelengthM, 2),
            Table::withDelta(b.totalWirelengthM, a.totalWirelengthM, 2)});
  t.addRow({"F2F bumps", std::to_string(a.f2fBumps), std::to_string(b.f2fBumps)});
  t.addRow({"Cpin,total [nF]", Table::num(a.cpinNf, 3),
            Table::withDelta(b.cpinNf, a.cpinNf, 3)});
  t.addRow({"Cwire,total [nF]", Table::num(a.cwireNf, 3),
            Table::withDelta(b.cwireNf, a.cwireNf, 3)});
  t.addRow({"Max clk-tree depth", std::to_string(a.clockTreeDepth),
            std::to_string(b.clockTreeDepth)});
  t.addRow({"Clk insertion skew [ps]", Table::num(a.clockSkewPs, 0),
            Table::num(b.clockSkewPs, 0)});
  t.addRow({"Crit-path wirelength [mm]", Table::num(a.critPathWirelengthMm, 2),
            Table::withDelta(b.critPathWirelengthMm, a.critPathWirelengthMm, 2)});
  std::cout << t.str() << "\n";
}

}  // namespace

int main() {
  using namespace m3d;
  using namespace m3d::bench;

  std::cout << "Table II bench" << (fastMode() ? " (FAST mode)" : "") << "\n\n";
  BenchJson bj("table2");

  for (const bool large : {false, true}) {
    const TileConfig cfg = large ? largeTile() : smallTile();
    std::cout << "--- " << cfg.name << "-cache tile ---\n";
    const FlowOutput d2 = runFlow2D(cfg);
    const FlowOutput m3 = runFlowMacro3D(cfg);
    const std::string tag = large ? "large" : "small";
    bj.config("tile_" + tag, cfg.name);
    bj.addFlow("2D " + tag, d2.metrics);
    bj.addFlow("Macro-3D " + tag, m3.metrics);
    printPair(large ? "Table II (large-cache, measured)" : "Table II (small-cache, measured)",
              d2, m3);

    // Iso-performance power: re-implement Macro-3D at the 2D max frequency
    // (paper Sec. V-A: power drops 3.2% / 3.8% thanks to shorter wires and
    // relaxed sizing).
    FlowOptions iso;
    iso.maxPerformance = false;
    iso.targetPeriodNs = 1000.0 / d2.metrics.fclkMhz;
    const FlowOutput m3iso = runFlowMacro3D(cfg, iso);
    bj.addFlow("Macro-3D iso " + tag, m3iso.metrics);
    Table t("Iso-performance power @ 2D fclk (measured)");
    t.setHeader({"metric", "2D", "Macro-3D iso"});
    t.addRow({"fclk [MHz]", Table::num(d2.metrics.fclkMhz, 0),
              Table::num(m3iso.metrics.fclkMhz, 0)});
    t.addRow({"power [mW]", Table::num(d2.metrics.powerMw, 3),
              Table::withDelta(m3iso.metrics.powerMw, d2.metrics.powerMw, 3)});
    t.addRow({"Emean [fJ/cycle]", Table::num(d2.metrics.emeanFj, 1),
              Table::withDelta(m3iso.metrics.emeanFj, d2.metrics.emeanFj, 1)});
    std::cout << t.str() << "\n";
  }

  Table p("Table II: paper reference (DATE'20)");
  p.setHeader({"metric", "2D small", "M3D small", "2D large", "M3D large"});
  p.addRow({"fclk [MHz]", "390", "470 (+20.5%)", "328", "421 (+28.2%)"});
  p.addRow({"Emean [fJ/cycle]", "116.7", "117.6 (+0.8%)", "369.3", "366.1 (-0.9%)"});
  p.addRow({"Afootprint [mm^2]", "1.20", "0.60 (-50.0%)", "3.88", "1.94 (-50.1%)"});
  p.addRow({"Alogic-cells [mm^2]", "0.29", "0.30 (+1.6%)", "0.47", "0.47 (+1.2%)"});
  p.addRow({"Total wirelength [m]", "6.3", "5.6 (-11.8%)", "12.2", "10.4 (-14.8%)"});
  p.addRow({"F2F bumps", "0", "4740", "0", "1215"});
  p.addRow({"Cpin,total [nF]", "0.36", "0.38 (+5.6%)", "0.52", "0.56 (+7.4%)"});
  p.addRow({"Cwire,total [nF]", "0.89", "0.83 (-7.2%)", "1.61", "1.44 (-10.2%)"});
  p.addRow({"Max clk-tree depth", "13", "14 (+7.7%)", "20", "16 (-20.0%)"});
  p.addRow({"Crit-path WL [mm]", "1.49", "0.55 (-63.0%)", "2.21", "1.50 (-32.0%)"});
  p.addRow({"Iso-perf power", "-", "-3.2%", "-", "-3.8%"});
  std::cout << p.str() << std::endl;
  bj.write();
  return 0;
}
