/// \file bench_table3.cpp
/// Reproduces paper Table III: impact of removing two metal layers from the
/// macro die (heterogeneous M6-M4 BEOL vs symmetric M6-M6) on
/// max-performance PPA and cost metrics, for both cache configurations.
///
/// Shape targets (paper): performance changes by <2% while metal area drops
/// 16.7% and F2F bump count drops 18-24% (the top BEOL becomes exclusively
/// pin access).

#include "bench_common.hpp"

int main() {
  using namespace m3d;
  using namespace m3d::bench;

  std::cout << "Table III bench" << (fastMode() ? " (FAST mode)" : "") << "\n\n";
  BenchJson bj("table3");

  struct Row {
    std::string label;
    DesignMetrics m;
  };
  std::vector<Row> rows;

  for (const bool large : {false, true}) {
    const TileConfig cfg = large ? largeTile() : smallTile();
    for (const int macroMetals : {6, 4}) {
      FlowOptions opt;
      opt.macroDieMetals = macroMetals;
      const FlowOutput out = runFlowMacro3D(cfg, opt);
      rows.push_back({cfg.name + (macroMetals == 6 ? " M6-M6" : " M6-M4"), out.metrics});
      bj.addFlow(rows.back().label, out.metrics);
      std::cout << "[" << rows.back().label << "] fclk=" << Table::num(out.metrics.fclkMhz, 0)
                << " MHz bumps=" << out.metrics.f2fBumps << "\n";
    }
  }
  std::cout << "\n";

  Table t("Table III: macro-die BEOL reduction (measured)");
  t.setHeader({"metric", rows[0].label, rows[1].label, rows[2].label, rows[3].label});
  auto addRow = [&](const char* name, auto getter, int prec) {
    std::vector<std::string> row{name};
    for (const Row& r : rows) row.push_back(Table::num(getter(r.m), prec));
    t.addRow(row);
  };
  addRow("fclk [MHz]", [](const DesignMetrics& m) { return m.fclkMhz; }, 0);
  addRow("Emean [fJ/cycle]", [](const DesignMetrics& m) { return m.emeanFj; }, 1);
  addRow("Ametal [mm^2]", [](const DesignMetrics& m) { return m.metalAreaMm2; }, 2);
  addRow("F2F bumps", [](const DesignMetrics& m) { return double(m.f2fBumps); }, 0);
  addRow("Macro-die WL [m]", [](const DesignMetrics& m) { return m.wirelengthMacroDieM; }, 3);
  std::cout << t.str() << "\n";

  Table p("Table III: paper reference (DATE'20)");
  p.setHeader({"metric", "small M6-M6", "small M6-M4", "large M6-M6", "large M6-M4"});
  p.addRow({"fclk [MHz]", "470", "462 (-1.8%)", "421", "423 (+0.5%)"});
  p.addRow({"Emean [fJ/cycle]", "117.6", "119.0 (+1.3%)", "366.1", "362.5 (-1.0%)"});
  p.addRow({"Ametal [mm^2]", "7.20", "6.0 (-16.7%)", "23.3", "19.4 (-16.7%)"});
  p.addRow({"F2F bumps", "4740", "3866 (-18.4%)", "1215", "922 (-24.1%)"});
  std::cout << p.str() << "\n";

  Table s("Shape check");
  s.setHeader({"quantity", "paper", "measured small", "measured large"});
  s.addRow({"fclk change M6-M4 vs M6-M6", "-1.8% / +0.5%",
            pct(rows[1].m.fclkMhz, rows[0].m.fclkMhz), pct(rows[3].m.fclkMhz, rows[2].m.fclkMhz)});
  s.addRow({"Ametal change", "-16.7%",
            pct(rows[1].m.metalAreaMm2, rows[0].m.metalAreaMm2),
            pct(rows[3].m.metalAreaMm2, rows[2].m.metalAreaMm2)});
  s.addRow({"bump change", "-18.4% / -24.1%",
            pct(double(rows[1].m.f2fBumps), double(rows[0].m.f2fBumps)),
            pct(double(rows[3].m.f2fBumps), double(rows[2].m.f2fBumps))});
  std::cout << s.str() << std::endl;
  bj.write();
  return 0;
}
