/// \file bench_table1.cpp
/// Reproduces paper Table I: max-performance PPA and manufacturing-cost
/// comparison of the 2D baseline, MoL S2D, BF S2D (best-case prior art) and
/// the proposed Macro-3D flow on the small-cache tile.
///
/// Shape targets (paper): S2D variants land clearly BELOW the 2D baseline
/// frequency (-33..-42%), Macro-3D lands clearly above (+20.5%); Macro-3D
/// needs fewer F2F bumps than either S2D variant; footprints halve.

#include "bench_common.hpp"

int main() {
  using namespace m3d;
  using namespace m3d::bench;

  const TileConfig cfg = smallTile();
  std::cout << "Table I bench: tile=" << cfg.name << (fastMode() ? " (FAST mode)" : "")
            << "\n\n";
  BenchJson bj("table1");
  bj.config("tile", cfg.name);

  const FlowOutput d2 = runFlow2D(cfg);
  std::cout << "[2D done] fclk=" << Table::num(d2.metrics.fclkMhz, 0) << " MHz\n";
  const FlowOutput s2d = runFlowS2D(cfg, /*balanced=*/false);
  std::cout << "[MoL S2D done] fclk=" << Table::num(s2d.metrics.fclkMhz, 0) << " MHz\n";
  const FlowOutput bf = runFlowS2D(cfg, /*balanced=*/true);
  std::cout << "[BF S2D done] fclk=" << Table::num(bf.metrics.fclkMhz, 0) << " MHz\n";
  const FlowOutput m3 = runFlowMacro3D(cfg);
  std::cout << "[Macro-3D done] fclk=" << Table::num(m3.metrics.fclkMhz, 0) << " MHz\n\n";

  bj.addFlow("2D", d2.metrics);
  bj.addFlow("MoL S2D", s2d.metrics);
  bj.addFlow("BF S2D", bf.metrics);
  bj.addFlow("Macro-3D", m3.metrics);

  const DesignMetrics* rows[4] = {&d2.metrics, &s2d.metrics, &bf.metrics, &m3.metrics};

  Table t("Table I: max-performance PPA & cost, small-cache system (measured)");
  t.setHeader({"metric", "2D", "MoL S2D", "BF S2D", "Macro-3D"});
  auto addRow = [&](const char* name, auto getter, int prec) {
    std::vector<std::string> row{name};
    for (const DesignMetrics* m : rows) row.push_back(Table::num(getter(*m), prec));
    t.addRow(row);
  };
  addRow("fclk [MHz]", [](const DesignMetrics& m) { return m.fclkMhz; }, 0);
  addRow("Emean [fJ/cycle]", [](const DesignMetrics& m) { return m.emeanFj; }, 1);
  addRow("Afootprint [mm^2]", [](const DesignMetrics& m) { return m.footprintMm2; }, 2);
  addRow("F2F bumps", [](const DesignMetrics& m) { return double(m.f2fBumps); }, 0);
  addRow("overlap-fix disp [um]", [](const DesignMetrics& m) { return m.legalizeAvgDispUm; }, 1);
  addRow("route overflow edges", [](const DesignMetrics& m) { return double(m.overflowedEdges); }, 0);
  std::cout << t.str() << "\n";

  Table p("Table I: paper reference (DATE'20)");
  p.setHeader({"metric", "2D", "MoL S2D", "BF S2D", "Macro-3D"});
  p.addRow({"fclk [MHz]", "390", "227", "260", "470"});
  p.addRow({"Emean [fJ/cycle]", "116.7", "123.1", "112.9", "117.6"});
  p.addRow({"Afootprint [mm^2]", "1.20", "0.60", "0.60", "0.60"});
  p.addRow({"F2F bumps", "0", "5405", "8703", "4740"});
  std::cout << p.str() << "\n";

  Table s("Shape check: relative frequency vs 2D baseline");
  s.setHeader({"flow", "paper", "measured"});
  s.addRow({"MoL S2D", "-41.8%", pct(s2d.metrics.fclkMhz, d2.metrics.fclkMhz)});
  s.addRow({"BF S2D", "-33.3%", pct(bf.metrics.fclkMhz, d2.metrics.fclkMhz)});
  s.addRow({"Macro-3D", "+20.5%", pct(m3.metrics.fclkMhz, d2.metrics.fclkMhz)});
  s.addRow({"M3D bumps vs S2D", "-12.3%", pct(double(m3.metrics.f2fBumps),
                                              double(s2d.metrics.f2fBumps))});
  std::cout << s.str() << std::endl;
  bj.write();
  return 0;
}
