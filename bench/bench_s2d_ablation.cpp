/// \file bench_s2d_ablation.cpp
/// Ablation of the Shrunk-2D error sources the paper identifies (Sec. III):
///   1. partial-blockage spatial resolution (coarse vs fine),
///   2. missing post-partitioning optimization (S2D lacks it; what if it had
///      full post-route sizing like Macro-3D?),
///   3. non-co-optimized F2F-via planning (vary the router's bump economy).
/// Each variant runs the MoL S2D flow on the small-cache tile; deltas are
/// against the default S2D configuration.

#include "bench_common.hpp"

int main() {
  using namespace m3d;
  using namespace m3d::bench;

  std::cout << "S2D ablation bench" << (fastMode() ? " (FAST mode)" : "") << "\n\n";
  const TileConfig cfg = smallTile();
  BenchJson bj("s2d_ablation");
  bj.config("tile", cfg.name);

  struct Variant {
    std::string name;
    FlowOptions opt;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "S2D default";
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "fine blockage res (1um)";
    v.opt.partialBlockageResolution = umToDbu(1.0);
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "coarse blockage res (16um)";
    v.opt.partialBlockageResolution = umToDbu(16.0);
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "+post-route sizing";
    v.opt.pseudoPostRouteOpt = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "router bump economy (f2f cost 3.0)";
    v.opt.s2dF2fPlanningCost = 3.0;
    variants.push_back(v);
  }

  Table t("S2D error-source ablation (MoL S2D, small-cache)");
  t.setHeader({"variant", "fclk [MHz]", "Emean [fJ]", "F2F bumps", "overlap disp [um]",
               "overflow"});
  const FlowOutput base = runFlowS2D(cfg, false, variants[0].opt);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const FlowOutput alt = i == 0 ? FlowOutput{} : runFlowS2D(cfg, false, v.opt);
    const FlowOutput& out = i == 0 ? base : alt;
    t.addRow({v.name, Table::withDelta(out.metrics.fclkMhz, base.metrics.fclkMhz, 0),
              Table::num(out.metrics.emeanFj, 0), std::to_string(out.metrics.f2fBumps),
              Table::num(out.metrics.legalizeAvgDispUm, 1),
              std::to_string(out.metrics.overflowedEdges)});
    bj.addFlow(v.name, out.metrics);
    std::cout << "[" << v.name << "] done\n";
  }
  std::cout << "\n" << t.str() << "\n";
  std::cout << "Reference: Macro-3D avoids all three error sources by running\n"
               "one true P&R pass on the combined stack (paper Sec. III-IV)."
            << std::endl;
  bj.write();
  return 0;
}
