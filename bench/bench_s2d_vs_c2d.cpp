/// \file bench_s2d_vs_c2d.cpp
/// Reproduces the paper's Sec. V-A observation used to justify reporting
/// only S2D in Table I: "for designs with a significant amount of macros,
/// S2D performs significantly better than C2D". Runs both prior flows on
/// the small-cache tile and compares against the 2D baseline.

#include "bench_common.hpp"

int main() {
  using namespace m3d;
  using namespace m3d::bench;

  std::cout << "S2D vs C2D bench" << (fastMode() ? " (FAST mode)" : "") << "\n\n";
  const TileConfig cfg = smallTile();

  BenchJson bj("s2d_vs_c2d");
  bj.config("tile", cfg.name);
  const FlowOutput d2 = runFlow2D(cfg);
  std::cout << "[2D done] " << Table::num(d2.metrics.fclkMhz, 0) << " MHz\n";
  const FlowOutput s2d = runFlowS2D(cfg, /*balanced=*/false);
  std::cout << "[S2D done] " << Table::num(s2d.metrics.fclkMhz, 0) << " MHz\n";
  const FlowOutput c2d = runFlowC2D(cfg);
  std::cout << "[C2D done] " << Table::num(c2d.metrics.fclkMhz, 0) << " MHz\n\n";
  bj.addFlow("2D", d2.metrics);
  bj.addFlow("MoL S2D", s2d.metrics);
  bj.addFlow("C2D", c2d.metrics);

  Table t("Prior flows on a macro-heavy design (small-cache tile)");
  t.setHeader({"metric", "2D", "MoL S2D", "C2D"});
  t.addRow({"fclk [MHz]", Table::num(d2.metrics.fclkMhz, 0),
            Table::withDelta(s2d.metrics.fclkMhz, d2.metrics.fclkMhz, 0),
            Table::withDelta(c2d.metrics.fclkMhz, d2.metrics.fclkMhz, 0)});
  t.addRow({"Emean [fJ/cycle]", Table::num(d2.metrics.emeanFj, 0),
            Table::num(s2d.metrics.emeanFj, 0), Table::num(c2d.metrics.emeanFj, 0)});
  t.addRow({"overlap-fix disp [um]", Table::num(d2.metrics.legalizeAvgDispUm, 1),
            Table::num(s2d.metrics.legalizeAvgDispUm, 1),
            Table::num(c2d.metrics.legalizeAvgDispUm, 1)});
  t.addRow({"route overflow edges", std::to_string(d2.metrics.overflowedEdges),
            std::to_string(s2d.metrics.overflowedEdges),
            std::to_string(c2d.metrics.overflowedEdges)});
  t.addRow({"F2F bumps", std::to_string(d2.metrics.f2fBumps),
            std::to_string(s2d.metrics.f2fBumps), std::to_string(c2d.metrics.f2fBumps)});
  std::cout << t.str() << "\n";
  std::cout << "Paper (Sec. V-A): \"for designs with a significant amount of macros,\n"
               "S2D performs significantly better than C2D\" -- hence only S2D\n"
               "appears in the paper's Table I. C2D differs by its quantized linear\n"
               "cell-location mapping and its post-tier-partitioning optimization\n"
               "pass (which partially compensates)."
            << std::endl;
  bj.write();
  return 0;
}
