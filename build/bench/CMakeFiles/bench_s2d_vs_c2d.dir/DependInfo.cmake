
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_s2d_vs_c2d.cpp" "bench/CMakeFiles/bench_s2d_vs_c2d.dir/bench_s2d_vs_c2d.cpp.o" "gcc" "bench/CMakeFiles/bench_s2d_vs_c2d.dir/bench_s2d_vs_c2d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/m3d_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/m3d_report.dir/DependInfo.cmake"
  "/root/repo/build/src/flows/CMakeFiles/m3d_flows.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/m3d_place.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/m3d_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/m3d_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/m3d_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/m3d_power.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/m3d_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/m3d_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/m3d_route.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/m3d_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/m3d_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
