# Empty dependencies file for bench_s2d_vs_c2d.
# This may be replaced when dependencies are built.
