file(REMOVE_RECURSE
  "CMakeFiles/bench_s2d_vs_c2d.dir/bench_s2d_vs_c2d.cpp.o"
  "CMakeFiles/bench_s2d_vs_c2d.dir/bench_s2d_vs_c2d.cpp.o.d"
  "bench_s2d_vs_c2d"
  "bench_s2d_vs_c2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s2d_vs_c2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
