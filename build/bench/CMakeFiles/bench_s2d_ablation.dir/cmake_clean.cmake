file(REMOVE_RECURSE
  "CMakeFiles/bench_s2d_ablation.dir/bench_s2d_ablation.cpp.o"
  "CMakeFiles/bench_s2d_ablation.dir/bench_s2d_ablation.cpp.o.d"
  "bench_s2d_ablation"
  "bench_s2d_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s2d_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
