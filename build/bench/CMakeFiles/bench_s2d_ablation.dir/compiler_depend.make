# Empty compiler generated dependencies file for bench_s2d_ablation.
# This may be replaced when dependencies are built.
