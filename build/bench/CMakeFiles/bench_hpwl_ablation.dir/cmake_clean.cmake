file(REMOVE_RECURSE
  "CMakeFiles/bench_hpwl_ablation.dir/bench_hpwl_ablation.cpp.o"
  "CMakeFiles/bench_hpwl_ablation.dir/bench_hpwl_ablation.cpp.o.d"
  "bench_hpwl_ablation"
  "bench_hpwl_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpwl_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
