# Empty compiler generated dependencies file for bench_hpwl_ablation.
# This may be replaced when dependencies are built.
