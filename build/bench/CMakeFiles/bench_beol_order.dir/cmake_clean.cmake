file(REMOVE_RECURSE
  "CMakeFiles/bench_beol_order.dir/bench_beol_order.cpp.o"
  "CMakeFiles/bench_beol_order.dir/bench_beol_order.cpp.o.d"
  "bench_beol_order"
  "bench_beol_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beol_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
