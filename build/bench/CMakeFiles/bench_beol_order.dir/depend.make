# Empty dependencies file for bench_beol_order.
# This may be replaced when dependencies are built.
