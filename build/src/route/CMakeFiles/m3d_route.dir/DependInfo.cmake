
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/route_grid.cpp" "src/route/CMakeFiles/m3d_route.dir/route_grid.cpp.o" "gcc" "src/route/CMakeFiles/m3d_route.dir/route_grid.cpp.o.d"
  "/root/repo/src/route/router.cpp" "src/route/CMakeFiles/m3d_route.dir/router.cpp.o" "gcc" "src/route/CMakeFiles/m3d_route.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/m3d_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/m3d_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
