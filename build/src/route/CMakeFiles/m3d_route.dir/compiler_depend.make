# Empty compiler generated dependencies file for m3d_route.
# This may be replaced when dependencies are built.
