file(REMOVE_RECURSE
  "libm3d_route.a"
)
