file(REMOVE_RECURSE
  "CMakeFiles/m3d_route.dir/route_grid.cpp.o"
  "CMakeFiles/m3d_route.dir/route_grid.cpp.o.d"
  "CMakeFiles/m3d_route.dir/router.cpp.o"
  "CMakeFiles/m3d_route.dir/router.cpp.o.d"
  "libm3d_route.a"
  "libm3d_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
