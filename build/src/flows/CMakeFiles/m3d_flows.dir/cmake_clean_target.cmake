file(REMOVE_RECURSE
  "libm3d_flows.a"
)
