# Empty dependencies file for m3d_flows.
# This may be replaced when dependencies are built.
