file(REMOVE_RECURSE
  "CMakeFiles/m3d_flows.dir/case_study.cpp.o"
  "CMakeFiles/m3d_flows.dir/case_study.cpp.o.d"
  "CMakeFiles/m3d_flows.dir/flow_2d.cpp.o"
  "CMakeFiles/m3d_flows.dir/flow_2d.cpp.o.d"
  "CMakeFiles/m3d_flows.dir/flow_common.cpp.o"
  "CMakeFiles/m3d_flows.dir/flow_common.cpp.o.d"
  "CMakeFiles/m3d_flows.dir/flow_s2d.cpp.o"
  "CMakeFiles/m3d_flows.dir/flow_s2d.cpp.o.d"
  "CMakeFiles/m3d_flows.dir/tile_array.cpp.o"
  "CMakeFiles/m3d_flows.dir/tile_array.cpp.o.d"
  "libm3d_flows.a"
  "libm3d_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
