# Empty compiler generated dependencies file for m3d_place.
# This may be replaced when dependencies are built.
