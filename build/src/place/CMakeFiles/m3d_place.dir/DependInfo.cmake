
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/cg_solver.cpp" "src/place/CMakeFiles/m3d_place.dir/cg_solver.cpp.o" "gcc" "src/place/CMakeFiles/m3d_place.dir/cg_solver.cpp.o.d"
  "/root/repo/src/place/detailed.cpp" "src/place/CMakeFiles/m3d_place.dir/detailed.cpp.o" "gcc" "src/place/CMakeFiles/m3d_place.dir/detailed.cpp.o.d"
  "/root/repo/src/place/legalizer.cpp" "src/place/CMakeFiles/m3d_place.dir/legalizer.cpp.o" "gcc" "src/place/CMakeFiles/m3d_place.dir/legalizer.cpp.o.d"
  "/root/repo/src/place/placer.cpp" "src/place/CMakeFiles/m3d_place.dir/placer.cpp.o" "gcc" "src/place/CMakeFiles/m3d_place.dir/placer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/m3d_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/m3d_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/m3d_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
