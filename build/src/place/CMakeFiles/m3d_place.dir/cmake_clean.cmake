file(REMOVE_RECURSE
  "CMakeFiles/m3d_place.dir/cg_solver.cpp.o"
  "CMakeFiles/m3d_place.dir/cg_solver.cpp.o.d"
  "CMakeFiles/m3d_place.dir/detailed.cpp.o"
  "CMakeFiles/m3d_place.dir/detailed.cpp.o.d"
  "CMakeFiles/m3d_place.dir/legalizer.cpp.o"
  "CMakeFiles/m3d_place.dir/legalizer.cpp.o.d"
  "CMakeFiles/m3d_place.dir/placer.cpp.o"
  "CMakeFiles/m3d_place.dir/placer.cpp.o.d"
  "libm3d_place.a"
  "libm3d_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
