file(REMOVE_RECURSE
  "libm3d_place.a"
)
