file(REMOVE_RECURSE
  "CMakeFiles/m3d_tech.dir/beol.cpp.o"
  "CMakeFiles/m3d_tech.dir/beol.cpp.o.d"
  "CMakeFiles/m3d_tech.dir/combined_beol.cpp.o"
  "CMakeFiles/m3d_tech.dir/combined_beol.cpp.o.d"
  "CMakeFiles/m3d_tech.dir/tech_node.cpp.o"
  "CMakeFiles/m3d_tech.dir/tech_node.cpp.o.d"
  "libm3d_tech.a"
  "libm3d_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
