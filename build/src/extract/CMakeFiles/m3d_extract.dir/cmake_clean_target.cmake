file(REMOVE_RECURSE
  "libm3d_extract.a"
)
