# Empty dependencies file for m3d_extract.
# This may be replaced when dependencies are built.
