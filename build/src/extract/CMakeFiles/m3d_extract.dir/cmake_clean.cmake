file(REMOVE_RECURSE
  "CMakeFiles/m3d_extract.dir/extraction.cpp.o"
  "CMakeFiles/m3d_extract.dir/extraction.cpp.o.d"
  "libm3d_extract.a"
  "libm3d_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
