# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geom")
subdirs("tech")
subdirs("lib")
subdirs("netlist")
subdirs("floorplan")
subdirs("place")
subdirs("route")
subdirs("extract")
subdirs("sta")
subdirs("cts")
subdirs("opt")
subdirs("power")
subdirs("io")
subdirs("report")
subdirs("flows")
subdirs("core")
