file(REMOVE_RECURSE
  "libm3d_floorplan.a"
)
