file(REMOVE_RECURSE
  "CMakeFiles/m3d_floorplan.dir/floorplan.cpp.o"
  "CMakeFiles/m3d_floorplan.dir/floorplan.cpp.o.d"
  "libm3d_floorplan.a"
  "libm3d_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
