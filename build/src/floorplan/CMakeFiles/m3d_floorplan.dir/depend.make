# Empty dependencies file for m3d_floorplan.
# This may be replaced when dependencies are built.
