
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/dot_export.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/dot_export.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/dot_export.cpp.o.d"
  "/root/repo/src/netlist/logic_cloud.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/logic_cloud.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/logic_cloud.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/openpiton.cpp" "src/netlist/CMakeFiles/m3d_netlist.dir/openpiton.cpp.o" "gcc" "src/netlist/CMakeFiles/m3d_netlist.dir/openpiton.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/m3d_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
