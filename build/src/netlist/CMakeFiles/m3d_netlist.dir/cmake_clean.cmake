file(REMOVE_RECURSE
  "CMakeFiles/m3d_netlist.dir/dot_export.cpp.o"
  "CMakeFiles/m3d_netlist.dir/dot_export.cpp.o.d"
  "CMakeFiles/m3d_netlist.dir/logic_cloud.cpp.o"
  "CMakeFiles/m3d_netlist.dir/logic_cloud.cpp.o.d"
  "CMakeFiles/m3d_netlist.dir/netlist.cpp.o"
  "CMakeFiles/m3d_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/m3d_netlist.dir/openpiton.cpp.o"
  "CMakeFiles/m3d_netlist.dir/openpiton.cpp.o.d"
  "libm3d_netlist.a"
  "libm3d_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
