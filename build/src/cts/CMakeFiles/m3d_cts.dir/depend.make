# Empty dependencies file for m3d_cts.
# This may be replaced when dependencies are built.
