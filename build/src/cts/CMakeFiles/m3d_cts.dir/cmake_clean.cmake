file(REMOVE_RECURSE
  "CMakeFiles/m3d_cts.dir/cts.cpp.o"
  "CMakeFiles/m3d_cts.dir/cts.cpp.o.d"
  "libm3d_cts.a"
  "libm3d_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
