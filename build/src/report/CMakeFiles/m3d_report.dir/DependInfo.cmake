
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/congestion.cpp" "src/report/CMakeFiles/m3d_report.dir/congestion.cpp.o" "gcc" "src/report/CMakeFiles/m3d_report.dir/congestion.cpp.o.d"
  "/root/repo/src/report/svg.cpp" "src/report/CMakeFiles/m3d_report.dir/svg.cpp.o" "gcc" "src/report/CMakeFiles/m3d_report.dir/svg.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/report/CMakeFiles/m3d_report.dir/table.cpp.o" "gcc" "src/report/CMakeFiles/m3d_report.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/m3d_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/m3d_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/m3d_route.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/m3d_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
