file(REMOVE_RECURSE
  "libm3d_report.a"
)
