# Empty compiler generated dependencies file for m3d_report.
# This may be replaced when dependencies are built.
