file(REMOVE_RECURSE
  "CMakeFiles/m3d_report.dir/congestion.cpp.o"
  "CMakeFiles/m3d_report.dir/congestion.cpp.o.d"
  "CMakeFiles/m3d_report.dir/svg.cpp.o"
  "CMakeFiles/m3d_report.dir/svg.cpp.o.d"
  "CMakeFiles/m3d_report.dir/table.cpp.o"
  "CMakeFiles/m3d_report.dir/table.cpp.o.d"
  "libm3d_report.a"
  "libm3d_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
