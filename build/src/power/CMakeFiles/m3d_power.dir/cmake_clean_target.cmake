file(REMOVE_RECURSE
  "libm3d_power.a"
)
