
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lib/library.cpp" "src/lib/CMakeFiles/m3d_lib.dir/library.cpp.o" "gcc" "src/lib/CMakeFiles/m3d_lib.dir/library.cpp.o.d"
  "/root/repo/src/lib/macro_projection.cpp" "src/lib/CMakeFiles/m3d_lib.dir/macro_projection.cpp.o" "gcc" "src/lib/CMakeFiles/m3d_lib.dir/macro_projection.cpp.o.d"
  "/root/repo/src/lib/sram_generator.cpp" "src/lib/CMakeFiles/m3d_lib.dir/sram_generator.cpp.o" "gcc" "src/lib/CMakeFiles/m3d_lib.dir/sram_generator.cpp.o.d"
  "/root/repo/src/lib/stdcell_factory.cpp" "src/lib/CMakeFiles/m3d_lib.dir/stdcell_factory.cpp.o" "gcc" "src/lib/CMakeFiles/m3d_lib.dir/stdcell_factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
