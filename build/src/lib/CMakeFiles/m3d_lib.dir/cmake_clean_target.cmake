file(REMOVE_RECURSE
  "libm3d_lib.a"
)
