file(REMOVE_RECURSE
  "CMakeFiles/m3d_lib.dir/library.cpp.o"
  "CMakeFiles/m3d_lib.dir/library.cpp.o.d"
  "CMakeFiles/m3d_lib.dir/macro_projection.cpp.o"
  "CMakeFiles/m3d_lib.dir/macro_projection.cpp.o.d"
  "CMakeFiles/m3d_lib.dir/sram_generator.cpp.o"
  "CMakeFiles/m3d_lib.dir/sram_generator.cpp.o.d"
  "CMakeFiles/m3d_lib.dir/stdcell_factory.cpp.o"
  "CMakeFiles/m3d_lib.dir/stdcell_factory.cpp.o.d"
  "libm3d_lib.a"
  "libm3d_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
