# Empty compiler generated dependencies file for m3d_lib.
# This may be replaced when dependencies are built.
