# CMake generated Testfile for 
# Source directory: /root/repo/src/lib
# Build directory: /root/repo/build/src/lib
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
