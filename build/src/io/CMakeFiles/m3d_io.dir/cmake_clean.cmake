file(REMOVE_RECURSE
  "CMakeFiles/m3d_io.dir/lefdef.cpp.o"
  "CMakeFiles/m3d_io.dir/lefdef.cpp.o.d"
  "libm3d_io.a"
  "libm3d_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
