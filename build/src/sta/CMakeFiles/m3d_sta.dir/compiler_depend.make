# Empty compiler generated dependencies file for m3d_sta.
# This may be replaced when dependencies are built.
