file(REMOVE_RECURSE
  "libm3d_sta.a"
)
