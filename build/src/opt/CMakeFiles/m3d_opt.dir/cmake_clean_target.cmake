file(REMOVE_RECURSE
  "libm3d_opt.a"
)
