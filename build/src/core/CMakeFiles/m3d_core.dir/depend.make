# Empty dependencies file for m3d_core.
# This may be replaced when dependencies are built.
