file(REMOVE_RECURSE
  "libm3d_core.a"
)
