file(REMOVE_RECURSE
  "CMakeFiles/m3d_core.dir/macro3d.cpp.o"
  "CMakeFiles/m3d_core.dir/macro3d.cpp.o.d"
  "libm3d_core.a"
  "libm3d_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3d_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
