file(REMOVE_RECURSE
  "CMakeFiles/beol_explorer.dir/beol_explorer.cpp.o"
  "CMakeFiles/beol_explorer.dir/beol_explorer.cpp.o.d"
  "beol_explorer"
  "beol_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beol_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
