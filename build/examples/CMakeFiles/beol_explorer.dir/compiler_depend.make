# Empty compiler generated dependencies file for beol_explorer.
# This may be replaced when dependencies are built.
