file(REMOVE_RECURSE
  "CMakeFiles/memory_on_logic.dir/memory_on_logic.cpp.o"
  "CMakeFiles/memory_on_logic.dir/memory_on_logic.cpp.o.d"
  "memory_on_logic"
  "memory_on_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_on_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
