# Empty compiler generated dependencies file for memory_on_logic.
# This may be replaced when dependencies are built.
