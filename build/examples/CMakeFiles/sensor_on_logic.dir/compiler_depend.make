# Empty compiler generated dependencies file for sensor_on_logic.
# This may be replaced when dependencies are built.
