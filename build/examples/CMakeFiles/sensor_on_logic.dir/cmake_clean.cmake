file(REMOVE_RECURSE
  "CMakeFiles/sensor_on_logic.dir/sensor_on_logic.cpp.o"
  "CMakeFiles/sensor_on_logic.dir/sensor_on_logic.cpp.o.d"
  "sensor_on_logic"
  "sensor_on_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_on_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
