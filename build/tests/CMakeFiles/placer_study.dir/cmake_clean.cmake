file(REMOVE_RECURSE
  "CMakeFiles/placer_study.dir/placer_study.cpp.o"
  "CMakeFiles/placer_study.dir/placer_study.cpp.o.d"
  "placer_study"
  "placer_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placer_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
