# Empty compiler generated dependencies file for placer_study.
# This may be replaced when dependencies are built.
