# Empty compiler generated dependencies file for critpath_study.
# This may be replaced when dependencies are built.
