file(REMOVE_RECURSE
  "CMakeFiles/critpath_study.dir/critpath_study.cpp.o"
  "CMakeFiles/critpath_study.dir/critpath_study.cpp.o.d"
  "critpath_study"
  "critpath_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critpath_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
