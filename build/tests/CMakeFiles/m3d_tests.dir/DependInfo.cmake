
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_corner.cpp" "tests/CMakeFiles/m3d_tests.dir/test_corner.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_corner.cpp.o.d"
  "/root/repo/tests/test_cts.cpp" "tests/CMakeFiles/m3d_tests.dir/test_cts.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_cts.cpp.o.d"
  "/root/repo/tests/test_detailed_congestion.cpp" "tests/CMakeFiles/m3d_tests.dir/test_detailed_congestion.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_detailed_congestion.cpp.o.d"
  "/root/repo/tests/test_extract.cpp" "tests/CMakeFiles/m3d_tests.dir/test_extract.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_extract.cpp.o.d"
  "/root/repo/tests/test_floorplan.cpp" "tests/CMakeFiles/m3d_tests.dir/test_floorplan.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_floorplan.cpp.o.d"
  "/root/repo/tests/test_flows.cpp" "tests/CMakeFiles/m3d_tests.dir/test_flows.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_flows.cpp.o.d"
  "/root/repo/tests/test_geom.cpp" "tests/CMakeFiles/m3d_tests.dir/test_geom.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_geom.cpp.o.d"
  "/root/repo/tests/test_hold_dot.cpp" "tests/CMakeFiles/m3d_tests.dir/test_hold_dot.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_hold_dot.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/m3d_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_lib.cpp" "tests/CMakeFiles/m3d_tests.dir/test_lib.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_lib.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/m3d_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_openpiton.cpp" "tests/CMakeFiles/m3d_tests.dir/test_openpiton.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_openpiton.cpp.o.d"
  "/root/repo/tests/test_opt.cpp" "tests/CMakeFiles/m3d_tests.dir/test_opt.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_opt.cpp.o.d"
  "/root/repo/tests/test_opt2.cpp" "tests/CMakeFiles/m3d_tests.dir/test_opt2.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_opt2.cpp.o.d"
  "/root/repo/tests/test_paper_shape.cpp" "tests/CMakeFiles/m3d_tests.dir/test_paper_shape.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_paper_shape.cpp.o.d"
  "/root/repo/tests/test_place.cpp" "tests/CMakeFiles/m3d_tests.dir/test_place.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_place.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/m3d_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/m3d_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_route.cpp" "tests/CMakeFiles/m3d_tests.dir/test_route.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_route.cpp.o.d"
  "/root/repo/tests/test_sta.cpp" "tests/CMakeFiles/m3d_tests.dir/test_sta.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_sta.cpp.o.d"
  "/root/repo/tests/test_tech.cpp" "tests/CMakeFiles/m3d_tests.dir/test_tech.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_tech.cpp.o.d"
  "/root/repo/tests/test_tile_array.cpp" "tests/CMakeFiles/m3d_tests.dir/test_tile_array.cpp.o" "gcc" "tests/CMakeFiles/m3d_tests.dir/test_tile_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/m3d_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flows/CMakeFiles/m3d_flows.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/m3d_io.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/m3d_report.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/m3d_place.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/m3d_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/m3d_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/m3d_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/m3d_power.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/m3d_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/m3d_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/m3d_route.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/m3d_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/m3d_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/m3d_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
