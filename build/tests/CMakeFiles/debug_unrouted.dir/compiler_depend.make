# Empty compiler generated dependencies file for debug_unrouted.
# This may be replaced when dependencies are built.
