file(REMOVE_RECURSE
  "CMakeFiles/debug_unrouted.dir/debug_unrouted.cpp.o"
  "CMakeFiles/debug_unrouted.dir/debug_unrouted.cpp.o.d"
  "debug_unrouted"
  "debug_unrouted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_unrouted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
