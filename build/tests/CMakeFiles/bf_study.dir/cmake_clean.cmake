file(REMOVE_RECURSE
  "CMakeFiles/bf_study.dir/bf_study.cpp.o"
  "CMakeFiles/bf_study.dir/bf_study.cpp.o.d"
  "bf_study"
  "bf_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
