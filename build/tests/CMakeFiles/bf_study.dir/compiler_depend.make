# Empty compiler generated dependencies file for bf_study.
# This may be replaced when dependencies are built.
