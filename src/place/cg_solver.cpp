#include "place/cg_solver.hpp"

#include <cassert>
#include <cmath>

namespace m3d {

void CgSystem::multiply(const std::vector<double>& x, std::vector<double>& y) const {
  for (int i = 0; i < n_; ++i) {
    y[static_cast<std::size_t>(i)] = diag_[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
  }
  for (const Edge& e : edges_) {
    y[static_cast<std::size_t>(e.i)] -= e.w * x[static_cast<std::size_t>(e.j)];
    y[static_cast<std::size_t>(e.j)] -= e.w * x[static_cast<std::size_t>(e.i)];
  }
}

int CgSystem::solve(std::vector<double>& x, int maxIters, double tol) const {
  assert(static_cast<int>(x.size()) == n_);
  if (n_ == 0) return 0;

  std::vector<double> r(static_cast<std::size_t>(n_));
  std::vector<double> z(static_cast<std::size_t>(n_));
  std::vector<double> p(static_cast<std::size_t>(n_));
  std::vector<double> ap(static_cast<std::size_t>(n_));

  multiply(x, r);
  double rhsNorm2 = 0.0;
  for (int i = 0; i < n_; ++i) {
    r[static_cast<std::size_t>(i)] = rhs_[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)];
    rhsNorm2 += rhs_[static_cast<std::size_t>(i)] * rhs_[static_cast<std::size_t>(i)];
  }
  const double threshold = tol * tol * std::max(rhsNorm2, 1e-30);

  auto precond = [this](const std::vector<double>& in, std::vector<double>& out) {
    for (int i = 0; i < n_; ++i) {
      const double d = diag_[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i)] = d > 0.0 ? in[static_cast<std::size_t>(i)] / d
                                                 : in[static_cast<std::size_t>(i)];
    }
  };

  precond(r, z);
  p = z;
  double rz = 0.0;
  for (int i = 0; i < n_; ++i) rz += r[static_cast<std::size_t>(i)] * z[static_cast<std::size_t>(i)];

  int iter = 0;
  for (; iter < maxIters; ++iter) {
    double rNorm2 = 0.0;
    for (int i = 0; i < n_; ++i) rNorm2 += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
    if (rNorm2 <= threshold) break;

    multiply(p, ap);
    double pap = 0.0;
    for (int i = 0; i < n_; ++i) pap += p[static_cast<std::size_t>(i)] * ap[static_cast<std::size_t>(i)];
    if (pap <= 0.0) break;  // numerical safety
    const double alpha = rz / pap;
    for (int i = 0; i < n_; ++i) {
      x[static_cast<std::size_t>(i)] += alpha * p[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -= alpha * ap[static_cast<std::size_t>(i)];
    }
    precond(r, z);
    double rzNew = 0.0;
    for (int i = 0; i < n_; ++i) rzNew += r[static_cast<std::size_t>(i)] * z[static_cast<std::size_t>(i)];
    const double beta = rzNew / std::max(rz, 1e-30);
    rz = rzNew;
    for (int i = 0; i < n_; ++i) {
      p[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)] + beta * p[static_cast<std::size_t>(i)];
    }
  }
  return iter;
}

}  // namespace m3d
