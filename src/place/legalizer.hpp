#pragma once

/// \file legalizer.hpp
/// Tetris-style row legalizer.
///
/// Snaps movable standard cells to rows and sites, avoiding blockages.
/// Partial blockages (S2D/C2D macro modeling) are realized as alternating
/// blocked/free stripes at a configurable spatial resolution — commercial
/// engines honor partial blockages at a similarly coarse granularity, which
/// is exactly the inaccuracy the paper calls out (Sec. III: "the spatial
/// resolution used by commercial 2D P&R tools to take care of partial
/// blockages is not fine enough").

#include <vector>

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"

namespace m3d {

struct LegalizerOptions {
  /// Stripe period used to discretize partial blockages [DBU].
  Dbu partialBlockageResolution = umToDbu(8.0);
  /// Row search window above/below the desired row.
  int rowSearchWindow = 48;
  /// Width multiplier applied to every movable cell during legalization.
  /// The S2D/C2D pseudo phase legalizes at sqrt(2)x width so that after the
  /// 1/sqrt(2) tier-partitioning mapping the full-size cells are spaced
  /// legally -- the inflated-view equivalent of S2D's cell shrinking.
  double cellWidthScale = 1.0;
};

struct LegalizeResult {
  bool success = false;
  double avgDisplacementUm = 0.0;
  double maxDisplacementUm = 0.0;
  int failedCells = 0;
};

/// Legalizes every movable (non-fixed, non-macro) instance of \p nl into the
/// rows of \p fp. Positions are updated in place. Cells whose target row
/// region is exhausted spill to farther rows; if nothing fits at all the
/// cell counts as failed (success=false).
LegalizeResult legalize(Netlist& nl, const Floorplan& fp,
                        const LegalizerOptions& opt = LegalizerOptions{});

/// Checks that all movable cells sit on row/site grid inside the die and do
/// not overlap each other or full blockages. Returns a diagnostic string.
std::string checkLegality(const Netlist& nl, const Floorplan& fp);

}  // namespace m3d
