#include "place/analytic/fft.hpp"

#include <cassert>
#include <cmath>

#include "core/parallel.hpp"

namespace m3d::place {

namespace {

constexpr double kPi = 3.14159265358979323846;

bool isPow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

int ceilPow2(int v) {
  int n = 1;
  while (n < v) n <<= 1;
  return n;
}

void fftPow2(std::vector<std::complex<double>>& a, bool inverse) {
  const int n = static_cast<int>(a.size());
  assert(isPow2(n));
  if (n == 1) return;

  // Bit-reversal permutation: fixed order, independent of everything but n.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (int len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / len * (inverse ? 1.0 : -1.0);
    const std::complex<double> wStep(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      const int half = len >> 1;
      for (int j = 0; j < half; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + half] * w;
        a[i + j] = u + v;
        a[i + j + half] = u - v;
        w *= wStep;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / n;
    for (auto& c : a) c *= inv;
  }
}

void dct2InPlace(std::vector<double>& x, std::vector<std::complex<double>>& scratch) {
  const int n = static_cast<int>(x.size());
  assert(isPow2(n));
  if (n == 1) {
    x[0] *= 2.0;
    return;
  }
  // Makhoul even-odd reordering: v[j] = x[2j], v[n-1-j] = x[2j+1].
  scratch.resize(n);
  const int half = n >> 1;
  for (int j = 0; j < half; ++j) {
    scratch[j] = std::complex<double>(x[2 * j], 0.0);
    scratch[n - 1 - j] = std::complex<double>(x[2 * j + 1], 0.0);
  }
  fftPow2(scratch, /*inverse=*/false);
  // X[k] = 2 * Re(exp(-i*pi*k/(2n)) * V[k]).
  for (int k = 0; k < n; ++k) {
    const double th = kPi * k / (2.0 * n);
    const std::complex<double> tw(std::cos(th), -std::sin(th));
    x[k] = 2.0 * (tw * scratch[k]).real();
  }
}

void idct2InPlace(std::vector<double>& x, std::vector<std::complex<double>>& scratch) {
  const int n = static_cast<int>(x.size());
  assert(isPow2(n));
  if (n == 1) {
    x[0] *= 0.5;
    return;
  }
  // Inverse Makhoul: V[k] = exp(i*pi*k/(2n)) * (X[k] - i*X[n-k]) / 2, X[n]=0.
  scratch.resize(n);
  for (int k = 0; k < n; ++k) {
    const double xk = x[k];
    const double xnk = (k == 0) ? 0.0 : x[n - k];
    const double th = kPi * k / (2.0 * n);
    const std::complex<double> tw(std::cos(th), std::sin(th));
    scratch[k] = tw * std::complex<double>(xk * 0.5, -xnk * 0.5);
  }
  fftPow2(scratch, /*inverse=*/true);
  const int half = n >> 1;
  for (int j = 0; j < half; ++j) {
    x[2 * j] = scratch[j].real();
    x[2 * j + 1] = scratch[n - 1 - j].real();
  }
}

void dct2d(std::vector<double>& data, int nx, int ny, int numThreads) {
  assert(static_cast<int>(data.size()) == nx * ny);
  // Rows: each 1D transform touches only its own row -> bit-identical at any
  // thread count.
  par::parallelFor(0, ny, /*grainSize=*/1, [&](std::int64_t r) {
    std::vector<double> row(data.begin() + static_cast<std::size_t>(r) * nx,
                            data.begin() + static_cast<std::size_t>(r + 1) * nx);
    std::vector<std::complex<double>> scratch;
    dct2InPlace(row, scratch);
    std::copy(row.begin(), row.end(), data.begin() + static_cast<std::size_t>(r) * nx);
  }, numThreads);
  // Columns.
  par::parallelFor(0, nx, /*grainSize=*/1, [&](std::int64_t c) {
    std::vector<double> col(ny);
    for (int r = 0; r < ny; ++r) col[r] = data[static_cast<std::size_t>(r) * nx + c];
    std::vector<std::complex<double>> scratch;
    dct2InPlace(col, scratch);
    for (int r = 0; r < ny; ++r) data[static_cast<std::size_t>(r) * nx + c] = col[r];
  }, numThreads);
}

void idct2d(std::vector<double>& data, int nx, int ny, int numThreads) {
  assert(static_cast<int>(data.size()) == nx * ny);
  par::parallelFor(0, nx, /*grainSize=*/1, [&](std::int64_t c) {
    std::vector<double> col(ny);
    for (int r = 0; r < ny; ++r) col[r] = data[static_cast<std::size_t>(r) * nx + c];
    std::vector<std::complex<double>> scratch;
    idct2InPlace(col, scratch);
    for (int r = 0; r < ny; ++r) data[static_cast<std::size_t>(r) * nx + c] = col[r];
  }, numThreads);
  par::parallelFor(0, ny, /*grainSize=*/1, [&](std::int64_t r) {
    std::vector<double> row(data.begin() + static_cast<std::size_t>(r) * nx,
                            data.begin() + static_cast<std::size_t>(r + 1) * nx);
    std::vector<std::complex<double>> scratch;
    idct2InPlace(row, scratch);
    std::copy(row.begin(), row.end(), data.begin() + static_cast<std::size_t>(r) * nx);
  }, numThreads);
}

}  // namespace m3d::place
