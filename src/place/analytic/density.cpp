#include "place/analytic/density.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/parallel.hpp"
#include "geom/units.hpp"
#include "place/analytic/fft.hpp"

namespace m3d::place {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr std::int64_t kCellGrain = 256;

int gridDimFor(std::size_t numMovable) {
  const int want = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(
      std::max<std::size_t>(numMovable, 1)))));
  return std::clamp(ceilPow2(want), 8, 256);
}

}  // namespace

std::vector<double> solvePoissonDct(const std::vector<double>& rho, int nx, int ny, double hx,
                                    double hy, int numThreads) {
  assert(static_cast<int>(rho.size()) == nx * ny);
  std::vector<double> psi(rho);
  double mean = 0.0;
  for (double v : psi) mean += v;
  mean /= static_cast<double>(psi.size());
  for (double& v : psi) v -= mean;

  dct2d(psi, nx, ny, numThreads);
  // Exact eigenvalues of the mirrored-ghost 5-point stencil: dividing here
  // and transforming back makes L*psi == -(rho - mean) up to rounding, which
  // is what the round-trip test checks.
  for (int v = 0; v < ny; ++v) {
    const double ly = (2.0 - 2.0 * std::cos(kPi * v / ny)) / (hy * hy);
    for (int u = 0; u < nx; ++u) {
      const std::size_t idx = static_cast<std::size_t>(v) * nx + u;
      if (u == 0 && v == 0) {
        psi[idx] = 0.0;
        continue;
      }
      const double lx = (2.0 - 2.0 * std::cos(kPi * u / nx)) / (hx * hx);
      psi[idx] /= (lx + ly);
    }
  }
  idct2d(psi, nx, ny, numThreads);
  return psi;
}

std::vector<double> applyNeumannLaplacian(const std::vector<double>& psi, int nx, int ny,
                                          double hx, double hy) {
  assert(static_cast<int>(psi.size()) == nx * ny);
  std::vector<double> out(psi.size(), 0.0);
  auto at = [&](int bx, int by) {
    bx = std::clamp(bx, 0, nx - 1);  // mirrored ghost: psi[-1] == psi[0]
    by = std::clamp(by, 0, ny - 1);
    return psi[static_cast<std::size_t>(by) * nx + bx];
  };
  for (int by = 0; by < ny; ++by) {
    for (int bx = 0; bx < nx; ++bx) {
      const double c = at(bx, by);
      const double d2x = (at(bx - 1, by) - 2.0 * c + at(bx + 1, by)) / (hx * hx);
      const double d2y = (at(bx, by - 1) - 2.0 * c + at(bx, by + 1)) / (hy * hy);
      out[static_cast<std::size_t>(by) * nx + bx] = d2x + d2y;
    }
  }
  return out;
}

DensityGrid::DensityGrid(const Netlist& nl, const Floorplan& fp,
                         const std::vector<InstId>& movable, double targetDensity,
                         int numThreads)
    : numThreads_(numThreads) {
  const int dim = gridDimFor(movable.size());
  nx_ = dim;
  ny_ = dim;
  dieXloUm_ = dbuToUm(fp.die.xlo);
  dieYloUm_ = dbuToUm(fp.die.ylo);
  hx_ = dbuToUm(fp.die.width()) / nx_;
  hy_ = dbuToUm(fp.die.height()) / ny_;
  const double binArea = hx_ * hy_;

  nReal_ = movable.size();
  wUm_.resize(movable.size());
  hUm_.resize(movable.size());
  q_.resize(movable.size());
  for (std::size_t v = 0; v < movable.size(); ++v) {
    const CellType& ct = nl.cellOf(movable[v]);
    wUm_[v] = dbuToUm(ct.substrateWidth);
    hUm_[v] = dbuToUm(ct.substrateHeight);
    q_[v] = wUm_[v] * hUm_[v];
    totalMovableArea_ += q_[v];
  }

  // Fixed charge and capacity per bin from the floorplan blockages. The MoL
  // macro obstacles of the superimposed Macro-3D floorplan arrive here as
  // regular (often partial-density) blockages.
  const std::size_t nb = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  fixed_.assign(nb, 0.0);
  cap_.assign(nb, 0.0);
  for (int by = 0; by < ny_; ++by) {
    for (int bx = 0; bx < nx_; ++bx) {
      const double xlo = dieXloUm_ + bx * hx_;
      const double ylo = dieYloUm_ + by * hy_;
      const double xhi = xlo + hx_;
      const double yhi = ylo + hy_;
      double blocked = 0.0;
      for (const Blockage& b : fp.blockages) {
        const double ox = std::min(xhi, dbuToUm(b.rect.xhi)) - std::max(xlo, dbuToUm(b.rect.xlo));
        const double oy = std::min(yhi, dbuToUm(b.rect.yhi)) - std::max(ylo, dbuToUm(b.rect.ylo));
        if (ox > 0.0 && oy > 0.0) blocked += b.density * ox * oy;
      }
      blocked = std::min(blocked, binArea);
      const std::size_t idx = static_cast<std::size_t>(by) * nx_ + bx;
      fixed_[idx] = blocked;
      cap_[idx] = std::max(0.0, binArea - blocked) * targetDensity;
      totalCap_ += cap_[idx];
    }
  }

  mov_.assign(nb, 0.0);
  movReal_.assign(nb, 0.0);
  psi_.assign(nb, 0.0);
  ex_.assign(nb, 0.0);
  ey_.assign(nb, 0.0);
  gradX_.assign(movable.size(), 0.0);
  gradY_.assign(movable.size(), 0.0);
}

void DensityGrid::addFillers(std::size_t count, double wUm, double hUm) {
  wUm_.insert(wUm_.end(), count, wUm);
  hUm_.insert(hUm_.end(), count, hUm);
  q_.insert(q_.end(), count, wUm * hUm);
  gradX_.assign(q_.size(), 0.0);
  gradY_.assign(q_.size(), 0.0);
}

void DensityGrid::scatter(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() <= q_.size() && x.size() == y.size());
  std::fill(mov_.begin(), mov_.end(), 0.0);
  std::fill(movReal_.begin(), movReal_.end(), 0.0);
  // Sequential pass: cheap (each cell touches at most a handful of bins) and
  // trivially thread-count independent.
  for (std::size_t v = 0; v < x.size(); ++v) {
    // Smoothed footprint: inflate sub-bin cells to one bin, preserving area.
    const double effW = std::max(wUm_[v], hx_);
    const double effH = std::max(hUm_[v], hy_);
    const double scale = q_[v] / (effW * effH);
    const double cx = x[v] + 0.5 * wUm_[v];
    const double cy = y[v] + 0.5 * hUm_[v];
    const double xlo = cx - 0.5 * effW - dieXloUm_;
    const double ylo = cy - 0.5 * effH - dieYloUm_;
    const int bx0 = std::clamp(static_cast<int>(std::floor(xlo / hx_)), 0, nx_ - 1);
    const int by0 = std::clamp(static_cast<int>(std::floor(ylo / hy_)), 0, ny_ - 1);
    const int bx1 = std::clamp(static_cast<int>(std::floor((xlo + effW) / hx_)), 0, nx_ - 1);
    const int by1 = std::clamp(static_cast<int>(std::floor((ylo + effH) / hy_)), 0, ny_ - 1);
    for (int by = by0; by <= by1; ++by) {
      const double oy = std::min(ylo + effH, (by + 1) * hy_) - std::max(ylo, by * hy_);
      if (oy <= 0.0) continue;
      for (int bx = bx0; bx <= bx1; ++bx) {
        const double ox = std::min(xlo + effW, (bx + 1) * hx_) - std::max(xlo, bx * hx_);
        if (ox <= 0.0) continue;
        const std::size_t idx = static_cast<std::size_t>(by) * nx_ + bx;
        const double share = ox * oy * scale;
        mov_[idx] += share;
        if (v < nReal_) movReal_[idx] += share;
      }
    }
  }
  // Overflow counts only real-cell demand: fillers exist to soak up free
  // space, so their presence in a bin must not read as congestion.
  double over = 0.0;
  for (std::size_t b = 0; b < movReal_.size(); ++b) {
    over += std::max(0.0, movReal_[b] - cap_[b]);
  }
  overflow_ = totalMovableArea_ > 0.0 ? over / totalMovableArea_ : 0.0;
}

double DensityGrid::measureOverflow(const std::vector<double>& x, const std::vector<double>& y) {
  scatter(x, y);
  return overflow_;
}

void DensityGrid::update(const std::vector<double>& x, const std::vector<double>& y) {
  scatter(x, y);

  const double binArea = hx_ * hy_;
  std::vector<double> rho(mov_.size());
  for (std::size_t b = 0; b < mov_.size(); ++b) rho[b] = (mov_[b] + fixed_[b]) / binArea;
  psi_ = solvePoissonDct(rho, nx_, ny_, hx_, hy_, numThreads_);

  // d(psi)/dx|dy at bin centers, one-sided at the walls (where the Neumann
  // condition makes the normal derivative vanish anyway).
  for (int by = 0; by < ny_; ++by) {
    for (int bx = 0; bx < nx_; ++bx) {
      const std::size_t idx = static_cast<std::size_t>(by) * nx_ + bx;
      const int xm = std::max(bx - 1, 0);
      const int xp = std::min(bx + 1, nx_ - 1);
      const int ym = std::max(by - 1, 0);
      const int yp = std::min(by + 1, ny_ - 1);
      ex_[idx] = (psi_[static_cast<std::size_t>(by) * nx_ + xp] -
                  psi_[static_cast<std::size_t>(by) * nx_ + xm]) /
                 ((xp - xm) * hx_);
      ey_[idx] = (psi_[static_cast<std::size_t>(yp) * nx_ + bx] -
                  psi_[static_cast<std::size_t>(ym) * nx_ + bx]) /
                 ((yp - ym) * hy_);
    }
  }

  // Per-cell gradient gather: each cell integrates the field over its own
  // smoothed footprint and writes only its own slot.
  par::parallelFor(0, static_cast<std::int64_t>(x.size()), kCellGrain, [&](std::int64_t vi) {
    const std::size_t v = static_cast<std::size_t>(vi);
    const double effW = std::max(wUm_[v], hx_);
    const double effH = std::max(hUm_[v], hy_);
    const double scale = q_[v] / (effW * effH);
    const double cx = x[v] + 0.5 * wUm_[v];
    const double cy = y[v] + 0.5 * hUm_[v];
    const double xlo = cx - 0.5 * effW - dieXloUm_;
    const double ylo = cy - 0.5 * effH - dieYloUm_;
    const int bx0 = std::clamp(static_cast<int>(std::floor(xlo / hx_)), 0, nx_ - 1);
    const int by0 = std::clamp(static_cast<int>(std::floor(ylo / hy_)), 0, ny_ - 1);
    const int bx1 = std::clamp(static_cast<int>(std::floor((xlo + effW) / hx_)), 0, nx_ - 1);
    const int by1 = std::clamp(static_cast<int>(std::floor((ylo + effH) / hy_)), 0, ny_ - 1);
    double gx = 0.0;
    double gy = 0.0;
    for (int by = by0; by <= by1; ++by) {
      const double oy = std::min(ylo + effH, (by + 1) * hy_) - std::max(ylo, by * hy_);
      if (oy <= 0.0) continue;
      for (int bx = bx0; bx <= bx1; ++bx) {
        const double ox = std::min(xlo + effW, (bx + 1) * hx_) - std::max(xlo, bx * hx_);
        if (ox <= 0.0) continue;
        const std::size_t idx = static_cast<std::size_t>(by) * nx_ + bx;
        const double share = ox * oy * scale;
        gx += share * ex_[idx];
        gy += share * ey_[idx];
      }
    }
    gradX_[v] = gx;
    gradY_[v] = gy;
  }, numThreads_);
}

double densityOverflow(const Netlist& nl, const Floorplan& fp, double targetDensity,
                       int numThreads) {
  std::vector<InstId> movable;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (inst.fixed || nl.cellOf(i).isMacro()) continue;
    movable.push_back(i);
  }
  if (movable.empty()) return 0.0;
  DensityGrid grid(nl, fp, movable, targetDensity, numThreads);
  std::vector<double> x(movable.size());
  std::vector<double> y(movable.size());
  for (std::size_t v = 0; v < movable.size(); ++v) {
    const Instance& inst = nl.instance(movable[v]);
    x[v] = dbuToUm(inst.pos.x);
    y[v] = dbuToUm(inst.pos.y);
  }
  return grid.measureOverflow(x, y);
}

}  // namespace m3d::place
