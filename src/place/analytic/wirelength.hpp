#pragma once

/// \file wirelength.hpp
/// Weighted-average (WA) smoothed wirelength with analytic gradients for the
/// analytic placer. Per net and axis, the max/min pin coordinates are
/// approximated by
///   WA+ = sum(c_i * e^{(c_i-M)/g}) / sum(e^{(c_i-M)/g})    (M = max c_i)
///   WA- = sum(c_i * e^{(m-c_i)/g}) / sum(e^{(m-c_i)/g})    (m = min c_i)
/// whose difference converges to the exact HPWL as the smoothing parameter g
/// shrinks; subtracting the bound inside the exponent keeps every term in
/// (0, 1].
///
/// Bistratal awareness: nets with a pin on a fixed macro-die instance cross
/// the F2F interface of the superimposed Macro-3D floorplan and can carry a
/// distinct weight (splitNetWeight), mirroring the bistratal net split of
/// the die-to-die analytic placement literature.
///
/// Determinism: pass A computes per-net aggregates (each net written by
/// exactly one chunk) and folds the smoothed-WL partial sums in ascending
/// chunk order; pass B gathers per-cell gradients (each cell writes only its
/// own slot). Bit-identical at any thread count.

#include <vector>

#include "netlist/netlist.hpp"

namespace m3d::place {

class WirelengthModel {
 public:
  /// \p varOf maps InstId -> movable variable index (-1 = fixed). Nets with
  /// fewer than two pins are dropped; clock nets are scaled by
  /// \p clockNetWeight and F2F die-split nets by \p splitNetWeight.
  WirelengthModel(const Netlist& nl, const std::vector<int>& varOf, int numMovable,
                  double clockNetWeight, double splitNetWeight);

  /// Evaluates the smoothed wirelength [um] at origin coordinates (x, y)
  /// with smoothing \p gamma [um] and refreshes gradX()/gradY().
  double evaluate(const std::vector<double>& x, const std::vector<double>& y, double gamma,
                  int numThreads);

  /// Exact HPWL [um] of the model's nets at (x, y); no gradient work.
  double hpwl(const std::vector<double>& x, const std::vector<double>& y,
              int numThreads) const;

  const std::vector<double>& gradX() const { return gradX_; }
  const std::vector<double>& gradY() const { return gradY_; }

  /// Number of net pins attached to movable cell \p v (preconditioner).
  int pinCount(int v) const { return cellStart_[static_cast<std::size_t>(v) + 1] -
                                     cellStart_[static_cast<std::size_t>(v)]; }

 private:
  struct NetAux {
    double max, sMax, waMax;
    double min, sMin, waMin;
  };

  int numNets_ = 0;
  // CSR over net pins. pinVar >= 0: movable, coordinate = x[var] + off;
  // pinVar < 0: fixed, coordinate = off (absolute pin position).
  std::vector<int> netStart_;
  std::vector<int> pinVar_;
  std::vector<double> pinOffX_;
  std::vector<double> pinOffY_;
  std::vector<double> netWeight_;
  // CSR over movable cells: flattened pin index + owning net per entry.
  std::vector<int> cellStart_;
  std::vector<int> cellPinFlat_;
  std::vector<int> cellPinNet_;

  std::vector<NetAux> auxX_;
  std::vector<NetAux> auxY_;
  std::vector<double> gradX_;
  std::vector<double> gradY_;
};

}  // namespace m3d::place
