#include "place/analytic/wirelength.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/parallel.hpp"
#include "geom/units.hpp"

namespace m3d::place {

namespace {
constexpr std::int64_t kNetGrain = 256;
constexpr std::int64_t kCellGrain = 256;
}  // namespace

WirelengthModel::WirelengthModel(const Netlist& nl, const std::vector<int>& varOf,
                                 int numMovable, double clockNetWeight,
                                 double splitNetWeight) {
  numNets_ = nl.numNets();
  netStart_.reserve(static_cast<std::size_t>(numNets_) + 1);
  netStart_.push_back(0);
  netWeight_.reserve(static_cast<std::size_t>(numNets_));

  std::vector<std::vector<int>> cellPins(static_cast<std::size_t>(numMovable));
  for (NetId n = 0; n < numNets_; ++n) {
    const Net& net = nl.net(n);
    double w = net.pins.size() >= 2 ? (net.isClock ? clockNetWeight : 1.0) : 0.0;
    bool split = false;
    if (w > 0.0) {
      for (const NetPin& p : net.pins) {
        int var = -1;
        if (p.kind == NetPin::Kind::kInstPin) {
          var = varOf[static_cast<std::size_t>(p.inst)];
          if (var < 0 && nl.instance(p.inst).die == DieId::kMacro) split = true;
        }
        const int flat = static_cast<int>(pinVar_.size());
        if (var >= 0) {
          // Movable: store the pin offset relative to the instance origin.
          const LibPin& lp = nl.cellOf(p.inst).pins[static_cast<std::size_t>(p.libPin)];
          pinVar_.push_back(var);
          pinOffX_.push_back(dbuToUm(lp.offset.x));
          pinOffY_.push_back(dbuToUm(lp.offset.y));
          cellPins[static_cast<std::size_t>(var)].push_back(flat);
        } else {
          // Fixed pin (pre-placed instance, macro or port): absolute coords.
          const Point pp = nl.pinPosition(p);
          pinVar_.push_back(-1);
          pinOffX_.push_back(dbuToUm(pp.x));
          pinOffY_.push_back(dbuToUm(pp.y));
        }
      }
      if (split) w *= splitNetWeight;
    }
    netWeight_.push_back(w);
    netStart_.push_back(static_cast<int>(pinVar_.size()));
  }

  cellStart_.reserve(static_cast<std::size_t>(numMovable) + 1);
  cellStart_.push_back(0);
  for (int v = 0; v < numMovable; ++v) {
    for (int flat : cellPins[static_cast<std::size_t>(v)]) {
      cellPinFlat_.push_back(flat);
      // Owning net via the CSR bounds (pins were appended net by net).
      const auto it = std::upper_bound(netStart_.begin(), netStart_.end(), flat);
      cellPinNet_.push_back(static_cast<int>(it - netStart_.begin()) - 1);
    }
    cellStart_.push_back(static_cast<int>(cellPinFlat_.size()));
  }

  auxX_.resize(static_cast<std::size_t>(numNets_));
  auxY_.resize(static_cast<std::size_t>(numNets_));
  gradX_.assign(static_cast<std::size_t>(numMovable), 0.0);
  gradY_.assign(static_cast<std::size_t>(numMovable), 0.0);
}

double WirelengthModel::evaluate(const std::vector<double>& x, const std::vector<double>& y,
                                 double gamma, int numThreads) {
  const double invG = 1.0 / gamma;

  // Pass A: per-net aggregates (slot-exclusive writes) + smoothed WL folded
  // in chunk order.
  auto netPass = [&](const std::vector<double>& coord, const std::vector<double>& off,
                     std::vector<NetAux>& aux, std::int64_t lo, std::int64_t hi) {
    double sum = 0.0;
    for (std::int64_t n = lo; n < hi; ++n) {
      const double w = netWeight_[static_cast<std::size_t>(n)];
      if (w <= 0.0) continue;
      const int p0 = netStart_[static_cast<std::size_t>(n)];
      const int p1 = netStart_[static_cast<std::size_t>(n) + 1];
      double cMax = -1e300;
      double cMin = 1e300;
      for (int p = p0; p < p1; ++p) {
        const int var = pinVar_[static_cast<std::size_t>(p)];
        const double c = (var >= 0 ? coord[static_cast<std::size_t>(var)] : 0.0) +
                         off[static_cast<std::size_t>(p)];
        cMax = std::max(cMax, c);
        cMin = std::min(cMin, c);
      }
      double sMax = 0.0, tMax = 0.0, sMin = 0.0, tMin = 0.0;
      for (int p = p0; p < p1; ++p) {
        const int var = pinVar_[static_cast<std::size_t>(p)];
        const double c = (var >= 0 ? coord[static_cast<std::size_t>(var)] : 0.0) +
                         off[static_cast<std::size_t>(p)];
        const double eMax = std::exp((c - cMax) * invG);
        const double eMin = std::exp((cMin - c) * invG);
        sMax += eMax;
        tMax += (c - cMax) * eMax;
        sMin += eMin;
        tMin += (c - cMin) * eMin;
      }
      NetAux& a = aux[static_cast<std::size_t>(n)];
      a.max = cMax;
      a.sMax = sMax;
      a.waMax = cMax + tMax / sMax;
      a.min = cMin;
      a.sMin = sMin;
      a.waMin = cMin + tMin / sMin;
      sum += w * (a.waMax - a.waMin);
    }
    return sum;
  };

  const double wlX = par::parallelReduce<double>(
      0, numNets_, kNetGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) { return netPass(x, pinOffX_, auxX_, lo, hi); },
      [](double a, double b) { return a + b; }, numThreads);
  const double wlY = par::parallelReduce<double>(
      0, numNets_, kNetGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) { return netPass(y, pinOffY_, auxY_, lo, hi); },
      [](double a, double b) { return a + b; }, numThreads);

  // Pass B: per-cell gradient gather; each cell writes only its own slot.
  const std::int64_t numCells = static_cast<std::int64_t>(gradX_.size());
  par::parallelFor(0, numCells, kCellGrain, [&](std::int64_t vi) {
    const std::size_t v = static_cast<std::size_t>(vi);
    double gx = 0.0;
    double gy = 0.0;
    for (int k = cellStart_[v]; k < cellStart_[v + 1]; ++k) {
      const std::size_t p = static_cast<std::size_t>(cellPinFlat_[static_cast<std::size_t>(k)]);
      const std::size_t n = static_cast<std::size_t>(cellPinNet_[static_cast<std::size_t>(k)]);
      const double w = netWeight_[n];
      {
        const NetAux& a = auxX_[n];
        const double c = x[v] + pinOffX_[p];
        const double eMax = std::exp((c - a.max) * invG);
        const double eMin = std::exp((a.min - c) * invG);
        gx += w * (eMax * (1.0 + (c - a.waMax) * invG) / a.sMax -
                   eMin * (1.0 - (c - a.waMin) * invG) / a.sMin);
      }
      {
        const NetAux& a = auxY_[n];
        const double c = y[v] + pinOffY_[p];
        const double eMax = std::exp((c - a.max) * invG);
        const double eMin = std::exp((a.min - c) * invG);
        gy += w * (eMax * (1.0 + (c - a.waMax) * invG) / a.sMax -
                   eMin * (1.0 - (c - a.waMin) * invG) / a.sMin);
      }
    }
    gradX_[v] = gx;
    gradY_[v] = gy;
  }, numThreads);

  return wlX + wlY;
}

double WirelengthModel::hpwl(const std::vector<double>& x, const std::vector<double>& y,
                             int numThreads) const {
  return par::parallelReduce<double>(
      0, numNets_, kNetGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double sum = 0.0;
        for (std::int64_t n = lo; n < hi; ++n) {
          const int p0 = netStart_[static_cast<std::size_t>(n)];
          const int p1 = netStart_[static_cast<std::size_t>(n) + 1];
          if (p0 == p1) continue;
          double xMax = -1e300, xMin = 1e300, yMax = -1e300, yMin = 1e300;
          for (int p = p0; p < p1; ++p) {
            const int var = pinVar_[static_cast<std::size_t>(p)];
            const double cx = (var >= 0 ? x[static_cast<std::size_t>(var)] : 0.0) +
                              pinOffX_[static_cast<std::size_t>(p)];
            const double cy = (var >= 0 ? y[static_cast<std::size_t>(var)] : 0.0) +
                              pinOffY_[static_cast<std::size_t>(p)];
            xMax = std::max(xMax, cx);
            xMin = std::min(xMin, cx);
            yMax = std::max(yMax, cy);
            yMin = std::min(yMin, cy);
          }
          sum += (xMax - xMin) + (yMax - yMin);
        }
        return sum;
      },
      [](double a, double b) { return a + b; }, numThreads);
}

}  // namespace m3d::place
