#pragma once

/// \file fft.hpp
/// Dependency-free power-of-two FFT and 2D DCT transforms for the analytic
/// placer's electrostatic density solve.
///
/// The 1D kernels are iterative radix-2 butterflies evaluated in a fixed
/// order (bit-reversal permutation, then ascending stage length), so every
/// call computes the exact same floating-point operation sequence. The 2D
/// transforms parallelize over rows/columns on core/parallel; each 1D
/// transform is self-contained, so results are bit-identical at any thread
/// count by construction.

#include <complex>
#include <vector>

namespace m3d::place {

/// In-place complex FFT of \p a (size must be a power of two, >= 1).
/// inverse=true applies the conjugate transform and the 1/n scale.
void fftPow2(std::vector<std::complex<double>>& a, bool inverse);

/// Unnormalized DCT-II of \p x in place (size n, power of two):
///   X[k] = 2 * sum_j x[j] * cos(pi*k*(2j+1)/(2n)).
/// Computed via Makhoul's even-odd reordering and one n-point FFT.
void dct2InPlace(std::vector<double>& x, std::vector<std::complex<double>>& scratch);

/// Exact inverse of dct2InPlace (DCT-III with matching normalization):
/// idct(dct(x)) == x up to floating-point rounding.
void idct2InPlace(std::vector<double>& x, std::vector<std::complex<double>>& scratch);

/// Row-major 2D grid transform: DCT-II along every row, then every column.
/// \p data has ny rows of nx values; nx and ny must be powers of two.
/// Rows/columns run on the thread pool (\p numThreads as core/parallel).
void dct2d(std::vector<double>& data, int nx, int ny, int numThreads);

/// Inverse of dct2d (columns first, then rows), same conventions.
void idct2d(std::vector<double>& data, int nx, int ny, int numThreads);

/// Smallest power of two >= v (v >= 1).
int ceilPow2(int v);

}  // namespace m3d::place
