#include "place/analytic/analytic_placer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geom/units.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "place/analytic/density.hpp"
#include "place/analytic/wirelength.hpp"

namespace m3d::place {

namespace {

/// splitmix64 (same jitter hash as the B2B engine).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// WA smoothing from the current overflow: several bins while the placement
/// is dense (smooth, long-range gradients), tightening toward half a bin as
/// the overflow target nears so short nets see accurate HPWL gradients.
double gammaFor(double bin, double overflow) {
  return bin * (0.5 + 7.5 * std::clamp(overflow, 0.0, 1.0));
}

/// Overflow-driven penalty growth: push hard while the placement is dense,
/// gently once it is nearly spread so wirelength recovers.
double penaltyGrowth(double overflow) {
  if (overflow >= 0.30) return 1.12;
  if (overflow >= 0.15) return 1.08;
  return 1.05;
}

}  // namespace

PlaceResult analyticGlobalPlace(Netlist& nl, const Floorplan& fp, const PlacerOptions& opt) {
  obs::ScopedPhase phase("place.analytic");
  PlaceResult result;
  result.engine = PlaceEngine::kAnalytic;

  // Movable instance indexing (same filter as the B2B engine).
  std::vector<InstId> movable;
  std::vector<int> varOf(static_cast<std::size_t>(nl.numInstances()), -1);
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (inst.fixed || nl.cellOf(i).isMacro()) continue;
    varOf[static_cast<std::size_t>(i)] = static_cast<int>(movable.size());
    movable.push_back(i);
  }
  const int n = static_cast<int>(movable.size());
  if (n == 0) {
    result.success = true;
    return result;
  }
  const std::size_t un = static_cast<std::size_t>(n);

  const double dieXlo = dbuToUm(fp.die.xlo);
  const double dieYlo = dbuToUm(fp.die.ylo);
  const double dieXhi = dbuToUm(fp.die.xhi);
  const double dieYhi = dbuToUm(fp.die.yhi);

  std::vector<double> cw(un);
  std::vector<double> ch(un);
  for (int v = 0; v < n; ++v) {
    const CellType& ct = nl.cellOf(movable[static_cast<std::size_t>(v)]);
    cw[static_cast<std::size_t>(v)] = dbuToUm(ct.substrateWidth);
    ch[static_cast<std::size_t>(v)] = dbuToUm(ct.substrateHeight);
  }
  auto clampX = [&](int v, double x) {
    return std::clamp(x, dieXlo, std::max(dieXlo, dieXhi - cw[static_cast<std::size_t>(v)]));
  };
  auto clampY = [&](int v, double y) {
    return std::clamp(y, dieYlo, std::max(dieYlo, dieYhi - ch[static_cast<std::size_t>(v)]));
  };

  // Origin coordinates [um]. u = major (solution) sequence, v = reference
  // (lookahead) sequence of Nesterov's method.
  std::vector<double> ux(un), uy(un);
  for (int v = 0; v < n; ++v) {
    const std::size_t s = static_cast<std::size_t>(v);
    if (opt.useExistingPositions) {
      const Instance& inst = nl.instance(movable[s]);
      ux[s] = clampX(v, dbuToUm(inst.pos.x));
      uy[s] = clampY(v, dbuToUm(inst.pos.y));
    } else {
      const std::uint64_t h1 = mix64(opt.seed * 2654435761ULL + static_cast<std::uint64_t>(v));
      const std::uint64_t h2 = mix64(h1);
      const double cx = 0.5 * (dieXlo + dieXhi);
      const double cy = 0.5 * (dieYlo + dieYhi);
      ux[s] = clampX(v, cx + (static_cast<double>(h1 % 10000) / 10000.0 - 0.5) * (dieXhi - dieXlo) * 0.5);
      uy[s] = clampY(v, cy + (static_cast<double>(h2 % 10000) / 10000.0 - 0.5) * (dieYhi - dieYlo) * 0.5);
    }
  }
  const AnalyticPlacerOptions& ao = opt.analytic;
  WirelengthModel wl(nl, varOf, n, opt.clockNetWeight, ao.splitNetWeight);
  DensityGrid dg(nl, fp, movable, ao.targetDensity, opt.numThreads);
  const double bin = std::max(dg.binW(), dg.binH());

  // ePlace filler cells: the Poisson field drives density toward the uniform
  // mean, not merely under capacity, so on a low-utilization die it would
  // spread the warm-seeded clusters apart long after every bin fits. Fillers
  // are wirelength-free movables that soak up the whitespace instead; they
  // join the density system and the optimizer but never the netlist.
  int nf = 0;
  {
    const double whitespace = std::max(0.0, dg.totalCapacity() - dg.totalMovableArea());
    double avgArea = 0.0;
    for (std::size_t s = 0; s < un; ++s) avgArea += cw[s] * ch[s];
    avgArea /= static_cast<double>(n);
    if (whitespace > 0.0 && avgArea > 0.0) {
      nf = std::clamp(static_cast<int>(whitespace / avgArea), 1, 4 * n);
      const double side = std::sqrt(whitespace / nf);
      dg.addFillers(static_cast<std::size_t>(nf), side, side);
      cw.insert(cw.end(), static_cast<std::size_t>(nf), side);
      ch.insert(ch.end(), static_cast<std::size_t>(nf), side);
    }
  }
  const int nAll = n + nf;
  const std::size_t uAll = static_cast<std::size_t>(nAll);
  ux.resize(uAll);
  uy.resize(uAll);
  for (int v = n; v < nAll; ++v) {
    const std::size_t s = static_cast<std::size_t>(v);
    const std::uint64_t h1 =
        mix64(opt.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(v));
    const std::uint64_t h2 = mix64(h1);
    ux[s] = clampX(v, dieXlo + (static_cast<double>(h1 % 10000) / 10000.0) * (dieXhi - dieXlo));
    uy[s] = clampY(v, dieYlo + (static_cast<double>(h2 % 10000) / 10000.0) * (dieYhi - dieYlo));
  }
  std::vector<double> vx(ux), vy(uy);

  std::vector<double> gx(uAll), gy(uAll);    // preconditioned gradient at v
  std::vector<double> pgx(uAll), pgy(uAll);  // previous preconditioned gradient
  std::vector<double> pvx(uAll), pvy(uAll);  // previous reference point
  double lambda = 0.0;
  double ak = 1.0;
  double alpha = 0.0;
  int iters = 0;

  // Evaluates the combined preconditioned gradient at (vx, vy); returns the
  // density overflow there. All scalar folds are sequential O(n) loops —
  // deterministic by construction and negligible next to the exp-heavy
  // wirelength passes.
  auto evalGradient = [&](double& overflowOut) {
    dg.update(vx, vy);
    overflowOut = dg.overflow();
    wl.evaluate(vx, vy, gammaFor(bin, overflowOut), opt.numThreads);

    double sumW = 0.0, sumD = 0.0, sumQ = 0.0;
    for (int v = 0; v < nAll; ++v) {
      const std::size_t s = static_cast<std::size_t>(v);
      if (v < n) sumW += std::abs(wl.gradX()[s]) + std::abs(wl.gradY()[s]);
      sumD += std::abs(dg.gradX()[s]) + std::abs(dg.gradY()[s]);
      sumQ += dg.charge(v);
    }
    if (lambda == 0.0) {
      // First call: balance the two gradient fields (the ePlace convention).
      // The placement arrives warm (module seeding / region hints), so the
      // density force must hold its structure from the start — a small
      // lambda would let wirelength collapse the seed into a pile that
      // later spreading cannot fully recover from.
      lambda = sumD > 0.0 ? sumW / sumD : 1.0;
    }
    const double fieldScale = sumQ > 0.0 ? sumD / sumQ : 0.0;
    for (int v = 0; v < nAll; ++v) {
      const std::size_t s = static_cast<std::size_t>(v);
      const double wgx = v < n ? wl.gradX()[s] : 0.0;
      const double wgy = v < n ? wl.gradY()[s] : 0.0;
      const double pins = v < n ? static_cast<double>(wl.pinCount(v)) : 0.0;
      const double p = std::max(1.0, pins + lambda * dg.charge(v) * fieldScale);
      gx[s] = (wgx + lambda * dg.gradX()[s]) / p;
      gy[s] = (wgy + lambda * dg.gradY()[s]) / p;
    }
  };

  double overflow = 0.0;
  evalGradient(overflow);
  {
    // First step length: largest preconditioned component moves 0.1 bin.
    double gInf = 0.0;
    for (std::size_t s = 0; s < uAll; ++s) {
      gInf = std::max(gInf, std::max(std::abs(gx[s]), std::abs(gy[s])));
    }
    alpha = gInf > 0.0 ? 0.1 * bin / gInf : bin;
  }

  double bestHpwl = -1.0;
  constexpr std::size_t kPlateauWindow = 10;
  std::vector<double> hpwlWindow;
  for (int iter = 0; iter < ao.maxIters; ++iter) {
    iters = iter + 1;
    pvx = vx;
    pvy = vy;
    pgx = gx;
    pgy = gy;

    // Nesterov major/reference update.
    const double aNext = 0.5 * (1.0 + std::sqrt(4.0 * ak * ak + 1.0));
    const double coef = (ak - 1.0) / aNext;
    for (int v = 0; v < nAll; ++v) {
      const std::size_t s = static_cast<std::size_t>(v);
      const double uxNext = clampX(v, vx[s] - alpha * gx[s]);
      const double uyNext = clampY(v, vy[s] - alpha * gy[s]);
      vx[s] = clampX(v, uxNext + coef * (uxNext - ux[s]));
      vy[s] = clampY(v, uyNext + coef * (uyNext - uy[s]));
      ux[s] = uxNext;
      uy[s] = uyNext;
    }
    ak = aNext;

    evalGradient(overflow);

    // Lipschitz step estimate from successive preconditioned gradients.
    double dv2 = 0.0, dg2 = 0.0;
    for (std::size_t s = 0; s < uAll; ++s) {
      const double dxv = vx[s] - pvx[s];
      const double dyv = vy[s] - pvy[s];
      const double dxg = gx[s] - pgx[s];
      const double dyg = gy[s] - pgy[s];
      dv2 += dxv * dxv + dyv * dyv;
      dg2 += dxg * dxg + dyg * dyg;
    }
    if (dg2 > 0.0 && dv2 > 0.0) {
      alpha = std::sqrt(dv2 / dg2);
      // Cap the worst-case move at a few bins to keep the trajectory stable.
      double gInf = 0.0;
      for (std::size_t s = 0; s < un; ++s) {
        gInf = std::max(gInf, std::max(std::abs(gx[s]), std::abs(gy[s])));
      }
      if (gInf > 0.0) alpha = std::min(alpha, 4.0 * bin / gInf);
    }

    // Two-sided penalty controller: grow while the target is missed, decay
    // gently once met so wirelength keeps recovering against the softest
    // spreading force that still holds the density at the target.
    if (overflow > ao.targetOverflow) {
      lambda *= penaltyGrowth(overflow);
    } else {
      lambda *= 0.95;
    }

    const double iterHpwl = wl.hpwl(ux, uy, opt.numThreads);
    // place.hpwl is the engine-neutral convergence series every placement
    // engine must emit (the smoke report and trace counter tracks assert
    // it); the iter_* pair is the analytic loop's own richer telemetry.
    obs::series("place.hpwl").record(iterHpwl);
    obs::series("place.iter_hpwl").record(iterHpwl);
    obs::series("place.iter_overflow").record(overflow);
    if (bestHpwl < 0.0 || iterHpwl < bestHpwl) bestHpwl = iterHpwl;
    hpwlWindow.push_back(iterHpwl);

    // Converged: overflow at target AND wirelength plateaued — the mean
    // improvement over the trailing window dropped under 0.1%. Stopping on
    // overflow alone would cut healthy trajectories off mid-descent.
    if (iter + 1 >= ao.minIters && overflow <= ao.targetOverflow &&
        hpwlWindow.size() > kPlateauWindow) {
      const double past = hpwlWindow[hpwlWindow.size() - 1 - kPlateauWindow];
      if (iterHpwl > past * (1.0 - 0.001 * kPlateauWindow)) break;
    }
    // Divergence guard: nearly spread but wirelength blowing up — stop and
    // let the legalizer take it from here.
    if (overflow <= 1.5 * ao.targetOverflow && bestHpwl > 0.0 && iterHpwl > 2.0 * bestHpwl) {
      M3D_LOG(warn) << "analytic place: wirelength diverging at overflow " << overflow
                    << ", stopping early";
      break;
    }
  }

  // Write the major solution back and legalize with the shared pipeline.
  for (int v = 0; v < n; ++v) {
    const std::size_t s = static_cast<std::size_t>(v);
    Instance& inst = nl.instance(movable[s]);
    inst.pos = Point{std::clamp<Dbu>(umToDbu(ux[s]), fp.die.xlo, fp.die.xhi),
                     std::clamp<Dbu>(umToDbu(uy[s]), fp.die.ylo, fp.die.yhi)};
  }
  result.quadraticHpwlUm = dbuToUm(static_cast<Dbu>(nl.totalHpwl(opt.numThreads)));
  result.legal = legalize(nl, fp, opt.legalizer);
  if (!result.legal.success) {
    // One retry with a wider row search window: the analytic solution is
    // nearly overlap-free, so failures here are local congestion.
    LegalizerOptions wide = opt.legalizer;
    wide.rowSearchWindow *= 4;
    result.legal = legalize(nl, fp, wide);
  }
  result.iterations = iters;

  // Final overflow over the real (legalized) cells only — the fillers have
  // served their purpose and are dropped here.
  ux.resize(un);
  uy.resize(un);
  for (int v = 0; v < n; ++v) {
    const std::size_t s = static_cast<std::size_t>(v);
    const Instance& inst = nl.instance(movable[s]);
    ux[s] = dbuToUm(inst.pos.x);
    uy[s] = dbuToUm(inst.pos.y);
  }
  result.overflow = dg.measureOverflow(ux, uy);
  result.hpwlUm = dbuToUm(static_cast<Dbu>(nl.totalHpwl(opt.numThreads)));
  result.success = result.legal.success;
  phase.attr("iters", static_cast<double>(iters));
  phase.attr("overflow", result.overflow);
  phase.attr("hpwl_um", result.hpwlUm);
  M3D_LOG(info) << "analytic place: " << iters << " iters, overflow " << result.overflow
                << ", hpwl_um " << result.hpwlUm << (result.success ? "" : " (LEGALIZE FAILED)");
  return result;
}

}  // namespace m3d::place
