#pragma once

/// \file analytic_placer.hpp
/// ePlace-style analytic global placement: WA wirelength (wirelength.hpp) +
/// electrostatic density penalty (density.hpp) minimized by a Nesterov
/// accelerated gradient method with Lipschitz-estimated step lengths and
/// overflow-driven penalty scheduling, followed by the shared legalizer.
/// Entry point behind PlacerOptions::engine == PlaceEngine::kAnalytic.

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"
#include "place/placer.hpp"

namespace m3d::place {

/// Analytic counterpart of globalPlace(); same contract (writes legalized
/// positions back into \p nl). Called by globalPlace() on engine dispatch —
/// use that entry point instead of calling this directly.
PlaceResult analyticGlobalPlace(Netlist& nl, const Floorplan& fp, const PlacerOptions& opt);

}  // namespace m3d::place
