#pragma once

/// \file density.hpp
/// Electrostatics-style density model for the analytic placer (ePlace
/// family): movable cells and blockage-derived fixed charge are scattered
/// onto a power-of-two bin grid, the density is turned into a potential by a
/// DCT-based Poisson solve with Neumann (reflective) boundaries, and the
/// potential's gradient yields a spreading force per cell.
///
/// The Macro-3D superimposed floorplan enters through the fixed charge: MoL
/// macro obstacles (projected macro-die blockages plus logic-die macro
/// halos) are part of Floorplan::blockages and repel movable cells exactly
/// like filled bins.
///
/// Determinism: the movable scatter is a single sequential O(n) pass, the
/// Poisson solve parallelizes over independent FFT rows/columns, and the
/// per-cell gradient gather writes only its own slot — bit-identical results
/// at any thread count.

#include <vector>

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"

namespace m3d::place {

/// Solves the discrete Poisson problem  L*psi = -(rho - mean(rho))  on an
/// nx x ny cell-centered grid with bin pitch (hx, hy), where L is the
/// 5-point Neumann (mirrored-ghost) Laplacian. Implemented as DCT-II →
/// divide by the exact stencil eigenvalues (2-2cos(pi*u/nx))/hx^2 + ... →
/// DCT-III, so applyNeumannLaplacian(solvePoissonDct(rho)) reproduces the
/// mean-removed density up to rounding.
std::vector<double> solvePoissonDct(const std::vector<double>& rho, int nx, int ny, double hx,
                                    double hy, int numThreads);

/// The matching 5-point Neumann Laplacian (mirrored ghost cells), exposed so
/// tests can verify the solve against the direct stencil.
std::vector<double> applyNeumannLaplacian(const std::vector<double>& psi, int nx, int ny,
                                          double hx, double hy);

/// Density grid bound to one (netlist, floorplan, movable set). Bin counts
/// are powers of two sized from the movable count; fixed charge and bin
/// capacities are precomputed once.
class DensityGrid {
 public:
  DensityGrid(const Netlist& nl, const Floorplan& fp, const std::vector<InstId>& movable,
              double targetDensity, int numThreads);

  /// Appends `count` filler cells of the given footprint (ePlace fillers):
  /// dummy movables that absorb whitespace so the uniformizing electrostatic
  /// field stops pushing real cells apart once every local bin fits. Fillers
  /// carry charge (demand + gradient slots) but are excluded from the
  /// overflow() numerator, which keeps tau a measure of how spread the REAL
  /// design is. Call before the first update().
  void addFillers(std::size_t count, double wUm, double hUm);

  /// Scatters movable density at origin coordinates (x, y) [um], solves the
  /// potential and refreshes overflow() and the per-cell gradients. The
  /// vectors may cover just the real cells (fillers then contribute nothing
  /// this round) or real + fillers.
  void update(const std::vector<double>& x, const std::vector<double>& y);

  /// Scatter + overflow only (no Poisson solve); for engine-neutral metrics.
  double measureOverflow(const std::vector<double>& x, const std::vector<double>& y);

  /// Normalized density overflow of the last update()/measureOverflow():
  /// sum_b max(0, demand_b - capacity_b) / total movable area, in [0, 1].
  double overflow() const { return overflow_; }

  /// d(penalty)/d(origin) per movable cell [um^2 * potential/um].
  const std::vector<double>& gradX() const { return gradX_; }
  const std::vector<double>& gradY() const { return gradY_; }

  /// Electric charge of movable cell v = its substrate area [um^2].
  double charge(int v) const { return q_[static_cast<std::size_t>(v)]; }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  double binW() const { return hx_; }
  double binH() const { return hy_; }
  const std::vector<double>& potential() const { return psi_; }

  std::size_t numReal() const { return nReal_; }
  double totalCapacity() const { return totalCap_; }
  double totalMovableArea() const { return totalMovableArea_; }

 private:
  void scatter(const std::vector<double>& x, const std::vector<double>& y);

  int numThreads_ = 0;
  int nx_ = 0;
  int ny_ = 0;
  double hx_ = 1.0;        ///< bin pitch [um].
  double hy_ = 1.0;
  double dieXloUm_ = 0.0;
  double dieYloUm_ = 0.0;
  double totalMovableArea_ = 0.0;  ///< real cells only (no fillers).
  double totalCap_ = 0.0;
  std::size_t nReal_ = 0;

  std::vector<double> wUm_;   ///< movable cell widths [um].
  std::vector<double> hUm_;   ///< movable cell heights [um].
  std::vector<double> q_;     ///< movable cell areas [um^2].
  std::vector<double> fixed_; ///< blockage charge area per bin [um^2].
  std::vector<double> cap_;   ///< free area * targetDensity per bin [um^2].

  std::vector<double> mov_;   ///< scattered movable area per bin [um^2].
  std::vector<double> movReal_;  ///< same, real cells only (overflow basis).
  std::vector<double> psi_;   ///< potential.
  std::vector<double> ex_;    ///< d(psi)/dx at bin centers.
  std::vector<double> ey_;
  std::vector<double> gradX_;
  std::vector<double> gradY_;
  double overflow_ = 0.0;
};

/// Engine-neutral density overflow of the current netlist positions (same
/// smoothed-footprint convention as the analytic engine), so B2B results can
/// report an apples-to-apples PlaceResult::overflow.
double densityOverflow(const Netlist& nl, const Floorplan& fp, double targetDensity,
                       int numThreads);

}  // namespace m3d::place
