#include "place/legalizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>

namespace m3d {

namespace {

struct Segment {
  Dbu lo;
  Dbu hi;
};

/// Subtracts [lo, hi) from a sorted disjoint segment list.
void subtract(std::vector<Segment>& segs, Dbu lo, Dbu hi) {
  if (lo >= hi) return;
  std::vector<Segment> out;
  out.reserve(segs.size() + 1);
  for (const Segment& s : segs) {
    if (hi <= s.lo || lo >= s.hi) {
      out.push_back(s);
      continue;
    }
    if (lo > s.lo) out.push_back({s.lo, lo});
    if (hi < s.hi) out.push_back({hi, s.hi});
  }
  segs = std::move(out);
}

struct Row {
  Dbu y = 0;
  std::vector<Segment> segs;  ///< free space, sorted, disjoint.
};

}  // namespace

LegalizeResult legalize(Netlist& nl, const Floorplan& fp, const LegalizerOptions& opt) {
  LegalizeResult result;
  const int numRows = fp.numRows();
  if (numRows <= 0) return result;

  // Build per-row free segments.
  std::vector<Row> rows(static_cast<std::size_t>(numRows));
  for (int r = 0; r < numRows; ++r) {
    Row& row = rows[static_cast<std::size_t>(r)];
    row.y = fp.die.ylo + static_cast<Dbu>(r) * fp.rowHeight;
    row.segs = {{fp.die.xlo, fp.die.xhi}};
  }
  for (const Blockage& b : fp.blockages) {
    const int r0 = std::max(0, static_cast<int>((b.rect.ylo - fp.die.ylo) / fp.rowHeight));
    const int r1 =
        std::min(numRows - 1, static_cast<int>((b.rect.yhi - fp.die.ylo - 1) / fp.rowHeight));
    for (int r = r0; r <= r1; ++r) {
      Row& row = rows[static_cast<std::size_t>(r)];
      if (b.rect.yhi <= row.y || b.rect.ylo >= row.y + fp.rowHeight) continue;
      if (b.density >= 0.99) {
        subtract(row.segs, b.rect.xlo, b.rect.xhi);
      } else if (b.density > 0.0) {
        // Row-dithered discretization of a partial blockage: the blockage
        // consumes its density fraction in whole rows (commercial engines
        // honor partial blockages at a similarly coarse row/region
        // granularity -- the exact sub-row structure is invisible to them,
        // which is the resolution limitation the paper calls out).
        const int rowsPerPeriod =
            std::max(1, static_cast<int>(opt.partialBlockageResolution / fp.rowHeight));
        (void)rowsPerPeriod;
        const double d = b.density;
        if (std::floor(static_cast<double>(r + 1) * d) > std::floor(static_cast<double>(r) * d)) {
          subtract(row.segs, b.rect.xlo, b.rect.xhi);
        }
      }
    }
  }

  // Movable cells, widest first within x order buckets: process cells
  // left-to-right to keep the scan local, but big cells first inside a
  // bucket so they still find contiguous room.
  std::vector<InstId> cells;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (inst.fixed || nl.cellOf(i).isMacro()) continue;
    cells.push_back(i);
  }
  std::sort(cells.begin(), cells.end(), [&nl](InstId a, InstId b) {
    const Dbu xa = nl.instance(a).pos.x;
    const Dbu xb = nl.instance(b).pos.x;
    if (xa != xb) return xa < xb;
    const Dbu wa = nl.cellOf(a).width;
    const Dbu wb = nl.cellOf(b).width;
    if (wa != wb) return wa > wb;
    return a < b;
  });

  // Best position in a row for a cell of width w wanting x=desired: the
  // free segment position minimizing |x - desired|, site-aligned.
  auto findInRow = [&](const Row& row, Dbu desiredX, Dbu w, Dbu& outX) -> bool {
    bool found = false;
    Dbu best = 0;
    Dbu bestCost = 0;
    for (const Segment& s : row.segs) {
      if (s.hi - s.lo < w) continue;
      Dbu x = std::clamp(desiredX, s.lo, s.hi - w);
      // Site alignment within the segment.
      x = fp.die.xlo + (x - fp.die.xlo) / fp.siteWidth * fp.siteWidth;
      if (x < s.lo) x += fp.siteWidth;
      if (x + w > s.hi) {
        // Try the last aligned slot of the segment.
        x = fp.die.xlo + (s.hi - w - fp.die.xlo) / fp.siteWidth * fp.siteWidth;
        if (x < s.lo || x + w > s.hi) continue;
      }
      const Dbu cost = x > desiredX ? x - desiredX : desiredX - x;
      if (!found || cost < bestCost) {
        found = true;
        best = x;
        bestCost = cost;
      }
    }
    if (found) outX = best;
    return found;
  };

  double sumDispUm = 0.0;
  double maxDispUm = 0.0;
  int placed = 0;

  for (InstId i : cells) {
    Instance& inst = nl.instance(i);
    const CellType& c = nl.cellOf(i);
    const Dbu w = snapUp(static_cast<Dbu>(static_cast<double>(c.width) * opt.cellWidthScale),
                         fp.siteWidth);
    const Dbu desiredX = std::clamp(inst.pos.x, fp.die.xlo, std::max(fp.die.xlo, fp.die.xhi - w));
    const int desiredRow = std::clamp(
        static_cast<int>((inst.pos.y - fp.die.ylo + fp.rowHeight / 2) / fp.rowHeight), 0,
        numRows - 1);

    int bestRow = -1;
    Dbu bestX = 0;
    double bestCost = 0.0;
    const int window = std::max(opt.rowSearchWindow, numRows);
    for (int dr = 0; dr <= window; ++dr) {
      for (int sign = 0; sign < (dr == 0 ? 1 : 2); ++sign) {
        const int r = desiredRow + (sign == 0 ? dr : -dr);
        if (r < 0 || r >= numRows) continue;
        const Row& row = rows[static_cast<std::size_t>(r)];
        Dbu x = 0;
        if (!findInRow(row, desiredX, w, x)) continue;
        const double cost = std::abs(static_cast<double>(x - desiredX)) +
                            2.0 * std::abs(static_cast<double>(row.y - inst.pos.y));
        if (bestRow < 0 || cost < bestCost) {
          bestRow = r;
          bestX = x;
          bestCost = cost;
        }
      }
      // A row farther than bestCost/(2*rowHeight) cannot beat the current
      // candidate.
      if (bestRow >= 0 &&
          2.0 * static_cast<double>(dr) * static_cast<double>(fp.rowHeight) > bestCost) {
        break;
      }
    }

    if (bestRow < 0) {
      ++result.failedCells;
      continue;
    }
    Row& row = rows[static_cast<std::size_t>(bestRow)];
    const double disp = std::abs(static_cast<double>(bestX - inst.pos.x)) +
                        std::abs(static_cast<double>(row.y - inst.pos.y));
    sumDispUm += dbuToUm(static_cast<Dbu>(disp));
    maxDispUm = std::max(maxDispUm, dbuToUm(static_cast<Dbu>(disp)));
    inst.pos = Point{bestX, row.y};
    subtract(row.segs, bestX, bestX + w);
    ++placed;
  }

  result.success = result.failedCells == 0;
  result.avgDisplacementUm = placed > 0 ? sumDispUm / placed : 0.0;
  result.maxDisplacementUm = maxDispUm;
  return result;
}

std::string checkLegality(const Netlist& nl, const Floorplan& fp) {
  std::ostringstream err;
  std::map<int, std::vector<std::pair<Dbu, Dbu>>> byRow;  // row -> (xlo, xhi)
  int reported = 0;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    const CellType& c = nl.cellOf(i);
    if (inst.fixed || c.isMacro()) continue;
    if ((inst.pos.y - fp.die.ylo) % fp.rowHeight != 0) {
      if (reported++ < 10) err << inst.name << " off row grid; ";
    }
    if ((inst.pos.x - fp.die.xlo) % fp.siteWidth != 0) {
      if (reported++ < 10) err << inst.name << " off site grid; ";
    }
    const Rect r{inst.pos.x, inst.pos.y, inst.pos.x + c.width, inst.pos.y + c.height};
    if (!fp.die.contains(r)) {
      if (reported++ < 10) err << inst.name << " outside die; ";
    }
    const int row = static_cast<int>((inst.pos.y - fp.die.ylo) / fp.rowHeight);
    byRow[row].push_back({r.xlo, r.xhi});
    for (const Blockage& b : fp.blockages) {
      if (b.density >= 0.99 && b.rect.overlaps(r)) {
        if (reported++ < 10) err << inst.name << " overlaps blockage; ";
        break;
      }
    }
  }
  for (auto& [row, spans] : byRow) {
    (void)row;
    std::sort(spans.begin(), spans.end());
    for (std::size_t k = 1; k < spans.size(); ++k) {
      if (spans[k].first < spans[k - 1].second) {
        if (reported++ < 10) err << "overlap in row; ";
      }
    }
  }
  return err.str();
}

}  // namespace m3d
