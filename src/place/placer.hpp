#pragma once

/// \file placer.hpp
/// Quadratic global placement (bound-to-bound net model) with SimPL-style
/// legalization anchoring, followed by Tetris legalization.
///
/// The same engine places every flow's design — 2D, S2D (shrunk), C2D
/// (inflated) and Macro-3D (superimposed MoL floorplan) — mirroring the
/// paper's use of one commercial P&R engine for all flows.

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"
#include "place/legalizer.hpp"

namespace m3d {

struct PlacerOptions {
  int maxIters = 12;              ///< solve/legalize alternations.
  int pureSolveRounds = 5;        ///< initial B2B reweighting rounds without anchors.
  double anchorWeightInit = 0.01; ///< first anchor weight (grows geometrically).
  double anchorWeightGrowth = 1.8;
  double clockNetWeight = 0.1;    ///< down-weight of clock nets in the objective.
  int minIters = 9;               ///< don't trigger convergence before this.
  std::uint64_t seed = 1;         ///< jitter seed for the initial spread.
  /// When true, current instance positions seed the solver (hierarchical /
  /// region hints from the caller) instead of random jitter.
  bool useExistingPositions = false;
  /// Threads for the spring/HPWL accumulation (0 = auto: M3D_THREADS env,
  /// else hardware_concurrency). Chunks of nets emit spring operations into
  /// per-chunk buffers that are applied to the solver in chunk order, so the
  /// operation sequence — and the placement — is bit-identical at any
  /// thread count.
  int numThreads = 0;
  LegalizerOptions legalizer;
};

struct PlaceResult {
  bool success = false;
  double hpwlUm = 0.0;          ///< total HPWL after legalization [um].
  double quadraticHpwlUm = 0.0; ///< HPWL of the last pre-legalization solution.
  int iterations = 0;
  LegalizeResult legal;         ///< stats of the final legalization pass.
};

/// Places all movable cells of \p nl inside \p fp. Fixed instances (macros,
/// pre-placed cells) and ports act as fixed pins. Positions are written back
/// into the netlist; the final state is legalized.
PlaceResult globalPlace(Netlist& nl, const Floorplan& fp,
                        const PlacerOptions& opt = PlacerOptions{});

}  // namespace m3d
