#pragma once

/// \file placer.hpp
/// Quadratic global placement (bound-to-bound net model) with SimPL-style
/// legalization anchoring, followed by Tetris legalization.
///
/// The same engine places every flow's design — 2D, S2D (shrunk), C2D
/// (inflated) and Macro-3D (superimposed MoL floorplan) — mirroring the
/// paper's use of one commercial P&R engine for all flows.

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"
#include "place/legalizer.hpp"

namespace m3d {

/// Global-placement engine selector. kB2B is the original quadratic
/// bound-to-bound + diffusion engine; kAnalytic is the ePlace-style
/// analytic engine (src/place/analytic/): WA wirelength + electrostatic
/// density + Nesterov.
enum class PlaceEngine : std::uint8_t { kB2B = 0, kAnalytic = 1 };

/// Canonical engine names used by CLI flags, env knobs, the serve protocol
/// and the stage-cache key ("b2b" / "analytic").
const char* placeEngineName(PlaceEngine e);
/// Parses an engine name; returns false (leaving \p out untouched) on an
/// unknown name.
bool parsePlaceEngine(const std::string& name, PlaceEngine& out);

/// Knobs of the analytic engine. The schedules (gamma from bin size and
/// overflow, penalty growth from overflow) are fixed-shape; these expose the
/// levers that matter for QoR and determinism-sensitive caching.
struct AnalyticPlacerOptions {
  int maxIters = 420;           ///< Nesterov iteration cap.
  int minIters = 30;            ///< don't stop on overflow before this.
  double targetOverflow = 0.07; ///< stop when density overflow drops below.
  double targetDensity = 0.8;  ///< bin capacity derate (utilization target).
  /// Extra weight on F2F die-split nets (pins on fixed macro-die instances)
  /// in the WA objective — the bistratal term of the wirelength model.
  double splitNetWeight = 1.0;
};

struct PlacerOptions {
  PlaceEngine engine = PlaceEngine::kB2B;
  AnalyticPlacerOptions analytic;
  int maxIters = 12;              ///< solve/legalize alternations.
  int pureSolveRounds = 5;        ///< initial B2B reweighting rounds without anchors.
  double anchorWeightInit = 0.01; ///< first anchor weight (grows geometrically).
  double anchorWeightGrowth = 1.8;
  double clockNetWeight = 0.1;    ///< down-weight of clock nets in the objective.
  int minIters = 9;               ///< don't trigger convergence before this.
  std::uint64_t seed = 1;         ///< jitter seed for the initial spread.
  /// When true, current instance positions seed the solver (hierarchical /
  /// region hints from the caller) instead of random jitter.
  bool useExistingPositions = false;
  /// Threads for the spring/HPWL accumulation (0 = auto: M3D_THREADS env,
  /// else hardware_concurrency). Chunks of nets emit spring operations into
  /// per-chunk buffers that are applied to the solver in chunk order, so the
  /// operation sequence — and the placement — is bit-identical at any
  /// thread count.
  int numThreads = 0;
  LegalizerOptions legalizer;
};

struct PlaceResult {
  bool success = false;
  double hpwlUm = 0.0;          ///< total HPWL after legalization [um].
  double quadraticHpwlUm = 0.0; ///< HPWL of the last pre-legalization solution.
  int iterations = 0;
  /// Engine that produced the result (serialized into the metrics codec).
  PlaceEngine engine = PlaceEngine::kB2B;
  /// Normalized density overflow of the final placement, measured with the
  /// engine-neutral smoothed-footprint model so B2B and analytic results
  /// compare apples-to-apples.
  double overflow = 0.0;
  LegalizeResult legal;         ///< stats of the final legalization pass.
};

/// Places all movable cells of \p nl inside \p fp. Fixed instances (macros,
/// pre-placed cells) and ports act as fixed pins. Positions are written back
/// into the netlist; the final state is legalized.
PlaceResult globalPlace(Netlist& nl, const Floorplan& fp,
                        const PlacerOptions& opt = PlacerOptions{});

}  // namespace m3d
