#include "place/detailed.hpp"

#include <algorithm>
#include <map>

namespace m3d {

namespace {

/// Total HPWL of a set of nets (deduplicated by the caller).
double hpwlOf(const Netlist& nl, const std::vector<NetId>& nets) {
  double sum = 0.0;
  for (NetId n : nets) sum += static_cast<double>(nl.netHpwl(n));
  return sum;
}

/// The distinct non-clock nets incident to one or two instances.
std::vector<NetId> incidentNets(const Netlist& nl, InstId a, InstId b = kInvalidId) {
  std::vector<NetId> nets;
  auto collect = [&](InstId i) {
    if (i == kInvalidId) return;
    for (NetId n : nl.instance(i).pinNets) {
      if (n != kInvalidId && !nl.net(n).isClock) nets.push_back(n);
    }
  };
  collect(a);
  collect(b);
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

struct RowCell {
  Dbu xlo;
  Dbu xhi;
  InstId inst;
  bool operator<(const RowCell& o) const { return xlo < o.xlo; }
};

}  // namespace

DetailedPlaceResult detailedPlace(Netlist& nl, const Floorplan& fp,
                                  const DetailedPlaceOptions& opt) {
  DetailedPlaceResult result;
  result.hpwlBeforeUm = dbuToUm(static_cast<Dbu>(nl.totalHpwl()));

  std::vector<InstId> movable;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (inst.fixed || nl.cellOf(i).isMacro() || nl.cellOf(i).cls == CellClass::kFiller) continue;
    movable.push_back(i);
  }

  for (int pass = 0; pass < opt.maxPasses; ++pass) {
    result.passes = pass + 1;
    int accepted = 0;

    // --- Swap pass: equal-width cells within the window --------------------
    // Bucket cells by footprint width, sorted by x.
    std::map<Dbu, std::vector<InstId>> byWidth;
    for (InstId i : movable) byWidth[nl.cellOf(i).width].push_back(i);
    for (auto& [w, cells] : byWidth) {
      (void)w;
      std::sort(cells.begin(), cells.end(), [&nl](InstId a, InstId b) {
        if (nl.instance(a).pos.x != nl.instance(b).pos.x) {
          return nl.instance(a).pos.x < nl.instance(b).pos.x;
        }
        return a < b;
      });
      for (std::size_t k = 0; k < cells.size(); ++k) {
        const InstId a = cells[k];
        // Scan forward while within the x window.
        for (std::size_t j = k + 1; j < cells.size(); ++j) {
          const InstId b = cells[j];
          if (nl.instance(b).pos.x - nl.instance(a).pos.x > opt.windowRadius) break;
          if (std::abs(nl.instance(b).pos.y - nl.instance(a).pos.y) > opt.windowRadius) continue;
          const std::vector<NetId> nets = incidentNets(nl, a, b);
          const double before = hpwlOf(nl, nets);
          std::swap(nl.instance(a).pos, nl.instance(b).pos);
          const double after = hpwlOf(nl, nets);
          if (after + 1e-9 < before) {
            ++result.swapsAccepted;
            ++accepted;
          } else {
            std::swap(nl.instance(a).pos, nl.instance(b).pos);  // revert
          }
        }
      }
    }

    // --- Slide pass: move within free row gaps ------------------------------
    // Per-row occupancy (movable + fixed substrate footprints + blockages as
    // pseudo-cells).
    std::map<Dbu, std::vector<RowCell>> rows;
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      const Instance& inst = nl.instance(i);
      const CellType& c = nl.cellOf(i);
      // Multi-row fixed objects (macros) block every row they overlap.
      const int spannedRows =
          std::max<int>(1, static_cast<int>((c.substrateHeight + fp.rowHeight - 1) / fp.rowHeight));
      for (int r = 0; r < spannedRows; ++r) {
        rows[inst.pos.y + static_cast<Dbu>(r) * fp.rowHeight].push_back(
            {inst.pos.x, inst.pos.x + c.substrateWidth, r == 0 ? i : kInvalidId});
      }
    }
    // Full placement blockages block their rows too.
    for (const Blockage& b : fp.blockages) {
      if (b.density < 0.99) continue;
      for (Dbu y = fp.die.ylo; y < fp.die.yhi; y += fp.rowHeight) {
        if (b.rect.yhi <= y || b.rect.ylo >= y + fp.rowHeight) continue;
        rows[y].push_back({b.rect.xlo, b.rect.xhi, kInvalidId});
      }
    }
    for (auto& [y, cells] : rows) {
      (void)y;
      std::sort(cells.begin(), cells.end());
    }
    for (InstId i : movable) {
      Instance& inst = nl.instance(i);
      auto rowIt = rows.find(inst.pos.y);
      if (rowIt == rows.end()) continue;
      auto& row = rowIt->second;
      const auto it =
          std::lower_bound(row.begin(), row.end(), RowCell{inst.pos.x, 0, kInvalidId});
      if (it == row.end() || it->inst != i) continue;
      const Dbu leftEdge = (it == row.begin()) ? fp.die.xlo : std::prev(it)->xhi;
      const Dbu rightEdge = (std::next(it) == row.end()) ? fp.die.xhi : std::next(it)->xlo;
      const Dbu w = it->xhi - it->xlo;

      const std::vector<NetId> nets = incidentNets(nl, i);
      const double before = hpwlOf(nl, nets);
      const Dbu origX = inst.pos.x;
      Dbu bestX = origX;
      double bestH = before;
      for (const Dbu cand : {leftEdge, rightEdge - w, origX - 4 * fp.siteWidth,
                             origX + 4 * fp.siteWidth}) {
        const Dbu x = fp.die.xlo + (std::clamp(cand, leftEdge, rightEdge - w) - fp.die.xlo) /
                                       fp.siteWidth * fp.siteWidth;
        if (x < leftEdge || x + w > rightEdge || x == origX) continue;
        inst.pos.x = x;
        const double h = hpwlOf(nl, nets);
        if (h + 1e-9 < bestH) {
          bestH = h;
          bestX = x;
        }
      }
      inst.pos.x = bestX;
      if (bestX != origX) {
        it->xlo = bestX;
        it->xhi = bestX + w;
        std::sort(row.begin(), row.end());
        ++result.slidesAccepted;
        ++accepted;
      }
    }

    if (accepted == 0) break;
  }

  result.hpwlAfterUm = dbuToUm(static_cast<Dbu>(nl.totalHpwl()));
  return result;
}

}  // namespace m3d
