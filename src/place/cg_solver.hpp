#pragma once

/// \file cg_solver.hpp
/// Jacobi-preconditioned conjugate-gradient solver for the sparse symmetric
/// positive-definite systems produced by the quadratic (B2B) placer.
///
/// The matrix is held in triplet-free form: off-diagonal Laplacian edges
/// (i, j, w) plus an explicit diagonal. Fixed-pin and anchor terms only add
/// to the diagonal and the right-hand side, keeping the system SPD.

#include <cstdint>
#include <vector>

namespace m3d {

class CgSystem {
 public:
  explicit CgSystem(int n) : n_(n), diag_(static_cast<std::size_t>(n), 0.0),
                             rhs_(static_cast<std::size_t>(n), 0.0) {}

  int size() const { return n_; }

  /// Adds a spring of weight w between movable variables i and j.
  void addEdge(int i, int j, double w) {
    diag_[static_cast<std::size_t>(i)] += w;
    diag_[static_cast<std::size_t>(j)] += w;
    edges_.push_back({i, j, w});
  }

  /// Adds a spring of weight w between movable variable i and a fixed
  /// location at coordinate c.
  void addFixed(int i, double w, double c) {
    diag_[static_cast<std::size_t>(i)] += w;
    rhs_[static_cast<std::size_t>(i)] += w * c;
  }

  /// Solves A x = rhs starting from \p x (warm start). Returns the iteration
  /// count used.
  int solve(std::vector<double>& x, int maxIters = 300, double tol = 1e-6) const;

 private:
  struct Edge {
    int i;
    int j;
    double w;
  };

  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  int n_;
  std::vector<double> diag_;
  std::vector<double> rhs_;
  std::vector<Edge> edges_;
};

}  // namespace m3d
