#pragma once

/// \file detailed.hpp
/// Detailed placement: greedy HPWL refinement on a legal placement.
///
/// Two local moves, both legality-preserving:
///  - pairwise swap of equal-width cells within a neighborhood window,
///  - slide of a cell to the best free position in its row segment.
/// Runs a bounded number of passes; every accepted move strictly reduces
/// total HPWL, so the pass is monotone and terminates.

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"

namespace m3d {

struct DetailedPlaceOptions {
  int maxPasses = 3;
  /// Neighborhood radius for swap candidates [DBU].
  Dbu windowRadius = umToDbu(6.0);
};

struct DetailedPlaceResult {
  int swapsAccepted = 0;
  int slidesAccepted = 0;
  double hpwlBeforeUm = 0.0;
  double hpwlAfterUm = 0.0;
  int passes = 0;
};

/// Refines the (already legal) placement of \p nl in place. Legality is
/// preserved: swaps only exchange equal-footprint cells; slides only move
/// into verified free space of the same row.
DetailedPlaceResult detailedPlace(Netlist& nl, const Floorplan& fp,
                                  const DetailedPlaceOptions& opt = DetailedPlaceOptions{});

}  // namespace m3d
