#include "place/placer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/parallel.hpp"
#include "geom/grid.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "place/analytic/analytic_placer.hpp"
#include "place/analytic/density.hpp"
#include "place/cg_solver.hpp"

namespace m3d {

const char* placeEngineName(PlaceEngine e) {
  return e == PlaceEngine::kAnalytic ? "analytic" : "b2b";
}

bool parsePlaceEngine(const std::string& name, PlaceEngine& out) {
  if (name == "b2b") {
    out = PlaceEngine::kB2B;
    return true;
  }
  if (name == "analytic") {
    out = PlaceEngine::kAnalytic;
    return true;
  }
  return false;
}

namespace {

/// Nets per spring-build chunk (pure function of NetId range; thread-count
/// independent, see parallel.hpp determinism contract).
constexpr std::int64_t kNetGrain = 256;

/// One deferred solver update emitted by the parallel spring build.
/// b >= 0: addEdge(a, b, w); b < 0: addFixed(a, w, c).
struct SpringOp {
  int a;
  int b;
  double w;
  double c;
};

/// splitmix64: cheap deterministic hash for the initial jitter.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Buffers reused across diffuse() calls within one globalPlace(): the bin
/// capacities and cell areas are pure functions of (floorplan, targetUtil,
/// movable, areaScale) — all loop-invariant across placer iterations — and
/// the per-round bucket/demand vectors keep their allocations between
/// rounds and calls instead of reallocating nx*ny vectors each round.
struct DiffuseScratch {
  std::vector<double> cap;
  std::vector<double> areas;
  std::vector<std::vector<int>> cellsIn;
  std::vector<double> demand;
  bool primed = false;
};

/// Bin-diffusion spreading: moves cells out of overfull bins into the least
/// utilized neighbor bin until every bin respects its capacity. Preserves
/// locality (cells hop one bin at a time) so the follow-up legalization only
/// makes small moves instead of scattering dense clusters across the die.
void diffuse(const Netlist& nl, const Floorplan& fp, const std::vector<InstId>& movable,
             std::vector<double>& x, std::vector<double>& y, double targetUtil, int rounds,
             double areaScale, DiffuseScratch& scratch) {
  const Dbu binSize = umToDbu(8.0);
  const GridMapping map(fp.die, binSize);
  const int nx = map.nx();
  const int ny = map.ny();

  if (!scratch.primed) {
    // Capacity per bin: free area after blockages, derated to targetUtil.
    // O(bins * blockages) — computed once and reused by every placer
    // iteration (the floorplan is frozen during global placement).
    scratch.cap.resize(static_cast<std::size_t>(nx * ny));
    for (int by = 0; by < ny; ++by) {
      for (int bx = 0; bx < nx; ++bx) {
        const Rect r = map.cellRect(bx, by);
        double blocked = 0.0;
        for (const Blockage& b : fp.blockages) {
          const Rect inter = b.rect.intersection(r);
          if (!inter.isEmpty()) blocked += b.density * static_cast<double>(inter.area());
        }
        scratch.cap[static_cast<std::size_t>(by * nx + bx)] =
            std::max(0.0, (static_cast<double>(r.area()) - blocked)) * targetUtil;
      }
    }
    scratch.areas.resize(movable.size());
    for (std::size_t v = 0; v < movable.size(); ++v) {
      scratch.areas[v] = static_cast<double>(nl.cellOf(movable[v]).substrateArea()) * areaScale;
    }
    scratch.cellsIn.resize(static_cast<std::size_t>(nx * ny));
    scratch.primed = true;
  }
  const std::vector<double>& cap = scratch.cap;
  const std::vector<double>& areas = scratch.areas;
  std::vector<std::vector<int>>& cellsIn = scratch.cellsIn;
  std::vector<double>& demand = scratch.demand;

  for (int round = 0; round < rounds; ++round) {
    // Bucket cells by bin (buckets keep their capacity across rounds).
    for (auto& bucket : cellsIn) bucket.clear();
    demand.assign(static_cast<std::size_t>(nx * ny), 0.0);
    for (std::size_t v = 0; v < movable.size(); ++v) {
      const int bx = map.xIndex(umToDbu(x[v]));
      const int by = map.yIndex(umToDbu(y[v]));
      cellsIn[static_cast<std::size_t>(by * nx + bx)].push_back(static_cast<int>(v));
      demand[static_cast<std::size_t>(by * nx + bx)] += areas[v];
    }
    bool anyMove = false;
    for (int by = 0; by < ny; ++by) {
      for (int bx = 0; bx < nx; ++bx) {
        const std::size_t b = static_cast<std::size_t>(by * nx + bx);
        if (demand[b] <= cap[b]) continue;
        // Move excess cells (last-in order: deterministic) to the least
        // utilized 4-neighbor.
        auto ratio = [&](int nbx, int nby) {
          if (nbx < 0 || nbx >= nx || nby < 0 || nby >= ny) return 1e30;
          const std::size_t nb = static_cast<std::size_t>(nby * nx + nbx);
          return cap[nb] > 0.0 ? demand[nb] / cap[nb] : 1e30;
        };
        auto& bucket = cellsIn[b];
        while (demand[b] > cap[b] && !bucket.empty()) {
          struct Cand {
            int dx;
            int dy;
          };
          const Cand cands[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
          int best = -1;
          double bestRatio = 1e29;
          for (int c = 0; c < 4; ++c) {
            const double rr = ratio(bx + cands[c].dx, by + cands[c].dy);
            if (rr < bestRatio) {
              bestRatio = rr;
              best = c;
            }
          }
          if (best < 0) break;
          // Move the cell already closest to the chosen edge (minimal
          // displacement, preserves cluster structure).
          std::size_t pick = 0;
          double bestCoord = cands[best].dx > 0 || cands[best].dy > 0 ? -1e30 : 1e30;
          for (std::size_t k = 0; k < bucket.size(); ++k) {
            const double coord = cands[best].dx != 0 ? x[static_cast<std::size_t>(bucket[k])]
                                                     : y[static_cast<std::size_t>(bucket[k])];
            const bool positive = cands[best].dx > 0 || cands[best].dy > 0;
            if ((positive && coord > bestCoord) || (!positive && coord < bestCoord)) {
              bestCoord = coord;
              pick = k;
            }
          }
          const int v = bucket[pick];
          bucket[pick] = bucket.back();
          bucket.pop_back();
          const int nbx = bx + cands[best].dx;
          const int nby = by + cands[best].dy;
          const Rect nr = map.cellRect(nbx, nby);
          // Project into the neighbor bin, keeping the orthogonal coordinate.
          const double margin = dbuToUm(binSize) * 0.25;
          if (cands[best].dx != 0) {
            x[static_cast<std::size_t>(v)] =
                cands[best].dx > 0 ? dbuToUm(nr.xlo) + margin : dbuToUm(nr.xhi) - margin;
          } else {
            y[static_cast<std::size_t>(v)] =
                cands[best].dy > 0 ? dbuToUm(nr.ylo) + margin : dbuToUm(nr.yhi) - margin;
          }
          const std::size_t nb = static_cast<std::size_t>(nby * nx + nbx);
          demand[b] -= areas[static_cast<std::size_t>(v)];
          demand[nb] += areas[static_cast<std::size_t>(v)];
          cellsIn[nb].push_back(v);
          anyMove = true;
        }
      }
    }
    if (!anyMove) break;
  }
}

}  // namespace

PlaceResult globalPlace(Netlist& nl, const Floorplan& fp, const PlacerOptions& opt) {
  if (opt.engine == PlaceEngine::kAnalytic) {
    return place::analyticGlobalPlace(nl, fp, opt);
  }
  PlaceResult result;
  result.engine = PlaceEngine::kB2B;

  // Movable instance indexing.
  std::vector<InstId> movable;
  std::vector<int> varOf(static_cast<std::size_t>(nl.numInstances()), -1);
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (inst.fixed || nl.cellOf(i).isMacro()) continue;
    varOf[static_cast<std::size_t>(i)] = static_cast<int>(movable.size());
    movable.push_back(i);
  }
  const int n = static_cast<int>(movable.size());
  if (n == 0) {
    result.success = true;
    return result;
  }

  // Work in um doubles.
  const double cxDie = dbuToUm(fp.die.center().x);
  const double cyDie = dbuToUm(fp.die.center().y);
  const double wDie = dbuToUm(fp.die.width());
  const double hDie = dbuToUm(fp.die.height());

  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    if (opt.useExistingPositions) {
      const Instance& inst = nl.instance(movable[static_cast<std::size_t>(v)]);
      x[static_cast<std::size_t>(v)] = dbuToUm(inst.pos.x);
      y[static_cast<std::size_t>(v)] = dbuToUm(inst.pos.y);
      continue;
    }
    const std::uint64_t h1 = mix64(opt.seed * 2654435761ULL + static_cast<std::uint64_t>(v));
    const std::uint64_t h2 = mix64(h1);
    x[static_cast<std::size_t>(v)] =
        cxDie + (static_cast<double>(h1 % 10000) / 10000.0 - 0.5) * wDie * 0.5;
    y[static_cast<std::size_t>(v)] =
        cyDie + (static_cast<double>(h2 % 10000) / 10000.0 - 0.5) * hDie * 0.5;
  }

  // Initial pure B2B rounds: iteratively reweighting springs by 1/length
  // approximates the linear HPWL objective and lets connected clusters
  // contract before any spreading force appears.

  // Anchor targets (legalized positions of the previous round).
  std::vector<double> ax(x);
  std::vector<double> ay(y);
  bool haveAnchors = false;
  double anchorW = opt.anchorWeightInit;

  constexpr double kMinLen = 0.5;  // um, avoids singular weights

  auto buildAndSolve = [&](bool horizontal) {
    CgSystem sys(n);
    std::vector<double>& coord = horizontal ? x : y;

    // Emit the B2B spring operations of one net into \p ops. Reads coord
    // (stable during the build; solve() writes it afterwards), so chunks of
    // nets can run concurrently.
    struct PinCoord {
      int var;      // -1 for fixed
      double c;
    };
    auto emitNet = [&](NetId netId, std::vector<PinCoord>& pins,
                       std::vector<SpringOp>& ops) {
      const Net& net = nl.net(netId);
      if (net.pins.size() < 2) return;
      const double netW = (net.isClock ? opt.clockNetWeight : 1.0);
      pins.clear();
      for (const NetPin& p : net.pins) {
        int var = -1;
        double c = 0.0;
        if (p.kind == NetPin::Kind::kInstPin) {
          var = varOf[static_cast<std::size_t>(p.inst)];
        }
        if (var >= 0) {
          c = coord[static_cast<std::size_t>(var)];
        } else {
          const Point pp = nl.pinPosition(p);
          c = dbuToUm(horizontal ? pp.x : pp.y);
        }
        pins.push_back({var, c});
      }
      // Bound pins.
      std::size_t iMin = 0;
      std::size_t iMax = 0;
      for (std::size_t k = 1; k < pins.size(); ++k) {
        if (pins[k].c < pins[iMin].c) iMin = k;
        if (pins[k].c > pins[iMax].c) iMax = k;
      }
      const double scale = 2.0 * netW / static_cast<double>(pins.size() - 1);
      auto addSpring = [&](std::size_t a, std::size_t b) {
        if (a == b) return;
        const double len = std::max(kMinLen, std::abs(pins[a].c - pins[b].c));
        const double w = scale / len;
        if (pins[a].var >= 0 && pins[b].var >= 0) {
          ops.push_back({pins[a].var, pins[b].var, w, 0.0});
        } else if (pins[a].var >= 0) {
          ops.push_back({pins[a].var, -1, w, pins[b].c});
        } else if (pins[b].var >= 0) {
          ops.push_back({pins[b].var, -1, w, pins[a].c});
        }
      };
      addSpring(iMin, iMax);
      for (std::size_t k = 0; k < pins.size(); ++k) {
        if (k == iMin || k == iMax) continue;
        addSpring(k, iMin);
        addSpring(k, iMax);
      }
    };

    // Per-chunk op buffers concatenated in ascending chunk order give the
    // exact op sequence of the sequential net loop, so the solver sees
    // byte-identical input at any thread count.
    std::vector<SpringOp> ops = par::parallelReduce<std::vector<SpringOp>>(
        0, nl.numNets(), kNetGrain, {},
        [&](std::int64_t lo, std::int64_t hi) {
          std::vector<PinCoord> pins;
          std::vector<SpringOp> out;
          for (std::int64_t netId = lo; netId < hi; ++netId) {
            emitNet(static_cast<NetId>(netId), pins, out);
          }
          return out;
        },
        [](std::vector<SpringOp> acc, std::vector<SpringOp> part) {
          acc.insert(acc.end(), part.begin(), part.end());
          return acc;
        },
        opt.numThreads);
    for (const SpringOp& op : ops) {
      if (op.b >= 0) {
        sys.addEdge(op.a, op.b, op.w);
      } else {
        sys.addFixed(op.a, op.w, op.c);
      }
    }
    if (haveAnchors) {
      const std::vector<double>& anchor = horizontal ? ax : ay;
      for (int v = 0; v < n; ++v) sys.addFixed(v, anchorW, anchor[static_cast<std::size_t>(v)]);
    }
    sys.solve(coord);
  };

  double prevHpwlUm = -1.0;
  double bestHpwlUm = -1.0;
  std::vector<Point> bestPos;
  bool bestLegal = false;
  LegalizeResult bestLegalResult;
  for (int r = 0; r < opt.pureSolveRounds; ++r) {
    buildAndSolve(true);
    buildAndSolve(false);
  }
  DiffuseScratch diffuseScratch;  // capacities/buffers shared by all iterations
  for (int iter = 0; iter < opt.maxIters; ++iter) {
    obs::ScopedPhase it("place.iter");
    buildAndSolve(true);
    buildAndSolve(false);

    // Record the quadratic solution, spread it to legal density, legalize,
    // and read the result back as anchors.
    for (int v = 0; v < n; ++v) {
      Instance& inst = nl.instance(movable[static_cast<std::size_t>(v)]);
      const Dbu px = std::clamp<Dbu>(umToDbu(x[static_cast<std::size_t>(v)]), fp.die.xlo, fp.die.xhi);
      const Dbu py = std::clamp<Dbu>(umToDbu(y[static_cast<std::size_t>(v)]), fp.die.ylo, fp.die.yhi);
      inst.pos = Point{px, py};
    }
    result.quadraticHpwlUm = dbuToUm(static_cast<Dbu>(nl.totalHpwl(opt.numThreads)));
    {
      std::vector<double> sx(x);
      std::vector<double> sy(y);
      for (int v = 0; v < n; ++v) {
        sx[static_cast<std::size_t>(v)] =
            std::clamp(sx[static_cast<std::size_t>(v)], dbuToUm(fp.die.xlo), dbuToUm(fp.die.xhi));
        sy[static_cast<std::size_t>(v)] =
            std::clamp(sy[static_cast<std::size_t>(v)], dbuToUm(fp.die.ylo), dbuToUm(fp.die.yhi));
      }
      diffuse(nl, fp, movable, sx, sy, 0.75, 40,
              opt.legalizer.cellWidthScale * opt.legalizer.cellWidthScale, diffuseScratch);
      for (int v = 0; v < n; ++v) {
        Instance& inst = nl.instance(movable[static_cast<std::size_t>(v)]);
        inst.pos = Point{umToDbu(sx[static_cast<std::size_t>(v)]),
                         umToDbu(sy[static_cast<std::size_t>(v)])};
      }
    }
    result.legal = legalize(nl, fp, opt.legalizer);
    result.iterations = iter + 1;

    for (int v = 0; v < n; ++v) {
      const Instance& inst = nl.instance(movable[static_cast<std::size_t>(v)]);
      ax[static_cast<std::size_t>(v)] = dbuToUm(inst.pos.x);
      ay[static_cast<std::size_t>(v)] = dbuToUm(inst.pos.y);
    }
    haveAnchors = true;
    anchorW *= opt.anchorWeightGrowth;

    const double hpwlUm = dbuToUm(static_cast<Dbu>(nl.totalHpwl(opt.numThreads)));
    it.attr("hpwl_um", hpwlUm);
    it.attr("legal_fail", result.legal.success ? 0.0 : 1.0);
    obs::series("place.hpwl").record(hpwlUm);
    M3D_LOG(debug) << "place iter " << (iter + 1) << ": hpwl_um=" << hpwlUm
                   << " legal=" << (result.legal.success ? "yes" : "no");
    // Keep the best legalized iterate seen so far.
    if (result.legal.success && (!bestLegal || bestHpwlUm < 0.0 || hpwlUm < bestHpwlUm)) {
      bestLegal = true;
      bestHpwlUm = hpwlUm;
      bestLegalResult = result.legal;
      bestPos.resize(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v) {
        bestPos[static_cast<std::size_t>(v)] = nl.instance(movable[static_cast<std::size_t>(v)]).pos;
      }
    }
    if (iter + 1 >= opt.minIters && prevHpwlUm > 0.0 &&
        std::abs(prevHpwlUm - hpwlUm) < 0.005 * prevHpwlUm && result.legal.success) {
      break;
    }
    prevHpwlUm = hpwlUm;
  }

  if (bestLegal) {
    for (int v = 0; v < n; ++v) {
      nl.instance(movable[static_cast<std::size_t>(v)]).pos = bestPos[static_cast<std::size_t>(v)];
    }
    result.legal = bestLegalResult;
  }
  result.hpwlUm = dbuToUm(static_cast<Dbu>(nl.totalHpwl(opt.numThreads)));
  // Engine-neutral density overflow so BENCH_hpwl_ablation compares B2B and
  // analytic results on the same scale.
  result.overflow = place::densityOverflow(nl, fp, opt.analytic.targetDensity, opt.numThreads);
  result.success = result.legal.success;
  return result;
}

}  // namespace m3d
