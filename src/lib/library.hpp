#pragma once

/// \file library.hpp
/// Cell library: owns cell types, provides name lookup and drive-strength
/// family navigation (used by the sizing optimizer).

#include <map>
#include <string>
#include <vector>

#include "lib/cell_type.hpp"

namespace m3d {

using CellTypeId = std::int32_t;
inline constexpr CellTypeId kInvalidCellType = -1;

class Library {
 public:
  /// Adds a cell type; the name must be unique. Returns its id.
  CellTypeId addCell(CellType cell);

  int numCells() const { return static_cast<int>(cells_.size()); }
  const CellType& cell(CellTypeId id) const { return cells_[static_cast<std::size_t>(id)]; }
  CellType& cell(CellTypeId id) { return cells_[static_cast<std::size_t>(id)]; }

  /// Id of the cell named \p name, or kInvalidCellType.
  CellTypeId findCell(const std::string& name) const;

  /// All cells of a family ("INV") ordered by increasing drive strength.
  std::vector<CellTypeId> family(const std::string& familyName) const;

  /// Next stronger cell of the same family, or kInvalidCellType at the top.
  CellTypeId nextSizeUp(CellTypeId id) const;
  /// Next weaker cell of the same family, or kInvalidCellType at the bottom.
  CellTypeId nextSizeDown(CellTypeId id) const;

  /// The buffer family used for net buffering and CTS (strongest first
  /// lookup is done by the optimizer). Set by the factory.
  void setBufferFamily(const std::string& fam) { bufferFamily_ = fam; }
  const std::string& bufferFamily() const { return bufferFamily_; }

  /// The filler cell id (defines the substrate size of projected macros).
  void setFillerCell(CellTypeId id) { filler_ = id; }
  CellTypeId fillerCell() const { return filler_; }

 private:
  std::vector<CellType> cells_;
  std::map<std::string, CellTypeId> byName_;
  std::map<std::string, std::vector<CellTypeId>> byFamily_;
  std::string bufferFamily_;
  CellTypeId filler_ = kInvalidCellType;
};

}  // namespace m3d
