#include "lib/stdcell_factory.hpp"

#include <cassert>
#include <cmath>

namespace m3d {

namespace {

// Base (X1) electrical calibration constants.
constexpr double kInvDriveRes = 3000.0;    // ohm
constexpr double kInvInputCap = 1.0e-15;   // F
constexpr double kInvIntrinsic = 8.0e-12;  // s
constexpr double kBaseLeakage = 4.0e-9;    // W
constexpr double kBaseEnergy = 0.8e-15;    // J per output toggle

struct CombSpec {
  const char* family;
  int numInputs;
  double intrinsicPs;   // X1 intrinsic delay [ps]
  double inputCapRel;   // input cap relative to INV X1
  double driveResRel;   // drive resistance relative to INV X1
  int baseSites;        // X1 width in sites
  double energyRel;     // internal energy relative to INV X1
  std::vector<int> strengths;
};

const char* kInputNames[4] = {"A", "B", "C", "D"};

CellType makeComb(const TechNode& tech, const CombSpec& s, int k) {
  CellType c;
  c.family = s.family;
  c.driveStrength = k;
  c.name = std::string(s.family) + "_X" + std::to_string(k);
  c.cls = (std::string(s.family) == "BUF" || std::string(s.family) == "INV") ? CellClass::kBuf
                                                                             : CellClass::kComb;
  const int widthSites = s.baseSites + (k - 1) * std::max(1, s.baseSites / 2);
  c.width = widthSites * tech.siteWidth;
  c.height = tech.rowHeight;
  c.substrateWidth = c.width;
  c.substrateHeight = c.height;

  for (int i = 0; i < s.numInputs; ++i) {
    LibPin p;
    p.name = kInputNames[i];
    p.dir = PinDir::kInput;
    p.cap = kInvInputCap * s.inputCapRel * k;
    p.layer = "M1";
    p.offset = Point{(i + 1) * c.width / (s.numInputs + 2), c.height / 3};
    c.pins.push_back(p);
  }
  LibPin out;
  out.name = "Y";
  out.dir = PinDir::kOutput;
  out.layer = "M1";
  out.offset = Point{c.width * (s.numInputs + 1) / (s.numInputs + 2), 2 * c.height / 3};
  c.pins.push_back(out);
  const int yIdx = s.numInputs;

  for (int i = 0; i < s.numInputs; ++i) {
    TimingArc a;
    a.fromPin = i;
    a.toPin = yIdx;
    a.intrinsic = s.intrinsicPs * 1e-12;
    a.driveRes = kInvDriveRes * s.driveResRel / k;
    c.arcs.push_back(a);
  }
  c.leakage = kBaseLeakage * s.energyRel * k;
  c.energyPerToggle = kBaseEnergy * s.energyRel * k;
  return c;
}

CellType makeDff(const TechNode& tech, int k) {
  CellType c;
  c.family = "DFF";
  c.driveStrength = k;
  c.name = "DFF_X" + std::to_string(k);
  c.cls = CellClass::kSeq;
  const int widthSites = 9 + (k - 1) * 3;
  c.width = widthSites * tech.siteWidth;
  c.height = tech.rowHeight;
  c.substrateWidth = c.width;
  c.substrateHeight = c.height;

  LibPin d{.name = "D", .dir = PinDir::kInput, .cap = 1.1e-15, .isClock = false, .layer = "M1",
           .offset = Point{c.width / 6, c.height / 3}};
  LibPin ck{.name = "CK", .dir = PinDir::kInput, .cap = 0.9e-15 * k, .isClock = true, .layer = "M1",
            .offset = Point{c.width / 2, c.height / 4}};
  LibPin q{.name = "Q", .dir = PinDir::kOutput, .cap = 0.0, .isClock = false, .layer = "M1",
           .offset = Point{5 * c.width / 6, 2 * c.height / 3}};
  c.pins = {d, ck, q};

  TimingArc ckq;
  ckq.fromPin = 1;  // CK
  ckq.toPin = 2;    // Q
  ckq.intrinsic = 85e-12;
  ckq.driveRes = kInvDriveRes / (1.4 * k);
  c.arcs = {ckq};

  c.setup = 45e-12;
  c.leakage = kBaseLeakage * 4.0 * k;
  c.energyPerToggle = kBaseEnergy * 4.5 * k;
  return c;
}

}  // namespace

Library makeStdCellLib(const TechNode& tech) {
  Library lib;

  const std::vector<CombSpec> specs = {
      {"INV", 1, 8.0, 1.0, 1.0, 2, 1.0, {1, 2, 4, 8, 16}},
      {"BUF", 1, 16.0, 0.9, 1.0, 3, 1.6, {1, 2, 4, 8, 16, 32}},
      {"NAND2", 2, 11.0, 1.1, 1.25, 3, 1.4, {1, 2, 4, 8}},
      {"NOR2", 2, 13.0, 1.1, 1.55, 3, 1.4, {1, 2, 4, 8}},
      {"AND2", 2, 20.0, 1.0, 1.1, 4, 1.8, {1, 2, 4, 8}},
      {"OR2", 2, 22.0, 1.0, 1.2, 4, 1.8, {1, 2, 4, 8}},
      {"AOI21", 3, 16.0, 1.2, 1.6, 4, 1.7, {1, 2, 4}},
      {"OAI21", 3, 17.0, 1.2, 1.6, 4, 1.7, {1, 2, 4}},
      {"XOR2", 2, 26.0, 1.6, 1.5, 5, 2.4, {1, 2, 4}},
      {"XNOR2", 2, 26.0, 1.6, 1.5, 5, 2.4, {1, 2, 4}},
      {"MUX2", 3, 24.0, 1.3, 1.3, 5, 2.2, {1, 2, 4}},
  };
  for (const auto& s : specs) {
    for (int k : s.strengths) lib.addCell(makeComb(tech, s, k));
  }
  lib.setBufferFamily("BUF");

  lib.addCell(makeDff(tech, 1));
  lib.addCell(makeDff(tech, 2));
  lib.addCell(makeDff(tech, 4));

  CellType filler;
  filler.name = "FILLER_X1";
  filler.cls = CellClass::kFiller;
  filler.family = "FILLER";
  filler.width = tech.siteWidth;
  filler.height = tech.rowHeight;
  filler.substrateWidth = filler.width;
  filler.substrateHeight = filler.height;
  lib.setFillerCell(lib.addCell(filler));

  return lib;
}

}  // namespace m3d
