#include "lib/library.hpp"

#include <algorithm>
#include <cassert>

namespace m3d {

CellTypeId Library::addCell(CellType cell) {
  assert(byName_.find(cell.name) == byName_.end() && "duplicate cell name");
  assert(cell.width > 0 && cell.height > 0);
  if (cell.substrateWidth == 0) cell.substrateWidth = cell.width;
  if (cell.substrateHeight == 0) cell.substrateHeight = cell.height;
  const CellTypeId id = static_cast<CellTypeId>(cells_.size());
  byName_[cell.name] = id;
  if (!cell.family.empty()) {
    auto& fam = byFamily_[cell.family];
    fam.push_back(id);
    std::sort(fam.begin(), fam.end(), [this, &cell, id](CellTypeId a, CellTypeId b) {
      const CellType& ca = (a == id) ? cell : cells_[static_cast<std::size_t>(a)];
      const CellType& cb = (b == id) ? cell : cells_[static_cast<std::size_t>(b)];
      return ca.driveStrength < cb.driveStrength;
    });
  }
  cells_.push_back(std::move(cell));
  return id;
}

CellTypeId Library::findCell(const std::string& name) const {
  auto it = byName_.find(name);
  return it == byName_.end() ? kInvalidCellType : it->second;
}

std::vector<CellTypeId> Library::family(const std::string& familyName) const {
  auto it = byFamily_.find(familyName);
  return it == byFamily_.end() ? std::vector<CellTypeId>{} : it->second;
}

CellTypeId Library::nextSizeUp(CellTypeId id) const {
  const CellType& c = cell(id);
  if (c.family.empty()) return kInvalidCellType;
  const auto fam = family(c.family);
  auto it = std::find(fam.begin(), fam.end(), id);
  assert(it != fam.end());
  ++it;
  return it == fam.end() ? kInvalidCellType : *it;
}

CellTypeId Library::nextSizeDown(CellTypeId id) const {
  const CellType& c = cell(id);
  if (c.family.empty()) return kInvalidCellType;
  const auto fam = family(c.family);
  auto it = std::find(fam.begin(), fam.end(), id);
  assert(it != fam.end());
  if (it == fam.begin()) return kInvalidCellType;
  --it;
  return *it;
}

}  // namespace m3d
