#include "lib/sram_generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace m3d {

namespace {

int ceilLog2(std::int64_t v) {
  int b = 0;
  while ((std::int64_t{1} << b) < v) ++b;
  return b;
}

}  // namespace

CellType makeSramMacro(const SramSpec& spec, const TechNode& tech) {
  assert(spec.words > 0 && spec.bitsPerWord > 0);
  assert(spec.topMetal >= 2 && spec.topMetal <= tech.beol.numMetals());

  CellType c;
  c.name = spec.name;
  c.cls = CellClass::kMacro;
  c.family = "";  // macros are not resizable.
  c.driveStrength = 1;

  // --- Geometry ---------------------------------------------------------
  const double bits = static_cast<double>(sramBits(spec));
  const double totalUm2 = bits * spec.bitcellUm2 / spec.arrayEfficiency;
  const double widthUm = std::sqrt(totalUm2 * spec.aspect);
  const double heightUm = totalUm2 / widthUm;
  // Snap to placement grid so macros abut rows/sites cleanly.
  c.width = std::max<Dbu>(tech.siteWidth,
                          (umToDbu(widthUm) + tech.siteWidth - 1) / tech.siteWidth * tech.siteWidth);
  c.height = std::max<Dbu>(tech.rowHeight, (umToDbu(heightUm) + tech.rowHeight - 1) /
                                               tech.rowHeight * tech.rowHeight);
  c.substrateWidth = c.width;
  c.substrateHeight = c.height;

  // --- Pins --------------------------------------------------------------
  const int addrBits = std::max(1, ceilLog2(spec.words));
  const std::string pinLayer = "M" + std::to_string(spec.topMetal);
  const int nPins = 3 + addrBits + 2 * spec.bitsPerWord;

  // Pins distributed along the bottom edge, slightly inset.
  int pinIdx = 0;
  auto place = [&](const std::string& name, PinDir dir, double cap, bool isClock) {
    LibPin p;
    p.name = name;
    p.dir = dir;
    p.cap = cap;
    p.isClock = isClock;
    p.layer = pinLayer;
    const Dbu x = c.width * (pinIdx + 1) / (nPins + 1);
    p.offset = Point{x, umToDbu(0.4)};
    ++pinIdx;
    c.pins.push_back(p);
    return static_cast<int>(c.pins.size()) - 1;
  };

  const double inCap = 2.0e-15;
  const int ckPin = place("CLK", PinDir::kInput, 2.5e-15, true);
  place("CE", PinDir::kInput, inCap, false);
  place("WE", PinDir::kInput, inCap, false);
  for (int i = 0; i < addrBits; ++i) place("A" + std::to_string(i), PinDir::kInput, inCap, false);
  for (int i = 0; i < spec.bitsPerWord; ++i)
    place("D" + std::to_string(i), PinDir::kInput, inCap, false);

  // --- Timing ------------------------------------------------------------
  const double kb = bits / 8.0 / 1024.0;  // capacity in KB
  const double accessTime = (180.0 + 45.0 * std::log2(std::max(1.0, kb))) * 1e-12;
  const double driveRes = 800.0;
  for (int i = 0; i < spec.bitsPerWord; ++i) {
    const int q = place("Q" + std::to_string(i), PinDir::kOutput, 0.0, false);
    TimingArc a;
    a.fromPin = ckPin;
    a.toPin = q;
    a.intrinsic = accessTime;
    a.driveRes = driveRes;
    c.arcs.push_back(a);
  }
  c.setup = 90e-12;

  // --- Power -------------------------------------------------------------
  // Internal energy per output toggle, calibrated so that total macro access
  // energy scales ~linearly with capacity (word line + bit line swing).
  c.energyPerToggle = (3.0 + 0.8 * std::log2(std::max(1.0, kb))) * 1e-15;
  c.leakage = bits * 5.0e-12;

  // --- Obstructions ------------------------------------------------------
  // Internal routing fully occupies M1..topMetal over the macro area.
  for (int m = 1; m <= spec.topMetal; ++m) {
    Obstruction o;
    o.layer = "M" + std::to_string(m);
    o.rect = Rect{0, 0, c.width, c.height};
    c.obstructions.push_back(o);
  }
  return c;
}

}  // namespace m3d
