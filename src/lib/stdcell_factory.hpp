#pragma once

/// \file stdcell_factory.hpp
/// Synthetic 28 nm-class standard-cell library.
///
/// The library is calibrated so that an FO4 inverter delay is ~22 ps and a
/// DFF CK->Q + setup budget is ~160 ps, in line with published 28 nm slow-
/// corner numbers. Delay model: d = intrinsic + driveRes * Cload (see
/// TimingArc). Drive strength Xk scales driveRes by 1/k and input caps,
/// energy and leakage by ~k.

#include "lib/library.hpp"
#include "tech/tech_node.hpp"

namespace m3d {

/// Builds the standard-cell library for \p tech. Contains, at multiple drive
/// strengths: INV, BUF (registered as the buffering family), NAND2, NOR2,
/// AND2, OR2, AOI21, OAI21, XOR2, XNOR2, MUX2, DFF, plus a FILLER cell.
Library makeStdCellLib(const TechNode& tech);

}  // namespace m3d
