#pragma once

/// \file macro_projection.hpp
/// Macro-die macro projection (paper Sec. IV, step 2).
///
/// A macro physically placed on the macro die is represented in the
/// superimposed 2D floorplan of the logic die by an edited cell master:
///  - its substrate footprint shrinks to the size of a filler cell (tools
///    cannot represent a 0-area instance; neither can our legalizer),
///  - every pin layer gets the macro-die suffix ("M4" -> "M4_MD"),
///  - every routing-obstruction layer gets the suffix as well,
///  - pin and obstruction (x,y) coordinates are left UNmodified.
/// The 2D engine then sees the macro pins at their true positions on the
/// true (combined-stack) layers.

#include "lib/cell_type.hpp"
#include "tech/tech_node.hpp"

namespace m3d {

/// Returns the projected version of \p macroMaster. \p tech provides the
/// filler-cell substrate size. The projected master is named
/// "<name>_PROJ".
CellType projectToMacroDie(const CellType& macroMaster, const TechNode& tech);

/// Reverses the projection (die separation, paper Sec. IV step 4): restores
/// original layer names and substrate size. Used when writing per-die
/// layouts.
CellType unprojectFromMacroDie(const CellType& projected);

}  // namespace m3d
