#pragma once

/// \file sram_generator.hpp
/// Parametric SRAM macro generator.
///
/// Generates full-custom memory macros the way a memory compiler would:
/// geometry from capacity + periphery overhead, pins distributed along the
/// bottom edge on the macro's top routing layer, full-area routing
/// obstructions on the internal routing layers (the paper notes SRAM internal
/// routing fully occupies M1..M4, which is why 2D designs need >= 6 metal
/// layers to route over memories), and capacity-dependent timing/energy.

#include <string>

#include "lib/cell_type.hpp"
#include "tech/tech_node.hpp"

namespace m3d {

struct SramSpec {
  std::string name;
  int words = 0;          ///< number of addressable words.
  int bitsPerWord = 0;    ///< word width.
  /// Effective bitcell area [um^2] including array-level overhead. The
  /// default is the case-study calibration (a scaled tile, see
  /// flows/case_study.hpp); a physical 28 nm bitcell is ~0.12 um^2.
  double bitcellUm2 = 0.030;
  /// Array area / total area (periphery + decoders take the rest).
  double arrayEfficiency = 0.55;
  /// Aspect ratio width:height of the macro.
  double aspect = 1.4;
  /// Macro internal routing occupies metal layers 1..topMetal; pins sit on
  /// layer topMetal.
  int topMetal = 4;
};

/// Total storage capacity in bits.
inline std::int64_t sramBits(const SramSpec& s) {
  return static_cast<std::int64_t>(s.words) * s.bitsPerWord;
}

/// Builds the macro cell type for \p spec in \p tech. Pins: CLK (clock), CE,
/// WE, A[addrBits], D[bits] (inputs, setup-constrained), Q[bits] (outputs,
/// CK->Q arcs). Width/height are snapped to site/row multiples.
CellType makeSramMacro(const SramSpec& spec, const TechNode& tech);

}  // namespace m3d
