#include "lib/macro_projection.hpp"

#include <cassert>

#include "tech/combined_beol.hpp"

namespace m3d {

namespace {
const char* kProjSuffix = "_PROJ";
}

CellType projectToMacroDie(const CellType& macroMaster, const TechNode& tech) {
  assert(macroMaster.cls == CellClass::kMacro);
  CellType out = macroMaster;
  out.name = macroMaster.name + kProjSuffix;
  // Substrate shrinks to one filler cell; bounding box (and therefore pin
  // and obstruction coordinates) stays at the original macro extent.
  out.substrateWidth = tech.siteWidth;
  out.substrateHeight = tech.rowHeight;
  for (auto& p : out.pins) {
    if (!isMacroDieLayerName(p.layer)) p.layer = toMacroDieLayerName(p.layer);
  }
  for (auto& o : out.obstructions) {
    if (!isMacroDieLayerName(o.layer)) o.layer = toMacroDieLayerName(o.layer);
  }
  return out;
}

CellType unprojectFromMacroDie(const CellType& projected) {
  CellType out = projected;
  const std::string suffix = kProjSuffix;
  assert(out.name.size() > suffix.size() &&
         out.name.compare(out.name.size() - suffix.size(), suffix.size(), suffix) == 0);
  out.name = out.name.substr(0, out.name.size() - suffix.size());
  out.substrateWidth = out.width;
  out.substrateHeight = out.height;
  for (auto& p : out.pins) p.layer = stripMacroDieSuffix(p.layer);
  for (auto& o : out.obstructions) o.layer = stripMacroDieSuffix(o.layer);
  return out;
}

}  // namespace m3d
