#pragma once

/// \file cell_type.hpp
/// Cell-type (library master) description: geometry, pins, timing arcs,
/// power. Both standard cells and full-custom macros (SRAMs, sensors) are
/// represented by the same structure; macros additionally carry per-layer
/// routing obstructions from their internal routing.

#include <cassert>
#include <optional>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace m3d {

enum class PinDir { kInput, kOutput, kInout };

/// A library pin of a cell type.
struct LibPin {
  std::string name;
  PinDir dir = PinDir::kInput;
  double cap = 0.0;        ///< input capacitance [F] (0 for outputs).
  bool isClock = false;    ///< true for CK pins of sequential cells/macros.
  std::string layer;       ///< metal layer the physical pin shape sits on.
  Point offset;            ///< pin location relative to the cell origin [DBU].
};

/// A delay arc from an input pin to an output pin.
///
/// Delay model: d = intrinsic + driveRes * Cload, where Cload is the total
/// capacitance seen at the output (pin caps + wire cap). driveRes is also the
/// root resistance of the Elmore model of the driven net.
struct TimingArc {
  int fromPin = -1;        ///< index into CellType::pins.
  int toPin = -1;          ///< index into CellType::pins.
  double intrinsic = 0.0;  ///< [s]
  double driveRes = 0.0;   ///< [ohm]
};

/// Routing obstruction of a macro: a rectangle on a named layer that routing
/// must avoid (models the macro-internal wiring).
struct Obstruction {
  std::string layer;
  Rect rect;  ///< relative to the cell origin.
};

enum class CellClass {
  kComb,    ///< combinational standard cell.
  kSeq,     ///< flip-flop.
  kBuf,     ///< buffer/inverter usable for timing repair and CTS.
  kMacro,   ///< full-custom block (SRAM, sensor, ...).
  kFiller,  ///< filler cell (also the substrate size of projected macros).
};

/// A library master.
struct CellType {
  std::string name;
  CellClass cls = CellClass::kComb;

  /// Bounding-box size. For projected macro-die macros this remains the
  /// original macro extent (pins/obstructions live inside it).
  Dbu width = 0;
  Dbu height = 0;

  /// Substrate footprint actually occupied on the die the cell is placed on.
  /// Equals (width, height) for everything except macro-die macros projected
  /// into the logic-die floorplan, whose substrate shrinks to filler size
  /// (paper Sec. IV: "their substrate area is shrunk to the minimum possible
  /// size, which is the size of a filler cell").
  Dbu substrateWidth = 0;
  Dbu substrateHeight = 0;

  std::vector<LibPin> pins;
  std::vector<TimingArc> arcs;
  std::vector<Obstruction> obstructions;

  /// Setup time for sequential cells/macros: data/address pins must arrive
  /// this long before the clock edge [s].
  double setup = 0.0;

  double leakage = 0.0;          ///< leakage power [W].
  double energyPerToggle = 0.0;  ///< internal energy per output toggle [J].

  /// Drive-strength family: cells of the same function at different sizes
  /// share a family name ("INV") and carry their strength ("X2" -> 2).
  std::string family;
  int driveStrength = 1;

  std::int64_t substrateArea() const {
    return static_cast<std::int64_t>(substrateWidth) * static_cast<std::int64_t>(substrateHeight);
  }
  std::int64_t boundingArea() const {
    return static_cast<std::int64_t>(width) * static_cast<std::int64_t>(height);
  }

  bool isMacro() const { return cls == CellClass::kMacro; }
  bool isSequential() const { return cls == CellClass::kSeq; }

  /// Index of the pin named \p n, or nullopt.
  std::optional<int> findPin(const std::string& n) const {
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (pins[i].name == n) return static_cast<int>(i);
    }
    return std::nullopt;
  }

  /// Index of the (first) output pin, or nullopt.
  std::optional<int> firstOutputPin() const {
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (pins[i].dir == PinDir::kOutput) return static_cast<int>(i);
    }
    return std::nullopt;
  }

  /// Index of the clock pin, or nullopt.
  std::optional<int> clockPin() const {
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (pins[i].isClock) return static_cast<int>(i);
    }
    return std::nullopt;
  }
};

}  // namespace m3d
