#pragma once

/// \file lefdef.hpp
/// Text interchange formats for the library and the design, modeled on
/// LEF/DEF but simplified to this library's data model (documented dialect:
/// "m3d-LEF" / "m3d-DEF"). Both directions are supported and round-trip
/// exactly:
///  - m3d-LEF: technology (BEOL layers + vias) and cell masters (geometry,
///    pins with layers/offsets, obstructions, timing arcs, power).
///  - m3d-DEF: die area, instances with placement/die/fixedness, ports with
///    position/side/constraints, and nets with their connections.
///
/// Grammar (line oriented, '#' comments):
///   LEF:  TECH <name> <siteW> <rowH> <vdd>
///         LAYER <name> <H|V> <pitch> <width> <rPerUm> <cPerUm> <L|M>
///         VIA <name> <res> <cap> <pitch> <size> <f2f 0|1>
///         MACRO <name> <class> <w> <h> <subW> <subH> <setup> <leak> <energy>
///               <family> <drive>
///           PIN <name> <I|O|B> <cap> <clk 0|1> <layer> <x> <y>
///           ARC <from> <to> <intrinsic> <driveRes>
///           OBS <layer> <xlo> <ylo> <xhi> <yhi>
///         END
///   DEF:  DESIGN <name>
///         DIEAREA <xlo> <ylo> <xhi> <yhi> <rowH> <siteW>
///         INST <name> <master> <x> <y> <fixed 0|1> <L|M>
///         PORT <name> <I|O|B> <side> <x> <y> <layer> <clk 0|1> <half 0|1>
///               <pairTag>
///         NET <name> <clk 0|1> <npins> { I <inst> <pin> | P <port> }*
///         END

#include <iosfwd>
#include <string>

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_node.hpp"

namespace m3d {

/// Writes the technology + every cell master of \p lib as m3d-LEF.
void writeLef(std::ostream& os, const TechNode& tech, const Library& lib);
bool writeLefFile(const std::string& path, const TechNode& tech, const Library& lib);

/// Parses m3d-LEF. Returns false (with \p error filled) on malformed input.
bool readLef(std::istream& is, TechNode& tech, Library& lib, std::string* error = nullptr);
bool readLefFile(const std::string& path, TechNode& tech, Library& lib,
                 std::string* error = nullptr);

/// Writes the design (instances, ports, nets, die) as m3d-DEF.
void writeDef(std::ostream& os, const std::string& designName, const Netlist& nl,
              const Floorplan& fp);
bool writeDefFile(const std::string& path, const std::string& designName, const Netlist& nl,
                  const Floorplan& fp);

/// Parses m3d-DEF into a netlist bound to \p lib (masters must exist).
bool readDef(std::istream& is, Netlist& nl, Floorplan& fp, std::string* designName = nullptr,
             std::string* error = nullptr);
bool readDefFile(const std::string& path, Netlist& nl, Floorplan& fp,
                 std::string* designName = nullptr, std::string* error = nullptr);

}  // namespace m3d
