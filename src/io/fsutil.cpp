#include "io/fsutil.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

namespace m3d::io {

namespace fs = std::filesystem;

namespace {

/// Collision-free temporary sibling name for atomic replacement. Concurrent
/// writers of the SAME destination (two jobs racing on one stage-cache key,
/// a daemon and a CLI sharing a cache directory) must never share a temp
/// file: interleaved writes to one ".tmp" followed by a rename would
/// publish torn bytes. pid + a process-wide sequence number make the name
/// unique across processes and threads.
std::string uniqueTempName(const std::string& path) {
  static std::atomic<std::uint64_t> seq{0};
  long pid = 0;
#ifdef __unix__
  pid = static_cast<long>(::getpid());
#endif
  return path + ".tmp." + std::to_string(pid) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

bool ensureDirectories(const std::string& dir) {
  if (dir.empty()) return false;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;
  return fs::is_directory(dir, ec) && !ec;
}

bool atomicWriteFile(const std::string& path, const std::vector<std::uint8_t>& bytes,
                     std::string* err) {
  const std::string tmp = uniqueTempName(path);
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      if (err) *err = "cannot open for write: " + tmp;
      return false;
    }
    if (!bytes.empty()) {
      f.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    }
    f.flush();
    if (!f) {
      if (err) *err = "write failed: " + tmp;
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    if (err) *err = "rename " + tmp + " -> " + path + " failed: " + ec.message();
    std::error_code ec2;
    fs::remove(tmp, ec2);
    return false;
  }
  return true;
}

bool readFileBytes(const std::string& path, std::vector<std::uint8_t>& bytes,
                   std::string* err) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) {
    if (err) *err = "cannot open: " + path;
    return false;
  }
  const std::streamsize size = f.tellg();
  if (size < 0) {
    if (err) *err = "cannot stat: " + path;
    return false;
  }
  bytes.resize(static_cast<std::size_t>(size));
  f.seekg(0);
  if (size > 0) f.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!f) {
    if (err) *err = "read failed: " + path;
    return false;
  }
  return true;
}

bool fileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec) && !ec;
}

std::int64_t fileSizeBytes(const std::string& path) {
  std::error_code ec;
  if (!fs::is_regular_file(path, ec) || ec) return -1;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec) return -1;
  return static_cast<std::int64_t>(size);
}

}  // namespace m3d::io
