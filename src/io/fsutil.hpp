#pragma once

/// \file fsutil.hpp
/// Small filesystem helpers shared by the writers in this directory and the
/// design database (src/db): directory creation and atomic whole-file
/// replacement. Kept dependency-free (std::filesystem + <fstream> only).

#include <cstdint>
#include <string>
#include <vector>

namespace m3d::io {

/// Creates \p dir and every missing parent. Returns true when the directory
/// exists afterwards (already existing is success).
bool ensureDirectories(const std::string& dir);

/// Atomically replaces \p path with \p bytes: the data is written to a
/// sibling temporary file which is then renamed over \p path, so readers
/// never observe a half-written file (the property the stage cache relies
/// on when a run is interrupted mid-save). The temporary name embeds the
/// pid and a process-wide sequence number, so concurrent writers of the
/// same destination (two jobs racing on one stage-cache key, possibly in
/// different processes) each write a private temp file and the last rename
/// wins whole -- a reader can never observe bytes from two writers mixed.
/// Returns false on any I/O error; \p err (optional) receives a diagnostic.
bool atomicWriteFile(const std::string& path, const std::vector<std::uint8_t>& bytes,
                     std::string* err = nullptr);

/// Reads the whole file into \p bytes. Returns false (with \p err set when
/// provided) if the file cannot be opened or read.
bool readFileBytes(const std::string& path, std::vector<std::uint8_t>& bytes,
                   std::string* err = nullptr);

/// True when \p path names an existing regular file.
bool fileExists(const std::string& path);

/// Size of the regular file at \p path in bytes, or -1 when it does not
/// exist or cannot be stat'ed (telemetry callers treat that as "unknown").
std::int64_t fileSizeBytes(const std::string& path);

}  // namespace m3d::io
