#include "io/lefdef.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace m3d {

namespace {

char dirChar(PinDir d) {
  switch (d) {
    case PinDir::kInput: return 'I';
    case PinDir::kOutput: return 'O';
    case PinDir::kInout: return 'B';
  }
  return '?';
}

bool parseDir(const std::string& s, PinDir& out) {
  if (s == "I") {
    out = PinDir::kInput;
  } else if (s == "O") {
    out = PinDir::kOutput;
  } else if (s == "B") {
    out = PinDir::kInout;
  } else {
    return false;
  }
  return true;
}

const char* className(CellClass c) {
  switch (c) {
    case CellClass::kComb: return "COMB";
    case CellClass::kSeq: return "SEQ";
    case CellClass::kBuf: return "BUF";
    case CellClass::kMacro: return "MACRO";
    case CellClass::kFiller: return "FILLER";
  }
  return "?";
}

bool parseClass(const std::string& s, CellClass& out) {
  if (s == "COMB") {
    out = CellClass::kComb;
  } else if (s == "SEQ") {
    out = CellClass::kSeq;
  } else if (s == "BUF") {
    out = CellClass::kBuf;
  } else if (s == "MACRO") {
    out = CellClass::kMacro;
  } else if (s == "FILLER") {
    out = CellClass::kFiller;
  } else {
    return false;
  }
  return true;
}

const char* sideToken(Side s) { return sideName(s); }

bool parseSide(const std::string& s, Side& out) {
  if (s == "N") {
    out = Side::kNorth;
  } else if (s == "S") {
    out = Side::kSouth;
  } else if (s == "E") {
    out = Side::kEast;
  } else if (s == "W") {
    out = Side::kWest;
  } else {
    return false;
  }
  return true;
}

/// Reads the next non-empty, non-comment line; returns false at EOF.
bool nextLine(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto pos = line.find('#');
    if (pos != std::string::npos) line.erase(pos);
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) return true;
  }
  return false;
}

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// LEF
// ---------------------------------------------------------------------------

void writeLef(std::ostream& os, const TechNode& tech, const Library& lib) {
  os << std::setprecision(17);
  os << "# m3d-LEF 1.0\n";
  os << "TECH " << tech.name << ' ' << tech.siteWidth << ' ' << tech.rowHeight << ' '
     << tech.vdd << '\n';
  for (int l = 0; l < tech.beol.numMetals(); ++l) {
    const MetalLayer& m = tech.beol.metal(l);
    os << "LAYER " << m.name << ' ' << (m.dir == LayerDir::kHorizontal ? 'H' : 'V') << ' '
       << m.pitch << ' ' << m.width << ' ' << m.rPerUm << ' ' << m.cPerUm << ' '
       << (m.die == DieId::kLogic ? 'L' : 'M') << '\n';
    if (l < tech.beol.numCuts()) {
      const CutLayer& c = tech.beol.cut(l);
      os << "VIA " << c.name << ' ' << c.res << ' ' << c.cap << ' ' << c.pitch << ' ' << c.size
         << ' ' << (c.isF2f ? 1 : 0) << '\n';
    }
  }
  for (CellTypeId id = 0; id < lib.numCells(); ++id) {
    const CellType& c = lib.cell(id);
    os << "MACRO " << c.name << ' ' << className(c.cls) << ' ' << c.width << ' ' << c.height
       << ' ' << c.substrateWidth << ' ' << c.substrateHeight << ' ' << c.setup << ' '
       << c.leakage << ' ' << c.energyPerToggle << ' '
       << (c.family.empty() ? "-" : c.family) << ' ' << c.driveStrength << '\n';
    for (const LibPin& p : c.pins) {
      os << "PIN " << p.name << ' ' << dirChar(p.dir) << ' ' << p.cap << ' '
         << (p.isClock ? 1 : 0) << ' ' << p.layer << ' ' << p.offset.x << ' ' << p.offset.y
         << '\n';
    }
    for (const TimingArc& a : c.arcs) {
      os << "ARC " << a.fromPin << ' ' << a.toPin << ' ' << a.intrinsic << ' ' << a.driveRes
         << '\n';
    }
    for (const Obstruction& o : c.obstructions) {
      os << "OBS " << o.layer << ' ' << o.rect.xlo << ' ' << o.rect.ylo << ' ' << o.rect.xhi
         << ' ' << o.rect.yhi << '\n';
    }
    os << "END\n";
  }
}

bool writeLefFile(const std::string& path, const TechNode& tech, const Library& lib) {
  std::ofstream f(path);
  if (!f) return false;
  writeLef(f, tech, lib);
  return f.good();
}

bool readLef(std::istream& is, TechNode& tech, Library& lib, std::string* error) {
  std::string line;
  bool haveTech = false;
  CellType cur;
  bool inMacro = false;

  auto flushMacro = [&]() {
    if (inMacro) {
      lib.addCell(cur);
      cur = CellType{};
      inMacro = false;
    }
  };

  while (nextLine(is, line)) {
    std::istringstream ss(line);
    std::string kw;
    ss >> kw;
    if (kw == "TECH") {
      ss >> tech.name >> tech.siteWidth >> tech.rowHeight >> tech.vdd;
      if (!ss) return fail(error, "bad TECH line: " + line);
      haveTech = true;
    } else if (kw == "LAYER") {
      MetalLayer m;
      char dir = 'H';
      char die = 'L';
      ss >> m.name >> dir >> m.pitch >> m.width >> m.rPerUm >> m.cPerUm >> die;
      if (!ss) return fail(error, "bad LAYER line: " + line);
      m.dir = dir == 'H' ? LayerDir::kHorizontal : LayerDir::kVertical;
      m.die = die == 'L' ? DieId::kLogic : DieId::kMacro;
      tech.beol.addMetal(m);
    } else if (kw == "VIA") {
      CutLayer c;
      int f2f = 0;
      ss >> c.name >> c.res >> c.cap >> c.pitch >> c.size >> f2f;
      if (!ss) return fail(error, "bad VIA line: " + line);
      c.isF2f = f2f != 0;
      tech.beol.addCut(c);
    } else if (kw == "MACRO") {
      flushMacro();
      inMacro = true;
      std::string cls;
      std::string family;
      ss >> cur.name >> cls >> cur.width >> cur.height >> cur.substrateWidth >>
          cur.substrateHeight >> cur.setup >> cur.leakage >> cur.energyPerToggle >> family >>
          cur.driveStrength;
      if (!ss || !parseClass(cls, cur.cls)) return fail(error, "bad MACRO line: " + line);
      cur.family = family == "-" ? "" : family;
    } else if (kw == "PIN") {
      if (!inMacro) return fail(error, "PIN outside MACRO");
      LibPin p;
      std::string dir;
      int clk = 0;
      ss >> p.name >> dir >> p.cap >> clk >> p.layer >> p.offset.x >> p.offset.y;
      if (!ss || !parseDir(dir, p.dir)) return fail(error, "bad PIN line: " + line);
      p.isClock = clk != 0;
      cur.pins.push_back(p);
    } else if (kw == "ARC") {
      if (!inMacro) return fail(error, "ARC outside MACRO");
      TimingArc a;
      ss >> a.fromPin >> a.toPin >> a.intrinsic >> a.driveRes;
      if (!ss) return fail(error, "bad ARC line: " + line);
      cur.arcs.push_back(a);
    } else if (kw == "OBS") {
      if (!inMacro) return fail(error, "OBS outside MACRO");
      Obstruction o;
      ss >> o.layer >> o.rect.xlo >> o.rect.ylo >> o.rect.xhi >> o.rect.yhi;
      if (!ss) return fail(error, "bad OBS line: " + line);
      cur.obstructions.push_back(o);
    } else if (kw == "END") {
      flushMacro();
    } else {
      return fail(error, "unknown keyword: " + kw);
    }
  }
  flushMacro();
  if (!haveTech) return fail(error, "missing TECH record");
  return true;
}

bool readLefFile(const std::string& path, TechNode& tech, Library& lib, std::string* error) {
  std::ifstream f(path);
  if (!f) return fail(error, "cannot open " + path);
  return readLef(f, tech, lib, error);
}

// ---------------------------------------------------------------------------
// DEF
// ---------------------------------------------------------------------------

void writeDef(std::ostream& os, const std::string& designName, const Netlist& nl,
              const Floorplan& fp) {
  os << std::setprecision(17);
  os << "# m3d-DEF 1.0\n";
  os << "DESIGN " << designName << '\n';
  os << "DIEAREA " << fp.die.xlo << ' ' << fp.die.ylo << ' ' << fp.die.xhi << ' ' << fp.die.yhi
     << ' ' << fp.rowHeight << ' ' << fp.siteWidth << '\n';
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    os << "INST " << inst.name << ' ' << nl.cellOf(i).name << ' ' << inst.pos.x << ' '
       << inst.pos.y << ' ' << (inst.fixed ? 1 : 0) << ' '
       << (inst.die == DieId::kLogic ? 'L' : 'M') << '\n';
  }
  for (PortId p = 0; p < nl.numPorts(); ++p) {
    const Port& port = nl.port(p);
    os << "PORT " << port.name << ' ' << dirChar(port.dir) << ' ' << sideToken(port.side) << ' '
       << port.pos.x << ' ' << port.pos.y << ' ' << port.layer << ' ' << (port.isClock ? 1 : 0)
       << ' ' << (port.halfCycle ? 1 : 0) << ' ' << port.pairTag << '\n';
  }
  for (NetId n = 0; n < nl.numNets(); ++n) {
    const Net& net = nl.net(n);
    os << "NET " << net.name << ' ' << (net.isClock ? 1 : 0) << ' ' << net.pins.size();
    // Emit the driver first so reconnection reproduces driverIdx = 0 order
    // invariantly; remaining pins keep their relative order.
    const auto emitPin = [&](const NetPin& p) {
      if (p.kind == NetPin::Kind::kInstPin) {
        os << " I " << nl.instance(p.inst).name << ' '
           << nl.cellOf(p.inst).pins[static_cast<std::size_t>(p.libPin)].name;
      } else {
        os << " P " << nl.port(p.port).name;
      }
    };
    if (net.driverIdx >= 0) emitPin(net.pins[static_cast<std::size_t>(net.driverIdx)]);
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      emitPin(net.pins[static_cast<std::size_t>(k)]);
    }
    os << '\n';
  }
  os << "END\n";
}

bool writeDefFile(const std::string& path, const std::string& designName, const Netlist& nl,
                  const Floorplan& fp) {
  std::ofstream f(path);
  if (!f) return false;
  writeDef(f, designName, nl, fp);
  return f.good();
}

bool readDef(std::istream& is, Netlist& nl, Floorplan& fp, std::string* designName,
             std::string* error) {
  const Library& lib = nl.library();
  std::string line;
  std::map<std::string, InstId> instByName;
  std::map<std::string, PortId> portByName;

  while (nextLine(is, line)) {
    std::istringstream ss(line);
    std::string kw;
    ss >> kw;
    if (kw == "DESIGN") {
      std::string name;
      ss >> name;
      if (designName) *designName = name;
    } else if (kw == "DIEAREA") {
      ss >> fp.die.xlo >> fp.die.ylo >> fp.die.xhi >> fp.die.yhi >> fp.rowHeight >> fp.siteWidth;
      if (!ss) return fail(error, "bad DIEAREA: " + line);
    } else if (kw == "INST") {
      std::string name;
      std::string master;
      Point pos;
      int fixed = 0;
      char die = 'L';
      ss >> name >> master >> pos.x >> pos.y >> fixed >> die;
      if (!ss) return fail(error, "bad INST: " + line);
      const CellTypeId id = lib.findCell(master);
      if (id == kInvalidCellType) return fail(error, "unknown master: " + master);
      const InstId inst = nl.addInstance(name, id);
      nl.instance(inst).pos = pos;
      nl.instance(inst).fixed = fixed != 0;
      nl.instance(inst).die = die == 'L' ? DieId::kLogic : DieId::kMacro;
      instByName[name] = inst;
    } else if (kw == "PORT") {
      std::string name;
      std::string dir;
      std::string side;
      Point pos;
      std::string layer;
      int clk = 0;
      int half = 0;
      int tag = -1;
      ss >> name >> dir >> side >> pos.x >> pos.y >> layer >> clk >> half >> tag;
      if (!ss) return fail(error, "bad PORT: " + line);
      PinDir d;
      Side sd;
      if (!parseDir(dir, d) || !parseSide(side, sd)) return fail(error, "bad PORT enum: " + line);
      const PortId p = nl.addPort(name, d, sd, clk != 0);
      nl.port(p).pos = pos;
      nl.port(p).layer = layer;
      nl.port(p).halfCycle = half != 0;
      nl.port(p).pairTag = tag;
      portByName[name] = p;
    } else if (kw == "NET") {
      std::string name;
      int clk = 0;
      std::size_t npins = 0;
      ss >> name >> clk >> npins;
      if (!ss) return fail(error, "bad NET: " + line);
      const NetId net = nl.addNet(name);
      nl.net(net).isClock = clk != 0;
      for (std::size_t k = 0; k < npins; ++k) {
        std::string kind;
        ss >> kind;
        if (kind == "I") {
          std::string instName;
          std::string pinName;
          ss >> instName >> pinName;
          const auto it = instByName.find(instName);
          if (it == instByName.end()) return fail(error, "unknown inst: " + instName);
          const auto pin = nl.cellOf(it->second).findPin(pinName);
          if (!pin) return fail(error, "unknown pin " + pinName + " on " + instName);
          nl.connect(net, it->second, *pin);
        } else if (kind == "P") {
          std::string portName;
          ss >> portName;
          const auto it = portByName.find(portName);
          if (it == portByName.end()) return fail(error, "unknown port: " + portName);
          nl.connectPort(net, it->second);
        } else {
          return fail(error, "bad pin kind in NET " + name);
        }
      }
      if (!ss) return fail(error, "truncated NET: " + name);
    } else if (kw == "END") {
      return true;
    } else {
      return fail(error, "unknown keyword: " + kw);
    }
  }
  return fail(error, "missing END");
}

bool readDefFile(const std::string& path, Netlist& nl, Floorplan& fp, std::string* designName,
                 std::string* error) {
  std::ifstream f(path);
  if (!f) return fail(error, "cannot open " + path);
  return readDef(f, nl, fp, designName, error);
}

}  // namespace m3d
