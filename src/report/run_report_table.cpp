#include "report/run_report_table.hpp"

#include <algorithm>

namespace m3d {

namespace {

void addSpanRows(Table& t, const obs::Span& s, const obs::Span& root, int depth,
                 int maxDepth) {
  std::string name;
  for (int i = 0; i < depth; ++i) name += "  ";
  name += s.name;
  const double durMs = static_cast<double>(s.durNs) / 1e6;
  const double selfMs = static_cast<double>(s.selfDurNs()) / 1e6;
  const double share =
      root.durNs > 0 ? 100.0 * static_cast<double>(s.durNs) / static_cast<double>(root.durNs)
                     : 0.0;
  t.addRow({name, Table::num(durMs, 2), Table::num(selfMs, 2), Table::num(share, 1) + "%",
            "+" + std::to_string(s.rssDeltaKb)});
  if (depth >= maxDepth) return;
  for (const obs::Span& c : s.children) addSpanRows(t, c, root, depth + 1, maxDepth);
}

}  // namespace

Table runReportSpanTable(const obs::RunReport& report, int maxDepth) {
  Table t("Phase timing: " + report.flow + " / " + report.tile);
  t.setHeader({"phase", "wall [ms]", "self [ms]", "share", "RSS delta [KB]"});
  addSpanRows(t, report.root, report.root, 0, maxDepth);
  return t;
}

Table runReportMetricsTable(const obs::RunReport& report) {
  Table t("Run metrics: " + report.flow + " / " + report.tile);
  t.setHeader({"metric", "count", "min", "mean", "max", "last"});
  for (const auto& [name, v] : report.counters) {
    t.addRow({name, "1", "-", "-", "-", std::to_string(v)});
  }
  for (const obs::RunReport::SeriesSlice& s : report.series) {
    if (s.points.empty()) continue;
    const double mn = *std::min_element(s.points.begin(), s.points.end());
    const double mx = *std::max_element(s.points.begin(), s.points.end());
    double sum = 0.0;
    for (double v : s.points) sum += v;
    t.addRow({s.name, std::to_string(s.points.size()), Table::num(mn, 3),
              Table::num(sum / static_cast<double>(s.points.size()), 3), Table::num(mx, 3),
              Table::num(s.points.back(), 3)});
  }
  return t;
}

Table runReportFinalsTable(const obs::RunReport& report) {
  Table t("Final metrics: " + report.flow + " / " + report.tile);
  t.setHeader({"metric", "value"});
  for (const auto& [name, v] : report.finals) t.addRow({name, Table::num(v, 3)});
  return t;
}

}  // namespace m3d
