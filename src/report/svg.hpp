#pragma once

/// \file svg.hpp
/// SVG rendering of floorplans and routed layouts (reproduces the paper's
/// Figs. 4-6 as vector images).

#include <string>

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"
#include "route/router.hpp"
#include "verify/verify.hpp"

namespace m3d {

struct SvgOptions {
  double pxPerUm = 2.0;
  bool drawStdCells = true;
  bool drawF2fBumps = true;
  bool drawMacroLabels = true;
  /// When non-null, violation rects are overlaid as outlined markers:
  /// red for errors, amber for warnings (drawn above everything else).
  const VerifyReport* verify = nullptr;
  /// Also overlay warning-grade findings (errors are always drawn).
  bool drawWarnings = false;
};

/// Renders the design onto one die view: macros of \p die, standard cells
/// (logic die only), and — when \p routes is non-null — F2F bump locations
/// as red dots (as in the paper's Fig. 6). With SvgOptions::verify set,
/// signoff violations are overlaid on top.
std::string renderDieSvg(const Netlist& nl, const Rect& dieRect, DieId die,
                         const RouteGrid* grid, const RoutingResult* routes,
                         const SvgOptions& opt = SvgOptions{});

/// Writes \p svg to \p path. Returns false on I/O failure.
bool writeSvgFile(const std::string& path, const std::string& svg);

}  // namespace m3d
