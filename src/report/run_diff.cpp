#include "report/run_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

namespace m3d {

namespace {

bool containsAny(std::string_view key, std::initializer_list<const char*> patterns) {
  for (const char* p : patterns) {
    if (key.find(p) != std::string_view::npos) return true;
  }
  return false;
}

bool isWallClockKey(std::string_view key) {
  return containsAny(key, {"wall_ms", "wall_s", "dur_ms", "self_ms"});
}

/// Flattens one flat JSON object of numbers under \p prefix.
void flattenNumberObject(const obs::JsonValue& obj, const std::string& prefix,
                         std::vector<std::pair<std::string, double>>& out) {
  if (!obj.isObject()) return;
  for (const auto& [k, v] : obj.obj) {
    if (v.isNumber()) out.emplace_back(prefix + k, v.number);
  }
}

}  // namespace

MetricDirection metricDirection(std::string_view key) {
  // Incremental-STA throughput telemetry is volume, not quality: how many
  // cone updates ran (and how many pins they visited) tracks the edit
  // count, while the quality signal is the fallback counter below.
  if (containsAny(key, {"incr_updates", "cone_nodes"})) {
    return MetricDirection::kInfo;
  }
  // Higher-better first: some patterns ("wns", "hits") would otherwise be
  // shadowed by broad higher-worse substrings below.
  if (containsAny(key, {"fclk", "speedup", "cache_hits", "wns", "slack",
                        "jobs_per_s", "prefix_stages", "identical"})) {
    return MetricDirection::kHigherBetter;
  }
  if (isWallClockKey(key) ||
      containsAny(key, {"rss", "overflow", "unrouted", "violation", "warning",
                        "popped", "pops", "relaxed", "fallback", "full_fallbacks",
                        "min_period_infeasible", "misses",
                        "restore_failures", "period", "skew", "emean", "power",
                        "wirelength", "wl_m", "bumps", "latency", "ripup",
                        "hpwl", "crit_path", "jobs_failed"})) {
    return MetricDirection::kHigherWorse;
  }
  // Everything else (cells_resized, buffers_inserted, depth, iterations,
  // bytes, chunk counts, ...) has no monotone quality meaning.
  return MetricDirection::kInfo;
}

double DiffOptions::thresholdFor(const std::string& key) const {
  for (const auto& [k, pct] : perMetricPct) {
    if (k == key) return pct;
  }
  if (isWallClockKey(key)) return wallThresholdPct;
  return thresholdPct;
}

std::vector<std::pair<std::string, double>> flattenMetricsJson(const obs::JsonValue& doc,
                                                               std::string* err) {
  std::vector<std::pair<std::string, double>> out;
  const obs::JsonValue* schema = doc.find("schema");
  const std::string tag = schema != nullptr && schema->isString() ? schema->str : "";

  if (tag == "m3d.run_report/1") {
    if (const obs::JsonValue* v = doc.find("wall_ms"); v != nullptr && v->isNumber()) {
      out.emplace_back("wall_ms", v->number);
    }
    if (const obs::JsonValue* v = doc.find("peak_rss_kb"); v != nullptr && v->isNumber()) {
      out.emplace_back("peak_rss_kb", v->number);
    }
    if (const obs::JsonValue* counters = doc.find("counters")) {
      flattenNumberObject(*counters, "counters.", out);
    }
    if (const obs::JsonValue* finals = doc.find("final")) {
      flattenNumberObject(*finals, "final.", out);
    }
    // Stage spans: one dur/self pair per direct child of the root span.
    if (const obs::JsonValue* span = doc.find("span"); span != nullptr && span->isObject()) {
      if (const obs::JsonValue* children = span->find("children");
          children != nullptr && children->isArray()) {
        for (const obs::JsonValue& c : children->arr) {
          const obs::JsonValue* name = c.find("name");
          if (name == nullptr || !name->isString()) continue;
          out.emplace_back("span." + name->str + ".dur_ms", c.numberOr("dur_ms", 0.0));
          out.emplace_back("span." + name->str + ".self_ms", c.numberOr("self_ms", 0.0));
        }
      }
    }
    // Series: the converged (last) value is the comparable quantity; the
    // full point lists stay in the report for plotting, not gating.
    if (const obs::JsonValue* stats = doc.find("series_stats");
        stats != nullptr && stats->isObject()) {
      for (const auto& [name, s] : stats->obj) {
        if (const obs::JsonValue* last = s.find("last"); last != nullptr && last->isNumber()) {
          out.emplace_back("series." + name + ".last", last->number);
        }
      }
    }
    return out;
  }

  if (tag == "m3d.bench/1") {
    if (const obs::JsonValue* v = doc.find("wall_s"); v != nullptr && v->isNumber()) {
      out.emplace_back("wall_s", v->number);
    }
    if (const obs::JsonValue* scalars = doc.find("scalars")) {
      flattenNumberObject(*scalars, "scalars.", out);
    }
    if (const obs::JsonValue* flows = doc.find("flows");
        flows != nullptr && flows->isArray()) {
      for (const obs::JsonValue& f : flows->arr) {
        const obs::JsonValue* label = f.find("label");
        const obs::JsonValue* metrics = f.find("metrics");
        if (label == nullptr || !label->isString() || metrics == nullptr) continue;
        flattenNumberObject(*metrics, "flow." + label->str + ".", out);
      }
    }
    return out;
  }

  if (err != nullptr) {
    *err = tag.empty() ? "document has no schema tag"
                       : "unrecognized schema '" + tag + "'";
  }
  return {};
}

DiffResult diffMetrics(const std::vector<std::pair<std::string, double>>& base,
                       const std::vector<std::pair<std::string, double>>& cur,
                       const DiffOptions& opt) {
  std::map<std::string, std::pair<bool, double>> baseMap;
  for (const auto& [k, v] : base) baseMap[k] = {true, v};
  std::map<std::string, std::pair<bool, double>> curMap;
  for (const auto& [k, v] : cur) curMap[k] = {true, v};

  std::map<std::string, DiffRow> rows;
  for (const auto& [k, v] : baseMap) {
    DiffRow& r = rows[k];
    r.key = k;
    r.inBase = true;
    r.base = v.second;
  }
  for (const auto& [k, v] : curMap) {
    DiffRow& r = rows[k];
    r.key = k;
    r.inCur = true;
    r.cur = v.second;
  }

  DiffResult result;
  for (auto& [k, r] : rows) {
    r.dir = metricDirection(k);
    r.thresholdPct = opt.thresholdFor(k);
    if (r.inBase && r.inCur) {
      if (r.base != 0.0) r.deltaPct = (r.cur - r.base) / std::abs(r.base) * 100.0;
      const double slack = std::abs(r.base) * r.thresholdPct / 100.0 + opt.eps;
      if (r.dir == MetricDirection::kHigherWorse) {
        r.regression = r.cur - r.base > slack;
        r.improvement = r.base - r.cur > slack;
      } else if (r.dir == MetricDirection::kHigherBetter) {
        r.regression = r.base - r.cur > slack;
        r.improvement = r.cur - r.base > slack;
      }
      // base == 0 and cur > slack: deltaPct is undefined but the absolute
      // comparison above already flags it in the right direction.
    }
    if (r.regression) ++result.regressions;
    result.rows.push_back(r);
  }
  return result;
}

Table renderDiffTable(const DiffResult& result, const std::string& title) {
  Table t(title);
  t.setHeader({"metric", "base", "current", "delta", "thresh", "status"});
  for (const DiffRow& r : result.rows) {
    std::string status;
    if (!r.inBase) {
      status = "added";
    } else if (!r.inCur) {
      status = "removed";
    } else if (r.regression) {
      status = "REGRESSED";
    } else if (r.improvement) {
      status = "improved";
    } else if (r.dir == MetricDirection::kInfo) {
      status = "info";
    } else {
      status = "ok";
    }
    t.addRow({r.key, r.inBase ? Table::num(r.base, 3) : "-",
              r.inCur ? Table::num(r.cur, 3) : "-",
              r.inBase && r.inCur ? Table::num(r.deltaPct, 2) + "%" : "-",
              r.dir == MetricDirection::kInfo ? "-" : Table::num(r.thresholdPct, 1) + "%",
              status});
  }
  return t;
}

namespace {

bool loadMetricsFile(const std::string& path,
                     std::vector<std::pair<std::string, double>>& out, std::string& err) {
  std::ifstream is(path);
  if (!is.is_open()) {
    err = "cannot open " + path;
    return false;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  const auto doc = obs::parseJson(buf.str(), &err);
  if (!doc.has_value()) {
    err = path + ": " + err;
    return false;
  }
  out = flattenMetricsJson(*doc, &err);
  if (out.empty()) {
    err = path + ": " + (err.empty() ? "no metrics found" : err);
    return false;
  }
  return true;
}

int usage() {
  std::cerr << "usage: m3d_report diff <base.json> <current.json>\n"
               "           [--threshold PCT] [--wall-threshold PCT]\n"
               "           [--metric KEY=PCT] [--quiet]\n"
               "  Compares two m3d.run_report/1 or m3d.bench/1 documents.\n"
               "  Exit code: 0 = no regression, 1 = regression, 2 = error.\n";
  return 2;
}

}  // namespace

int runReportToolMain(int argc, const char* const* argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd != "diff") {
    std::cerr << "m3d_report: unknown command '" << cmd << "'\n";
    return usage();
  }

  DiffOptions opt;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto numArg = [&](double& dst) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      dst = std::strtod(argv[++i], &end);
      return end != argv[i] && *end == '\0';
    };
    if (arg == "--threshold") {
      if (!numArg(opt.thresholdPct)) return usage();
    } else if (arg == "--wall-threshold") {
      if (!numArg(opt.wallThresholdPct)) return usage();
    } else if (arg == "--metric") {
      if (i + 1 >= argc) return usage();
      const std::string kv = argv[++i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) return usage();
      char* end = nullptr;
      const double pct = std::strtod(kv.c_str() + eq + 1, &end);
      if (end == kv.c_str() + eq + 1 || *end != '\0') return usage();
      opt.perMetricPct.emplace_back(kv.substr(0, eq), pct);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "m3d_report: unknown option '" << arg << "'\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return usage();

  std::vector<std::pair<std::string, double>> base;
  std::vector<std::pair<std::string, double>> cur;
  std::string err;
  if (!loadMetricsFile(paths[0], base, err) || !loadMetricsFile(paths[1], cur, err)) {
    std::cerr << "m3d_report: " << err << "\n";
    return 2;
  }

  const DiffResult result = diffMetrics(base, cur, opt);
  if (!quiet) {
    renderDiffTable(result, "Run diff: " + paths[0] + " -> " + paths[1])
        .print(std::cout);
  }
  if (result.regressions > 0) {
    std::cout << "m3d_report: " << result.regressions << " metric(s) REGRESSED\n";
    return 1;
  }
  std::cout << "m3d_report: no regressions (" << result.rows.size() << " metrics compared)\n";
  return 0;
}

}  // namespace m3d
