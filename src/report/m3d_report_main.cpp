/// \file m3d_report_main.cpp
/// The m3d_report CLI: run-to-run metric diffs with a regression gate.
/// All logic lives in run_diff.cpp so tests can drive it in-process.

#include "report/run_diff.hpp"

int main(int argc, char** argv) { return m3d::runReportToolMain(argc, argv); }
