#pragma once

/// \file run_diff.hpp
/// Run-to-run metric diff + regression gate, the engine behind the
/// `m3d_report diff` CLI.
///
/// Two result documents -- RunReport JSON (m3d.run_report/1) or bench dump
/// JSON (m3d.bench/1) -- are flattened to key/value metric maps, aligned by
/// key, and judged against relative thresholds. Every metric key is
/// classified by direction: higher-worse (wall clock, RSS, overflow, ...),
/// higher-better (fclk, cache hits, WNS, ...), or informational (counts
/// with no quality meaning, e.g. buffers inserted), and only directional
/// metrics can gate. The gate's contract: exit 0 when nothing regressed
/// beyond its threshold, 1 on regression, 2 on usage/parse errors.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "report/table.hpp"

namespace m3d {

/// How the regression gate reads a change in a metric.
enum class MetricDirection {
  kHigherWorse,   ///< increase beyond threshold = regression.
  kHigherBetter,  ///< decrease beyond threshold = regression.
  kInfo,          ///< never gates (reported for context only).
};

/// Classifies \p key by substring patterns (see run_diff.cpp for the
/// policy table). Unknown keys are kInfo: the gate only judges metrics it
/// understands.
MetricDirection metricDirection(std::string_view key);

struct DiffOptions {
  /// Relative threshold [%] for directional metrics without an override.
  double thresholdPct = 2.0;
  /// Threshold [%] for wall-clock keys (wall_ms/wall_s/dur_ms/self_ms):
  /// timing is the noisiest metric class, so it gets its own, looser knob.
  double wallThresholdPct = 5.0;
  /// Per-metric overrides (exact key match), e.g. {"final.fclk_mhz", 0.0}.
  std::vector<std::pair<std::string, double>> perMetricPct;
  /// Absolute slack added to every comparison so exact-equal runs with
  /// float round-off never flag.
  double eps = 1e-9;

  double thresholdFor(const std::string& key) const;
};

struct DiffRow {
  std::string key;
  bool inBase = false;
  bool inCur = false;
  double base = 0.0;
  double cur = 0.0;
  /// Signed relative change [(cur-base)/|base| * 100]; 0 when base == 0.
  double deltaPct = 0.0;
  MetricDirection dir = MetricDirection::kInfo;
  double thresholdPct = 0.0;
  bool regression = false;
  bool improvement = false;
};

struct DiffResult {
  std::vector<DiffRow> rows;  ///< key-sorted union of both documents.
  int regressions = 0;
};

/// Flattens a parsed result document into metric key/value pairs.
/// Understands m3d.run_report/1 (wall_ms, peak_rss_kb, counters.*, final.*,
/// span.<stage>.dur_ms/self_ms for root children, series.<name>.last) and
/// m3d.bench/1 (wall_s, scalars.*, flow.<label>.<metric>). Returns an empty
/// vector and sets \p err on an unrecognized schema.
std::vector<std::pair<std::string, double>> flattenMetricsJson(const obs::JsonValue& doc,
                                                               std::string* err = nullptr);

/// Aligns the two flat metric maps and applies the gate policy.
DiffResult diffMetrics(const std::vector<std::pair<std::string, double>>& base,
                       const std::vector<std::pair<std::string, double>>& cur,
                       const DiffOptions& opt);

/// Renders the diff as an aligned ASCII table (one row per metric).
Table renderDiffTable(const DiffResult& result, const std::string& title);

/// Entry point of the m3d_report CLI (currently the `diff` subcommand):
///   m3d_report diff <base.json> <current.json>
///       [--threshold PCT] [--wall-threshold PCT] [--metric KEY=PCT]
///       [--quiet]
/// Returns the process exit code: 0 clean, 1 regression, 2 error. Kept as
/// a library function so tests can drive the real argument parsing.
int runReportToolMain(int argc, const char* const* argv);

}  // namespace m3d
