#pragma once

/// \file table.hpp
/// ASCII table formatting for paper-style result tables.

#include <iosfwd>
#include <string>
#include <vector>

namespace m3d {

/// Column-aligned ASCII table with a title and a header row.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void setHeader(std::vector<std::string> header) { header_ = std::move(header); }
  void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Formats a value with a relative-change annotation, e.g. "470 (+20.5%)".
  static std::string withDelta(double value, double baseline, int precision = 1);
  /// Formats a double with fixed precision.
  static std::string num(double value, int precision = 1);

  std::string str() const;
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace m3d
