#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace m3d {

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::withDelta(double value, double baseline, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  if (baseline != 0.0) {
    const double pct = (value - baseline) / baseline * 100.0;
    os << " (" << (pct >= 0 ? "+" : "") << std::setprecision(1) << pct << "%)";
  }
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << (i == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[i])) << cell;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << str(); }

}  // namespace m3d
