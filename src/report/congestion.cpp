#include "report/congestion.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace m3d {

std::vector<LayerUtilization> layerUtilization(const RouteGrid& grid,
                                               const RoutingResult& routes) {
  const Beol& beol = grid.beol();
  std::vector<LayerUtilization> out(static_cast<std::size_t>(beol.numMetals()));
  const double g = grid.gcellUm();
  for (int l = 0; l < beol.numMetals(); ++l) {
    out[static_cast<std::size_t>(l)].layer = beol.metal(l).name;
    if (l < static_cast<int>(routes.wirelengthPerLayerUm.size())) {
      out[static_cast<std::size_t>(l)].usedUm = routes.wirelengthPerLayerUm[static_cast<std::size_t>(l)];
    }
    double cap = 0.0;
    for (int y = 0; y < grid.ny(); ++y) {
      for (int x = 0; x < grid.nx(); ++x) {
        cap += static_cast<double>(grid.wireCap(grid.wireEdgeId(x, y, l))) * g;
      }
    }
    out[static_cast<std::size_t>(l)].capacityUm = cap;
  }
  return out;
}

std::string congestionMap(const RouteGrid& grid, const RoutingResult& routes, int maxCols) {
  // Accumulate per-gcell wire usage and capacity over all layers.
  Grid2D<double> use(grid.nx(), grid.ny(), 0.0);
  Grid2D<double> cap(grid.nx(), grid.ny(), 0.0);
  for (int l = 0; l < grid.numLayers(); ++l) {
    for (int y = 0; y < grid.ny(); ++y) {
      for (int x = 0; x < grid.nx(); ++x) {
        cap.at(x, y) += static_cast<double>(grid.wireCap(grid.wireEdgeId(x, y, l)));
      }
    }
  }
  for (const NetRoute& r : routes.nets) {
    for (const RouteSeg& s : r.segs) {
      if (s.isVia) continue;
      use.at(grid.nodeX(s.fromNode), grid.nodeY(s.fromNode)) += 1.0;
    }
  }

  const int step = std::max(1, (grid.nx() + maxCols - 1) / maxCols);
  std::ostringstream os;
  os << "congestion map (wire utilization, 0-9, '*' >100%), " << grid.nx() << "x" << grid.ny()
     << " gcells, 1 char = " << step << "x" << step << " gcells\n";
  for (int y = grid.ny() - 1; y >= 0; y -= step) {
    for (int x = 0; x < grid.nx(); x += step) {
      double u = 0.0;
      double c = 0.0;
      for (int dy = 0; dy < step && y - dy >= 0; ++dy) {
        for (int dx = 0; dx < step && x + dx < grid.nx(); ++dx) {
          u += use.at(x + dx, y - dy);
          c += cap.at(x + dx, y - dy);
        }
      }
      const double ratio = c > 0.0 ? u / c : 0.0;
      if (ratio > 1.0) {
        os << '*';
      } else {
        os << static_cast<char>('0' + std::min(9, static_cast<int>(ratio * 10.0)));
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string checkRoutedTrees(const Netlist& nl, const RouteGrid& grid,
                             const RoutingResult& routes) {
  std::ostringstream err;
  int reported = 0;
  for (NetId n = 0; n < nl.numNets(); ++n) {
    const Net& net = nl.net(n);
    if (net.pins.size() < 2) continue;
    const NetRoute& r = routes.nets[static_cast<std::size_t>(n)];
    if (!r.routed) {
      if (reported++ < 10) err << net.name << ": unrouted; ";
      continue;
    }

    // Gather nodes and adjacency.
    std::map<int, int> idOf;
    std::vector<std::vector<int>> adj;
    auto nodeOf = [&](int gridNode) {
      auto it = idOf.find(gridNode);
      if (it != idOf.end()) return it->second;
      const int id = static_cast<int>(adj.size());
      idOf.emplace(gridNode, id);
      adj.push_back({});
      return id;
    };
    std::set<std::pair<int, int>> seen;
    bool dup = false;
    for (const RouteSeg& s : r.segs) {
      const int a = nodeOf(s.fromNode);
      const int b = nodeOf(s.toNode);
      const auto key = std::minmax(a, b);
      if (!seen.insert({key.first, key.second}).second) dup = true;
      adj[static_cast<std::size_t>(a)].push_back(b);
      adj[static_cast<std::size_t>(b)].push_back(a);
    }
    if (dup && reported++ < 10) err << net.name << ": duplicate segment; ";

    if (r.segs.empty()) {
      // All pins must share one grid node.
      const int first = grid.pinNode(nl, net.pins[0]);
      for (const NetPin& p : net.pins) {
        if (grid.pinNode(nl, p) != first) {
          if (reported++ < 10) err << net.name << ": empty route but pins in distinct gcells; ";
          break;
        }
      }
      continue;
    }

    // Tree check: connected and |E| == |V| - 1.
    if (adj.size() != r.segs.size() + 1) {
      if (reported++ < 10) err << net.name << ": cycle (|E| != |V|-1); ";
    }
    std::vector<char> vis(adj.size(), 0);
    std::vector<int> stack{0};
    vis[0] = 1;
    std::size_t count = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v : adj[static_cast<std::size_t>(u)]) {
        if (!vis[static_cast<std::size_t>(v)]) {
          vis[static_cast<std::size_t>(v)] = 1;
          ++count;
          stack.push_back(v);
        }
      }
    }
    if (count != adj.size()) {
      if (reported++ < 10) err << net.name << ": disconnected route; ";
    }
    // Every pin node covered.
    for (const NetPin& p : net.pins) {
      if (idOf.find(grid.pinNode(nl, p)) == idOf.end()) {
        if (reported++ < 10) err << net.name << ": pin off the route tree; ";
        break;
      }
    }
  }
  return err.str();
}

}  // namespace m3d
