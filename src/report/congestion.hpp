#pragma once

/// \file congestion.hpp
/// Routing congestion reporting: per-layer utilization summary and an ASCII
/// heat map of the worst-utilized gcells, plus a routed-tree validity
/// checker used by integration tests.

#include <string>

#include "netlist/netlist.hpp"
#include "route/router.hpp"

namespace m3d {

/// Per-layer demand/capacity summary.
struct LayerUtilization {
  std::string layer;
  double usedUm = 0.0;       ///< routed wirelength on the layer.
  double capacityUm = 0.0;   ///< total wire capacity (tracks x gcell length).
  int overflowedEdges = 0;
  double utilization() const { return capacityUm > 0.0 ? usedUm / capacityUm : 0.0; }
};

/// Computes per-layer utilization of a routed design.
std::vector<LayerUtilization> layerUtilization(const RouteGrid& grid,
                                               const RoutingResult& routes);

/// Renders an ASCII heat map (0-9, '*' for overflow) of wire utilization
/// summed over all layers, downsampled to at most \p maxCols columns.
std::string congestionMap(const RouteGrid& grid, const RoutingResult& routes, int maxCols = 64);

/// Validates routed geometry: every multi-pin net's segments must form a
/// connected tree (|edges| == |nodes| - 1, single component) that touches
/// every pin's grid node. Returns a diagnostic string (empty when healthy).
std::string checkRoutedTrees(const Netlist& nl, const RouteGrid& grid,
                             const RoutingResult& routes);

}  // namespace m3d
