#include "report/svg.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace m3d {

namespace {

double px(const SvgOptions& opt, Dbu v) { return dbuToUm(v) * opt.pxPerUm; }

std::string xmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '&') {
      out += "&amp;";
    } else if (c == '<') {
      out += "&lt;";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string renderDieSvg(const Netlist& nl, const Rect& dieRect, DieId die,
                         const RouteGrid* grid, const RoutingResult* routes,
                         const SvgOptions& opt) {
  std::ostringstream os;
  const double w = px(opt, dieRect.width());
  const double h = px(opt, dieRect.height());
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
     << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << w << "\" height=\"" << h
     << "\" fill=\"#f8f8f4\" stroke=\"#222\" stroke-width=\"1\"/>\n";

  auto rectOf = [&](const Instance& inst, const CellType& c) {
    // SVG y axis points down; flip.
    const double x0 = px(opt, inst.pos.x - dieRect.xlo);
    const double y0 = h - px(opt, inst.pos.y - dieRect.ylo + c.height);
    return std::pair<double, double>{x0, y0};
  };

  // Standard cells (logic die only) as small blue marks.
  if (opt.drawStdCells && die == DieId::kLogic) {
    os << "<g fill=\"#4a7bd0\" fill-opacity=\"0.55\">\n";
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      const Instance& inst = nl.instance(i);
      const CellType& c = nl.cellOf(i);
      if (c.isMacro() || c.cls == CellClass::kFiller || inst.die != DieId::kLogic) continue;
      const auto [x0, y0] = rectOf(inst, c);
      os << "<rect x=\"" << x0 << "\" y=\"" << y0 << "\" width=\"" << px(opt, c.width)
         << "\" height=\"" << px(opt, c.height) << "\"/>\n";
    }
    os << "</g>\n";
  }

  // Macros of the requested die.
  os << "<g fill=\"#d9a441\" fill-opacity=\"0.85\" stroke=\"#7a5a10\" stroke-width=\"0.8\">\n";
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    const CellType& c = nl.cellOf(i);
    if (!c.isMacro() || inst.die != die) continue;
    const auto [x0, y0] = rectOf(inst, c);
    os << "<rect x=\"" << x0 << "\" y=\"" << y0 << "\" width=\"" << px(opt, c.width)
       << "\" height=\"" << px(opt, c.height) << "\"/>\n";
    if (opt.drawMacroLabels) {
      os << "<text x=\"" << x0 + 2 << "\" y=\"" << y0 + 10
         << "\" font-size=\"8\" fill=\"#333\" stroke=\"none\">" << inst.name << "</text>\n";
    }
  }
  os << "</g>\n";

  // F2F bumps (red dots), as in the paper's Fig. 6.
  if (opt.drawF2fBumps && grid != nullptr && routes != nullptr &&
      grid->f2fCutLayer() >= 0) {
    os << "<g fill=\"#d03030\">\n";
    const int f2f = grid->f2fCutLayer();
    std::set<std::pair<int, int>> seen;
    for (const NetRoute& r : routes->nets) {
      for (const RouteSeg& s : r.segs) {
        if (!s.isVia || s.layer != f2f) continue;
        const int gx = grid->nodeX(s.fromNode);
        const int gy = grid->nodeY(s.fromNode);
        // Spread multiple bumps within a gcell deterministically.
        const int n = static_cast<int>(seen.count({gx, gy}));
        (void)n;
        seen.insert({gx, gy});
        const Point c = grid->mapping().cellCenter(gx, gy);
        const double cx = px(opt, c.x - dieRect.xlo);
        const double cy = h - px(opt, c.y - dieRect.ylo);
        os << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"1.2\"/>\n";
      }
    }
    os << "</g>\n";
  }

  // Signoff violation overlay: outlined rects, red = error, amber = warning.
  if (opt.verify != nullptr) {
    os << "<g fill=\"none\" stroke-width=\"1.2\">\n";
    for (const Violation& v : opt.verify->violations) {
      const bool error = severityOf(v.kind) == Severity::kError;
      if (!error && !opt.drawWarnings) continue;
      if (v.rect.isEmpty()) continue;
      const double x0 = px(opt, v.rect.xlo - dieRect.xlo);
      const double y0 = h - px(opt, v.rect.yhi - dieRect.ylo);
      // Keep degenerate (point/line) rects visible.
      const double rw = std::max(px(opt, v.rect.width()), 2.0);
      const double rh = std::max(px(opt, v.rect.height()), 2.0);
      os << "<rect x=\"" << x0 << "\" y=\"" << y0 << "\" width=\"" << rw << "\" height=\""
         << rh << "\" stroke=\"" << (error ? "#d01010" : "#d08a10") << "\"><title>"
         << violationKindName(v.kind) << ": " << xmlEscape(v.detail) << "</title></rect>\n";
    }
    os << "</g>\n";
  }
  os << "</svg>\n";
  return os.str();
}

bool writeSvgFile(const std::string& path, const std::string& svg) {
  std::ofstream f(path);
  if (!f) return false;
  f << svg;
  return f.good();
}

}  // namespace m3d
