#pragma once

/// \file run_report_table.hpp
/// Human-readable rendering of an obs::RunReport as report::Table: one
/// table for the span tree (phase, wall-clock, share of parent, peak RSS)
/// and one for the recorded metrics (counters + series summaries).

#include "obs/run_report.hpp"
#include "report/table.hpp"

namespace m3d {

/// Span tree flattened to rows; nesting shown by indentation. \p maxDepth
/// limits how deep per-iteration spans are expanded.
Table runReportSpanTable(const obs::RunReport& report, int maxDepth = 3);

/// Counters (deltas over the run) and series summaries (count/min/mean/max/last).
Table runReportMetricsTable(const obs::RunReport& report);

/// Flow-final metrics (DesignMetrics snapshot incl. the signoff verdict
/// fields verify_violations / verify_warnings / verify_f2f_bumps).
Table runReportFinalsTable(const obs::RunReport& report);

}  // namespace m3d
