#include "route/router.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>

#include "core/parallel.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "route/region_partition.hpp"

namespace m3d {

double RoutingResult::wirelengthOfDieUm(const Beol& beol, DieId die) const {
  double sum = 0.0;
  for (int l = 0; l < beol.numMetals() && l < static_cast<int>(wirelengthPerLayerUm.size());
       ++l) {
    if (beol.metal(l).die == die) sum += wirelengthPerLayerUm[static_cast<std::size_t>(l)];
  }
  return sum;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Edges per cost-cache rebuild chunk (pure function of the edge range;
/// thread-count independent, see parallel.hpp determinism contract).
constexpr std::int64_t kCostGrain = 8192;

/// Bucket width of the quantized open list, in gcell cost units. The
/// smallest edge cost is 1.0 (an uncongested wire hop), so 1/4 of that
/// keeps pop order close to exact f-order while bounding path cost
/// suboptimality by one quantum.
constexpr double kBucketQuantum = 0.25;
constexpr double kInvBucketQuantum = 1.0 / kBucketQuantum;
/// Safety valve: f-costs beyond kMaxBucket * kBucketQuantum all land in the
/// last bucket (ordering degrades there, correctness does not). Bounds the
/// bucket storage under pathological congestion blow-ups.
constexpr int kMaxBucket = (1 << 20) - 1;

/// Upper bound on routing layers, fixed by the 8-bit layer field of the
/// packed OpenEntry coordinates.
constexpr int kMaxRouteLayers = 256;

/// Ceiling on the per-net criticality factor. A factor of exactly 1 would
/// blend a blocked edge's infinite cost as 0 * inf = NaN; capping at 0.99
/// keeps blocked edges infinite while still letting the most critical nets
/// route almost purely on base cost.
constexpr double kMaxCritFactor = 0.99;

/// One open-list entry. Gcell coordinates ride along packed in \c xyl
/// (x:12, y:12, layer:8 bits) so neither pop nor heuristic evaluation has
/// to re-derive them from the node id (nodeX/nodeY/nodeLayer cost an
/// integer division each -- measurably hot at millions of relaxations).
struct OpenEntry {
  double f;
  double g;
  int node;
  std::uint32_t xyl;
};

inline std::uint32_t packXyl(int x, int y, int l) {
  return (static_cast<std::uint32_t>(x) << 20) | (static_cast<std::uint32_t>(y) << 8) |
         static_cast<std::uint32_t>(l);
}
inline int xylX(std::uint32_t p) { return static_cast<int>(p >> 20); }
inline int xylY(std::uint32_t p) { return static_cast<int>((p >> 8) & 0xfffu); }
inline int xylL(std::uint32_t p) { return static_cast<int>(p & 0xffu); }

/// Monotone bucket queue: open-list entries keyed on floor(f / quantum).
/// Pops ascend bucket index (A* f-costs are non-decreasing under the
/// consistent heuristic, so a popped entry never belongs before the
/// cursor); within a bucket, pending entries are sorted by exact
/// (f, node, g) when the cursor reaches them, so the pop order matches the
/// binary heap's (f, node-id) order except for entries appended to the
/// already-drained part of the current bucket -- those pop at most one
/// quantum late. Storage persists across searches (reset() clears only
/// touched buckets).
/// Per-node search state, packed into one 16-byte record so a relaxation
/// touches a single cache line instead of three parallel arrays.
struct NodeState {
  double dist;
  std::int32_t parent;
  std::int32_t visit;
};

struct BucketQueue {
  std::vector<std::vector<OpenEntry>> buckets;
  std::vector<int> head;      ///< per bucket: next entry to pop.
  std::vector<int> sortedTo;  ///< per bucket: [head, sortedTo) is sorted.
  std::vector<int> touched;   ///< buckets used by the current search.
  int cur = 0;

  void reset() {
    for (const int b : touched) {
      buckets[static_cast<std::size_t>(b)].clear();
      head[static_cast<std::size_t>(b)] = 0;
      sortedTo[static_cast<std::size_t>(b)] = 0;
    }
    touched.clear();
    cur = 0;
  }

  void push(const OpenEntry& e) {
    int idx = e.f >= static_cast<double>(kMaxBucket) * kBucketQuantum
                  ? kMaxBucket
                  : static_cast<int>(e.f * kInvBucketQuantum);
    // Floating rounding can land an entry a hair before the cursor even
    // though true f-costs are monotone; clamp to keep the pop order valid.
    idx = std::max(idx, cur);
    if (idx >= static_cast<int>(buckets.size())) {
      buckets.resize(static_cast<std::size_t>(idx) + 1);
      head.resize(buckets.size(), 0);
      sortedTo.resize(buckets.size(), 0);
    }
    auto& b = buckets[static_cast<std::size_t>(idx)];
    if (b.empty()) touched.push_back(idx);
    b.push_back(e);
  }

  bool pop(OpenEntry& out, const NodeState* state, int epoch) {
    while (cur < static_cast<int>(buckets.size())) {
      auto& b = buckets[static_cast<std::size_t>(cur)];
      int& h = head[static_cast<std::size_t>(cur)];
      if (h < static_cast<int>(b.size())) {
        int& s = sortedTo[static_cast<std::size_t>(cur)];
        if (h == s) {
          // Entries appended since the last sort (including while this
          // bucket drains) get ordered before being popped. Entries already
          // superseded by a better relaxation are dropped first: a 16-byte
          // state load is far cheaper than sorting them, and roughly half
          // the appended entries are stale by drain time. Surviving entries
          // for the same node are bit-identical (their g equals the node's
          // current dist), so (f, node) is a total order over them.
          OpenEntry* keep = b.data() + h;
          for (OpenEntry* p = keep; p != b.data() + b.size(); ++p) {
            const NodeState& st = state[p->node];
            if (st.visit == epoch && p->g == st.dist) *keep++ = *p;
          }
          b.resize(static_cast<std::size_t>(keep - b.data()));
          std::sort(b.begin() + h, b.end(), [](const OpenEntry& a, const OpenEntry& c) {
            if (a.f != c.f) return a.f < c.f;
            return a.node < c.node;
          });
          s = static_cast<int>(b.size());
          if (h == s) continue;  // every appended entry was stale
        }
        out = b[static_cast<std::size_t>(h)];
        ++h;
        return true;
      }
      ++cur;
    }
    return false;
  }
};

/// Per-slot usage overlay for region-parallel negotiation. While a region's
/// nets route sequentially on one pool slot, their uncommitted usage
/// accumulates here so later nets of the same region negotiate against it;
/// the shared arrays stay frozen until the ordered cross-region commit.
/// Dense u16 arrays mirror the grid's edge spaces (O(1) lookup in the
/// search hot path); touched-lists make clearing O(edges actually used).
struct RegionDelta {
  std::vector<std::uint16_t> wire;
  std::vector<std::uint16_t> via;
  std::vector<int> touchedWire;
  std::vector<int> touchedVia;

  void ensure(std::size_t numWire, std::size_t numVia) {
    if (wire.size() != numWire) wire.assign(numWire, 0);
    if (via.size() != numVia) via.assign(numVia, 0);
  }

  void clear() {
    for (const int e : touchedWire) wire[static_cast<std::size_t>(e)] = 0;
    for (const int v : touchedVia) via[static_cast<std::size_t>(v)] = 0;
    touchedWire.clear();
    touchedVia.clear();
  }

  void addWire(int e) {
    if (wire[static_cast<std::size_t>(e)]++ == 0) touchedWire.push_back(e);
  }
  void addVia(int v) {
    if (via[static_cast<std::size_t>(v)]++ == 0) touchedVia.push_back(v);
  }
};

/// Inclusive gcell bounds of one windowed search.
struct Window {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
};

/// Per-thread A* scratch. One instance per pool slot; reused across nets so
/// the O(numNodes) arrays are touched once and invalidated by epoch.
struct SearchScratch {
  std::vector<NodeState> node;
  std::vector<int> tree;
  std::vector<int> path;
  std::vector<int> treeNodes;
  BucketQueue open;
  int epoch = 0;
  int treeEpoch = 0;
  // Kernel statistics, summed over slots after the run (integer totals
  // commute, so the sum is thread-count independent).
  std::int64_t popped = 0;
  std::int64_t relaxed = 0;
  std::int64_t fallbacks = 0;

  void ensure(int numNodes) {
    if (static_cast<int>(node.size()) == numNodes) return;
    const std::size_t n = static_cast<std::size_t>(numNodes);
    node.assign(n, NodeState{kInf, -1, 0});
    tree.assign(n, 0);
    epoch = 0;
    treeEpoch = 0;
  }
};

struct HeapGreater {
  bool operator()(const OpenEntry& a, const OpenEntry& b) const {
    if (a.f != b.f) return a.f > b.f;
    return a.node > b.node;
  }
};

/// Open list used by one search: the monotone bucket queue or, for the
/// ablation/fallback configuration, the classic binary heap.
class OpenList {
 public:
  OpenList(bool useBuckets, BucketQueue& bq) : buckets_(useBuckets), bq_(&bq) {
    if (buckets_) bq_->reset();
  }

  void push(const OpenEntry& e) {
    if (buckets_) {
      bq_->push(e);
    } else {
      heap_.push(e);
    }
  }

  bool pop(OpenEntry& out, const NodeState* state, int epoch) {
    if (buckets_) return bq_->pop(out, state, epoch);
    if (heap_.empty()) return false;
    out = heap_.top();
    heap_.pop();
    return true;
  }

 private:
  bool buckets_;
  BucketQueue* bq_;
  std::priority_queue<OpenEntry, std::vector<OpenEntry>, HeapGreater> heap_;
};

/// Negotiated-congestion router with deterministic batch parallelism.
///
/// Each rip-up iteration routes its net set in fixed-size batches
/// (RouterOptions::batchSize). Within a batch every net searches against a
/// *read-only* view of the congestion state (usage and history arrays are
/// not touched while the batch is in flight), so the batch can run on any
/// number of threads; usage updates are committed after the batch in the
/// batch's fixed net order. Congestion therefore negotiates between
/// batches and between iterations, and the result is bit-identical at any
/// thread count -- the decomposition into batches is a pure function of the
/// options, never of the schedule.
///
/// Search kernel (see DESIGN.md "Router search kernel"):
///  - batch-frozen cost caches: flat per-edge cost arrays rebuilt in
///    parallel at iteration start and patched per committed edge after each
///    batch, exploiting the same read-only-within-a-batch invariant the
///    parallel search already relies on;
///  - windowed A* with a deterministic halo-doubling fallback ladder ending
///    at the full grid;
///  - a monotone bucket open list on quantized f-costs.
class Router {
 public:
  Router(const Netlist& nl, RouteGrid& grid, const RouterOptions& opt)
      : nl_(nl), grid_(grid), opt_(opt) {
    wireUse_.assign(static_cast<std::size_t>(grid.numWireEdges()), 0);
    viaUse_.assign(static_cast<std::size_t>(grid.numViaEdges()), 0);
    wireHist_.assign(wireUse_.size(), 0.0f);
    viaHist_.assign(viaUse_.size(), 0.0f);
    scratch_.resize(static_cast<std::size_t>(par::maxSlots()));
    presWeight_ = opt.presentWeightInit;
    threads_ = par::resolveThreads(opt.numThreads);
    batchSize_ = std::max(1, opt.batchSize);
    // Admissible via heuristic: a layer step can cross any cut, so the
    // estimate must use the cheapest per-cut base cost (an F2F cut may be
    // configured cheaper than a regular one).
    minViaBase_ = opt_.viaCost;
    viaBase_.resize(static_cast<std::size_t>(std::max(0, grid_.numLayers() - 1)));
    for (int cut = 0; cut + 1 < grid_.numLayers(); ++cut) {
      viaBase_[static_cast<std::size_t>(cut)] =
          grid_.viaIsF2f(cut) ? opt_.f2fViaCost : opt_.viaCost;
      if (grid_.viaIsF2f(cut)) minViaBase_ = std::min(opt_.viaCost, opt_.f2fViaCost);
    }
    // Flat per-layer direction table so the pop loop avoids chasing the
    // BEOL metal-stack pointers on every expansion.
    assert(grid_.numLayers() <= kMaxRouteLayers);
    layerHoriz_.resize(static_cast<std::size_t>(grid_.numLayers()));
    for (int l = 0; l < grid_.numLayers(); ++l) {
      layerHoriz_[static_cast<std::size_t>(l)] = grid_.layerHorizontal(l) ? 1 : 0;
    }
    if (opt_.regionSizeGcells > 0) {
      part_ = RegionPartition::make(grid_.nx(), grid_.ny(), opt_.regionSizeGcells);
      deltas_.resize(static_cast<std::size_t>(par::maxSlots()));
    }
    // Criticality factors start from the pre-route STA and stay fixed
    // unless opt_.criticalityRefresh re-derives them between rip-up rounds;
    // precomputing the flat table keeps the per-net cost blend and the
    // ordering comparator branch-free on the hot paths.
    if (opt_.timingDriven && !opt_.netCriticality.empty()) {
      setCriticality(opt_.netCriticality);
    }
    everRipped_.assign(static_cast<std::size_t>(nl_.numNets()), 0);
  }

  RoutingResult run() {
    RoutingResult result;
    result.nets.assign(static_cast<std::size_t>(nl_.numNets()), NetRoute{});
    buildOrder();
    negotiate(order_, result);
    finalize(result);
    return result;
  }

  /// Incremental reroute seeded from \p prev (routed on \p prevGrid, which
  /// must share this grid's dimensions). Dirtiness is decided per *edge*,
  /// and an edge only forces a rip when the capacity change actually
  /// *violates* it: a net is ripped iff it was unrouted before, a pin moved
  /// off its previous route, or any previous segment occupies an edge
  /// whose capacity DECREASED below the previous routes' combined usage
  /// there. A capacity increase (e.g. a denser bump pitch) therefore
  /// reuses every route verbatim -- the old solution is still legal and can
  /// only be less congested -- while a decrease rips exactly the nets
  /// through the now-overloaded edges. Ripping on *any* changed edge
  /// instead would rip every bond-crossing net on a uniform bump-pitch ECO
  /// (the F2F cut capacity changes in every gcell), and ripping at gcell
  /// granularity would rip the whole design. The dirtied-*gcell* set
  /// (columns containing at least one changed edge, violating or not) is
  /// the reported locality metric. Pre-existing overflow on UNchanged edges
  /// is deliberately left alone: ECO reuses every other route verbatim, it
  /// does not relitigate the baseline negotiation.
  RoutingResult runEco(const RouteGrid& prevGrid, const RoutingResult& prev) {
    if (prevGrid.nx() != grid_.nx() || prevGrid.ny() != grid_.ny() ||
        prevGrid.numLayers() != grid_.numLayers() ||
        static_cast<NetId>(prev.nets.size()) != nl_.numNets()) {
      M3D_LOG(warn) << "eco route: previous result incompatible with current grid ("
                    << prevGrid.nx() << "x" << prevGrid.ny() << "x" << prevGrid.numLayers()
                    << " vs " << grid_.nx() << "x" << grid_.ny() << "x" << grid_.numLayers()
                    << ", " << prev.nets.size() << " vs " << nl_.numNets()
                    << " nets); falling back to full reroute";
      return run();
    }
    eco_ = true;
    RoutingResult result;
    result.nets.assign(static_cast<std::size_t>(nl_.numNets()), NetRoute{});
    buildOrder();

    // Edge dirtiness = capacity diff between the two grids.
    const std::size_t numWire = wireUse_.size();
    const std::size_t numVia = viaUse_.size();
    std::vector<std::uint8_t> wireDirty(numWire, 0);
    std::vector<std::uint8_t> viaDirty(numVia, 0);
    for (std::size_t e = 0; e < numWire; ++e) {
      wireDirty[e] = grid_.wireCap(static_cast<int>(e)) !=
                     prevGrid.wireCap(static_cast<int>(e));
    }
    for (std::size_t v = 0; v < numVia; ++v) {
      viaDirty[v] =
          grid_.viaCap(static_cast<int>(v)) != prevGrid.viaCap(static_cast<int>(v));
    }
    // Dirtied-gcell census (per (x, y) column, any layer): the locality
    // metric DESIGN.md 5g documents and the benches report.
    const int perLayer = grid_.nx() * grid_.ny();
    std::vector<std::uint8_t> gcellDirty(static_cast<std::size_t>(perLayer), 0);
    for (std::size_t e = 0; e < numWire; ++e) {
      if (wireDirty[e]) gcellDirty[e % static_cast<std::size_t>(perLayer)] = 1;
    }
    for (std::size_t v = 0; v < numVia; ++v) {
      if (viaDirty[v]) gcellDirty[v % static_cast<std::size_t>(perLayer)] = 1;
    }
    for (const std::uint8_t d : gcellDirty) ecoDirtyGcells_ += d;

    // Census of the previous routes' edge usage, then narrow the changed
    // edges down to the *violating* ones (usage > new capacity). Counting
    // every previously routed net -- even ones later ripped for pin moves --
    // keeps the census a pure function of (prev, grids); the slight
    // conservatism only ever rips more, never reuses a stale route.
    std::vector<std::uint32_t> wireCensus(numWire, 0);
    std::vector<std::uint32_t> viaCensus(numVia, 0);
    for (const NetRoute& p : prev.nets) {
      if (!p.routed) continue;
      for (const RouteSeg& s : p.segs) {
        if (s.isVia) {
          ++viaCensus[static_cast<std::size_t>(viaEdgeOf(s))];
        } else {
          ++wireCensus[static_cast<std::size_t>(wireEdgeOf(s.fromNode, s.toNode))];
        }
      }
    }
    // An edge is violated only when the change went DOWN through the
    // previous usage: the old routes no longer fit where they did before.
    // A still-overloaded edge whose capacity *rose* (e.g. an irreducible
    // macro pin funnel relieved by denser bumps) keeps its nets -- the
    // previous solution is still the least-overflow one there, and ripping
    // it would renegotiate the whole funnel for nothing.
    for (std::size_t e = 0; e < numWire; ++e) {
      const int newC = grid_.wireCap(static_cast<int>(e));
      wireDirty[e] = wireDirty[e] && newC < prevGrid.wireCap(static_cast<int>(e)) &&
                     wireCensus[e] > static_cast<std::uint32_t>(newC);
    }
    for (std::size_t v = 0; v < numVia; ++v) {
      const int newC = grid_.viaCap(static_cast<int>(v));
      viaDirty[v] = viaDirty[v] && newC < prevGrid.viaCap(static_cast<int>(v)) &&
                    viaCensus[v] > static_cast<std::uint32_t>(newC);
    }

    // Seed clean nets verbatim; collect the dirty ones (order_ is already
    // sorted, so the dirty list inherits the route order).
    std::vector<NetId> dirty;
    std::vector<int> prevNodes;
    for (NetId n : order_) {
      const NetRoute& p = prev.nets[static_cast<std::size_t>(n)];
      bool rip = !p.routed;
      if (!rip) {
        // Pins must still land on the previous route (a placement ECO moves
        // pin gcells; the stale route would silently open the net).
        prevNodes.clear();
        for (const RouteSeg& s : p.segs) {
          prevNodes.push_back(s.fromNode);
          prevNodes.push_back(s.toNode);
        }
        std::sort(prevNodes.begin(), prevNodes.end());
        const Net& net = nl_.net(n);
        for (const NetPin& pin : net.pins) {
          const int node = grid_.pinNode(nl_, pin);
          if (p.segs.empty()
                  ? node != grid_.pinNode(nl_, net.pins[static_cast<std::size_t>(
                                                   net.driverIdx)])
                  : !std::binary_search(prevNodes.begin(), prevNodes.end(), node)) {
            rip = true;
            break;
          }
        }
      }
      if (!rip) {
        for (const RouteSeg& s : p.segs) {
          if (s.isVia ? viaDirty[static_cast<std::size_t>(viaEdgeOf(s))]
                      : wireDirty[static_cast<std::size_t>(wireEdgeOf(s.fromNode, s.toNode))]) {
            rip = true;
            break;
          }
        }
      }
      if (rip) {
        everRipped_[static_cast<std::size_t>(n)] = 1;
        dirty.push_back(n);
      } else {
        result.nets[static_cast<std::size_t>(n)] = p;
        for (const RouteSeg& s : p.segs) addUsage(s, +1);
      }
    }
    M3D_LOG(debug) << "eco route: " << dirty.size() << " dirty / " << order_.size()
                   << " nets, " << ecoDirtyGcells_ << " dirty gcells";
    negotiate(dirty, result);
    finalize(result);
    return result;
  }

 private:
  /// Builds the full route order: every multi-pin net, most-critical first
  /// when timing-driven, then shortest first (stable by id).
  void buildOrder() {
    order_.clear();
    for (NetId n = 0; n < nl_.numNets(); ++n) {
      if (nl_.net(n).pins.size() >= 2) order_.push_back(n);
    }
    sortNets(order_);
  }

  /// Deterministic net ordering: criticality descending (timing-driven
  /// runs), then HPWL ascending, then id. With no criticality this is
  /// exactly the historical shortest-first order.
  void sortNets(std::vector<NetId>& nets) const {
    std::sort(nets.begin(), nets.end(), [this](NetId a, NetId b) {
      if (!critFactor_.empty()) {
        const double ca = critFactor_[static_cast<std::size_t>(a)];
        const double cb = critFactor_[static_cast<std::size_t>(b)];
        if (ca != cb) return ca > cb;
      }
      const Dbu ha = nl_.netHpwl(a);
      const Dbu hb = nl_.netHpwl(b);
      if (ha != hb) return ha < hb;
      return a < b;
    });
  }

  /// (Re)derives the flat criticality-factor table from per-net
  /// criticalities: factor = min(clamp(c, 0, 1)^exponent, kMaxCritFactor).
  void setCriticality(const std::vector<double>& crit) {
    critFactor_.assign(static_cast<std::size_t>(nl_.numNets()), 0.0);
    const double exp = std::max(opt_.criticalityExponent, 1e-6);
    const std::size_t n = std::min(critFactor_.size(), crit.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double c = std::clamp(crit[i], 0.0, 1.0);
      critFactor_[i] = std::min(std::pow(c, exp), kMaxCritFactor);
    }
  }

  /// The negotiation loop: routes \p toRoute, then repeatedly rips up and
  /// reroutes overflowed nets. The rip-up scan covers *all* nets in route
  /// order (not just the ones routed this round), so ECO-seeded routes can
  /// rejoin negotiation when a capacity change left them overflowing.
  void negotiate(std::vector<NetId> toRoute, RoutingResult& result) {
    obs::gauge("parallel.threads").set(static_cast<double>(threads_));
    obs::gauge("route.batch_size").set(static_cast<double>(batchSize_));
    std::int64_t prevPopped = 0;
    std::int64_t prevFallbacks = 0;
    for (int iter = 0; iter < opt_.maxIterations; ++iter) {
      obs::ScopedPhase it("route.iter");
      result.iterationsUsed = iter + 1;
      // Usage and history are frozen except at batch commits below, and
      // presWeight_ only changes between iterations: rebuild the flat cost
      // caches here, patch per committed edge after each commit.
      if (opt_.costCache) rebuildCostCaches();
      const int batches = routePass(toRoute, result);
      // Collect overflow, build history, decide rip-up set. In ECO mode
      // the reused routes are FROZEN: only nets already in the dirty
      // cohort (everRipped_) may rip up again. Without this, any reused
      // net sitting on pre-existing overflow -- an irreducible macro pin
      // funnel, say -- would be ripped in the first iteration and a
      // two-edge ECO would cascade into a near-full renegotiation of a
      // congested design. The dirty nets still see the frozen routes'
      // usage through the congestion costs and negotiate around them.
      const OverflowTotals overflow = updateHistory();
      std::vector<NetId> ripup;
      for (NetId n : order_) {
        if (eco_ && !everRipped_[static_cast<std::size_t>(n)]) continue;
        const NetRoute& r = result.nets[static_cast<std::size_t>(n)];
        bool over = false;
        for (const RouteSeg& s : r.segs) {
          if (edgeOverflowed(s)) {
            over = true;
            break;
          }
        }
        if (over) ripup.push_back(n);
      }
      // Per-round convergence series (search-kernel deltas: slot totals are
      // integer sums, so these are thread-count independent like finalize's).
      std::int64_t popped = 0;
      std::int64_t fallbacks = 0;
      for (const auto& p : scratch_) {
        if (!p) continue;
        popped += p->popped;
        fallbacks += p->fallbacks;
      }
      it.attr("nets_routed", static_cast<double>(toRoute.size()));
      it.attr("batches", static_cast<double>(batches));
      it.attr("threads", static_cast<double>(threads_));
      it.attr("ripup", static_cast<double>(ripup.size()));
      it.attr("overflow_edges", static_cast<double>(overflow.overflowedEdges));
      obs::series("route.ripup_nets").record(static_cast<double>(ripup.size()));
      obs::series("route.iter_overflow").record(static_cast<double>(overflow.totalOverflow));
      obs::series("route.iter_pops").record(static_cast<double>(popped - prevPopped));
      obs::series("route.iter_fallbacks")
          .record(static_cast<double>(fallbacks - prevFallbacks));
      prevPopped = popped;
      prevFallbacks = fallbacks;
      M3D_LOG(debug) << "route iter " << (iter + 1) << ": routed=" << toRoute.size()
                     << " batches=" << batches << " threads=" << threads_
                     << " ripup=" << ripup.size();
      if (ripup.empty()) break;
      if (iter + 1 >= opt_.maxIterations) break;
      // Refresh criticalities while the result is still fully routed (the
      // rip-up set is unrouted just below), so the callback can extract
      // real parasitics from the complete geometry. The new factors feed
      // the sortNets call on this round's rip-up cohort.
      if (opt_.timingDriven && opt_.criticalityRefresh && opt_.critRefreshEvery > 0 &&
          (iter + 1) % opt_.critRefreshEvery == 0) {
        obs::ScopedPhase crit("route.crit_refresh");
        setCriticality(opt_.criticalityRefresh(result));
        obs::counter("route.crit_refreshes").add(1);
        crit.attr("iter", static_cast<double>(iter + 1));
      }
      for (NetId n : ripup) {
        everRipped_[static_cast<std::size_t>(n)] = 1;
        unroute(result.nets[static_cast<std::size_t>(n)]);
      }
      toRoute = std::move(ripup);
      // Re-sort each rip-up round: the scan over order_ already yields
      // route order, but the contract is explicit, not incidental.
      sortNets(toRoute);
      presWeight_ *= opt_.presentWeightGrowth;
    }
  }
  /// One routing pass over \p toRoute: the region-parallel path when
  /// partitioning is enabled (region-local nets first, then the
  /// boundary-crossing remainder through the classic batches), plain
  /// batches otherwise. Returns the number of parallel work units for the
  /// iteration telemetry.
  int routePass(const std::vector<NetId>& toRoute, RoutingResult& result) {
    if (opt_.regionSizeGcells <= 0) return routeBatches(toRoute, result);

    // Bucket by region: a pure function of the pin gcells and the
    // partition. Bucket order preserves the (sorted) toRoute order.
    std::vector<std::vector<NetId>> byRegion(static_cast<std::size_t>(part_.numRegions()));
    std::vector<NetId> cross;
    for (const NetId n : toRoute) {
      const int r = regionOfNet(n);
      if (r < 0) {
        cross.push_back(n);
      } else {
        byRegion[static_cast<std::size_t>(r)].push_back(n);
      }
    }
    std::vector<int> active;
    for (int r = 0; r < part_.numRegions(); ++r) {
      if (!byRegion[static_cast<std::size_t>(r)].empty()) active.push_back(r);
    }
    // Region pass: each active region routes its nets *sequentially*
    // against the frozen shared state plus its own uncommitted overlay
    // (intra-region negotiation); regions are independent, so they run
    // concurrently. The overlay makes the result a pure function of the
    // bucket contents -- never of which slot or thread ran the region.
    par::parallelFor(
        0, static_cast<std::int64_t>(active.size()), 1,
        [&](std::int64_t k) {
          const int r = active[static_cast<std::size_t>(k)];
          SearchScratch& s = scratchForSlot();
          RegionDelta& d = deltaForSlot();
          d.clear();
          for (const NetId n : byRegion[static_cast<std::size_t>(r)]) {
            NetRoute& out = result.nets[static_cast<std::size_t>(n)];
            routeNet(n, out, s, &d);
            for (const RouteSeg& seg : out.segs) {
              if (seg.isVia) {
                d.addVia(viaEdgeOf(seg));
              } else {
                d.addWire(wireEdgeOf(seg.fromNode, seg.toNode));
              }
            }
          }
        },
        threads_);
    // Ordered commit: ascending region id, nets in bucket order -- fixed
    // before any search ran.
    std::int64_t local = 0;
    for (const int r : active) {
      for (const NetId n : byRegion[static_cast<std::size_t>(r)]) {
        const NetRoute& nr = result.nets[static_cast<std::size_t>(n)];
        for (const RouteSeg& s : nr.segs) addUsage(s, +1);
        ++local;
      }
    }
    if (opt_.costCache) {
      for (const int r : active) {
        for (const NetId n : byRegion[static_cast<std::size_t>(r)]) {
          const NetRoute& nr = result.nets[static_cast<std::size_t>(n)];
          for (const RouteSeg& s : nr.segs) refreshCostCache(s);
        }
      }
    }
    regionLocalNets_ += local;
    regionCrossNets_ += static_cast<std::int64_t>(cross.size());
    obs::series("route.region_iter_nets").record(static_cast<double>(local));
    // Cross-region nets negotiate through the classic batch path against
    // the state the regions just committed.
    return static_cast<int>(active.size()) + routeBatches(cross, result);
  }

  /// Region owning a net, or -1 when its pin bounding box crosses regions.
  /// A pure function of the pin gcells and the partition (the *routed*
  /// path may still stray outside the region via the window fallback
  /// ladder; the overlay covers the whole grid, so accounting stays exact
  /// and any inter-region conflict is negotiated away next iteration, the
  /// same way batch-parallel conflicts always have been).
  int regionOfNet(NetId netId) const {
    const Net& net = nl_.net(netId);
    int x0 = grid_.nx();
    int y0 = grid_.ny();
    int x1 = -1;
    int y1 = -1;
    for (const NetPin& pin : net.pins) {
      const int node = grid_.pinNode(nl_, pin);
      const int x = grid_.nodeX(node);
      const int y = grid_.nodeY(node);
      x0 = std::min(x0, x);
      y0 = std::min(y0, y);
      x1 = std::max(x1, x);
      y1 = std::max(y1, y);
    }
    return part_.regionOfBox(x0, y0, x1, y1);
  }

  RegionDelta& deltaForSlot() {
    auto& p = deltas_[static_cast<std::size_t>(par::currentSlot())];
    if (!p) p = std::make_unique<RegionDelta>();
    p->ensure(wireUse_.size(), viaUse_.size());
    return *p;
  }

  /// Routes \p toRoute in fixed-size batches: parallel read-only search,
  /// then an ordered sequential commit. Returns the batch count.
  int routeBatches(const std::vector<NetId>& toRoute, RoutingResult& result) {
    int batches = 0;
    const std::size_t bs = static_cast<std::size_t>(batchSize_);
    for (std::size_t b0 = 0; b0 < toRoute.size(); b0 += bs) {
      const std::size_t b1 = std::min(toRoute.size(), b0 + bs);
      // Search phase: congestion state is read-only, nets are independent.
      par::parallelFor(
          static_cast<std::int64_t>(b0), static_cast<std::int64_t>(b1), 1,
          [&](std::int64_t k) {
            const NetId n = toRoute[static_cast<std::size_t>(k)];
            routeNet(n, result.nets[static_cast<std::size_t>(n)], scratchForSlot(), nullptr);
          },
          threads_);
      // Commit phase: fixed (route-order, i.e. HPWL-then-NetId) order.
      // Usage increments commute, but a fixed order keeps this auditable.
      for (std::size_t k = b0; k < b1; ++k) {
        const NetRoute& r = result.nets[static_cast<std::size_t>(toRoute[k])];
        for (const RouteSeg& s : r.segs) addUsage(s, +1);
      }
      // Patch only the cache entries whose usage just changed; everything
      // else is still frozen until the next commit.
      if (opt_.costCache) {
        for (std::size_t k = b0; k < b1; ++k) {
          const NetRoute& r = result.nets[static_cast<std::size_t>(toRoute[k])];
          for (const RouteSeg& s : r.segs) refreshCostCache(s);
        }
      }
      ++batches;
    }
    return batches;
  }

  SearchScratch& scratchForSlot() {
    auto& p = scratch_[static_cast<std::size_t>(par::currentSlot())];
    if (!p) p = std::make_unique<SearchScratch>();
    p->ensure(grid_.numNodes());
    return *p;
  }

  int wireEdgeOf(int a, int b) const {
    // a and b share a layer; edge is keyed by the lower-coordinate node.
    const int from = std::min(a, b);
    return from;  // wire edge id == node id of the low end by construction
  }

  /// Via edge id of a via segment (keyed by the lower-layer node).
  int viaEdgeOf(const RouteSeg& s) const {
    const int low = std::min(grid_.nodeLayer(s.fromNode), grid_.nodeLayer(s.toNode));
    return grid_.viaEdgeId(grid_.nodeX(s.fromNode), grid_.nodeY(s.fromNode), low);
  }

  double wireCost(int e) const {
    const int cap = grid_.wireCap(e);
    if (cap == 0) return kInf;
    const int use = wireUse_[static_cast<std::size_t>(e)];
    const double pres = use >= cap ? 1.0 + presWeight_ * static_cast<double>(use + 1 - cap) : 1.0;
    return (1.0 + static_cast<double>(wireHist_[static_cast<std::size_t>(e)])) * pres;
  }

  double viaCost(int v, int cut) const {
    const int cap = grid_.viaCap(v);
    if (cap == 0) return kInf;
    const int use = viaUse_[static_cast<std::size_t>(v)];
    const double pres = use >= cap ? 1.0 + presWeight_ * static_cast<double>(use + 1 - cap) : 1.0;
    const double base = grid_.viaIsF2f(cut) ? opt_.f2fViaCost : opt_.viaCost;
    return base * (1.0 + static_cast<double>(viaHist_[static_cast<std::size_t>(v)])) * pres;
  }

  /// Wire cost with \p extra uncommitted uses from the region overlay
  /// stacked on the frozen shared usage. Mirrors wireCost exactly at
  /// extra == 0 (never called then: delta lookups guard on a nonzero
  /// overlay entry, preserving bit-identity with the cached path).
  double wireCostExtra(int e, int extra) const {
    const int cap = grid_.wireCap(e);
    if (cap == 0) return kInf;
    const int use = static_cast<int>(wireUse_[static_cast<std::size_t>(e)]) + extra;
    const double pres = use >= cap ? 1.0 + presWeight_ * static_cast<double>(use + 1 - cap) : 1.0;
    return (1.0 + static_cast<double>(wireHist_[static_cast<std::size_t>(e)])) * pres;
  }

  double viaCostExtra(int v, int cut, int extra) const {
    const int cap = grid_.viaCap(v);
    if (cap == 0) return kInf;
    const int use = static_cast<int>(viaUse_[static_cast<std::size_t>(v)]) + extra;
    const double pres = use >= cap ? 1.0 + presWeight_ * static_cast<double>(use + 1 - cap) : 1.0;
    return viaBase_[static_cast<std::size_t>(cut)] *
           (1.0 + static_cast<double>(viaHist_[static_cast<std::size_t>(v)])) * pres;
  }

  /// Rebuilds the flat per-edge cost arrays from the current usage/history/
  /// presWeight state. Each slot is an independent pure function of that
  /// state, so the parallel fill is trivially deterministic.
  void rebuildCostCaches() {
    wireCostCache_.resize(wireUse_.size());
    viaCostCache_.resize(viaUse_.size());
    const int perLayer = grid_.nx() * grid_.ny();
    par::parallelFor(
        0, static_cast<std::int64_t>(wireCostCache_.size()), kCostGrain,
        [&](std::int64_t e) {
          wireCostCache_[static_cast<std::size_t>(e)] = wireCost(static_cast<int>(e));
        },
        threads_);
    par::parallelFor(
        0, static_cast<std::int64_t>(viaCostCache_.size()), kCostGrain,
        [&](std::int64_t v) {
          viaCostCache_[static_cast<std::size_t>(v)] =
              viaCost(static_cast<int>(v), static_cast<int>(v) / perLayer);
        },
        threads_);
  }

  /// Re-derives the cached cost of the one edge \p s occupies (after its
  /// usage changed at a batch commit).
  void refreshCostCache(const RouteSeg& s) {
    if (s.isVia) {
      const int low = std::min(grid_.nodeLayer(s.fromNode), grid_.nodeLayer(s.toNode));
      const int v = grid_.viaEdgeId(grid_.nodeX(s.fromNode), grid_.nodeY(s.fromNode), low);
      viaCostCache_[static_cast<std::size_t>(v)] = viaCost(v, low);
    } else {
      const int e = wireEdgeOf(s.fromNode, s.toNode);
      wireCostCache_[static_cast<std::size_t>(e)] = wireCost(e);
    }
  }

  double cachedWireCost(int e) const {
    return opt_.costCache ? wireCostCache_[static_cast<std::size_t>(e)] : wireCost(e);
  }

  double cachedViaCost(int v, int cut) const {
    return opt_.costCache ? viaCostCache_[static_cast<std::size_t>(v)] : viaCost(v, cut);
  }

  bool edgeOverflowed(const RouteSeg& s) const {
    if (s.isVia) {
      const int v = grid_.viaEdgeId(grid_.nodeX(s.fromNode), grid_.nodeY(s.fromNode),
                                    std::min(grid_.nodeLayer(s.fromNode), grid_.nodeLayer(s.toNode)));
      return viaUse_[static_cast<std::size_t>(v)] > grid_.viaCap(v);
    }
    const int e = wireEdgeOf(s.fromNode, s.toNode);
    return wireUse_[static_cast<std::size_t>(e)] > grid_.wireCap(e);
  }

  void addUsage(const RouteSeg& s, int delta) {
    if (s.isVia) {
      const int low = std::min(grid_.nodeLayer(s.fromNode), grid_.nodeLayer(s.toNode));
      const int v = grid_.viaEdgeId(grid_.nodeX(s.fromNode), grid_.nodeY(s.fromNode), low);
      viaUse_[static_cast<std::size_t>(v)] =
          static_cast<std::uint16_t>(static_cast<int>(viaUse_[static_cast<std::size_t>(v)]) + delta);
    } else {
      const int e = wireEdgeOf(s.fromNode, s.toNode);
      wireUse_[static_cast<std::size_t>(e)] =
          static_cast<std::uint16_t>(static_cast<int>(wireUse_[static_cast<std::size_t>(e)]) + delta);
    }
  }

  void unroute(NetRoute& r) {
    for (const RouteSeg& s : r.segs) addUsage(s, -1);
    r.segs.clear();
    r.routed = false;
  }

  /// Per-iteration overflow totals, computed while the history update
  /// already walks every edge (no extra pass for the convergence series).
  struct OverflowTotals {
    int overflowedEdges = 0;
    std::int64_t totalOverflow = 0;
  };

  OverflowTotals updateHistory() {
    OverflowTotals t;
    for (std::size_t e = 0; e < wireUse_.size(); ++e) {
      const int over = static_cast<int>(wireUse_[e]) - static_cast<int>(grid_.wireCap(e));
      if (over > 0) {
        wireHist_[e] += static_cast<float>(opt_.historyWeight * over);
        ++t.overflowedEdges;
        t.totalOverflow += over;
      }
    }
    for (std::size_t v = 0; v < viaUse_.size(); ++v) {
      const int over = static_cast<int>(viaUse_[v]) - static_cast<int>(grid_.viaCap(v));
      if (over > 0) {
        viaHist_[v] += static_cast<float>(opt_.historyWeight * over);
        ++t.overflowedEdges;
        t.totalOverflow += over;
      }
    }
    return t;
  }

  Window fullWindow() const { return Window{0, 0, grid_.nx() - 1, grid_.ny() - 1}; }

  /// Multi-source A* from the current tree to \p target, restricted to the
  /// gcell window \p win (which always contains the tree and the target).
  /// Returns true and fills \p path (target..treeNode) on success. Reads
  /// only the shared congestion state (const during a batch), the optional
  /// region usage overlay \p delta, and \p s. \p cf is the net's
  /// criticality factor in [0, kMaxCritFactor]: costs blend toward their
  /// congestion-free base as cf rises (base + (1-cf) * (cost - base)),
  /// which keeps every scaled cost >= base, so the unscaled heuristic
  /// stays admissible. cf == 0 takes the untouched cached-cost path --
  /// bit-identical to a non-timing-driven search (the blend expression is
  /// not an FP identity at cf == 0).
  bool search(const std::vector<int>& treeNodes, int target, const Window& win,
              std::vector<int>& path, SearchScratch& s, const RegionDelta* delta,
              double cf) const {
    ++s.epoch;
    OpenList open(opt_.bucketQueue, s.open);
    const int tx = grid_.nodeX(target);
    const int ty = grid_.nodeY(target);
    const int tl = grid_.nodeLayer(target);
    const int epoch = s.epoch;
    NodeState* state = s.node.data();
    std::int64_t popped = 0;
    std::int64_t relaxed = 0;
    // Per-layer heuristic term, tabulated once per search (the target layer
    // is fixed) so a relaxation reads it instead of recomputing the
    // |dl| * minViaBase product.
    double hLayer[kMaxRouteLayers];
    for (int l = 0; l < grid_.numLayers(); ++l) {
      hLayer[l] = static_cast<double>(std::abs(l - tl)) * minViaBase_;
    }

    // Edge-cost views for this search: the frozen cache, overridden by the
    // region overlay where it has uncommitted usage, then blended toward
    // the base cost for critical nets. Both extra branches are off (and
    // cost nothing but a predictable test) on the classic batch path.
    const double keep = 1.0 - cf;
    auto wCost = [&](int e) {
      double c;
      if (delta != nullptr && delta->wire[static_cast<std::size_t>(e)] != 0) {
        c = wireCostExtra(e, static_cast<int>(delta->wire[static_cast<std::size_t>(e)]));
      } else {
        c = cachedWireCost(e);
      }
      if (cf > 0.0) c = 1.0 + keep * (c - 1.0);
      return c;
    };
    auto vCost = [&](int v, int cut) {
      double c;
      if (delta != nullptr && delta->via[static_cast<std::size_t>(v)] != 0) {
        c = viaCostExtra(v, cut, static_cast<int>(delta->via[static_cast<std::size_t>(v)]));
      } else {
        c = cachedViaCost(v, cut);
      }
      if (cf > 0.0) {
        const double b = viaBase_[static_cast<std::size_t>(cut)];
        c = b + keep * (c - b);
      }
      return c;
    };

    // Relaxation works on explicit gcell coordinates: callers always know
    // the neighbor's (x, y, l), and deriving them from the node id would
    // cost an integer division per call in the hottest loop of the flow.
    auto relax = [&](int node, int x, int y, int l, double g, int prev) {
      NodeState& st = state[node];
      if (st.visit == epoch && g >= st.dist) return;
      st.visit = epoch;
      st.dist = g;
      st.parent = prev;
      ++relaxed;
      const double h = static_cast<double>(std::abs(x - tx) + std::abs(y - ty)) + hLayer[l];
      open.push(OpenEntry{g + h, g, node, packXyl(x, y, l)});
    };

    for (int src : treeNodes) {
      relax(src, grid_.nodeX(src), grid_.nodeY(src), grid_.nodeLayer(src), 0.0, -1);
    }

    // Both edge-id formulas coincide with the node id of their low-end node
    // ((l*ny + y)*nx + x), so every neighbor edge is a fixed offset of u --
    // the expansion below is pure array arithmetic with no re-derivation.
    const int nx = grid_.nx();
    const int numLayers = grid_.numLayers();
    const int layerStride = nx * grid_.ny();
    OpenEntry e;
    bool found = false;
    while (open.pop(e, state, epoch)) {
      const int u = e.node;
      // Stale entry: the node was re-relaxed with a better g after this
      // entry was pushed (or belongs to an earlier epoch).
      if (state[u].visit != epoch || e.g != state[u].dist) continue;
      ++popped;
      if (u == target) {
        path.clear();
        for (int n = target; n != -1; n = state[n].parent) {
          path.push_back(n);
          if (state[n].dist == 0.0) break;
        }
        found = true;
        break;
      }
      const double g = e.g;
      const int x = xylX(e.xyl);
      const int y = xylY(e.xyl);
      const int l = xylL(e.xyl);
      // Skip the edge back to the node this pop was reached from: its cost
      // is the same in both directions (same edge id), so that relaxation
      // can never improve. The parent id shares u's 16-byte state record,
      // already loaded by the staleness check above.
      const int par = state[u].parent;
      // Wire moves along the preferred direction, within the window.
      if (layerHoriz_[static_cast<std::size_t>(l)] != 0) {
        if (x < win.x1 && u + 1 != par) {
          const double c = wCost(u);
          if (c < kInf) relax(u + 1, x + 1, y, l, g + c, u);
        }
        if (x > win.x0 && u - 1 != par) {
          const double c = wCost(u - 1);
          if (c < kInf) relax(u - 1, x - 1, y, l, g + c, u);
        }
      } else {
        if (y < win.y1 && u + nx != par) {
          const double c = wCost(u);
          if (c < kInf) relax(u + nx, x, y + 1, l, g + c, u);
        }
        if (y > win.y0 && u - nx != par) {
          const double c = wCost(u - nx);
          if (c < kInf) relax(u - nx, x, y - 1, l, g + c, u);
        }
      }
      // Vias (via edge between l and l+1 is keyed by the lower node id).
      if (l + 1 < numLayers && u + layerStride != par) {
        const double c = vCost(u, l);
        if (c < kInf) relax(u + layerStride, x, y, l + 1, g + c, u);
      }
      if (l > 0 && u - layerStride != par) {
        const double c = vCost(u - layerStride, l - 1);
        if (c < kInf) relax(u - layerStride, x, y, l - 1, g + c, u);
      }
    }
    s.popped += popped;
    s.relaxed += relaxed;
    return found;
  }

  /// Runs the window fallback ladder for one sink: the tree/sink bounding
  /// box inflated by the configured halo first, doubling the halo after
  /// every failure until the window covers the grid (which reproduces the
  /// unwindowed search exactly, so any net routable on the full grid stays
  /// routable). The ladder is a pure function of the tree, the sink and
  /// the options -- never of the schedule.
  bool searchWithWindows(const std::vector<int>& treeNodes, int target, int bx0, int by0,
                         int bx1, int by1, std::vector<int>& path, SearchScratch& s,
                         const RegionDelta* delta, double cf) const {
    if (opt_.searchHaloGcells < 0) {
      return search(treeNodes, target, fullWindow(), path, s, delta, cf);
    }
    const int tx = grid_.nodeX(target);
    const int ty = grid_.nodeY(target);
    const int wx0 = std::min(bx0, tx);
    const int wy0 = std::min(by0, ty);
    const int wx1 = std::max(bx1, tx);
    const int wy1 = std::max(by1, ty);
    for (int halo = opt_.searchHaloGcells;; halo = halo <= 0 ? 2 : halo * 2) {
      Window win;
      win.x0 = std::max(0, wx0 - halo);
      win.y0 = std::max(0, wy0 - halo);
      win.x1 = std::min(grid_.nx() - 1, wx1 + halo);
      win.y1 = std::min(grid_.ny() - 1, wy1 + halo);
      const bool coversGrid = win.x0 == 0 && win.y0 == 0 && win.x1 == grid_.nx() - 1 &&
                              win.y1 == grid_.ny() - 1;
      if (search(treeNodes, target, win, path, s, delta, cf)) return true;
      if (coversGrid) return false;
      ++s.fallbacks;
    }
  }

  /// Routes one net against the current (batch-frozen) congestion state
  /// plus the optional region usage overlay \p delta. Writes only \p out
  /// and \p s; usage commits happen after the batch / region pass.
  void routeNet(NetId netId, NetRoute& out, SearchScratch& s, const RegionDelta* delta) const {
    const double cf =
        critFactor_.empty() ? 0.0 : critFactor_[static_cast<std::size_t>(netId)];
    const Net& net = nl_.net(netId);
    // Unique pin nodes; driver first.
    std::vector<int> pinNodes;
    pinNodes.push_back(grid_.pinNode(nl_, net.pins[static_cast<std::size_t>(net.driverIdx)]));
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      const int node = grid_.pinNode(nl_, net.pins[static_cast<std::size_t>(k)]);
      pinNodes.push_back(node);
    }
    std::vector<int> targets(pinNodes.begin() + 1, pinNodes.end());
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    // Nearest-first growth order (by heuristic distance from the driver).
    const int dx0 = grid_.nodeX(pinNodes[0]);
    const int dy0 = grid_.nodeY(pinNodes[0]);
    std::sort(targets.begin(), targets.end(), [&](int a, int b) {
      const int da = std::abs(grid_.nodeX(a) - dx0) + std::abs(grid_.nodeY(a) - dy0);
      const int db = std::abs(grid_.nodeX(b) - dx0) + std::abs(grid_.nodeY(b) - dy0);
      if (da != db) return da < db;
      return a < b;
    });

    ++s.treeEpoch;
    std::vector<int>& treeNodes = s.treeNodes;
    treeNodes.clear();
    treeNodes.push_back(pinNodes[0]);
    s.tree[static_cast<std::size_t>(pinNodes[0])] = s.treeEpoch;
    // Tree bounding box (gcell coords), grown as paths are committed.
    int bx0 = dx0;
    int by0 = dy0;
    int bx1 = dx0;
    int by1 = dy0;

    out.segs.clear();
    out.routed = true;
    std::vector<int>& path = s.path;
    for (int t : targets) {
      if (s.tree[static_cast<std::size_t>(t)] == s.treeEpoch) continue;  // already reached
      if (!searchWithWindows(treeNodes, t, bx0, by0, bx1, by1, path, s, delta, cf)) {
        out.routed = false;
        continue;
      }
      // path runs target .. tree; add segments and new tree nodes.
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        const int a = path[k + 1];  // closer to tree
        const int b = path[k];
        RouteSeg seg;
        seg.fromNode = a;
        seg.toNode = b;
        const int la = grid_.nodeLayer(a);
        const int lb = grid_.nodeLayer(b);
        seg.isVia = la != lb;
        seg.layer = seg.isVia ? std::min(la, lb) : la;
        out.segs.push_back(seg);
      }
      for (int n : path) {
        if (s.tree[static_cast<std::size_t>(n)] != s.treeEpoch) {
          s.tree[static_cast<std::size_t>(n)] = s.treeEpoch;
          treeNodes.push_back(n);
          bx0 = std::min(bx0, grid_.nodeX(n));
          by0 = std::min(by0, grid_.nodeY(n));
          bx1 = std::max(bx1, grid_.nodeX(n));
          by1 = std::max(by1, grid_.nodeY(n));
        }
      }
    }
  }

  void finalize(RoutingResult& result) {
    result.wirelengthPerLayerUm.assign(static_cast<std::size_t>(grid_.numLayers()), 0.0);
    result.viasPerCut.assign(static_cast<std::size_t>(grid_.numLayers() - 1), 0);
    const double g = grid_.gcellUm();
    for (const NetRoute& r : result.nets) {
      for (const RouteSeg& s : r.segs) {
        if (s.isVia) {
          ++result.viasPerCut[static_cast<std::size_t>(s.layer)];
          if (grid_.viaIsF2f(s.layer)) ++result.f2fBumps;
        } else {
          result.wirelengthPerLayerUm[static_cast<std::size_t>(s.layer)] += g;
          result.totalWirelengthUm += g;
        }
      }
    }
    for (NetId n = 0; n < nl_.numNets(); ++n) {
      if (nl_.net(n).pins.size() >= 2 && !result.nets[static_cast<std::size_t>(n)].routed) {
        ++result.unroutedNets;
      }
    }
    // Kernel statistics: per-net searches are deterministic, and integer
    // slot totals commute, so these sums are thread-count independent.
    for (const auto& p : scratch_) {
      if (!p) continue;
      result.nodesPopped += p->popped;
      result.nodesRelaxed += p->relaxed;
      result.windowFallbacks += p->fallbacks;
    }
    if (opt_.regionSizeGcells > 0) {
      result.regionCount = part_.numRegions();
      result.regionLocalNets = regionLocalNets_;
      result.regionCrossNets = regionCrossNets_;
    }
    if (eco_) {
      result.ecoDirtyGcells = ecoDirtyGcells_;
      for (const NetId n : order_) {
        if (everRipped_[static_cast<std::size_t>(n)]) {
          ++result.ecoNetsRipped;
        } else {
          ++result.ecoNetsReused;
        }
      }
    }
    // Overflow is recomputed from the committed segments, never read from
    // the incrementally maintained congestion arrays: after rip-up/reroute
    // rounds those arrays are the *negotiation* state, and any drift in them
    // must not leak into the reported result. The verifier's independent
    // recount (src/verify) is the oracle this recount must agree with.
    std::vector<std::uint16_t> wireCommitted(wireUse_.size(), 0);
    std::vector<std::uint16_t> viaCommitted(viaUse_.size(), 0);
    for (const NetRoute& r : result.nets) {
      for (const RouteSeg& s : r.segs) {
        if (s.isVia) {
          ++viaCommitted[static_cast<std::size_t>(
              grid_.viaEdgeId(grid_.nodeX(s.fromNode), grid_.nodeY(s.fromNode), s.layer))];
        } else {
          ++wireCommitted[static_cast<std::size_t>(std::min(s.fromNode, s.toNode))];
        }
      }
    }
    assert(wireCommitted == wireUse_ && viaCommitted == viaUse_ &&
           "incremental congestion accounting drifted from committed segments");
    for (std::size_t e = 0; e < wireCommitted.size(); ++e) {
      const int over = static_cast<int>(wireCommitted[e]) - static_cast<int>(grid_.wireCap(e));
      if (over > 0) {
        ++result.overflowedEdges;
        result.totalOverflow += over;
      }
    }
    for (std::size_t v = 0; v < viaCommitted.size(); ++v) {
      const int over = static_cast<int>(viaCommitted[v]) - static_cast<int>(grid_.viaCap(v));
      if (over > 0) {
        ++result.overflowedEdges;
        result.totalOverflow += over;
      }
    }
  }

  const Netlist& nl_;
  RouteGrid& grid_;
  RouterOptions opt_;
  std::vector<std::uint16_t> wireUse_;
  std::vector<std::uint16_t> viaUse_;
  std::vector<float> wireHist_;
  std::vector<float> viaHist_;
  std::vector<double> wireCostCache_;
  std::vector<double> viaCostCache_;
  std::vector<std::unique_ptr<SearchScratch>> scratch_;
  std::vector<std::unique_ptr<RegionDelta>> deltas_;
  RegionPartition part_;
  std::vector<NetId> order_;
  std::vector<double> critFactor_;   ///< empty unless timing-driven.
  std::vector<double> viaBase_;      ///< per-cut base via cost.
  std::vector<std::uint8_t> everRipped_;  ///< per net: ripped at least once.
  int threads_ = 1;
  int batchSize_ = 1;
  double presWeight_ = 1.0;
  double minViaBase_ = 1.0;
  std::vector<std::uint8_t> layerHoriz_;
  bool eco_ = false;
  std::int64_t regionLocalNets_ = 0;
  std::int64_t regionCrossNets_ = 0;
  std::int64_t ecoDirtyGcells_ = 0;
};

/// Shared result telemetry for both entry points.
void recordRouteObs(const RoutingResult& result) {
  obs::series("route.overflow").record(static_cast<double>(result.overflowedEdges));
  obs::series("route.f2f_bumps").record(static_cast<double>(result.f2fBumps));
  obs::gauge("route.wirelength_um").set(result.totalWirelengthUm);
  obs::counter("route.unrouted_nets").add(result.unroutedNets);
  obs::counter("route.nodes_popped").add(result.nodesPopped);
  obs::counter("route.nodes_relaxed").add(result.nodesRelaxed);
  obs::counter("route.window_fallbacks").add(result.windowFallbacks);
  if (result.regionCount > 0) {
    obs::gauge("route.region_count").set(static_cast<double>(result.regionCount));
    obs::counter("route.region_local_nets").add(result.regionLocalNets);
    obs::counter("route.region_cross_nets").add(result.regionCrossNets);
  }
  M3D_LOG(debug) << "router summary: iters=" << result.iterationsUsed
                << " wl_um=" << result.totalWirelengthUm << " bumps=" << result.f2fBumps
                << " overflow_edges=" << result.overflowedEdges
                << " unrouted=" << result.unroutedNets
                << " pops=" << result.nodesPopped
                << " window_fallbacks=" << result.windowFallbacks;
}

}  // namespace

RoutingResult routeDesign(const Netlist& nl, RouteGrid& grid, const RouterOptions& opt) {
  Router router(nl, grid, opt);
  RoutingResult result = router.run();
  recordRouteObs(result);
  return result;
}

RoutingResult routeDesignEco(const Netlist& nl, RouteGrid& grid, const RouteGrid& prevGrid,
                             const RoutingResult& prev, const RouterOptions& opt) {
  Router router(nl, grid, opt);
  RoutingResult result = router.runEco(prevGrid, prev);
  recordRouteObs(result);
  obs::counter("route.eco_dirty_gcells").add(result.ecoDirtyGcells);
  obs::counter("route.eco_nets_reused").add(result.ecoNetsReused);
  obs::counter("route.eco_nets_ripped").add(result.ecoNetsRipped);
  M3D_LOG(debug) << "eco router summary: dirty_gcells=" << result.ecoDirtyGcells
                 << " reused=" << result.ecoNetsReused
                 << " ripped=" << result.ecoNetsRipped;
  return result;
}

}  // namespace m3d
