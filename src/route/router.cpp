#include "route/router.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>

#include "core/parallel.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace m3d {

double RoutingResult::wirelengthOfDieUm(const Beol& beol, DieId die) const {
  double sum = 0.0;
  for (int l = 0; l < beol.numMetals() && l < static_cast<int>(wirelengthPerLayerUm.size());
       ++l) {
    if (beol.metal(l).die == die) sum += wirelengthPerLayerUm[static_cast<std::size_t>(l)];
  }
  return sum;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-thread A* scratch. One instance per pool slot; reused across nets so
/// the O(numNodes) arrays are touched once and invalidated by epoch.
struct SearchScratch {
  std::vector<double> dist;
  std::vector<int> parent;
  std::vector<int> visit;
  std::vector<int> tree;
  std::vector<int> path;
  std::vector<int> treeNodes;
  int epoch = 0;
  int treeEpoch = 0;

  void ensure(int numNodes) {
    if (static_cast<int>(dist.size()) == numNodes) return;
    const std::size_t n = static_cast<std::size_t>(numNodes);
    dist.assign(n, kInf);
    parent.assign(n, -1);
    visit.assign(n, 0);
    tree.assign(n, 0);
    epoch = 0;
    treeEpoch = 0;
  }
};

/// Negotiated-congestion router with deterministic batch parallelism.
///
/// Each rip-up iteration routes its net set in fixed-size batches
/// (RouterOptions::batchSize). Within a batch every net searches against a
/// *read-only* view of the congestion state (usage and history arrays are
/// not touched while the batch is in flight), so the batch can run on any
/// number of threads; usage updates are committed after the batch in the
/// batch's fixed net order. Congestion therefore negotiates between
/// batches and between iterations, and the result is bit-identical at any
/// thread count -- the decomposition into batches is a pure function of the
/// options, never of the schedule.
class Router {
 public:
  Router(const Netlist& nl, RouteGrid& grid, const RouterOptions& opt)
      : nl_(nl), grid_(grid), opt_(opt) {
    wireUse_.assign(static_cast<std::size_t>(grid.numWireEdges()), 0);
    viaUse_.assign(static_cast<std::size_t>(grid.numViaEdges()), 0);
    wireHist_.assign(wireUse_.size(), 0.0f);
    viaHist_.assign(viaUse_.size(), 0.0f);
    scratch_.resize(static_cast<std::size_t>(par::maxSlots()));
    presWeight_ = opt.presentWeightInit;
    threads_ = par::resolveThreads(opt.numThreads);
    batchSize_ = std::max(1, opt.batchSize);
  }

  RoutingResult run() {
    RoutingResult result;
    result.nets.assign(static_cast<std::size_t>(nl_.numNets()), NetRoute{});
    obs::gauge("parallel.threads").set(static_cast<double>(threads_));
    obs::gauge("route.batch_size").set(static_cast<double>(batchSize_));

    // Route order: short nets first (stable by id).
    std::vector<NetId> order;
    for (NetId n = 0; n < nl_.numNets(); ++n) {
      if (nl_.net(n).pins.size() >= 2) order.push_back(n);
    }
    std::sort(order.begin(), order.end(), [this](NetId a, NetId b) {
      const Dbu ha = nl_.netHpwl(a);
      const Dbu hb = nl_.netHpwl(b);
      if (ha != hb) return ha < hb;
      return a < b;
    });

    std::vector<NetId> toRoute = order;
    for (int iter = 0; iter < opt_.maxIterations; ++iter) {
      obs::ScopedPhase it("route.iter");
      result.iterationsUsed = iter + 1;
      const int batches = routeBatches(toRoute, result);
      // Collect overflow, build history, decide rip-up set.
      updateHistory();
      std::vector<NetId> ripup;
      for (NetId n : order) {
        const NetRoute& r = result.nets[static_cast<std::size_t>(n)];
        bool over = false;
        for (const RouteSeg& s : r.segs) {
          if (edgeOverflowed(s)) {
            over = true;
            break;
          }
        }
        if (over) ripup.push_back(n);
      }
      it.attr("nets_routed", static_cast<double>(toRoute.size()));
      it.attr("batches", static_cast<double>(batches));
      it.attr("threads", static_cast<double>(threads_));
      it.attr("ripup", static_cast<double>(ripup.size()));
      obs::series("route.ripup_nets").record(static_cast<double>(ripup.size()));
      M3D_LOG(debug) << "route iter " << (iter + 1) << ": routed=" << toRoute.size()
                     << " batches=" << batches << " threads=" << threads_
                     << " ripup=" << ripup.size();
      if (ripup.empty()) break;
      if (iter + 1 >= opt_.maxIterations) break;
      for (NetId n : ripup) unroute(result.nets[static_cast<std::size_t>(n)]);
      toRoute = ripup;
      presWeight_ *= opt_.presentWeightGrowth;
    }

    finalize(result);
    return result;
  }

 private:
  struct QEntry {
    double f;
    int node;
    bool operator>(const QEntry& o) const {
      if (f != o.f) return f > o.f;
      return node > o.node;
    }
  };

  /// Routes \p toRoute in fixed-size batches: parallel read-only search,
  /// then an ordered sequential commit. Returns the batch count.
  int routeBatches(const std::vector<NetId>& toRoute, RoutingResult& result) {
    int batches = 0;
    const std::size_t bs = static_cast<std::size_t>(batchSize_);
    for (std::size_t b0 = 0; b0 < toRoute.size(); b0 += bs) {
      const std::size_t b1 = std::min(toRoute.size(), b0 + bs);
      // Search phase: congestion state is read-only, nets are independent.
      par::parallelFor(
          static_cast<std::int64_t>(b0), static_cast<std::int64_t>(b1), 1,
          [&](std::int64_t k) {
            const NetId n = toRoute[static_cast<std::size_t>(k)];
            routeNet(n, result.nets[static_cast<std::size_t>(n)], scratchForSlot());
          },
          threads_);
      // Commit phase: fixed (route-order, i.e. HPWL-then-NetId) order.
      // Usage increments commute, but a fixed order keeps this auditable.
      for (std::size_t k = b0; k < b1; ++k) {
        const NetRoute& r = result.nets[static_cast<std::size_t>(toRoute[k])];
        for (const RouteSeg& s : r.segs) addUsage(s, +1);
      }
      ++batches;
    }
    return batches;
  }

  SearchScratch& scratchForSlot() {
    auto& p = scratch_[static_cast<std::size_t>(par::currentSlot())];
    if (!p) p = std::make_unique<SearchScratch>();
    p->ensure(grid_.numNodes());
    return *p;
  }

  int wireEdgeOf(int a, int b) const {
    // a and b share a layer; edge is keyed by the lower-coordinate node.
    const int from = std::min(a, b);
    return from;  // wire edge id == node id of the low end by construction
  }

  double wireCost(int e, int /*layer*/) const {
    const int cap = grid_.wireCap(e);
    if (cap == 0) return kInf;
    const int use = wireUse_[static_cast<std::size_t>(e)];
    const double pres = use >= cap ? 1.0 + presWeight_ * static_cast<double>(use + 1 - cap) : 1.0;
    return (1.0 + static_cast<double>(wireHist_[static_cast<std::size_t>(e)])) * pres;
  }

  double viaCost(int v, int cut) const {
    const int cap = grid_.viaCap(v);
    if (cap == 0) return kInf;
    const int use = viaUse_[static_cast<std::size_t>(v)];
    const double pres = use >= cap ? 1.0 + presWeight_ * static_cast<double>(use + 1 - cap) : 1.0;
    const double base = grid_.viaIsF2f(cut) ? opt_.f2fViaCost : opt_.viaCost;
    return base * (1.0 + static_cast<double>(viaHist_[static_cast<std::size_t>(v)])) * pres;
  }

  double heuristic(int node, int tx, int ty, int tl) const {
    const int dx = std::abs(grid_.nodeX(node) - tx);
    const int dy = std::abs(grid_.nodeY(node) - ty);
    const int dl = std::abs(grid_.nodeLayer(node) - tl);
    return static_cast<double>(dx + dy) + static_cast<double>(dl) * opt_.viaCost;
  }

  bool edgeOverflowed(const RouteSeg& s) const {
    if (s.isVia) {
      const int v = grid_.viaEdgeId(grid_.nodeX(s.fromNode), grid_.nodeY(s.fromNode),
                                    std::min(grid_.nodeLayer(s.fromNode), grid_.nodeLayer(s.toNode)));
      return viaUse_[static_cast<std::size_t>(v)] > grid_.viaCap(v);
    }
    const int e = wireEdgeOf(s.fromNode, s.toNode);
    return wireUse_[static_cast<std::size_t>(e)] > grid_.wireCap(e);
  }

  void addUsage(const RouteSeg& s, int delta) {
    if (s.isVia) {
      const int low = std::min(grid_.nodeLayer(s.fromNode), grid_.nodeLayer(s.toNode));
      const int v = grid_.viaEdgeId(grid_.nodeX(s.fromNode), grid_.nodeY(s.fromNode), low);
      viaUse_[static_cast<std::size_t>(v)] =
          static_cast<std::uint16_t>(static_cast<int>(viaUse_[static_cast<std::size_t>(v)]) + delta);
    } else {
      const int e = wireEdgeOf(s.fromNode, s.toNode);
      wireUse_[static_cast<std::size_t>(e)] =
          static_cast<std::uint16_t>(static_cast<int>(wireUse_[static_cast<std::size_t>(e)]) + delta);
    }
  }

  void unroute(NetRoute& r) {
    for (const RouteSeg& s : r.segs) addUsage(s, -1);
    r.segs.clear();
    r.routed = false;
  }

  void updateHistory() {
    for (std::size_t e = 0; e < wireUse_.size(); ++e) {
      const int over = static_cast<int>(wireUse_[e]) - static_cast<int>(grid_.wireCap(e));
      if (over > 0) wireHist_[e] += static_cast<float>(opt_.historyWeight * over);
    }
    for (std::size_t v = 0; v < viaUse_.size(); ++v) {
      const int over = static_cast<int>(viaUse_[v]) - static_cast<int>(grid_.viaCap(v));
      if (over > 0) viaHist_[v] += static_cast<float>(opt_.historyWeight * over);
    }
  }

  /// Multi-source A* from the current tree to \p target. Returns true and
  /// fills \p path (target..treeNode) on success. Reads only the shared
  /// congestion state (const during a batch) and \p s.
  bool search(const std::vector<int>& treeNodes, int target, std::vector<int>& path,
              SearchScratch& s) const {
    ++s.epoch;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> pq;
    const int tx = grid_.nodeX(target);
    const int ty = grid_.nodeY(target);
    const int tl = grid_.nodeLayer(target);

    auto relax = [&](int node, double g, int prev) {
      if (s.visit[static_cast<std::size_t>(node)] == s.epoch &&
          g >= s.dist[static_cast<std::size_t>(node)]) {
        return;
      }
      s.visit[static_cast<std::size_t>(node)] = s.epoch;
      s.dist[static_cast<std::size_t>(node)] = g;
      s.parent[static_cast<std::size_t>(node)] = prev;
      pq.push({g + heuristic(node, tx, ty, tl), node});
    };

    for (int src : treeNodes) relax(src, 0.0, -1);

    while (!pq.empty()) {
      const QEntry top = pq.top();
      pq.pop();
      const int u = top.node;
      if (s.visit[static_cast<std::size_t>(u)] != s.epoch) continue;
      const double g = s.dist[static_cast<std::size_t>(u)];
      if (top.f > g + heuristic(u, tx, ty, tl) + 1e-12) continue;  // stale entry
      if (u == target) {
        path.clear();
        for (int n = target; n != -1; n = s.parent[static_cast<std::size_t>(n)]) {
          path.push_back(n);
          if (s.dist[static_cast<std::size_t>(n)] == 0.0) break;
        }
        return true;
      }
      const int x = grid_.nodeX(u);
      const int y = grid_.nodeY(u);
      const int l = grid_.nodeLayer(u);
      // Wire moves along the preferred direction.
      if (grid_.layerHorizontal(l)) {
        if (x + 1 < grid_.nx()) {
          const double c = wireCost(grid_.wireEdgeId(x, y, l), l);
          if (c < kInf) relax(grid_.nodeId(x + 1, y, l), g + c, u);
        }
        if (x > 0) {
          const double c = wireCost(grid_.wireEdgeId(x - 1, y, l), l);
          if (c < kInf) relax(grid_.nodeId(x - 1, y, l), g + c, u);
        }
      } else {
        if (y + 1 < grid_.ny()) {
          const double c = wireCost(grid_.wireEdgeId(x, y, l), l);
          if (c < kInf) relax(grid_.nodeId(x, y + 1, l), g + c, u);
        }
        if (y > 0) {
          const double c = wireCost(grid_.wireEdgeId(x, y - 1, l), l);
          if (c < kInf) relax(grid_.nodeId(x, y - 1, l), g + c, u);
        }
      }
      // Vias.
      if (l + 1 < grid_.numLayers()) {
        const double c = viaCost(grid_.viaEdgeId(x, y, l), l);
        if (c < kInf) relax(grid_.nodeId(x, y, l + 1), g + c, u);
      }
      if (l > 0) {
        const double c = viaCost(grid_.viaEdgeId(x, y, l - 1), l - 1);
        if (c < kInf) relax(grid_.nodeId(x, y, l - 1), g + c, u);
      }
    }
    return false;
  }

  /// Routes one net against the current (batch-frozen) congestion state.
  /// Writes only \p out and \p s; usage commits happen after the batch.
  void routeNet(NetId netId, NetRoute& out, SearchScratch& s) const {
    const Net& net = nl_.net(netId);
    // Unique pin nodes; driver first.
    std::vector<int> pinNodes;
    pinNodes.push_back(grid_.pinNode(nl_, net.pins[static_cast<std::size_t>(net.driverIdx)]));
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      const int node = grid_.pinNode(nl_, net.pins[static_cast<std::size_t>(k)]);
      pinNodes.push_back(node);
    }
    std::vector<int> targets(pinNodes.begin() + 1, pinNodes.end());
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    // Nearest-first growth order (by heuristic distance from the driver).
    const int dx0 = grid_.nodeX(pinNodes[0]);
    const int dy0 = grid_.nodeY(pinNodes[0]);
    std::sort(targets.begin(), targets.end(), [&](int a, int b) {
      const int da = std::abs(grid_.nodeX(a) - dx0) + std::abs(grid_.nodeY(a) - dy0);
      const int db = std::abs(grid_.nodeX(b) - dx0) + std::abs(grid_.nodeY(b) - dy0);
      if (da != db) return da < db;
      return a < b;
    });

    ++s.treeEpoch;
    std::vector<int>& treeNodes = s.treeNodes;
    treeNodes.clear();
    treeNodes.push_back(pinNodes[0]);
    s.tree[static_cast<std::size_t>(pinNodes[0])] = s.treeEpoch;

    out.segs.clear();
    out.routed = true;
    std::vector<int>& path = s.path;
    for (int t : targets) {
      if (s.tree[static_cast<std::size_t>(t)] == s.treeEpoch) continue;  // already reached
      if (!search(treeNodes, t, path, s)) {
        out.routed = false;
        continue;
      }
      // path runs target .. tree; add segments and new tree nodes.
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        const int a = path[k + 1];  // closer to tree
        const int b = path[k];
        RouteSeg seg;
        seg.fromNode = a;
        seg.toNode = b;
        const int la = grid_.nodeLayer(a);
        const int lb = grid_.nodeLayer(b);
        seg.isVia = la != lb;
        seg.layer = seg.isVia ? std::min(la, lb) : la;
        out.segs.push_back(seg);
      }
      for (int n : path) {
        if (s.tree[static_cast<std::size_t>(n)] != s.treeEpoch) {
          s.tree[static_cast<std::size_t>(n)] = s.treeEpoch;
          treeNodes.push_back(n);
        }
      }
    }
  }

  void finalize(RoutingResult& result) {
    result.wirelengthPerLayerUm.assign(static_cast<std::size_t>(grid_.numLayers()), 0.0);
    result.viasPerCut.assign(static_cast<std::size_t>(grid_.numLayers() - 1), 0);
    const double g = grid_.gcellUm();
    for (const NetRoute& r : result.nets) {
      for (const RouteSeg& s : r.segs) {
        if (s.isVia) {
          ++result.viasPerCut[static_cast<std::size_t>(s.layer)];
          if (grid_.viaIsF2f(s.layer)) ++result.f2fBumps;
        } else {
          result.wirelengthPerLayerUm[static_cast<std::size_t>(s.layer)] += g;
          result.totalWirelengthUm += g;
        }
      }
    }
    for (NetId n = 0; n < nl_.numNets(); ++n) {
      if (nl_.net(n).pins.size() >= 2 && !result.nets[static_cast<std::size_t>(n)].routed) {
        ++result.unroutedNets;
      }
    }
    // Overflow is recomputed from the committed segments, never read from
    // the incrementally maintained congestion arrays: after rip-up/reroute
    // rounds those arrays are the *negotiation* state, and any drift in them
    // must not leak into the reported result. The verifier's independent
    // recount (src/verify) is the oracle this recount must agree with.
    std::vector<std::uint16_t> wireCommitted(wireUse_.size(), 0);
    std::vector<std::uint16_t> viaCommitted(viaUse_.size(), 0);
    for (const NetRoute& r : result.nets) {
      for (const RouteSeg& s : r.segs) {
        if (s.isVia) {
          ++viaCommitted[static_cast<std::size_t>(
              grid_.viaEdgeId(grid_.nodeX(s.fromNode), grid_.nodeY(s.fromNode), s.layer))];
        } else {
          ++wireCommitted[static_cast<std::size_t>(std::min(s.fromNode, s.toNode))];
        }
      }
    }
    assert(wireCommitted == wireUse_ && viaCommitted == viaUse_ &&
           "incremental congestion accounting drifted from committed segments");
    for (std::size_t e = 0; e < wireCommitted.size(); ++e) {
      const int over = static_cast<int>(wireCommitted[e]) - static_cast<int>(grid_.wireCap(e));
      if (over > 0) {
        ++result.overflowedEdges;
        result.totalOverflow += over;
      }
    }
    for (std::size_t v = 0; v < viaCommitted.size(); ++v) {
      const int over = static_cast<int>(viaCommitted[v]) - static_cast<int>(grid_.viaCap(v));
      if (over > 0) {
        ++result.overflowedEdges;
        result.totalOverflow += over;
      }
    }
  }

  const Netlist& nl_;
  RouteGrid& grid_;
  RouterOptions opt_;
  std::vector<std::uint16_t> wireUse_;
  std::vector<std::uint16_t> viaUse_;
  std::vector<float> wireHist_;
  std::vector<float> viaHist_;
  std::vector<std::unique_ptr<SearchScratch>> scratch_;
  int threads_ = 1;
  int batchSize_ = 1;
  double presWeight_ = 1.0;
};

}  // namespace

RoutingResult routeDesign(const Netlist& nl, RouteGrid& grid, const RouterOptions& opt) {
  Router router(nl, grid, opt);
  RoutingResult result = router.run();
  obs::series("route.overflow").record(static_cast<double>(result.overflowedEdges));
  obs::series("route.f2f_bumps").record(static_cast<double>(result.f2fBumps));
  obs::gauge("route.wirelength_um").set(result.totalWirelengthUm);
  obs::counter("route.unrouted_nets").add(result.unroutedNets);
  M3D_LOG(debug) << "router summary: iters=" << result.iterationsUsed
                << " wl_um=" << result.totalWirelengthUm << " bumps=" << result.f2fBumps
                << " overflow_edges=" << result.overflowedEdges
                << " unrouted=" << result.unroutedNets;
  return result;
}

}  // namespace m3d
