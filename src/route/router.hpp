#pragma once

/// \file router.hpp
/// Negotiated-congestion (PathFinder-style) global router.
///
/// Multi-pin nets are routed as Steiner trees grown by multi-source A*
/// (search from the partial tree to the next pin). Congested edges get
/// present- and history-based penalties; overflowed nets are ripped up and
/// rerouted for a bounded number of iterations.

#include <cstdint>
#include <functional>
#include <vector>

#include "route/route_grid.hpp"

namespace m3d {

/// One edge of a routed net.
struct RouteSeg {
  bool isVia = false;
  /// Wire: metal layer index. Via: lower metal layer index (cut index).
  int layer = 0;
  /// Grid node the segment starts at.
  int fromNode = 0;
  /// Grid node the segment ends at (adjacent to fromNode).
  int toNode = 0;
};

struct NetRoute {
  std::vector<RouteSeg> segs;
  bool routed = false;
};

struct RoutingResult;

struct RouterOptions {
  int maxIterations = 5;         ///< rip-up & reroute rounds.
  double viaCost = 2.0;          ///< base cost of a regular via (gcell units).
  double f2fViaCost = 3.0;       ///< base cost of an F2F via.
  double historyWeight = 0.4;
  double presentWeightInit = 1.0;
  double presentWeightGrowth = 2.0;
  /// Threads for the per-batch net search (0 = auto: M3D_THREADS env, else
  /// hardware_concurrency). Results are bit-identical at any thread count.
  int numThreads = 0;
  /// Nets per snapshot batch. Nets inside a batch are routed concurrently
  /// against a read-only view of the congestion state and committed in
  /// fixed net order afterwards; congestion negotiates *between* batches.
  /// Must not depend on the thread count (it is part of the deterministic
  /// algorithm, not the schedule). 1 reproduces fully sequential
  /// negotiation; larger batches expose more parallelism.
  int batchSize = 24;
  /// Frozen per-batch edge-cost caches. Usage/history are read-only while a
  /// batch is in flight, so wire/via costs are materialized into flat
  /// arrays once per rip-up iteration (parallel, deterministic chunking)
  /// and patched per committed edge after each batch; search() then reads
  /// one cached double per relaxation instead of recomputing the branchy
  /// cost formula. Pure speedup: cached values equal the recomputed ones
  /// bit for bit, so routes are unchanged.
  bool costCache = true;
  /// Windowed A*: restrict each sink search to the bounding box of the
  /// current tree plus the sink, inflated by this many gcells. When a
  /// window search fails the halo doubles deterministically until the
  /// window covers the whole grid, so any net routable on the full grid
  /// stays routable (the fallback ladder is counted in
  /// RoutingResult::windowFallbacks). < 0 disables windowing and always
  /// searches the full grid. The tight default is deliberate: confining
  /// congestion-driven detours to the net's own neighborhood both prunes
  /// the search and keeps negotiation local (measurably lower overflow
  /// than full-grid search on the benchmark tiles).
  int searchHaloGcells = 1;
  /// Monotone bucket open list keyed on quantized f-cost with a stable
  /// node-id tiebreak instead of a binary heap: O(1) push/pop, no per-pop
  /// log factor. Tie order differs from the heap, so individual routes may
  /// differ at equal cost; both open lists are deterministic at any thread
  /// count.
  bool bucketQueue = true;
  /// Region-parallel negotiation: shard the gcell plane into rectangular
  /// regions of this nominal edge length (see region_partition.hpp -- a
  /// pure function of the grid dims and this knob, never the schedule).
  /// Nets whose pin bounding box fits inside one region route sequentially
  /// against that region's accumulated usage overlay while regions run
  /// concurrently; usage commits in ascending region id, then the
  /// boundary-crossing nets route via the classic batch path against the
  /// committed state. <= 0 disables partitioning (batch parallelism only).
  int regionSizeGcells = 0;
  /// Timing-driven ordering and cost shaping. When set and netCriticality
  /// is non-empty, nets route most-critical first and each net's wire/via
  /// costs are blended toward their congestion-free base by its criticality
  /// factor (VPR-style: critical nets prefer short paths, non-critical nets
  /// absorb detours). A zero-criticality net routes bit-identically to the
  /// non-timing-driven router.
  bool timingDriven = false;
  /// Criticality sharpening exponent: factor = min(crit^exponent, 0.99).
  /// > 1 focuses the cost blend on the most critical nets; the 0.99 clamp
  /// keeps blocked-edge costs infinite (a factor of exactly 1 would
  /// multiply infinity by zero).
  double criticalityExponent = 1.0;
  /// Per-net criticality in [0, 1], indexed by NetId (typically
  /// Sta::netCriticality). Empty disables timing-driven behavior even when
  /// timingDriven is set.
  std::vector<double> netCriticality;
  /// Refresh the criticalities between negotiation iterations: every
  /// critRefreshEvery completed rip-up rounds the router hands the current
  /// (still fully routed) result to this callback and rebuilds its
  /// criticality factors from the returned vector before re-sorting the
  /// rip-up cohort. The flow installs an incremental-STA closure here
  /// (re-extract the routed parasitics, cone-update arrivals); unset, the
  /// pre-route criticalities stay fixed for the whole route. Only consulted
  /// when timing-driven routing is active.
  int critRefreshEvery = 1;
  std::function<std::vector<double>(const RoutingResult&)> criticalityRefresh;
};

struct RoutingResult {
  std::vector<NetRoute> nets;    ///< indexed by NetId.
  double totalWirelengthUm = 0.0;
  std::vector<double> wirelengthPerLayerUm;  ///< indexed by metal layer.
  std::vector<std::int64_t> viasPerCut;      ///< indexed by cut layer.
  std::int64_t f2fBumps = 0;     ///< number of F2F via crossings (bumps).
  int overflowedEdges = 0;       ///< edges with usage > capacity at the end.
  std::int64_t totalOverflow = 0;
  int unroutedNets = 0;
  int iterationsUsed = 0;

  // Search-kernel statistics (deterministic: per-net searches are
  // sequential and integer totals commute across the batch threads).
  std::int64_t nodesPopped = 0;    ///< open-list pops across all searches.
  std::int64_t nodesRelaxed = 0;   ///< accepted relaxations (dist improved).
  std::int64_t windowFallbacks = 0;  ///< window widenings after a failed windowed search.

  // Region-parallel negotiation statistics (0 when partitioning is off).
  int regionCount = 0;                 ///< regions in the partition.
  std::int64_t regionLocalNets = 0;    ///< net routings served by a region pass.
  std::int64_t regionCrossNets = 0;    ///< net routings that crossed regions (batch path).

  // Incremental (ECO) reroute statistics (0 for a full route).
  std::int64_t ecoDirtyGcells = 0;   ///< gcell columns with >= 1 capacity-changed edge.
  std::int64_t ecoNetsReused = 0;    ///< nets whose previous route was kept verbatim.
  std::int64_t ecoNetsRipped = 0;    ///< nets ripped up (dirty seed or later negotiation).

  /// Wirelength [um] routed on layers of \p die (combined stacks only).
  double wirelengthOfDieUm(const Beol& beol, DieId die) const;
};

/// Routes every multi-pin net of \p nl on \p grid. Single-pin and degenerate
/// nets are skipped (marked routed with empty geometry).
RoutingResult routeDesign(const Netlist& nl, RouteGrid& grid,
                          const RouterOptions& opt = RouterOptions{});

/// Incremental (ECO) reroute: seeds the congestion state with \p prev's
/// routes, rips up only the *dirty* nets -- those unrouted before, touching
/// an edge whose capacity differs between \p prevGrid and \p grid, or whose
/// pins moved off their previous route -- and negotiates just that set (a
/// reused net can still be ripped by a later iteration if the capacity
/// change left it overflowing). Every untouched net keeps its segment list
/// byte-identical to \p prev. Falls back to a full routeDesign (with a
/// warning) when \p prev is incompatible with the current grid/netlist.
RoutingResult routeDesignEco(const Netlist& nl, RouteGrid& grid, const RouteGrid& prevGrid,
                             const RoutingResult& prev,
                             const RouterOptions& opt = RouterOptions{});

}  // namespace m3d
