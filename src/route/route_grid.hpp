#pragma once

/// \file route_grid.hpp
/// GCell routing grid over an arbitrary BEOL stack.
///
/// Nodes are (gcell-x, gcell-y, metal layer). Wire edges exist along each
/// layer's preferred direction; via edges connect vertically adjacent
/// layers. The F2F bond layer of a combined Macro-3D stack is *just another
/// cut layer* here — the router plans F2F vias implicitly, which is the core
/// claim of the methodology (Sec. III: "the highly-optimized 2D routing
/// engines take care of the F2F-via planning").
///
/// Capacities: wire capacity = tracks per gcell x utilization; via capacity
/// from the cut pitch. Macro routing obstructions reduce wire capacity on
/// their layer and via capacity *below* their layer (the macro's internal
/// wiring), keeping the via up to the next layer available for pin access.

#include <cstdint>
#include <string>
#include <vector>

#include "geom/grid.hpp"
#include "netlist/netlist.hpp"
#include "tech/beol.hpp"

namespace m3d {

struct RouteGridOptions {
  Dbu gcellSize = umToDbu(4.0);
  double trackUtilization = 0.80;  ///< usable fraction of wire tracks.
  double viaUtilization = 0.50;    ///< usable fraction of via sites.
  /// Extra derate on M1: most of its tracks serve pin access and
  /// intra-cell routing, as in commercial global-router capacity models.
  double m1Utilization = 0.30;
};

class RouteGrid {
 public:
  /// Builds the grid over \p die for \p beol, carving out obstructions from
  /// the fixed macros of \p nl (both dies' macros, since the combined stack
  /// carries both dies' layers).
  RouteGrid(const Netlist& nl, const Rect& die, const Beol& beol,
            const RouteGridOptions& opt = RouteGridOptions{});

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int numLayers() const { return nl_; }
  int numNodes() const { return nx_ * ny_ * nl_; }
  const Beol& beol() const { return *beol_; }
  const GridMapping& mapping() const { return map_; }
  double gcellUm() const { return dbuToUm(opt_.gcellSize); }

  int nodeId(int x, int y, int layer) const { return (layer * ny_ + y) * nx_ + x; }
  int nodeX(int id) const { return id % nx_; }
  int nodeY(int id) const { return (id / nx_) % ny_; }
  int nodeLayer(int id) const { return id / (nx_ * ny_); }

  bool layerHorizontal(int layer) const {
    return beol_->metal(layer).dir == LayerDir::kHorizontal;
  }

  /// Node of a netlist pin: gcell of its position, index of its layer.
  int pinNode(const Netlist& nl, const NetPin& pin) const;

  // --- wire edges ---------------------------------------------------------
  // Wire edge id e(l,x,y): from (x,y,l) to (x+1,y,l) on horizontal layers,
  // to (x,y+1,l) on vertical ones. Edges whose "to" node would be out of
  // bounds have capacity 0.
  int numWireEdges() const { return nl_ * nx_ * ny_; }
  int wireEdgeId(int x, int y, int layer) const { return (layer * ny_ + y) * nx_ + x; }
  std::uint16_t wireCap(int e) const { return wireCap_[static_cast<std::size_t>(e)]; }

  // --- via edges ----------------------------------------------------------
  // Via edge id v(l,x,y): between (x,y,l) and (x,y,l+1), l in [0, nl-2].
  int numViaEdges() const { return (nl_ - 1) * nx_ * ny_; }
  int viaEdgeId(int x, int y, int lowerLayer) const {
    return (lowerLayer * ny_ + y) * nx_ + x;
  }
  std::uint16_t viaCap(int v) const { return viaCap_[static_cast<std::size_t>(v)]; }
  bool viaIsF2f(int lowerLayer) const { return beol_->cut(lowerLayer).isF2f; }

  /// Index of the F2F cut layer in this stack, or -1 for a 2D stack.
  int f2fCutLayer() const { return f2fCut_; }

 private:
  void applyObstruction(const Rect& rect, int layer);

  const Beol* beol_;
  RouteGridOptions opt_;
  GridMapping map_;
  int nx_ = 0;
  int ny_ = 0;
  int nl_ = 0;
  int f2fCut_ = -1;
  std::vector<std::uint16_t> wireCap_;
  std::vector<std::uint16_t> viaCap_;
  // Fractional blockage accumulators used during construction.
  std::vector<float> wireBlocked_;
  std::vector<float> viaBlocked_;
};

}  // namespace m3d
