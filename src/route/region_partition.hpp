#pragma once

/// \file region_partition.hpp
/// Deterministic rectangular sharding of the routing gcell plane.
///
/// The partition is a pure function of the grid dimensions and the region
/// size knob (RouterOptions::regionSizeGcells) -- never of the thread count
/// or the schedule -- so the region-parallel negotiation built on top of it
/// inherits the repo-wide bit-identity contract for free. Regions tile the
/// plane exactly: nx/size columns by ny/size rows (floor division, at least
/// one each), with the last column/row absorbing the remainder so every
/// gcell belongs to exactly one region.

#include <vector>

namespace m3d {

/// Inclusive gcell bounds of one region.
struct RegionRect {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
};

class RegionPartition {
 public:
  /// Builds the partition for an \p nx by \p ny gcell plane with nominal
  /// region edge \p regionSizeGcells (clamped to >= 1). All layers share
  /// the same 2D partition: vias stay within their gcell column.
  static RegionPartition make(int nx, int ny, int regionSizeGcells);

  int numRegions() const { return nrx_ * nry_; }
  int numRegionsX() const { return nrx_; }
  int numRegionsY() const { return nry_; }
  int gridNx() const { return nx_; }
  int gridNy() const { return ny_; }
  int regionSize() const { return size_; }

  /// Region owning gcell (x, y). The last column/row absorbs the remainder.
  int regionOfGcell(int x, int y) const {
    const int rx = x / size_ < nrx_ - 1 ? x / size_ : nrx_ - 1;
    const int ry = y / size_ < nry_ - 1 ? y / size_ : nry_ - 1;
    return rx + nrx_ * ry;
  }

  /// Inclusive gcell bounds of region \p r.
  RegionRect bounds(int r) const {
    const int rx = r % nrx_;
    const int ry = r / nrx_;
    RegionRect b;
    b.x0 = rx * size_;
    b.y0 = ry * size_;
    b.x1 = rx == nrx_ - 1 ? nx_ - 1 : (rx + 1) * size_ - 1;
    b.y1 = ry == nry_ - 1 ? ny_ - 1 : (ry + 1) * size_ - 1;
    return b;
  }

  /// Region containing the whole inclusive gcell box, or -1 when the box
  /// crosses a region boundary (both corners decide: the box is axis
  /// aligned and regions are axis-aligned rectangles, so corner agreement
  /// implies containment).
  int regionOfBox(int x0, int y0, int x1, int y1) const {
    const int a = regionOfGcell(x0, y0);
    return a == regionOfGcell(x1, y1) ? a : -1;
  }

 private:
  int nx_ = 1;
  int ny_ = 1;
  int size_ = 1;
  int nrx_ = 1;
  int nry_ = 1;
};

}  // namespace m3d
