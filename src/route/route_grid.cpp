#include "route/route_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace m3d {

RouteGrid::RouteGrid(const Netlist& nl, const Rect& die, const Beol& beol,
                     const RouteGridOptions& opt)
    : beol_(&beol), opt_(opt), map_(die, opt.gcellSize) {
  nx_ = map_.nx();
  ny_ = map_.ny();
  nl_ = beol.numMetals();
  if (auto f2f = beol.f2fCutIndex()) f2fCut_ = *f2f;

  // Base capacities.
  wireCap_.assign(static_cast<std::size_t>(numWireEdges()), 0);
  viaCap_.assign(static_cast<std::size_t>(numViaEdges()), 0);
  wireBlocked_.assign(wireCap_.size(), 0.0f);
  viaBlocked_.assign(viaCap_.size(), 0.0f);

  for (int l = 0; l < nl_; ++l) {
    const MetalLayer& m = beol.metal(l);
    const double util = (l == 0) ? opt_.m1Utilization : opt_.trackUtilization;
    const int tracks = static_cast<int>(
        static_cast<double>(opt_.gcellSize) / static_cast<double>(m.pitch) * util);
    const bool horiz = m.dir == LayerDir::kHorizontal;
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        const bool valid = horiz ? (x + 1 < nx_) : (y + 1 < ny_);
        wireCap_[static_cast<std::size_t>(wireEdgeId(x, y, l))] =
            valid ? static_cast<std::uint16_t>(std::min(tracks, 65535)) : 0;
      }
    }
  }
  for (int l = 0; l + 1 < nl_; ++l) {
    const CutLayer& c = beol.cut(l);
    const double perSide = static_cast<double>(opt_.gcellSize) / static_cast<double>(c.pitch);
    const int sites = static_cast<int>(perSide * perSide * opt_.viaUtilization);
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        viaCap_[static_cast<std::size_t>(viaEdgeId(x, y, l))] =
            static_cast<std::uint16_t>(std::clamp(sites, 0, 65535));
      }
    }
  }

  // Macro obstructions.
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    const CellType& cell = nl.cellOf(i);
    if (!cell.isMacro()) continue;
    for (const Obstruction& o : cell.obstructions) {
      const auto layer = beol.findMetal(o.layer);
      if (!layer) continue;  // obstruction layer absent from this stack
      applyObstruction(o.rect.translated(inst.pos), *layer);
    }
  }

  // Convert fractional blockage into reduced capacities.
  for (std::size_t e = 0; e < wireCap_.size(); ++e) {
    const float frac = std::min(1.0f, wireBlocked_[e]);
    wireCap_[e] = static_cast<std::uint16_t>(
        std::max(0.0f, std::round(static_cast<float>(wireCap_[e]) * (1.0f - frac))));
  }
  for (std::size_t v = 0; v < viaCap_.size(); ++v) {
    const float frac = std::min(1.0f, viaBlocked_[v]);
    viaCap_[v] = static_cast<std::uint16_t>(
        std::max(0.0f, std::round(static_cast<float>(viaCap_[v]) * (1.0f - frac))));
  }
  wireBlocked_.clear();
  wireBlocked_.shrink_to_fit();
  viaBlocked_.clear();
  viaBlocked_.shrink_to_fit();
}

void RouteGrid::applyObstruction(const Rect& rect, int layer) {
  const int x0 = map_.xIndex(rect.xlo);
  const int x1 = map_.xIndex(rect.xhi - 1);
  const int y0 = map_.yIndex(rect.ylo);
  const int y1 = map_.yIndex(rect.yhi - 1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const Rect cellRect = map_.cellRect(x, y);
      const Rect inter = rect.intersection(cellRect);
      if (inter.isEmpty() || cellRect.area() == 0) continue;
      const float frac = static_cast<float>(static_cast<double>(inter.area()) /
                                            static_cast<double>(cellRect.area()));
      // Wire tracks on the obstructed layer are consumed.
      wireBlocked_[static_cast<std::size_t>(wireEdgeId(x, y, layer))] += frac;
      // The via toward the macro's substrate is consumed by the macro's
      // internal wiring; the via toward the die's top metal stays available
      // for pin access. In a flipped combined stack the macro-die substrate
      // sits at the *top* of the stack, so the blocked direction inverts.
      const bool substrateAbove =
          beol_->macroDieFlipped() && beol_->metal(layer).die == DieId::kMacro;
      if (substrateAbove) {
        if (layer + 1 < nl_) {
          viaBlocked_[static_cast<std::size_t>(viaEdgeId(x, y, layer))] += frac;
        }
      } else if (layer > 0) {
        viaBlocked_[static_cast<std::size_t>(viaEdgeId(x, y, layer - 1))] += frac;
      }
    }
  }
}

int RouteGrid::pinNode(const Netlist& nl, const NetPin& pin) const {
  const Point p = nl.pinPosition(pin);
  const std::string& layerName = nl.pinLayer(pin);
  const auto layer = beol_->findMetal(layerName);
  assert(layer.has_value() && "pin layer missing from routing stack");
  const int x = map_.xIndex(p.x);
  const int y = map_.yIndex(p.y);
  return nodeId(x, y, *layer);
}

}  // namespace m3d
