#include "route/region_partition.hpp"

#include <algorithm>

namespace m3d {

RegionPartition RegionPartition::make(int nx, int ny, int regionSizeGcells) {
  RegionPartition p;
  p.nx_ = std::max(1, nx);
  p.ny_ = std::max(1, ny);
  p.size_ = std::max(1, regionSizeGcells);
  // Floor division: a trailing sliver narrower than size_ merges into the
  // last full column/row instead of forming an undersized region of its own.
  p.nrx_ = std::max(1, p.nx_ / p.size_);
  p.nry_ = std::max(1, p.ny_ / p.size_);
  return p;
}

}  // namespace m3d
