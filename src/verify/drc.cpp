/// \file drc.cpp
/// DRC checker family: independent capacity recomputation from committed
/// segments, geometric short detection against the physical track grid,
/// off-grid/off-direction segment checks, and fully-obstructed-gcell usage.

#include <algorithm>
#include <utility>

#include "core/parallel.hpp"
#include "geom/spatial_index.hpp"
#include "verify/checkers.hpp"

namespace m3d::verify_detail {

namespace {

/// Grain constants are part of the deterministic algorithm (chunk layout
/// must not depend on the machine), not tuning knobs.
constexpr std::int64_t kNetGrain = 64;

struct EdgeXY {
  int x;
  int y;
  int layer;
};

EdgeXY splitEdge(const RouteGrid& grid, int e) {
  const int plane = grid.nx() * grid.ny();
  return EdgeXY{e % plane % grid.nx(), e % plane / grid.nx(), e / plane};
}

Rect gcellRect(const RouteGrid& grid, int x, int y) { return grid.mapping().cellRect(x, y); }

std::string layerName(const RouteGrid& grid, int metal) { return grid.beol().metal(metal).name; }

std::string cutName(const RouteGrid& grid, int cut) { return grid.beol().cut(cut).name; }

/// True when \p s is a legal grid hop; fills \p edge with the resource it
/// consumes (wire edge id or via edge id).
bool isLegalHop(const RouteGrid& grid, const RouteSeg& s, int* edge) {
  if (s.fromNode < 0 || s.fromNode >= grid.numNodes() || s.toNode < 0 ||
      s.toNode >= grid.numNodes()) {
    return false;
  }
  const int lf = grid.nodeLayer(s.fromNode);
  const int lt = grid.nodeLayer(s.toNode);
  const int dx = grid.nodeX(s.toNode) - grid.nodeX(s.fromNode);
  const int dy = grid.nodeY(s.toNode) - grid.nodeY(s.fromNode);
  if (s.isVia) {
    if (dx != 0 || dy != 0) return false;
    if (std::abs(lf - lt) != 1 || s.layer != std::min(lf, lt)) return false;
    *edge = grid.viaEdgeId(grid.nodeX(s.fromNode), grid.nodeY(s.fromNode), s.layer);
    return true;
  }
  if (lf != lt || s.layer != lf) return false;
  const bool horizontal = grid.layerHorizontal(s.layer);
  if (horizontal ? (dy != 0 || std::abs(dx) != 1) : (dx != 0 || std::abs(dy) != 1)) {
    return false;
  }
  *edge = std::min(s.fromNode, s.toNode);  // wire edge id == low-end node id.
  return true;
}

}  // namespace

int physicalTracks(const RouteGrid& grid, int layer) {
  const Rect cell = grid.mapping().cellRect(0, 0);
  const Dbu span = grid.layerHorizontal(layer) ? cell.height() : cell.width();
  const Dbu pitch = std::max<Dbu>(1, grid.beol().metal(layer).pitch);
  return std::max(1, static_cast<int>(span / pitch));
}

void checkDrc(const Ctx& ctx, VerifyReport& rep) {
  const RouteGrid& grid = ctx.grid;
  const Netlist& nl = ctx.nl;
  const RoutingResult& routes = ctx.routes;

  // --- Per-segment geometry: off-grid hops + fully-obstructed usage. -------
  // Deterministic parallel scan over nets; partial violation lists are
  // folded in ascending chunk order.
  const std::int64_t numNets = static_cast<std::int64_t>(routes.nets.size());
  std::vector<Violation> segViolations = par::parallelReduce(
      std::int64_t{0}, numNets, kNetGrain, std::vector<Violation>{},
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<Violation> part;
        for (std::int64_t n = lo; n < hi; ++n) {
          for (const RouteSeg& s : routes.nets[static_cast<std::size_t>(n)].segs) {
            int edge = -1;
            if (!isLegalHop(grid, s, &edge)) {
              Violation v;
              v.kind = ViolationKind::kOffGrid;
              v.net = static_cast<NetId>(n);
              v.layer = s.layer;
              if (s.fromNode >= 0 && s.fromNode < grid.numNodes()) {
                v.rect = gcellRect(grid, grid.nodeX(s.fromNode), grid.nodeY(s.fromNode));
              }
              v.detail = "net " + nl.net(static_cast<NetId>(n)).name +
                         (s.isVia ? " via" : " wire") + " seg " +
                         std::to_string(s.fromNode) + "->" + std::to_string(s.toNode) +
                         " is not a legal grid hop";
              part.push_back(std::move(v));
              continue;
            }
            const int cap = s.isVia ? grid.viaCap(edge) : grid.wireCap(edge);
            if (cap == 0) {
              const EdgeXY at = splitEdge(grid, edge);
              Violation v;
              v.kind = ViolationKind::kMacroObstruction;
              v.net = static_cast<NetId>(n);
              v.layer = s.layer;
              v.rect = gcellRect(grid, at.x, at.y);
              v.detail = "net " + nl.net(static_cast<NetId>(n)).name +
                         (s.isVia ? " via through obstructed cut "
                                  : " wire through obstructed gcell on ") +
                         (s.isVia ? cutName(grid, s.layer) : layerName(grid, s.layer));
              part.push_back(std::move(v));
            }
          }
        }
        return part;
      },
      [](std::vector<Violation> acc, std::vector<Violation> part) {
        acc.insert(acc.end(), std::move_iterator(part.begin()), std::move_iterator(part.end()));
        return acc;
      },
      ctx.opt.numThreads);
  for (Violation& v : segViolations) rep.violations.push_back(std::move(v));

  // --- Independent capacity recomputation (never trusts the router). -------
  std::vector<std::uint32_t> wireUse(static_cast<std::size_t>(grid.numWireEdges()), 0);
  std::vector<std::uint32_t> viaUse(static_cast<std::size_t>(grid.numViaEdges()), 0);
  std::vector<std::pair<int, NetId>> wireEdgeNets;  // for the short check.
  for (NetId n = 0; n < static_cast<NetId>(routes.nets.size()); ++n) {
    for (const RouteSeg& s : routes.nets[static_cast<std::size_t>(n)].segs) {
      int edge = -1;
      if (!isLegalHop(grid, s, &edge)) continue;  // flagged above
      if (s.isVia) {
        ++viaUse[static_cast<std::size_t>(edge)];
      } else {
        ++wireUse[static_cast<std::size_t>(edge)];
        wireEdgeNets.push_back({edge, n});
      }
    }
  }
  for (int e = 0; e < grid.numWireEdges(); ++e) {
    const int over =
        static_cast<int>(wireUse[static_cast<std::size_t>(e)]) - static_cast<int>(grid.wireCap(e));
    if (over <= 0) continue;
    ++rep.recomputedOverflowedEdges;
    rep.recomputedTotalOverflow += over;
    const EdgeXY at = splitEdge(grid, e);
    Violation v;
    v.kind = ViolationKind::kCapacityOverflow;
    v.layer = at.layer;
    v.rect = gcellRect(grid, at.x, at.y);
    v.detail = "gcell (" + std::to_string(at.x) + "," + std::to_string(at.y) + ") on " +
               layerName(grid, at.layer) + ": use=" +
               std::to_string(wireUse[static_cast<std::size_t>(e)]) +
               " cap=" + std::to_string(grid.wireCap(e));
    rep.violations.push_back(std::move(v));
  }
  for (int e = 0; e < grid.numViaEdges(); ++e) {
    const int over =
        static_cast<int>(viaUse[static_cast<std::size_t>(e)]) - static_cast<int>(grid.viaCap(e));
    if (over <= 0) continue;
    ++rep.recomputedOverflowedEdges;
    rep.recomputedTotalOverflow += over;
    const EdgeXY at = splitEdge(grid, e);
    Violation v;
    v.kind = ViolationKind::kCapacityOverflow;
    v.layer = at.layer;
    v.rect = gcellRect(grid, at.x, at.y);
    v.detail = "gcell (" + std::to_string(at.x) + "," + std::to_string(at.y) + ") cut " +
               cutName(grid, at.layer) + ": use=" +
               std::to_string(viaUse[static_cast<std::size_t>(e)]) +
               " cap=" + std::to_string(grid.viaCap(e));
    rep.violations.push_back(std::move(v));
  }

  // --- Shorts: distinct nets vs the physical (underated) track count. ------
  // A single overfull gcell is not yet a proven short: detail routing can
  // detour a wire through the perpendicular neighbor gcells on the same
  // layer (that risk is already reported as kCapacityOverflow). Only when
  // the whole 3-gcell detour window is over its physical track count does
  // the pigeonhole argument become escape-proof and the short error-grade.
  // Wrap-around track assignment inside the gcell realizes the overfill as
  // overlapping wire rects; the RectIndex query is the geometric witness.
  std::sort(wireEdgeNets.begin(), wireEdgeNets.end());
  wireEdgeNets.erase(std::unique(wireEdgeNets.begin(), wireEdgeNets.end()), wireEdgeNets.end());
  // (edge, distinct-net count), sorted by edge -- random access for windows.
  std::vector<std::pair<int, int>> distinctPerEdge;
  for (std::size_t i = 0; i < wireEdgeNets.size();) {
    std::size_t j = i;
    while (j < wireEdgeNets.size() && wireEdgeNets[j].first == wireEdgeNets[i].first) ++j;
    distinctPerEdge.push_back({wireEdgeNets[i].first, static_cast<int>(j - i)});
    i = j;
  }
  const auto distinctAt = [&](int x, int y, int layer) {
    const int e = (layer * grid.ny() + y) * grid.nx() + x;  // wire edge id.
    const auto it = std::lower_bound(distinctPerEdge.begin(), distinctPerEdge.end(),
                                     std::pair<int, int>{e, 0});
    return (it != distinctPerEdge.end() && it->first == e) ? it->second : 0;
  };
  for (std::size_t i = 0; i < wireEdgeNets.size();) {
    std::size_t j = i;
    while (j < wireEdgeNets.size() && wireEdgeNets[j].first == wireEdgeNets[i].first) ++j;
    const int e = wireEdgeNets[i].first;
    const int distinct = static_cast<int>(j - i);
    const EdgeXY at = splitEdge(grid, e);
    const int tracks = physicalTracks(grid, at.layer);
    bool escapeProof = distinct > tracks;
    if (escapeProof) {
      int windowDistinct = distinct;
      int windowTracks = tracks;
      const bool horizontal = grid.layerHorizontal(at.layer);
      for (int d = -1; d <= 1; d += 2) {
        const int nxt = horizontal ? at.x : at.x + d;
        const int nyt = horizontal ? at.y + d : at.y;
        if (nxt < 0 || nxt >= grid.nx() || nyt < 0 || nyt >= grid.ny()) continue;
        windowTracks += tracks;
        windowDistinct += distinctAt(nxt, nyt, at.layer);
      }
      escapeProof = windowDistinct > windowTracks;
    }
    if (escapeProof) {
      const Rect cell = gcellRect(grid, at.x, at.y);
      const MetalLayer& metal = grid.beol().metal(at.layer);
      const Dbu pitch = std::max<Dbu>(1, metal.pitch);
      const Dbu width = std::max<Dbu>(1, metal.width);
      const bool horizontal = grid.layerHorizontal(at.layer);
      RectIndex tracksUsed(cell, pitch);
      for (std::size_t k = i; k < j; ++k) {
        const int track = static_cast<int>(k - i) % tracks;
        const Rect r = horizontal
                           ? Rect{cell.xlo, cell.ylo + track * pitch, cell.xhi,
                                  cell.ylo + track * pitch + width}
                           : Rect{cell.xlo + track * pitch, cell.ylo,
                                  cell.xlo + track * pitch + width, cell.yhi};
        const std::vector<std::int32_t> hit = tracksUsed.queryOverlapping(r);
        if (!hit.empty()) {
          Violation v;
          v.kind = ViolationKind::kShort;
          v.net = wireEdgeNets[k].second;
          v.otherNet = static_cast<NetId>(hit.front());
          v.layer = at.layer;
          v.rect = r;
          v.detail = "nets " + nl.net(v.net).name + " and " + nl.net(v.otherNet).name +
                     " share a track on " + metal.name + " in gcell (" +
                     std::to_string(at.x) + "," + std::to_string(at.y) + "): " +
                     std::to_string(distinct) + " nets on " + std::to_string(tracks) +
                     " physical tracks, detour window exhausted";
          rep.violations.push_back(std::move(v));
        }
        tracksUsed.insert(wireEdgeNets[k].second, r);
      }
    }
    i = j;
  }
}

}  // namespace m3d::verify_detail
