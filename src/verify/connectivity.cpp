/// \file connectivity.cpp
/// Connectivity / LVS-lite checker: each net's committed route segments must
/// form a single connected component that touches every pin's projected grid
/// node. Catches opens (deleted/missing segments, stacked-via gaps) and
/// dangling route geometry, independent of the router's bookkeeping.

#include <algorithm>
#include <utility>

#include "core/parallel.hpp"
#include "verify/checkers.hpp"

namespace m3d::verify_detail {

namespace {

constexpr std::int64_t kNetGrain = 64;

/// Union-find over a small, sorted node universe.
struct NetGraph {
  std::vector<int> nodes;   // sorted unique node ids
  std::vector<int> parent;  // per index into nodes

  int indexOf(int node) const {
    const auto it = std::lower_bound(nodes.begin(), nodes.end(), node);
    if (it == nodes.end() || *it != node) return -1;
    return static_cast<int>(it - nodes.begin());
  }
  int find(int i) {
    while (parent[static_cast<std::size_t>(i)] != i) {
      parent[static_cast<std::size_t>(i)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(i)])];
      i = parent[static_cast<std::size_t>(i)];
    }
    return i;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }
};

Rect pinRect(const Netlist& nl, const NetPin& p) {
  const Point at = nl.pinPosition(p);
  return Rect{at.x, at.y, at.x, at.y};
}

/// Grid nodes a pin may legally attach to.
///
/// Standard-cell pins project at cell-footprint granularity: the detail
/// router can reach a pin from any gcell the instance overlaps, and
/// post-route in-place resizing legitimately shifts pin offsets within the
/// frozen footprint after routes are committed -- a route that enters any
/// footprint gcell still connects the pin. Macro pins are never resized, so
/// they keep exact point projection; for them (and ports) only the
/// closed-interval boundary tolerance applies: a pin sitting exactly on a
/// gcell boundary belongs to every adjacent gcell, and quantization must not
/// turn such pins into opens.
std::vector<int> pinCandidateNodes(const Netlist& nl, const RouteGrid& grid, const NetPin& p) {
  const GridMapping& map = grid.mapping();
  const int primary = grid.pinNode(nl, p);
  const int layer = grid.nodeLayer(primary);
  const int ix = grid.nodeX(primary);
  const int iy = grid.nodeY(primary);

  Rect span;  // closed region whose overlapped gcells are all legal.
  if (p.kind == NetPin::Kind::kInstPin && !nl.cellOf(p.inst).isMacro()) {
    const Instance& inst = nl.instance(p.inst);
    const CellType& ct = nl.cellOf(p.inst);
    span = Rect{inst.pos.x, inst.pos.y, inst.pos.x + ct.width, inst.pos.y + ct.height};
  } else {
    const Point at = nl.pinPosition(p);
    span = Rect{at.x, at.y, at.x, at.y};
  }

  int ixLo = map.xIndex(span.xlo);
  int iyLo = map.yIndex(span.ylo);
  const int ixHi = std::max(ixLo, map.xIndex(span.xhi));
  const int iyHi = std::max(iyLo, map.yIndex(span.yhi));
  // Closed gcell rects: a span edge exactly on a gcell's low boundary also
  // belongs to the previous gcell.
  if (ixLo > 0 && map.cellRect(ixLo, iyLo).xlo == span.xlo) --ixLo;
  if (iyLo > 0 && map.cellRect(ixLo, iyLo).ylo == span.ylo) --iyLo;

  std::vector<int> out{primary};
  for (int gy = iyLo; gy <= iyHi; ++gy) {
    for (int gx = ixLo; gx <= ixHi; ++gx) {
      if (gx == ix && gy == iy) continue;  // primary already present.
      out.push_back(grid.nodeId(gx, gy, layer));
    }
  }
  return out;
}

std::string pinDesc(const Netlist& nl, const NetPin& p) {
  if (p.kind == NetPin::Kind::kPort) return "port " + nl.port(p.port).name;
  return nl.instance(p.inst).name + "/" + nl.cellOf(p.inst).pins[static_cast<std::size_t>(p.libPin)].name;
}

void checkNet(const Ctx& ctx, NetId n, std::vector<Violation>& out) {
  const Netlist& nl = ctx.nl;
  const RouteGrid& grid = ctx.grid;
  const Net& net = nl.net(n);
  if (net.pins.size() < 2) return;  // the router skips degenerate nets.
  const NetRoute& route = ctx.routes.nets[static_cast<std::size_t>(n)];

  if (!route.routed) {
    Violation v;
    v.kind = ViolationKind::kUnroutedNet;
    v.net = n;
    Rect bbox = Rect::makeEmpty();
    for (const NetPin& p : net.pins) bbox.expandToInclude(nl.pinPosition(p));
    v.rect = bbox;
    v.detail = "net " + net.name + " (" + std::to_string(net.pins.size()) +
               " pins) has no committed route";
    out.push_back(std::move(v));
    return;
  }

  std::vector<std::vector<int>> pinNodes;
  pinNodes.reserve(net.pins.size());
  for (const NetPin& p : net.pins) pinNodes.push_back(pinCandidateNodes(nl, grid, p));
  const auto sharesNode = [](const std::vector<int>& a, const std::vector<int>& b) {
    for (int x : a) {
      if (std::find(b.begin(), b.end(), x) != b.end()) return true;
    }
    return false;
  };

  if (route.segs.empty()) {
    // Legal only when every pin projects to one grid node.
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      if (sharesNode(pinNodes[k], pinNodes[0])) continue;
      Violation v;
      v.kind = ViolationKind::kOpen;
      v.net = n;
      if (net.pins[k].kind == NetPin::Kind::kInstPin) v.cell = net.pins[k].inst;
      v.layer = grid.nodeLayer(pinNodes[k].front());
      v.rect = pinRect(nl, net.pins[k]);
      v.detail = "net " + net.name + ": pin " + pinDesc(nl, net.pins[k]) +
                 " is not co-located with the (segment-free) net";
      out.push_back(std::move(v));
    }
    return;
  }

  NetGraph g;
  g.nodes.reserve(route.segs.size() * 2);
  for (const RouteSeg& s : route.segs) {
    g.nodes.push_back(s.fromNode);
    g.nodes.push_back(s.toNode);
  }
  std::sort(g.nodes.begin(), g.nodes.end());
  g.nodes.erase(std::unique(g.nodes.begin(), g.nodes.end()), g.nodes.end());
  g.parent.resize(g.nodes.size());
  for (std::size_t i = 0; i < g.parent.size(); ++i) g.parent[i] = static_cast<int>(i);
  for (const RouteSeg& s : route.segs) {
    g.unite(g.indexOf(s.fromNode), g.indexOf(s.toNode));
  }

  // Every pin must land on the route graph, in one shared component. A pin
  // counts as touched when any of its candidate nodes is on the graph, and
  // as connected when any candidate's component matches the anchor.
  int anchorRoot = -1;
  std::vector<bool> rootHasPin(g.nodes.size(), false);
  for (std::size_t k = 0; k < net.pins.size(); ++k) {
    std::vector<int> roots;
    for (int node : pinNodes[k]) {
      const int idx = g.indexOf(node);
      if (idx >= 0) roots.push_back(g.find(idx));
    }
    if (roots.empty()) {
      Violation v;
      v.kind = ViolationKind::kOpen;
      v.net = n;
      if (net.pins[k].kind == NetPin::Kind::kInstPin) v.cell = net.pins[k].inst;
      v.layer = grid.nodeLayer(pinNodes[k].front());
      v.rect = pinRect(nl, net.pins[k]);
      v.detail = "net " + net.name + ": pin " + pinDesc(nl, net.pins[k]) +
                 " is not touched by any route segment (open)";
      out.push_back(std::move(v));
      continue;
    }
    for (int root : roots) rootHasPin[static_cast<std::size_t>(root)] = true;
    if (anchorRoot < 0) {
      anchorRoot = roots.front();
    } else if (std::find(roots.begin(), roots.end(), anchorRoot) == roots.end()) {
      Violation v;
      v.kind = ViolationKind::kOpen;
      v.net = n;
      if (net.pins[k].kind == NetPin::Kind::kInstPin) v.cell = net.pins[k].inst;
      v.layer = grid.nodeLayer(pinNodes[k].front());
      v.rect = pinRect(nl, net.pins[k]);
      v.detail = "net " + net.name + ": pin " + pinDesc(nl, net.pins[k]) +
                 " sits on a route island disconnected from the net tree (open)";
      out.push_back(std::move(v));
    }
  }

  // Components that touch no pin are stray geometry.
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const int root = g.find(static_cast<int>(i));
    if (root != static_cast<int>(i)) continue;  // one report per component
    if (rootHasPin[static_cast<std::size_t>(root)]) continue;
    Violation v;
    v.kind = ViolationKind::kDanglingSegment;
    v.net = n;
    v.layer = grid.nodeLayer(g.nodes[i]);
    v.rect = grid.mapping().cellRect(grid.nodeX(g.nodes[i]), grid.nodeY(g.nodes[i]));
    v.detail = "net " + net.name + ": route component at node " +
               std::to_string(g.nodes[i]) + " touches no pin of the net";
    out.push_back(std::move(v));
  }
}

}  // namespace

void checkConnectivity(const Ctx& ctx, VerifyReport& rep) {
  const std::int64_t numNets = static_cast<std::int64_t>(ctx.routes.nets.size());
  std::vector<Violation> found = par::parallelReduce(
      std::int64_t{0}, numNets, kNetGrain, std::vector<Violation>{},
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<Violation> part;
        for (std::int64_t n = lo; n < hi; ++n) {
          checkNet(ctx, static_cast<NetId>(n), part);
        }
        return part;
      },
      [](std::vector<Violation> acc, std::vector<Violation> part) {
        acc.insert(acc.end(), std::move_iterator(part.begin()), std::move_iterator(part.end()));
        return acc;
      },
      ctx.opt.numThreads);
  for (Violation& v : found) rep.violations.push_back(std::move(v));
}

}  // namespace m3d::verify_detail
