#pragma once

/// \file verify.hpp
/// Independent physical-verification (signoff) engine.
///
/// The flows in this library self-report health (router overflow counters,
/// legalizer diagnostics), but the paper's headline claim -- the combined
/// double-die BEOL makes an unmodified 2D engine's output *directly valid*
/// for the F2F-stacked 3D IC (Sec. IV) -- deserves an auditor that does not
/// trust the tools it audits. verifyDesign() recomputes everything from the
/// committed design data (placement + route segments + the combined stack)
/// and reports structured violations in four checker families:
///
///  - DRC: geometric shorts (distinct nets exceeding the *physical* track
///    count of a gcell, confirmed by track-rect overlap in a RectIndex),
///    off-grid/off-direction segments, routing through fully obstructed
///    gcells, and per-edge capacity recomputed from committed segments
///    (never read from the router's incremental accounting).
///  - Connectivity / LVS-lite: each net's route graph must form one
///    connected component touching every pin's projected grid node --
///    catches opens and stacked-via gaps the router's own bookkeeping
///    cannot see.
///  - Placement legality: row/site alignment, core containment, keepout
///    (hard blockage) violations, per-row cell overlaps, macro containment
///    and macro-macro overlaps per die.
///  - 3D F2F interface: every logic<->macro-die net crosses the bond layer
///    through F2F_VIA cuts, cuts fit the physical bump-site grid of their
///    gcell, macro-die ("_MD") layer segments on purely-logic nets are
///    flagged (resource borrowing -- the paper's routability benefit --
///    is accounted, not hidden), and per-net F2F bump counts are collected
///    for the Table-IV comparison.
///
/// Severity calibration: a healthy PathFinder result legitimately carries
/// residual *global-route* overflow (usage > derated capacity) -- that is
/// detail-routing risk, not a proven failure -- so recomputed capacity
/// overflow grades as a warning. Errors are reserved for situations with no
/// physical escape: a short is error-grade only when distinct nets exceed
/// the physical (underated) track count of a gcell AND the perpendicular
/// 3-gcell detour window is also out of tracks (single-gcell overfill can
/// still be detoured by detail routing and stays inside the congestion
/// warning); bump-pitch overflow analogously requires the 3x3 gcell window
/// to be out of bump sites. Opens, off-grid segments, and illegal placement
/// are always errors. clean() therefore means "zero errors"; warnings are
/// reported and counted but do not fail signoff.
///
/// Determinism: every checker either runs a fixed-order sequential scan or
/// a par::parallelReduce whose chunking is a pure function of the range and
/// a fixed grain, with partials folded in ascending chunk order -- the
/// VerifyReport is bit-identical at any thread count.

#include <cstdint>
#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "geom/rect.hpp"
#include "netlist/netlist.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"

namespace m3d {

/// Checker family a violation kind belongs to.
enum class CheckFamily { kDrc, kConnectivity, kPlacement, kF2f };

enum class Severity { kError, kWarning };

enum class ViolationKind {
  // DRC
  kShort,              ///< distinct nets exceed the physical tracks of a gcell
                       ///< and of its perpendicular detour window.
  kOffGrid,            ///< segment not a legal grid hop (direction/adjacency).
  kMacroObstruction,   ///< segment through a fully obstructed (cap-0) gcell.
  kCapacityOverflow,   ///< recomputed usage > derated capacity (congestion).
  // Connectivity / LVS-lite
  kOpen,               ///< pin not reached by the net's route graph.
  kDanglingSegment,    ///< route component touching no pin of its net.
  kUnroutedNet,        ///< multi-pin net with no committed route.
  // Placement legality
  kCellOverlap,
  kOffRow,
  kOffSite,
  kOutsideCore,
  kKeepout,            ///< standard cell inside a hard (density>=0.99) blockage.
  // 3D F2F interface
  kMissingF2fCrossing, ///< logic<->macro-die net without an F2F via.
  kBumpPitchOverflow,  ///< more F2F cuts than bump sites in a gcell's 3x3 window.
  kMacroDieLayerLeak,  ///< _MD-layer segment on a net with no macro-die pin.
};

const char* violationKindName(ViolationKind k);
const char* checkFamilyName(CheckFamily f);
CheckFamily familyOf(ViolationKind k);
Severity severityOf(ViolationKind k);

/// One violation. Payload fields are filled where meaningful for the kind
/// (kInvalidId / -1 / empty rect otherwise); \p detail is a human-readable
/// one-liner naming the objects involved.
struct Violation {
  ViolationKind kind = ViolationKind::kShort;
  NetId net = kInvalidId;       ///< offending net.
  NetId otherNet = kInvalidId;  ///< second net (shorts).
  InstId cell = kInvalidId;     ///< offending instance (placement, opens).
  int layer = -1;               ///< metal index (wire kinds) / cut index (via kinds).
  Rect rect = Rect::makeEmpty();///< die-coordinate region of the violation.
  std::string detail;

  friend bool operator==(const Violation&, const Violation&) = default;
};

struct VerifyOptions {
  // Per-family toggles (fault-injection tests scope a run to one family).
  bool drc = true;
  bool connectivity = true;
  bool placement = true;
  bool f2f = true;
  /// Threads (0 = auto: M3D_THREADS env, else hardware_concurrency).
  /// Results are bit-identical at any count.
  int numThreads = 0;
  /// Stored-violation cap per kind (full counts are always kept; the list
  /// is truncated deterministically in emission order).
  int maxViolationsPerKind = 1000;
};

struct VerifyReport {
  /// Deterministic order: family order (DRC, connectivity, placement, F2F),
  /// fixed scan order within each family. Truncated per kind at
  /// VerifyOptions::maxViolationsPerKind; errors/warnings count everything.
  std::vector<Violation> violations;
  std::int64_t errors = 0;
  std::int64_t warnings = 0;

  // Independent recomputations (oracles for the router's own accounting).
  int recomputedOverflowedEdges = 0;
  std::int64_t recomputedTotalOverflow = 0;
  std::int64_t f2fBumpCount = 0;             ///< total F2F via crossings.
  std::vector<std::int64_t> f2fBumpsPerNet;  ///< indexed by NetId; empty on 2D stacks.

  /// Signoff verdict: no error-grade violations (warnings allowed).
  bool clean() const { return errors == 0; }
  /// Stored violations of \p k (post-truncation).
  int countOf(ViolationKind k) const;
  /// "CLEAN" / "VIOLATIONS(errors=..., warnings=...)" one-liner.
  std::string verdictLine() const;
  /// Multi-line human-readable summary (up to \p maxLines violations).
  std::string summaryText(std::size_t maxLines = 12) const;

  friend bool operator==(const VerifyReport&, const VerifyReport&) = default;
};

/// Verifies the committed design: placement in \p nl / \p fp, routing in
/// \p routes over \p grid (whose Beol supplies the stack, including the F2F
/// cut for combined Macro-3D stacks). Pure function of its inputs.
VerifyReport verifyDesign(const Netlist& nl, const Floorplan& fp, const RouteGrid& grid,
                          const RoutingResult& routes,
                          const VerifyOptions& opt = VerifyOptions{});

}  // namespace m3d
