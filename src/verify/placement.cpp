/// \file placement.cpp
/// Placement-legality checker: row/site alignment, core containment, hard
/// keepout (blockage) violations, per-row standard-cell overlaps, and
/// per-die macro containment/overlap. Mirrors the legalizer's legality
/// definition but reports structured violations and never trusts the
/// legalizer's own diagnostics.

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "core/parallel.hpp"
#include "geom/spatial_index.hpp"
#include "verify/checkers.hpp"

namespace m3d::verify_detail {

namespace {

constexpr std::int64_t kInstGrain = 512;

Rect cellRect(const Netlist& nl, InstId i) {
  const Instance& inst = nl.instance(i);
  const CellType& c = nl.cellOf(i);
  return Rect{inst.pos.x, inst.pos.y, inst.pos.x + c.width, inst.pos.y + c.height};
}

}  // namespace

void checkPlacement(const Ctx& ctx, VerifyReport& rep) {
  const Netlist& nl = ctx.nl;
  const Floorplan& fp = ctx.fp;

  // --- Per-cell alignment/containment/keepout (parallel, chunk-ordered). ---
  const std::int64_t numInsts = nl.numInstances();
  std::vector<Violation> cellViolations = par::parallelReduce(
      std::int64_t{0}, numInsts, kInstGrain, std::vector<Violation>{},
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<Violation> part;
        for (std::int64_t n = lo; n < hi; ++n) {
          const InstId i = static_cast<InstId>(n);
          const Instance& inst = nl.instance(i);
          const CellType& c = nl.cellOf(i);
          if (inst.fixed || c.isMacro()) continue;
          const Rect r = cellRect(nl, i);
          if ((inst.pos.y - fp.die.ylo) % fp.rowHeight != 0) {
            Violation v;
            v.kind = ViolationKind::kOffRow;
            v.cell = i;
            v.rect = r;
            v.detail = "cell " + inst.name + " y=" + std::to_string(inst.pos.y) +
                       " off the row grid (rowHeight=" + std::to_string(fp.rowHeight) + ")";
            part.push_back(std::move(v));
          }
          if ((inst.pos.x - fp.die.xlo) % fp.siteWidth != 0) {
            Violation v;
            v.kind = ViolationKind::kOffSite;
            v.cell = i;
            v.rect = r;
            v.detail = "cell " + inst.name + " x=" + std::to_string(inst.pos.x) +
                       " off the site grid (siteWidth=" + std::to_string(fp.siteWidth) + ")";
            part.push_back(std::move(v));
          }
          if (!fp.die.contains(r)) {
            Violation v;
            v.kind = ViolationKind::kOutsideCore;
            v.cell = i;
            v.rect = r;
            v.detail = "cell " + inst.name + " extends outside the core area";
            part.push_back(std::move(v));
          }
          for (const Blockage& b : fp.blockages) {
            if (b.density >= 0.99 && b.rect.overlaps(r)) {
              Violation v;
              v.kind = ViolationKind::kKeepout;
              v.cell = i;
              v.rect = b.rect.intersection(r);
              v.detail = "cell " + inst.name + " inside a hard placement blockage";
              part.push_back(std::move(v));
              break;
            }
          }
        }
        return part;
      },
      [](std::vector<Violation> acc, std::vector<Violation> part) {
        acc.insert(acc.end(), std::move_iterator(part.begin()), std::move_iterator(part.end()));
        return acc;
      },
      ctx.opt.numThreads);
  for (Violation& v : cellViolations) rep.violations.push_back(std::move(v));

  // --- Standard-cell overlaps, per row (sequential, ascending rows). -------
  std::map<int, std::vector<std::tuple<Dbu, Dbu, InstId>>> byRow;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (inst.fixed || nl.cellOf(i).isMacro()) continue;
    const Rect r = cellRect(nl, i);
    const int row = static_cast<int>((inst.pos.y - fp.die.ylo) / fp.rowHeight);
    byRow[row].push_back({r.xlo, r.xhi, i});
  }
  for (auto& [row, spans] : byRow) {
    (void)row;
    std::sort(spans.begin(), spans.end());
    for (std::size_t k = 1; k < spans.size(); ++k) {
      const auto& [aLo, aHi, aInst] = spans[k - 1];
      const auto& [bLo, bHi, bInst] = spans[k];
      (void)aLo;
      if (bLo >= aHi) continue;
      Violation v;
      v.kind = ViolationKind::kCellOverlap;
      v.cell = std::min(aInst, bInst);
      const Rect ra = cellRect(nl, aInst);
      const Rect rb = cellRect(nl, bInst);
      v.rect = ra.intersection(rb);
      v.detail = "cells " + nl.instance(aInst).name + " and " + nl.instance(bInst).name +
                 " overlap in row by " + std::to_string(std::min(aHi, bHi) - bLo) + " dbu";
      rep.violations.push_back(std::move(v));
    }
  }

  // --- Macros: containment + pairwise overlap, per physical die. -----------
  // Uses the macro's bounding extent (the silicon it occupies on its own
  // die), not the projected/shrunken substrate.
  for (const DieId die : {DieId::kLogic, DieId::kMacro}) {
    RectIndex placed(fp.die.inflated(fp.die.width() / 4),
                     std::max<Dbu>(1, fp.die.width() / 16));
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      const Instance& inst = nl.instance(i);
      if (!inst.fixed || inst.die != die || !nl.cellOf(i).isMacro()) continue;
      const Rect r = cellRect(nl, i);
      if (!fp.die.contains(r)) {
        Violation v;
        v.kind = ViolationKind::kOutsideCore;
        v.cell = i;
        v.rect = r;
        v.detail = "macro " + inst.name + " extends outside the die";
        rep.violations.push_back(std::move(v));
      }
      for (const std::int32_t other : placed.queryOverlapping(r)) {
        Violation v;
        v.kind = ViolationKind::kCellOverlap;
        v.cell = std::min<InstId>(i, other);
        v.rect = r.intersection(cellRect(nl, other));
        v.detail = "macros " + nl.instance(other).name + " and " + inst.name +
                   " overlap on the same die";
        rep.violations.push_back(std::move(v));
      }
      placed.insert(i, r);
    }
  }
}

}  // namespace m3d::verify_detail
