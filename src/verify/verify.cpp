#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/checkers.hpp"

namespace m3d {

const char* violationKindName(ViolationKind k) {
  switch (k) {
    case ViolationKind::kShort: return "short";
    case ViolationKind::kOffGrid: return "off_grid";
    case ViolationKind::kMacroObstruction: return "macro_obstruction";
    case ViolationKind::kCapacityOverflow: return "capacity_overflow";
    case ViolationKind::kOpen: return "open";
    case ViolationKind::kDanglingSegment: return "dangling_segment";
    case ViolationKind::kUnroutedNet: return "unrouted_net";
    case ViolationKind::kCellOverlap: return "cell_overlap";
    case ViolationKind::kOffRow: return "off_row";
    case ViolationKind::kOffSite: return "off_site";
    case ViolationKind::kOutsideCore: return "outside_core";
    case ViolationKind::kKeepout: return "keepout";
    case ViolationKind::kMissingF2fCrossing: return "missing_f2f_crossing";
    case ViolationKind::kBumpPitchOverflow: return "bump_pitch_overflow";
    case ViolationKind::kMacroDieLayerLeak: return "macro_die_layer_leak";
  }
  return "?";
}

const char* checkFamilyName(CheckFamily f) {
  switch (f) {
    case CheckFamily::kDrc: return "drc";
    case CheckFamily::kConnectivity: return "connectivity";
    case CheckFamily::kPlacement: return "placement";
    case CheckFamily::kF2f: return "f2f";
  }
  return "?";
}

CheckFamily familyOf(ViolationKind k) {
  switch (k) {
    case ViolationKind::kShort:
    case ViolationKind::kOffGrid:
    case ViolationKind::kMacroObstruction:
    case ViolationKind::kCapacityOverflow:
      return CheckFamily::kDrc;
    case ViolationKind::kOpen:
    case ViolationKind::kDanglingSegment:
    case ViolationKind::kUnroutedNet:
      return CheckFamily::kConnectivity;
    case ViolationKind::kCellOverlap:
    case ViolationKind::kOffRow:
    case ViolationKind::kOffSite:
    case ViolationKind::kOutsideCore:
    case ViolationKind::kKeepout:
      return CheckFamily::kPlacement;
    case ViolationKind::kMissingF2fCrossing:
    case ViolationKind::kBumpPitchOverflow:
    case ViolationKind::kMacroDieLayerLeak:
      return CheckFamily::kF2f;
  }
  return CheckFamily::kDrc;
}

Severity severityOf(ViolationKind k) {
  switch (k) {
    // Residual global-route congestion is detail-routing risk, not a proven
    // failure (see file comment in verify.hpp) -- warning. Macro-die layer
    // borrowing by logic nets is the combined stack's intended routability
    // benefit (paper Sec. IV) -- accounted as a warning, never an error.
    case ViolationKind::kCapacityOverflow:
    case ViolationKind::kMacroDieLayerLeak:
      return Severity::kWarning;
    default:
      return Severity::kError;
  }
}

int VerifyReport::countOf(ViolationKind k) const {
  int n = 0;
  for (const Violation& v : violations) n += (v.kind == k) ? 1 : 0;
  return n;
}

std::string VerifyReport::verdictLine() const {
  std::ostringstream os;
  if (clean()) {
    os << "CLEAN";
    if (warnings > 0) os << " (warnings=" << warnings << ")";
  } else {
    os << "VIOLATIONS(errors=" << errors << ", warnings=" << warnings << ")";
  }
  return os.str();
}

std::string VerifyReport::summaryText(std::size_t maxLines) const {
  std::ostringstream os;
  os << "signoff " << verdictLine() << "\n";
  std::size_t shown = 0;
  for (const Violation& v : violations) {
    if (shown >= maxLines) {
      os << "  ... " << (violations.size() - shown) << " more\n";
      break;
    }
    os << "  " << (severityOf(v.kind) == Severity::kError ? "ERROR " : "WARN  ")
       << violationKindName(v.kind) << ": " << v.detail << "\n";
    ++shown;
  }
  return os.str();
}

VerifyReport verifyDesign(const Netlist& nl, const Floorplan& fp, const RouteGrid& grid,
                          const RoutingResult& routes, const VerifyOptions& opt) {
  VerifyReport rep;
  const verify_detail::Ctx ctx{nl, fp, grid, routes, opt};

  // Fixed family order keeps the violation list deterministic.
  if (opt.drc) {
    obs::ScopedPhase phase("verify.drc");
    const std::size_t before = rep.violations.size();
    verify_detail::checkDrc(ctx, rep);
    phase.attr("violations", static_cast<double>(rep.violations.size() - before));
  }
  if (opt.connectivity) {
    obs::ScopedPhase phase("verify.connectivity");
    const std::size_t before = rep.violations.size();
    verify_detail::checkConnectivity(ctx, rep);
    phase.attr("violations", static_cast<double>(rep.violations.size() - before));
  }
  if (opt.placement) {
    obs::ScopedPhase phase("verify.placement");
    const std::size_t before = rep.violations.size();
    verify_detail::checkPlacement(ctx, rep);
    phase.attr("violations", static_cast<double>(rep.violations.size() - before));
  }
  if (opt.f2f) {
    obs::ScopedPhase phase("verify.f2f");
    const std::size_t before = rep.violations.size();
    verify_detail::checkF2f(ctx, rep);
    phase.attr("violations", static_cast<double>(rep.violations.size() - before));
  }

  // Full severity totals, then deterministic per-kind truncation.
  for (const Violation& v : rep.violations) {
    (severityOf(v.kind) == Severity::kError ? rep.errors : rep.warnings) += 1;
  }
  if (opt.maxViolationsPerKind >= 0) {
    std::map<ViolationKind, int> perKind;
    std::vector<Violation> kept;
    kept.reserve(rep.violations.size());
    for (Violation& v : rep.violations) {
      if (perKind[v.kind]++ < opt.maxViolationsPerKind) kept.push_back(std::move(v));
    }
    rep.violations = std::move(kept);
  }

  obs::counter("verify.errors").add(rep.errors);
  obs::counter("verify.warnings").add(rep.warnings);
  obs::gauge("verify.f2f_bumps").set(static_cast<double>(rep.f2fBumpCount));
  M3D_LOG(info) << "verify done: " << rep.verdictLine()
                << " recomputed_overflow=" << rep.recomputedOverflowedEdges
                << " f2f_bumps=" << rep.f2fBumpCount;
  if (!rep.clean()) {
    M3D_LOG(warn) << "\n" << rep.summaryText();
  }
  return rep;
}

}  // namespace m3d
