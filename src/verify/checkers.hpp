#pragma once

/// \file checkers.hpp
/// Internal interface between the verify orchestrator and the four checker
/// families. Each checker appends violations in a deterministic order and
/// may fill the report's recomputation fields it owns.

#include "verify/verify.hpp"

namespace m3d::verify_detail {

struct Ctx {
  const Netlist& nl;
  const Floorplan& fp;
  const RouteGrid& grid;
  const RoutingResult& routes;
  const VerifyOptions& opt;
};

void checkDrc(const Ctx& ctx, VerifyReport& rep);
void checkConnectivity(const Ctx& ctx, VerifyReport& rep);
void checkPlacement(const Ctx& ctx, VerifyReport& rep);
void checkF2f(const Ctx& ctx, VerifyReport& rep);

/// Physical (undedrated) track count of a wire-edge gcell on \p layer:
/// gcell span across the routing direction divided by the layer pitch.
int physicalTracks(const RouteGrid& grid, int layer);

}  // namespace m3d::verify_detail
