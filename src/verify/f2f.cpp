/// \file f2f.cpp
/// 3D F2F interface checker: on a combined double-die stack, every
/// logic<->macro-die net must cross the bond layer through F2F_VIA cuts,
/// the cuts of a gcell must fit its physical bump-site grid, and macro-die
/// ("_MD") layer usage by purely-logic nets is accounted (the combined
/// stack's resource borrowing -- paper Sec. IV). Also collects per-net F2F
/// bump counts for the paper's Table-IV comparison.

#include <algorithm>
#include <utility>

#include "tech/combined_beol.hpp"
#include "verify/checkers.hpp"

namespace m3d::verify_detail {

void checkF2f(const Ctx& ctx, VerifyReport& rep) {
  const RouteGrid& grid = ctx.grid;
  const Netlist& nl = ctx.nl;
  const int f2fCut = grid.f2fCutLayer();
  if (f2fCut < 0) return;  // plain 2D stack: nothing to check.

  const Beol& beol = grid.beol();
  rep.f2fBumpsPerNet.assign(ctx.routes.nets.size(), 0);
  std::vector<std::int32_t> bumpsPerGcell(
      static_cast<std::size_t>(grid.nx()) * static_cast<std::size_t>(grid.ny()), 0);

  for (NetId n = 0; n < static_cast<NetId>(ctx.routes.nets.size()); ++n) {
    const Net& net = nl.net(n);
    const NetRoute& route = ctx.routes.nets[static_cast<std::size_t>(n)];

    bool macroSide = false;
    bool logicSide = false;
    for (const NetPin& p : net.pins) {
      const bool onMacroDie =
          isMacroDieLayerName(nl.pinLayer(p)) ||
          (p.kind == NetPin::Kind::kInstPin && nl.instance(p.inst).die == DieId::kMacro);
      (onMacroDie ? macroSide : logicSide) = true;
    }

    std::int64_t bumps = 0;
    const RouteSeg* leak = nullptr;
    for (const RouteSeg& s : route.segs) {
      if (s.isVia) {
        if (s.layer == f2fCut) {
          ++bumps;
          if (s.fromNode >= 0 && s.fromNode < grid.numNodes()) {
            ++bumpsPerGcell[static_cast<std::size_t>(grid.nodeY(s.fromNode)) *
                                static_cast<std::size_t>(grid.nx()) +
                            static_cast<std::size_t>(grid.nodeX(s.fromNode))];
          }
        } else if (s.layer > f2fCut && !macroSide && leak == nullptr) {
          leak = &s;
        }
      } else if (!macroSide && leak == nullptr &&
                 beol.metal(s.layer).die == DieId::kMacro) {
        leak = &s;
      }
    }
    rep.f2fBumpsPerNet[static_cast<std::size_t>(n)] = bumps;
    rep.f2fBumpCount += bumps;

    if (macroSide && logicSide && route.routed && net.pins.size() >= 2 && bumps == 0) {
      Violation v;
      v.kind = ViolationKind::kMissingF2fCrossing;
      v.net = n;
      v.layer = f2fCut;
      Rect bbox = Rect::makeEmpty();
      for (const NetPin& p : net.pins) bbox.expandToInclude(nl.pinPosition(p));
      v.rect = bbox;
      v.detail = "net " + net.name +
                 " connects both dies but never crosses the F2F bond layer";
      rep.violations.push_back(std::move(v));
    }
    if (leak != nullptr) {
      Violation v;
      v.kind = ViolationKind::kMacroDieLayerLeak;
      v.net = n;
      v.layer = leak->layer;
      if (leak->fromNode >= 0 && leak->fromNode < grid.numNodes()) {
        v.rect = grid.mapping().cellRect(grid.nodeX(leak->fromNode),
                                         grid.nodeY(leak->fromNode));
      }
      v.detail = "logic-only net " + net.name + " borrows macro-die layer " +
                 (leak->isVia ? beol.cut(leak->layer).name : beol.metal(leak->layer).name) +
                 " (combined-stack routing resource)";
      rep.violations.push_back(std::move(v));
    }
  }

  // --- Bump-grid pitch: crossings per gcell vs physical bump sites. --------
  // A gcell slightly over its own site grid is not yet illegal: the bond
  // pad only has to land near the crossing, so detail routing can jog a
  // bump into an adjacent gcell. Error-grade only when the full 3x3 window
  // around the gcell is out of bump sites (no legal assignment exists).
  const Dbu bumpPitch = std::max<Dbu>(1, beol.cut(f2fCut).pitch);
  const auto sitesOf = [&](int x, int y) {
    const Rect cell = grid.mapping().cellRect(x, y);
    return std::max<std::int64_t>(1, (cell.width() / bumpPitch) * (cell.height() / bumpPitch));
  };
  const auto usedAt = [&](int x, int y) {
    return bumpsPerGcell[static_cast<std::size_t>(y) * static_cast<std::size_t>(grid.nx()) +
                         static_cast<std::size_t>(x)];
  };
  for (int y = 0; y < grid.ny(); ++y) {
    for (int x = 0; x < grid.nx(); ++x) {
      const std::int32_t used = usedAt(x, y);
      if (used == 0) continue;
      const Rect cell = grid.mapping().cellRect(x, y);
      const std::int64_t sites = sitesOf(x, y);
      if (used <= sites) continue;
      std::int64_t windowUsed = 0;
      std::int64_t windowSites = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int wx = x + dx;
          const int wy = y + dy;
          if (wx < 0 || wx >= grid.nx() || wy < 0 || wy >= grid.ny()) continue;
          windowUsed += usedAt(wx, wy);
          windowSites += sitesOf(wx, wy);
        }
      }
      if (windowUsed <= windowSites) continue;
      Violation v;
      v.kind = ViolationKind::kBumpPitchOverflow;
      v.layer = f2fCut;
      v.rect = cell;
      v.detail = "gcell (" + std::to_string(x) + "," + std::to_string(y) + "): " +
                 std::to_string(used) + " F2F cuts on " + std::to_string(sites) +
                 " physical bump sites (pitch " + std::to_string(bumpPitch) +
                 " dbu), 3x3 window exhausted";
      rep.violations.push_back(std::move(v));
    }
  }
}

}  // namespace m3d::verify_detail
