#include <cassert>
#include <stdexcept>

#include "flows/case_study.hpp"
#include "flows/flows.hpp"

namespace m3d {

/// Optimized 2D baseline: one die, macros floorplanned in periphery rings
/// (paper Fig. 4 left), standard cells in the center, P&R on the logic-die
/// BEOL. Footprint is sized so that the same silicon area is available as in
/// the two-die 3D stacks (paper Sec. V: area ratio 2x).
FlowOutput runFlow2D(const TileConfig& cfg, const FlowOptions& opt) {
  obs::ScopedRun run = beginFlowRun(FlowKind::k2D, cfg.name, opt);
  std::ostringstream trace;
  FlowOutput out;
  {
    obs::ScopedPhase phase("floorplan");
    out.logicTech = makeCaseStudyTech(kLogicDieMetals);
    out.macroTech = out.logicTech;
    out.lib = std::make_unique<Library>(makeStdCellLib(out.logicTech));
    out.tile = std::make_unique<Tile>(generateTile(*out.lib, out.logicTech, cfg));
    Netlist& nl = out.tile->netlist;

    const NetlistStats stats = computeStats(nl);
    const Rect die = computeDie2D(stats, out.logicTech);
    phase.attr("die_um", dbuToUm(die.width()));
    phase.attr("macros", stats.numMacros);
    trace << "2D floorplan: die=" << dbuToUm(die.width()) << "x" << dbuToUm(die.height())
          << "um macros=" << stats.numMacros << "\n";
    M3D_LOG(info) << "floorplan done: die=" << dbuToUm(die.width()) << "x"
                  << dbuToUm(die.height()) << "um macros=" << stats.numMacros;

    if (!placeMacrosRing(nl, out.tile->groups.macros, die, opt.macroHalo)) {
      throw std::runtime_error("flow2d: ring macro placement failed");
    }
    if (const std::string err = checkMacroPlacement(nl, DieId::kLogic, die); !err.empty()) {
      throw std::runtime_error("flow2d: illegal macro placement: " + err);
    }

    out.fp.die = die;
    out.fp.rowHeight = out.logicTech.rowHeight;
    out.fp.siteWidth = out.logicTech.siteWidth;
    out.fp.blockages = macroPlacementBlockages(nl, DieId::kLogic, opt.macroHalo / 2);
    assignPorts(nl, die);

    out.routingBeol = out.logicTech.beol;
  }

  PipelineFlags flags;
  flags.preRouteOpt = opt.preRouteOpt;
  flags.postRouteOpt = opt.postRouteOpt;
  runPnrPipeline(out, opt, flags, trace);

  out.metrics.flow = flowName(FlowKind::k2D);
  out.metrics.tileName = cfg.name;
  out.metrics.footprintMm2 = displayMm2(dbu2ToUm2(out.fp.die.area()));
  out.metrics.metalAreaMm2 =
      out.metrics.footprintMm2 * static_cast<double>(out.routingBeol.numMetals());
  out.trace = trace.str();
  finishFlowRun(out, opt, run);
  return out;
}

}  // namespace m3d
