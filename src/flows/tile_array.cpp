#include "flows/tile_array.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace m3d {

TileArrayCheck checkTileArray(const FlowOutput& out, int nx, int ny) {
  TileArrayCheck chk;
  chk.tilesX = nx;
  chk.tilesY = ny;
  const Netlist& nl = out.tile->netlist;

  // Pair up the tagged ports.
  std::map<int, std::pair<PortId, PortId>> pairs;  // tag -> (out, in)
  for (PortId p = 0; p < nl.numPorts(); ++p) {
    const Port& port = nl.port(p);
    if (port.pairTag < 0) continue;
    auto& pr = pairs[port.pairTag];
    if (port.dir == PinDir::kOutput) {
      pr.first = p;
    } else {
      pr.second = p;
    }
  }

  for (const auto& [tag, pr] : pairs) {
    (void)tag;
    const Port& outPort = nl.port(pr.first);
    const Port& inPort = nl.port(pr.second);
    // When tile (i,j) abuts tile (i,j+1), the north edge of one coincides
    // with the south edge of the other; the pair connects iff the along-edge
    // coordinates match.
    const bool vertical = outPort.side == Side::kNorth || outPort.side == Side::kSouth;
    const Dbu mis = vertical ? std::abs(outPort.pos.x - inPort.pos.x)
                             : std::abs(outPort.pos.y - inPort.pos.y);
    const int linksOfTag = vertical ? nx * (ny - 1) : (nx - 1) * ny;
    chk.interTileLinks += linksOfTag;
    if (mis != 0) {
      ++chk.misalignedPairs;
      chk.maxMisalignment = std::max(chk.maxMisalignment, mis);
      chk.interTileWirelengthUm += dbuToUm(mis) * linksOfTag;
    }
  }
  chk.alignmentOk = chk.misalignedPairs == 0;

  // Timing: the tile's own sign-off period.
  const double period = out.metrics.minPeriodNs * 1e-9;
  chk.periodUsed = period;
  Sta sta(nl, out.paras, &out.clock);
  chk.halfPathsClosed = sta.worstSlack(period) >= -1e-12;

  // Worst stitched-link slack: the out half-path must arrive by T/2 (its own
  // constraint); the in half-path was analyzed with a T/2 launch, so the
  // global WNS covers it. Report the tightest out-port margin.
  const std::vector<double> arr = sta.portArrivals(period);
  double worst = period;
  for (const auto& [tag, pr] : pairs) {
    (void)tag;
    const double a = arr[static_cast<std::size_t>(pr.first)];
    if (a < -1e29) continue;  // unreached
    worst = std::min(worst, period / 2.0 - a);
  }
  chk.worstLinkSlack = worst;
  return chk;
}

}  // namespace m3d
