#pragma once

/// \file tile_array.hpp
/// Multi-tile assembly verification (paper Sec. V-1).
///
/// A tile's results are only valid for arbitrary core counts if (a) paired
/// inter-tile ports align exactly so abutted instances connect without
/// additional routing, and (b) the output half-path and the matching input
/// half-path together close in one clock cycle. This module checks both on a
/// finished implementation and synthesizes the abutted nx x ny array's
/// inter-tile connections to report their (ideally zero) residual length.

#include "flows/flow_common.hpp"

namespace m3d {

struct TileArrayCheck {
  int tilesX = 0;
  int tilesY = 0;
  int interTileLinks = 0;        ///< abutting out->in port pairs in the array.
  int misalignedPairs = 0;       ///< pairs whose coordinates do not line up.
  Dbu maxMisalignment = 0;       ///< [DBU]
  double interTileWirelengthUm = 0.0;  ///< residual routing needed (0 when aligned).
  bool alignmentOk = false;

  /// Timing of the stitched inter-tile paths at the tile's sign-off period:
  /// out half-path arrival (launch..pin) plus in half-path (pin..capture)
  /// must fit one cycle. halfPathsClosed reflects the tile's own half-cycle
  /// constraints; worstLinkSlack is the stitched-path slack.
  bool halfPathsClosed = false;
  double worstLinkSlack = 0.0;   ///< [s]
  double periodUsed = 0.0;       ///< [s]
};

/// Verifies that \p out (a finished flow result) assembles into an
/// nx x ny tile array. Uses the implementation's extracted timing.
TileArrayCheck checkTileArray(const FlowOutput& out, int nx, int ny);

}  // namespace m3d
