#pragma once

/// \file flow_common.hpp
/// Shared flow machinery: options, metrics, the common P&R pipeline
/// (place -> pre-route opt -> CTS -> route -> extract -> post-route opt ->
/// sign-off STA/power), and helpers used by the individual flows.

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cts/cts.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/run_report.hpp"
#include "extract/extraction.hpp"
#include "floorplan/floorplan.hpp"
#include "netlist/openpiton.hpp"
#include "opt/optimizer.hpp"
#include "place/placer.hpp"
#include "power/power.hpp"
#include "route/router.hpp"
#include "sta/sta.hpp"
#include "tech/combined_beol.hpp"
#include "verify/verify.hpp"

namespace m3d {

enum class FlowKind { k2D, kS2D, kBfS2D, kC2D, kMacro3D };
const char* flowName(FlowKind kind);

/// Canonical names of the seven pipeline stages. runPnrPipeline opens one
/// span per stage, in this order, for every flow -- stages a flow skips
/// still appear (with near-zero duration) so run reports are uniformly
/// comparable across flows.
inline constexpr const char* kPipelineStageNames[7] = {
    "place", "pre_route_opt", "cts", "route", "extract", "post_route_opt", "signoff"};

/// Run-report emission knobs.
struct ReportOptions {
  /// Write the RunReport JSON here after the flow ("" = no file unless the
  /// M3D_RUN_REPORT_DIR environment variable names a directory, in which
  /// case <dir>/run_<flow>_<tile>.json is written).
  std::string jsonPath;
  /// Log the phase/metric summary at info level when the flow ends.
  bool logSummary = true;
};

struct FlowOptions {
  /// Max-performance mode (paper Tables I-III) vs iso-performance mode
  /// (optimize to a fixed target period; used for the power comparison).
  bool maxPerformance = true;
  double targetPeriodNs = 3.05;  ///< used when maxPerformance == false.

  int macroDieMetals = 6;        ///< Table III knob: 6 (M6-M6) or 4 (M6-M4).
  MacroDieStackOrder stackOrder = MacroDieStackOrder::kFlipped;
  /// Sign-off corner for the final STA (paper signs off at the slowest
  /// corner; the default keeps typical so all flows stay comparable --
  /// switch to kSlowCorner to model the paper's setup; power is always
  /// reported at typical).
  Corner signoffCorner = kTypicalCorner;

  /// Flow-wide thread count (0 = auto: M3D_THREADS env, else
  /// hardware_concurrency; 1 = fully sequential). Fanned into every stage
  /// knob (placer/router/optimizer/STA) still at its "auto" default, so one
  /// option drives the whole pipeline. Every parallel stage is
  /// deterministic: results are bit-identical at any thread count.
  int numThreads = 0;

  /// Run the independent physical-verification engine as part of the
  /// signoff stage and emit a verdict (FlowOutput::verify, DesignMetrics).
  bool signoff = true;
  VerifyOptions verify;

  /// Directory of the design-database stage cache ("" = disabled; the
  /// M3D_CHECKPOINT_DIR environment variable supplies a default when
  /// empty). When set, runPnrPipeline writes one .m3ddb checkpoint per
  /// completed stage, keyed by a content hash of the stage's inputs and
  /// the FlowOptions subset it reads (see flows/flow_checkpoint.hpp).
  std::string checkpointDir;
  /// --resume semantics: with the stage cache enabled, restore the longest
  /// cached prefix of the pipeline from disk instead of recomputing it.
  /// false warms the cache without reading it (forced cold run). Restored
  /// results are bit-identical to recomputation — keys capture every
  /// input, and thread counts never enter them.
  bool resume = true;
  /// Byte budget of the stage-cache directory (0 = unbounded; the
  /// M3D_CACHE_MAX_BYTES environment variable supplies a default when 0).
  /// Over budget, publishing a checkpoint evicts least-recently-used
  /// entries under the cache's cross-process file lock — the knob that
  /// keeps a long-lived m3d_serve cache bounded. Never affects results:
  /// an evicted entry is just a future miss.
  std::int64_t cacheMaxBytes = 0;

  /// F2F bond-layer via specification used by the 3D flows when building
  /// the combined BEOL. The ECO knob for bump-pitch studies: changing
  /// f2fVia.pitch re-keys only the route stage and downstream, so a warm
  /// cache replays place/pre_route_opt/cts and re-runs the rest.
  F2fViaSpec f2fVia;

  /// Incremental ECO routing seed: path of a stage checkpoint (.m3ddb, at
  /// least the route stage) from a *previous* run of this design. When set
  /// (the M3D_ECO_ROUTE_FROM environment variable supplies a default), the
  /// route stage loads that checkpoint, diffs its grid capacities against
  /// the current ones, and reroutes only the dirtied nets via
  /// routeDesignEco -- every untouched route is reused byte-identically.
  /// An unreadable or incompatible seed warns and falls back to a full
  /// route; it never aborts the flow.
  std::string ecoRouteFrom;

  PlacerOptions placer;
  CtsOptions cts;
  RouteGridOptions grid;
  RouterOptions router;
  OptimizerOptions optBase;
  int maxFreqRounds = 4;
  bool preRouteOpt = true;
  bool postRouteOpt = true;
  /// Ablation knob: give the pseudo flows (S2D/BF-S2D/C2D) a post-route
  /// sizing pass they do not have in the paper's methodology.
  bool pseudoPostRouteOpt = false;
  /// F2F via cost used when routing a pseudo flow's final design: prior
  /// flows plan F2F vias in a separate step without the global router's
  /// crossing economy, modeled as a cheap crossing. Raise toward
  /// RouterOptions::f2fViaCost to grant S2D/C2D the router's bump economy
  /// (ablation).
  double s2dF2fPlanningCost = 0.8;

  Dbu macroHalo = umToDbu(1.0);
  /// Stripe resolution for partial blockages in S2D/C2D pseudo designs.
  Dbu partialBlockageResolution = umToDbu(8.0);

  /// Log level applied at flow entry (M3D_LOG_LEVEL always wins; nullopt
  /// keeps the process-wide level untouched).
  std::optional<obs::LogLevel> logLevel;
  ReportOptions report;

  /// Chrome Trace Event JSON output path ("" = no trace unless the
  /// M3D_TRACE_OUT environment variable names one). When set, the whole
  /// run's span tree plus the thread pool's per-worker task tracks and the
  /// metric series (as counter tracks) are written here at flow end;
  /// loadable in Perfetto / chrome://tracing. An unwritable path warns and
  /// disables tracing -- it never aborts the flow. Tracing does not change
  /// any design result: traced and untraced runs are bit-identical.
  std::string traceOut;
};

/// Metrics of one implemented design (paper-scale display units).
struct DesignMetrics {
  std::string flow;
  std::string tileName;

  double fclkMhz = 0.0;
  double minPeriodNs = 0.0;
  double emeanFj = 0.0;            ///< energy per cycle [fJ].
  double powerMw = 0.0;
  double footprintMm2 = 0.0;       ///< per-die footprint (display scale).
  double logicCellAreaMm2 = 0.0;
  double totalWirelengthM = 0.0;
  double wirelengthLogicDieM = 0.0;
  double wirelengthMacroDieM = 0.0;
  std::int64_t f2fBumps = 0;
  double cpinNf = 0.0;
  double cwireNf = 0.0;
  int clockTreeDepth = 0;
  double clockSkewPs = 0.0;
  double critPathWirelengthMm = 0.0;
  double metalAreaMm2 = 0.0;       ///< footprint x metal layer count.

  // Implementation health / diagnostics.
  int overflowedEdges = 0;
  int unroutedNets = 0;
  /// Error-grade signoff violations (-1 = verification not run).
  int verifyViolations = -1;
  /// Warning-grade signoff findings (-1 = verification not run).
  int verifyWarnings = -1;
  /// F2F bump count independently recomputed by the verifier
  /// (-1 = not run; cross-check against f2fBumps for Table IV).
  std::int64_t f2fBumpCount = -1;
  double legalizeAvgDispUm = 0.0;  ///< displacement of the overlap-fix step
                                   ///< (pseudo flows) or final legalization.
  double placeHpwlMm = 0.0;
  /// Global-place engine that produced the placement ("b2b" / "analytic";
  /// "" when the flow skipped global placement).
  std::string placeEngine;
  /// Engine-neutral density overflow of the final placement (PlaceResult).
  double placeOverflow = 0.0;
  /// Global-place iterations of the engine that ran.
  int placeIterations = 0;
  int cellsResized = 0;
  int buffersInserted = 0;
};

/// Everything a flow produces (kept alive for rendering and inspection).
struct FlowOutput {
  std::unique_ptr<Library> lib;
  std::unique_ptr<Tile> tile;
  TechNode logicTech;
  TechNode macroTech;      ///< only meaningful for 3D flows.
  Beol routingBeol;        ///< the stack P&R ran on.
  Floorplan fp;
  std::unique_ptr<RouteGrid> grid;
  RoutingResult routes;
  std::vector<NetParasitics> paras;
  CtsResult cts;
  ClockModel clock;
  DesignMetrics metrics;
  VerifyReport verify;     ///< signoff verification result (empty if skipped).
  std::string trace;       ///< human-readable flow step log (Fig. 2 style).
  obs::RunReport report;   ///< span tree + metrics of this run.

  /// Stage-cache outcome of this run (0 / "" when the cache was disabled):
  /// number of leading pipeline stages restored from the cache (7 = fully
  /// warm, 3 = place/pre_route_opt/cts prefix — the coalesced-ECO case),
  /// and the cache paths of the route- and signoff-stage checkpoints this
  /// run read or wrote (m3d_serve hands routeCheckpointPath to coalesced
  /// ECO jobs as their routeDesignEco seed).
  int cacheRestoredStages = 0;
  std::string routeCheckpointPath;
  std::string finalCheckpointPath;
};

/// Pipeline knobs that differ per flow.
struct PipelineFlags {
  bool preRouteOpt = true;
  bool postRouteOpt = true;
  /// Skip placement (pseudo flows hand over an already-mapped placement and
  /// only want legalization + downstream steps).
  bool skipGlobalPlace = false;
  /// Run global repeater insertion after placement (pseudo flows do their
  /// own insertion in the pseudo phase).
  bool insertRepeaters = true;
  double estimationParasiticScale = 1.0;
  double estimationLengthScale = 1.0;
};

/// Runs the common pipeline on out.tile->netlist over out.fp/out.routingBeol
/// and fills out.metrics (except flow/tile names and footprint fields, which
/// the caller owns). \p trace accumulates step logs.
void runPnrPipeline(FlowOutput& out, const FlowOptions& opt, const PipelineFlags& flags,
                    std::ostringstream& trace);

/// Swaps every fixed macro instance on the macro die to its projected master
/// ("_PROJ": filler-size substrate, _MD pin/obstruction layers), extending
/// the library on first use. This is Macro-3D's floorplan-projection step;
/// the pseudo flows apply it after tier partitioning when the true combined
/// stack becomes the routing target.
void projectMacroDieMacros(Netlist& nl, Library& lib, const TechNode& tech);

/// Rasterizes overlapping partial blockages: each rect contributes
/// \p densityPerRect; cell densities are clamped at 1. Cells are merged
/// horizontally. Mirrors the coarse spatial resolution of commercial partial
/// blockage handling.
std::vector<Blockage> compositeBlockages(const std::vector<Rect>& rects, const Rect& die,
                                         Dbu resolution, double densityPerRect);

/// Sum of substrate areas of placed standard cells (excl. macros/fillers).
std::int64_t logicCellArea(const Netlist& nl);

/// Flow-driver observability bracket. beginFlowRun applies opt.logLevel,
/// opens the run's root span, and logs the start line; finishFlowRun copies
/// the final DesignMetrics into the report, stores it on \p out, writes the
/// JSON file (ReportOptions / M3D_RUN_REPORT_DIR), and logs the summary.
obs::ScopedRun beginFlowRun(FlowKind kind, const std::string& tileName,
                            const FlowOptions& opt);
void finishFlowRun(FlowOutput& out, const FlowOptions& opt, obs::ScopedRun& run);

/// Serializes every DesignMetrics field as one flat JSON object (used by
/// run reports and the bench BENCH_*.json dumps).
void writeDesignMetricsJson(obs::JsonWriter& w, const DesignMetrics& m);

/// Hierarchical placement seed: puts each logical module's cells near the
/// centroid of its fixed attachments (macro pins, ports) with a deterministic
/// spread, mirroring the region guidance a hand-optimized floorplan gives a
/// commercial placer (the paper's floorplans are "highly optimized ...
/// considering the tile architecture"). The global placer then refines from
/// these seeds.
void seedPlacementByModules(Tile& tile, const Floorplan& fp);

}  // namespace m3d
