#pragma once

/// \file case_study.hpp
/// Calibration of the scaled OpenPiton-tile case study.
///
/// The paper's tile has ~150k standard cells in a commercial 28 nm node.
/// We run a geometrically scaled tile (~12-16k cells) to keep bench runtimes
/// tractable. One linear scale factor kGeomScale maps our local geometry to
/// "paper-scale" dimensions:
///  - local wire R/C per um are multiplied by kGeomScale, so a local wire of
///    length L behaves electrically like a paper-scale wire of length
///    kGeomScale * L (wire-vs-gate delay ratios match the full-size tile);
///  - reported lengths are multiplied by kGeomScale, areas by kGeomScale^2.
/// All comparisons between flows are unaffected by the scale (it cancels);
/// it only makes the absolute magnitudes in the tables commensurate with
/// the paper's.

#include "lib/stdcell_factory.hpp"
#include "netlist/openpiton.hpp"
#include "tech/tech_node.hpp"

namespace m3d {

/// Linear geometry scale between the local (simulated) tile and the paper's
/// full-size tile.
inline constexpr double kGeomScale = 4.0;

/// Logic-die metal count used throughout the paper's experiments.
inline constexpr int kLogicDieMetals = 6;

/// Builds the case-study technology: synthetic 28 nm with \p numMetals
/// layers and wire parasitics pre-scaled by kGeomScale.
TechNode makeCaseStudyTech(int numMetals = kLogicDieMetals);

/// Display helpers: local -> paper-scale units.
inline double displayUm(double localUm) { return localUm * kGeomScale; }
inline double displayMm(double localUm) { return localUm * kGeomScale * 1e-3; }
inline double displayMm2(double localUm2) { return localUm2 * kGeomScale * kGeomScale * 1e-6; }
inline double displayM(double localUm) { return localUm * kGeomScale * 1e-6; }

}  // namespace m3d
