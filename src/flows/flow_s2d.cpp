#include <cassert>
#include <stdexcept>
#include <cmath>

#include "flows/case_study.hpp"
#include "flows/flows.hpp"
#include "opt/net_buffering.hpp"

namespace m3d {

namespace {

/// Shared implementation of the pseudo-design flows (Shrunk-2D, BF-S2D,
/// Compact-2D) applied to MoL stacking, per paper Sec. III.
///
/// Both prior flows place and optimize a *pseudo* 2D design whose geometry
/// does not exist in the final stack, then map the result onto the F2F
/// footprint:
///  - S2D shrinks cells/interconnects by 50% so the design fits the F2F
///    footprint; we realize the mathematically equivalent inflated view
///    (full-size cells in the 2x-area floorplan, estimated parasitics
///    scaled so the predicted delays match the shrunk design);
///  - C2D inflates the floorplan 2x and scales per-unit-length parasitics
///    by 1/sqrt(2); it adds post-tier-partitioning optimization and, per
///    its linear cell-location mapping, a coarser mapping granularity.
/// Macros appear as *partial* (50%) blockages at the tool's coarse spatial
/// resolution, with macro pins on the logic-die BEOL layers — both of which
/// are mispredictions the paper calls out. After tier partitioning the true
/// combined-stack design is legalized (the overlap-fixing step), clocked,
/// and routed; S2D gets no post-partition optimization, C2D gets one
/// estimated-parasitics pass.
FlowOutput runPseudoFlow(const TileConfig& cfg, const FlowOptions& opt, FlowKind kind) {
  const bool balanced = kind == FlowKind::kBfS2D;
  const bool c2d = kind == FlowKind::kC2D;

  obs::ScopedRun run = beginFlowRun(kind, cfg.name, opt);
  std::ostringstream trace;
  FlowOutput out;
  // One span per pseudo-flow stage; re-emplacing closes the previous span.
  std::optional<obs::ScopedPhase> stage;
  stage.emplace("floorplan");
  out.logicTech = makeCaseStudyTech(kLogicDieMetals);
  // S2D requires equal BEOLs in both dies (paper Sec. III).
  out.macroTech = makeCaseStudyTech(kLogicDieMetals);
  out.lib = std::make_unique<Library>(makeStdCellLib(out.logicTech));
  out.tile = std::make_unique<Tile>(generateTile(*out.lib, out.logicTech, cfg));
  Netlist& nl = out.tile->netlist;

  const NetlistStats stats = computeStats(nl);
  const Rect dieP = computeDie2D(stats, out.logicTech);   // pseudo floorplan
  const Rect dieF = computeDie3D(dieP, out.logicTech);    // F2F footprint

  // --- True macro partition + placement in the F2F footprint ----------------
  bool ok = false;
  if (balanced) {
    ok = placeMacrosBalanced(nl, out.tile->groups.macros, dieF, opt.macroHalo);
  } else {
    ok = placeMacrosShelf(nl, out.tile->groups.macros, dieF, opt.macroHalo, DieId::kMacro);
  }
  if (!ok) throw std::runtime_error("pseudo flow: macro partitioning failed");

  struct TrueMacro {
    InstId inst;
    Point pos;
  };
  std::vector<TrueMacro> truePos;
  for (InstId m : out.tile->groups.macros) {
    truePos.push_back({m, nl.instance(m).pos});
  }

  // --- Pseudo phase: scaled macro positions, partial blockages --------------
  auto scaleUp = [&](Dbu v, Dbu fLen, Dbu pLen) { return v * pLen / fLen; };
  std::vector<Rect> pseudoRects;
  for (InstId m : out.tile->groups.macros) {
    Instance& inst = nl.instance(m);
    const CellType& c = nl.cellOf(m);
    const Point trueCenter{inst.pos.x + c.width / 2, inst.pos.y + c.height / 2};
    const Point pseudoCenter{scaleUp(trueCenter.x, dieF.width(), dieP.width()),
                             scaleUp(trueCenter.y, dieF.height(), dieP.height())};
    inst.pos = Point{pseudoCenter.x - c.width / 2, pseudoCenter.y - c.height / 2};
    // Blockage area doubles (C2D: "blockage areas are increased by a factor
    // of 2x"; S2D's shrunk view is equivalent after inflation).
    const Dbu bw = static_cast<Dbu>(static_cast<double>(c.width) * std::sqrt(2.0));
    const Dbu bh = static_cast<Dbu>(static_cast<double>(c.height) * std::sqrt(2.0));
    pseudoRects.push_back(Rect{pseudoCenter.x - bw / 2, pseudoCenter.y - bh / 2,
                               pseudoCenter.x + bw / 2, pseudoCenter.y + bh / 2});
  }

  Floorplan pseudoFp;
  pseudoFp.die = dieP;
  pseudoFp.rowHeight = out.logicTech.rowHeight;
  pseudoFp.siteWidth = out.logicTech.siteWidth;
  pseudoFp.blockages =
      compositeBlockages(pseudoRects, dieP, opt.partialBlockageResolution, 0.5);
  assignPorts(nl, dieP);
  trace << "pseudo floorplan: die=" << dbuToUm(dieP.width()) << "um blockages="
        << pseudoFp.blockages.size() << "\n";
  stage->attr("pseudo_die_um", dbuToUm(dieP.width()));
  stage->attr("blockages", static_cast<double>(pseudoFp.blockages.size()));
  M3D_LOG(info) << "pseudo floorplan done: die=" << dbuToUm(dieP.width())
                << "um blockages=" << pseudoFp.blockages.size();

  // --- Pseudo placement + optimization ---------------------------------------
  // Cells are legalized at sqrt(2)x width (the inflated-view equivalent of
  // S2D's 50% cell shrink): the pseudo placement then maps onto the F2F
  // footprint with legal full-size spacing.
  LegalizerOptions pseudoLopt;
  pseudoLopt.partialBlockageResolution = opt.partialBlockageResolution;
  pseudoLopt.cellWidthScale = std::sqrt(2.0);
  stage.emplace("pseudo_place");
  {
    seedPlacementByModules(*out.tile, pseudoFp);
    PlacerOptions popt = opt.placer;
    popt.useExistingPositions = true;
    popt.legalizer = pseudoLopt;
    if (popt.numThreads == 0) popt.numThreads = opt.numThreads;
    const PlaceResult pr = globalPlace(nl, pseudoFp, popt);
    trace << "pseudo place: hpwl_mm=" << displayMm(pr.hpwlUm) << "\n";
    stage->attr("hpwl_mm", displayMm(pr.hpwlUm));
    M3D_LOG(info) << "pseudo place done: hpwl_mm=" << displayMm(pr.hpwlUm);
  }
  {
    // Repeater insertion happens inside the pseudo design (spacing scaled to
    // the inflated geometry).
    NetBufferingOptions nb;
    nb.maxLength = static_cast<Dbu>(static_cast<double>(nb.maxLength) * std::sqrt(2.0));
    const NetBufferingResult r = bufferLongNets(nl, pseudoFp, nb);
    out.metrics.buffersInserted += r.buffersInserted;
    legalize(nl, pseudoFp, pseudoLopt);
    trace << "pseudo repeaters: inserted=" << r.buffersInserted << "\n";
  }
  stage.emplace("pseudo_opt");
  if (opt.preRouteOpt) {
    // S2D sees shrunk geometry (lengths already final); C2D sees inflated
    // geometry with scaled per-unit parasitics. Either way the pseudo
    // estimate misses the F2F vias and the macro-die pin layers.
    EstimationOptions eopt = makeEstimationOptions(out.logicTech.beol,
                                                   c2d ? 1.0 / std::sqrt(2.0) : 1.0);
    if (!c2d) eopt.lengthScale = 1.0 / std::sqrt(2.0);
    EstimatedParasitics provider(eopt);
    std::vector<NetParasitics> paras = estimateDesign(nl, eopt);
    const int presized = presizeForLoad(nl, paras, provider);
    trace << "pseudo presize: resized=" << presized << "\n";
    MaxFreqOptResult r;
    OptimizerOptions obase = opt.optBase;
    if (obase.numThreads == 0) obase.numThreads = opt.numThreads;
    if (opt.maxPerformance) {
      r = optimizeForMaxFrequency(nl, paras, provider, nullptr, obase,
                                  opt.maxFreqRounds);
    } else {
      OptimizerOptions o = obase;
      o.targetPeriod = opt.targetPeriodNs * 1e-9;
      const OptimizeResult res = optimizeTiming(nl, paras, provider, nullptr, o);
      r.cellsResized = res.cellsResized;
      r.buffersInserted = res.buffersInserted;
    }
    out.metrics.cellsResized += r.cellsResized;
    out.metrics.buffersInserted += r.buffersInserted;
    trace << "pseudo opt: resized=" << r.cellsResized << " buffers=" << r.buffersInserted
          << "\n";
    stage->attr("cells_resized", static_cast<double>(r.cellsResized));
    stage->attr("buffers_inserted", static_cast<double>(r.buffersInserted));
    M3D_LOG(info) << "pseudo opt done: resized=" << r.cellsResized
                  << " buffers=" << r.buffersInserted;
    legalize(nl, pseudoFp, pseudoLopt);
  }

  // --- Tier partitioning: map cells into the F2F footprint --------------------
  stage.emplace("tier_partition");
  const Dbu gridQ = c2d ? umToDbu(2.0) : 0;  // C2D's linear-mapping granularity
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    Instance& inst = nl.instance(i);
    if (inst.fixed || nl.cellOf(i).isMacro()) continue;
    Dbu x = inst.pos.x * dieF.width() / dieP.width();
    Dbu y = inst.pos.y * dieF.height() / dieP.height();
    if (gridQ > 0) {
      x = x / gridQ * gridQ;
      y = y / gridQ * gridQ;
    }
    inst.pos = dieF.clamp(Point{x, y});
  }
  for (const TrueMacro& tm : truePos) nl.instance(tm.inst).pos = tm.pos;
  projectMacroDieMacros(nl, *out.lib, out.logicTech);
  out.routingBeol = buildCombinedBeol(out.logicTech.beol, out.macroTech.beol, opt.f2fVia,
                                      opt.stackOrder);

  out.fp.die = dieF;
  out.fp.rowHeight = out.logicTech.rowHeight;
  out.fp.siteWidth = out.logicTech.siteWidth;
  out.fp.blockages = macroPlacementBlockages(nl, DieId::kLogic, opt.macroHalo / 2);
  {
    const auto proj = macroPlacementBlockages(nl, DieId::kMacro, 0);
    out.fp.blockages.insert(out.fp.blockages.end(), proj.begin(), proj.end());
  }
  assignPorts(nl, dieF);
  M3D_LOG(info) << "tier partition done: footprint=" << dbuToUm(dieF.width()) << "x"
                << dbuToUm(dieF.height()) << "um";
  stage.reset();

  // --- Overlap fixing, (C2D: post-partition opt), CTS, routing, sign-off ------
  FlowOptions fopt = opt;
  // Prior flows plan F2F vias in a separate step without the global router's
  // cost optimization; model as a cheap F2F crossing (no bump economy).
  fopt.router.f2fViaCost = opt.s2dF2fPlanningCost;
  PipelineFlags flags;
  flags.skipGlobalPlace = true;   // placement is inherited from the pseudo design
  flags.insertRepeaters = false;  // repeaters came from the pseudo design
  flags.preRouteOpt = c2d;        // C2D's post-tier-partitioning optimization
  flags.postRouteOpt = opt.pseudoPostRouteOpt;  // paper flows: false
  runPnrPipeline(out, fopt, flags, trace);

  out.metrics.flow = flowName(kind);
  out.metrics.tileName = cfg.name;
  out.metrics.footprintMm2 = displayMm2(dbu2ToUm2(dieF.area()));
  out.metrics.metalAreaMm2 =
      out.metrics.footprintMm2 * static_cast<double>(out.routingBeol.numMetals());
  out.trace = trace.str();
  finishFlowRun(out, opt, run);
  return out;
}

}  // namespace

FlowOutput runFlowS2D(const TileConfig& cfg, bool balancedFloorplan, const FlowOptions& opt) {
  return runPseudoFlow(cfg, opt, balancedFloorplan ? FlowKind::kBfS2D : FlowKind::kS2D);
}

FlowOutput runFlowC2D(const TileConfig& cfg, const FlowOptions& opt) {
  return runPseudoFlow(cfg, opt, FlowKind::kC2D);
}

}  // namespace m3d
