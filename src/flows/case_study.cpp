#include "flows/case_study.hpp"

namespace m3d {

TechNode makeCaseStudyTech(int numMetals) {
  TechNode tech = makeTech28(numMetals);
  for (int l = 0; l < tech.beol.numMetals(); ++l) {
    tech.beol.metal(l).rPerUm *= kGeomScale;
    tech.beol.metal(l).cPerUm *= kGeomScale;
  }
  return tech;
}

}  // namespace m3d
