#pragma once

/// \file flows.hpp
/// Entry points of the four physical-design flows compared in the paper:
///  - runFlow2D       : optimized 2D baseline (single die, periphery macros)
///  - runFlowS2D      : Shrunk-2D applied to MoL stacking [5]
///                      (balanced=true gives the BF-S2D variant)
///  - runFlowC2D      : Compact-2D applied to MoL stacking [6]
///  - runFlowMacro3D  : the proposed Macro-3D flow (declared in
///                      core/macro3d.hpp; re-exported here)
/// Each takes a tile configuration and flow options, builds the tile from
/// scratch and runs netlist-to-layout, returning metrics plus the full
/// implementation state.

#include "flows/flow_common.hpp"

namespace m3d {

FlowOutput runFlow2D(const TileConfig& cfg, const FlowOptions& opt = FlowOptions{});

FlowOutput runFlowS2D(const TileConfig& cfg, bool balancedFloorplan,
                      const FlowOptions& opt = FlowOptions{});

FlowOutput runFlowC2D(const TileConfig& cfg, const FlowOptions& opt = FlowOptions{});

}  // namespace m3d
