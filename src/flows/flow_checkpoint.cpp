#include "flows/flow_checkpoint.hpp"

#include <utility>

#include "db/codec.hpp"
#include "db/hash.hpp"
#include "io/fsutil.hpp"

namespace m3d {

namespace {

using db::BinReader;
using db::BinWriter;
using db::DbError;
using db::DbStatus;
using db::DesignDb;
using db::HashStream;

// Section names (fixed emission order => byte-identical re-save).
constexpr const char* kSecMeta = "flow_meta";
constexpr const char* kSecLibrary = "library";
constexpr const char* kSecNetlist = "netlist";
constexpr const char* kSecGroups = "groups";
constexpr const char* kSecTileConfig = "tile_config";
constexpr const char* kSecLogicTech = "logic_tech";
constexpr const char* kSecMacroTech = "macro_tech";
constexpr const char* kSecBeol = "routing_beol";
constexpr const char* kSecFloorplan = "floorplan";
constexpr const char* kSecCts = "cts";
constexpr const char* kSecRoutes = "routes";
constexpr const char* kSecParasitics = "parasitics";
constexpr const char* kSecClock = "clock";
constexpr const char* kSecMetrics = "metrics";
constexpr const char* kSecVerify = "verify";
constexpr const char* kSecTrace = "trace";

void encodeMetrics(BinWriter& w, const DesignMetrics& m) {
  w.str(m.flow);
  w.str(m.tileName);
  w.f64(m.fclkMhz);
  w.f64(m.minPeriodNs);
  w.f64(m.emeanFj);
  w.f64(m.powerMw);
  w.f64(m.footprintMm2);
  w.f64(m.logicCellAreaMm2);
  w.f64(m.totalWirelengthM);
  w.f64(m.wirelengthLogicDieM);
  w.f64(m.wirelengthMacroDieM);
  w.i64(m.f2fBumps);
  w.f64(m.cpinNf);
  w.f64(m.cwireNf);
  w.i32(m.clockTreeDepth);
  w.f64(m.clockSkewPs);
  w.f64(m.critPathWirelengthMm);
  w.f64(m.metalAreaMm2);
  w.i32(m.overflowedEdges);
  w.i32(m.unroutedNets);
  w.i32(m.verifyViolations);
  w.i32(m.verifyWarnings);
  w.i64(m.f2fBumpCount);
  w.f64(m.legalizeAvgDispUm);
  w.f64(m.placeHpwlMm);
  w.str(m.placeEngine);
  w.f64(m.placeOverflow);
  w.i32(m.placeIterations);
  w.i32(m.cellsResized);
  w.i32(m.buffersInserted);
}

bool decodeMetrics(BinReader& r, DesignMetrics& m) {
  m = DesignMetrics{};
  m.flow = r.str();
  m.tileName = r.str();
  m.fclkMhz = r.f64();
  m.minPeriodNs = r.f64();
  m.emeanFj = r.f64();
  m.powerMw = r.f64();
  m.footprintMm2 = r.f64();
  m.logicCellAreaMm2 = r.f64();
  m.totalWirelengthM = r.f64();
  m.wirelengthLogicDieM = r.f64();
  m.wirelengthMacroDieM = r.f64();
  m.f2fBumps = r.i64();
  m.cpinNf = r.f64();
  m.cwireNf = r.f64();
  m.clockTreeDepth = r.i32();
  m.clockSkewPs = r.f64();
  m.critPathWirelengthMm = r.f64();
  m.metalAreaMm2 = r.f64();
  m.overflowedEdges = r.i32();
  m.unroutedNets = r.i32();
  m.verifyViolations = r.i32();
  m.verifyWarnings = r.i32();
  m.f2fBumpCount = r.i64();
  m.legalizeAvgDispUm = r.f64();
  m.placeHpwlMm = r.f64();
  m.placeEngine = r.str();
  m.placeOverflow = r.f64();
  m.placeIterations = r.i32();
  m.cellsResized = r.i32();
  m.buffersInserted = r.i32();
  return r.ok();
}

template <typename Encode>
std::vector<std::uint8_t> payloadOf(Encode&& encode) {
  BinWriter w;
  encode(w);
  return w.take();
}

/// Runs \p decode over the named section; requires presence and full
/// consumption of the payload.
template <typename Decode>
DbStatus decodeSection(const DesignDb& dbFile, const char* name, Decode&& decode) {
  const std::vector<std::uint8_t>* payload = dbFile.section(name);
  if (payload == nullptr) {
    return DbStatus::fail(DbError::kMissingSection, std::string("missing section '") + name +
                                                        "'");
  }
  BinReader r(*payload);
  if (!decode(r) || !r.ok() || !r.atEnd()) {
    return DbStatus::fail(DbError::kMalformed, std::string("section '") + name +
                                                   "' failed to decode");
  }
  return DbStatus::success();
}

// Option-subset hashes. Each stage hashes exactly what it reads (including
// fan-in defaults applied inside the stage bodies); thread knobs are
// excluded by the bit-identity contract.

void hashOptimizerOptions(HashStream& h, const OptimizerOptions& o) {
  h.f64(o.targetPeriod);
  h.i32(o.maxPasses);
  h.f64(o.bufferWireDelayThreshold);
  h.str(o.bufferCell == nullptr ? "" : o.bufferCell);
  // resizeGuard is installed by the pipeline itself as a pure function of
  // state already in the chain — not an independent input. incrementalSta
  // is excluded like the thread knobs: the persistent engine is
  // bit-identical to the per-pass rebuild, so it cannot change the artifact.
}

void hashTimingGoal(HashStream& h, const FlowOptions& opt) {
  h.b(opt.maxPerformance);
  h.f64(opt.targetPeriodNs);
  h.i32(opt.maxFreqRounds);
}

struct RestoredState {
  TileGroups groups;
  TileConfig config;
  TechNode logicTech;
  TechNode macroTech;
  Beol beol;
  Floorplan fp;
  CtsResult cts;
  RoutingResult routes;
  std::vector<NetParasitics> paras;
  ClockModel clock;
  DesignMetrics metrics;
  VerifyReport verify;
  std::string trace;
};

/// Decodes every non-netlist section into \p st (netlist/library handling
/// differs between the in-pipeline and standalone paths).
DbStatus decodeSharedSections(const DesignDb& dbFile, const Netlist& nl, RestoredState& st) {
  if (DbStatus s = decodeSection(dbFile, kSecGroups,
                                 [&](BinReader& r) {
                                   return db::decodeTileGroups(r, st.groups, nl.numInstances(),
                                                               nl.numNets(), nl.numPorts());
                                 });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecTileConfig,
                                 [&](BinReader& r) { return db::decodeTileConfig(r, st.config); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecLogicTech,
                                 [&](BinReader& r) { return db::decodeTechNode(r, st.logicTech); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecMacroTech,
                                 [&](BinReader& r) { return db::decodeTechNode(r, st.macroTech); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecBeol,
                                 [&](BinReader& r) { return db::decodeBeol(r, st.beol); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecFloorplan,
                                 [&](BinReader& r) { return db::decodeFloorplan(r, st.fp); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecCts,
                                 [&](BinReader& r) { return db::decodeCtsResult(r, st.cts); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecRoutes,
                                 [&](BinReader& r) { return db::decodeRoutingResult(r, st.routes); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecParasitics,
                                 [&](BinReader& r) { return db::decodeParasitics(r, st.paras); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecClock,
                                 [&](BinReader& r) { return db::decodeClockModel(r, st.clock); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecMetrics,
                                 [&](BinReader& r) { return decodeMetrics(r, st.metrics); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecVerify,
                                 [&](BinReader& r) { return db::decodeVerifyReport(r, st.verify); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSection(dbFile, kSecTrace,
                                 [&](BinReader& r) {
                                   st.trace = r.str();
                                   return r.ok();
                                 });
      !s.ok()) {
    return s;
  }
  return DbStatus::success();
}

/// Applies the sections that are pipeline *outputs* — the state the skipped
/// stages would have produced. Used by the in-pipeline restore, which must
/// NOT touch the pipeline *inputs* (BEOL, tech nodes, floorplan, groups,
/// config): a stage-i checkpoint is valid for every input that enters the
/// key chain only after stage i (e.g. a bump-pitch ECO changes the live
/// BEOL but replays a pre-route checkpoint — overwriting the live BEOL with
/// the checkpointed one would route the old stack).
void applyStageOutputs(RestoredState&& st, FlowOutput& out) {
  out.cts = std::move(st.cts);
  out.routes = std::move(st.routes);
  out.paras = std::move(st.paras);
  out.clock = std::move(st.clock);
  out.metrics = std::move(st.metrics);
  out.verify = std::move(st.verify);
}

/// Applies every restored section, inputs included (standalone loads, which
/// reconstruct a self-contained FlowOutput).
void applyRestoredState(RestoredState&& st, FlowOutput& out) {
  out.tile->groups = std::move(st.groups);
  out.tile->config = std::move(st.config);
  out.logicTech = std::move(st.logicTech);
  out.macroTech = std::move(st.macroTech);
  out.routingBeol = std::move(st.beol);
  out.fp = std::move(st.fp);
  applyStageOutputs(std::move(st), out);
}

}  // namespace

std::array<std::uint64_t, 7> computeStageKeys(const FlowOutput& out, const FlowOptions& opt,
                                              const PipelineFlags& flags) {
  const Netlist& nl = out.tile->netlist;
  std::array<std::uint64_t, 7> keys{};

  // Root: the pipeline entry state every stage transitively depends on.
  HashStream root;
  root.u32(kStageKeyVersion);
  root.u64(db::hashLibrary(*out.lib));
  root.u64(db::hashNetlist(nl));
  root.u64(db::hashFloorplan(out.fp));
  root.u64(db::hashTileGroups(out.tile->groups));

  // Stage 0: place (seeding + global place / overlap-fix + repeaters).
  {
    HashStream h;
    h.u64(root.digest());
    h.str(kPipelineStageNames[0]);
    h.b(flags.skipGlobalPlace);
    h.b(flags.insertRepeaters);
    h.i64(opt.partialBlockageResolution);
    h.str(placeEngineName(opt.placer.engine));
    h.i32(opt.placer.analytic.maxIters);
    h.i32(opt.placer.analytic.minIters);
    h.f64(opt.placer.analytic.targetOverflow);
    h.f64(opt.placer.analytic.targetDensity);
    h.f64(opt.placer.analytic.splitNetWeight);
    h.i32(opt.placer.maxIters);
    h.i32(opt.placer.pureSolveRounds);
    h.f64(opt.placer.anchorWeightInit);
    h.f64(opt.placer.anchorWeightGrowth);
    h.f64(opt.placer.clockNetWeight);
    h.i32(opt.placer.minIters);
    h.u64(opt.placer.seed);
    h.b(opt.placer.useExistingPositions);
    h.i64(opt.placer.legalizer.partialBlockageResolution);
    h.i32(opt.placer.legalizer.rowSearchWindow);
    h.f64(opt.placer.legalizer.cellWidthScale);
    keys[0] = h.digest();
  }

  // Stage 1: pre_route_opt (estimated parasitics + sizing/buffering).
  {
    HashStream h;
    h.u64(keys[0]);
    h.str(kPipelineStageNames[1]);
    h.b(flags.preRouteOpt);
    if (flags.preRouteOpt) {
      EstimationOptions eopt =
          makeEstimationOptions(out.routingBeol, flags.estimationParasiticScale);
      eopt.lengthScale = flags.estimationLengthScale;
      h.f64(eopt.rPerUm);
      h.f64(eopt.cPerUm);
      h.f64(eopt.parasiticScale);
      h.f64(eopt.lengthScale);
      hashTimingGoal(h, opt);
      hashOptimizerOptions(h, opt.optBase);
      h.i64(opt.partialBlockageResolution);
    }
    keys[1] = h.digest();
  }

  // Stage 2: cts.
  {
    HashStream h;
    h.u64(keys[1]);
    h.str(kPipelineStageNames[2]);
    h.i32(opt.cts.maxSinksPerLeaf);
    h.str(opt.cts.bufferCell == nullptr ? "" : opt.cts.bufferCell);
    h.i64(opt.partialBlockageResolution);
    keys[2] = h.digest();
  }

  // Stage 3: route (the full BEOL enters the chain here — a bump-pitch or
  // macro-die-stack change invalidates route and downstream, nothing above).
  {
    HashStream h;
    h.u64(keys[2]);
    h.str(kPipelineStageNames[3]);
    h.u64(db::hashBeol(out.routingBeol));
    h.i64(opt.grid.gcellSize);
    h.f64(opt.grid.trackUtilization);
    h.f64(opt.grid.viaUtilization);
    h.f64(opt.grid.m1Utilization);
    h.i32(opt.router.maxIterations);
    h.f64(opt.router.viaCost);
    h.f64(opt.router.f2fViaCost);
    h.f64(opt.router.historyWeight);
    h.f64(opt.router.presentWeightInit);
    h.f64(opt.router.presentWeightGrowth);
    h.i32(opt.router.batchSize);
    h.b(opt.router.costCache);
    h.i32(opt.router.searchHaloGcells);
    h.b(opt.router.bucketQueue);
    h.i32(opt.router.regionSizeGcells);
    h.b(opt.router.timingDriven);
    h.f64(opt.router.criticalityExponent);
    // The refresh cadence changes the negotiation ordering; the callback
    // itself is flow-installed from inputs already in the chain.
    h.i32(opt.router.critRefreshEvery);
    // Caller-supplied criticality is a route input; the flow-computed one
    // (timingDriven with an empty vector) is a pure function of inputs
    // already in the chain plus the estimation knobs hashed here.
    h.i64(static_cast<std::int64_t>(opt.router.netCriticality.size()));
    for (const double c : opt.router.netCriticality) h.f64(c);
    if (opt.router.timingDriven) {
      EstimationOptions eopt =
          makeEstimationOptions(out.routingBeol, flags.estimationParasiticScale);
      eopt.lengthScale = flags.estimationLengthScale;
      h.f64(eopt.rPerUm);
      h.f64(eopt.cPerUm);
      h.f64(eopt.parasiticScale);
      h.f64(eopt.lengthScale);
    }
    // Incremental ECO seed: the reused routes are a route input, so the
    // seed *content* enters the key (an unreadable path hashes as the path
    // string -- the route stage will warn and fall back to a full route).
    h.b(!opt.ecoRouteFrom.empty());
    if (!opt.ecoRouteFrom.empty()) {
      std::vector<std::uint8_t> bytes;
      if (io::readFileBytes(opt.ecoRouteFrom, bytes)) {
        h.u64(db::fnv1a64(bytes.data(), bytes.size()));
      } else {
        h.str(opt.ecoRouteFrom);
      }
    }
    keys[3] = h.digest();
  }

  // Stage 4: extract (pure function of routes + BEOL, both in the chain).
  {
    HashStream h;
    h.u64(keys[3]);
    h.str(kPipelineStageNames[4]);
    keys[4] = h.digest();
  }

  // Stage 5: post_route_opt.
  {
    HashStream h;
    h.u64(keys[4]);
    h.str(kPipelineStageNames[5]);
    h.b(flags.postRouteOpt);
    if (flags.postRouteOpt) {
      hashTimingGoal(h, opt);
      hashOptimizerOptions(h, opt.optBase);
    }
    keys[5] = h.digest();
  }

  // Stage 6: signoff STA + power + verification.
  {
    HashStream h;
    h.u64(keys[5]);
    h.str(kPipelineStageNames[6]);
    h.str(opt.signoffCorner.name == nullptr ? "" : opt.signoffCorner.name);
    h.f64(opt.signoffCorner.delayDerate);
    hashTimingGoal(h, opt);
    h.f64(out.logicTech.vdd);
    h.b(opt.signoff);
    h.b(opt.verify.drc);
    h.b(opt.verify.connectivity);
    h.b(opt.verify.placement);
    h.b(opt.verify.f2f);
    h.i32(opt.verify.maxViolationsPerKind);
    keys[6] = h.digest();
  }
  return keys;
}

db::DbStatus saveStageCheckpoint(const FlowOutput& out, const std::string& pipelineTrace,
                                 int stageIdx, std::uint64_t key, const std::string& path) {
  const Netlist& nl = out.tile->netlist;
  DesignDb dbFile;
  dbFile.setSection(kSecMeta, payloadOf([&](BinWriter& w) {
                      w.u32(kStageKeyVersion);
                      w.i32(stageIdx);
                      w.str(stageIdx >= 0 && stageIdx < 7 ? kPipelineStageNames[stageIdx] : "?");
                      w.u64(key);
                    }));
  dbFile.setSection(kSecLibrary,
                    payloadOf([&](BinWriter& w) { db::encodeLibrary(w, *out.lib); }));
  dbFile.setSection(kSecNetlist, payloadOf([&](BinWriter& w) { db::encodeNetlist(w, nl); }));
  dbFile.setSection(kSecGroups,
                    payloadOf([&](BinWriter& w) { db::encodeTileGroups(w, out.tile->groups); }));
  dbFile.setSection(kSecTileConfig,
                    payloadOf([&](BinWriter& w) { db::encodeTileConfig(w, out.tile->config); }));
  dbFile.setSection(kSecLogicTech,
                    payloadOf([&](BinWriter& w) { db::encodeTechNode(w, out.logicTech); }));
  dbFile.setSection(kSecMacroTech,
                    payloadOf([&](BinWriter& w) { db::encodeTechNode(w, out.macroTech); }));
  dbFile.setSection(kSecBeol,
                    payloadOf([&](BinWriter& w) { db::encodeBeol(w, out.routingBeol); }));
  dbFile.setSection(kSecFloorplan,
                    payloadOf([&](BinWriter& w) { db::encodeFloorplan(w, out.fp); }));
  dbFile.setSection(kSecCts, payloadOf([&](BinWriter& w) { db::encodeCtsResult(w, out.cts); }));
  dbFile.setSection(kSecRoutes,
                    payloadOf([&](BinWriter& w) { db::encodeRoutingResult(w, out.routes); }));
  dbFile.setSection(kSecParasitics,
                    payloadOf([&](BinWriter& w) { db::encodeParasitics(w, out.paras); }));
  dbFile.setSection(kSecClock,
                    payloadOf([&](BinWriter& w) { db::encodeClockModel(w, out.clock); }));
  dbFile.setSection(kSecMetrics,
                    payloadOf([&](BinWriter& w) { encodeMetrics(w, out.metrics); }));
  dbFile.setSection(kSecVerify,
                    payloadOf([&](BinWriter& w) { db::encodeVerifyReport(w, out.verify); }));
  dbFile.setSection(kSecTrace, payloadOf([&](BinWriter& w) { w.str(pipelineTrace); }));
  return dbFile.saveFile(path);
}

int checkpointStageIndex(const db::DesignDb& dbFile) {
  const std::vector<std::uint8_t>* payload = dbFile.section(kSecMeta);
  if (payload == nullptr) return -1;
  BinReader r(*payload);
  const std::uint32_t keyVersion = r.u32();
  const std::int32_t stage = r.i32();
  if (!r.ok() || keyVersion != kStageKeyVersion || stage < 0 || stage > 6) return -1;
  return stage;
}

db::DbStatus restoreStageCheckpoint(const std::string& path, FlowOutput& out,
                                    std::string& pipelineTrace) {
  DesignDb dbFile;
  if (DbStatus s = dbFile.loadFile(path); !s.ok()) return s;
  // The live library must be the one the checkpoint was taken against: the
  // pipeline never extends the library, so a mismatch means the cache entry
  // belongs to a different design generation. Compare content hashes.
  const std::vector<std::uint8_t>* libSection = dbFile.section(kSecLibrary);
  if (libSection == nullptr) {
    return DbStatus::fail(DbError::kMissingSection, "missing section 'library'");
  }
  if (db::fnv1a64(libSection->data(), libSection->size()) != db::hashLibrary(*out.lib)) {
    return DbStatus::fail(DbError::kHashMismatch,
                          "checkpoint library does not match the live library");
  }
  // Decode everything into temporaries first so a malformed later section
  // cannot leave out half-restored.
  RestoredState st;
  Netlist& nl = out.tile->netlist;
  if (DbStatus s = decodeSection(dbFile, kSecNetlist,
                                 [&](BinReader& r) { return db::decodeNetlist(r, nl); });
      !s.ok()) {
    return s;
  }
  if (DbStatus s = decodeSharedSections(dbFile, nl, st); !s.ok()) return s;
  pipelineTrace = std::move(st.trace);
  applyStageOutputs(std::move(st), out);
  return DbStatus::success();
}

db::DbStatus loadFlowCheckpoint(const std::string& path, FlowOutput& out,
                                std::string* pipelineTrace) {
  DesignDb dbFile;
  if (DbStatus s = dbFile.loadFile(path); !s.ok()) return s;
  auto lib = std::make_unique<Library>();
  if (DbStatus s = decodeSection(dbFile, kSecLibrary,
                                 [&](BinReader& r) { return db::decodeLibrary(r, *lib); });
      !s.ok()) {
    return s;
  }
  auto tile = std::make_unique<Tile>(lib.get());
  if (DbStatus s = decodeSection(dbFile, kSecNetlist,
                                 [&](BinReader& r) { return db::decodeNetlist(r, tile->netlist); });
      !s.ok()) {
    return s;
  }
  RestoredState st;
  if (DbStatus s = decodeSharedSections(dbFile, tile->netlist, st); !s.ok()) return s;
  out.lib = std::move(lib);
  out.tile = std::move(tile);
  out.grid.reset();
  if (pipelineTrace != nullptr) *pipelineTrace = std::move(st.trace);
  applyRestoredState(std::move(st), out);
  return DbStatus::success();
}

}  // namespace m3d
