#include "flows/flow_common.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <map>
#include <utility>

#include "core/parallel.hpp"
#include "db/stage_cache.hpp"
#include "io/fsutil.hpp"
#include "obs/chrome_trace.hpp"

#include "flows/case_study.hpp"
#include "flows/flow_checkpoint.hpp"
#include "lib/macro_projection.hpp"
#include "opt/net_buffering.hpp"

namespace m3d {

namespace {

std::string sanitizeForFilename(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.') {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back('_');
    }
  }
  return out;
}

/// M3D_ROUTE_* environment overrides for the region/timing router knobs,
/// with the same malformed-env hardening convention as M3D_THREADS
/// (core/parallel.cpp): a value that fails to parse warns via the logger
/// and leaves the option at its built-in default. Env values only apply
/// while the option still equals its default -- an explicit FlowOptions
/// setting always wins.
bool envLong(const char* name, long minVal, long* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* endp = nullptr;
  const long parsed = std::strtol(v, &endp, 10);
  if (endp == v || *endp != '\0' || parsed < minVal) {
    M3D_LOG(warn) << "ignoring invalid " << name << "='" << v << "' (expected an integer >= "
                  << minVal << "); keeping the default";
    return false;
  }
  *out = parsed;
  return true;
}

bool envDouble(const char* name, double minExclusive, double* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* endp = nullptr;
  const double parsed = std::strtod(v, &endp);
  if (endp == v || *endp != '\0' || !(parsed > minExclusive)) {
    M3D_LOG(warn) << "ignoring invalid " << name << "='" << v << "' (expected a number > "
                  << minExclusive << "); keeping the default";
    return false;
  }
  *out = parsed;
  return true;
}

/// Applies the M3D_ROUTE_REGION_SIZE / M3D_ROUTE_TIMING_DRIVEN /
/// M3D_ROUTE_CRIT_EXP overrides to \p ropt. Runs before the stage keys are
/// computed so a cache key always hashes the *effective* knobs.
void applyRouterEnvOverrides(RouterOptions& ropt) {
  const RouterOptions defaults;
  long l = 0;
  double d = 0.0;
  if (ropt.regionSizeGcells == defaults.regionSizeGcells &&
      envLong("M3D_ROUTE_REGION_SIZE", 0, &l)) {
    ropt.regionSizeGcells = static_cast<int>(l);
  }
  if (ropt.timingDriven == defaults.timingDriven && envLong("M3D_ROUTE_TIMING_DRIVEN", 0, &l)) {
    ropt.timingDriven = l != 0;
  }
  if (ropt.criticalityExponent == defaults.criticalityExponent &&
      envDouble("M3D_ROUTE_CRIT_EXP", 0.0, &d)) {
    ropt.criticalityExponent = d;
  }
}

/// M3D_PLACE_ENGINE override for the global-place engine, with the same
/// malformed-env hardening convention: an unknown engine name warns and
/// keeps the built-in default (b2b). Only applies while the option still
/// equals its default -- an explicit FlowOptions setting always wins.
void applyPlacerEnvOverrides(PlacerOptions& popt) {
  const PlacerOptions defaults;
  if (popt.engine != defaults.engine) return;
  const char* v = std::getenv("M3D_PLACE_ENGINE");
  if (v == nullptr || *v == '\0') return;
  PlaceEngine parsed = PlaceEngine::kB2B;
  if (!parsePlaceEngine(v, parsed)) {
    M3D_LOG(warn) << "ignoring invalid M3D_PLACE_ENGINE='" << v
                  << "' (expected 'b2b' or 'analytic'); keeping the default";
    return;
  }
  popt.engine = parsed;
}

/// Guard for post-route in-place sizing: no re-legalization happens after
/// routing, so a wider master is acceptable only while the cell still fits
/// between its frozen row neighbors, inside the die, and clear of hard
/// blockages. Right limits are snapshotted once -- cells only grow rightward
/// (origin is frozen), so a neighbor's own growth can never reach past its
/// frozen xlo.
std::function<bool(InstId, CellTypeId)> frozenFootprintGuard(const Netlist& nl,
                                                             const Floorplan& fp) {
  std::vector<Dbu> rightLimit(static_cast<std::size_t>(nl.numInstances()), fp.die.xhi);
  std::map<int, std::vector<std::pair<Dbu, InstId>>> byRow;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (inst.fixed || nl.cellOf(i).isMacro()) continue;
    const int row = static_cast<int>((inst.pos.y - fp.die.ylo) / fp.rowHeight);
    byRow[row].push_back({inst.pos.x, i});
  }
  for (auto& [row, cells] : byRow) {
    (void)row;
    std::sort(cells.begin(), cells.end());
    for (std::size_t k = 0; k + 1 < cells.size(); ++k) {
      rightLimit[static_cast<std::size_t>(cells[k].second)] = cells[k + 1].first;
    }
  }
  return [&nl, &fp, rightLimit = std::move(rightLimit)](InstId i, CellTypeId newType) {
    const Instance& inst = nl.instance(i);
    if (inst.fixed) return false;
    const CellType& c = nl.library().cell(newType);
    const Rect r{inst.pos.x, inst.pos.y, inst.pos.x + c.width, inst.pos.y + c.height};
    if (r.xhi > rightLimit[static_cast<std::size_t>(i)]) return false;
    if (!fp.die.contains(r)) return false;
    for (const Blockage& b : fp.blockages) {
      if (b.density >= 0.99 && b.rect.overlaps(r)) return false;
    }
    return true;
  };
}

}  // namespace

obs::ScopedRun beginFlowRun(FlowKind kind, const std::string& tileName,
                            const FlowOptions& opt) {
  obs::configureLogging(opt.logLevel);
  // Trace export: option wins, M3D_TRACE_OUT is the fallback. A collector
  // already enabled (an outer flow of a multi-flow run) is left alone; a
  // bad path warns and the flow runs untraced -- tracing never aborts.
  std::string tracePath = opt.traceOut;
  if (tracePath.empty()) {
    if (const char* env = std::getenv("M3D_TRACE_OUT")) tracePath = env;
  }
  obs::TraceCollector& trace = obs::TraceCollector::global();
  if (!tracePath.empty() && !trace.enabled()) {
    if (trace.enable(tracePath)) {
      M3D_LOG(info) << "trace: recording to " << tracePath;
    } else {
      M3D_LOG(warn) << "trace: cannot open '" << tracePath
                    << "' for writing; tracing disabled";
    }
  }
  obs::ScopedRun run(flowName(kind), tileName);
  M3D_LOG(info) << "flow start: " << flowName(kind) << " tile=" << tileName;
  return run;
}

void finishFlowRun(FlowOutput& out, const FlowOptions& opt, obs::ScopedRun& run) {
  const DesignMetrics& m = out.metrics;
  run.final("fclk_mhz", m.fclkMhz);
  run.final("min_period_ns", m.minPeriodNs);
  run.final("emean_fj", m.emeanFj);
  run.final("power_mw", m.powerMw);
  run.final("footprint_mm2", m.footprintMm2);
  run.final("logic_cell_area_mm2", m.logicCellAreaMm2);
  run.final("total_wirelength_m", m.totalWirelengthM);
  run.final("f2f_bumps", static_cast<double>(m.f2fBumps));
  run.final("clock_tree_depth", m.clockTreeDepth);
  run.final("clock_skew_ps", m.clockSkewPs);
  run.final("crit_path_wl_mm", m.critPathWirelengthMm);
  run.final("metal_area_mm2", m.metalAreaMm2);
  run.final("place_hpwl_mm", m.placeHpwlMm);
  run.final("place_overflow", m.placeOverflow);
  run.final("place_iterations", m.placeIterations);
  run.final("overflowed_edges", m.overflowedEdges);
  run.final("unrouted_nets", m.unroutedNets);
  run.final("cells_resized", m.cellsResized);
  run.final("buffers_inserted", m.buffersInserted);
  run.final("verify_violations", m.verifyViolations);
  run.final("verify_warnings", m.verifyWarnings);
  run.final("verify_f2f_bumps", static_cast<double>(m.f2fBumpCount));
  out.report = run.finish();

  std::string path = opt.report.jsonPath;
  if (path.empty()) {
    if (const char* dir = std::getenv("M3D_RUN_REPORT_DIR")) {
      path = std::string(dir) + "/run_" + sanitizeForFilename(out.report.flow) + "_" +
             sanitizeForFilename(out.report.tile) + ".json";
    }
  }
  if (!path.empty()) {
    std::string err;
    if (out.report.writeJsonFile(path, &err)) {
      M3D_LOG(info) << "run report written: " << path;
    } else {
      M3D_LOG(error) << "run report write failed: " << err;
    }
  }
  obs::TraceCollector& trace = obs::TraceCollector::global();
  if (trace.enabled() && !trace.externallyManaged()) {
    const std::string tracePath = trace.path();
    const std::size_t events = trace.eventCount();
    const std::size_t dropped = trace.droppedEvents();
    std::string err;
    if (trace.writeFile(&err)) {
      M3D_LOG(info) << "trace written: " << tracePath << " (" << events << " events"
                    << (dropped > 0 ? ", " + std::to_string(dropped) + " dropped" : "")
                    << ")";
    } else {
      M3D_LOG(warn) << "trace write failed: " << err;
    }
  }
  if (opt.report.logSummary) {
    M3D_LOG(info) << "flow end: " << out.report.flow << " tile=" << out.report.tile
                  << " wall_ms=" << out.report.wallMs
                  << " peak_rss_kb=" << out.report.peakRssKb;
    M3D_LOG(debug) << "\n" << out.report.summaryText();
  }
}

void writeDesignMetricsJson(obs::JsonWriter& w, const DesignMetrics& m) {
  w.beginObject();
  w.kv("flow", std::string_view(m.flow));
  w.kv("tile", std::string_view(m.tileName));
  w.kv("fclk_mhz", m.fclkMhz);
  w.kv("min_period_ns", m.minPeriodNs);
  w.kv("emean_fj", m.emeanFj);
  w.kv("power_mw", m.powerMw);
  w.kv("footprint_mm2", m.footprintMm2);
  w.kv("logic_cell_area_mm2", m.logicCellAreaMm2);
  w.kv("total_wirelength_m", m.totalWirelengthM);
  w.kv("wirelength_logic_die_m", m.wirelengthLogicDieM);
  w.kv("wirelength_macro_die_m", m.wirelengthMacroDieM);
  w.kv("f2f_bumps", m.f2fBumps);
  w.kv("cpin_nf", m.cpinNf);
  w.kv("cwire_nf", m.cwireNf);
  w.kv("clock_tree_depth", m.clockTreeDepth);
  w.kv("clock_skew_ps", m.clockSkewPs);
  w.kv("crit_path_wl_mm", m.critPathWirelengthMm);
  w.kv("metal_area_mm2", m.metalAreaMm2);
  w.kv("overflowed_edges", m.overflowedEdges);
  w.kv("unrouted_nets", m.unroutedNets);
  w.kv("verify_violations", m.verifyViolations);
  w.kv("verify_warnings", m.verifyWarnings);
  w.kv("verify_f2f_bumps", m.f2fBumpCount);
  w.kv("legalize_avg_disp_um", m.legalizeAvgDispUm);
  w.kv("place_hpwl_mm", m.placeHpwlMm);
  w.kv("place_engine", std::string_view(m.placeEngine));
  w.kv("place_overflow", m.placeOverflow);
  w.kv("place_iterations", m.placeIterations);
  w.kv("cells_resized", m.cellsResized);
  w.kv("buffers_inserted", m.buffersInserted);
  w.endObject();
}

const char* flowName(FlowKind kind) {
  switch (kind) {
    case FlowKind::k2D: return "2D";
    case FlowKind::kS2D: return "MoL S2D";
    case FlowKind::kBfS2D: return "BF S2D";
    case FlowKind::kC2D: return "C2D";
    case FlowKind::kMacro3D: return "Macro-3D";
  }
  return "?";
}

void projectMacroDieMacros(Netlist& nl, Library& lib, const TechNode& tech) {
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    Instance& inst = nl.instance(i);
    if (inst.die != DieId::kMacro) continue;
    const CellType& c = lib.cell(inst.type);
    if (!c.isMacro()) continue;
    const std::string projName = c.name + "_PROJ";
    CellTypeId projId = lib.findCell(projName);
    if (projId == kInvalidCellType) {
      projId = lib.addCell(projectToMacroDie(c, tech));
    }
    nl.resize(i, projId);
  }
}

std::vector<Blockage> compositeBlockages(const std::vector<Rect>& rects, const Rect& die,
                                         Dbu resolution, double densityPerRect) {
  std::vector<Blockage> out;
  if (rects.empty()) return out;
  const GridMapping map(die, resolution);
  Grid2D<float> density(map.nx(), map.ny(), 0.0f);
  for (const Rect& r : rects) {
    const Rect clipped = r.intersection(die);
    if (clipped.isEmpty()) continue;
    const int x0 = map.xIndex(clipped.xlo);
    const int x1 = map.xIndex(clipped.xhi - 1);
    const int y0 = map.yIndex(clipped.ylo);
    const int y1 = map.yIndex(clipped.yhi - 1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const Rect cell = map.cellRect(x, y);
        const Rect inter = clipped.intersection(cell);
        if (inter.isEmpty() || cell.area() == 0) continue;
        density.at(x, y) += static_cast<float>(
            densityPerRect * static_cast<double>(inter.area()) / static_cast<double>(cell.area()));
      }
    }
  }
  // Emit runs of equal (quantized) density per grid row.
  for (int y = 0; y < map.ny(); ++y) {
    int runStart = -1;
    int runDens = 0;  // quantized to 5% steps
    auto flush = [&](int xEnd) {
      if (runStart < 0 || runDens == 0) return;
      Blockage b;
      const Rect first = map.cellRect(runStart, y);
      const Rect last = map.cellRect(xEnd - 1, y);
      b.rect = Rect{first.xlo, first.ylo, last.xhi, first.yhi};
      b.density = std::min(1.0, runDens / 20.0);
      out.push_back(b);
    };
    for (int x = 0; x < map.nx(); ++x) {
      const int q = std::min(20, static_cast<int>(density.at(x, y) * 20.0f + 0.5f));
      if (q != runDens) {
        flush(x);
        runStart = x;
        runDens = q;
      } else if (runStart < 0) {
        runStart = x;
      }
    }
    flush(map.nx());
  }
  return out;
}

std::int64_t logicCellArea(const Netlist& nl) {
  std::int64_t area = 0;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const CellType& c = nl.cellOf(i);
    if (c.isMacro() || c.cls == CellClass::kFiller) continue;
    area += c.substrateArea();
  }
  return area;
}

void seedPlacementByModules(Tile& tile, const Floorplan& fp) {
  Netlist& nl = tile.netlist;
  const Point dieCenter = fp.die.center();
  for (const auto& [name, cells] : tile.groups.modules) {
    (void)name;
    // Fixed attachments of this module: macro pins and port positions on
    // nets touching the module's cells.
    std::int64_t sx = 0;
    std::int64_t sy = 0;
    std::int64_t cnt = 0;
    for (InstId i : cells) {
      const Instance& inst = nl.instance(i);
      if (inst.fixed) continue;
      for (const NetId netId : inst.pinNets) {
        if (netId == kInvalidId || nl.net(netId).isClock) continue;
        for (const NetPin& p : nl.net(netId).pins) {
          Point at;
          if (p.kind == NetPin::Kind::kPort) {
            at = nl.port(p.port).pos;
          } else if (nl.instance(p.inst).fixed) {
            at = nl.pinPosition(p);
          } else {
            continue;
          }
          sx += at.x;
          sy += at.y;
          ++cnt;
        }
      }
    }
    const Point seed = cnt > 0 ? Point{sx / cnt, sy / cnt} : dieCenter;
    // Region side from the module's cell area at a moderate target density.
    std::int64_t area = 0;
    std::vector<InstId> movables;
    for (InstId i : cells) {
      const Instance& inst = nl.instance(i);
      if (inst.fixed || nl.cellOf(i).isMacro()) continue;
      area += nl.cellOf(i).substrateArea();
      movables.push_back(i);
    }
    if (movables.empty()) continue;
    // Serpentine order = creation order (the generator's locality metric).
    std::sort(movables.begin(), movables.end());
    const Dbu side = std::max<Dbu>(
        umToDbu(6.0), static_cast<Dbu>(std::sqrt(static_cast<double>(area) / 0.5)));
    // Serpentine fill in creation order: the netlist generator's locality is
    // strongest between instances created close together, so neighbors in
    // creation order become spatial neighbors in the seed.
    const Dbu x0 = seed.x - side / 2;
    const Dbu y0 = seed.y - side / 2;
    const Dbu stripe = std::max<Dbu>(fp.rowHeight, side / 24);
    Dbu cx = 0;
    Dbu cy = 0;
    bool leftToRight = true;
    const double pitch = static_cast<double>(side) * static_cast<double>(stripe) /
                         (static_cast<double>(area) / 0.5);
    for (InstId i : movables) {
      Instance& inst = nl.instance(i);
      const Dbu step = static_cast<Dbu>(
          static_cast<double>(nl.cellOf(i).substrateArea()) / static_cast<double>(stripe) /
          0.5);
      (void)pitch;
      const Dbu px = leftToRight ? cx : side - cx;
      inst.pos = fp.die.clamp(Point{x0 + px, y0 + cy});
      cx += std::max<Dbu>(step, fp.siteWidth);
      if (cx >= side) {
        cx = 0;
        cy += stripe;
        leftToRight = !leftToRight;
        if (cy >= side) cy = 0;  // wrap (slight overfill)
      }
    }
  }
}

void runPnrPipeline(FlowOutput& out, const FlowOptions& optIn, const PipelineFlags& flags,
                    std::ostringstream& callerTrace) {
  Netlist& nl = out.tile->netlist;

  // Fan the flow-wide thread knob into every stage option still at "auto"
  // (stage-specific overrides win). Report the resolved count once so run
  // reports record what the machine actually used.
  FlowOptions opt = optIn;
  if (opt.placer.numThreads == 0) opt.placer.numThreads = opt.numThreads;
  if (opt.router.numThreads == 0) opt.router.numThreads = opt.numThreads;
  if (opt.optBase.numThreads == 0) opt.optBase.numThreads = opt.numThreads;
  // Router env overrides and the ECO seed default must be resolved before
  // the stage keys are computed: the keys hash the effective knobs.
  applyRouterEnvOverrides(opt.router);
  applyPlacerEnvOverrides(opt.placer);
  if (opt.ecoRouteFrom.empty()) {
    if (const char* env = std::getenv("M3D_ECO_ROUTE_FROM")) opt.ecoRouteFrom = env;
  }
  obs::gauge("parallel.threads").set(static_cast<double>(par::resolveThreads(opt.numThreads)));

  // --- Stage cache setup ---------------------------------------------------
  // Content keys are computed once at pipeline entry; with resume enabled,
  // the longest cached prefix is restored from disk (scan from signoff
  // down, restore the deepest hit only) and the remaining stages run as
  // usual, saving their own checkpoints.
  std::string cacheDir = opt.checkpointDir;
  if (cacheDir.empty()) {
    if (const char* env = std::getenv("M3D_CHECKPOINT_DIR")) cacheDir = env;
  }
  db::StageCacheOptions cacheOpt;
  cacheOpt.maxBytes = opt.cacheMaxBytes;
  if (cacheOpt.maxBytes == 0) {
    long budget = 0;
    if (envLong("M3D_CACHE_MAX_BYTES", 0, &budget)) cacheOpt.maxBytes = budget;
  }
  db::StageCache cache(cacheDir, opt.resume, cacheOpt);
  std::array<std::uint64_t, 7> keys{};
  int resumeStage = -1;  // deepest stage restored from cache (-1 = cold).
  if (cache.enabled()) {
    keys = computeStageKeys(out, opt, flags);
    out.routeCheckpointPath = cache.path(3, kPipelineStageNames[3], keys[3]);
    out.finalCheckpointPath = cache.path(6, kPipelineStageNames[6], keys[6]);
    if (cache.resumeEnabled()) {
      for (int i = 6; i >= 0; --i) {
        if (cache.has(i, kPipelineStageNames[i], keys[i])) {
          resumeStage = i;
          break;
        }
      }
    }
  }

  // Pipeline-local trace: checkpointed with each stage, so a restored run
  // replays the exact step log the cold run produced; appended to the
  // caller's trace when the pipeline finishes.
  std::ostringstream trace;

  if (resumeStage >= 0) {
    const std::string path =
        cache.path(resumeStage, kPipelineStageNames[resumeStage], keys[resumeStage]);
    std::string restoredTrace;
    const db::DbStatus st = restoreStageCheckpoint(path, out, restoredTrace);
    if (st.ok()) {
      trace << restoredTrace;
      obs::counter("db.stage_cache_hits").add(resumeStage + 1);
      cache.noteUsed(path);  // LRU touch under the shared-cache index lock
      if (const std::int64_t bytes = io::fileSizeBytes(path); bytes > 0) {
        obs::counter("db.stage_cache_bytes_read").add(bytes);
      }
      M3D_LOG(info) << "stage cache: restored through '"
                    << kPipelineStageNames[resumeStage] << "' from " << path;
      if (resumeStage >= 3) {
        // The RouteGrid is rebuilt, never serialized: it is a pure function
        // of the fixed macros, die, BEOL and grid options, and post-route
        // sizing only touches non-fixed cells, so the rebuild is
        // bit-identical to the grid the routes were committed on.
        out.grid = std::make_unique<RouteGrid>(nl, out.fp.die, out.routingBeol, opt.grid);
      }
    } else {
      obs::counter("db.stage_cache_restore_failures").add(1);
      M3D_LOG(warn) << "stage cache: restore failed (" << db::dbErrorName(st.error) << ": "
                    << st.detail << "); recomputing from scratch";
      // Drop the corrupt entry so this run's recompute re-publishes a good
      // copy (the single-winner publish below would otherwise keep skipping
      // the existing bytes, shadowing the key with garbage forever).
      cache.removeEntry(path);
      resumeStage = -1;
    }
  }
  if (cache.enabled()) obs::counter("db.stage_cache_misses").add(6 - resumeStage);
  out.cacheRestoredStages = resumeStage + 1;

  const auto stageRestored = [&resumeStage](int i) { return i <= resumeStage; };
  const auto saveStage = [&](int stageIdx) {
    if (!cache.enabled()) return;
    const std::string path =
        cache.path(stageIdx, kPipelineStageNames[stageIdx], keys[stageIdx]);
    // Single-winner publish: when a concurrent job already published this
    // key (entries are content-addressed and the flows deterministic, so
    // the bytes are identical), skip the redundant write and just touch
    // the entry's LRU slot.
    if (io::fileExists(path)) {
      cache.noteUsed(path);
      return;
    }
    const db::DbStatus st =
        saveStageCheckpoint(out, trace.str(), stageIdx, keys[stageIdx], path);
    if (st.ok()) {
      obs::counter("db.stage_checkpoints_written").add(1);
      if (const std::int64_t bytes = io::fileSizeBytes(path); bytes > 0) {
        obs::counter("db.stage_cache_bytes_written").add(bytes);
      }
      cache.noteStored(path);  // index entry + LRU eviction under the budget
    } else {
      M3D_LOG(warn) << "stage cache: checkpoint write failed (" << db::dbErrorName(st.error)
                    << ": " << st.detail << ")";
    }
  };

  // --- Placement -----------------------------------------------------------
  {
    obs::ScopedPhase phase(kPipelineStageNames[0]);  // place
    if (cache.enabled()) phase.attr("cache_hit", stageRestored(0) ? 1.0 : 0.0);
    if (!stageRestored(0)) {
    if (!flags.skipGlobalPlace) {
      seedPlacementByModules(*out.tile, out.fp);
      PlacerOptions popt = opt.placer;
      popt.useExistingPositions = true;
      popt.legalizer.partialBlockageResolution = opt.partialBlockageResolution;
      const PlaceResult pr = globalPlace(nl, out.fp, popt);
      out.metrics.placeHpwlMm = displayMm(pr.hpwlUm);
      out.metrics.legalizeAvgDispUm = displayUm(pr.legal.avgDisplacementUm);
      out.metrics.placeEngine = placeEngineName(pr.engine);
      out.metrics.placeOverflow = pr.overflow;
      out.metrics.placeIterations = pr.iterations;
      phase.attr("hpwl_mm", out.metrics.placeHpwlMm);
      phase.attr("iterations", pr.iterations);
      phase.attr("overflow", pr.overflow);
      trace << "place: engine=" << out.metrics.placeEngine
            << " hpwl_mm=" << out.metrics.placeHpwlMm
            << " overflow=" << pr.overflow
            << " legal_fail=" << pr.legal.failedCells << "\n";
      M3D_LOG(info) << "place done: engine=" << out.metrics.placeEngine
                    << " hpwl_mm=" << out.metrics.placeHpwlMm
                    << " overflow=" << pr.overflow
                    << " iters=" << pr.iterations << " legal_fail=" << pr.legal.failedCells;
    } else {
      LegalizerOptions lopt;
      lopt.partialBlockageResolution = opt.partialBlockageResolution;
      const LegalizeResult lr = legalize(nl, out.fp, lopt);
      out.metrics.legalizeAvgDispUm = displayUm(lr.avgDisplacementUm);
      out.metrics.placeHpwlMm = displayMm(dbuToUm(static_cast<Dbu>(nl.totalHpwl())));
      obs::series("place.hpwl").record(dbuToUm(static_cast<Dbu>(nl.totalHpwl())));
      phase.attr("hpwl_mm", out.metrics.placeHpwlMm);
      phase.attr("overlap_fix_disp_um", out.metrics.legalizeAvgDispUm);
      trace << "overlap-fix legalize: avg_disp_um=" << out.metrics.legalizeAvgDispUm
            << " max_disp_um=" << displayUm(lr.maxDisplacementUm) << " fail=" << lr.failedCells
            << "\n";
      M3D_LOG(info) << "place done (overlap-fix): avg_disp_um="
                    << out.metrics.legalizeAvgDispUm << " legal_fail=" << lr.failedCells;
    }

    // Global repeater insertion belongs to the placement stage.
    if (flags.insertRepeaters) {
      const NetBufferingResult nb = bufferLongNets(nl, out.fp);
      out.metrics.buffersInserted += nb.buffersInserted;
      obs::counter("place.repeaters_inserted").add(nb.buffersInserted);
      LegalizerOptions lopt;
      lopt.partialBlockageResolution = opt.partialBlockageResolution;
      const LegalizeResult lr = legalize(nl, out.fp, lopt);
      trace << "repeaters: inserted=" << nb.buffersInserted << " legal_fail=" << lr.failedCells
            << "\n";
      M3D_LOG(info) << "repeaters inserted=" << nb.buffersInserted
                    << " legal_fail=" << lr.failedCells;
    }
    saveStage(0);
    }
  }

  // --- Pre-route optimization on estimated parasitics -----------------------
  {
  obs::ScopedPhase phase(kPipelineStageNames[1]);  // pre_route_opt
  if (cache.enabled()) phase.attr("cache_hit", stageRestored(1) ? 1.0 : 0.0);
  if (!stageRestored(1)) {
  if (flags.preRouteOpt) {
    EstimationOptions eopt =
        makeEstimationOptions(out.routingBeol, flags.estimationParasiticScale);
    eopt.lengthScale = flags.estimationLengthScale;
    EstimatedParasitics provider(eopt);
    out.paras = estimateDesign(nl, eopt);
    const int presized = presizeForLoad(nl, out.paras, provider);
    trace << "presize: resized=" << presized << "\n";
    MaxFreqOptResult r;
    if (opt.maxPerformance) {
      r = optimizeForMaxFrequency(nl, out.paras, provider, nullptr, opt.optBase,
                                  opt.maxFreqRounds);
    } else {
      OptimizerOptions o = opt.optBase;
      o.targetPeriod = opt.targetPeriodNs * 1e-9;
      const OptimizeResult res = optimizeTiming(nl, out.paras, provider, nullptr, o);
      r.cellsResized = res.cellsResized;
      r.buffersInserted = res.buffersInserted;
      r.minPeriod = Sta(nl, out.paras, nullptr, kTypicalCorner, opt.numThreads).findMinPeriod();
    }
    out.metrics.cellsResized += r.cellsResized;
    out.metrics.buffersInserted += r.buffersInserted;
    phase.attr("cells_resized", r.cellsResized);
    phase.attr("buffers_inserted", r.buffersInserted);
    trace << "pre-route opt: resized=" << r.cellsResized << " buffers=" << r.buffersInserted
          << " est_minT_ns=" << r.minPeriod * 1e9 << "\n";
    M3D_LOG(info) << "pre-route opt done: resized=" << r.cellsResized
                  << " buffers=" << r.buffersInserted << " est_minT_ns=" << r.minPeriod * 1e9;
    // Inserted buffers need legal positions.
    LegalizerOptions lopt;
    lopt.partialBlockageResolution = opt.partialBlockageResolution;
    const LegalizeResult lr = legalize(nl, out.fp, lopt);
    if (lr.failedCells > 0) {
      trace << "WARN pre-route-opt legalize fail=" << lr.failedCells << "\n";
      M3D_LOG(warn) << "pre-route-opt legalize fail=" << lr.failedCells;
    }
  } else {
    M3D_LOG(debug) << "pre-route opt skipped";
  }
  saveStage(1);
  }
  }

  // --- Clock tree synthesis --------------------------------------------------
  {
    obs::ScopedPhase phase(kPipelineStageNames[2]);  // cts
    if (cache.enabled()) phase.attr("cache_hit", stageRestored(2) ? 1.0 : 0.0);
    if (!stageRestored(2)) {
    const NetId clockNet = out.tile->groups.clockNet;
    out.cts = synthesizeClockTree(nl, clockNet, out.fp, opt.cts);
    {
      LegalizerOptions lopt;
      lopt.partialBlockageResolution = opt.partialBlockageResolution;
      legalize(nl, out.fp, lopt);
    }
    phase.attr("sinks", out.cts.numSinks);
    phase.attr("buffers", static_cast<double>(out.cts.buffers.size()));
    phase.attr("depth", out.cts.maxDepth);
    trace << "cts: sinks=" << out.cts.numSinks << " buffers=" << out.cts.buffers.size()
          << " depth=" << out.cts.maxDepth << "\n";
    M3D_LOG(info) << "cts done: sinks=" << out.cts.numSinks
                  << " buffers=" << out.cts.buffers.size() << " depth=" << out.cts.maxDepth;
    saveStage(2);
    }
  }

  // --- Routing ---------------------------------------------------------------
  {
    obs::ScopedPhase phase(kPipelineStageNames[3]);  // route
    if (cache.enabled()) phase.attr("cache_hit", stageRestored(3) ? 1.0 : 0.0);
    if (!stageRestored(3)) {
    RouterOptions ropt = opt.router;
    out.grid = std::make_unique<RouteGrid>(nl, out.fp.die, out.routingBeol, opt.grid);
    // Timing-driven routing: per-net criticality from an STA over the
    // placed design's estimated parasitics (routed parasitics do not exist
    // yet), evaluated at the design's own achievable period so the
    // criticality spread is meaningful regardless of the target. The same
    // persistent engine then backs the mid-route refresh hook: between
    // rip-up rounds the router hands back the (fully routed) geometry, we
    // re-extract real parasitics into the same vector, and the engine
    // re-propagates arrivals without rebuilding its graph.
    if (ropt.timingDriven && ropt.netCriticality.empty()) {
      obs::ScopedPhase crit("route.criticality");
      EstimationOptions eopt =
          makeEstimationOptions(out.routingBeol, flags.estimationParasiticScale);
      eopt.lengthScale = flags.estimationLengthScale;
      auto est = std::make_shared<std::vector<NetParasitics>>(estimateDesign(nl, eopt));
      auto sta = std::make_shared<Sta>(nl, *est, nullptr, kTypicalCorner, opt.numThreads);
      ropt.netCriticality = sta->netCriticality(sta->findMinPeriod());
      crit.attr("nets", static_cast<double>(ropt.netCriticality.size()));
      if (ropt.critRefreshEvery > 0) {
        const Netlist* nlp = &nl;
        const RouteGrid* grid = out.grid.get();
        ropt.criticalityRefresh = [nlp, est, sta, grid](const RoutingResult& routes) {
          *est = extractDesign(*nlp, *grid, routes);
          sta->invalidateAllNets();
          return sta->netCriticality(sta->findMinPeriod());
        };
      }
    }
    // Incremental ECO reroute: seed from a prior run's stage checkpoint
    // when one is named; any load/compat failure degrades to a full route.
    bool ecoRouted = false;
    if (!opt.ecoRouteFrom.empty()) {
      FlowOutput prevOut;
      const db::DbStatus st = loadFlowCheckpoint(opt.ecoRouteFrom, prevOut);
      if (st.ok() && prevOut.tile != nullptr && !prevOut.routes.nets.empty()) {
        const RouteGrid prevGrid(prevOut.tile->netlist, prevOut.fp.die, prevOut.routingBeol,
                                 opt.grid);
        out.routes = routeDesignEco(nl, *out.grid, prevGrid, prevOut.routes, ropt);
        ecoRouted = true;
        phase.attr("eco_nets_ripped", static_cast<double>(out.routes.ecoNetsRipped));
        phase.attr("eco_nets_reused", static_cast<double>(out.routes.ecoNetsReused));
        trace << "eco route: seed=" << opt.ecoRouteFrom
              << " ripped=" << out.routes.ecoNetsRipped
              << " reused=" << out.routes.ecoNetsReused
              << " dirty_gcells=" << out.routes.ecoDirtyGcells << "\n";
        M3D_LOG(info) << "eco route: ripped=" << out.routes.ecoNetsRipped << " reused="
                      << out.routes.ecoNetsReused << " of "
                      << (out.routes.ecoNetsRipped + out.routes.ecoNetsReused) << " nets";
      } else {
        M3D_LOG(warn) << "eco route: cannot seed from '" << opt.ecoRouteFrom << "' ("
                      << (st.ok() ? "checkpoint lacks routes" : st.detail)
                      << "); running a full route";
      }
    }
    if (!ecoRouted) out.routes = routeDesign(nl, *out.grid, ropt);
    phase.attr("wl_m", displayM(out.routes.totalWirelengthUm));
    phase.attr("f2f_bumps", static_cast<double>(out.routes.f2fBumps));
    phase.attr("overflow_edges", out.routes.overflowedEdges);
    phase.attr("unrouted", out.routes.unroutedNets);
    trace << "route: wl_m=" << displayM(out.routes.totalWirelengthUm)
          << " f2f=" << out.routes.f2fBumps << " overflow=" << out.routes.overflowedEdges
          << " unrouted=" << out.routes.unroutedNets << "\n";
    M3D_LOG(info) << "route done: wl_m=" << displayM(out.routes.totalWirelengthUm)
                  << " f2f=" << out.routes.f2fBumps
                  << " overflow=" << out.routes.overflowedEdges
                  << " unrouted=" << out.routes.unroutedNets;
    saveStage(3);
    }
  }

  // --- Extraction + clock model ------------------------------------------------
  {
    obs::ScopedPhase phase(kPipelineStageNames[4]);  // extract
    if (cache.enabled()) phase.attr("cache_hit", stageRestored(4) ? 1.0 : 0.0);
    if (!stageRestored(4)) {
    out.paras = extractDesign(nl, *out.grid, out.routes);
    out.clock = updateClockModel(nl, out.paras, out.cts);
    phase.attr("nets", nl.numNets());
    phase.attr("clock_latency_ps", out.clock.maxLatency * 1e12);
    trace << "clock: latency_ps=" << out.clock.maxLatency * 1e12
          << " skew_ps=" << out.clock.skew * 1e12 << "\n";
    M3D_LOG(info) << "extract done: nets=" << nl.numNets()
                  << " clock_latency_ps=" << out.clock.maxLatency * 1e12
                  << " skew_ps=" << out.clock.skew * 1e12;
    saveStage(4);
    }
  }

  // --- Post-route sizing optimization -------------------------------------------
  {
  obs::ScopedPhase phase(kPipelineStageNames[5]);  // post_route_opt
  if (cache.enabled()) phase.attr("cache_hit", stageRestored(5) ? 1.0 : 0.0);
  if (!stageRestored(5)) {
  if (flags.postRouteOpt) {
    RoutedParasitics provider(*out.grid, out.routes);
    // Placement is frozen from here on: sizing must not create overlaps.
    OptimizerOptions guarded = opt.optBase;
    guarded.resizeGuard = frozenFootprintGuard(nl, out.fp);
    const int presized =
        presizeForLoad(nl, out.paras, provider, 130e-12, guarded.resizeGuard);
    trace << "post-route presize: resized=" << presized << "\n";
    MaxFreqOptResult r;
    if (opt.maxPerformance) {
      r = optimizeForMaxFrequency(nl, out.paras, provider, &out.clock, guarded,
                                  opt.maxFreqRounds);
    } else {
      OptimizerOptions o = guarded;
      o.targetPeriod = opt.targetPeriodNs * 1e-9;
      const OptimizeResult res = optimizeTiming(nl, out.paras, provider, &out.clock, o);
      r.cellsResized = res.cellsResized;
      r.buffersInserted = res.buffersInserted;
    }
    out.metrics.cellsResized += r.cellsResized;
    out.metrics.buffersInserted += r.buffersInserted;
    phase.attr("cells_resized", r.cellsResized);
    trace << "post-route opt: resized=" << r.cellsResized << "\n";
    M3D_LOG(info) << "post-route opt done: resized=" << r.cellsResized;
  } else {
    M3D_LOG(debug) << "post-route opt skipped";
  }
  saveStage(5);
  }
  }

  // --- Sign-off STA + power -------------------------------------------------------
  {
  obs::ScopedPhase signoffPhase(kPipelineStageNames[6]);  // signoff
  if (cache.enabled()) signoffPhase.attr("cache_hit", stageRestored(6) ? 1.0 : 0.0);
  if (!stageRestored(6)) {
  Sta sta(nl, out.paras, &out.clock, opt.signoffCorner, opt.numThreads);
  double minPeriod = sta.findMinPeriod();
  if (!std::isfinite(minPeriod)) {
    // No feasible period (see Sta::kInfeasiblePeriod): report at the target
    // instead of poisoning the metrics JSON with inf.
    M3D_LOG(warn) << "signoff: no feasible period; reporting timing at the target period";
    trace << "WARN signoff: no feasible period\n";
    minPeriod = opt.targetPeriodNs * 1e-9;
  }
  const double signoffPeriod =
      opt.maxPerformance ? minPeriod : std::max(minPeriod, opt.targetPeriodNs * 1e-9);
  const TimingReport rep = sta.analyze(signoffPeriod);
  const double freq = 1.0 / signoffPeriod;

  const PowerReport pwr = analyzePower(nl, out.paras, out.logicTech.vdd, freq);

  DesignMetrics& m = out.metrics;
  m.fclkMhz = freq * 1e-6;
  m.minPeriodNs = minPeriod * 1e9;
  m.emeanFj = pwr.energyPerCycle * 1e15;
  m.powerMw = pwr.totalW * 1e3;
  m.logicCellAreaMm2 = displayMm2(dbu2ToUm2(logicCellArea(nl)));
  m.totalWirelengthM = displayM(out.routes.totalWirelengthUm);
  m.wirelengthLogicDieM =
      displayM(out.routes.wirelengthOfDieUm(out.routingBeol, DieId::kLogic));
  m.wirelengthMacroDieM =
      displayM(out.routes.wirelengthOfDieUm(out.routingBeol, DieId::kMacro));
  m.f2fBumps = out.routes.f2fBumps;
  m.cpinNf = fToNf(pwr.caps.pinCapTotal);
  m.cwireNf = fToNf(pwr.caps.wireCapTotal);
  m.clockTreeDepth = out.clock.maxTreeDepth;
  m.clockSkewPs = out.clock.skew * 1e12;
  m.critPathWirelengthMm = displayMm(rep.critPathWirelengthUm);
  m.overflowedEdges = out.routes.overflowedEdges;
  m.unroutedNets = out.routes.unroutedNets;
  signoffPhase.attr("fclk_mhz", m.fclkMhz);
  signoffPhase.attr("emean_fj", m.emeanFj);
  obs::gauge("signoff.fclk_mhz").set(m.fclkMhz);
  obs::gauge("signoff.emean_fj").set(m.emeanFj);
  trace << "signoff: fclk_MHz=" << m.fclkMhz << " Emean_fJ=" << m.emeanFj
        << " critWL_mm=" << m.critPathWirelengthMm << "\n";
  M3D_LOG(info) << "signoff done: fclk_MHz=" << m.fclkMhz << " Emean_fJ=" << m.emeanFj
                << " critWL_mm=" << m.critPathWirelengthMm;

  // --- Independent physical verification (signoff verdict) -----------------
  if (opt.signoff) {
    obs::ScopedPhase verifyPhase("verify");
    VerifyOptions vopt = opt.verify;
    if (vopt.numThreads == 0) vopt.numThreads = opt.numThreads;
    out.verify = verifyDesign(nl, out.fp, *out.grid, out.routes, vopt);
    m.verifyViolations = static_cast<int>(out.verify.errors);
    m.verifyWarnings = static_cast<int>(out.verify.warnings);
    m.f2fBumpCount = out.verify.f2fBumpCount;
    verifyPhase.attr("errors", static_cast<double>(out.verify.errors));
    verifyPhase.attr("warnings", static_cast<double>(out.verify.warnings));
    verifyPhase.attr("f2f_bumps", static_cast<double>(out.verify.f2fBumpCount));
    trace << "verify: " << out.verify.verdictLine() << "\n";
    M3D_LOG(info) << "signoff verdict: " << out.verify.verdictLine();
  }
  saveStage(6);
  }
  }

  callerTrace << trace.str();
}

}  // namespace m3d
