#pragma once

/// \file flow_checkpoint.hpp
/// Flow-state checkpoints on top of the design database (src/db): one
/// .m3ddb file per pipeline stage holding the complete flow state at that
/// stage boundary — library, netlist, tile bookkeeping, tech/BEOL stack,
/// floorplan, CTS tree, committed routes, timing annotations (parasitics +
/// clock model), DesignMetrics, VerifyReport and the pipeline trace text.
///
/// The RouteGrid is deliberately NOT serialized: it is a pure function of
/// (netlist fixed macros, die, BEOL, RouteGridOptions) and is rebuilt
/// deterministically on restore — post-route stages only resize non-fixed
/// standard cells (the frozen-footprint guard rejects fixed instances), so
/// the rebuilt grid is bit-identical to the grid the routes were committed
/// on.
///
/// Stage-cache keys: key[0] chains from a root hash of the pipeline entry
/// state (library + netlist + floorplan + tile groups); key[i] chains from
/// key[i-1], the stage name, and a hash of exactly the FlowOptions subset
/// stage i reads. A perturbation therefore invalidates the first stage
/// whose inputs changed and everything downstream, and nothing upstream —
/// the ECO property. Example: changing the F2F bump pitch
/// (FlowOptions::f2fVia) alters only the combined BEOL, which first enters
/// the chain at the route stage, so place / pre_route_opt / cts stay
/// cache-valid; resizing a macro changes the netlist and invalidates
/// everything. Thread counts are excluded everywhere (results are
/// bit-identical at any count by the determinism contract).

#include <array>
#include <cstdint>
#include <string>

#include "db/design_db.hpp"
#include "db/stage_cache.hpp"
#include "flows/flow_common.hpp"

namespace m3d {

/// Bump when the pipeline semantics or the key recipe change: stale caches
/// from older binaries then miss instead of restoring wrong state.
inline constexpr std::uint32_t kStageKeyVersion = 5;  // v5: exact min-period solve + route crit refresh

/// Content keys of the seven pipeline stages for this pipeline input.
/// Call at pipeline entry (before the place stage mutates the netlist).
std::array<std::uint64_t, 7> computeStageKeys(const FlowOutput& out, const FlowOptions& opt,
                                              const PipelineFlags& flags);

/// Serializes the complete flow state of \p out (plus \p pipelineTrace and
/// the stage identity) into one design-database file at \p path.
db::DbStatus saveStageCheckpoint(const FlowOutput& out, const std::string& pipelineTrace,
                                 int stageIdx, std::uint64_t key, const std::string& path);

/// In-pipeline restore: loads \p path and replaces the mutable flow state
/// of the live \p out in place — the Library and Tile objects (and every
/// outstanding Netlist& held by the flow driver) keep their identity. Only
/// the pipeline *outputs* (netlist, CTS, routes, parasitics, clock model,
/// metrics, verify report, trace) are applied; pipeline *inputs* (BEOL,
/// tech nodes, floorplan, tile groups/config) stay live, because a
/// checkpoint of stage i is valid for every input that enters the key
/// chain only downstream of i (the bump-pitch ECO case). Fails closed
/// (typed status, \p out untouched on container/codec errors before the
/// netlist swap) and rejects checkpoints whose library section does not
/// hash-match the live library. out.grid is not touched; the pipeline
/// rebuilds it when resuming at or past the route stage.
db::DbStatus restoreStageCheckpoint(const std::string& path, FlowOutput& out,
                                    std::string& pipelineTrace);

/// Standalone load: reconstructs a self-contained FlowOutput (fresh Library
/// and Tile) from a checkpoint file, for offline inspection of a saved run.
/// out.grid and out.report are not part of the database and are left empty.
db::DbStatus loadFlowCheckpoint(const std::string& path, FlowOutput& out,
                                std::string* pipelineTrace = nullptr);

/// Stage index recorded in a checkpoint file (-1 if absent/corrupt).
int checkpointStageIndex(const db::DesignDb& dbFile);

}  // namespace m3d
