#pragma once

/// \file units.hpp
/// Database units and unit conversions.
///
/// All geometry in the library is stored in integer database units (DBU) to
/// keep every algorithm deterministic and free of floating-point drift.
/// 1 DBU == 1 nm, so 1 um == 1000 DBU. Electrical quantities (resistance,
/// capacitance, time, power) are stored in double precision with the base
/// units documented next to each field: ohm, farad, second, watt.

#include <cstdint>

namespace m3d {

/// Integer database unit. 1 DBU == 1 nm.
using Dbu = std::int64_t;

/// Database units per micrometer.
inline constexpr Dbu kDbuPerUm = 1000;

/// Converts micrometers to database units (rounds toward zero).
constexpr Dbu umToDbu(double um) noexcept {
  return static_cast<Dbu>(um * static_cast<double>(kDbuPerUm));
}

/// Converts database units to micrometers.
constexpr double dbuToUm(Dbu dbu) noexcept {
  return static_cast<double>(dbu) / static_cast<double>(kDbuPerUm);
}

/// Converts an area in DBU^2 to um^2.
constexpr double dbu2ToUm2(std::int64_t dbu2) noexcept {
  return static_cast<double>(dbu2) / (static_cast<double>(kDbuPerUm) * static_cast<double>(kDbuPerUm));
}

/// Converts an area in DBU^2 to mm^2.
constexpr double dbu2ToMm2(std::int64_t dbu2) noexcept {
  return dbu2ToUm2(dbu2) * 1e-6;
}

/// Converts seconds to nanoseconds (reporting helper).
constexpr double sToNs(double s) noexcept { return s * 1e9; }

/// Converts seconds to picoseconds (reporting helper).
constexpr double sToPs(double s) noexcept { return s * 1e12; }

/// Converts farads to femtofarads (reporting helper).
constexpr double fToFf(double f) noexcept { return f * 1e15; }

/// Converts farads to nanofarads (reporting helper).
constexpr double fToNf(double f) noexcept { return f * 1e9; }

}  // namespace m3d
