#pragma once

/// \file point.hpp
/// 2D integer point in database units.

#include <cmath>
#include <compare>
#include <cstdlib>
#include <ostream>

#include "geom/units.hpp"

namespace m3d {

/// A 2D point in database units.
struct Point {
  Dbu x = 0;
  Dbu y = 0;

  constexpr Point() = default;
  constexpr Point(Dbu x_, Dbu y_) : x(x_), y(y_) {}

  friend constexpr bool operator==(const Point&, const Point&) = default;
  friend constexpr auto operator<=>(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
};

/// Manhattan distance between two points.
constexpr Dbu manhattanDistance(const Point& a, const Point& b) {
  const Dbu dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Dbu dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// Euclidean distance between two points (in DBU, as double).
inline double euclideanDistance(const Point& a, const Point& b) {
  const double dx = static_cast<double>(a.x - b.x);
  const double dy = static_cast<double>(a.y - b.y);
  return std::sqrt(dx * dx + dy * dy);
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

}  // namespace m3d
