#pragma once

/// \file spatial_index.hpp
/// A simple uniform-bin spatial index over rectangles.
///
/// Good enough for the query mixes in this library (macro-overlap checks,
/// blockage lookup during legalization): inserts are O(bins covered), queries
/// return candidate ids which the caller filters by exact geometry.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geom/grid.hpp"
#include "geom/rect.hpp"

namespace m3d {

/// Spatial index storing (id, rect) pairs in uniform bins.
class RectIndex {
 public:
  RectIndex() = default;

  /// \p area is the indexed region; \p binSize the bin edge length in DBU.
  RectIndex(const Rect& area, Dbu binSize) : mapping_(area, binSize), bins_(mapping_.nx(), mapping_.ny()) {}

  /// Inserts a rectangle with a user-provided id.
  void insert(std::int32_t id, const Rect& r) {
    items_.push_back({id, r});
    const int iFirst = static_cast<int>(items_.size()) - 1;
    forEachBin(r, [&](std::vector<int>& bin) { bin.push_back(iFirst); });
  }

  /// Collects the ids of all stored rectangles overlapping \p query
  /// (interior overlap; touching edges excluded). Result is sorted and
  /// deduplicated.
  std::vector<std::int32_t> queryOverlapping(const Rect& query) const {
    std::vector<std::int32_t> out;
    const_cast<RectIndex*>(this)->forEachBin(query, [&](std::vector<int>& bin) {
      for (int idx : bin) {
        if (items_[static_cast<std::size_t>(idx)].rect.overlaps(query)) {
          out.push_back(items_[static_cast<std::size_t>(idx)].id);
        }
      }
    });
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// True if any stored rectangle overlaps \p query.
  bool anyOverlapping(const Rect& query) const {
    bool found = false;
    const_cast<RectIndex*>(this)->forEachBin(query, [&](std::vector<int>& bin) {
      if (found) return;
      for (int idx : bin) {
        if (items_[static_cast<std::size_t>(idx)].rect.overlaps(query)) {
          found = true;
          return;
        }
      }
    });
    return found;
  }

  std::size_t size() const { return items_.size(); }

 private:
  struct Item {
    std::int32_t id;
    Rect rect;
  };

  template <typename Fn>
  void forEachBin(const Rect& r, Fn&& fn) {
    if (bins_.size() == 0) return;
    const int x0 = mapping_.xIndex(r.xlo);
    const int x1 = mapping_.xIndex(r.xhi);
    const int y0 = mapping_.yIndex(r.ylo);
    const int y1 = mapping_.yIndex(r.yhi);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        fn(bins_.at(x, y));
      }
    }
  }

  GridMapping mapping_;
  Grid2D<std::vector<int>> bins_;
  std::vector<Item> items_;
};

}  // namespace m3d
