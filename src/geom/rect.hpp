#pragma once

/// \file rect.hpp
/// Axis-aligned integer rectangle in database units.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <ostream>

#include "geom/point.hpp"

namespace m3d {

/// An axis-aligned rectangle, half-open semantics are NOT used: the rectangle
/// spans [xlo, xhi] x [ylo, yhi]. A rectangle with xlo==xhi or ylo==yhi is a
/// degenerate (zero-area) but valid rectangle; an uninitialized/empty
/// rectangle is represented by Rect::makeEmpty() (xlo > xhi).
struct Rect {
  Dbu xlo = 0;
  Dbu ylo = 0;
  Dbu xhi = 0;
  Dbu yhi = 0;

  constexpr Rect() = default;
  constexpr Rect(Dbu xlo_, Dbu ylo_, Dbu xhi_, Dbu yhi_)
      : xlo(xlo_), ylo(ylo_), xhi(xhi_), yhi(yhi_) {}
  constexpr Rect(const Point& lo, const Point& hi) : xlo(lo.x), ylo(lo.y), xhi(hi.x), yhi(hi.y) {}

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  /// Returns an "empty" rectangle usable as the identity for bounding-box
  /// accumulation via expandToInclude().
  static constexpr Rect makeEmpty() {
    return Rect{INT64_MAX / 4, INT64_MAX / 4, INT64_MIN / 4, INT64_MIN / 4};
  }

  constexpr bool isEmpty() const { return xlo > xhi || ylo > yhi; }

  constexpr Dbu width() const { return xhi - xlo; }
  constexpr Dbu height() const { return yhi - ylo; }
  constexpr std::int64_t area() const {
    return isEmpty() ? 0 : static_cast<std::int64_t>(width()) * static_cast<std::int64_t>(height());
  }
  constexpr Dbu halfPerimeter() const { return isEmpty() ? 0 : width() + height(); }

  constexpr Point lo() const { return {xlo, ylo}; }
  constexpr Point hi() const { return {xhi, yhi}; }
  constexpr Point center() const { return {(xlo + xhi) / 2, (ylo + yhi) / 2}; }

  constexpr bool contains(const Point& p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }
  constexpr bool contains(const Rect& r) const {
    return r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo && r.yhi <= yhi;
  }
  /// True when the two rectangles share interior area (touching edges do not
  /// count as an overlap).
  constexpr bool overlaps(const Rect& r) const {
    return xlo < r.xhi && r.xlo < xhi && ylo < r.yhi && r.ylo < yhi;
  }
  /// True when the two rectangles share at least a point (edges count).
  constexpr bool intersects(const Rect& r) const {
    return xlo <= r.xhi && r.xlo <= xhi && ylo <= r.yhi && r.ylo <= yhi;
  }

  /// Returns the intersection; empty rect if disjoint.
  constexpr Rect intersection(const Rect& r) const {
    Rect out{std::max(xlo, r.xlo), std::max(ylo, r.ylo), std::min(xhi, r.xhi),
             std::min(yhi, r.yhi)};
    return out;
  }

  /// Grows the rectangle to include a point.
  constexpr void expandToInclude(const Point& p) {
    xlo = std::min(xlo, p.x);
    ylo = std::min(ylo, p.y);
    xhi = std::max(xhi, p.x);
    yhi = std::max(yhi, p.y);
  }
  /// Grows the rectangle to include another rectangle.
  constexpr void expandToInclude(const Rect& r) {
    if (r.isEmpty()) return;
    xlo = std::min(xlo, r.xlo);
    ylo = std::min(ylo, r.ylo);
    xhi = std::max(xhi, r.xhi);
    yhi = std::max(yhi, r.yhi);
  }

  /// Returns a copy inflated by \p d on every side (negative d shrinks).
  constexpr Rect inflated(Dbu d) const { return {xlo - d, ylo - d, xhi + d, yhi + d}; }

  /// Returns a copy translated by \p delta.
  constexpr Rect translated(const Point& delta) const {
    return {xlo + delta.x, ylo + delta.y, xhi + delta.x, yhi + delta.y};
  }

  /// Returns a copy with every coordinate scaled by num/den (exact integer
  /// arithmetic; den must be positive).
  constexpr Rect scaled(std::int64_t num, std::int64_t den) const {
    assert(den > 0);
    return {xlo * num / den, ylo * num / den, xhi * num / den, yhi * num / den};
  }

  /// Clamps a point into the rectangle.
  constexpr Point clamp(const Point& p) const {
    return {std::clamp(p.x, xlo, xhi), std::clamp(p.y, ylo, yhi)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xlo << ',' << r.ylo << " - " << r.xhi << ',' << r.yhi << ']';
}

}  // namespace m3d
