#pragma once

/// \file grid.hpp
/// Dense 2D grid container and a uniform grid index over a die area.
///
/// Used by the placer (density bins), the global router (GCell grid) and the
/// floorplanner (site maps).

#include <cassert>
#include <cstddef>
#include <vector>

#include "geom/rect.hpp"

namespace m3d {

/// Dense row-major 2D array.
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(int nx, int ny, const T& init = T{})
      : nx_(nx), ny_(ny), data_(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny), init) {
    assert(nx >= 0 && ny >= 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }

  bool inBounds(int x, int y) const { return x >= 0 && x < nx_ && y >= 0 && y < ny_; }

  T& at(int x, int y) {
    assert(inBounds(x, y));
    return data_[static_cast<std::size_t>(y) * nx_ + x];
  }
  const T& at(int x, int y) const {
    assert(inBounds(x, y));
    return data_[static_cast<std::size_t>(y) * nx_ + x];
  }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

  typename std::vector<T>::iterator begin() { return data_.begin(); }
  typename std::vector<T>::iterator end() { return data_.end(); }
  typename std::vector<T>::const_iterator begin() const { return data_.begin(); }
  typename std::vector<T>::const_iterator end() const { return data_.end(); }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

/// Maps between die coordinates (DBU) and uniform grid-cell indices.
class GridMapping {
 public:
  GridMapping() = default;

  /// Builds a mapping that covers \p area with cells of approximately
  /// \p cellSize DBU (the last row/column absorbs the remainder).
  GridMapping(const Rect& area, Dbu cellSize)
      : area_(area), cell_(cellSize) {
    assert(cellSize > 0);
    assert(!area.isEmpty());
    nx_ = static_cast<int>((area.width() + cellSize - 1) / cellSize);
    ny_ = static_cast<int>((area.height() + cellSize - 1) / cellSize);
    nx_ = std::max(nx_, 1);
    ny_ = std::max(ny_, 1);
  }

  const Rect& area() const { return area_; }
  Dbu cellSize() const { return cell_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }

  /// Grid x index of a die coordinate (clamped into range).
  int xIndex(Dbu x) const {
    const Dbu rel = std::clamp<Dbu>(x - area_.xlo, 0, area_.width() - 1);
    return std::min<int>(static_cast<int>(rel / cell_), nx_ - 1);
  }
  /// Grid y index of a die coordinate (clamped into range).
  int yIndex(Dbu y) const {
    const Dbu rel = std::clamp<Dbu>(y - area_.ylo, 0, area_.height() - 1);
    return std::min<int>(static_cast<int>(rel / cell_), ny_ - 1);
  }

  /// Die-coordinate rectangle covered by grid cell (ix, iy).
  Rect cellRect(int ix, int iy) const {
    const Dbu xlo = area_.xlo + static_cast<Dbu>(ix) * cell_;
    const Dbu ylo = area_.ylo + static_cast<Dbu>(iy) * cell_;
    const Dbu xhi = (ix == nx_ - 1) ? area_.xhi : xlo + cell_;
    const Dbu yhi = (iy == ny_ - 1) ? area_.yhi : ylo + cell_;
    return {xlo, ylo, xhi, yhi};
  }

  /// Center of grid cell (ix, iy) in die coordinates.
  Point cellCenter(int ix, int iy) const { return cellRect(ix, iy).center(); }

 private:
  Rect area_;
  Dbu cell_ = 1;
  int nx_ = 0;
  int ny_ = 0;
};

}  // namespace m3d
