#pragma once

/// \file openpiton.hpp
/// Synthetic OpenPiton-tile netlist generator (the paper's case study,
/// Sec. V / Fig. 3).
///
/// A tile consists of a 64-bit out-of-order RISC-V Ariane core, a private
/// L1 (I+D) and L1.5/L2 cache, a shared-L3 slice, and three parallel NoC
/// routers with N/S/E/W inter-tile links. We reproduce that structure at a
/// scaled size (see flows/case_study.hpp for the scale calibration): each
/// block is a register-bounded random-logic cloud, each cache is a set of
/// generated SRAM bank macros plus a tag array and a controller cloud, and
/// each NoC router exposes aligned, half-cycle-constrained inter-tile ports
/// exactly as the paper's design setup prescribes (Sec. V-1).

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/logic_cloud.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_node.hpp"

namespace m3d {

/// Cache capacities per tile [KB].
struct CacheConfig {
  int l1iKb = 8;
  int l1dKb = 16;
  int l2Kb = 16;
  int l3Kb = 256;
};

/// Full tile configuration.
struct TileConfig {
  std::string name = "small";
  CacheConfig cache;

  // Logic sizes (combinational gates / registers per block).
  int coreGates = 5000;
  int coreRegs = 950;
  int l1CtrlGates = 350;
  int l1CtrlRegs = 70;
  int l2CtrlGates = 800;
  int l2CtrlRegs = 160;
  int l3CtrlGates = 1100;
  int l3CtrlRegs = 220;
  int nocGates = 550;
  int nocRegs = 140;

  int numNocs = 3;        ///< parallel on-chip networks (paper: 3).
  int nocDataBits = 16;   ///< inter-tile link width per NoC per direction (scaled).
  int wordBits = 32;      ///< SRAM word width (scaled from 64/144).
  int maxBankKb = 64;     ///< largest SRAM bank; bigger caches are banked.

  /// Effective bitcell area [um^2]; case-study calibration such that macros
  /// occupy >50% of the tile substrate (paper Sec. V observation).
  double bitcellUm2 = 0.006;

  std::uint64_t seed = 0xC0FFEE;
};

/// The paper's small-cache tile: 8 KB L1I, 16 KB L1D, 16 KB L2, 256 KB L3.
TileConfig makeSmallCacheTileConfig();
/// The paper's modern/large-cache tile: 16 KB L1I+L1D, 128 KB L2, 1 MB L3.
TileConfig makeLargeCacheTileConfig();

/// Instance-group bookkeeping for floorplanning/reporting.
struct TileGroups {
  std::vector<InstId> macros;          ///< all SRAM bank/tag instances.
  std::vector<InstId> coreCells;
  std::vector<InstId> cacheCtrlCells;
  std::vector<InstId> nocCells;
  /// Fine-grained logical modules ("core", "l1i", "l1d", "l2", "l3",
  /// "noc0".., relays): used for hierarchical placement seeding.
  std::vector<std::pair<std::string, std::vector<InstId>>> modules;
  NetId clockNet = kInvalidId;
  PortId clockPort = kInvalidId;
};

/// Generated tile: netlist plus group bookkeeping.
struct Tile {
  explicit Tile(const Library* lib) : netlist(lib) {}
  Netlist netlist;
  TileGroups groups;
  TileConfig config;
};

/// Generates the tile netlist. Extends \p lib with the SRAM macro masters
/// the configuration needs (idempotent per distinct geometry).
Tile generateTile(Library& lib, const TechNode& tech, const TileConfig& cfg);

}  // namespace m3d
