#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "core/parallel.hpp"

namespace m3d {

Side oppositeSide(Side s) {
  switch (s) {
    case Side::kNorth: return Side::kSouth;
    case Side::kSouth: return Side::kNorth;
    case Side::kEast: return Side::kWest;
    case Side::kWest: return Side::kEast;
  }
  return Side::kNorth;
}

const char* sideName(Side s) {
  switch (s) {
    case Side::kNorth: return "N";
    case Side::kSouth: return "S";
    case Side::kEast: return "E";
    case Side::kWest: return "W";
  }
  return "?";
}

InstId Netlist::addInstance(const std::string& name, CellTypeId type) {
  Instance inst;
  inst.name = name;
  inst.type = type;
  inst.pinNets.assign(lib_->cell(type).pins.size(), kInvalidId);
  insts_.push_back(std::move(inst));
  return static_cast<InstId>(insts_.size()) - 1;
}

NetId Netlist::addNet(const std::string& name) {
  Net n;
  n.name = name;
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size()) - 1;
}

PortId Netlist::addPort(const std::string& name, PinDir dir, Side side, bool isClock) {
  Port p;
  p.name = name;
  p.dir = dir;
  p.side = side;
  p.isClock = isClock;
  ports_.push_back(std::move(p));
  return static_cast<PortId>(ports_.size()) - 1;
}

void Netlist::connect(NetId netId, InstId instId, int libPin) {
  Instance& inst = instance(instId);
  assert(libPin >= 0 && libPin < static_cast<int>(inst.pinNets.size()));
  assert(inst.pinNets[static_cast<std::size_t>(libPin)] == kInvalidId && "pin already connected");
  inst.pinNets[static_cast<std::size_t>(libPin)] = netId;

  Net& n = net(netId);
  const NetPin np = NetPin::makeInstPin(instId, libPin);
  const LibPin& lp = lib_->cell(inst.type).pins[static_cast<std::size_t>(libPin)];
  if (lp.dir == PinDir::kOutput) {
    assert(n.driverIdx < 0 && "net already has a driver");
    n.driverIdx = static_cast<int>(n.pins.size());
  }
  n.pins.push_back(np);
}

void Netlist::connect(NetId netId, InstId instId, const std::string& pinName) {
  const auto idx = cellOf(instId).findPin(pinName);
  assert(idx.has_value());
  connect(netId, instId, *idx);
}

void Netlist::connectPort(NetId netId, PortId portId) {
  Port& p = port(portId);
  assert(p.net == kInvalidId && "port already connected");
  p.net = netId;
  Net& n = net(netId);
  if (p.dir == PinDir::kInput) {
    assert(n.driverIdx < 0 && "net already has a driver");
    n.driverIdx = static_cast<int>(n.pins.size());
  }
  if (p.isClock) n.isClock = true;
  n.pins.push_back(NetPin::makePort(portId));
}

void Netlist::disconnect(NetId netId, const NetPin& pin) {
  Net& n = net(netId);
  auto it = std::find(n.pins.begin(), n.pins.end(), pin);
  assert(it != n.pins.end());
  const int idx = static_cast<int>(it - n.pins.begin());
  assert(idx != n.driverIdx && "cannot disconnect the driver");
  n.pins.erase(it);
  if (n.driverIdx > idx) --n.driverIdx;
  if (pin.kind == NetPin::Kind::kInstPin) {
    instance(pin.inst).pinNets[static_cast<std::size_t>(pin.libPin)] = kInvalidId;
  } else {
    port(pin.port).net = kInvalidId;
  }
}

void Netlist::resize(InstId instId, CellTypeId newType) {
  Instance& inst = instance(instId);
  const CellType& oldCell = lib_->cell(inst.type);
  const CellType& newCell = lib_->cell(newType);
  assert(oldCell.pins.size() == newCell.pins.size());
  for (std::size_t i = 0; i < oldCell.pins.size(); ++i) {
    assert(oldCell.pins[i].name == newCell.pins[i].name);
    assert(oldCell.pins[i].dir == newCell.pins[i].dir);
  }
  (void)oldCell;
  (void)newCell;
  inst.type = newType;
}

void Netlist::restore(std::vector<Instance> insts, std::vector<Net> nets,
                      std::vector<Port> ports) {
  insts_ = std::move(insts);
  nets_ = std::move(nets);
  ports_ = std::move(ports);
}

Point Netlist::pinPosition(const NetPin& p) const {
  if (p.kind == NetPin::Kind::kPort) return port(p.port).pos;
  const Instance& inst = instance(p.inst);
  const LibPin& lp = lib_->cell(inst.type).pins[static_cast<std::size_t>(p.libPin)];
  return inst.pos + lp.offset;
}

const std::string& Netlist::pinLayer(const NetPin& p) const {
  if (p.kind == NetPin::Kind::kPort) return port(p.port).layer;
  const Instance& inst = instance(p.inst);
  return lib_->cell(inst.type).pins[static_cast<std::size_t>(p.libPin)].layer;
}

double Netlist::pinCap(const NetPin& p) const {
  if (p.kind == NetPin::Kind::kPort) {
    const Port& pt = port(p.port);
    return pt.dir == PinDir::kOutput ? pt.cap : 0.0;
  }
  const Instance& inst = instance(p.inst);
  return lib_->cell(inst.type).pins[static_cast<std::size_t>(p.libPin)].cap;
}

bool Netlist::isDriverPin(const NetPin& p) const {
  if (p.kind == NetPin::Kind::kPort) return port(p.port).dir == PinDir::kInput;
  const Instance& inst = instance(p.inst);
  return lib_->cell(inst.type).pins[static_cast<std::size_t>(p.libPin)].dir == PinDir::kOutput;
}

Dbu Netlist::netHpwl(NetId n) const {
  const Net& nn = net(n);
  if (nn.pins.size() < 2) return 0;
  Rect bb = Rect::makeEmpty();
  for (const auto& p : nn.pins) bb.expandToInclude(pinPosition(p));
  return bb.halfPerimeter();
}

std::int64_t Netlist::totalHpwl(int numThreads) const {
  return par::parallelReduce<std::int64_t>(
      0, numNets(), /*grainSize=*/512, 0,
      [this](std::int64_t lo, std::int64_t hi) {
        std::int64_t sum = 0;
        for (std::int64_t n = lo; n < hi; ++n) sum += netHpwl(static_cast<NetId>(n));
        return sum;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; }, numThreads);
}

std::string Netlist::validate() const {
  std::ostringstream err;
  for (NetId n = 0; n < numNets(); ++n) {
    const Net& nn = net(n);
    if (nn.pins.empty()) {
      err << "net " << nn.name << ": no pins; ";
      continue;
    }
    if (nn.driverIdx < 0 || nn.driverIdx >= static_cast<int>(nn.pins.size())) {
      err << "net " << nn.name << ": no driver; ";
      continue;
    }
    if (!isDriverPin(nn.pins[static_cast<std::size_t>(nn.driverIdx)])) {
      err << "net " << nn.name << ": driverIdx is not a driver pin; ";
    }
    int drivers = 0;
    for (const auto& p : nn.pins) drivers += isDriverPin(p) ? 1 : 0;
    if (drivers != 1) err << "net " << nn.name << ": " << drivers << " drivers; ";
    if (nn.pins.size() < 2) err << "net " << nn.name << ": no sink; ";
    // Back-references.
    for (const auto& p : nn.pins) {
      if (p.kind == NetPin::Kind::kInstPin) {
        if (p.inst < 0 || p.inst >= numInstances()) {
          err << "net " << nn.name << ": bad inst ref; ";
          continue;
        }
        const Instance& inst = instance(p.inst);
        if (p.libPin < 0 || p.libPin >= static_cast<int>(inst.pinNets.size()) ||
            inst.pinNets[static_cast<std::size_t>(p.libPin)] != n) {
          err << "net " << nn.name << ": inconsistent pinNets back-ref at " << inst.name << "; ";
        }
      } else {
        if (p.port < 0 || p.port >= numPorts() || port(p.port).net != n) {
          err << "net " << nn.name << ": inconsistent port back-ref; ";
        }
      }
    }
  }
  return err.str();
}

NetlistStats computeStats(const Netlist& nl) {
  NetlistStats s;
  s.numInstances = nl.numInstances();
  s.numNets = nl.numNets();
  s.numPorts = nl.numPorts();
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const CellType& c = nl.cellOf(i);
    if (c.isMacro()) {
      ++s.numMacros;
      s.macroArea += c.boundingArea();
    } else if (c.cls != CellClass::kFiller) {
      ++s.numStdCells;
      s.stdCellArea += c.substrateArea();
      if (c.isSequential()) ++s.numSequential;
    }
  }
  return s;
}

}  // namespace m3d
