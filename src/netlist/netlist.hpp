#pragma once

/// \file netlist.hpp
/// Flat gate-level netlist database: instances of library cells, top-level
/// ports and multi-pin nets. This is the single design database shared by
/// floorplanning, placement, routing, extraction, STA, CTS and the flows.

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "lib/library.hpp"
#include "tech/layer.hpp"

namespace m3d {

using InstId = std::int32_t;
using NetId = std::int32_t;
using PortId = std::int32_t;
inline constexpr std::int32_t kInvalidId = -1;

/// A connection point of a net: either pin \p libPin of instance \p inst, or
/// top-level port \p port.
struct NetPin {
  enum class Kind : std::uint8_t { kInstPin, kPort };
  Kind kind = Kind::kInstPin;
  InstId inst = kInvalidId;
  int libPin = -1;
  PortId port = kInvalidId;

  static NetPin makeInstPin(InstId i, int lp) {
    NetPin p;
    p.kind = Kind::kInstPin;
    p.inst = i;
    p.libPin = lp;
    return p;
  }
  static NetPin makePort(PortId pt) {
    NetPin p;
    p.kind = Kind::kPort;
    p.port = pt;
    return p;
  }
  friend bool operator==(const NetPin&, const NetPin&) = default;
};

/// A placed instance of a library cell.
struct Instance {
  std::string name;
  CellTypeId type = kInvalidCellType;
  Point pos;            ///< lower-left origin [DBU]; set by floorplan/placement.
  bool fixed = false;   ///< true for floorplanned macros.
  DieId die = DieId::kLogic;  ///< physical die the instance sits on.
  std::vector<NetId> pinNets;  ///< net per library-pin index (kInvalidId = open).
};

/// Die edge a top-level port sits on.
enum class Side : std::uint8_t { kNorth, kSouth, kEast, kWest };

Side oppositeSide(Side s);
const char* sideName(Side s);

/// A top-level I/O port.
struct Port {
  std::string name;
  PinDir dir = PinDir::kInput;
  bool isClock = false;
  double cap = 2.0e-15;   ///< external pin load for output ports [F].
  Side side = Side::kNorth;
  Point pos;              ///< set by the floorplanner (alignment constraints).
  std::string layer = "M6";  ///< all tile pins sit on the logic-die top metal.
  NetId net = kInvalidId;
  /// Ports with the same non-negative tag on opposite sides represent the
  /// two ends of an inter-tile path and must be coordinate-aligned
  /// (paper Sec. V-1).
  int pairTag = -1;
  /// True for inter-tile signal ports constrained with a half-cycle delay.
  bool halfCycle = false;
};

/// A signal or clock net.
struct Net {
  std::string name;
  std::vector<NetPin> pins;
  int driverIdx = -1;  ///< index into pins of the driving pin.
  bool isClock = false;
};

class Netlist {
 public:
  explicit Netlist(const Library* lib) : lib_(lib) {}

  const Library& library() const { return *lib_; }

  // --- construction -----------------------------------------------------
  InstId addInstance(const std::string& name, CellTypeId type);
  NetId addNet(const std::string& name);
  PortId addPort(const std::string& name, PinDir dir, Side side, bool isClock = false);

  /// Connects pin \p libPin of \p inst to \p net. Output pins become the
  /// net's driver (a net must not get two drivers).
  void connect(NetId net, InstId inst, int libPin);
  /// Convenience: connect by pin name.
  void connect(NetId net, InstId inst, const std::string& pinName);
  /// Connects a top-level port. Input ports become the net's driver.
  void connectPort(NetId net, PortId port);
  /// Removes a pin from its net (used by the optimizer when re-hooking
  /// sinks onto buffer nets).
  void disconnect(NetId net, const NetPin& pin);

  /// Replaces the cell master of \p inst by \p newType. The new master must
  /// have an identical pin interface (same names/directions in order).
  void resize(InstId inst, CellTypeId newType);

  /// Wholesale state replacement, used by the design-database restore path:
  /// swaps in fully built instance/net/port tables. The library pointer and
  /// the Netlist object identity are unchanged, so references held across a
  /// checkpoint restore (flow drivers keep a Netlist& over the whole
  /// pipeline) stay valid. The caller owns referential integrity; the db
  /// decoder bounds-checks every id before calling this and validate()
  /// remains available as a deep check.
  void restore(std::vector<Instance> insts, std::vector<Net> nets, std::vector<Port> ports);

  // --- access -----------------------------------------------------------
  int numInstances() const { return static_cast<int>(insts_.size()); }
  int numNets() const { return static_cast<int>(nets_.size()); }
  int numPorts() const { return static_cast<int>(ports_.size()); }

  Instance& instance(InstId i) { return insts_[static_cast<std::size_t>(i)]; }
  const Instance& instance(InstId i) const { return insts_[static_cast<std::size_t>(i)]; }
  Net& net(NetId n) { return nets_[static_cast<std::size_t>(n)]; }
  const Net& net(NetId n) const { return nets_[static_cast<std::size_t>(n)]; }
  Port& port(PortId p) { return ports_[static_cast<std::size_t>(p)]; }
  const Port& port(PortId p) const { return ports_[static_cast<std::size_t>(p)]; }

  const CellType& cellOf(InstId i) const { return lib_->cell(instance(i).type); }

  /// Absolute position of a net pin (instance origin + pin offset, or port
  /// position).
  Point pinPosition(const NetPin& p) const;
  /// Layer name the net pin's physical shape sits on.
  const std::string& pinLayer(const NetPin& p) const;
  /// Input capacitance presented by the net pin.
  double pinCap(const NetPin& p) const;
  /// True if this net pin is a driver (output inst pin / input port).
  bool isDriverPin(const NetPin& p) const;

  /// Half-perimeter wirelength of a net at current positions [DBU].
  Dbu netHpwl(NetId n) const;
  /// Sum of HPWL over all nets [DBU]. \p numThreads parallelizes the sum
  /// over chunks of nets (0 = auto, 1 = sequential); the integer partials
  /// are folded in chunk order, so the result is identical at any count.
  std::int64_t totalHpwl(int numThreads = 1) const;

  /// Checks structural invariants; returns a diagnostic string (empty when
  /// healthy): every net has exactly one driver and at least one sink, pin
  /// references are in range, pinNets back-references are consistent.
  std::string validate() const;

 private:
  const Library* lib_;
  std::vector<Instance> insts_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;
};

/// Aggregate area/count statistics of a netlist.
struct NetlistStats {
  int numInstances = 0;
  int numStdCells = 0;
  int numMacros = 0;
  int numSequential = 0;
  int numNets = 0;
  int numPorts = 0;
  std::int64_t stdCellArea = 0;   ///< DBU^2 substrate area of standard cells.
  std::int64_t macroArea = 0;     ///< DBU^2 substrate area of macros (original size).
  double macroAreaFraction() const {
    const double t = static_cast<double>(stdCellArea + macroArea);
    return t == 0.0 ? 0.0 : static_cast<double>(macroArea) / t;
  }
};

NetlistStats computeStats(const Netlist& nl);

}  // namespace m3d
