#include "netlist/dot_export.hpp"

#include <fstream>
#include <ostream>
#include <set>

namespace m3d {

void writeDot(std::ostream& os, const Netlist& nl, const std::string& graphName,
              const DotOptions& opt) {
  const int limit = opt.maxInstances > 0 ? opt.maxInstances : nl.numInstances();
  std::set<InstId> shown;
  for (InstId i = 0; i < nl.numInstances() && static_cast<int>(shown.size()) < limit; ++i) {
    shown.insert(i);
  }

  os << "digraph \"" << graphName << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  for (InstId i : shown) {
    const CellType& c = nl.cellOf(i);
    os << "  i" << i << " [label=\"" << nl.instance(i).name << "\\n" << c.name << "\"";
    if (c.isMacro()) os << ", peripheries=2, style=filled, fillcolor=lightgoldenrod";
    if (c.isSequential()) os << ", style=filled, fillcolor=lightblue";
    os << "];\n";
  }
  for (PortId p = 0; p < nl.numPorts(); ++p) {
    os << "  p" << p << " [label=\"" << nl.port(p).name << "\", shape=ellipse];\n";
  }

  for (NetId n = 0; n < nl.numNets(); ++n) {
    const Net& net = nl.net(n);
    if (net.pins.size() < 2 || net.driverIdx < 0) continue;
    if (net.isClock && !opt.includeClockNets) continue;
    const NetPin& drv = net.pins[static_cast<std::size_t>(net.driverIdx)];
    const bool drvShown = drv.kind == NetPin::Kind::kPort || shown.count(drv.inst) > 0;
    if (!drvShown) continue;
    std::string from = drv.kind == NetPin::Kind::kPort ? "p" + std::to_string(drv.port)
                                                       : "i" + std::to_string(drv.inst);
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      const NetPin& p = net.pins[static_cast<std::size_t>(k)];
      if (p.kind == NetPin::Kind::kInstPin && shown.count(p.inst) == 0) continue;
      const std::string to = p.kind == NetPin::Kind::kPort ? "p" + std::to_string(p.port)
                                                           : "i" + std::to_string(p.inst);
      os << "  " << from << " -> " << to << " [label=\"" << net.name << "\", fontsize=7];\n";
    }
  }
  os << "}\n";
}

bool writeDotFile(const std::string& path, const Netlist& nl, const std::string& graphName,
                  const DotOptions& opt) {
  std::ofstream f(path);
  if (!f) return false;
  writeDot(f, nl, graphName, opt);
  return f.good();
}

}  // namespace m3d
