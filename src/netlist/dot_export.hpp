#pragma once

/// \file dot_export.hpp
/// Graphviz DOT export of a netlist (or a neighborhood of it) for debugging
/// and documentation. Instances become boxes (macros double-boxed), nets
/// become edges from the driver to each sink.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace m3d {

struct DotOptions {
  /// Only emit this many instances (breadth-first from instance 0) to keep
  /// graphs readable; <= 0 emits everything.
  int maxInstances = 200;
  bool includeClockNets = false;
};

/// Writes the netlist as a DOT digraph named \p graphName.
void writeDot(std::ostream& os, const Netlist& nl, const std::string& graphName,
              const DotOptions& opt = DotOptions{});
bool writeDotFile(const std::string& path, const Netlist& nl, const std::string& graphName,
                  const DotOptions& opt = DotOptions{});

}  // namespace m3d
