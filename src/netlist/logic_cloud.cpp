#include "netlist/logic_cloud.hpp"

#include <algorithm>
#include <cassert>

namespace m3d {

namespace {

/// Weighted gate-type mix approximating synthesized control/datapath logic.
struct GateMix {
  const char* name;
  int inputs;
  int weight;
};
constexpr GateMix kMix[] = {
    {"NAND2_X1", 2, 22}, {"NOR2_X1", 2, 12}, {"INV_X1", 1, 14},  {"AOI21_X1", 3, 10},
    {"OAI21_X1", 3, 9},  {"XOR2_X1", 2, 8},  {"MUX2_X1", 3, 8},  {"AND2_X1", 2, 6},
    {"OR2_X1", 2, 6},    {"XNOR2_X1", 2, 3}, {"NAND2_X2", 2, 1}, {"NOR2_X2", 2, 1},
};

int totalMixWeight() {
  int w = 0;
  for (const auto& m : kMix) w += m.weight;
  return w;
}

/// Sliding locality window: most gate inputs come from the last kWindow
/// signals, giving the netlist the placeable locality of real synthesized
/// hierarchies (datapath slices talk to their neighbors).
constexpr std::size_t kWindow = 64;
/// Probability (in %) that an input is a window-local pick.
constexpr int kLocalPct = 78;
/// Probability (in %) of draining a recent unconsumed signal (ensures every
/// net finds a sink without creating long-range connections).
constexpr int kDrainPct = 16;
// Remaining probability: a global pick (long-range control signal).

}  // namespace

CloudResult buildLogicCloud(Netlist& nl, Rng& rng, const CloudSpec& spec) {
  assert(spec.clockNet != kInvalidId);
  assert(spec.numRegs >= 2 && "clouds must be register-bounded");
  const Library& lib = nl.library();
  CloudResult result;

  struct Master {
    CellTypeId id;
    int inputs;
    int weight;
  };
  std::vector<Master> masters;
  for (const auto& m : kMix) {
    const CellTypeId id = lib.findCell(m.name);
    assert(id != kInvalidCellType);
    masters.push_back({id, m.inputs, m.weight});
  }
  const int mixTotal = totalMixWeight();
  const CellTypeId dffId = lib.findCell("DFF_X1");
  const CellTypeId and2Id = lib.findCell("AND2_X1");
  assert(dffId != kInvalidCellType && and2Id != kInvalidCellType);

  // Signal pool in creation order; `fanout` counts sinks added by this
  // cloud; `unconsumed` flags signals without a sink yet.
  std::vector<NetId> signals;
  std::vector<int> fanout;
  std::vector<char> unconsumed;
  std::size_t numUnconsumed = 0;

  auto addSignal = [&](NetId n) {
    signals.push_back(n);
    fanout.push_back(0);
    unconsumed.push_back(1);
    ++numUnconsumed;
  };

  for (NetId n : spec.consumeNets) addSignal(n);

  auto consume = [&](int sigIdx, InstId inst, int pin) {
    nl.connect(signals[static_cast<std::size_t>(sigIdx)], inst, pin);
    ++fanout[static_cast<std::size_t>(sigIdx)];
    if (unconsumed[static_cast<std::size_t>(sigIdx)]) {
      unconsumed[static_cast<std::size_t>(sigIdx)] = 0;
      --numUnconsumed;
    }
  };

  /// Picks an input index from [0, limit) (the exclusive upper bound keeps
  /// the graph acyclic: gates only consume earlier signals). The locality
  /// window slides with \p center, the pool position aligned with the
  /// consuming gate's position inside its level, so each gate talks to its
  /// own neighborhood of the previous level (a datapath bit-slice).
  auto pickInput = [&](std::size_t center, std::size_t limit) -> int {
    assert(limit > 0);
    center = std::min(center, limit);
    const int dice = static_cast<int>(rng() % 100);
    if (dice < kLocalPct) {
      const std::size_t lo = center > kWindow / 2 ? center - kWindow / 2 : 0;
      const std::size_t hi = std::min(limit, center + kWindow / 2 + 1);
      for (int attempt = 0; attempt < 6; ++attempt) {
        const std::size_t idx = lo + rng() % (hi - lo);
        if (fanout[idx] < spec.maxFanout) return static_cast<int>(idx);
      }
    } else if (dice < kLocalPct + kDrainPct && numUnconsumed > 0) {
      // Drain an unconsumed signal near the window (keeps every produced
      // net sinked without long-range hookups; older leftovers are absorbed
      // by the pairwise compaction).
      std::size_t idx = std::min(limit, center + kWindow);
      int scanned = 0;
      while (idx-- > 0 && scanned++ < 2 * static_cast<int>(kWindow)) {
        if (unconsumed[idx]) return static_cast<int>(idx);
      }
    }
    // Global pick (bounded retries for the fanout cap).
    for (int attempt = 0; attempt < 6; ++attempt) {
      const std::size_t idx = rng() % limit;
      if (fanout[idx] < spec.maxFanout) return static_cast<int>(idx);
    }
    return static_cast<int>(rng() % limit);
  };

  // --- Interleaved registers + leveled gates -------------------------------
  std::vector<InstId> regs;
  regs.reserve(static_cast<std::size_t>(spec.numRegs));
  int gateCounter = 0;
  int regCounter = 0;
  std::size_t prevLevelStart = 0;
  const int levels = std::max(1, spec.levels);
  for (int level = 0; level < levels; ++level) {
    // A slice of the registers joins the pool before this level.
    const int regsHere = spec.numRegs / levels + (level < spec.numRegs % levels ? 1 : 0);
    for (int r = 0; r < regsHere; ++r) {
      const InstId inst = nl.addInstance(spec.prefix + "_r" + std::to_string(regCounter), dffId);
      ++regCounter;
      nl.connect(spec.clockNet, inst, "CK");
      const NetId q = nl.addNet(nl.instance(inst).name + "_q");
      nl.connect(q, inst, "Q");
      addSignal(q);
      regs.push_back(inst);
    }

    const int inLevel = spec.numGates / levels + (level < spec.numGates % levels ? 1 : 0);
    const std::size_t levelStart = signals.size();
    const std::size_t prevStart = prevLevelStart;
    const std::size_t prevSize = levelStart - prevStart;
    for (int g = 0; g < inLevel; ++g) {
      int pickW = static_cast<int>(rng() % static_cast<std::uint64_t>(mixTotal));
      std::size_t mi = 0;
      while (pickW >= masters[mi].weight) {
        pickW -= masters[mi].weight;
        ++mi;
      }
      const Master& m = masters[mi];
      const InstId inst = nl.addInstance(spec.prefix + "_g" + std::to_string(gateCounter++), m.id);
      result.gates.push_back(inst);
      // Align this gate's neighborhood with its relative position in the
      // previous level.
      const std::size_t center =
          prevStart + (inLevel > 0 ? prevSize * static_cast<std::size_t>(g) /
                                         static_cast<std::size_t>(inLevel)
                                   : 0);
      for (int pin = 0; pin < m.inputs; ++pin) {
        consume(pickInput(center, levelStart), inst, pin);
      }
      const NetId out = nl.addNet(spec.prefix + "_n" + std::to_string(gateCounter));
      nl.connect(out, inst, "Y");
      addSignal(out);
    }
    prevLevelStart = levelStart;
  }
  result.registers = regs;

  // --- Compaction: locally pair leftover unconsumed signals ----------------
  // Remaining sink slots: D pins of the free registers + one per driveNet's
  // output register.
  // Guaranteed drains: free-register D pins and output-register D pins
  // (combinational output drivers may also absorb leftovers, but their
  // window picks are not guaranteed to).
  const std::size_t demand = static_cast<std::size_t>(spec.numRegs) + spec.driveNets.size();
  while (numUnconsumed > std::max<std::size_t>(2, demand * 8 / 10)) {
    // One sweep: pair adjacent unconsumed signals through AND2 compactors
    // (adjacent in creation order => short nets after placement seeding).
    std::vector<int> leftovers;
    for (std::size_t i = 0; i < signals.size(); ++i) {
      if (unconsumed[i]) leftovers.push_back(static_cast<int>(i));
    }
    const std::size_t target = std::max<std::size_t>(2, demand * 8 / 10);
    std::size_t toAbsorb = leftovers.size() - target;
    for (std::size_t k = 0; k + 1 < leftovers.size() && toAbsorb > 0; k += 2, --toAbsorb) {
      const InstId inst =
          nl.addInstance(spec.prefix + "_c" + std::to_string(gateCounter++), and2Id);
      result.gates.push_back(inst);
      consume(leftovers[k], inst, 0);
      consume(leftovers[k + 1], inst, 1);
      const NetId out = nl.addNet(spec.prefix + "_n" + std::to_string(gateCounter));
      nl.connect(out, inst, "Y");
      addSignal(out);  // pool shrinks by one per compactor
    }
  }

  // --- Output registers -----------------------------------------------------
  // Module outputs are register-driven (mirrors registered interfaces such
  // as the paper's NoC registers; prevents cross-module combinational
  // cycles).
  for (std::size_t d = 0; d < spec.driveNets.size(); ++d) {
    const InstId inst = nl.addInstance(spec.prefix + "_or" + std::to_string(d), dffId);
    nl.connect(spec.clockNet, inst, "CK");
    int src = -1;
    // Prefer an unconsumed signal.
    for (std::size_t i = signals.size(); i-- > 0 && src < 0;) {
      if (unconsumed[i]) src = static_cast<int>(i);
    }
    if (src < 0) src = pickInput(signals.size(), signals.size());
    consume(src, inst, *lib.cell(dffId).findPin("D"));
    nl.connect(spec.driveNets[d], inst, "Q");
    result.registers.push_back(inst);
  }

  // --- Combinational output drivers -----------------------------------------
  // Flow-through nets (e.g. SRAM address/data pins reached within the launch
  // cycle): driven by gates fed from the last logic level, so the full cloud
  // depth plus the downstream wire lands in one clock cycle -- the
  // register-to-memory critical paths the paper's 2D analysis highlights.
  for (std::size_t d = 0; d < spec.combDriveNets.size(); ++d) {
    const bool two = (rng() % 3) != 0;
    const CellTypeId master = two ? and2Id : lib.findCell("BUF_X4");
    const InstId inst = nl.addInstance(spec.prefix + "_od" + std::to_string(d), master);
    result.gates.push_back(inst);
    consume(pickInput(signals.size(), signals.size()), inst, 0);
    if (two) consume(pickInput(signals.size(), signals.size()), inst, 1);
    nl.connect(spec.combDriveNets[d], inst, "Y");
  }

  // --- Free-register D inputs drain the remaining leftovers -----------------
  // Zip leftovers and registers in index order so each D net stays local to
  // its register's creation neighborhood.
  {
    std::vector<int> leftovers;
    for (std::size_t i = 0; i < signals.size(); ++i) {
      if (unconsumed[i]) leftovers.push_back(static_cast<int>(i));
    }
    std::size_t li = 0;
    for (InstId r : regs) {
      int src;
      if (li < leftovers.size()) {
        src = leftovers[li++];
      } else {
        src = pickInput(signals.size(), signals.size());
      }
      consume(src, r, *nl.cellOf(r).findPin("D"));
    }
    assert(li == leftovers.size() && "register demand covers all leftovers");
  }

  return result;
}

}  // namespace m3d
