#pragma once

/// \file logic_cloud.hpp
/// Deterministic synthetic random-logic generator.
///
/// Generates a register-bounded combinational cloud the way gate-level
/// synthesis output looks: DFF banks, leveled combinational gates with
/// bounded fan-out and locality-biased fan-in, plus dedicated driver gates
/// for the module's output nets. Acyclicity is guaranteed by construction
/// (a gate only consumes signals from strictly earlier levels).
///
/// Used to model the Ariane core, cache controllers and NoC routers of the
/// OpenPiton tile (the paper's case study) without needing the RTL + a
/// synthesis tool: placement/routing/STA only ever see gate-level structure.

#include <cstdint>
#include <random>
#include <vector>

#include "netlist/netlist.hpp"

namespace m3d {

/// Deterministic PRNG used across the generator (fixed seed => identical
/// netlist every run).
using Rng = std::mt19937_64;

struct CloudSpec {
  std::string prefix;       ///< instance/net name prefix, e.g. "core".
  int numGates = 0;         ///< combinational gate budget (excl. output drivers).
  int numRegs = 0;          ///< flip-flop count.
  int levels = 8;           ///< combinational depth in gate levels.
  NetId clockNet = kInvalidId;
  /// Nets produced elsewhere that this cloud must consume (>= 1 sink each).
  std::vector<NetId> consumeNets;
  /// Nets this cloud must drive through a dedicated *output register*
  /// (registered interface; no cross-module combinational paths).
  std::vector<NetId> driveNets;
  /// Nets this cloud must drive *combinationally* (flow-through paths, e.g.
  /// the address/data pins of a cache SRAM that are computed and presented
  /// within the same cycle). The driver gate's inputs come from the last
  /// logic level, so these nets sit at the end of a full-depth path.
  std::vector<NetId> combDriveNets;
  int maxFanout = 8;        ///< fan-out cap for generated signals.
};

struct CloudResult {
  std::vector<InstId> gates;      ///< all combinational instances created.
  std::vector<InstId> registers;  ///< all DFFs created.
};

/// Builds the cloud into \p nl. All created instances are movable standard
/// cells. Every net created internally ends with exactly one driver and at
/// least one sink; every consumeNet gains at least one sink; every driveNet
/// gains exactly one driver.
CloudResult buildLogicCloud(Netlist& nl, Rng& rng, const CloudSpec& spec);

}  // namespace m3d
