#include "netlist/openpiton.hpp"

#include <algorithm>
#include <cassert>

#include "lib/sram_generator.hpp"

namespace m3d {

namespace {

int ceilLog2i(std::int64_t v) {
  int b = 0;
  while ((std::int64_t{1} << b) < v) ++b;
  return b;
}

/// Bank count heuristic: more banks for bigger caches (mirrors memory
/// compilers splitting large capacities for speed).
int numBanks(int capacityKb) {
  if (capacityKb <= 64) return 4;
  if (capacityKb <= 256) return 8;
  return 16;
}

std::vector<NetId> makeBus(Netlist& nl, const std::string& name, int width) {
  std::vector<NetId> out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) out.push_back(nl.addNet(name + "[" + std::to_string(i) + "]"));
  return out;
}

void append(std::vector<NetId>& dst, const std::vector<NetId>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Returns (and creates on first use) the SRAM master for the given bank
/// geometry.
CellTypeId getSramMaster(Library& lib, const TechNode& tech, const TileConfig& cfg, int words,
                         int bits) {
  const std::string name = "SRAM_" + std::to_string(words) + "X" + std::to_string(bits);
  CellTypeId id = lib.findCell(name);
  if (id != kInvalidCellType) return id;
  SramSpec spec;
  spec.name = name;
  spec.words = words;
  spec.bitsPerWord = bits;
  spec.bitcellUm2 = cfg.bitcellUm2;
  return lib.addCell(makeSramMacro(spec, tech));
}

struct CacheBuild {
  std::vector<InstId> macros;
  std::vector<InstId> ctrlCells;
};

/// Builds one cache: SRAM data banks + a tag array + a controller cloud.
/// The controller consumes every SRAM Q output plus \p reqNets and drives
/// every SRAM input pin plus \p respNets (which this function creates).
CacheBuild buildCache(Tile& tile, Library& lib, const TechNode& tech, Rng& rng,
                      const std::string& prefix, int capacityKb, int ctrlGates, int ctrlRegs,
                      const std::vector<NetId>& reqNets, std::vector<NetId>& respNets,
                      int respWidth) {
  Netlist& nl = tile.netlist;
  const TileConfig& cfg = tile.config;
  CacheBuild out;

  const int banks = numBanks(capacityKb);
  const int bankKb = std::max(1, capacityKb / banks);
  const int bankWords = bankKb * 1024 * 8 / cfg.wordBits;
  const CellTypeId bankMaster = getSramMaster(lib, tech, cfg, bankWords, cfg.wordBits);
  // Tag array: ~1/32 of the data capacity, at least 1 KB.
  const int tagWords = std::max(1, capacityKb / 32) * 1024 * 8 / cfg.wordBits;
  const CellTypeId tagMaster = getSramMaster(lib, tech, cfg, tagWords, cfg.wordBits);

  const int addrBits = ceilLog2i(bankWords);
  const int tagAddrBits = ceilLog2i(tagWords);

  // Shared buses across banks.
  const auto addrBus = makeBus(nl, prefix + "_addr", addrBits);
  const auto dBus = makeBus(nl, prefix + "_wdata", cfg.wordBits);
  const NetId weNet = nl.addNet(prefix + "_we");

  std::vector<NetId> ctrlConsume = reqNets;
  // SRAM input buses are flow-through: computed combinationally from the
  // incoming request within the access cycle (paper Sec. V-A: in 2D "the
  // critical path starts at a flip-flop and ends at a memory block").
  std::vector<NetId> ctrlCombDrive;
  std::vector<NetId> ctrlDrive;
  append(ctrlCombDrive, addrBus);
  append(ctrlCombDrive, dBus);
  ctrlCombDrive.push_back(weNet);

  auto instantiate = [&](const std::string& name, CellTypeId master, int nAddr) {
    const InstId inst = nl.addInstance(name, master);
    out.macros.push_back(inst);
    tile.groups.macros.push_back(inst);
    const CellType& c = lib.cell(master);
    nl.connect(tile.groups.clockNet, inst, "CLK");
    const NetId ce = nl.addNet(name + "_ce");
    nl.connect(ce, inst, "CE");
    ctrlCombDrive.push_back(ce);
    nl.connect(weNet, inst, "WE");
    for (int a = 0; a < nAddr; ++a) {
      nl.connect(addrBus[static_cast<std::size_t>(std::min(a, addrBits - 1))], inst,
                 "A" + std::to_string(a));
    }
    for (int d = 0; d < cfg.wordBits; ++d) {
      nl.connect(dBus[static_cast<std::size_t>(d)], inst, "D" + std::to_string(d));
    }
    for (int q = 0; q < cfg.wordBits; ++q) {
      const NetId qn = nl.addNet(name + "_q" + std::to_string(q));
      nl.connect(qn, inst, "Q" + std::to_string(q));
      ctrlConsume.push_back(qn);
    }
    (void)c;
  };

  for (int b = 0; b < banks; ++b) {
    instantiate(prefix + "_bank" + std::to_string(b), bankMaster, addrBits);
  }
  instantiate(prefix + "_tag", tagMaster, tagAddrBits);

  respNets = makeBus(nl, prefix + "_resp", respWidth);
  append(ctrlDrive, respNets);

  CloudSpec spec;
  spec.prefix = prefix + "_ctrl";
  spec.numGates = ctrlGates;
  spec.numRegs = ctrlRegs;
  spec.levels = 6;
  spec.clockNet = tile.groups.clockNet;
  spec.consumeNets = std::move(ctrlConsume);
  spec.driveNets = std::move(ctrlDrive);
  spec.combDriveNets = std::move(ctrlCombDrive);
  const CloudResult r = buildLogicCloud(nl, rng, spec);
  out.ctrlCells = r.gates;
  out.ctrlCells.insert(out.ctrlCells.end(), r.registers.begin(), r.registers.end());
  std::vector<InstId> module = out.ctrlCells;
  module.insert(module.end(), out.macros.begin(), out.macros.end());
  tile.groups.modules.push_back({prefix, std::move(module)});
  return out;
}

}  // namespace

TileConfig makeSmallCacheTileConfig() {
  TileConfig cfg;
  cfg.name = "small";
  cfg.cache = CacheConfig{8, 16, 16, 256};
  return cfg;
}

TileConfig makeLargeCacheTileConfig() {
  TileConfig cfg;
  cfg.name = "large";
  cfg.cache = CacheConfig{16, 16, 128, 1024};
  // Bigger caches come with somewhat larger control logic (MSHRs, wider
  // tags); mirrors the paper's larger logic area for the large-cache tile.
  cfg.l2CtrlGates = 1300;
  cfg.l2CtrlRegs = 260;
  cfg.l3CtrlGates = 1700;
  cfg.l3CtrlRegs = 340;
  cfg.coreGates = 5600;
  cfg.coreRegs = 1050;
  return cfg;
}

Tile generateTile(Library& lib, const TechNode& tech, const TileConfig& cfg) {
  Tile tile(&lib);
  tile.config = cfg;
  Netlist& nl = tile.netlist;
  Rng rng(cfg.seed);

  // --- Clock ---------------------------------------------------------------
  const PortId clkPort = nl.addPort("clk", PinDir::kInput, Side::kWest, /*isClock=*/true);
  const NetId clk = nl.addNet("clk");
  nl.connectPort(clk, clkPort);
  tile.groups.clockNet = clk;
  tile.groups.clockPort = clkPort;

  // --- Inter-module buses ----------------------------------------------------
  const auto l1iReq = makeBus(nl, "l1i_req", 16);
  const auto l1dReq = makeBus(nl, "l1d_req", 24);
  std::vector<NetId> l1iResp, l1dResp;
  const auto l1iL2 = makeBus(nl, "l1i_l2", 8);
  const auto l1dL2 = makeBus(nl, "l1d_l2", 8);
  const auto l2L3 = makeBus(nl, "l2_l3", 12);
  const auto l2Noc = makeBus(nl, "l2_noc", 6);
  const auto l3Noc = makeBus(nl, "l3_noc", 12);
  const auto nocL3 = makeBus(nl, "noc_l3", 12);

  // --- Chip-level misc I/O ----------------------------------------------------
  std::vector<NetId> ioIn, ioOut;
  for (int i = 0; i < 8; ++i) {
    const PortId p = nl.addPort("io_in[" + std::to_string(i) + "]", PinDir::kInput, Side::kWest);
    const NetId n = nl.addNet("io_in[" + std::to_string(i) + "]");
    nl.connectPort(n, p);
    ioIn.push_back(n);
  }
  for (int i = 0; i < 8; ++i) {
    const PortId p = nl.addPort("io_out[" + std::to_string(i) + "]", PinDir::kOutput, Side::kEast);
    const NetId n = nl.addNet("io_out[" + std::to_string(i) + "]");
    nl.connectPort(n, p);
    ioOut.push_back(n);
  }

  // --- Caches -------------------------------------------------------------
  {
    auto b = buildCache(tile, lib, tech, rng, "l1i", cfg.cache.l1iKb, cfg.l1CtrlGates,
                        cfg.l1CtrlRegs, l1iReq, l1iResp, 16);
    auto& cc = tile.groups.cacheCtrlCells;
    cc.insert(cc.end(), b.ctrlCells.begin(), b.ctrlCells.end());
  }
  {
    auto b = buildCache(tile, lib, tech, rng, "l1d", cfg.cache.l1dKb, cfg.l1CtrlGates,
                        cfg.l1CtrlRegs, l1dReq, l1dResp, 24);
    auto& cc = tile.groups.cacheCtrlCells;
    cc.insert(cc.end(), b.ctrlCells.begin(), b.ctrlCells.end());
  }

  // Relay clouds drive the L1->L2 miss buses from the L1 responses' domain.
  {
    CloudSpec relay;
    relay.prefix = "l1_miss";
    relay.numGates = 60;
    relay.numRegs = 16;
    relay.levels = 2;
    relay.clockNet = clk;
    relay.consumeNets = l1iReq;  // observes the same traffic
    append(relay.consumeNets, l1dReq);
    relay.driveNets = l1iL2;
    append(relay.driveNets, l1dL2);
    const CloudResult r = buildLogicCloud(nl, rng, relay);
    auto& cc = tile.groups.cacheCtrlCells;
    cc.insert(cc.end(), r.gates.begin(), r.gates.end());
    cc.insert(cc.end(), r.registers.begin(), r.registers.end());
    std::vector<InstId> module = r.gates;
    module.insert(module.end(), r.registers.begin(), r.registers.end());
    tile.groups.modules.push_back({"l1_miss", std::move(module)});
  }

  {
    std::vector<NetId> l2Req = l1iL2;
    append(l2Req, l1dL2);
    std::vector<NetId> l2Out;
    auto b = buildCache(tile, lib, tech, rng, "l2", cfg.cache.l2Kb, cfg.l2CtrlGates,
                        cfg.l2CtrlRegs, l2Req, l2Out, 18);
    auto& cc = tile.groups.cacheCtrlCells;
    cc.insert(cc.end(), b.ctrlCells.begin(), b.ctrlCells.end());
    // l2Out: 18 nets -> 12 to L3, 6 to the NoC. Transfer by construction:
    // we created l2L3/l2Noc above, so relay l2Out onto them.
    CloudSpec relay;
    relay.prefix = "l2_out";
    relay.numGates = 40;
    relay.numRegs = 8;
    relay.levels = 2;
    relay.clockNet = clk;
    relay.consumeNets = l2Out;
    relay.driveNets = l2L3;
    append(relay.driveNets, l2Noc);
    const CloudResult r = buildLogicCloud(nl, rng, relay);
    cc.insert(cc.end(), r.gates.begin(), r.gates.end());
    cc.insert(cc.end(), r.registers.begin(), r.registers.end());
    std::vector<InstId> module = r.gates;
    module.insert(module.end(), r.registers.begin(), r.registers.end());
    tile.groups.modules.push_back({"l2_out", std::move(module)});
  }

  {
    std::vector<NetId> l3Req = l2L3;
    append(l3Req, nocL3);
    std::vector<NetId> l3Out;
    auto b = buildCache(tile, lib, tech, rng, "l3", cfg.cache.l3Kb, cfg.l3CtrlGates,
                        cfg.l3CtrlRegs, l3Req, l3Out, 12);
    auto& cc = tile.groups.cacheCtrlCells;
    cc.insert(cc.end(), b.ctrlCells.begin(), b.ctrlCells.end());
    CloudSpec relay;
    relay.prefix = "l3_out";
    relay.numGates = 30;
    relay.numRegs = 6;
    relay.levels = 2;
    relay.clockNet = clk;
    relay.consumeNets = l3Out;
    relay.driveNets = l3Noc;
    const CloudResult r = buildLogicCloud(nl, rng, relay);
    cc.insert(cc.end(), r.gates.begin(), r.gates.end());
    cc.insert(cc.end(), r.registers.begin(), r.registers.end());
    std::vector<InstId> module = r.gates;
    module.insert(module.end(), r.registers.begin(), r.registers.end());
    tile.groups.modules.push_back({"l3_out", std::move(module)});
  }

  // --- Core -----------------------------------------------------------------
  {
    CloudSpec core;
    core.prefix = "core";
    core.numGates = cfg.coreGates;
    core.numRegs = cfg.coreRegs;
    core.levels = 12;
    core.clockNet = clk;
    core.consumeNets = l1iResp;
    append(core.consumeNets, l1dResp);
    append(core.consumeNets, ioIn);
    core.driveNets = l1iReq;
    append(core.driveNets, l1dReq);
    append(core.driveNets, ioOut);
    const CloudResult r = buildLogicCloud(nl, rng, core);
    auto& cc = tile.groups.coreCells;
    cc.insert(cc.end(), r.gates.begin(), r.gates.end());
    cc.insert(cc.end(), r.registers.begin(), r.registers.end());
    tile.groups.modules.push_back({"core", cc});
  }

  // --- NoC routers + inter-tile ports ----------------------------------------
  // Per paper Sec. V-1: all tile pins on the top logic-die metal; an output
  // pin at the north edge is paired (same x) with the matching input pin at
  // the south edge so abutted tile instances connect without extra routing,
  // and both path halves get a half-cycle constraint.
  int pairTag = 0;
  const struct {
    Side outSide;
    const char* outName;
    const char* inName;
  } kLinks[4] = {
      {Side::kNorth, "N_out", "S_in"},
      {Side::kSouth, "S_out", "N_in"},
      {Side::kEast, "E_out", "W_in"},
      {Side::kWest, "W_out", "E_in"},
  };

  for (int k = 0; k < cfg.numNocs; ++k) {
    const std::string np = "noc" + std::to_string(k);
    std::vector<NetId> inNets;
    std::vector<NetId> outNets;
    for (const auto& link : kLinks) {
      for (int i = 0; i < cfg.nocDataBits; ++i) {
        const std::string on = np + "_" + link.outName + "[" + std::to_string(i) + "]";
        const std::string in = np + "_" + link.inName + "[" + std::to_string(i) + "]";
        const PortId po = nl.addPort(on, PinDir::kOutput, link.outSide);
        const PortId pi = nl.addPort(in, PinDir::kInput, oppositeSide(link.outSide));
        nl.port(po).halfCycle = true;
        nl.port(pi).halfCycle = true;
        nl.port(po).pairTag = pairTag;
        nl.port(pi).pairTag = pairTag;
        ++pairTag;
        const NetId no = nl.addNet(on);
        const NetId ni = nl.addNet(in);
        nl.connectPort(no, po);
        nl.connectPort(ni, pi);
        outNets.push_back(no);
        inNets.push_back(ni);
      }
    }
    CloudSpec router;
    router.prefix = np;
    router.numGates = cfg.nocGates;
    router.numRegs = cfg.nocRegs;
    router.levels = 5;
    router.clockNet = clk;
    router.consumeNets = inNets;
    if (k == 1) append(router.consumeNets, l2Noc);
    if (k == 2) append(router.consumeNets, l3Noc);
    router.driveNets = outNets;
    if (k == 0) append(router.driveNets, nocL3);
    const CloudResult r = buildLogicCloud(nl, rng, router);
    auto& cc = tile.groups.nocCells;
    cc.insert(cc.end(), r.gates.begin(), r.gates.end());
    cc.insert(cc.end(), r.registers.begin(), r.registers.end());
    std::vector<InstId> module = r.gates;
    module.insert(module.end(), r.registers.begin(), r.registers.end());
    tile.groups.modules.push_back({np, std::move(module)});
  }

  assert(nl.validate().empty());
  return tile;
}

}  // namespace m3d
