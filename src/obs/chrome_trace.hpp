#pragma once

/// \file chrome_trace.hpp
/// Chrome Trace Event export: a process-global collector that buffers
/// completed spans ('X' events), counter samples ('C' events) and pool-task
/// intervals from every thread, then serializes them as Chrome Trace Event
/// JSON loadable in Perfetto / chrome://tracing.
///
/// The collector is OFF by default, and the only cost instrumented code
/// pays while it is off is one relaxed atomic load (enabled()). Recording
/// never changes algorithm results: events carry timestamps and copies of
/// already-computed values, so a traced run and an untraced run produce
/// bit-identical design artifacts.
///
/// Thread tracks: every thread has a stable integer track id --
///   0        the first thread that records (normally the flow thread),
///   1..63    thread-pool worker slots (pinned by core/parallel),
///   64+      any other thread, in first-use order.
/// The exporter names the tracks accordingly ("flow", "pool-worker-N").

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <atomic>
#include <mutex>

namespace m3d::obs {

/// Stable per-thread track id (see file comment for the numbering).
int threadTrackId();
/// Pins the calling thread's track id. Used by the thread pool to map
/// worker slot -> track; tests may use it to simulate tracks.
void setThreadTrackId(int id);

/// Allocates a fresh aux track id (64+) with a display name the exporter
/// emits as the track's thread_name metadata. m3d_serve claims one track
/// per job ("job-<id>") and pins each job's executor thread to it with
/// setThreadTrackId, so a server trace shows one span track per job.
/// Cheap, lock-protected, and callable whether or not a trace is active.
int claimNamedAuxTrack(const std::string& name);

/// One buffered trace event.
struct TraceEvent {
  std::string name;
  char phase = 'X';          ///< 'X' complete span, 'C' counter sample.
  int tid = 0;               ///< threadTrackId() of the recording thread.
  std::int64_t tsNs = 0;     ///< monotonic clock at begin (or sample time).
  std::int64_t durNs = 0;    ///< 'X' only.
  double value = 0.0;        ///< 'C' only.
  std::vector<std::pair<std::string, double>> args;  ///< 'X' only.
};

/// Process-global trace event buffer + Chrome Trace JSON serializer.
class TraceCollector {
 public:
  /// Buffered events are capped so a runaway loop cannot exhaust memory;
  /// further events are counted in droppedEvents() instead of stored.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  static TraceCollector& global();

  /// The hot-path guard: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts collecting into a buffer destined for \p path. The path is
  /// opened (and truncated) immediately to verify writability; on failure
  /// the collector stays disabled and false is returned -- callers warn
  /// and continue, tracing must never abort a flow.
  bool enable(const std::string& path);
  /// Stops collecting and drops all buffered events (test isolation, or a
  /// flow abandoning its trace).
  void disable();

  /// Marks the collector as owned by a long-lived host (m3d_serve): while
  /// set, finishFlowRun leaves the trace open instead of flushing it at
  /// each flow's end, so one server trace spans many jobs. The owner clears
  /// the mark and calls writeFile itself at shutdown.
  void setExternallyManaged(bool v) { externallyManaged_.store(v, std::memory_order_relaxed); }
  bool externallyManaged() const { return externallyManaged_.load(std::memory_order_relaxed); }

  void recordComplete(std::string name, std::int64_t tsNs, std::int64_t durNs,
                      std::vector<std::pair<std::string, double>> args = {});
  /// Counter sample at the current monotonic time ('C' event). Rendered by
  /// Perfetto as a counter track named \p name.
  void recordCounter(std::string name, double value);

  std::size_t eventCount() const;
  std::size_t droppedEvents() const;
  std::string path() const;

  /// Serializes the buffered events as one Chrome Trace JSON document:
  /// thread-name metadata first, then all events sorted by timestamp
  /// (normalized so the earliest event is at ts 0, in microseconds).
  std::string toJson() const;

  /// Writes toJson() to the path given at enable(), then disables and
  /// clears the buffer. Returns false (with \p err set when provided) on
  /// I/O failure; the collector is disabled either way.
  bool writeFile(std::string* err = nullptr);

 private:
  TraceCollector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<bool> externallyManaged_{false};
  mutable std::mutex mu_;
  std::string path_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace m3d::obs
