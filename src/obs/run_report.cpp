#include "obs/run_report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace m3d::obs {

namespace {

void writeSpanJson(JsonWriter& w, const Span& s, std::int64_t runStartNs) {
  w.beginObject();
  w.kv("name", std::string_view(s.name));
  w.kv("start_ms", static_cast<double>(s.startNs - runStartNs) / 1e6);
  w.kv("dur_ms", static_cast<double>(s.durNs) / 1e6);
  w.kv("self_ms", static_cast<double>(s.selfDurNs()) / 1e6);
  w.kv("peak_rss_kb", static_cast<std::int64_t>(s.peakRssAtCloseKb));
  w.kv("rss_delta_kb", static_cast<std::int64_t>(s.rssDeltaKb));
  if (!s.attrs.empty()) {
    w.key("attrs");
    w.beginObject();
    for (const auto& [k, v] : s.attrs) w.kv(std::string_view(k), v);
    w.endObject();
  }
  if (!s.children.empty()) {
    w.key("children");
    w.beginArray();
    for (const Span& c : s.children) writeSpanJson(w, c, runStartNs);
    w.endArray();
  }
  w.endObject();
}

void writeSpanText(std::ostream& os, const Span& s, std::int64_t runStartNs, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << s.name << ": " << static_cast<double>(s.durNs) / 1e6 << " ms"
     << " (at +" << static_cast<double>(s.startNs - runStartNs) / 1e6 << " ms, rss +"
     << s.rssDeltaKb << " KB)";
  for (const auto& [k, v] : s.attrs) os << " " << k << "=" << v;
  os << "\n";
  // Deep per-iteration levels would flood a log summary; the JSON report
  // keeps the full tree.
  if (depth >= 3) return;
  for (const Span& c : s.children) writeSpanText(os, c, runStartNs, depth + 1);
}

}  // namespace

const std::vector<double>* RunReport::findSeries(std::string_view name) const {
  for (const SeriesSlice& s : series) {
    if (s.name == name) return &s.points;
  }
  return nullptr;
}

std::string RunReport::toJson(bool pretty) const {
  std::ostringstream os;
  JsonWriter w(os, pretty);
  w.beginObject();
  w.kv("schema", std::string_view(kSchema));
  w.kv("flow", std::string_view(flow));
  w.kv("tile", std::string_view(tile));
  w.kv("wall_ms", wallMs);
  w.kv("peak_rss_kb", static_cast<std::int64_t>(peakRssKb));
  w.key("span");
  writeSpanJson(w, root, root.startNs);
  w.key("counters");
  w.beginObject();
  for (const auto& [k, v] : counters) w.kv(std::string_view(k), v);
  w.endObject();
  w.key("gauges");
  w.beginObject();
  for (const auto& [k, v] : gauges) w.kv(std::string_view(k), v);
  w.endObject();
  w.key("series");
  w.beginObject();
  for (const SeriesSlice& s : series) {
    w.key(s.name);
    w.beginArray();
    for (double v : s.points) w.value(v);
    w.endArray();
  }
  w.endObject();
  w.key("series_stats");
  w.beginObject();
  for (const SeriesSlice& s : series) {
    double mn = s.points.front();
    double mx = s.points.front();
    double sum = 0.0;
    for (double v : s.points) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sum += v;
    }
    w.key(s.name);
    w.beginObject();
    w.kv("count", static_cast<std::int64_t>(s.points.size()));
    w.kv("min", mn);
    w.kv("max", mx);
    w.kv("mean", sum / static_cast<double>(s.points.size()));
    w.kv("last", s.points.back());
    w.kv("p50", percentileOf(s.points, 50.0));
    w.kv("p90", percentileOf(s.points, 90.0));
    w.kv("p99", percentileOf(s.points, 99.0));
    w.endObject();
  }
  w.endObject();
  w.key("final");
  w.beginObject();
  for (const auto& [k, v] : finals) w.kv(std::string_view(k), v);
  w.endObject();
  w.endObject();
  if (pretty) os << "\n";
  return os.str();
}

bool RunReport::writeJsonFile(const std::string& path, std::string* err) const {
  std::ofstream f(path);
  if (!f.is_open()) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  f << toJson(/*pretty=*/true);
  return f.good();
}

std::string RunReport::summaryText() const {
  std::ostringstream os;
  os << "run report: flow=" << flow << " tile=" << tile << " wall_ms=" << wallMs
     << " peak_rss_kb=" << peakRssKb << "\n";
  writeSpanText(os, root, root.startNs, 0);
  for (const auto& [k, v] : finals) os << "  final " << k << "=" << v << "\n";
  return os.str();
}

ScopedRun::ScopedRun(std::string flow, std::string tile)
    : flow_(std::move(flow)), tile_(std::move(tile)) {
  start_ = MetricsRegistry::global().snapshot();
  Tracer::local().open("flow:" + flow_);
  open_ = true;
}

ScopedRun::ScopedRun(ScopedRun&& other) noexcept
    : flow_(std::move(other.flow_)),
      tile_(std::move(other.tile_)),
      finals_(std::move(other.finals_)),
      start_(std::move(other.start_)),
      open_(other.open_) {
  other.open_ = false;
}

ScopedRun::~ScopedRun() {
  if (!open_) return;
  // The run unwound without finish(): close and drop the trace.
  Tracer::local().close();
  Tracer::local().takeLastRoot();
}

void ScopedRun::final(std::string name, double value) {
  finals_.emplace_back(std::move(name), value);
}

void ScopedRun::attr(const std::string& key, double value) {
  if (open_) Tracer::local().attr(key, value);
}

RunReport ScopedRun::finish() {
  RunReport report;
  report.flow = flow_;
  report.tile = tile_;
  report.finals = std::move(finals_);
  if (open_) {
    open_ = false;
    Tracer::local().close();
    report.root = Tracer::local().takeLastRoot();
  }
  report.wallMs = static_cast<double>(report.root.durNs) / 1e6;
  report.peakRssKb = report.root.peakRssAtCloseKb;

  MetricsRegistry& reg = MetricsRegistry::global();
  reg.visitCounters([&](const std::string& name, const Counter& c) {
    std::int64_t before = 0;
    if (const auto it = start_.counters.find(name); it != start_.counters.end()) {
      before = it->second;
    }
    const std::int64_t delta = c.value() - before;
    if (delta != 0) report.counters.emplace_back(name, delta);
  });
  reg.visitGauges([&](const std::string& name, const Gauge& g) {
    report.gauges.emplace_back(name, g.value());
  });
  reg.visitSeries([&](const std::string& name, const Series& s) {
    std::size_t from = 0;
    if (const auto it = start_.seriesSizes.find(name); it != start_.seriesSizes.end()) {
      from = it->second;
    }
    std::vector<double> pts = s.pointsFrom(from);
    if (!pts.empty()) report.series.push_back({name, std::move(pts)});
  });
  return report;
}

}  // namespace m3d::obs
