#pragma once

/// \file trace.hpp
/// RAII phase tracing: nested spans of wall-clock + peak RSS.
///
/// A Span is one timed region (a flow stage, a placer iteration, a router
/// rip-up round). Spans nest: the per-thread Tracer keeps a stack of open
/// spans, and a span closed while another is open attaches to that parent,
/// building the run's span tree.
///
/// ScopedPhase is the instrumentation primitive. By design it records
/// NOTHING unless a trace is active on the thread (a root was opened with
/// forceRoot, normally by obs::ScopedRun at flow entry). Library code --
/// placer iterations, router rounds -- can therefore be instrumented
/// unconditionally: outside a flow run (unit tests, micro-benchmarks) a
/// ScopedPhase is a single branch.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace m3d::obs {

/// Peak resident-set size of the process [KB] (0 where unsupported).
long currentPeakRssKb();

/// Monotonic clock [ns] (steady; only differences are meaningful).
std::int64_t monotonicNowNs();

struct Span {
  std::string name;
  std::int64_t startNs = 0;  ///< monotonic clock at open.
  std::int64_t durNs = 0;    ///< wall-clock duration (>= 1 once closed).
  /// Process peak RSS sampled at close. Peak RSS is process-global and
  /// monotone, so sibling spans closed later all report the same (or a
  /// larger) value -- use rssDeltaKb to attribute growth to a span.
  long peakRssAtCloseKb = 0;
  /// Peak-RSS growth while the span was open (close sample minus open
  /// sample, clamped at 0). Growth caused by concurrent threads is still
  /// charged to every open span, but an idle sibling of an allocating span
  /// correctly reports 0.
  long rssDeltaKb = 0;
  std::vector<std::pair<std::string, double>> attrs;
  std::vector<Span> children;

  /// Depth-first search for the first span named \p spanName (may be this).
  const Span* find(std::string_view spanName) const;
  /// Sum of the direct children's durations (<= durNs up to clock grain).
  std::int64_t childrenDurNs() const;
  /// Time spent in this span itself, excluding direct children (self time:
  /// durNs - childrenDurNs, clamped at 0).
  std::int64_t selfDurNs() const;
  /// Number of spans in the subtree including this one.
  std::size_t treeSize() const;
};

/// Per-thread span stack + completed root spans.
class Tracer {
 public:
  static Tracer& local();

  bool active() const { return !stack_.empty(); }
  int depth() const { return static_cast<int>(stack_.size()); }

  void open(std::string name);
  void attr(const std::string& key, double value);  ///< on the innermost span.
  void close();

  bool hasCompletedRoot() const { return !completed_.empty(); }
  /// Moves out the most recently completed root span.
  Span takeLastRoot();
  /// Drops all open and completed spans (test isolation).
  void clear();

  /// "a/b/c" path of the open span stack ("" when inactive).
  std::string currentPath(char sep = '/') const;

 private:
  std::vector<Span> stack_;
  /// Peak-RSS sample at each open (parallel to stack_), for rssDeltaKb.
  std::vector<long> openRssKb_;
  std::vector<Span> completed_;
};

/// RAII span. Records only when a trace is already active on this thread,
/// unless \p forceRoot starts one.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string name, bool forceRoot = false);
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase();

  /// Attaches a numeric attribute to this span (no-op when not recording).
  void attr(const std::string& key, double value);
  bool recording() const { return recording_; }

 private:
  bool recording_;
};

}  // namespace m3d::obs
