#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace m3d::obs {

namespace {

thread_local int tlsTrackId = -1;
std::atomic<bool> gMainTrackClaimed{false};
std::atomic<int> gNextAuxTrackId{64};

// Display names claimed for aux tracks (64+), e.g. m3d_serve's one track
// per job. Process-lived, tiny, and mutated only through claimNamedAuxTrack
// under its own lock; read by the exporter.
std::mutex gAuxNamesMu;
std::vector<std::pair<int, std::string>>& auxNames() {
  static auto* names = new std::vector<std::pair<int, std::string>>();
  return *names;
}

std::string trackName(int tid) {
  if (tid == 0) return "flow";
  if (tid >= 1 && tid < 64) return "pool-worker-" + std::to_string(tid);
  {
    std::lock_guard<std::mutex> lock(gAuxNamesMu);
    for (const auto& [id, name] : auxNames()) {
      if (id == tid) return name;
    }
  }
  return "thread-" + std::to_string(tid);
}

}  // namespace

int threadTrackId() {
  if (tlsTrackId >= 0) return tlsTrackId;
  bool expected = false;
  if (gMainTrackClaimed.compare_exchange_strong(expected, true)) {
    tlsTrackId = 0;
  } else {
    tlsTrackId = gNextAuxTrackId.fetch_add(1, std::memory_order_relaxed);
  }
  return tlsTrackId;
}

void setThreadTrackId(int id) { tlsTrackId = id; }

int claimNamedAuxTrack(const std::string& name) {
  const int id = gNextAuxTrackId.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(gAuxNamesMu);
  auxNames().emplace_back(id, name);
  return id;
}

TraceCollector& TraceCollector::global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

bool TraceCollector::enable(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (path.empty()) return false;
  // Open-and-truncate up front so a bad path fails here, at flow entry,
  // instead of after the whole run has been traced.
  std::ofstream probe(path, std::ios::trunc);
  if (!probe.is_open()) return false;
  path_ = path;
  events_.clear();
  dropped_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void TraceCollector::disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  path_.clear();
  events_.clear();
  dropped_ = 0;
}

void TraceCollector::recordComplete(std::string name, std::int64_t tsNs,
                                    std::int64_t durNs,
                                    std::vector<std::pair<std::string, double>> args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.phase = 'X';
  ev.tid = threadTrackId();
  ev.tsNs = tsNs;
  ev.durNs = durNs;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void TraceCollector::recordCounter(std::string name, double value) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.phase = 'C';
  ev.tid = threadTrackId();
  ev.tsNs = monotonicNowNs();
  ev.value = value;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

std::size_t TraceCollector::eventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceCollector::droppedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceCollector::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

std::string TraceCollector::toJson() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.tsNs < b.tsNs; });
  std::int64_t t0 = 0;
  if (!events.empty()) t0 = events.front().tsNs;

  std::set<int> tids;
  for (const TraceEvent& ev : events) tids.insert(ev.tid);

  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.beginObject();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.beginArray();
  // Thread-name metadata first (ts 0, so event timestamps stay monotone).
  for (int tid : tids) {
    w.beginObject();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", std::int64_t{1});
    w.kv("tid", static_cast<std::int64_t>(tid));
    w.key("args");
    w.beginObject();
    w.kv("name", std::string_view(trackName(tid)));
    w.endObject();
    w.endObject();
  }
  for (const TraceEvent& ev : events) {
    w.beginObject();
    w.kv("name", std::string_view(ev.name));
    w.key("ph");
    w.value(std::string_view(&ev.phase, 1));
    w.kv("pid", std::int64_t{1});
    w.kv("tid", static_cast<std::int64_t>(ev.tid));
    w.kv("ts", static_cast<double>(ev.tsNs - t0) / 1e3);
    if (ev.phase == 'X') {
      w.kv("dur", static_cast<double>(ev.durNs) / 1e3);
      if (!ev.args.empty()) {
        w.key("args");
        w.beginObject();
        for (const auto& [k, v] : ev.args) w.kv(std::string_view(k), v);
        w.endObject();
      }
    } else {  // 'C': Perfetto reads the sample from args.
      w.key("args");
      w.beginObject();
      w.kv("value", ev.value);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return os.str();
}

bool TraceCollector::writeFile(std::string* err) {
  const std::string json = toJson();
  std::string outPath;
  {
    std::lock_guard<std::mutex> lock(mu_);
    outPath = path_;
  }
  bool ok = false;
  if (outPath.empty()) {
    if (err != nullptr) *err = "trace collector has no output path";
  } else {
    std::ofstream f(outPath, std::ios::trunc);
    if (!f.is_open()) {
      if (err != nullptr) *err = "cannot open " + outPath;
    } else {
      f << json << "\n";
      ok = f.good();
      if (!ok && err != nullptr) *err = "write failed: " + outPath;
    }
  }
  disable();
  return ok;
}

}  // namespace m3d::obs
