#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace m3d::obs {

// --- Writer ----------------------------------------------------------------

void JsonWriter::escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void JsonWriter::newlineIndent() {
  if (!pretty_) return;
  os_ << "\n";
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::beforeValue() {
  if (keyPending_) {
    keyPending_ = false;
    return;  // comma/indent already handled by key()
  }
  if (!stack_.empty()) {
    if (!first_.back()) os_ << ",";
    first_.back() = false;
    if (stack_.back() == 'A') newlineIndent();
  }
}

void JsonWriter::beginObject() {
  beforeValue();
  os_ << "{";
  stack_.push_back('O');
  first_.push_back(true);
}

void JsonWriter::endObject() {
  stack_.pop_back();
  const bool wasEmpty = first_.back();
  first_.pop_back();
  if (!wasEmpty) newlineIndent();
  os_ << "}";
}

void JsonWriter::beginArray() {
  beforeValue();
  os_ << "[";
  stack_.push_back('A');
  first_.push_back(true);
}

void JsonWriter::endArray() {
  stack_.pop_back();
  const bool wasEmpty = first_.back();
  first_.pop_back();
  if (!wasEmpty) newlineIndent();
  os_ << "]";
}

void JsonWriter::key(std::string_view k) {
  if (!first_.back()) os_ << ",";
  first_.back() = false;
  newlineIndent();
  os_ << "\"";
  escape(os_, k);
  os_ << "\":";
  if (pretty_) os_ << " ";
  keyPending_ = true;
}

void JsonWriter::value(std::string_view v) {
  beforeValue();
  os_ << "\"";
  escape(os_, v);
  os_ << "\"";
}

void JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no Inf/NaN
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  beforeValue();
  os_ << v;
}

void JsonWriter::value(bool v) {
  beforeValue();
  os_ << (v ? "true" : "false");
}

void JsonWriter::valueNull() {
  beforeValue();
  os_ << "null";
}

// --- Parser ----------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view k) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [key, v] : obj) {
    if (key == k) return &v;
  }
  return nullptr;
}

double JsonValue::numberOr(std::string_view k, double fallback) const {
  const JsonValue* v = find(k);
  return v != nullptr && v->isNumber() ? v->number : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : s_(text), err_(err) {}

  std::optional<JsonValue> run() {
    skipWs();
    JsonValue v;
    if (!parseValue(v)) return std::nullopt;
    skipWs();
    if (pos_ != s_.size()) {
      fail("trailing characters");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* what) {
    if (err_ != nullptr && err_->empty()) {
      *err_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
  }

  void skipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue& out) {
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = s_[pos_];
    if (c == '{') return parseObject(out);
    if (c == '[') return parseArray(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parseString(out.str);
    }
    if (c == 't' || c == 'f') return parseKeyword(out);
    if (c == 'n') return parseKeyword(out);
    return parseNumber(out);
  }

  bool parseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      skipWs();
      JsonValue v;
      if (!parseValue(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) return true;
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skipWs();
    if (consume(']')) return true;
    while (true) {
      skipWs();
      JsonValue v;
      if (!parseValue(v)) return false;
      out.arr.push_back(std::move(v));
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) return true;
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parseString(std::string& out) {
    if (!consume('"')) {
      fail("expected string");
      return false;
    }
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              fail("bad \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported --
            // the writer never emits them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parseKeyword(JsonValue& out) {
    auto match = [&](std::string_view kw) {
      if (s_.substr(pos_, kw.size()) == kw) {
        pos_ += kw.size();
        return true;
      }
      return false;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    fail("unknown keyword");
    return false;
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      // Signs are only valid right after an exponent marker.
      if ((s_[pos_] == '-' || s_[pos_] == '+') && pos_ > start &&
          s_[pos_ - 1] != 'e' && s_[pos_ - 1] != 'E') {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return false;
    }
    const std::string token(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("bad number");
      return false;
    }
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string* err_;
};

}  // namespace

std::optional<JsonValue> parseJson(std::string_view text, std::string* err) {
  return Parser(text, err).run();
}

}  // namespace m3d::obs
