#pragma once

/// \file metrics.hpp
/// Process-global metrics registry: counters, gauges, and named series.
///
/// Instrumented code records into the global registry by name --
/// obs::series("place.hpwl").record(hpwlUm) -- without caring which flow
/// run (if any) is active. Run scoping is done by snapshot/delta:
/// obs::ScopedRun snapshots the registry at flow entry, and the RunReport
/// carries only what was recorded during the run (counter deltas, series
/// points appended after the snapshot).
///
/// Naming convention: "<stage>.<metric>[_<unit>]", e.g. place.hpwl (um),
/// route.f2f_bumps, sta.wns_ps, opt.cells_resized. A Series doubles as the
/// histogram primitive: it stores every recorded point; summary statistics
/// (count/min/max/mean) are computed at report time.
///
/// All types are thread-safe. References returned by the registry stay
/// valid for the process lifetime (node-based storage); recording is an
/// atomic add (Counter/Gauge) or a short per-series critical section.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace m3d::obs {

class Counter {
 public:
  void add(std::int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Series {
 public:
  void record(double v);
  std::size_t size() const;
  std::vector<double> points() const;
  /// Points appended at or after index \p from (run-scoped slice).
  std::vector<double> pointsFrom(std::size_t from) const;

  struct Stats {
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double last = 0.0;
  };
  /// O(1): count/min/max/sum are maintained incrementally by record().
  Stats stats() const;
  /// Nearest-rank percentile over all points, \p p in [0, 100]
  /// (O(n log n): sorts a copy). 0 when the series is empty.
  double percentile(double p) const;

  /// Registry-assigned name ("" for a free-standing Series). When a trace
  /// is active, record() mirrors named series into the trace's counter
  /// tracks under this name.
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;

  mutable std::mutex mu_;
  std::string name_;
  std::vector<double> points_;
  // Running summary, so stats() never rescans the point vector.
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Nearest-rank percentile of \p points (unsorted), \p p in [0, 100].
/// Shared by Series::percentile and the run-report series summaries.
double percentileOf(std::vector<double> points, double p);

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Series& series(std::string_view name);

  /// Watermarks of every metric at one instant, for delta reports.
  struct Snapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, std::size_t> seriesSizes;
  };
  Snapshot snapshot() const;

  void visitCounters(const std::function<void(const std::string&, const Counter&)>& fn) const;
  void visitGauges(const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void visitSeries(const std::function<void(const std::string&, const Series&)>& fn) const;

  /// Drops every metric. Only for test isolation -- invalidates references
  /// previously handed out.
  void reset();

 private:
  mutable std::mutex mu_;
  // std::map: node-based, so references survive later insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Series, std::less<>> series_;
};

inline Counter& counter(std::string_view name) { return MetricsRegistry::global().counter(name); }
inline Gauge& gauge(std::string_view name) { return MetricsRegistry::global().gauge(name); }
inline Series& series(std::string_view name) { return MetricsRegistry::global().series(name); }

}  // namespace m3d::obs
