#pragma once

/// \file log.hpp
/// Leveled, thread-safe structured logging for the whole library.
///
/// Usage:
///   M3D_LOG(info) << "route: wl_m=" << wl << " f2f=" << bumps;
///
/// The stream expression on the right-hand side is only evaluated when the
/// message's level passes the global filter, so logging below the active
/// level costs one branch. Text records go to a configurable sink (stderr by
/// default -- flow stdout stays byte-identical to a build without logging);
/// an optional JSONL sink mirrors every record as one JSON object per line.
///
/// The level is resolved in this order:
///   1. the M3D_LOG_LEVEL environment variable
///      (off|error|warn|info|debug|trace), read once lazily;
///   2. setLogLevel() / FlowOptions::logLevel via configureLogging();
///   3. the default, kWarn.

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace m3d::obs {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* logLevelName(LogLevel level);

/// Parses "off"/"error"/"warn"/"info"/"debug"/"trace" (case-insensitive).
std::optional<LogLevel> parseLogLevel(std::string_view text);

/// Current global level. Reads M3D_LOG_LEVEL once on first use.
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// True when a record at \p level would be emitted.
bool logEnabled(LogLevel level);

/// Re-reads M3D_LOG_LEVEL and applies it if set (test hook; normal code
/// never needs this -- the first logLevel() call does it).
void initLogLevelFromEnv();

/// Applies \p requested unless M3D_LOG_LEVEL is set (the environment always
/// wins so a user can override a hard-coded FlowOptions level). Passing
/// nullopt keeps the current level.
void configureLogging(std::optional<LogLevel> requested);

/// Redirects the human-readable sink (default: stderr). nullptr disables
/// text output entirely. The pointee must outlive all logging.
void setLogTextSink(std::ostream* os);

/// Opens (or closes, with an empty path) the JSONL sink: one
/// {"t_ms":..,"level":..,"phase":..,"msg":..} object per record, appended
/// to \p path. Returns false if the file cannot be opened.
bool openLogJsonl(const std::string& path);
void closeLogJsonl();

/// One in-flight log record; emits on destruction. Use via M3D_LOG.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostream& stream() { return ss_; }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

// Severity tokens for the M3D_LOG(sev) macro.
inline constexpr LogLevel kLogSev_trace = LogLevel::kTrace;
inline constexpr LogLevel kLogSev_debug = LogLevel::kDebug;
inline constexpr LogLevel kLogSev_info = LogLevel::kInfo;
inline constexpr LogLevel kLogSev_warn = LogLevel::kWarn;
inline constexpr LogLevel kLogSev_error = LogLevel::kError;

}  // namespace m3d::obs

/// M3D_LOG(info) << ...; -- the right-hand side is skipped entirely when the
/// level is filtered out.
#define M3D_LOG(sev)                                                              \
  for (bool m3d_log_once = ::m3d::obs::logEnabled(::m3d::obs::kLogSev_##sev);     \
       m3d_log_once; m3d_log_once = false)                                        \
  ::m3d::obs::LogMessage(::m3d::obs::kLogSev_##sev).stream()
