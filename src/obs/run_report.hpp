#pragma once

/// \file run_report.hpp
/// Machine-readable run reports: one JSON document per flow run combining
/// the span tree (wall-clock + peak RSS per phase), the metrics recorded
/// during the run (counter deltas, gauge values, series slices), and the
/// flow's final metrics as flat key/value pairs.
///
/// Schema (m3d.run_report/1):
/// {
///   "schema":   "m3d.run_report/1",
///   "flow":     "Macro-3D",
///   "tile":     "small",
///   "wall_ms":  1234.5,
///   "peak_rss_kb": 65536,
///   "span":     { "name": ..., "start_ms": <relative to run start>,
///                 "dur_ms": ..., "self_ms": <dur minus direct children>,
///                 "peak_rss_kb": <process peak at close>,
///                 "rss_delta_kb": <peak growth while open>,
///                 "attrs": {..}, "children": [..] },
///   "counters": { "opt.cells_resized": 42, ... },
///   "gauges":   { "route.wirelength_um": ..., ... },
///   "series":   { "place.hpwl": [..], "sta.wns_ps": [..], ... },
///   "series_stats": { "place.hpwl": { "count": .., "min": .., "max": ..,
///                     "mean": .., "last": .., "p50": .., "p90": ..,
///                     "p99": .. }, ... },
///   "final":    { "fclk_mhz": ..., ... }
/// }

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace m3d::obs {

struct RunReport {
  static constexpr const char* kSchema = "m3d.run_report/1";

  std::string flow;
  std::string tile;
  Span root;                ///< span tree of the whole run.
  double wallMs = 0.0;      ///< == root.durNs in ms.
  long peakRssKb = 0;

  std::vector<std::pair<std::string, std::int64_t>> counters;  ///< deltas over the run.
  std::vector<std::pair<std::string, double>> gauges;          ///< values at run end.
  struct SeriesSlice {
    std::string name;
    std::vector<double> points;
  };
  std::vector<SeriesSlice> series;  ///< points recorded during the run.
  std::vector<std::pair<std::string, double>> finals;  ///< flow-final metrics.

  const std::vector<double>* findSeries(std::string_view name) const;

  std::string toJson(bool pretty = true) const;
  bool writeJsonFile(const std::string& path, std::string* err = nullptr) const;

  /// Indented span tree + headline metrics as plain text (for logs; the
  /// report layer renders the same data as a report::Table).
  std::string summaryText() const;
};

/// Opens a run: snapshots the metrics registry and starts the root span.
/// finish() closes the span and assembles the RunReport; if finish() is
/// never called (an exception unwound the flow) the destructor discards
/// the trace so the thread's tracer stays clean.
class ScopedRun {
 public:
  ScopedRun(std::string flow, std::string tile);
  ScopedRun(ScopedRun&& other) noexcept;
  ScopedRun& operator=(ScopedRun&&) = delete;
  ScopedRun(const ScopedRun&) = delete;
  ScopedRun& operator=(const ScopedRun&) = delete;
  ~ScopedRun();

  /// Adds one flow-final key/value pair to the eventual report.
  void final(std::string name, double value);
  /// Attaches an attribute to the run's root span.
  void attr(const std::string& key, double value);

  RunReport finish();

 private:
  std::string flow_;
  std::string tile_;
  std::vector<std::pair<std::string, double>> finals_;
  MetricsRegistry::Snapshot start_;
  bool open_ = false;
};

}  // namespace m3d::obs
