#include "obs/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace m3d::obs {

namespace {

std::atomic<int> gLevel{static_cast<int>(LogLevel::kWarn)};
std::once_flag gEnvOnce;

// Sinks are guarded by one mutex: records from concurrent threads never
// interleave mid-line.
std::mutex gSinkMu;
std::ostream* gTextSink = &std::cerr;
std::ofstream gJsonl;

void readEnvLevel() {
  const char* v = std::getenv("M3D_LOG_LEVEL");
  if (v == nullptr) return;
  if (const auto parsed = parseLogLevel(v)) {
    gLevel.store(static_cast<int>(*parsed), std::memory_order_relaxed);
  } else {
    // Malformed levels keep the compiled-in default rather than silently
    // muting or flooding logs; stderr directly since this runs during the
    // logger's own initialization.
    std::fprintf(stderr,
                 "[m3d:warn] ignoring invalid M3D_LOG_LEVEL='%s' "
                 "(expected trace|debug|info|warn|error|off); keeping '%s'\n",
                 v, logLevelName(static_cast<LogLevel>(gLevel.load(std::memory_order_relaxed))));
  }
}

/// Milliseconds since the unix epoch (wall clock, for log timestamps).
std::int64_t wallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::optional<LogLevel> parseLogLevel(std::string_view text) {
  std::string s;
  s.reserve(text.size());
  for (char c : text) s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none" || s == "quiet") return LogLevel::kOff;
  return std::nullopt;
}

LogLevel logLevel() {
  std::call_once(gEnvOnce, readEnvLevel);
  return static_cast<LogLevel>(gLevel.load(std::memory_order_relaxed));
}

void setLogLevel(LogLevel level) {
  std::call_once(gEnvOnce, readEnvLevel);
  gLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool logEnabled(LogLevel level) { return level >= logLevel() && level != LogLevel::kOff; }

void initLogLevelFromEnv() {
  std::call_once(gEnvOnce, [] {});  // consume the lazy init
  readEnvLevel();
}

void configureLogging(std::optional<LogLevel> requested) {
  std::call_once(gEnvOnce, readEnvLevel);
  if (std::getenv("M3D_LOG_LEVEL") != nullptr) return;  // environment wins
  if (requested) gLevel.store(static_cast<int>(*requested), std::memory_order_relaxed);
}

void setLogTextSink(std::ostream* os) {
  std::lock_guard<std::mutex> lock(gSinkMu);
  gTextSink = os;
}

bool openLogJsonl(const std::string& path) {
  std::lock_guard<std::mutex> lock(gSinkMu);
  if (gJsonl.is_open()) gJsonl.close();
  if (path.empty()) return true;
  gJsonl.open(path, std::ios::app);
  return gJsonl.is_open();
}

void closeLogJsonl() {
  std::lock_guard<std::mutex> lock(gSinkMu);
  if (gJsonl.is_open()) gJsonl.close();
}

LogMessage::~LogMessage() {
  const std::string msg = ss_.str();
  const std::string phase = Tracer::local().currentPath();
  const std::int64_t tMs = wallMs();

  std::lock_guard<std::mutex> lock(gSinkMu);
  if (gTextSink != nullptr) {
    *gTextSink << "[m3d:" << logLevelName(level_) << "]";
    if (!phase.empty()) *gTextSink << " [" << phase << "]";
    *gTextSink << " " << msg << "\n";
    gTextSink->flush();
  }
  if (gJsonl.is_open()) {
    JsonWriter w(gJsonl, /*pretty=*/false);
    w.beginObject();
    w.key("t_ms");
    w.value(tMs);
    // Monotonic stamp + thread track id: the same clock and tid scheme the
    // Chrome-trace export uses, so log records correlate with trace events.
    w.key("t_mono_ns");
    w.value(monotonicNowNs());
    w.key("tid");
    w.value(static_cast<std::int64_t>(threadTrackId()));
    w.key("level");
    w.value(logLevelName(level_));
    if (!phase.empty()) {
      w.key("phase");
      w.value(phase);
    }
    w.key("msg");
    w.value(msg);
    w.endObject();
    gJsonl << "\n";
    gJsonl.flush();
  }
}

}  // namespace m3d::obs
