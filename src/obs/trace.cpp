#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

#include "obs/chrome_trace.hpp"

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define M3D_HAVE_GETRUSAGE 1
#endif

namespace m3d::obs {

long currentPeakRssKb() {
#ifdef M3D_HAVE_GETRUSAGE
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
    return static_cast<long>(ru.ru_maxrss);  // KB on Linux
#endif
  }
#endif
  return 0;
}

std::int64_t monotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const Span* Span::find(std::string_view spanName) const {
  if (name == spanName) return this;
  for (const Span& c : children) {
    if (const Span* hit = c.find(spanName)) return hit;
  }
  return nullptr;
}

std::int64_t Span::childrenDurNs() const {
  std::int64_t sum = 0;
  for (const Span& c : children) sum += c.durNs;
  return sum;
}

std::int64_t Span::selfDurNs() const {
  return std::max<std::int64_t>(0, durNs - childrenDurNs());
}

std::size_t Span::treeSize() const {
  std::size_t n = 1;
  for (const Span& c : children) n += c.treeSize();
  return n;
}

Tracer& Tracer::local() {
  thread_local Tracer tracer;
  return tracer;
}

void Tracer::open(std::string name) {
  Span s;
  s.name = std::move(name);
  s.startNs = monotonicNowNs();
  stack_.push_back(std::move(s));
  openRssKb_.push_back(currentPeakRssKb());
}

void Tracer::attr(const std::string& key, double value) {
  if (stack_.empty()) return;
  stack_.back().attrs.emplace_back(key, value);
}

void Tracer::close() {
  if (stack_.empty()) return;
  Span s = std::move(stack_.back());
  stack_.pop_back();
  const long openRss = openRssKb_.back();
  openRssKb_.pop_back();
  s.durNs = std::max<std::int64_t>(1, monotonicNowNs() - s.startNs);
  s.peakRssAtCloseKb = currentPeakRssKb();
  s.rssDeltaKb = std::max(0L, s.peakRssAtCloseKb - openRss);
  TraceCollector& trace = TraceCollector::global();
  if (trace.enabled()) trace.recordComplete(s.name, s.startNs, s.durNs, s.attrs);
  if (stack_.empty()) {
    completed_.push_back(std::move(s));
  } else {
    stack_.back().children.push_back(std::move(s));
  }
}

Span Tracer::takeLastRoot() {
  Span s;
  if (!completed_.empty()) {
    s = std::move(completed_.back());
    completed_.pop_back();
  }
  return s;
}

void Tracer::clear() {
  stack_.clear();
  openRssKb_.clear();
  completed_.clear();
}

std::string Tracer::currentPath(char sep) const {
  std::string path;
  for (const Span& s : stack_) {
    if (!path.empty()) path.push_back(sep);
    path += s.name;
  }
  return path;
}

ScopedPhase::ScopedPhase(std::string name, bool forceRoot) {
  Tracer& t = Tracer::local();
  recording_ = forceRoot || t.active();
  if (recording_) t.open(std::move(name));
}

ScopedPhase::~ScopedPhase() {
  if (recording_) Tracer::local().close();
}

void ScopedPhase::attr(const std::string& key, double value) {
  if (recording_) Tracer::local().attr(key, value);
}

}  // namespace m3d::obs
