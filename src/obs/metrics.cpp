#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/chrome_trace.hpp"

namespace m3d::obs {

double percentileOf(std::vector<double> points, double p) {
  if (points.empty()) return 0.0;
  std::sort(points.begin(), points.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: smallest index i with (i+1)/n * 100 >= p.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(points.size())));
  return points[rank == 0 ? 0 : rank - 1];
}

void Series::record(double v) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (points_.empty()) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    sum_ += v;
    points_.push_back(v);
  }
  // Outside the lock: the trace collector has its own mutex.
  if (!name_.empty()) {
    TraceCollector& trace = TraceCollector::global();
    if (trace.enabled()) trace.recordCounter(name_, v);
  }
}

std::size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

std::vector<double> Series::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

std::vector<double> Series::pointsFrom(std::size_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= points_.size()) return {};
  return std::vector<double>(points_.begin() + static_cast<std::ptrdiff_t>(from),
                             points_.end());
}

Series::Stats Series::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.count = points_.size();
  if (points_.empty()) return s;
  s.min = min_;
  s.max = max_;
  s.mean = sum_ / static_cast<double>(points_.size());
  s.last = points_.back();
  return s;
}

double Series::percentile(double p) const {
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    copy = points_;
  }
  return percentileOf(std::move(copy), p);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Series& MetricsRegistry::series(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  Series& s = series_.try_emplace(std::string(name)).first->second;
  s.name_ = std::string(name);
  return s;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, s] : series_) snap.seriesSizes.emplace(name, s.size());
  return snap;
}

void MetricsRegistry::visitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) fn(name, c);
}

void MetricsRegistry::visitGauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, g] : gauges_) fn(name, g);
}

void MetricsRegistry::visitSeries(
    const std::function<void(const std::string&, const Series&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, s] : series_) fn(name, s);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  series_.clear();
}

}  // namespace m3d::obs
