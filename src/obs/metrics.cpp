#include "obs/metrics.hpp"

#include <algorithm>

namespace m3d::obs {

void Series::record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.push_back(v);
}

std::size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

std::vector<double> Series::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

std::vector<double> Series::pointsFrom(std::size_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= points_.size()) return {};
  return std::vector<double>(points_.begin() + static_cast<std::ptrdiff_t>(from),
                             points_.end());
}

Series::Stats Series::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.count = points_.size();
  if (points_.empty()) return s;
  s.min = *std::min_element(points_.begin(), points_.end());
  s.max = *std::max_element(points_.begin(), points_.end());
  double sum = 0.0;
  for (double v : points_) sum += v;
  s.mean = sum / static_cast<double>(points_.size());
  s.last = points_.back();
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Series& MetricsRegistry::series(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_.try_emplace(std::string(name)).first->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, s] : series_) snap.seriesSizes.emplace(name, s.size());
  return snap;
}

void MetricsRegistry::visitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) fn(name, c);
}

void MetricsRegistry::visitGauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, g] : gauges_) fn(name, g);
}

void MetricsRegistry::visitSeries(
    const std::function<void(const std::string&, const Series&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, s] : series_) fn(name, s);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  series_.clear();
}

}  // namespace m3d::obs
