#pragma once

/// \file json.hpp
/// Minimal JSON emission and parsing -- no external dependency.
///
/// JsonWriter is a streaming writer with correct escaping, comma handling
/// and optional pretty-printing; it backs the run reports, the JSONL log
/// sink, and the bench result dumps. parseJson() is a small recursive-
/// descent parser used by tests and the report smoke check to round-trip
/// what the writer produced (it accepts standard JSON: objects, arrays,
/// strings with the common escapes, numbers, booleans, null).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace m3d::obs {

/// Streaming JSON writer. Calls must describe a well-formed document:
/// begin/end pairs balanced, key() before every value inside an object.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true) : os_(os), pretty_(pretty) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(std::string_view k);
  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::int64_t v);
  /// Any other integer width funnels into the int64 overload (kept as a
  /// template so it never collides with int64_t's platform alias).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, std::int64_t>)
  void value(T v) {
    value(static_cast<std::int64_t>(v));
  }
  void value(bool v);
  void valueNull();

  /// key + value in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  static void escape(std::ostream& os, std::string_view s);

 private:
  void beforeValue();
  void newlineIndent();

  std::ostream& os_;
  bool pretty_;
  /// One frame per open container: 'O' object, 'A' array; first_ tracks
  /// whether a comma is due, key_ whether a key was just written.
  std::vector<char> stack_;
  std::vector<bool> first_;
  bool keyPending_ = false;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  ///< insertion order.

  bool isNull() const { return type == Type::kNull; }
  bool isObject() const { return type == Type::kObject; }
  bool isArray() const { return type == Type::kArray; }
  bool isNumber() const { return type == Type::kNumber; }
  bool isString() const { return type == Type::kString; }

  /// Object member lookup (nullptr when absent or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Shorthand: find(key)->number with a default.
  double numberOr(std::string_view key, double fallback) const;
};

/// Parses \p text; returns nullopt and fills \p err on malformed input.
std::optional<JsonValue> parseJson(std::string_view text, std::string* err = nullptr);

}  // namespace m3d::obs
