#include "serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <functional>
#include <sstream>
#include <utility>

#include "io/fsutil.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

#ifdef __unix__
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace m3d::serve {

namespace {

#ifdef __unix__

/// Sends the whole buffer (handling short writes); false on error.
bool sendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Extracts the next '\n'-terminated line from \p buf, reading more from
/// \p fd as needed. Returns false on EOF/error with no complete line left.
bool recvLine(int fd, std::string& buf, std::string* line) {
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      *line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

#endif  // __unix__

void writeJobStatus(obs::JsonWriter& w, const Job& job) {
  w.kv("job_id", static_cast<std::int64_t>(job.id));
  w.kv("state", jobStateName(job.state));
  w.kv("kind", jobKindName(job.spec.kind));
  w.kv("flow", std::string_view(job.spec.flow));
  w.kv("tile", std::string_view(job.spec.tile));
  w.kv("label", std::string_view(job.spec.label));
  w.kv("coalesced", job.coalesced);
  if (!job.error.empty()) w.kv("error", std::string_view(job.error));
}

std::string okLine(const std::function<void(obs::JsonWriter&)>& body) {
  std::ostringstream os;
  obs::JsonWriter w(os, /*pretty=*/false);
  w.beginObject();
  w.kv("ok", true);
  body(w);
  w.endObject();
  return os.str();
}

}  // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {
  runner_.cacheDir = opt_.cacheDir;
  runner_.cacheMaxBytes = opt_.cacheMaxBytes;
  runner_.defaultThreads = opt_.jobThreads > 0 ? opt_.jobThreads : 1;
  if (opt_.executors < 1) opt_.executors = 1;
}

Server::~Server() {
  if (started_) {
    requestShutdown();
    wait();
  }
}

bool Server::start(std::string* err) {
#ifndef __unix__
  if (err != nullptr) *err = "m3d_serve requires Unix-domain sockets";
  return false;
#else
  if (opt_.socketPath.empty()) {
    if (err != nullptr) *err = "no socket path configured";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socketPath.size() >= sizeof addr.sun_path) {
    if (err != nullptr) {
      *err = "socket path too long (" + std::to_string(opt_.socketPath.size()) +
             " bytes, max " + std::to_string(sizeof addr.sun_path - 1) + ")";
    }
    return false;
  }
  std::memcpy(addr.sun_path, opt_.socketPath.c_str(), opt_.socketPath.size() + 1);

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a crashed daemon would make bind fail; remove
  // it only when nothing answers there (never steal a live server's socket).
  ::unlink(opt_.socketPath.c_str());
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listenFd_, 64) != 0) {
    if (err != nullptr) *err = std::string("bind/listen: ") + std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }

  if (!opt_.tracePath.empty()) {
    auto& trace = obs::TraceCollector::global();
    if (trace.enable(opt_.tracePath)) {
      trace.setExternallyManaged(true);
    } else {
      M3D_LOG(warn) << "m3d_serve: cannot open trace path " << opt_.tracePath
                    << "; tracing disabled";
    }
  }
  run_.emplace("m3d_serve", opt_.socketPath);

  acceptThread_ = std::thread([this] { acceptLoop(); });
  executorThreads_.reserve(static_cast<std::size_t>(opt_.executors));
  for (int i = 0; i < opt_.executors; ++i) {
    executorThreads_.emplace_back([this] { executorLoop(); });
  }
  started_ = true;
  M3D_LOG(info) << "m3d_serve: listening on " << opt_.socketPath << " ("
                << opt_.executors << " executors, cache "
                << (opt_.cacheDir.empty() ? std::string("off") : opt_.cacheDir) << ")";
  return true;
#endif
}

void Server::requestShutdown() {
  {
    // The lock pairs with wait()'s predicate check, so a shutdown racing
    // with wait() entering its sleep can never lose the wakeup.
    std::lock_guard<std::mutex> lock(stopMu_);
    bool expected = false;
    if (!stop_.compare_exchange_strong(expected, true)) return;
  }
  queue_.close();
#ifdef __unix__
  // Unblock connection threads stuck in recv; the accept loop notices
  // stop_ via its poll timeout.
  std::lock_guard<std::mutex> lock(connMu_);
  for (int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
#endif
  stopCv_.notify_all();
}

int Server::wait() {
#ifndef __unix__
  return 0;
#else
  if (!started_) return 0;
  {
    std::unique_lock<std::mutex> lock(stopMu_);
    stopCv_.wait(lock, [this] { return stop_.load(); });
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  for (std::thread& t : executorThreads_) {
    if (t.joinable()) t.join();
  }
  executorThreads_.clear();
  {
    // Connection threads exit once their peers disconnect (their sockets
    // were shut down by requestShutdown).
    std::vector<std::thread> conns;
    {
      std::lock_guard<std::mutex> lock(connMu_);
      conns.swap(connThreads_);
    }
    for (std::thread& t : conns) {
      if (t.joinable()) t.join();
    }
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  ::unlink(opt_.socketPath.c_str());
  started_ = false;

  const QueueStats qs = queue_.stats();
  if (run_.has_value()) {
    run_->final("jobs_submitted", static_cast<double>(qs.submitted));
    run_->final("jobs_done", static_cast<double>(qs.done));
    run_->final("jobs_failed", static_cast<double>(qs.failed));
    run_->final("jobs_cancelled", static_cast<double>(qs.cancelled));
    run_->final("jobs_coalesced", static_cast<double>(qs.coalesced));
    run_->final("coalesced_prefix_stages",
                static_cast<double>(coalescedPrefixStages_.load()));
    const obs::RunReport report = run_->finish();
    run_.reset();
    if (!opt_.reportPath.empty()) {
      std::string err;
      if (!report.writeJsonFile(opt_.reportPath, &err)) {
        M3D_LOG(warn) << "m3d_serve: cannot write run report: " << err;
      } else {
        M3D_LOG(info) << "m3d_serve: run report written: " << opt_.reportPath;
      }
    }
  }
  auto& trace = obs::TraceCollector::global();
  if (trace.externallyManaged()) {
    trace.setExternallyManaged(false);
    if (trace.enabled()) {
      std::string err;
      if (!trace.writeFile(&err)) {
        M3D_LOG(warn) << "m3d_serve: cannot write trace: " << err;
      } else {
        M3D_LOG(info) << "m3d_serve: trace written: " << opt_.tracePath;
      }
    }
  }
  M3D_LOG(info) << "m3d_serve: shut down (" << qs.done << " done, " << qs.failed
                << " failed, " << qs.cancelled << " cancelled, " << qs.coalesced
                << " coalesced)";
  return static_cast<int>(qs.failed);
#endif
}

void Server::acceptLoop() {
#ifdef __unix__
  while (!stop_.load()) {
    pollfd pfd{};
    pfd.fd = listenFd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(connMu_);
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    connFds_.push_back(fd);
    connThreads_.emplace_back([this, fd] { handleConnection(fd); });
  }
#endif
}

void Server::handleConnection(int fd) {
#ifdef __unix__
  std::string buf;
  std::string line;
  while (!stop_.load() || !buf.empty()) {
    if (!recvLine(fd, buf, &line)) break;
    if (line.empty()) continue;
    std::string err;
    const auto req = obs::parseJson(line, &err);
    std::string resp;
    bool shutdownAfterReply = false;
    if (!req.has_value()) {
      resp = encodeError("bad request: " + err);
    } else {
      resp = handleRequest(*req, &shutdownAfterReply);
    }
    const bool sent = sendAll(fd, resp + "\n");
    if (shutdownAfterReply) requestShutdown();
    if (!sent) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(connMu_);
  for (std::size_t i = 0; i < connFds_.size(); ++i) {
    if (connFds_[i] == fd) {
      connFds_.erase(connFds_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
#endif
}

std::string Server::handleRequest(const obs::JsonValue& req, bool* shutdownAfterReply) {
  const obs::JsonValue* opField = req.find("op");
  if (opField == nullptr || !opField->isString()) {
    return encodeError("request has no 'op'");
  }
  const std::string& op = opField->str;

  if (op == "ping") {
    return okLine([&](obs::JsonWriter& w) {
      w.kv("server", "m3d_serve");
      w.kv("protocol", kProtocolVersion);
    });
  }

  if (op == "submit") {
    if (stop_.load()) return encodeError("server is shutting down");
    const obs::JsonValue* jobField = req.find("job");
    if (jobField == nullptr) return encodeError("submit has no 'job'");
    JobSpec spec;
    std::string err;
    if (!JobSpec::fromJson(*jobField, &spec, &err)) {
      return encodeError("bad job spec: " + err);
    }
    const std::uint64_t id = queue_.submit(spec);
    M3D_LOG(info) << "m3d_serve: job " << id << " submitted (" << jobKindName(spec.kind)
                  << " " << spec.flow << "/" << spec.tile
                  << (spec.label.empty() ? "" : ", label " + spec.label) << ")";
    return okLine([&](obs::JsonWriter& w) {
      w.kv("job_id", static_cast<std::int64_t>(id));
    });
  }

  if (op == "status" || op == "wait" || op == "result" || op == "cancel") {
    const obs::JsonValue* idField = req.find("job_id");
    if (idField == nullptr || !idField->isNumber()) {
      return encodeError(op + " has no 'job_id'");
    }
    const auto id = static_cast<std::uint64_t>(idField->number);

    if (op == "cancel") {
      if (queue_.cancel(id)) {
        return okLine([](obs::JsonWriter& w) { w.kv("state", "cancelled"); });
      }
      const auto job = queue_.find(id);
      if (job == nullptr) return encodeError("unknown job " + std::to_string(id));
      return encodeError("job " + std::to_string(id) + " is " +
                         jobStateName(job->state) + "; only queued jobs cancel");
    }

    std::shared_ptr<const Job> job;
    if (op == "wait") {
      int timeoutMs = 0;
      if (const obs::JsonValue* t = req.find("timeout_ms");
          t != nullptr && t->isNumber()) {
        timeoutMs = static_cast<int>(t->number);
      }
      job = queue_.waitJob(id, timeoutMs);
    } else {
      job = queue_.find(id);
    }
    if (job == nullptr) return encodeError("unknown job " + std::to_string(id));

    if (op == "result") {
      if (job->state != JobState::kDone) {
        return encodeError("job " + std::to_string(id) + " has no result (state " +
                           jobStateName(job->state) +
                           (job->error.empty() ? "" : ": " + job->error) + ")");
      }
      return okLine([&](obs::JsonWriter& w) {
        writeJobStatus(w, *job);
        w.key("result");
        job->result.writeJson(w);
      });
    }
    return okLine([&](obs::JsonWriter& w) { writeJobStatus(w, *job); });
  }

  if (op == "stats") {
    const QueueStats qs = queue_.stats();
    auto& reg = obs::MetricsRegistry::global();
    return okLine([&](obs::JsonWriter& w) {
      w.key("jobs");
      w.beginObject();
      w.kv("submitted", qs.submitted);
      w.kv("done", qs.done);
      w.kv("failed", qs.failed);
      w.kv("cancelled", qs.cancelled);
      w.kv("coalesced", qs.coalesced);
      w.kv("queued", qs.queued);
      w.kv("running", qs.running);
      w.endObject();
      w.key("cache");
      w.beginObject();
      w.kv("hits", reg.counter("db.stage_cache_hits").value());
      w.kv("misses", reg.counter("db.stage_cache_misses").value());
      w.kv("writes", reg.counter("db.stage_checkpoints_written").value());
      w.kv("evictions", reg.counter("db.stage_cache_evictions").value());
      w.kv("bytes", static_cast<std::int64_t>(reg.gauge("db.stage_cache_bytes").value()));
      w.endObject();
    });
  }

  if (op == "shutdown") {
    M3D_LOG(info) << "m3d_serve: shutdown requested by client";
    // The actual teardown happens in handleConnection *after* the response
    // is on the wire: requestShutdown() shuts every connection socket down
    // (including this one), so tearing down first would eat the ack.
    if (shutdownAfterReply != nullptr) *shutdownAfterReply = true;
    return okLine([](obs::JsonWriter& w) { w.kv("state", "draining"); });
  }

  return encodeError("unknown op '" + op + "'");
}

void Server::executorLoop() {
  while (std::shared_ptr<Job> job = queue_.dequeue()) {
    obs::setThreadTrackId(obs::claimNamedAuxTrack("job-" + std::to_string(job->id)));
    JobResult result;
    std::string err;
    const bool ok = runJob(*job, runner_, &result, &err);
    queue_.complete(job->id, ok, result, err);
    if (ok) {
      obs::counter("serve.jobs_done").add();
      if (job->coalesced) {
        obs::counter("serve.jobs_coalesced").add();
        coalescedPrefixStages_.fetch_add(result.cachePrefixStages,
                                         std::memory_order_relaxed);
      }
      M3D_LOG(info) << "m3d_serve: job " << job->id << " done in "
                    << static_cast<std::int64_t>(result.wallMs) << " ms (prefix "
                    << result.cachePrefixStages << "/7"
                    << (job->coalesced ? ", coalesced" : "") << ")";
    } else {
      obs::counter("serve.jobs_failed").add();
      M3D_LOG(error) << "m3d_serve: job " << job->id << " failed: " << err;
    }
  }
}

}  // namespace m3d::serve
