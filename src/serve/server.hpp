#pragma once

/// \file server.hpp
/// The m3d_serve daemon core: a Unix-domain-socket server that accepts
/// line-delimited JSON requests (serve/protocol.hpp), schedules submitted
/// jobs through a coalescing JobQueue, and executes them on a pool of
/// executor threads that all share one on-disk stage cache.
///
/// Threading model:
///   - start() binds/listens and spawns the accept thread + N executor
///     threads, then returns. wait() blocks the *same* thread that called
///     start() until shutdown and performs the teardown there (the server's
///     aggregate ScopedRun is pinned to that thread's tracer).
///   - each accepted connection gets its own handler thread; requests on
///     one connection are processed in order, connections are independent.
///   - each executor claims a named trace track per job ("job-<id>") and
///     pins itself to it before running the flow, so a traced server shows
///     one span track per job.
///
/// Shutdown (requestShutdown(), a client "shutdown" op, or a signal
/// forwarded by m3d_serve_main) is graceful: the listen socket closes (no
/// new connections), queued jobs are cancelled, running jobs drain to
/// completion, connection threads are unblocked and joined, and wait()
/// finally writes the aggregate run report and the Chrome trace.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "obs/run_report.hpp"
#include "serve/job_queue.hpp"
#include "serve/job_runner.hpp"

namespace m3d::serve {

struct ServerOptions {
  std::string socketPath;        ///< Unix-domain socket path (required).
  std::string cacheDir;          ///< shared stage cache ("" = caching off).
  std::int64_t cacheMaxBytes = 0;  ///< LRU budget of the shared cache.
  int executors = 2;             ///< concurrent job executor threads.
  int jobThreads = 1;            ///< default per-job thread count.
  std::string reportPath;        ///< aggregate run-report JSON ("" = none).
  std::string tracePath;         ///< Chrome trace JSON ("" = none).
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept + executor threads. False with
  /// \p err on failure (socket errors, path too long for sockaddr_un).
  bool start(std::string* err);

  /// Initiates graceful shutdown. Safe from any thread, idempotent.
  void requestShutdown();

  /// Blocks until shutdown completes (call on the start() thread). Joins
  /// every thread, then writes the aggregate run report / trace when
  /// configured. Returns the number of jobs that failed.
  int wait();

  JobQueue& queue() { return queue_; }
  const ServerOptions& options() const { return opt_; }

 private:
  void acceptLoop();
  void executorLoop();
  void handleConnection(int fd);
  /// Builds the one-line JSON response to one parsed request. A "shutdown"
  /// op sets \p shutdownAfterReply instead of tearing down inline, so the
  /// connection can flush the acknowledgement first.
  std::string handleRequest(const obs::JsonValue& req, bool* shutdownAfterReply);

  ServerOptions opt_;
  RunnerOptions runner_;
  JobQueue queue_;

  std::atomic<bool> stop_{false};
  std::mutex stopMu_;
  std::condition_variable stopCv_;

  int listenFd_ = -1;
  std::thread acceptThread_;
  std::vector<std::thread> executorThreads_;
  std::mutex connMu_;
  std::vector<int> connFds_;                ///< open connection sockets.
  std::vector<std::thread> connThreads_;

  std::optional<obs::ScopedRun> run_;       ///< aggregate report bracket.
  std::atomic<std::int64_t> coalescedPrefixStages_{0};
  bool started_ = false;
};

}  // namespace m3d::serve
