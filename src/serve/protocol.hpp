#pragma once

/// \file protocol.hpp
/// Wire protocol of the m3d_serve flow service: line-delimited JSON over a
/// Unix-domain stream socket. Every request is one JSON object on one line
/// (terminated by '\n'); every response is one JSON object on one line.
/// Responses always carry "ok" (bool); failures add "error" (string).
///
/// Requests ("op" selects the verb):
///   {"op":"ping"}
///   {"op":"submit","job":{<JobSpec>}}           -> {"ok":true,"job_id":N}
///   {"op":"status","job_id":N}                  -> {"ok":true,"state":"..",..}
///   {"op":"wait","job_id":N,"timeout_ms":T}     -> status once terminal
///   {"op":"result","job_id":N}                  -> {"ok":true,"result":{..}}
///   {"op":"cancel","job_id":N}                  -> {"ok":true,"state":".."}
///   {"op":"stats"}                              -> server/cache counters
///   {"op":"shutdown"}                           -> {"ok":true} then drain
///
/// JobSpec names a flow run declaratively (the server owns tile generation
/// and FlowOptions construction), so clients stay thin and every job is
/// reproducible from its spec alone. ECO jobs (kind "eco") perturb a base
/// design (today: the F2F bump-pitch knob); jobs sharing a baseKey() are
/// scheduled back-to-back so they share place/pre_route_opt/cts stage-cache
/// prefixes and the batch leader's route checkpoint seeds routeDesignEco
/// for the members (coalescing).
///
/// 64-bit hashes cross the wire as 16-digit hex strings: JSON numbers are
/// doubles and would silently lose bits past 2^53.

#include <cstdint>
#include <string>

#include "flows/flow_common.hpp"
#include "obs/json.hpp"

namespace m3d::serve {

/// Protocol/schema version, echoed by ping so mismatched client/daemon
/// builds fail loudly instead of misparsing each other.
inline constexpr int kProtocolVersion = 1;

enum class JobKind { kFlow, kEco };
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* jobKindName(JobKind k);
const char* jobStateName(JobState s);
/// True for states that will never change again.
bool jobStateTerminal(JobState s);

/// Declarative flow-job description (see file comment).
struct JobSpec {
  JobKind kind = JobKind::kFlow;
  std::string flow = "macro3d";  ///< macro3d | 2d | s2d | bf_s2d | c2d
  std::string tile = "small";    ///< small | large | tiny
  int shrink = 1;                ///< divides logic sizes (smoke/test scale)
  int threads = 0;               ///< FlowOptions::numThreads (0 = server default)
  int priority = 0;              ///< higher runs first; FIFO within a priority
  int maxFreqRounds = 4;
  int optMaxPasses = 0;          ///< 0 = OptimizerOptions default
  bool signoff = true;
  bool resume = true;            ///< false forces a cold run (warms the cache)
  int macroDieMetals = 6;
  double f2fPitchScale = 1.0;    ///< ECO knob: scales F2fViaSpec::pitch
  std::string placeEngine = "b2b";  ///< b2b | analytic (PlacerOptions::engine)
  std::string label;             ///< free-form client tag (reports/traces)

  /// Identity of the base design: a hash over every field that shapes the
  /// place/pre_route_opt/cts prefix. ECO knobs (f2fPitchScale), thread
  /// counts, priority, resume and the label are excluded — jobs that differ
  /// only in those share a base design and are coalesced.
  std::uint64_t baseKey() const;

  /// "" when valid, else a diagnostic (unknown flow/tile, bad ranges, an
  /// ECO job on a flow without an F2F interface).
  std::string validate() const;

  void writeJson(obs::JsonWriter& w) const;
  static bool fromJson(const obs::JsonValue& v, JobSpec* out, std::string* err);
};

/// Terminal output of one job, as sent in the "result" response.
struct JobResult {
  DesignMetrics metrics;
  int cachePrefixStages = 0;     ///< pipeline stages restored from the cache
  std::int64_t ecoRipped = -1;   ///< routeDesignEco census (-1 = not ECO-routed)
  std::int64_t ecoReused = -1;
  bool coalesced = false;        ///< ran against a batch leader's seed/prefix
  std::uint64_t artifactHash = 0;  ///< FNV-1a of the artifact (see source)
  std::string artifactSource;    ///< "checkpoint" (signoff .m3ddb bytes) or
                                 ///< "metrics" (metrics JSON; cache disabled)
  double wallMs = 0.0;
  std::string finalCheckpoint;   ///< signoff-stage cache path ("" = disabled)

  void writeJson(obs::JsonWriter& w) const;
  static bool fromJson(const obs::JsonValue& v, JobResult* out, std::string* err);
};

/// 64-bit value <-> fixed-width lowercase hex (the wire format of hashes).
std::string hashToHex(std::uint64_t h);
bool hexToHash(const std::string& s, std::uint64_t* out);

/// One-line JSON encoders for the simple requests (client side).
std::string encodePing();
std::string encodeSubmit(const JobSpec& spec);
std::string encodeJobOp(const char* op, std::uint64_t jobId);
std::string encodeWait(std::uint64_t jobId, int timeoutMs);
std::string encodeStats();
std::string encodeShutdown();

/// One-line error response.
std::string encodeError(const std::string& message);

}  // namespace m3d::serve
