#pragma once

/// \file job_runner.hpp
/// Executes one queued job: translates the declarative JobSpec into a tile
/// configuration + FlowOptions (pointing every job at the server's shared
/// stage cache), runs the requested flow, and condenses the FlowOutput into
/// the wire-format JobResult -- including the artifact content hash clients
/// use to check bit-identity across serving modes (serial vs concurrent vs
/// coalesced runs of the same spec must hash identically).

#include <cstdint>
#include <string>

#include "serve/job_queue.hpp"

namespace m3d::serve {

/// Server-wide execution context shared by every job.
struct RunnerOptions {
  /// Shared stage-cache directory ("" disables caching; then coalescing
  /// only serializes batches without prefix reuse).
  std::string cacheDir;
  /// LRU byte budget of the shared cache (0 = unbounded).
  std::int64_t cacheMaxBytes = 0;
  /// Threads per job when the spec leaves JobSpec::threads at 0.
  int defaultThreads = 1;
};

/// Builds the tile configuration a spec names: "small"/"large" are the
/// paper tiles, "tiny" the test-scale tile; \p shrink then divides every
/// logic-cloud size (floor 1) and tags the name so stage-cache keys of
/// different shrink levels never collide.
TileConfig tileConfigFor(const std::string& tile, int shrink);

/// FlowOptions a spec maps to under \p ropt (exposed for tests: a client
/// of the serial/concurrent bit-identity contract must build its serial
/// reference runs from exactly these options).
FlowOptions flowOptionsFor(const JobSpec& spec, const RunnerOptions& ropt,
                           const std::string& ecoSeedPath);

/// Runs \p job to completion on the calling thread. Returns true and fills
/// \p result on success; false with \p err on failure (unknown flow,
/// flow-internal exception). Never throws.
bool runJob(const Job& job, const RunnerOptions& ropt, JobResult* result,
            std::string* err);

}  // namespace m3d::serve
