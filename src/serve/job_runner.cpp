#include "serve/job_runner.hpp"

#include <cassert>
#include <chrono>
#include <cmath>
#include <exception>
#include <sstream>

#include "core/macro3d.hpp"
#include "db/hash.hpp"
#include "flows/flows.hpp"
#include "io/fsutil.hpp"
#include "obs/log.hpp"
#include "place/placer.hpp"

namespace m3d::serve {

namespace {

/// The test-scale tile (mirrors the tiny tile the db/serve test suites use):
/// small enough that a full Macro-3D run takes well under a second, yet it
/// exercises every pipeline stage including SRAM macros and all three NoCs.
TileConfig tinyTileConfig() {
  TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

int shrinkDiv(int v, int s) { return v / s > 0 ? v / s : 1; }

/// FNV-1a over a whole file; false when unreadable.
bool hashFile(const std::string& path, std::uint64_t* out) {
  std::vector<std::uint8_t> bytes;
  if (!io::readFileBytes(path, bytes)) return false;
  *out = db::fnv1a64(bytes.data(), bytes.size());
  return true;
}

}  // namespace

TileConfig tileConfigFor(const std::string& tile, int shrink) {
  TileConfig cfg;
  if (tile == "small") {
    cfg = makeSmallCacheTileConfig();
  } else if (tile == "large") {
    cfg = makeLargeCacheTileConfig();
  } else {
    cfg = tinyTileConfig();
  }
  if (shrink > 1) {
    cfg.name += "-s" + std::to_string(shrink);
    cfg.coreGates = shrinkDiv(cfg.coreGates, shrink);
    cfg.coreRegs = shrinkDiv(cfg.coreRegs, shrink);
    cfg.l1CtrlGates = shrinkDiv(cfg.l1CtrlGates, shrink);
    cfg.l1CtrlRegs = shrinkDiv(cfg.l1CtrlRegs, shrink);
    cfg.l2CtrlGates = shrinkDiv(cfg.l2CtrlGates, shrink);
    cfg.l2CtrlRegs = shrinkDiv(cfg.l2CtrlRegs, shrink);
    cfg.l3CtrlGates = shrinkDiv(cfg.l3CtrlGates, shrink);
    cfg.l3CtrlRegs = shrinkDiv(cfg.l3CtrlRegs, shrink);
    cfg.nocGates = shrinkDiv(cfg.nocGates, shrink);
    cfg.nocRegs = shrinkDiv(cfg.nocRegs, shrink);
  }
  return cfg;
}

FlowOptions flowOptionsFor(const JobSpec& spec, const RunnerOptions& ropt,
                           const std::string& ecoSeedPath) {
  FlowOptions opt;
  opt.maxFreqRounds = spec.maxFreqRounds;
  if (spec.optMaxPasses > 0) opt.optBase.maxPasses = spec.optMaxPasses;
  opt.signoff = spec.signoff;
  opt.resume = spec.resume;
  opt.macroDieMetals = spec.macroDieMetals;
  // validate() already rejected anything unparsable; a stale string here
  // would silently run the default engine, so assert the parse.
  [[maybe_unused]] const bool engineOk = parsePlaceEngine(spec.placeEngine, opt.placer.engine);
  assert(engineOk);
  opt.numThreads = spec.threads > 0 ? spec.threads : ropt.defaultThreads;
  opt.checkpointDir = ropt.cacheDir;
  opt.cacheMaxBytes = ropt.cacheMaxBytes;
  if (spec.f2fPitchScale != 1.0) {
    opt.f2fVia.pitch = static_cast<Dbu>(
        std::llround(static_cast<double>(opt.f2fVia.pitch) * spec.f2fPitchScale));
  }
  if (spec.kind == JobKind::kEco) opt.ecoRouteFrom = ecoSeedPath;
  // Server jobs keep the per-flow log summary quiet (the server logs one
  // line per job) and never write per-run report files of their own: the
  // daemon emits one aggregate report at shutdown.
  opt.report.logSummary = false;
  return opt;
}

bool runJob(const Job& job, const RunnerOptions& ropt, JobResult* result,
            std::string* err) {
  const auto start = std::chrono::steady_clock::now();
  const JobSpec& spec = job.spec;
  const TileConfig cfg = tileConfigFor(spec.tile, spec.shrink);
  const FlowOptions opt = flowOptionsFor(spec, ropt, job.ecoSeedPath);

  FlowOutput out;
  try {
    if (spec.flow == "macro3d") {
      out = runFlowMacro3D(cfg, opt);
    } else if (spec.flow == "2d") {
      out = runFlow2D(cfg, opt);
    } else if (spec.flow == "s2d") {
      out = runFlowS2D(cfg, /*balancedFloorplan=*/false, opt);
    } else if (spec.flow == "bf_s2d") {
      out = runFlowS2D(cfg, /*balancedFloorplan=*/true, opt);
    } else if (spec.flow == "c2d") {
      out = runFlowC2D(cfg, opt);
    } else {
      if (err != nullptr) *err = "unknown flow '" + spec.flow + "'";
      return false;
    }
  } catch (const std::exception& e) {
    if (err != nullptr) *err = std::string("flow threw: ") + e.what();
    return false;
  } catch (...) {
    if (err != nullptr) *err = "flow threw a non-standard exception";
    return false;
  }

  JobResult r;
  r.metrics = out.metrics;
  r.cachePrefixStages = out.cacheRestoredStages;
  if (spec.kind == JobKind::kEco && !job.ecoSeedPath.empty()) {
    r.ecoRipped = out.routes.ecoNetsRipped;
    r.ecoReused = out.routes.ecoNetsReused;
  }
  r.coalesced = job.coalesced;
  r.finalCheckpoint = out.finalCheckpointPath;

  // Artifact hash: the signoff-stage checkpoint bytes when the cache is on
  // (the strongest identity: the full serialized design), else the metrics
  // JSON. Either way two runs of the same spec must produce equal hashes.
  if (!out.finalCheckpointPath.empty() && hashFile(out.finalCheckpointPath, &r.artifactHash)) {
    r.artifactSource = "checkpoint";
  } else {
    std::ostringstream os;
    obs::JsonWriter w(os, /*pretty=*/false);
    writeDesignMetricsJson(w, out.metrics);
    const std::string json = os.str();
    r.artifactHash = db::fnv1a64(json.data(), json.size());
    r.artifactSource = "metrics";
  }

  r.wallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
                 .count();
  *result = r;
  return true;
}

}  // namespace m3d::serve
