#include "serve/job_queue.hpp"

#include <algorithm>
#include <chrono>

namespace m3d::serve {

std::uint64_t JobQueue::submit(const JobSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto job = std::make_shared<Job>();
  job->id = nextId_++;
  job->spec = spec;
  job->state = JobState::kQueued;
  job->baseKey = spec.baseKey();
  job->submitSeq = nextSeq_++;
  jobs_[job->id] = job;
  ++stats_.submitted;
  if (closed_) {
    // Late submit against a draining server: reject by instant cancel so
    // the client still gets a terminal state to wait on.
    job->state = JobState::kCancelled;
    job->error = "server is shutting down";
    ++stats_.cancelled;
  } else {
    pending_.push_back(job);
    ++stats_.queued;
  }
  cv_.notify_all();
  return job->id;
}

std::size_t JobQueue::pickLocked() const {
  std::size_t best = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Job& j = *pending_[i];
    const auto it = batches_.find(j.baseKey);
    if (it != batches_.end() && it->second.runningMembers > 0) continue;
    if (best == static_cast<std::size_t>(-1)) {
      best = i;
      continue;
    }
    const Job& b = *pending_[best];
    if (j.spec.priority > b.spec.priority ||
        (j.spec.priority == b.spec.priority && j.submitSeq < b.submitSeq)) {
      best = i;
    }
  }
  return best;
}

std::shared_ptr<Job> JobQueue::dequeue() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const std::size_t i = pickLocked();
    if (i != static_cast<std::size_t>(-1)) {
      std::shared_ptr<Job> job = pending_[i];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      --stats_.queued;
      ++stats_.running;
      job->state = JobState::kRunning;
      Batch& batch = batches_[job->baseKey];
      batch.runningMembers = 1;
      job->coalesced = batch.warm;
      if (job->coalesced) ++stats_.coalesced;
      // Only ECO jobs consume the seed: a repeat flow job re-derives its
      // routes from its own (warm) cache prefix.
      job->ecoSeedPath = job->spec.kind == JobKind::kEco ? batch.ecoSeedPath : "";
      cv_.notify_all();
      return job;
    }
    if (closed_) return nullptr;
    cv_.wait(lock);
  }
}

void JobQueue::complete(std::uint64_t jobId, bool ok, const JobResult& result,
                        const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end() || it->second->state != JobState::kRunning) return;
  Job& job = *it->second;
  --stats_.running;
  Batch& batch = batches_[job.baseKey];
  batch.runningMembers = 0;
  if (ok) {
    job.state = JobState::kDone;
    job.result = result;
    ++stats_.done;
    batch.warm = true;
    // The ECO seed must come from a base *flow* job so every sibling ECO
    // sees the same route input regardless of completion order.
    if (job.spec.kind == JobKind::kFlow && batch.ecoSeedPath.empty() &&
        !result.finalCheckpoint.empty()) {
      batch.ecoSeedPath = result.finalCheckpoint;
    }
  } else {
    job.state = JobState::kFailed;
    job.error = error;
    ++stats_.failed;
  }
  cv_.notify_all();
}

bool JobQueue::cancel(std::uint64_t jobId) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end() || it->second->state != JobState::kQueued) return false;
  it->second->state = JobState::kCancelled;
  const auto pos = std::find(pending_.begin(), pending_.end(), it->second);
  if (pos != pending_.end()) {
    pending_.erase(pos);
    --stats_.queued;
  }
  ++stats_.cancelled;
  cv_.notify_all();
  return true;
}

std::shared_ptr<const Job> JobQueue::find(std::uint64_t jobId) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(jobId);
  return it == jobs_.end() ? nullptr : it->second;
}

std::shared_ptr<const Job> JobQueue::waitJob(std::uint64_t jobId, int timeoutMs) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end()) return nullptr;
  const std::shared_ptr<Job> job = it->second;
  const auto terminal = [&] { return jobStateTerminal(job->state); };
  if (timeoutMs > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(timeoutMs), terminal);
  } else {
    cv_.wait(lock, terminal);
  }
  return job;
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  for (const auto& job : pending_) {
    job->state = JobState::kCancelled;
    job->error = "server shut down before the job ran";
    ++stats_.cancelled;
    --stats_.queued;
  }
  pending_.clear();
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

QueueStats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace m3d::serve
