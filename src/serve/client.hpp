#pragma once

/// \file client.hpp
/// Synchronous client of the m3d_serve protocol: one Unix-domain-socket
/// connection, one request/response pair per call. Backs the m3d_client
/// CLI and the serve test suite. Every method is blocking and returns
/// false with \p err filled on transport or protocol ("ok": false) errors.

#include <cstdint>
#include <string>

#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace m3d::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect(const std::string& socketPath, std::string* err);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request line and parses the one response line. On an
  /// "ok": false response the error string is copied into \p err and
  /// false is returned, but \p resp still holds the parsed document.
  bool request(const std::string& line, obs::JsonValue* resp, std::string* err);

  // Convenience verbs.
  bool ping(std::string* err);
  bool submit(const JobSpec& spec, std::uint64_t* jobId, std::string* err);
  /// Waits until the job is terminal (timeoutMs <= 0 = forever); fills the
  /// final state. Returns false on transport errors or unknown job; a
  /// non-terminal state after a timeout is a *true* return -- inspect
  /// \p state.
  bool waitJob(std::uint64_t jobId, int timeoutMs, JobState* state, std::string* err);
  bool result(std::uint64_t jobId, JobResult* out, std::string* err);
  bool cancel(std::uint64_t jobId, std::string* err);
  bool shutdownServer(std::string* err);

  /// Submit + wait + fetch result in one call (the common CLI path).
  bool runJob(const JobSpec& spec, JobResult* out, std::string* err);

 private:
  int fd_ = -1;
  std::string rxBuf_;
};

/// Parses "state" out of a status/wait response ("" on absence).
bool parseJobState(const obs::JsonValue& resp, JobState* state);

}  // namespace m3d::serve
