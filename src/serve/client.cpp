#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace m3d::serve {

Client::~Client() { close(); }

void Client::close() {
#ifdef __unix__
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
  rxBuf_.clear();
}

bool Client::connect(const std::string& socketPath, std::string* err) {
#ifndef __unix__
  (void)socketPath;
  if (err != nullptr) *err = "m3d_client requires Unix-domain sockets";
  return false;
#else
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.empty() || socketPath.size() >= sizeof addr.sun_path) {
    if (err != nullptr) *err = "bad socket path";
    return false;
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (err != nullptr) {
      *err = "connect " + socketPath + ": " + std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
#endif
}

bool Client::request(const std::string& line, obs::JsonValue* resp, std::string* err) {
#ifndef __unix__
  (void)line;
  (void)resp;
  if (err != nullptr) *err = "m3d_client requires Unix-domain sockets";
  return false;
#else
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  const std::string payload = line + "\n";
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::send(fd_, payload.data() + off, payload.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err != nullptr) *err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string respLine;
  for (;;) {
    const std::size_t nl = rxBuf_.find('\n');
    if (nl != std::string::npos) {
      respLine = rxBuf_.substr(0, nl);
      rxBuf_.erase(0, nl + 1);
      break;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err != nullptr) *err = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      if (err != nullptr) *err = "server closed the connection";
      return false;
    }
    rxBuf_.append(chunk, static_cast<std::size_t>(n));
  }

  std::string parseErr;
  auto doc = obs::parseJson(respLine, &parseErr);
  if (!doc.has_value()) {
    if (err != nullptr) *err = "bad response: " + parseErr;
    return false;
  }
  const obs::JsonValue* ok = doc->find("ok");
  const bool accepted = ok != nullptr && ok->type == obs::JsonValue::Type::kBool &&
                        ok->boolean;
  if (resp != nullptr) *resp = std::move(*doc);
  if (!accepted) {
    if (err != nullptr) {
      const obs::JsonValue* msg =
          resp != nullptr ? resp->find("error") : doc->find("error");
      *err = msg != nullptr && msg->isString() ? msg->str : "server rejected the request";
    }
    return false;
  }
  return true;
#endif
}

bool Client::ping(std::string* err) { return request(encodePing(), nullptr, err); }

bool Client::submit(const JobSpec& spec, std::uint64_t* jobId, std::string* err) {
  obs::JsonValue resp;
  if (!request(encodeSubmit(spec), &resp, err)) return false;
  const obs::JsonValue* id = resp.find("job_id");
  if (id == nullptr || !id->isNumber()) {
    if (err != nullptr) *err = "submit response has no job_id";
    return false;
  }
  if (jobId != nullptr) *jobId = static_cast<std::uint64_t>(id->number);
  return true;
}

bool parseJobState(const obs::JsonValue& resp, JobState* state) {
  const obs::JsonValue* s = resp.find("state");
  if (s == nullptr || !s->isString()) return false;
  for (JobState cand : {JobState::kQueued, JobState::kRunning, JobState::kDone,
                        JobState::kFailed, JobState::kCancelled}) {
    if (s->str == jobStateName(cand)) {
      *state = cand;
      return true;
    }
  }
  return false;
}

bool Client::waitJob(std::uint64_t jobId, int timeoutMs, JobState* state,
                     std::string* err) {
  obs::JsonValue resp;
  if (!request(encodeWait(jobId, timeoutMs), &resp, err)) return false;
  JobState s = JobState::kQueued;
  if (!parseJobState(resp, &s)) {
    if (err != nullptr) *err = "wait response has no state";
    return false;
  }
  if (state != nullptr) *state = s;
  return true;
}

bool Client::result(std::uint64_t jobId, JobResult* out, std::string* err) {
  obs::JsonValue resp;
  if (!request(encodeJobOp("result", jobId), &resp, err)) return false;
  const obs::JsonValue* r = resp.find("result");
  if (r == nullptr) {
    if (err != nullptr) *err = "result response has no result object";
    return false;
  }
  return JobResult::fromJson(*r, out, err);
}

bool Client::cancel(std::uint64_t jobId, std::string* err) {
  return request(encodeJobOp("cancel", jobId), nullptr, err);
}

bool Client::shutdownServer(std::string* err) {
  return request(encodeShutdown(), nullptr, err);
}

bool Client::runJob(const JobSpec& spec, JobResult* out, std::string* err) {
  std::uint64_t id = 0;
  if (!submit(spec, &id, err)) return false;
  JobState state = JobState::kQueued;
  if (!waitJob(id, /*timeoutMs=*/0, &state, err)) return false;
  if (state != JobState::kDone) {
    if (err != nullptr) {
      *err = "job " + std::to_string(id) + " ended " + jobStateName(state);
    }
    return false;
  }
  return result(id, out, err);
}

}  // namespace m3d::serve
