/// \file m3d_serve_main.cpp
/// The m3d_serve daemon binary: parses flags, installs SIGINT/SIGTERM
/// handlers (self-pipe, so the handlers stay async-signal-safe), starts the
/// server, and blocks until a signal or a client "shutdown" op drains it.

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>

#include "io/fsutil.hpp"
#include "serve/server.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

namespace {

#ifdef __unix__
int gSignalPipe[2] = {-1, -1};

extern "C" void onSignal(int) {
  // Async-signal-safe: one write, errors ignored (a full pipe still wakes
  // the watcher, and a second signal needs no second byte).
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(gSignalPipe[1], &b, 1);
}
#endif

int usage() {
  std::cerr
      << "usage: m3d_serve --socket PATH [options]\n"
         "  --socket PATH          Unix-domain socket to listen on (required)\n"
         "  --cache DIR            shared stage-cache directory (default: off)\n"
         "  --cache-max-bytes N    LRU byte budget of the cache (default: unbounded)\n"
         "  --executors N          concurrent job executor threads (default: 2)\n"
         "  --job-threads N        default threads per job (default: 1)\n"
         "  --report PATH          aggregate run-report JSON at shutdown\n"
         "  --trace PATH           Chrome trace JSON at shutdown (one track per job)\n"
         "Shut down with SIGINT/SIGTERM or a client 'shutdown' op; either way\n"
         "running jobs drain and the report/trace are flushed.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  m3d::serve::ServerOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto strArg = [&](std::string& dst) {
      if (i + 1 >= argc) return false;
      dst = argv[++i];
      return true;
    };
    const auto intArg = [&](auto& dst) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      const long long v = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') return false;
      dst = static_cast<std::decay_t<decltype(dst)>>(v);
      return true;
    };
    if (arg == "--socket") {
      if (!strArg(opt.socketPath)) return usage();
    } else if (arg == "--cache") {
      if (!strArg(opt.cacheDir)) return usage();
    } else if (arg == "--cache-max-bytes") {
      if (!intArg(opt.cacheMaxBytes)) return usage();
    } else if (arg == "--executors") {
      if (!intArg(opt.executors)) return usage();
    } else if (arg == "--job-threads") {
      if (!intArg(opt.jobThreads)) return usage();
    } else if (arg == "--report") {
      if (!strArg(opt.reportPath)) return usage();
    } else if (arg == "--trace") {
      if (!strArg(opt.tracePath)) return usage();
    } else {
      std::cerr << "m3d_serve: unknown option '" << arg << "'\n";
      return usage();
    }
  }
  if (opt.socketPath.empty()) return usage();
  if (!opt.cacheDir.empty() && !m3d::io::ensureDirectories(opt.cacheDir)) {
    std::cerr << "m3d_serve: cannot create cache directory " << opt.cacheDir << "\n";
    return 2;
  }

#ifndef __unix__
  std::cerr << "m3d_serve: this platform has no Unix-domain sockets\n";
  return 2;
#else
  m3d::serve::Server server(opt);
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "m3d_serve: " << err << "\n";
    return 2;
  }

  if (::pipe(gSignalPipe) != 0) {
    std::cerr << "m3d_serve: pipe: " << std::strerror(errno) << "\n";
    server.requestShutdown();
    server.wait();
    return 2;
  }
  struct sigaction sa {};
  sa.sa_handler = onSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  // A client vanishing mid-response must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  std::thread watcher([&server] {
    char b = 0;
    // Blocks until a signal writes a byte, or main closes the write end
    // after a client-requested shutdown (read returns 0 then).
    while (::read(gSignalPipe[0], &b, 1) < 0 && errno == EINTR) {
    }
    server.requestShutdown();
  });

  const int failed = server.wait();
  ::close(gSignalPipe[1]);  // unblocks the watcher on clean shutdown
  watcher.join();
  ::close(gSignalPipe[0]);
  return failed > 0 ? 1 : 0;
#endif
}
