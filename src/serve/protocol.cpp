#include "serve/protocol.hpp"

#include <functional>
#include <sstream>

#include "db/hash.hpp"

namespace m3d::serve {

namespace {

/// Lenient typed field readers: absent keys keep the caller's default,
/// wrong-typed keys fail with a diagnostic naming the key. Unknown keys are
/// ignored so older clients can talk to newer daemons.
bool readInt(const obs::JsonValue& v, const char* key, int* dst, std::string* err) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->isNumber()) {
    if (err != nullptr) *err = std::string(key) + " must be a number";
    return false;
  }
  *dst = static_cast<int>(f->number);
  return true;
}

bool readDouble(const obs::JsonValue& v, const char* key, double* dst, std::string* err) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->isNumber()) {
    if (err != nullptr) *err = std::string(key) + " must be a number";
    return false;
  }
  *dst = f->number;
  return true;
}

bool readI64(const obs::JsonValue& v, const char* key, std::int64_t* dst, std::string* err) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->isNumber()) {
    if (err != nullptr) *err = std::string(key) + " must be a number";
    return false;
  }
  *dst = static_cast<std::int64_t>(f->number);
  return true;
}

bool readBool(const obs::JsonValue& v, const char* key, bool* dst, std::string* err) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr) return true;
  if (f->type != obs::JsonValue::Type::kBool) {
    if (err != nullptr) *err = std::string(key) + " must be a boolean";
    return false;
  }
  *dst = f->boolean;
  return true;
}

bool readString(const obs::JsonValue& v, const char* key, std::string* dst, std::string* err) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr) return true;
  if (!f->isString()) {
    if (err != nullptr) *err = std::string(key) + " must be a string";
    return false;
  }
  *dst = f->str;
  return true;
}

bool validFlowName(const std::string& f) {
  return f == "macro3d" || f == "2d" || f == "s2d" || f == "bf_s2d" || f == "c2d";
}

bool validTileName(const std::string& t) {
  return t == "small" || t == "large" || t == "tiny";
}

}  // namespace

const char* jobKindName(JobKind k) {
  switch (k) {
    case JobKind::kFlow: return "flow";
    case JobKind::kEco: return "eco";
  }
  return "?";
}

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool jobStateTerminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed || s == JobState::kCancelled;
}

std::uint64_t JobSpec::baseKey() const {
  // Everything that shapes the place/pre_route_opt/cts prefix, and nothing
  // else: kind, ECO knobs, thread counts, priority, resume and the label
  // stay out so a flow job and the pitch-ECO jobs derived from it coalesce.
  db::HashStream hs;
  hs.str("m3d.serve.base/1");
  hs.str(flow);
  hs.str(tile);
  hs.i32(shrink);
  hs.i32(maxFreqRounds);
  hs.i32(optMaxPasses);
  hs.b(signoff);
  hs.i32(macroDieMetals);
  hs.str(placeEngine);
  return hs.digest();
}

std::string JobSpec::validate() const {
  if (!validFlowName(flow)) return "unknown flow '" + flow + "'";
  if (!validTileName(tile)) return "unknown tile '" + tile + "'";
  if (shrink < 1) return "shrink must be >= 1";
  if (threads < 0) return "threads must be >= 0";
  if (maxFreqRounds < 1) return "max_freq_rounds must be >= 1";
  if (optMaxPasses < 0) return "opt_max_passes must be >= 0";
  if (macroDieMetals != 4 && macroDieMetals != 6) return "macro_die_metals must be 4 or 6";
  if (!(f2fPitchScale > 0.0) || f2fPitchScale > 100.0) {
    return "f2f_pitch_scale must be in (0, 100]";
  }
  if (placeEngine != "b2b" && placeEngine != "analytic") {
    return "unknown place_engine '" + placeEngine + "' (expected 'b2b' or 'analytic')";
  }
  if (kind == JobKind::kEco && flow == "2d") {
    return "eco jobs need an F2F interface; flow '2d' has none";
  }
  return "";
}

void JobSpec::writeJson(obs::JsonWriter& w) const {
  w.beginObject();
  w.kv("kind", jobKindName(kind));
  w.kv("flow", std::string_view(flow));
  w.kv("tile", std::string_view(tile));
  w.kv("shrink", shrink);
  w.kv("threads", threads);
  w.kv("priority", priority);
  w.kv("max_freq_rounds", maxFreqRounds);
  w.kv("opt_max_passes", optMaxPasses);
  w.kv("signoff", signoff);
  w.kv("resume", resume);
  w.kv("macro_die_metals", macroDieMetals);
  w.kv("f2f_pitch_scale", f2fPitchScale);
  w.kv("place_engine", std::string_view(placeEngine));
  w.kv("label", std::string_view(label));
  w.endObject();
}

bool JobSpec::fromJson(const obs::JsonValue& v, JobSpec* out, std::string* err) {
  if (!v.isObject()) {
    if (err != nullptr) *err = "job spec must be an object";
    return false;
  }
  JobSpec spec;
  std::string kind = "flow";
  if (!readString(v, "kind", &kind, err)) return false;
  if (kind == "flow") {
    spec.kind = JobKind::kFlow;
  } else if (kind == "eco") {
    spec.kind = JobKind::kEco;
  } else {
    if (err != nullptr) *err = "unknown job kind '" + kind + "'";
    return false;
  }
  if (!readString(v, "flow", &spec.flow, err)) return false;
  if (!readString(v, "tile", &spec.tile, err)) return false;
  if (!readInt(v, "shrink", &spec.shrink, err)) return false;
  if (!readInt(v, "threads", &spec.threads, err)) return false;
  if (!readInt(v, "priority", &spec.priority, err)) return false;
  if (!readInt(v, "max_freq_rounds", &spec.maxFreqRounds, err)) return false;
  if (!readInt(v, "opt_max_passes", &spec.optMaxPasses, err)) return false;
  if (!readBool(v, "signoff", &spec.signoff, err)) return false;
  if (!readBool(v, "resume", &spec.resume, err)) return false;
  if (!readInt(v, "macro_die_metals", &spec.macroDieMetals, err)) return false;
  if (!readDouble(v, "f2f_pitch_scale", &spec.f2fPitchScale, err)) return false;
  if (!readString(v, "place_engine", &spec.placeEngine, err)) return false;
  if (!readString(v, "label", &spec.label, err)) return false;
  const std::string invalid = spec.validate();
  if (!invalid.empty()) {
    if (err != nullptr) *err = invalid;
    return false;
  }
  *out = spec;
  return true;
}

void JobResult::writeJson(obs::JsonWriter& w) const {
  w.beginObject();
  w.key("metrics");
  writeDesignMetricsJson(w, metrics);
  w.kv("cache_prefix_stages", cachePrefixStages);
  w.kv("eco_ripped", ecoRipped);
  w.kv("eco_reused", ecoReused);
  w.kv("coalesced", coalesced);
  w.kv("artifact_hash", std::string_view(hashToHex(artifactHash)));
  w.kv("artifact_source", std::string_view(artifactSource));
  w.kv("wall_ms", wallMs);
  w.kv("final_checkpoint", std::string_view(finalCheckpoint));
  w.endObject();
}

bool JobResult::fromJson(const obs::JsonValue& v, JobResult* out, std::string* err) {
  if (!v.isObject()) {
    if (err != nullptr) *err = "result must be an object";
    return false;
  }
  JobResult r;
  if (const obs::JsonValue* m = v.find("metrics"); m != nullptr && m->isObject()) {
    DesignMetrics& d = r.metrics;
    if (!readString(*m, "flow", &d.flow, err)) return false;
    if (!readString(*m, "tile", &d.tileName, err)) return false;
    if (!readDouble(*m, "fclk_mhz", &d.fclkMhz, err)) return false;
    if (!readDouble(*m, "min_period_ns", &d.minPeriodNs, err)) return false;
    if (!readDouble(*m, "emean_fj", &d.emeanFj, err)) return false;
    if (!readDouble(*m, "power_mw", &d.powerMw, err)) return false;
    if (!readDouble(*m, "footprint_mm2", &d.footprintMm2, err)) return false;
    if (!readDouble(*m, "logic_cell_area_mm2", &d.logicCellAreaMm2, err)) return false;
    if (!readDouble(*m, "total_wirelength_m", &d.totalWirelengthM, err)) return false;
    if (!readDouble(*m, "wirelength_logic_die_m", &d.wirelengthLogicDieM, err)) return false;
    if (!readDouble(*m, "wirelength_macro_die_m", &d.wirelengthMacroDieM, err)) return false;
    if (!readI64(*m, "f2f_bumps", &d.f2fBumps, err)) return false;
    if (!readDouble(*m, "cpin_nf", &d.cpinNf, err)) return false;
    if (!readDouble(*m, "cwire_nf", &d.cwireNf, err)) return false;
    if (!readInt(*m, "clock_tree_depth", &d.clockTreeDepth, err)) return false;
    if (!readDouble(*m, "clock_skew_ps", &d.clockSkewPs, err)) return false;
    if (!readDouble(*m, "crit_path_wl_mm", &d.critPathWirelengthMm, err)) return false;
    if (!readDouble(*m, "metal_area_mm2", &d.metalAreaMm2, err)) return false;
    if (!readInt(*m, "overflowed_edges", &d.overflowedEdges, err)) return false;
    if (!readInt(*m, "unrouted_nets", &d.unroutedNets, err)) return false;
    if (!readInt(*m, "verify_violations", &d.verifyViolations, err)) return false;
    if (!readInt(*m, "verify_warnings", &d.verifyWarnings, err)) return false;
    if (!readI64(*m, "verify_f2f_bumps", &d.f2fBumpCount, err)) return false;
    if (!readDouble(*m, "legalize_avg_disp_um", &d.legalizeAvgDispUm, err)) return false;
    if (!readDouble(*m, "place_hpwl_mm", &d.placeHpwlMm, err)) return false;
    if (!readString(*m, "place_engine", &d.placeEngine, err)) return false;
    if (!readDouble(*m, "place_overflow", &d.placeOverflow, err)) return false;
    if (!readInt(*m, "place_iterations", &d.placeIterations, err)) return false;
    if (!readInt(*m, "cells_resized", &d.cellsResized, err)) return false;
    if (!readInt(*m, "buffers_inserted", &d.buffersInserted, err)) return false;
  }
  if (!readInt(v, "cache_prefix_stages", &r.cachePrefixStages, err)) return false;
  if (!readI64(v, "eco_ripped", &r.ecoRipped, err)) return false;
  if (!readI64(v, "eco_reused", &r.ecoReused, err)) return false;
  if (!readBool(v, "coalesced", &r.coalesced, err)) return false;
  std::string hex;
  if (!readString(v, "artifact_hash", &hex, err)) return false;
  if (!hex.empty() && !hexToHash(hex, &r.artifactHash)) {
    if (err != nullptr) *err = "artifact_hash is not a 64-bit hex string";
    return false;
  }
  if (!readString(v, "artifact_source", &r.artifactSource, err)) return false;
  if (!readDouble(v, "wall_ms", &r.wallMs, err)) return false;
  if (!readString(v, "final_checkpoint", &r.finalCheckpoint, err)) return false;
  *out = r;
  return true;
}

std::string hashToHex(std::uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[h & 0xF];
    h >>= 4;
  }
  return s;
}

bool hexToHash(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t h = 0;
  for (char c : s) {
    int d = -1;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    h = (h << 4) | static_cast<std::uint64_t>(d);
  }
  *out = h;
  return true;
}

namespace {

std::string oneLine(const std::function<void(obs::JsonWriter&)>& body) {
  std::ostringstream os;
  obs::JsonWriter w(os, /*pretty=*/false);
  body(w);
  return os.str();
}

}  // namespace

std::string encodePing() {
  return oneLine([](obs::JsonWriter& w) {
    w.beginObject();
    w.kv("op", "ping");
    w.endObject();
  });
}

std::string encodeSubmit(const JobSpec& spec) {
  return oneLine([&](obs::JsonWriter& w) {
    w.beginObject();
    w.kv("op", "submit");
    w.key("job");
    spec.writeJson(w);
    w.endObject();
  });
}

std::string encodeJobOp(const char* op, std::uint64_t jobId) {
  return oneLine([&](obs::JsonWriter& w) {
    w.beginObject();
    w.kv("op", op);
    w.kv("job_id", static_cast<std::int64_t>(jobId));
    w.endObject();
  });
}

std::string encodeWait(std::uint64_t jobId, int timeoutMs) {
  return oneLine([&](obs::JsonWriter& w) {
    w.beginObject();
    w.kv("op", "wait");
    w.kv("job_id", static_cast<std::int64_t>(jobId));
    w.kv("timeout_ms", timeoutMs);
    w.endObject();
  });
}

std::string encodeStats() {
  return oneLine([](obs::JsonWriter& w) {
    w.beginObject();
    w.kv("op", "stats");
    w.endObject();
  });
}

std::string encodeShutdown() {
  return oneLine([](obs::JsonWriter& w) {
    w.beginObject();
    w.kv("op", "shutdown");
    w.endObject();
  });
}

std::string encodeError(const std::string& message) {
  return oneLine([&](obs::JsonWriter& w) {
    w.beginObject();
    w.kv("ok", false);
    w.kv("error", std::string_view(message));
    w.endObject();
  });
}

}  // namespace m3d::serve
