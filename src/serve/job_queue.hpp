#pragma once

/// \file job_queue.hpp
/// Priority job queue with ECO coalescing for m3d_serve.
///
/// Jobs are dispatched highest priority first, FIFO within a priority --
/// with one scheduling twist, *coalescing*: jobs sharing a JobSpec::baseKey()
/// (same design, differing only in ECO knobs / thread counts) form a batch.
/// At most one member of a batch runs at a time, and once any member has
/// completed, the others inherit two accelerators when dispatched:
///   - the shared stage-cache place/pre_route_opt/cts prefix is warm (the
///     flow replays it from disk instead of recomputing), and
///   - ECO members receive the *base flow job's* route-stage checkpoint as
///     their routeDesignEco seed, so only pitch-dirtied nets reroute.
/// Serializing a batch trades a little parallelism for those hits: N pitch
/// ECOs against one base design cost one cold prefix + N cheap replays
/// instead of N cold prefixes racing to publish the same checkpoints.
/// Distinct batches still run concurrently across executor threads.
///
/// The seed is taken only from completed kFlow members (never from another
/// ECO), so every ECO's route input is independent of the order in which
/// its sibling ECOs finish -- determinism of results over scheduling.
///
/// Thread-safety: every method locks the queue's one mutex; waitJob blocks
/// on a condition variable. The queue never runs jobs itself -- executor
/// threads call dequeue()/complete() and do the work between.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <condition_variable>

#include "serve/protocol.hpp"

namespace m3d::serve {

/// One submitted job and everything the server knows about it.
struct Job {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::uint64_t baseKey = 0;
  std::uint64_t submitSeq = 0;   ///< FIFO tiebreak within a priority.

  // Filled at dispatch time by the queue (coalescing decisions).
  std::string ecoSeedPath;       ///< routeDesignEco seed ("" = none).
  bool coalesced = false;        ///< a batch sibling completed before us.

  // Filled by the executor at completion.
  JobResult result;
  std::string error;             ///< kFailed diagnostic.
};

/// Aggregate queue statistics (for the stats op and the run report).
struct QueueStats {
  std::int64_t submitted = 0;
  std::int64_t done = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t coalesced = 0;    ///< jobs dispatched with a warm batch.
  std::int64_t queued = 0;       ///< current depth (not yet dispatched).
  std::int64_t running = 0;
};

class JobQueue {
 public:
  /// Submits a job; returns its id (ids start at 1). The spec must already
  /// have passed JobSpec::validate().
  std::uint64_t submit(const JobSpec& spec);

  /// Blocks until a job is dispatchable or close() is called; returns
  /// nullptr only after close() with the queue drained of dispatchable
  /// work. The returned job is a snapshot (state kRunning, coalescing
  /// fields filled); the queue retains the canonical record.
  std::shared_ptr<Job> dequeue();

  /// Reports a dequeued job's outcome. \p result is consulted (and the
  /// job's batch marked warm, its route checkpoint recorded as the ECO
  /// seed) only when \p ok; otherwise \p error is stored and the job is
  /// kFailed. Wakes waitJob waiters.
  void complete(std::uint64_t jobId, bool ok, const JobResult& result,
                const std::string& error);

  /// Cancels a queued job (running jobs are not interrupted: flows have no
  /// safe preemption point). Returns true when the job went kQueued ->
  /// kCancelled; false when unknown, already running or terminal.
  bool cancel(std::uint64_t jobId);

  /// Snapshot of a job by id (nullptr when unknown).
  std::shared_ptr<const Job> find(std::uint64_t jobId) const;

  /// Blocks until the job is terminal or \p timeoutMs elapses (<= 0 waits
  /// forever). Returns the snapshot, nullptr when the id is unknown.
  std::shared_ptr<const Job> waitJob(std::uint64_t jobId, int timeoutMs) const;

  /// Stops dispatching: dequeue() returns nullptr once no dispatchable job
  /// remains, and every still-queued job is cancelled immediately.
  void close();
  bool closed() const;

  QueueStats stats() const;

 private:
  /// Per-baseKey batch bookkeeping.
  struct Batch {
    int runningMembers = 0;       ///< 0 or 1 (batches are serialized).
    bool warm = false;            ///< some member completed successfully.
    std::string ecoSeedPath;      ///< base kFlow job's route checkpoint.
  };

  /// Picks the best dispatchable queued job under mu_ (highest priority,
  /// then submit order, skipping jobs whose batch is busy); npos when none.
  std::size_t pickLocked() const;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::uint64_t nextId_ = 1;
  std::uint64_t nextSeq_ = 1;
  bool closed_ = false;
  std::vector<std::shared_ptr<Job>> pending_;  ///< queued jobs, submit order.
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;  ///< all jobs by id.
  std::map<std::uint64_t, Batch> batches_;     ///< by baseKey.
  QueueStats stats_;
};

}  // namespace m3d::serve
