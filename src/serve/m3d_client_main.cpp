/// \file m3d_client_main.cpp
/// Thin CLI over serve/client.hpp. Every command prints the server's JSON
/// response line to stdout (scripts parse it; quickcheck greps it) and
/// exits 0 on success, 1 on a rejected/failed request, 2 on usage errors.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "serve/client.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: m3d_client --socket PATH COMMAND [args]\n"
         "commands:\n"
         "  ping\n"
         "  submit [job flags]     submit a job, print {\"job_id\":N}\n"
         "  run    [job flags]     submit + wait + print the result\n"
         "  status JOB_ID\n"
         "  wait   JOB_ID [--timeout MS]\n"
         "  result JOB_ID\n"
         "  cancel JOB_ID\n"
         "  stats\n"
         "  shutdown\n"
         "job flags (submit/run):\n"
         "  --kind flow|eco        (default flow)\n"
         "  --flow macro3d|2d|s2d|bf_s2d|c2d\n"
         "  --tile small|large|tiny\n"
         "  --shrink N   --threads N   --priority N\n"
         "  --rounds N (max freq rounds)   --passes N (opt passes)\n"
         "  --pitch-scale X (ECO bump-pitch scale)\n"
         "  --place-engine E (b2b | analytic)\n"
         "  --no-signoff   --cold (ignore the warm cache)   --label S\n";
  return 2;
}

bool parseJobFlags(int argc, char** argv, int* i, m3d::serve::JobSpec* spec) {
  using m3d::serve::JobKind;
  for (; *i < argc; ++*i) {
    const std::string arg = argv[*i];
    const auto strArg = [&](std::string& dst) {
      if (*i + 1 >= argc) return false;
      dst = argv[++*i];
      return true;
    };
    const auto intArg = [&](int& dst) {
      std::string s;
      if (!strArg(s)) return false;
      char* end = nullptr;
      dst = static_cast<int>(std::strtol(s.c_str(), &end, 10));
      return end != s.c_str() && *end == '\0';
    };
    if (arg == "--kind") {
      std::string k;
      if (!strArg(k)) return false;
      if (k == "flow") {
        spec->kind = JobKind::kFlow;
      } else if (k == "eco") {
        spec->kind = JobKind::kEco;
      } else {
        return false;
      }
    } else if (arg == "--flow") {
      if (!strArg(spec->flow)) return false;
    } else if (arg == "--tile") {
      if (!strArg(spec->tile)) return false;
    } else if (arg == "--shrink") {
      if (!intArg(spec->shrink)) return false;
    } else if (arg == "--threads") {
      if (!intArg(spec->threads)) return false;
    } else if (arg == "--priority") {
      if (!intArg(spec->priority)) return false;
    } else if (arg == "--rounds") {
      if (!intArg(spec->maxFreqRounds)) return false;
    } else if (arg == "--passes") {
      if (!intArg(spec->optMaxPasses)) return false;
    } else if (arg == "--pitch-scale") {
      std::string s;
      if (!strArg(s)) return false;
      char* end = nullptr;
      spec->f2fPitchScale = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || *end != '\0') return false;
    } else if (arg == "--place-engine") {
      if (!strArg(spec->placeEngine)) return false;
    } else if (arg == "--no-signoff") {
      spec->signoff = false;
    } else if (arg == "--cold") {
      spec->resume = false;
    } else if (arg == "--label") {
      if (!strArg(spec->label)) return false;
    } else {
      std::cerr << "m3d_client: unknown job flag '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

/// One request whose raw response line should reach stdout.
int rawCommand(m3d::serve::Client& client, const std::string& line) {
  m3d::obs::JsonValue resp;
  std::string err;
  const bool ok = client.request(line, &resp, &err);
  // Re-serialize the parsed document? No -- the response is already one
  // JSON line; but request() consumed it. Print a faithful re-encoding.
  std::ostringstream os;
  m3d::obs::JsonWriter w(os, /*pretty=*/false);
  const std::function<void(const m3d::obs::JsonValue&)> emit =
      [&](const m3d::obs::JsonValue& v) {
        using T = m3d::obs::JsonValue::Type;
        switch (v.type) {
          case T::kNull: w.valueNull(); break;
          case T::kBool: w.value(v.boolean); break;
          case T::kNumber: w.value(v.number); break;
          case T::kString: w.value(std::string_view(v.str)); break;
          case T::kArray:
            w.beginArray();
            for (const auto& e : v.arr) emit(e);
            w.endArray();
            break;
          case T::kObject:
            w.beginObject();
            for (const auto& [k, e] : v.obj) {
              w.key(k);
              emit(e);
            }
            w.endObject();
            break;
        }
      };
  emit(resp);
  std::cout << os.str() << "\n";
  if (!ok && resp.find("ok") == nullptr) std::cerr << "m3d_client: " << err << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  int i = 1;
  if (i + 1 < argc && std::string(argv[i]) == "--socket") {
    socketPath = argv[i + 1];
    i += 2;
  }
  if (socketPath.empty() || i >= argc) return usage();
  const std::string cmd = argv[i++];

  m3d::serve::Client client;
  std::string err;
  if (!client.connect(socketPath, &err)) {
    std::cerr << "m3d_client: " << err << "\n";
    return 1;
  }

  using m3d::serve::encodeJobOp;
  if (cmd == "ping") return rawCommand(client, m3d::serve::encodePing());
  if (cmd == "stats") return rawCommand(client, m3d::serve::encodeStats());
  if (cmd == "shutdown") return rawCommand(client, m3d::serve::encodeShutdown());

  if (cmd == "submit" || cmd == "run") {
    m3d::serve::JobSpec spec;
    if (!parseJobFlags(argc, argv, &i, &spec)) return usage();
    const std::string invalid = spec.validate();
    if (!invalid.empty()) {
      std::cerr << "m3d_client: bad job spec: " << invalid << "\n";
      return 2;
    }
    if (cmd == "submit") return rawCommand(client, m3d::serve::encodeSubmit(spec));
    m3d::serve::JobResult result;
    if (!client.runJob(spec, &result, &err)) {
      std::cerr << "m3d_client: " << err << "\n";
      return 1;
    }
    std::ostringstream os;
    m3d::obs::JsonWriter w(os, /*pretty=*/false);
    result.writeJson(w);
    std::cout << os.str() << "\n";
    return 0;
  }

  if (cmd == "status" || cmd == "wait" || cmd == "result" || cmd == "cancel") {
    if (i >= argc) return usage();
    char* end = nullptr;
    const auto jobId = static_cast<std::uint64_t>(std::strtoull(argv[i], &end, 10));
    if (end == argv[i] || *end != '\0') return usage();
    ++i;
    if (cmd == "wait") {
      int timeoutMs = 0;
      if (i + 1 < argc && std::string(argv[i]) == "--timeout") {
        timeoutMs = static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
        i += 2;
      }
      return rawCommand(client, m3d::serve::encodeWait(jobId, timeoutMs));
    }
    return rawCommand(client, encodeJobOp(cmd.c_str(), jobId));
  }

  std::cerr << "m3d_client: unknown command '" << cmd << "'\n";
  return usage();
}
