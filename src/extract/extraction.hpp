#pragma once

/// \file extraction.hpp
/// Parasitic extraction: RC trees from routed geometry (Elmore delays), or
/// HPWL-based estimation for pre-route / pseudo-design stages.
///
/// The estimation path carries a parasitic scale knob: Compact-2D scales
/// per-unit-length parasitics by 1/sqrt(2) in its inflated pseudo-2D design
/// (paper Sec. III), and Shrunk-2D halves geometric lengths — both are
/// expressed through EstimationOptions.

#include <vector>

#include "netlist/netlist.hpp"
#include "route/router.hpp"

namespace m3d {

/// Per-net parasitics and Elmore wire delays.
struct NetParasitics {
  double wireCap = 0.0;  ///< total routed/estimated wire capacitance [F].
  double pinCap = 0.0;   ///< sum of sink pin capacitances [F].
  double totalRes = 0.0; ///< total wire resistance [ohm] (reporting only).
  /// Elmore wire delay from the driver pin to each net pin, indexed like
  /// Net::pins (0.0 at the driver) [s]. Excludes the driver's own
  /// driveRes * Cload term, which the STA adds.
  std::vector<double> sinkWireDelay;
  /// Routed (or estimated Manhattan) wire length from the driver to each net
  /// pin [um], same indexing. Feeds the critical-path wirelength metric of
  /// the paper's Table II.
  std::vector<double> sinkWireLengthUm;

  double totalLoad() const { return wireCap + pinCap; }
};

/// Extracts parasitics for net \p netId from its route. Falls back to a
/// lumped zero-length node when the route is empty (pins share a gcell).
NetParasitics extractRouted(const Netlist& nl, NetId netId, const RouteGrid& grid,
                            const NetRoute& route);

/// Extracts every net; result indexed by NetId.
std::vector<NetParasitics> extractDesign(const Netlist& nl, const RouteGrid& grid,
                                         const RoutingResult& routes);

struct EstimationOptions {
  double rPerUm = 2.0;       ///< representative wire resistance [ohm/um].
  double cPerUm = 0.21e-15;  ///< representative wire capacitance [F/um].
  /// Multiplier on per-unit-length parasitics (C2D: 1/sqrt(2)).
  double parasiticScale = 1.0;
  /// Multiplier on geometric distances (S2D shrunk design: 1.0 because
  /// geometry itself is shrunk; kept for flexibility).
  double lengthScale = 1.0;
};

/// Builds representative estimation options from a BEOL (average of the
/// intermediate routing layers).
EstimationOptions makeEstimationOptions(const Beol& beol, double parasiticScale = 1.0);

/// HPWL/star-model estimate: each sink sees a private wire of its Manhattan
/// distance from the driver.
NetParasitics estimateNet(const Netlist& nl, NetId netId, const EstimationOptions& opt);

/// Estimates every net; result indexed by NetId.
std::vector<NetParasitics> estimateDesign(const Netlist& nl, const EstimationOptions& opt);

/// Aggregate capacitance totals (paper Table II reports Cpin,total and
/// Cwire,total).
struct CapTotals {
  double pinCapTotal = 0.0;   ///< [F], includes every sink pin cap.
  double wireCapTotal = 0.0;  ///< [F].
};
CapTotals capTotals(const std::vector<NetParasitics>& paras);

}  // namespace m3d
