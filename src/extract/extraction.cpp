#include "extract/extraction.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace m3d {

namespace {

/// RC tree node used during routed extraction.
struct RcNode {
  double cap = 0.0;
  double resToParent = 0.0;
  double lenToParentUm = 0.0;  ///< 0 for via edges.
  int parent = -1;
};

}  // namespace

NetParasitics extractRouted(const Netlist& nl, NetId netId, const RouteGrid& grid,
                            const NetRoute& route) {
  const Net& net = nl.net(netId);
  NetParasitics out;
  out.sinkWireDelay.assign(net.pins.size(), 0.0);
  out.sinkWireLengthUm.assign(net.pins.size(), 0.0);

  // Sum sink pin caps.
  for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
    if (k == net.driverIdx) continue;
    out.pinCap += nl.pinCap(net.pins[static_cast<std::size_t>(k)]);
  }

  if (route.segs.empty()) {
    // All pins share a gcell: lumped node, no wire delay.
    return out;
  }

  // Map grid nodes to RC nodes.
  std::map<int, int> rcOf;
  std::vector<RcNode> nodes;
  struct AdjEdge {
    int to;
    double res;
    double lenUm;
  };
  std::vector<std::vector<AdjEdge>> adj;  // undirected RC edges
  auto rcNode = [&](int gridNode) {
    auto it = rcOf.find(gridNode);
    if (it != rcOf.end()) return it->second;
    const int id = static_cast<int>(nodes.size());
    rcOf.emplace(gridNode, id);
    nodes.push_back({});
    adj.push_back({});
    return id;
  };

  const Beol& beol = grid.beol();
  const double gUm = grid.gcellUm();
  for (const RouteSeg& s : route.segs) {
    const int a = rcNode(s.fromNode);
    const int b = rcNode(s.toNode);
    double res = 0.0;
    double cap = 0.0;
    if (s.isVia) {
      const CutLayer& c = beol.cut(s.layer);
      res = c.res;
      cap = c.cap;
    } else {
      const MetalLayer& m = beol.metal(s.layer);
      res = m.rPerUm * gUm;
      cap = m.cPerUm * gUm;
    }
    nodes[static_cast<std::size_t>(a)].cap += cap / 2.0;
    nodes[static_cast<std::size_t>(b)].cap += cap / 2.0;
    out.wireCap += cap;
    out.totalRes += res;
    const double segLenUm = s.isVia ? 0.0 : gUm;
    adj[static_cast<std::size_t>(a)].push_back({b, res, segLenUm});
    adj[static_cast<std::size_t>(b)].push_back({a, res, segLenUm});
  }

  // Attach pin caps and remember pin RC nodes.
  std::vector<int> pinRc(net.pins.size(), -1);
  for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
    const int gridNode = grid.pinNode(nl, net.pins[static_cast<std::size_t>(k)]);
    auto it = rcOf.find(gridNode);
    // A pin whose gcell never appears in the route (unrouted sink) lumps at
    // the driver; approximate with the root.
    const int rc = (it != rcOf.end()) ? it->second : 0;
    pinRc[static_cast<std::size_t>(k)] = rc;
    if (k != net.driverIdx) {
      nodes[static_cast<std::size_t>(rc)].cap += nl.pinCap(net.pins[static_cast<std::size_t>(k)]);
    }
  }

  // Orient the tree from the driver via BFS.
  const int rootGrid = grid.pinNode(nl, net.pins[static_cast<std::size_t>(net.driverIdx)]);
  auto rootIt = rcOf.find(rootGrid);
  const int root = rootIt != rcOf.end() ? rootIt->second : 0;
  std::vector<int> order;
  order.reserve(nodes.size());
  std::vector<char> seen(nodes.size(), 0);
  order.push_back(root);
  seen[static_cast<std::size_t>(root)] = 1;
  for (std::size_t qi = 0; qi < order.size(); ++qi) {
    const int u = order[qi];
    for (const AdjEdge& e : adj[static_cast<std::size_t>(u)]) {
      if (seen[static_cast<std::size_t>(e.to)]) continue;
      seen[static_cast<std::size_t>(e.to)] = 1;
      nodes[static_cast<std::size_t>(e.to)].parent = u;
      nodes[static_cast<std::size_t>(e.to)].resToParent = e.res;
      nodes[static_cast<std::size_t>(e.to)].lenToParentUm = e.lenUm;
      order.push_back(e.to);
    }
  }

  // Downstream capacitance (reverse BFS order), then Elmore delays.
  std::vector<double> downCap(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) downCap[i] = nodes[i].cap;
  for (std::size_t qi = order.size(); qi-- > 1;) {
    const int u = order[qi];
    const int p = nodes[static_cast<std::size_t>(u)].parent;
    if (p >= 0) downCap[static_cast<std::size_t>(p)] += downCap[static_cast<std::size_t>(u)];
  }
  std::vector<double> delay(nodes.size(), 0.0);
  std::vector<double> lenUm(nodes.size(), 0.0);
  for (std::size_t qi = 1; qi < order.size(); ++qi) {
    const int u = order[qi];
    const int p = nodes[static_cast<std::size_t>(u)].parent;
    delay[static_cast<std::size_t>(u)] =
        delay[static_cast<std::size_t>(p)] +
        nodes[static_cast<std::size_t>(u)].resToParent * downCap[static_cast<std::size_t>(u)];
    lenUm[static_cast<std::size_t>(u)] =
        lenUm[static_cast<std::size_t>(p)] + nodes[static_cast<std::size_t>(u)].lenToParentUm;
  }

  for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
    if (k == net.driverIdx) continue;
    const int rc = pinRc[static_cast<std::size_t>(k)];
    out.sinkWireDelay[static_cast<std::size_t>(k)] =
        seen[static_cast<std::size_t>(rc)] ? delay[static_cast<std::size_t>(rc)] : 0.0;
    out.sinkWireLengthUm[static_cast<std::size_t>(k)] =
        seen[static_cast<std::size_t>(rc)] ? lenUm[static_cast<std::size_t>(rc)] : 0.0;
  }
  return out;
}

std::vector<NetParasitics> extractDesign(const Netlist& nl, const RouteGrid& grid,
                                         const RoutingResult& routes) {
  std::vector<NetParasitics> out;
  out.reserve(static_cast<std::size_t>(nl.numNets()));
  for (NetId n = 0; n < nl.numNets(); ++n) {
    out.push_back(extractRouted(nl, n, grid, routes.nets[static_cast<std::size_t>(n)]));
  }
  return out;
}

EstimationOptions makeEstimationOptions(const Beol& beol, double parasiticScale) {
  EstimationOptions opt;
  // Representative per-um parasitics: average over the middle routing
  // layers (skip M1, which carries mostly pin access).
  double r = 0.0;
  double c = 0.0;
  int n = 0;
  for (int l = 1; l < beol.numMetals(); ++l) {
    r += beol.metal(l).rPerUm;
    c += beol.metal(l).cPerUm;
    ++n;
  }
  if (n > 0) {
    opt.rPerUm = r / n;
    opt.cPerUm = c / n;
  }
  opt.parasiticScale = parasiticScale;
  return opt;
}

NetParasitics estimateNet(const Netlist& nl, NetId netId, const EstimationOptions& opt) {
  const Net& net = nl.net(netId);
  NetParasitics out;
  out.sinkWireDelay.assign(net.pins.size(), 0.0);
  out.sinkWireLengthUm.assign(net.pins.size(), 0.0);
  if (net.pins.empty() || net.driverIdx < 0) return out;

  const Point drv = nl.pinPosition(net.pins[static_cast<std::size_t>(net.driverIdx)]);
  const double r = opt.rPerUm * opt.parasiticScale;
  const double c = opt.cPerUm * opt.parasiticScale;
  for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
    if (k == net.driverIdx) continue;
    const NetPin& p = net.pins[static_cast<std::size_t>(k)];
    const double pinCap = nl.pinCap(p);
    out.pinCap += pinCap;
    const double lenUm =
        dbuToUm(manhattanDistance(drv, nl.pinPosition(p))) * opt.lengthScale;
    out.wireCap += c * lenUm;
    out.totalRes += r * lenUm;
    // Private-wire Elmore: R*L * (C*L/2 + Csink).
    out.sinkWireDelay[static_cast<std::size_t>(k)] =
        r * lenUm * (c * lenUm / 2.0 + pinCap);
    out.sinkWireLengthUm[static_cast<std::size_t>(k)] = lenUm;
  }
  return out;
}

std::vector<NetParasitics> estimateDesign(const Netlist& nl, const EstimationOptions& opt) {
  std::vector<NetParasitics> out;
  out.reserve(static_cast<std::size_t>(nl.numNets()));
  for (NetId n = 0; n < nl.numNets(); ++n) out.push_back(estimateNet(nl, n, opt));
  return out;
}

CapTotals capTotals(const std::vector<NetParasitics>& paras) {
  CapTotals t;
  for (const NetParasitics& p : paras) {
    t.pinCapTotal += p.pinCap;
    t.wireCapTotal += p.wireCap;
  }
  return t;
}

}  // namespace m3d
