#include "floorplan/floorplan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>

#include "geom/spatial_index.hpp"

namespace m3d {

namespace {

/// Deterministic macro ordering: tallest (then widest) first.
std::vector<InstId> sortedByHeight(const Netlist& nl, std::vector<InstId> macros) {
  std::sort(macros.begin(), macros.end(), [&nl](InstId a, InstId b) {
    const CellType& ca = nl.cellOf(a);
    const CellType& cb = nl.cellOf(b);
    if (ca.height != cb.height) return ca.height > cb.height;
    if (ca.width != cb.width) return ca.width > cb.width;
    return nl.instance(a).name < nl.instance(b).name;
  });
  return macros;
}

/// Generic periphery ring packer: places rectangular slots around the die
/// edges in concentric rings, returning the lower-left corner per slot (in
/// input order) or an empty vector on failure.
struct Slot {
  Dbu w;
  Dbu h;
};

std::vector<Point> packRing(const std::vector<Slot>& slots, const Rect& die, Dbu halo) {
  std::vector<Point> out(slots.size());
  std::size_t next = 0;

  Dbu insetB = halo;
  Dbu insetT = halo;
  Dbu insetL = halo;
  Dbu insetR = halo;

  for (int ring = 0; ring < 8 && next < slots.size(); ++ring) {
    const Rect inner{die.xlo + insetL, die.ylo + insetB, die.xhi - insetR, die.yhi - insetT};
    if (inner.isEmpty() || inner.width() <= 0 || inner.height() <= 0) return {};

    Dbu depthB = 0;
    Dbu depthT = 0;
    Dbu depthL = 0;
    Dbu depthR = 0;

    {  // Bottom edge, left to right.
      Dbu x = inner.xlo;
      while (next < slots.size()) {
        const Slot& c = slots[next];
        if (x + c.w > inner.xhi || c.h > inner.height() / 2) break;
        out[next] = Point{x, inner.ylo};
        x += c.w + halo;
        depthB = std::max(depthB, c.h);
        ++next;
      }
    }
    {  // Top edge, left to right.
      Dbu x = inner.xlo;
      while (next < slots.size()) {
        const Slot& c = slots[next];
        if (x + c.w > inner.xhi || c.h > (inner.height() - depthB - halo)) break;
        out[next] = Point{x, inner.yhi - c.h};
        x += c.w + halo;
        depthT = std::max(depthT, c.h);
        ++next;
      }
    }
    {  // Left column between the bands.
      Dbu y = inner.ylo + depthB + halo;
      while (next < slots.size()) {
        const Slot& c = slots[next];
        if (y + c.h > inner.yhi - depthT - halo || c.w > inner.width() / 2) break;
        out[next] = Point{inner.xlo, y};
        y += c.h + halo;
        depthL = std::max(depthL, c.w);
        ++next;
      }
    }
    {  // Right column between the bands.
      Dbu y = inner.ylo + depthB + halo;
      while (next < slots.size()) {
        const Slot& c = slots[next];
        if (y + c.h > inner.yhi - depthT - halo || c.w > (inner.width() - depthL - halo)) break;
        out[next] = Point{inner.xhi - c.w, y};
        y += c.h + halo;
        depthR = std::max(depthR, c.w);
        ++next;
      }
    }

    if (depthB + depthT + depthL + depthR == 0) return {};
    insetB += depthB + (depthB ? halo : 0);
    insetT += depthT + (depthT ? halo : 0);
    insetL += depthL + (depthL ? halo : 0);
    insetR += depthR + (depthR ? halo : 0);
  }
  if (next != slots.size()) return {};
  return out;
}

}  // namespace

Dbu snapUp(Dbu v, Dbu step) { return (v + step - 1) / step * step; }

Rect computeDie2D(const NetlistStats& stats, const TechNode& tech, double util2d,
                  double macroDieUtil, double logicDieUtil, double balancedUtil) {
  const double total = static_cast<double>(stats.stdCellArea + stats.macroArea);
  const double a2d = total / util2d;
  const double a3dMacro = 2.0 * static_cast<double>(stats.macroArea) / macroDieUtil;
  const double a3dLogic = 2.0 * static_cast<double>(stats.stdCellArea) / logicDieUtil;
  const double a3dBalanced = (2.0 * static_cast<double>(stats.stdCellArea) +
                              static_cast<double>(stats.macroArea)) /
                             balancedUtil;
  const double area = std::max({a2d, a3dMacro, a3dLogic, a3dBalanced});
  const double side = std::sqrt(area);
  const Dbu w = snapUp(static_cast<Dbu>(side), tech.siteWidth);
  const Dbu h = snapUp(static_cast<Dbu>(side), tech.rowHeight);
  return Rect{0, 0, w, h};
}

Rect computeDie3D(const Rect& die2d, const TechNode& tech) {
  const double side = std::sqrt(static_cast<double>(die2d.area()) / 2.0);
  const Dbu w = snapUp(static_cast<Dbu>(side), tech.siteWidth);
  const Dbu h = snapUp(static_cast<Dbu>(side), tech.rowHeight);
  return Rect{0, 0, w, h};
}

bool placeMacrosRing(Netlist& nl, const std::vector<InstId>& macrosIn, const Rect& die,
                     Dbu halo) {
  const std::vector<InstId> macros = sortedByHeight(nl, macrosIn);
  std::vector<Slot> slots;
  slots.reserve(macros.size());
  for (InstId m : macros) slots.push_back({nl.cellOf(m).width, nl.cellOf(m).height});
  const std::vector<Point> at = packRing(slots, die, halo);
  if (at.empty()) return false;
  for (std::size_t i = 0; i < macros.size(); ++i) {
    Instance& inst = nl.instance(macros[i]);
    inst.pos = at[i];
    inst.fixed = true;
    inst.die = DieId::kLogic;
  }
  return true;
}

bool placeMacrosShelf(Netlist& nl, const std::vector<InstId>& macrosIn, const Rect& die, Dbu halo,
                      DieId dieId) {
  const std::vector<InstId> macros = sortedByHeight(nl, macrosIn);
  Dbu y = die.ylo + halo;
  Dbu x = die.xlo + halo;
  Dbu shelfH = 0;
  for (InstId m : macros) {
    const CellType& c = nl.cellOf(m);
    if (x + c.width + halo > die.xhi) {  // next shelf
      y += shelfH + halo;
      x = die.xlo + halo;
      shelfH = 0;
    }
    if (x + c.width + halo > die.xhi || y + c.height + halo > die.yhi) return false;
    Instance& inst = nl.instance(m);
    inst.pos = Point{x, y};
    inst.fixed = true;
    inst.die = dieId;
    x += c.width + halo;
    shelfH = std::max(shelfH, c.height);
  }
  return true;
}

bool placeMacrosBalanced(Netlist& nl, const std::vector<InstId>& macrosIn, const Rect& die,
                         Dbu halo) {
  const std::vector<InstId> macros = sortedByHeight(nl, macrosIn);
  // Pair consecutive macros (similar sizes after sorting); each pair shares
  // one periphery slot, one macro per die, at identical (x,y) so the
  // blockage is full and the die center stays contiguous for standard cells
  // (the floorplan style a designer would pick for BF-S2D).
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < macros.size(); i += 2) {
    const CellType& c0 = nl.cellOf(macros[i]);
    const bool hasPartner = i + 1 < macros.size();
    const Dbu w = hasPartner ? std::max(c0.width, nl.cellOf(macros[i + 1]).width) : c0.width;
    const Dbu h = hasPartner ? std::max(c0.height, nl.cellOf(macros[i + 1]).height) : c0.height;
    slots.push_back({w, h});
  }
  const std::vector<Point> at = packRing(slots, die, halo);
  if (at.empty()) return false;
  for (std::size_t i = 0; i < macros.size(); i += 2) {
    const Point p = at[i / 2];
    {
      Instance& inst = nl.instance(macros[i]);
      inst.pos = p;
      inst.fixed = true;
      inst.die = DieId::kMacro;
    }
    if (i + 1 < macros.size()) {
      Instance& inst = nl.instance(macros[i + 1]);
      inst.pos = p;
      inst.fixed = true;
      inst.die = DieId::kLogic;
    }
  }
  return true;
}

void assignPorts(Netlist& nl, const Rect& die) {
  const Dbu margin = std::min(die.width(), die.height()) / 20;

  // Partition ports: paired tags by axis, plus unpaired per side.
  std::map<int, std::vector<PortId>> byTag;
  std::vector<PortId> unpaired;
  for (PortId p = 0; p < nl.numPorts(); ++p) {
    const Port& port = nl.port(p);
    if (port.pairTag >= 0) {
      byTag[port.pairTag].push_back(p);
    } else {
      unpaired.push_back(p);
    }
  }

  // Axis slot lists, in deterministic (tag, then creation) order.
  std::vector<std::vector<PortId>> nsSlots;
  std::vector<std::vector<PortId>> ewSlots;
  for (auto& [tag, ports] : byTag) {
    (void)tag;
    assert(ports.size() == 2);
    const Side s = nl.port(ports.front()).side;
    if (s == Side::kNorth || s == Side::kSouth) {
      nsSlots.push_back(ports);
    } else {
      ewSlots.push_back(ports);
    }
  }
  for (PortId p : unpaired) {
    const Side s = nl.port(p).side;
    if (s == Side::kNorth || s == Side::kSouth) {
      nsSlots.push_back({p});
    } else {
      ewSlots.push_back({p});
    }
  }

  auto coordAt = [&](Dbu lo, Dbu hi, std::size_t i, std::size_t n) -> Dbu {
    if (n <= 1) return (lo + hi) / 2;
    return lo + margin + static_cast<Dbu>(i) * (hi - lo - 2 * margin) / static_cast<Dbu>(n - 1);
  };

  for (std::size_t i = 0; i < nsSlots.size(); ++i) {
    const Dbu x = coordAt(die.xlo, die.xhi, i, nsSlots.size());
    for (PortId p : nsSlots[i]) {
      Port& port = nl.port(p);
      port.pos = Point{x, port.side == Side::kNorth ? die.yhi : die.ylo};
    }
  }
  for (std::size_t i = 0; i < ewSlots.size(); ++i) {
    const Dbu y = coordAt(die.ylo, die.yhi, i, ewSlots.size());
    for (PortId p : ewSlots[i]) {
      Port& port = nl.port(p);
      port.pos = Point{port.side == Side::kEast ? die.xhi : die.xlo, y};
    }
  }
}

std::vector<Blockage> macroPlacementBlockages(const Netlist& nl, DieId dieId, Dbu halo,
                                              double density) {
  std::vector<Blockage> out;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (!inst.fixed || inst.die != dieId) continue;
    const CellType& c = nl.cellOf(i);
    if (!c.isMacro()) continue;
    Blockage b;
    b.rect = Rect{inst.pos.x, inst.pos.y, inst.pos.x + c.substrateWidth,
                  inst.pos.y + c.substrateHeight}
                 .inflated(halo);
    b.density = density;
    out.push_back(b);
  }
  return out;
}

std::string checkMacroPlacement(const Netlist& nl, DieId dieId, const Rect& die) {
  std::ostringstream err;
  RectIndex index(die.inflated(die.width() / 4), std::max<Dbu>(1, die.width() / 16));
  std::vector<InstId> macros;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    if (!inst.fixed || inst.die != dieId || !nl.cellOf(i).isMacro()) continue;
    const CellType& c = nl.cellOf(i);
    const Rect r{inst.pos.x, inst.pos.y, inst.pos.x + c.width, inst.pos.y + c.height};
    if (!die.contains(r)) err << inst.name << " outside die; ";
    for (std::int32_t other : index.queryOverlapping(r)) {
      err << inst.name << " overlaps " << nl.instance(other).name << "; ";
    }
    index.insert(i, r);
  }
  return err.str();
}

}  // namespace m3d
