#pragma once

/// \file floorplan.hpp
/// Floorplanning: die sizing, macro placement styles (2D periphery ring,
/// MoL macro-die shelf packing, balanced dual-die for BF-S2D), top-level
/// port assignment with inter-tile alignment constraints, and placement
/// blockage generation.

#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_node.hpp"

namespace m3d {

/// A standard-cell placement blockage. density 1.0 blocks the area fully;
/// fractional densities model the partial blockages S2D/C2D use for macros
/// present in only one of the two dies.
struct Blockage {
  Rect rect;
  double density = 1.0;
};

/// Floorplan handed to placement and routing: the P&R die area plus the
/// standard-cell blockages. Macro positions live in the netlist
/// (Instance::pos, fixed=true, Instance::die).
struct Floorplan {
  Rect die;
  std::vector<Blockage> blockages;
  Dbu rowHeight = 0;
  Dbu siteWidth = 0;

  int numRows() const { return static_cast<int>(die.height() / rowHeight); }
};

/// Rounds \p v up to a multiple of \p step.
Dbu snapUp(Dbu v, Dbu step);

/// Sizes the single 2D die. The area is the maximum of four constraints so
/// that every derived 3D floorplan (half the footprint, paper Sec. V: 2x
/// area ratio between 2D and 3D floorplans) stays packable:
///   total/(2D util), 2*macro/(macro-die util), 2*std/(logic-die util),
///   and the balanced-floorplan die (std cells + half the macros) at
///   balancedUtil.
Rect computeDie2D(const NetlistStats& stats, const TechNode& tech, double util2d = 0.55,
                  double macroDieUtil = 0.66, double logicDieUtil = 0.40,
                  double balancedUtil = 0.50);

/// Footprint of each die of the F2F stack: exactly half the 2D area
/// (sqrt(2) shrink per side), snapped to the placement grid.
Rect computeDie3D(const Rect& die2d, const TechNode& tech);

/// Places \p macros around the periphery of \p die in concentric rings
/// (the 2D floorplan style of the paper's Fig. 4): the die center remains
/// free for standard cells. Macros become fixed at DieId::kLogic.
/// Returns false if the macros cannot be packed.
bool placeMacrosRing(Netlist& nl, const std::vector<InstId>& macros, const Rect& die, Dbu halo);

/// Shelf-packs \p macros into \p die (the MoL macro-die floorplan style of
/// Fig. 4: the macro die carries only macros). Macros become fixed at
/// \p die Id. Returns false if packing fails.
bool placeMacrosShelf(Netlist& nl, const std::vector<InstId>& macros, const Rect& die, Dbu halo,
                      DieId dieId);

/// Balanced floorplan for BF-S2D (paper Sec. V-A): macros are paired and
/// placed at identical (x,y) on opposite dies so that most macro area
/// overlaps, turning partial blockages into full ones. Returns false if
/// packing fails.
bool placeMacrosBalanced(Netlist& nl, const std::vector<InstId>& macros, const Rect& die,
                         Dbu halo);

/// Assigns positions to all top-level ports along the die edges.
/// Constraints honored (paper Sec. V-1): ports sharing a pairTag sit at the
/// same x (north/south pairs) or same y (east/west pairs) so abutted tiles
/// connect by wire-less alignment; all ports sit on the logic-die top metal.
void assignPorts(Netlist& nl, const Rect& die);

/// Builds standard-cell placement blockages from the substrate footprints
/// of fixed macros on \p dieId, inflated by \p halo, with \p density.
std::vector<Blockage> macroPlacementBlockages(const Netlist& nl, DieId dieId, Dbu halo,
                                              double density = 1.0);

/// Checks that all fixed macros on \p dieId lie inside \p die and do not
/// overlap each other; returns a diagnostic string (empty when healthy).
std::string checkMacroPlacement(const Netlist& nl, DieId dieId, const Rect& die);

}  // namespace m3d
