#include "cts/cts.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace m3d {

namespace {

struct Sink {
  NetPin pin;
  Point pos;
};

Point centroid(const std::vector<Sink>& sinks, std::size_t lo, std::size_t hi) {
  std::int64_t sx = 0;
  std::int64_t sy = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    sx += sinks[i].pos.x;
    sy += sinks[i].pos.y;
  }
  const std::int64_t n = static_cast<std::int64_t>(hi - lo);
  return Point{sx / n, sy / n};
}

}  // namespace

CtsResult synthesizeClockTree(Netlist& nl, NetId clockNet, const Floorplan& fp,
                              const CtsOptions& opt) {
  CtsResult result;
  const CellTypeId leafBufId = nl.library().findCell(opt.bufferCell);
  assert(leafBufId != kInvalidCellType);
  // Upper tree levels drive long wires and large subtree loads; use the
  // strongest buffers there, tapering toward the leaves.
  const std::vector<CellTypeId> bufFamily = nl.library().family("BUF");
  auto bufferForLevel = [&](int level) {
    CellTypeId pick = leafBufId;
    if (!bufFamily.empty()) {
      if (level <= 2) {
        pick = bufFamily.back();
      } else if (level <= 4 && bufFamily.size() >= 2) {
        pick = bufFamily[bufFamily.size() - 2];
      }
    }
    return pick;
  };
  const int bufA = *nl.library().cell(leafBufId).findPin("A");
  const int bufY = *nl.library().cell(leafBufId).findPin("Y");

  // Collect CK sinks of the clock net.
  std::vector<Sink> sinks;
  for (const NetPin& p : nl.net(clockNet).pins) {
    if (p.kind != NetPin::Kind::kInstPin) continue;
    const LibPin& lp = nl.cellOf(p.inst).pins[static_cast<std::size_t>(p.libPin)];
    if (!lp.isClock) continue;
    sinks.push_back({p, nl.pinPosition(p)});
  }
  result.numSinks = static_cast<int>(sinks.size());
  if (sinks.empty()) return result;

  // Detach the sinks; they re-attach to leaf subnets.
  for (const Sink& s : sinks) nl.disconnect(clockNet, s.pin);

  int bufCounter = 0;
  auto newBuffer = [&](const Point& at, int parent, int level, NetId inputNet) {
    const CellTypeId bufId = bufferForLevel(level);
    const InstId inst = nl.addInstance("cts_buf_" + std::to_string(bufCounter++), bufId);
    nl.instance(inst).pos = fp.die.clamp(at);
    nl.instance(inst).die = DieId::kLogic;
    nl.connect(inputNet, inst, bufA);
    const NetId out = nl.addNet("cts_net_" + std::to_string(bufCounter));
    nl.net(out).isClock = true;
    nl.connect(out, inst, bufY);
    CtsBuffer b;
    b.inst = inst;
    b.parent = parent;
    b.level = level;
    b.inputNet = inputNet;
    b.outputNet = out;
    result.buffers.push_back(b);
    return static_cast<int>(result.buffers.size()) - 1;
  };

  // Recursive bisection over the sink span [lo, hi).
  std::function<void(std::size_t, std::size_t, int, int)> split =
      [&](std::size_t lo, std::size_t hi, int parentBuf, int level) {
        const Point c = centroid(sinks, lo, hi);
        const NetId parentNet = result.buffers[static_cast<std::size_t>(parentBuf)].outputNet;
        if (hi - lo <= static_cast<std::size_t>(opt.maxSinksPerLeaf)) {
          const int leaf = newBuffer(c, parentBuf, level, parentNet);
          const NetId leafNet = result.buffers[static_cast<std::size_t>(leaf)].outputNet;
          for (std::size_t i = lo; i < hi; ++i) {
            nl.connect(leafNet, sinks[i].pin.inst, sinks[i].pin.libPin);
            result.estWirelengthUm +=
                dbuToUm(manhattanDistance(nl.instance(result.buffers[static_cast<std::size_t>(leaf)].inst).pos,
                                          sinks[i].pos));
          }
          result.maxDepth = std::max(result.maxDepth, level);
          return;
        }
        // Split along the longer bounding-box dimension at the median.
        Rect bb = Rect::makeEmpty();
        for (std::size_t i = lo; i < hi; ++i) bb.expandToInclude(sinks[i].pos);
        const bool splitX = bb.width() >= bb.height();
        const std::size_t mid = lo + (hi - lo) / 2;
        std::nth_element(sinks.begin() + static_cast<std::ptrdiff_t>(lo),
                         sinks.begin() + static_cast<std::ptrdiff_t>(mid),
                         sinks.begin() + static_cast<std::ptrdiff_t>(hi),
                         [splitX](const Sink& a, const Sink& b) {
                           if (splitX) {
                             if (a.pos.x != b.pos.x) return a.pos.x < b.pos.x;
                             return a.pos.y < b.pos.y;
                           }
                           if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
                           return a.pos.x < b.pos.x;
                         });
        const int node = newBuffer(c, parentBuf, level, parentNet);
        result.estWirelengthUm += dbuToUm(manhattanDistance(
            nl.instance(result.buffers[static_cast<std::size_t>(parentBuf)].inst).pos, c));
        split(lo, mid, node, level + 1);
        split(mid, hi, node, level + 1);
      };

  // Root buffer at the sink centroid, fed by the clock net itself.
  const Point rootAt = centroid(sinks, 0, sinks.size());
  const int root = newBuffer(rootAt, -1, 1, clockNet);
  result.maxDepth = 1;
  if (sinks.size() <= static_cast<std::size_t>(opt.maxSinksPerLeaf)) {
    const NetId rootNet = result.buffers[static_cast<std::size_t>(root)].outputNet;
    for (const Sink& s : sinks) nl.connect(rootNet, s.pin.inst, s.pin.libPin);
  } else {
    const std::size_t mid = sinks.size() / 2;
    Rect bb = Rect::makeEmpty();
    for (const Sink& s : sinks) bb.expandToInclude(s.pos);
    const bool splitX = bb.width() >= bb.height();
    std::nth_element(sinks.begin(), sinks.begin() + static_cast<std::ptrdiff_t>(mid),
                     sinks.end(), [splitX](const Sink& a, const Sink& b) {
                       if (splitX) {
                         if (a.pos.x != b.pos.x) return a.pos.x < b.pos.x;
                         return a.pos.y < b.pos.y;
                       }
                       if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
                       return a.pos.x < b.pos.x;
                     });
    split(0, mid, root, 2);
    split(mid, sinks.size(), root, 2);
  }
  obs::gauge("cts.sinks").set(static_cast<double>(result.numSinks));
  obs::gauge("cts.buffers").set(static_cast<double>(result.buffers.size()));
  obs::gauge("cts.depth").set(static_cast<double>(result.maxDepth));
  M3D_LOG(debug) << "cts tree: sinks=" << result.numSinks
                 << " buffers=" << result.buffers.size() << " depth=" << result.maxDepth;
  return result;
}

ClockModel updateClockModel(const Netlist& nl, const std::vector<NetParasitics>& paras,
                            const CtsResult& cts) {
  ClockModel model;
  model.latency.assign(static_cast<std::size_t>(nl.numInstances()), 0.0);
  model.maxTreeDepth = cts.maxDepth;
  if (cts.buffers.empty()) return model;

  // Arrival at each buffer's output pin, walking parents before children
  // (buffers are created parent-first, so index order works).
  std::vector<double> outArrival(cts.buffers.size(), 0.0);
  double minSink = 1e30;
  double maxSink = 0.0;

  for (std::size_t b = 0; b < cts.buffers.size(); ++b) {
    const CtsBuffer& buf = cts.buffers[b];
    const CellType& cell = nl.cellOf(buf.inst);
    const TimingArc& arc = cell.arcs.front();
    const double load = paras[static_cast<std::size_t>(buf.outputNet)].totalLoad();

    // Wire delay from the parent's output to this buffer's input pin.
    double inArrival = 0.0;
    if (buf.parent >= 0) {
      const NetParasitics& pp = paras[static_cast<std::size_t>(buf.inputNet)];
      const Net& net = nl.net(buf.inputNet);
      for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
        const NetPin& p = net.pins[static_cast<std::size_t>(k)];
        if (p.kind == NetPin::Kind::kInstPin && p.inst == buf.inst) {
          inArrival = outArrival[static_cast<std::size_t>(buf.parent)] +
                      pp.sinkWireDelay[static_cast<std::size_t>(k)];
          break;
        }
      }
    }
    outArrival[b] = inArrival + arc.intrinsic + arc.driveRes * load;

    // Leaf nets deliver latency to CK pins.
    const Net& outNet = nl.net(buf.outputNet);
    const NetParasitics& op = paras[static_cast<std::size_t>(buf.outputNet)];
    for (int k = 0; k < static_cast<int>(outNet.pins.size()); ++k) {
      const NetPin& p = outNet.pins[static_cast<std::size_t>(k)];
      if (p.kind != NetPin::Kind::kInstPin) continue;
      const LibPin& lp = nl.cellOf(p.inst).pins[static_cast<std::size_t>(p.libPin)];
      if (!lp.isClock) continue;
      const double lat = outArrival[b] + op.sinkWireDelay[static_cast<std::size_t>(k)];
      model.latency[static_cast<std::size_t>(p.inst)] = lat;
      minSink = std::min(minSink, lat);
      maxSink = std::max(maxSink, lat);
    }
  }
  model.maxLatency = maxSink;
  model.skew = maxSink > 0.0 ? maxSink - minSink : 0.0;

  // CTS balancing: real clock-tree synthesis inserts delay elements and
  // tunes buffers until all sinks arrive together. Model that by padding
  // every sink to the slowest arrival, and carry the residual imbalance the
  // balancer cannot remove as clock uncertainty proportional to the
  // insertion delay (longer/deeper trees are harder to balance -- this is
  // where the paper's shorter MoL clock trees pay off).
  for (double& l : model.latency) {
    if (l > 0.0) l = maxSink;
  }
  model.uncertainty = 0.05 * model.maxLatency;
  obs::gauge("cts.skew_ps").set(model.skew * 1e12);
  obs::gauge("cts.latency_ps").set(model.maxLatency * 1e12);
  M3D_LOG(debug) << "cts model: skew_ps=" << model.skew * 1e12
                 << " latency_ps=" << model.maxLatency * 1e12;
  return model;
}

}  // namespace m3d
