#pragma once

/// \file cts.hpp
/// Clock tree synthesis: recursive geometric bisection with buffer insertion
/// (a simplified H-tree / MMM-style tree).
///
/// The tree is materialized as real buffer instances and subnets in the
/// netlist, so placement legality, routing, wirelength and power all see it.
/// Clock arrivals for STA are computed by walking the tree with the
/// extracted parasitics after routing (updateClockModel), matching the
/// paper's observation that MoL stacking shortens the clock tree (Table II
/// reports max clock-tree depth).

#include <vector>

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace m3d {

struct CtsOptions {
  int maxSinksPerLeaf = 12;           ///< CK pins per leaf buffer.
  const char* bufferCell = "BUF_X8";  ///< buffer master for all levels.
};

/// One buffer of the synthesized tree.
struct CtsBuffer {
  InstId inst = kInvalidId;
  int parent = -1;        ///< index into CtsResult::buffers (-1 = root).
  int level = 0;          ///< root = 1.
  NetId inputNet = kInvalidId;
  NetId outputNet = kInvalidId;
};

struct CtsResult {
  std::vector<CtsBuffer> buffers;
  int maxDepth = 0;               ///< buffer levels root..leaf.
  double estWirelengthUm = 0.0;   ///< Manhattan estimate at synthesis time.
  int numSinks = 0;
};

/// Builds the clock tree for \p clockNet over the current placement. The
/// clock net keeps its root (the clock port) and gains the root buffer as
/// its only sink; all former CK sinks move onto leaf subnets. Inserted
/// buffers are movable (legalize afterwards).
CtsResult synthesizeClockTree(Netlist& nl, NetId clockNet, const Floorplan& fp,
                              const CtsOptions& opt = CtsOptions{});

/// Computes per-instance clock arrival latencies by walking the tree with
/// extracted (or estimated) parasitics. Fills latency, maxLatency, skew and
/// maxTreeDepth.
ClockModel updateClockModel(const Netlist& nl, const std::vector<NetParasitics>& paras,
                            const CtsResult& cts);

}  // namespace m3d
