#pragma once

/// \file parallel.hpp
/// Deterministic parallel execution layer: a small dependency-free thread
/// pool plus parallelFor / parallelReduce helpers used by the router, STA
/// and placer hot loops.
///
/// Determinism contract
/// --------------------
/// Every helper decomposes its iteration range into chunks as a pure
/// function of (range, grainSize) -- never of the thread count. Which
/// thread executes a chunk, and when, is unspecified; what each chunk
/// computes, and the order in which chunk results are *merged*
/// (parallelReduce folds partials in ascending chunk index), is fixed.
/// Callers that follow the same discipline -- compute into per-chunk or
/// per-slot buffers, merge in chunk order -- therefore produce bit-identical
/// results at any thread count, including 1.
///
/// Thread-count resolution (resolveThreads):
///   1. an explicit request (> 0) wins -- e.g. FlowOptions::numThreads;
///   2. else the M3D_THREADS environment variable when set to a positive
///      integer;
///   3. else std::thread::hardware_concurrency().
/// A resolved count of 1 takes the exact sequential code path: chunks run
/// inline on the calling thread, in order, without touching the pool.
///
/// Nested parallelism: a parallelFor issued from inside a pool worker runs
/// inline (sequential chunks) instead of re-entering the pool, so nested
/// calls are safe and deadlock-free.

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

namespace m3d::par {

/// std::thread::hardware_concurrency(), clamped to >= 1.
int hardwareConcurrency();

/// Parsed M3D_THREADS environment override (0 when unset or not a positive
/// integer). Re-read on every call so tests can toggle it with setenv.
int envThreadOverride();

/// Effective thread count for a request: request > 0 ? request :
/// (M3D_THREADS > 0 ? M3D_THREADS : hardware_concurrency()). Clamped to
/// [1, kMaxThreads].
int resolveThreads(int requested);

/// Hard cap on resolved thread counts (worker slots are preallocated).
inline constexpr int kMaxThreads = 64;

/// True while the current thread is executing inside a parallel region
/// (pool worker or a calling thread running chunks). Used to inline nested
/// calls.
bool inParallelRegion();

/// Worker slot of the current thread, stable for the duration of one chunk:
/// 0 for a thread outside the pool (including the caller participating in
/// its own parallelFor), 1..numWorkers for pool workers. Index per-thread
/// scratch buffers with this; size them with maxSlots().
int currentSlot();

/// Upper bound (exclusive) on currentSlot(): kMaxThreads worker slots + 1.
inline constexpr int maxSlots() { return kMaxThreads + 1; }

/// Lazily-spawned shared worker pool. Workers are started on demand (up to
/// kMaxThreads - 1; the calling thread always participates) and live for the
/// process. All pool state is private; use the free helpers below.
class ThreadPool {
 public:
  static ThreadPool& global();

  /// Number of worker threads currently spawned (excludes callers).
  int numWorkers() const;

  /// Runs job(chunk) for every chunk in [0, numChunks), using at most
  /// \p width threads including the caller. Blocks until all chunks have
  /// completed; rethrows the first exception thrown by any chunk.
  void run(int numChunks, int width, const std::function<void(int)>& job);

  ~ThreadPool();

 private:
  ThreadPool();
  struct Impl;
  Impl* impl_;
};

namespace detail {
inline std::int64_t numChunksFor(std::int64_t n, std::int64_t grain) {
  return (n + grain - 1) / grain;
}
inline std::int64_t clampGrain(std::int64_t grain) { return grain > 0 ? grain : 1; }
}  // namespace detail

/// Calls fn(chunkBegin, chunkEnd) for every grain-sized chunk of
/// [begin, end). Chunk boundaries depend only on (begin, end, grainSize).
template <class Fn>
void parallelForChunks(std::int64_t begin, std::int64_t end, std::int64_t grainSize, Fn&& fn,
                       int numThreads = 0) {
  if (end <= begin) return;
  const std::int64_t grain = detail::clampGrain(grainSize);
  const std::int64_t chunks64 = detail::numChunksFor(end - begin, grain);
  const int chunks = static_cast<int>(std::min<std::int64_t>(chunks64, 1 << 30));
  auto runChunk = [&](int c) {
    const std::int64_t lo = begin + static_cast<std::int64_t>(c) * grain;
    const std::int64_t hi = std::min(end, lo + grain);
    fn(lo, hi);
  };
  const int width = static_cast<int>(
      std::min<std::int64_t>(resolveThreads(numThreads), chunks64));
  if (width <= 1 || inParallelRegion()) {
    // Exact sequential path: same chunks, ascending order, calling thread.
    for (int c = 0; c < chunks; ++c) runChunk(c);
    return;
  }
  ThreadPool::global().run(chunks, width, runChunk);
}

/// Calls fn(i) for every i in [begin, end), scheduled in grain-sized chunks.
template <class Fn>
void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grainSize, Fn&& fn,
                 int numThreads = 0) {
  parallelForChunks(
      begin, end, grainSize,
      [&fn](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
      },
      numThreads);
}

/// Deterministic reduction: computes map(chunkBegin, chunkEnd) -> T for
/// every grain-sized chunk (in parallel), then folds the partials with
/// combine(acc, partial) in ascending chunk order on the calling thread.
/// The fold order -- and therefore the result, even for non-associative
/// combines like floating-point addition -- depends only on grainSize,
/// never on the thread count.
template <class T, class Map, class Combine>
T parallelReduce(std::int64_t begin, std::int64_t end, std::int64_t grainSize, T init,
                 Map&& map, Combine&& combine, int numThreads = 0) {
  if (end <= begin) return init;
  const std::int64_t grain = detail::clampGrain(grainSize);
  const std::int64_t chunks = detail::numChunksFor(end - begin, grain);
  std::vector<T> partials(static_cast<std::size_t>(chunks));
  parallelForChunks(
      begin, end, grain,
      [&](std::int64_t lo, std::int64_t hi) {
        partials[static_cast<std::size_t>((lo - begin) / grain)] = map(lo, hi);
      },
      numThreads);
  T acc = std::move(init);
  for (std::int64_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[static_cast<std::size_t>(c)]));
  }
  return acc;
}

}  // namespace m3d::par
