#pragma once

/// \file macro3d.hpp
/// The Macro-3D physical design methodology (the paper's contribution,
/// Sec. IV). Four steps, exactly as Fig. 2:
///
///  1. Two per-die floorplans with the final F2F footprint; macros placed
///     (the macro die carries only macros; the logic die may carry macros
///     too — none in the MoL case study).
///  2. Memory-on-logic projection: build the combined double-die BEOL
///     (logic M1..M6 -> F2F_VIA -> macro-die layers renamed *_MD), shrink
///     macro-die macro substrates to filler size, rename their pin and
///     obstruction layers to *_MD, and superimpose both floorplans into one
///     2D floorplan.
///  3. Feed the superimposed floorplan plus the combined BEOL to the
///     standard 2D P&R engine. Because the engine sees every macro pin at
///     its true position on its true layer and has the full stack for
///     routing and extraction, the resulting placement/routing/PPA are
///     directly valid for the 3D stack — no tier partitioning, F2F-via
///     planning or incremental re-routing step exists.
///  4. Die separation: split the result into per-die layouts (both carrying
///     the F2F_VIA layer) for tape-out.

#include "flows/flow_common.hpp"

namespace m3d {

/// Runs the Macro-3D flow. opt.macroDieMetals selects the macro-die BEOL
/// depth (6 = M6-M6, 4 = the heterogeneous M6-M4 stack of Table III);
/// opt.stackOrder selects the combined-stack layer ordering.
FlowOutput runFlowMacro3D(const TileConfig& cfg, const FlowOptions& opt = FlowOptions{});

/// Step-4 result: the separated per-die views.
struct SeparatedDesign {
  Beol logicDieBeol;
  Beol macroDieBeol;
  /// Wirelength routed in each die's metals [um, local scale].
  double logicDieWirelengthUm = 0.0;
  double macroDieWirelengthUm = 0.0;
  std::int64_t f2fBumps = 0;
};

/// Performs die separation on a finished Macro-3D implementation.
SeparatedDesign separateDies(const FlowOutput& out, MacroDieStackOrder order);

}  // namespace m3d
