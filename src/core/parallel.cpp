#include "core/parallel.hpp"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace m3d::par {

namespace {

thread_local int tlsSlot = 0;        // 0 = non-pool thread, 1..N = worker.
thread_local int tlsRegionDepth = 0; // > 0 while running chunks.

struct RegionGuard {
  RegionGuard() { ++tlsRegionDepth; }
  ~RegionGuard() { --tlsRegionDepth; }
};

}  // namespace

int hardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int envThreadOverride() {
  const char* v = std::getenv("M3D_THREADS");
  if (v == nullptr || *v == '\0') return 0;
  char* endp = nullptr;
  const long parsed = std::strtol(v, &endp, 10);
  if (endp == v || *endp != '\0' || parsed <= 0) {
    // Malformed or non-positive values never silently pick a thread count;
    // warn once (stderr: the log level machinery may not be configured yet)
    // and fall back to auto-detection.
    static std::once_flag warned;
    std::call_once(warned, [v] {
      std::fprintf(stderr,
                   "[m3d:warn] ignoring invalid M3D_THREADS='%s' "
                   "(expected a positive integer); using hardware concurrency\n",
                   v);
    });
    return 0;
  }
  return static_cast<int>(std::min<long>(parsed, kMaxThreads));
}

int resolveThreads(int requested) {
  int n = requested;
  if (n <= 0) n = envThreadOverride();
  if (n <= 0) n = hardwareConcurrency();
  return std::clamp(n, 1, kMaxThreads);
}

bool inParallelRegion() { return tlsRegionDepth > 0; }

int currentSlot() { return tlsSlot; }

/// One job at a time; workers park on a condition variable between jobs.
/// Chunks are claimed from a shared atomic counter, so scheduling is
/// dynamic (work-stealing-free but load-balanced); result determinism is
/// the *callers'* responsibility via the chunk/merge discipline documented
/// in parallel.hpp.
struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable workCv;   // workers wait here for a job
  std::condition_variable doneCv;   // the submitting caller waits here
  std::mutex jobMu;                 // serializes concurrent submitters

  std::vector<std::thread> workers;
  bool stopping = false;

  // Current job (valid while jobActive).
  std::uint64_t generation = 0;
  bool jobActive = false;
  int jobChunks = 0;
  int jobSlots = 0;  // how many workers may still join this job
  int activeWorkers = 0;  // workers currently inside runChunks for this job
  std::int64_t jobSubmitNs = 0;  // submission time, for queue-wait tracing
  const std::function<void(int)>* jobFn = nullptr;
  std::atomic<int> nextChunk{0};
  std::atomic<int> doneChunks{0};
  std::exception_ptr firstError;

  void workerLoop(int slot) {
    tlsSlot = slot;
    // Worker slots map 1:1 to trace tracks, so a worker's pool.task events
    // land on a stable "pool-worker-N" track across jobs.
    obs::setThreadTrackId(slot);
    std::unique_lock<std::mutex> lock(mu);
    std::uint64_t seenGeneration = 0;
    for (;;) {
      workCv.wait(lock, [&] {
        return stopping || (jobActive && generation != seenGeneration && jobSlots > 0);
      });
      if (stopping) return;
      seenGeneration = generation;
      --jobSlots;
      ++activeWorkers;
      const std::function<void(int)>* fn = jobFn;
      const int chunks = jobChunks;
      const std::int64_t submitNs = jobSubmitNs;
      lock.unlock();
      const bool tracing = obs::TraceCollector::global().enabled();
      const std::int64_t t0 = tracing ? obs::monotonicNowNs() : 0;
      const int ran = runChunks(*fn, chunks);
      if (tracing && ran > 0) {
        // One 'X' event per job the worker actually worked on: begin/end of
        // its chunk-claiming loop plus how long the job sat queued before
        // this worker picked it up.
        obs::TraceCollector::global().recordComplete(
            "pool.task", t0, obs::monotonicNowNs() - t0,
            {{"queue_wait_us", static_cast<double>(t0 - submitNs) / 1e3},
             {"chunks", static_cast<double>(ran)},
             {"job", static_cast<double>(seenGeneration)}});
      }
      lock.lock();
      // The submitter must not recycle the job state (counters, fn) while
      // any worker is still inside runChunks, even if all chunks are done:
      // a late fetch_add on a reset counter would hand this worker a chunk
      // of the *next* job with the old function. Announce the exit.
      --activeWorkers;
      doneCv.notify_all();
    }
  }

  /// Claims and runs chunks until the shared counter is exhausted; returns
  /// how many chunks this thread executed.
  int runChunks(const std::function<void(int)>& fn, int chunks) {
    RegionGuard region;
    int ran = 0;
    for (;;) {
      const int c = nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      ++ran;
      try {
        fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> g(mu);
        if (!firstError) firstError = std::current_exception();
      }
      if (doneChunks.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> g(mu);
        doneCv.notify_all();
      }
    }
    return ran;
  }

  void ensureWorkers(int n) {
    // Called with mu held.
    while (static_cast<int>(workers.size()) < n && static_cast<int>(workers.size()) < kMaxThreads - 1) {
      const int slot = static_cast<int>(workers.size()) + 1;
      workers.emplace_back([this, slot] { workerLoop(slot); });
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    impl_->stopping = true;
    impl_->workCv.notify_all();
  }
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::global() {
  // Leaked on purpose: worker threads must never outlive the pool, and
  // static destruction order vs. detached work is not worth the risk for a
  // process-lifetime singleton.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

int ThreadPool::numWorkers() const {
  std::lock_guard<std::mutex> g(impl_->mu);
  return static_cast<int>(impl_->workers.size());
}

void ThreadPool::run(int numChunks, int width, const std::function<void(int)>& job) {
  if (numChunks <= 0) return;
  assert(!inParallelRegion() && "nested ThreadPool::run; use parallelFor which inlines");
  // One job at a time; a second caller queues here.
  std::lock_guard<std::mutex> submitGuard(impl_->jobMu);
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    impl_->ensureWorkers(width - 1);
    ++impl_->generation;
    impl_->jobActive = true;
    impl_->jobChunks = numChunks;
    impl_->jobSlots = width - 1;
    impl_->jobFn = &job;
    impl_->jobSubmitNs = obs::monotonicNowNs();
    impl_->nextChunk.store(0, std::memory_order_relaxed);
    impl_->doneChunks.store(0, std::memory_order_relaxed);
    impl_->firstError = nullptr;
    impl_->workCv.notify_all();
  }
  // The caller participates with the workers.
  {
    const bool tracing = obs::TraceCollector::global().enabled();
    const std::int64_t t0 = tracing ? obs::monotonicNowNs() : 0;
    const int ran = impl_->runChunks(job, numChunks);
    if (tracing && ran > 0) {
      obs::TraceCollector::global().recordComplete(
          "pool.task", t0, obs::monotonicNowNs() - t0,
          {{"queue_wait_us", 0.0}, {"chunks", static_cast<double>(ran)}});
    }
  }
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    // Wait for chunk completion AND for every joined worker to leave
    // runChunks; only then is it safe to invalidate jobFn and reset the
    // chunk counters for the next job.
    impl_->doneCv.wait(lock, [&] {
      return impl_->doneChunks.load(std::memory_order_acquire) >= impl_->jobChunks &&
             impl_->activeWorkers == 0;
    });
    impl_->jobActive = false;
    impl_->jobSlots = 0;
    impl_->jobFn = nullptr;
    if (impl_->firstError) {
      std::exception_ptr err = impl_->firstError;
      impl_->firstError = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

}  // namespace m3d::par
