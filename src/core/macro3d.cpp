#include "core/macro3d.hpp"

#include <cassert>
#include <stdexcept>

#include "flows/case_study.hpp"

namespace m3d {

FlowOutput runFlowMacro3D(const TileConfig& cfg, const FlowOptions& opt) {
  obs::ScopedRun run = beginFlowRun(FlowKind::kMacro3D, cfg.name, opt);
  std::ostringstream trace;
  FlowOutput out;
  {
    // --- Step 1: per-die floorplans with the F2F footprint -----------------
    obs::ScopedPhase phase("floorplan");
    out.logicTech = makeCaseStudyTech(kLogicDieMetals);
    out.macroTech = makeCaseStudyTech(opt.macroDieMetals);
    out.lib = std::make_unique<Library>(makeStdCellLib(out.logicTech));
    out.tile = std::make_unique<Tile>(generateTile(*out.lib, out.logicTech, cfg));
    Netlist& nl = out.tile->netlist;

    const NetlistStats stats = computeStats(nl);
    const Rect die2d = computeDie2D(stats, out.logicTech);
    const Rect die = computeDie3D(die2d, out.logicTech);
    phase.attr("footprint_um", dbuToUm(die.width()));
    phase.attr("macros", stats.numMacros);
    trace << "step1 floorplans: footprint=" << dbuToUm(die.width()) << "x"
          << dbuToUm(die.height()) << "um (2D would be " << dbuToUm(die2d.width()) << "x"
          << dbuToUm(die2d.height()) << ")\n";
    M3D_LOG(info) << "step1 floorplans done: footprint=" << dbuToUm(die.width()) << "x"
                  << dbuToUm(die.height()) << "um macros=" << stats.numMacros;

    if (!placeMacrosShelf(nl, out.tile->groups.macros, die, opt.macroHalo, DieId::kMacro)) {
      throw std::runtime_error("macro3d: macro-die shelf packing failed");
    }
    if (const std::string err = checkMacroPlacement(nl, DieId::kMacro, die); !err.empty()) {
      throw std::runtime_error("macro3d: illegal macro placement: " + err);
    }
    out.fp.die = die;
  }
  Netlist& nl = out.tile->netlist;
  const Rect die = out.fp.die;

  {
    // --- Step 2: memory-on-logic projection + combined BEOL ----------------
    obs::ScopedPhase phase("projection");
    projectMacroDieMacros(nl, *out.lib, out.logicTech);
    out.routingBeol = buildCombinedBeol(out.logicTech.beol, out.macroTech.beol,
                                        opt.f2fVia, opt.stackOrder);
    assert(out.routingBeol.validate().empty());
    phase.attr("combined_metals", out.routingBeol.numMetals());
    trace << "step2 projection: combined stack = " << out.routingBeol.orderString() << "\n";
    M3D_LOG(info) << "step2 projection done: combined stack = "
                  << out.routingBeol.orderString();

    out.fp.rowHeight = out.logicTech.rowHeight;
    out.fp.siteWidth = out.logicTech.siteWidth;
    // Logic-die macros (none in the MoL case study) block fully; projected
    // macro-die macros block only their filler-size substrate.
    out.fp.blockages = macroPlacementBlockages(nl, DieId::kLogic, opt.macroHalo / 2);
    {
      const auto proj = macroPlacementBlockages(nl, DieId::kMacro, 0);
      out.fp.blockages.insert(out.fp.blockages.end(), proj.begin(), proj.end());
    }
    assignPorts(nl, die);
  }

  // --- Step 3: standard 2D P&R on the superimposed design -------------------
  PipelineFlags flags;
  flags.preRouteOpt = opt.preRouteOpt;
  flags.postRouteOpt = opt.postRouteOpt;
  runPnrPipeline(out, opt, flags, trace);

  {
    // --- Step 4: die separation (validation only; results are final) --------
    obs::ScopedPhase phase("die_separation");
    const SeparatedDesign sep = separateDies(out, opt.stackOrder);
    phase.attr("f2f_bumps", static_cast<double>(sep.f2fBumps));
    trace << "step4 separation: logic-die wl_um=" << sep.logicDieWirelengthUm
          << " macro-die wl_um=" << sep.macroDieWirelengthUm << " bumps=" << sep.f2fBumps
          << "\n";
    M3D_LOG(info) << "step4 separation done: logic-die wl_um=" << sep.logicDieWirelengthUm
                  << " macro-die wl_um=" << sep.macroDieWirelengthUm
                  << " bumps=" << sep.f2fBumps;
  }

  out.metrics.flow = flowName(FlowKind::kMacro3D);
  out.metrics.tileName = cfg.name;
  out.metrics.footprintMm2 = displayMm2(dbu2ToUm2(die.area()));
  out.metrics.metalAreaMm2 =
      out.metrics.footprintMm2 * static_cast<double>(out.routingBeol.numMetals());
  out.trace = trace.str();
  finishFlowRun(out, opt, run);
  return out;
}

SeparatedDesign separateDies(const FlowOutput& out, MacroDieStackOrder order) {
  SeparatedDesign sep;
  const SeparatedBeols beols = separateBeol(out.routingBeol, order);
  sep.logicDieBeol = beols.logicDie;
  sep.macroDieBeol = beols.macroDie;
  sep.logicDieWirelengthUm = out.routes.wirelengthOfDieUm(out.routingBeol, DieId::kLogic);
  sep.macroDieWirelengthUm = out.routes.wirelengthOfDieUm(out.routingBeol, DieId::kMacro);
  sep.f2fBumps = out.routes.f2fBumps;
  return sep;
}

}  // namespace m3d
