#include "power/power.hpp"

#include <cassert>

namespace m3d {

PowerReport analyzePower(const Netlist& nl, const std::vector<NetParasitics>& paras, double vdd,
                         double freq, const PowerOptions& opt) {
  assert(static_cast<int>(paras.size()) == nl.numNets());
  PowerReport rep;
  rep.caps = capTotals(paras);

  // Switching energy per cycle: 0.5 * alpha * C * Vdd^2 per net.
  double switchingE = 0.0;
  for (NetId n = 0; n < nl.numNets(); ++n) {
    const double alpha = nl.net(n).isClock ? opt.clockToggleRate : opt.toggleRate;
    const double c = paras[static_cast<std::size_t>(n)].totalLoad();
    switchingE += 0.5 * alpha * c * vdd * vdd;
  }

  // Internal energy per cycle and leakage.
  double internalE = 0.0;
  double leakage = 0.0;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const CellType& c = nl.cellOf(i);
    // Clock buffers toggle at clock rate.
    bool onClock = false;
    const Instance& inst = nl.instance(i);
    for (std::size_t p = 0; p < c.pins.size(); ++p) {
      const NetId net = inst.pinNets[p];
      if (net != kInvalidId && c.pins[p].dir == PinDir::kOutput && nl.net(net).isClock) {
        onClock = true;
        break;
      }
    }
    const double alpha = onClock ? opt.clockToggleRate : opt.toggleRate;
    internalE += alpha * c.energyPerToggle;
    leakage += c.leakage;
  }

  rep.switchingW = switchingE * freq;
  rep.internalW = internalE * freq;
  rep.leakageW = leakage;
  rep.totalW = rep.switchingW + rep.internalW + rep.leakageW;
  rep.energyPerCycle = switchingE + internalE + leakage / freq;
  return rep;
}

}  // namespace m3d
