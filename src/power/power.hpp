#pragma once

/// \file power.hpp
/// Power analysis: switching (net capacitance), internal (cell energy per
/// toggle) and leakage, at a given clock frequency.
///
/// The paper's setup (Sec. V-1): toggle ratio 0.2 per clock cycle for inputs
/// and registers; power is reported at the typical corner; the efficiency
/// metric is Emean [fJ/cycle], "equivalent to power-per-megahertz".

#include "extract/extraction.hpp"
#include "netlist/netlist.hpp"

namespace m3d {

struct PowerOptions {
  double toggleRate = 0.2;       ///< signal-net toggles per cycle.
  double clockToggleRate = 2.0;  ///< clock nets toggle twice per cycle.
};

struct PowerReport {
  double switchingW = 0.0;   ///< net-capacitance switching power [W].
  double internalW = 0.0;    ///< cell-internal power [W].
  double leakageW = 0.0;     ///< [W]
  double totalW = 0.0;       ///< [W]
  double energyPerCycle = 0.0;  ///< Emean [J/cycle].
  CapTotals caps;            ///< pin/wire cap totals (Table II rows).
};

/// Analyzes power at supply \p vdd [V] and clock frequency \p freq [Hz].
PowerReport analyzePower(const Netlist& nl, const std::vector<NetParasitics>& paras, double vdd,
                         double freq, const PowerOptions& opt = PowerOptions{});

}  // namespace m3d
