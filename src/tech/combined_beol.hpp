#pragma once

/// \file combined_beol.hpp
/// The core Macro-3D trick (paper Sec. IV, step 2): build one BEOL stack that
/// represents the *full* double metal stack of an F2F-bonded pair of dies,
/// including the F2F bond layer as an ordinary cut layer, so that an
/// unmodified 2D router/extractor sees the physical reality of the 3D stack.
///
/// Macro-die layer names get the suffix "_MD" (layer names must be unique in
/// the combined stack), exactly as the paper describes: if the logic die has
/// M1..M6 and the macro die M1..M4, the combined stack is
///   M1 -> VIA12 -> ... -> M6 -> F2F_VIA -> <macro-die metals>.
///
/// The paper lists the macro-die metals in the order M1_MD..M4_MD after the
/// F2F via. Physically, the macro die is *flipped* in an F2F bond, so its
/// topmost metal (M4) is the one adjacent to the bond layer. We support both
/// orderings and default to the physically faithful flipped order; the
/// as-listed order is kept as an ablation (bench_beol_order) because it
/// changes how many macro-die vias a route must traverse to reach a macro
/// pin.

#include <string>

#include "tech/tech_node.hpp"

namespace m3d {

/// Ordering of macro-die metal layers above the F2F cut in the combined
/// stack.
enum class MacroDieStackOrder {
  /// Physically faithful: the macro die is flipped, its topmost metal is
  /// adjacent to the F2F bond layer (M4_MD right above F2F_VIA).
  kFlipped,
  /// The order as listed in the paper's text: M1_MD right above F2F_VIA.
  kAsListed,
};

/// Suffix appended to macro-die layer names in a combined stack.
inline constexpr const char* kMacroDieSuffix = "_MD";

/// True if \p layerName carries the macro-die suffix.
bool isMacroDieLayerName(const std::string& layerName);

/// Appends the macro-die suffix: "M3" -> "M3_MD".
std::string toMacroDieLayerName(const std::string& layerName);

/// Strips the macro-die suffix: "M3_MD" -> "M3". Returns the name unchanged
/// when the suffix is absent.
std::string stripMacroDieSuffix(const std::string& layerName);

/// Builds the combined double-die BEOL from the logic-die stack, the
/// macro-die stack and the F2F via specification.
///
/// All macro-die metal/cut layers are renamed with the "_MD" suffix and
/// tagged DieId::kMacro. Preferred routing directions of the macro-die
/// metals are re-assigned to continue the alternation of the combined stack
/// (a router requirement; commercial flows do the same via techlef editing).
Beol buildCombinedBeol(const Beol& logicDie, const Beol& macroDie, const F2fViaSpec& f2f,
                       MacroDieStackOrder order = MacroDieStackOrder::kFlipped);

/// Splits a combined stack back into its two per-die stacks (paper Sec. IV,
/// step 4 — die separation for GDSII generation). Macro-die layers get their
/// original names back and their original bottom-up order restored.
struct SeparatedBeols {
  Beol logicDie;
  Beol macroDie;
};
SeparatedBeols separateBeol(const Beol& combined, MacroDieStackOrder order);

}  // namespace m3d
