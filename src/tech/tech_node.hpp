#pragma once

/// \file tech_node.hpp
/// Process-technology description: placement site geometry, supply voltage
/// and the BEOL stack. A synthetic 28 nm-class planar node is provided as a
/// factory; its constants are calibrated to published numbers for that class
/// of technology (see makeTech28 documentation).

#include <string>

#include "geom/units.hpp"
#include "tech/beol.hpp"

namespace m3d {

/// Front-end + BEOL description of one die's technology.
struct TechNode {
  std::string name;
  Dbu siteWidth = 0;     ///< standard-cell placement site width [DBU].
  Dbu rowHeight = 0;     ///< standard-cell row height [DBU].
  double vdd = 0.0;      ///< supply voltage [V].
  Beol beol;             ///< metal stack of this die.

  /// Area of one placement site in DBU^2.
  std::int64_t siteArea() const {
    return static_cast<std::int64_t>(siteWidth) * static_cast<std::int64_t>(rowHeight);
  }
};

/// Builds a synthetic 28 nm-class high-k metal-gate planar technology with
/// \p numMetals metal layers (>= 2).
///
/// Calibration (typical published 28 nm-class values):
///  - site 0.2 um x row 1.2 um, Vdd 0.9 V
///  - 1x thin metals (M1..M4): pitch 0.10 um, R 4.0 ohm/um, C 0.20 fF/um
///  - 2x metals (M5+):         pitch 0.20 um, R 1.0 ohm/um, C 0.22 fF/um
///  - standard vias: 5 ohm, 0.05 fF, pitch 0.13 um
TechNode makeTech28(int numMetals);

/// Specification of the face-to-face hybrid wafer-bonding via layer. Default
/// values follow the paper (Sec. V-2): 1 um minimum pitch, 0.5 um x 0.5 um
/// size, 0.17 um height; extracted mean R 44 mOhm and C 1.0 fF per bump.
struct F2fViaSpec {
  Dbu pitch = umToDbu(1.0);
  Dbu size = umToDbu(0.5);
  Dbu height = umToDbu(0.17);
  double res = 0.044;    ///< [ohm]
  double cap = 1.0e-15;  ///< [F]
};

}  // namespace m3d
