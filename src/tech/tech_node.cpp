#include "tech/tech_node.hpp"

#include <cassert>

namespace m3d {

TechNode makeTech28(int numMetals) {
  assert(numMetals >= 2);
  TechNode t;
  t.name = "synth28";
  t.siteWidth = umToDbu(0.2);
  t.rowHeight = umToDbu(1.2);
  t.vdd = 0.9;

  for (int i = 0; i < numMetals; ++i) {
    MetalLayer m;
    m.name = "M" + std::to_string(i + 1);
    // Alternating preferred directions, M1 horizontal (row-parallel).
    m.dir = (i % 2 == 0) ? LayerDir::kHorizontal : LayerDir::kVertical;
    const bool thin = i < 4;  // 1x metals M1..M4, 1.5x above.
    m.pitch = thin ? umToDbu(0.10) : umToDbu(0.14);
    m.width = m.pitch / 2;
    m.rPerUm = thin ? 4.0 : 1.8;
    m.cPerUm = thin ? 0.20e-15 : 0.21e-15;
    m.die = DieId::kLogic;
    t.beol.addMetal(m);

    if (i + 1 < numMetals) {
      CutLayer c;
      c.name = "VIA" + std::to_string(i + 1) + std::to_string(i + 2);
      c.res = 5.0;
      c.cap = 0.05e-15;
      c.pitch = umToDbu(0.13);
      c.size = umToDbu(0.05);
      c.isF2f = false;
      c.die = DieId::kLogic;
      t.beol.addCut(c);
    }
  }
  assert(t.beol.validate().empty());
  return t;
}

}  // namespace m3d
