#include "tech/beol.hpp"

#include <sstream>

namespace m3d {

std::string Beol::orderString() const {
  std::ostringstream os;
  for (int i = 0; i < numMetals(); ++i) {
    if (i > 0) os << " -> ";
    os << metals_[static_cast<std::size_t>(i)].name;
    if (i < numCuts()) os << " -> " << cuts_[static_cast<std::size_t>(i)].name;
  }
  return os.str();
}

std::string Beol::validate() const {
  std::ostringstream err;
  if (metals_.empty()) {
    err << "stack has no metal layers; ";
  }
  if (!metals_.empty() && cuts_.size() != metals_.size() - 1) {
    err << "expected " << metals_.size() - 1 << " cut layers, got " << cuts_.size() << "; ";
  }
  for (std::size_t i = 0; i < metals_.size(); ++i) {
    const auto& m = metals_[i];
    if (m.pitch <= 0 || m.width <= 0) err << m.name << ": non-positive pitch/width; ";
    if (m.rPerUm < 0.0 || m.cPerUm < 0.0) err << m.name << ": negative RC; ";
    if (m.width > m.pitch) err << m.name << ": width exceeds pitch; ";
  }
  for (std::size_t i = 0; i < cuts_.size(); ++i) {
    const auto& c = cuts_[i];
    if (c.res < 0.0 || c.cap < 0.0) err << c.name << ": negative RC; ";
    if (c.pitch <= 0) err << c.name << ": non-positive pitch; ";
  }
  // Adjacent metals must alternate preferred direction for a routable stack.
  for (std::size_t i = 1; i < metals_.size(); ++i) {
    if (metals_[i].dir == metals_[i - 1].dir) {
      err << metals_[i].name << ": same preferred direction as " << metals_[i - 1].name << "; ";
    }
  }
  // Exactly one die boundary, and it must coincide with the F2F cut.
  int transitions = 0;
  for (std::size_t i = 1; i < metals_.size(); ++i) {
    if (metals_[i].die != metals_[i - 1].die) {
      ++transitions;
      if (i - 1 < cuts_.size() && !cuts_[i - 1].isF2f) {
        err << "die transition at " << metals_[i].name << " without F2F cut; ";
      }
    }
  }
  if (transitions > 1) err << "more than one die transition; ";
  int f2fCount = 0;
  for (const auto& c : cuts_) f2fCount += c.isF2f ? 1 : 0;
  if (f2fCount > 1) err << "more than one F2F cut layer; ";
  if (f2fCount == 1 && transitions != 1) err << "F2F cut present but no die transition; ";
  return err.str();
}

}  // namespace m3d
