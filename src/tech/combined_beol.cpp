#include "tech/combined_beol.hpp"

#include <algorithm>
#include <cassert>

namespace m3d {

namespace {

const std::string kSuffix = kMacroDieSuffix;

}  // namespace

bool isMacroDieLayerName(const std::string& layerName) {
  return layerName.size() > kSuffix.size() &&
         layerName.compare(layerName.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0;
}

std::string toMacroDieLayerName(const std::string& layerName) {
  assert(!isMacroDieLayerName(layerName));
  return layerName + kSuffix;
}

std::string stripMacroDieSuffix(const std::string& layerName) {
  if (!isMacroDieLayerName(layerName)) return layerName;
  return layerName.substr(0, layerName.size() - kSuffix.size());
}

Beol buildCombinedBeol(const Beol& logicDie, const Beol& macroDie, const F2fViaSpec& f2f,
                       MacroDieStackOrder order) {
  assert(logicDie.validate().empty());
  assert(macroDie.validate().empty());
  assert(!logicDie.isCombined() && !macroDie.isCombined());

  Beol out;
  // Logic-die layers are kept verbatim.
  for (int i = 0; i < logicDie.numMetals(); ++i) {
    out.addMetal(logicDie.metal(i));
    if (i < logicDie.numCuts()) out.addCut(logicDie.cut(i));
  }

  // The F2F bond layer appears as an ordinary cut layer.
  CutLayer bond;
  bond.name = "F2F_VIA";
  bond.res = f2f.res;
  bond.cap = f2f.cap;
  bond.pitch = f2f.pitch;
  bond.size = f2f.size;
  bond.isF2f = true;
  bond.die = DieId::kLogic;
  out.addCut(bond);

  // Macro-die layers, renamed with the _MD suffix. kFlipped appends them
  // top-metal first (physically faithful F2F orientation); kAsListed appends
  // them bottom-metal first as the paper's text enumerates them.
  const int n = macroDie.numMetals();
  LayerDir nextDir = orthogonal(out.metal(out.numMetals() - 1).dir);
  for (int k = 0; k < n; ++k) {
    const int i = (order == MacroDieStackOrder::kFlipped) ? (n - 1 - k) : k;
    MetalLayer m = macroDie.metal(i);
    m.name = toMacroDieLayerName(m.name);
    m.die = DieId::kMacro;
    // Re-assign direction to continue the alternation of the combined stack.
    m.dir = nextDir;
    nextDir = orthogonal(nextDir);
    out.addMetal(m);

    if (k + 1 < n) {
      const int ci = (order == MacroDieStackOrder::kFlipped) ? (n - 2 - k) : k;
      CutLayer c = macroDie.cut(ci);
      c.name = toMacroDieLayerName(c.name);
      c.die = DieId::kMacro;
      out.addCut(c);
    }
  }

  out.setMacroDieFlipped(order == MacroDieStackOrder::kFlipped);
  assert(out.validate().empty());
  return out;
}

SeparatedBeols separateBeol(const Beol& combined, MacroDieStackOrder order) {
  assert(combined.isCombined());
  SeparatedBeols out;

  const int f2f = *combined.f2fCutIndex();
  for (int i = 0; i <= f2f; ++i) {
    out.logicDie.addMetal(combined.metal(i));
    if (i < f2f) out.logicDie.addCut(combined.cut(i));
  }

  // Collect the macro-die slice (above the F2F cut) bottom-to-top of the
  // combined stack.
  std::vector<MetalLayer> metals;
  std::vector<CutLayer> cuts;
  for (int i = f2f + 1; i < combined.numMetals(); ++i) {
    metals.push_back(combined.metal(i));
    if (i < combined.numCuts()) cuts.push_back(combined.cut(i));
  }
  if (order == MacroDieStackOrder::kFlipped) {
    std::reverse(metals.begin(), metals.end());
    std::reverse(cuts.begin(), cuts.end());
  }
  for (std::size_t k = 0; k < metals.size(); ++k) {
    MetalLayer m = metals[k];
    m.name = stripMacroDieSuffix(m.name);
    m.die = DieId::kLogic;  // standalone stack again
    out.macroDie.addMetal(m);
    if (k < cuts.size()) {
      CutLayer c = cuts[k];
      c.name = stripMacroDieSuffix(c.name);
      c.die = DieId::kLogic;
      out.macroDie.addCut(c);
    }
  }
  return out;
}

}  // namespace m3d
