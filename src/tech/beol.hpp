#pragma once

/// \file beol.hpp
/// Ordered back-end-of-line (BEOL) stack: metal layers with cut layers
/// between adjacent metals. A combined F2F stack (logic die + macro die) is
/// also represented as a single Beol — that uniformity is the core of the
/// Macro-3D methodology: the router and extractor never special-case 3D.

#include <cassert>
#include <optional>
#include <string>
#include <vector>

#include "tech/layer.hpp"

namespace m3d {

class Beol {
 public:
  Beol() = default;

  /// Appends a metal layer on top of the current stack. If the stack already
  /// has a metal, a cut layer must have been added first (strict alternation).
  void addMetal(const MetalLayer& m) {
    assert(metals_.size() == cuts_.size() && "must add a cut layer before the next metal");
    metals_.push_back(m);
  }

  /// Appends a cut layer above the current topmost metal.
  void addCut(const CutLayer& c) {
    assert(metals_.size() == cuts_.size() + 1 && "cut layer requires a metal below it");
    cuts_.push_back(c);
  }

  int numMetals() const { return static_cast<int>(metals_.size()); }
  int numCuts() const { return static_cast<int>(cuts_.size()); }

  const MetalLayer& metal(int i) const { return metals_[static_cast<std::size_t>(i)]; }
  MetalLayer& metal(int i) { return metals_[static_cast<std::size_t>(i)]; }
  /// Cut layer i connects metal(i) and metal(i+1).
  const CutLayer& cut(int i) const { return cuts_[static_cast<std::size_t>(i)]; }
  CutLayer& cut(int i) { return cuts_[static_cast<std::size_t>(i)]; }

  const std::vector<MetalLayer>& metals() const { return metals_; }
  const std::vector<CutLayer>& cuts() const { return cuts_; }

  /// Index of the metal layer with the given name, or nullopt.
  std::optional<int> findMetal(const std::string& name) const {
    for (int i = 0; i < numMetals(); ++i) {
      if (metals_[static_cast<std::size_t>(i)].name == name) return i;
    }
    return std::nullopt;
  }

  /// Index of the F2F cut layer, or nullopt for a plain 2D stack.
  std::optional<int> f2fCutIndex() const {
    for (int i = 0; i < numCuts(); ++i) {
      if (cuts_[static_cast<std::size_t>(i)].isF2f) return i;
    }
    return std::nullopt;
  }

  /// True when the stack spans two dies (contains an F2F cut layer).
  bool isCombined() const { return f2fCutIndex().has_value(); }

  /// Whether the macro-die layers appear in flipped (physically faithful
  /// F2F) order: the macro die's top metal adjacent to the F2F cut and its
  /// substrate at the top of the combined stack. Affects which via of an
  /// obstructed macro-die layer points toward the macro substrate.
  void setMacroDieFlipped(bool flipped) { macroDieFlipped_ = flipped; }
  bool macroDieFlipped() const { return macroDieFlipped_; }

  /// Number of metal layers belonging to \p die.
  int numMetalsOfDie(DieId die) const {
    int n = 0;
    for (const auto& m : metals_) n += (m.die == die) ? 1 : 0;
    return n;
  }

  /// Topmost metal index belonging to \p die, or -1 if none.
  int topMetalOfDie(DieId die) const {
    for (int i = numMetals() - 1; i >= 0; --i) {
      if (metals_[static_cast<std::size_t>(i)].die == die) return i;
    }
    return -1;
  }

  /// Human-readable bottom-to-top layer order, e.g.
  /// "M1 VIA12 M2 ... M6 F2F_VIA M4_MD ... M1_MD".
  std::string orderString() const;

  /// Validates alternation and monotonicity invariants; returns a diagnostic
  /// string (empty when valid).
  std::string validate() const;

 private:
  std::vector<MetalLayer> metals_;
  std::vector<CutLayer> cuts_;
  bool macroDieFlipped_ = false;
};

}  // namespace m3d
