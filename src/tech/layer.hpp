#pragma once

/// \file layer.hpp
/// Metal and cut (via) layer descriptions of a back-end-of-line (BEOL) stack.

#include <string>

#include "geom/units.hpp"

namespace m3d {

/// Preferred routing direction of a metal layer.
enum class LayerDir { kHorizontal, kVertical };

inline LayerDir orthogonal(LayerDir d) {
  return d == LayerDir::kHorizontal ? LayerDir::kVertical : LayerDir::kHorizontal;
}

/// Which physical die a layer of a (possibly combined) BEOL belongs to.
enum class DieId { kLogic, kMacro };

/// A routing (metal) layer.
struct MetalLayer {
  std::string name;          ///< e.g. "M3" or "M3_MD" in a combined stack.
  LayerDir dir = LayerDir::kHorizontal;
  Dbu pitch = 0;             ///< routing track pitch [DBU].
  Dbu width = 0;             ///< default wire width [DBU].
  double rPerUm = 0.0;       ///< wire resistance per um at default width [ohm/um].
  double cPerUm = 0.0;       ///< wire capacitance per um [F/um].
  DieId die = DieId::kLogic; ///< physical die of this layer.
};

/// A cut (via) layer connecting metal index i to metal index i+1 of the stack.
struct CutLayer {
  std::string name;          ///< e.g. "VIA12", "VIA12_MD" or "F2F_VIA".
  double res = 0.0;          ///< per-via resistance [ohm].
  double cap = 0.0;          ///< per-via capacitance [F].
  Dbu pitch = 0;             ///< minimum center-to-center via pitch [DBU].
  Dbu size = 0;              ///< via cut edge length [DBU].
  bool isF2f = false;        ///< true for the face-to-face bond layer.
  DieId die = DieId::kLogic; ///< physical die (F2F belongs to both; tagged kLogic).
};

}  // namespace m3d
