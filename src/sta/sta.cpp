#include "sta/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/parallel.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace m3d {

namespace {
constexpr double kNoArrival = -1e30;
/// Pins per parallelFor chunk inside one topological level.
constexpr std::int64_t kLevelGrain = 64;
}

Sta::Sta(const Netlist& nl, const std::vector<NetParasitics>& paras, const ClockModel* clock,
         Corner corner, int numThreads)
    : nl_(nl), paras_(paras), clock_(clock), corner_(corner), numThreads_(numThreads) {
  assert(static_cast<int>(paras.size()) == nl.numNets());
  assert(corner_.delayDerate > 0.0);
  build();
}

int Sta::pinId(const NetPin& p) const {
  if (p.kind == NetPin::Kind::kPort) return p.port;
  return instPinBase_[static_cast<std::size_t>(p.inst)] + p.libPin;
}

NetPin Sta::pinOf(int id) const {
  if (id < numPortPins_) return NetPin::makePort(id);
  // Binary search the instance owning this pin id.
  const auto it = std::upper_bound(instPinBase_.begin(), instPinBase_.end(), id);
  const InstId inst = static_cast<InstId>(it - instPinBase_.begin()) - 1;
  return NetPin::makeInstPin(inst, id - instPinBase_[static_cast<std::size_t>(inst)]);
}

namespace {
/// Non-clock timing arcs into output pin \p libPin of cell \p c, ordered by
/// from-pin ascending (declaration order breaks ties). This is the one
/// canonical fanin-row order for cell arcs: build() and applyResize() both
/// derive rows from it, so an incremental row patch reproduces the
/// from-scratch row bit for bit.
void collectCombArcsInto(const CellType& c, int libPin, std::vector<const TimingArc*>& out) {
  out.clear();
  for (const TimingArc& a : c.arcs) {
    if (a.toPin != libPin) continue;
    if (c.pins[static_cast<std::size_t>(a.fromPin)].isClock) continue;
    out.push_back(&a);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TimingArc* a, const TimingArc* b) { return a->fromPin < b->fromPin; });
}
}  // namespace

void Sta::build() {
  // Pin id layout: ports first, then instance pins — appending an instance
  // appends pin ids, which is what makes the graph growable in place.
  numPortPins_ = nl_.numPorts();
  instPinBase_.assign(static_cast<std::size_t>(nl_.numInstances()), 0);
  int next = numPortPins_;
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    instPinBase_[static_cast<std::size_t>(i)] = next;
    next += static_cast<int>(nl_.cellOf(i).pins.size());
  }
  numPins_ = next;
  const std::size_t np = static_cast<std::size_t>(numPins_);

  // Net loads.
  netLoad_.resize(static_cast<std::size_t>(nl_.numNets()));
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    netLoad_[static_cast<std::size_t>(n)] = paras_[static_cast<std::size_t>(n)].totalLoad();
  }

  // Launch arcs (CK->Q of sequential cells), sorted by toPin, and the
  // endpoint set (data pins of seq cells / macros, then output ports).
  launchArcs_.clear();
  isLaunchPin_.assign(np, 0);
  endpoints_.clear();
  hasHalfCycleInput_ = false;
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    const CellType& c = nl_.cellOf(i);
    const int base = instPinBase_[static_cast<std::size_t>(i)];
    const std::size_t firstArc = launchArcs_.size();
    for (const TimingArc& a : c.arcs) {
      if (!c.pins[static_cast<std::size_t>(a.fromPin)].isClock) continue;
      launchArcs_.push_back({base + a.fromPin, base + a.toPin, a.intrinsic, a.driveRes});
    }
    std::stable_sort(launchArcs_.begin() + static_cast<std::ptrdiff_t>(firstArc),
                     launchArcs_.end(),
                     [](const Arc& a, const Arc& b) { return a.toPin < b.toPin; });
    for (std::size_t k = firstArc; k < launchArcs_.size(); ++k) {
      isLaunchPin_[static_cast<std::size_t>(launchArcs_[k].toPin)] = 1;
    }
    if (c.isSequential() || c.isMacro()) {
      for (int p = 0; p < static_cast<int>(c.pins.size()); ++p) {
        const LibPin& lp = c.pins[static_cast<std::size_t>(p)];
        if (lp.dir == PinDir::kInput && !lp.isClock) endpoints_.push_back(base + p);
      }
    }
  }
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    const Port& port = nl_.port(p);
    if (port.dir == PinDir::kOutput) endpoints_.push_back(p);
    if (port.dir == PinDir::kInput && !port.isClock && port.halfCycle) hasHalfCycleInput_ = true;
  }

  // Wire edges keyed by sink (a pin is a sink of at most one net).
  std::vector<int> wireSrc(np, -1);
  std::vector<double> wireDelay(np, 0.0);
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    const Net& net = nl_.net(n);
    if (net.driverIdx < 0) continue;
    const int u = pinId(net.pins[static_cast<std::size_t>(net.driverIdx)]);
    const NetParasitics& pp = paras_[static_cast<std::size_t>(n)];
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      const int v = pinId(net.pins[static_cast<std::size_t>(k)]);
      wireSrc[static_cast<std::size_t>(v)] = u;
      wireDelay[static_cast<std::size_t>(v)] =
          corner_.delayDerate * pp.sinkWireDelay[static_cast<std::size_t>(k)];
    }
  }

  // Fanin CSR, one row per pin in pin-id order. Rows are homogeneous: a net
  // sink (input pin / output port) carries exactly its one wire edge; an
  // instance output pin carries exactly its cell arcs. Delays are fully
  // derated; faninArc_ keeps the cell-arc coefficients for re-derivation.
  faninStart_.assign(np + 1, 0);
  fanins_.clear();
  faninArc_.clear();
  std::vector<const TimingArc*> arcScratch;
  for (int v = 0; v < numPins_; ++v) {
    faninStart_[static_cast<std::size_t>(v)] = static_cast<int>(fanins_.size());
    if (wireSrc[static_cast<std::size_t>(v)] >= 0) {
      fanins_.push_back({wireSrc[static_cast<std::size_t>(v)], wireDelay[static_cast<std::size_t>(v)]});
      faninArc_.push_back({});
      continue;
    }
    if (v < numPortPins_) continue;
    const NetPin ip = pinOf(v);
    const CellType& c = nl_.cellOf(ip.inst);
    if (c.pins[static_cast<std::size_t>(ip.libPin)].dir != PinDir::kOutput) continue;
    const NetId outNet = nl_.instance(ip.inst).pinNets[static_cast<std::size_t>(ip.libPin)];
    const double load = outNet != kInvalidId ? netLoad_[static_cast<std::size_t>(outNet)] : 0.0;
    const int base = instPinBase_[static_cast<std::size_t>(ip.inst)];
    collectCombArcsInto(c, ip.libPin, arcScratch);
    for (const TimingArc* a : arcScratch) {
      fanins_.push_back(
          {base + a->fromPin, corner_.delayDerate * (a->intrinsic + a->driveRes * load)});
      faninArc_.push_back({a->intrinsic, a->driveRes});
    }
  }
  faninStart_[np] = static_cast<int>(fanins_.size());

  // Fanout mirror (for cone expansion and incremental level recompute).
  fanout_.assign(np, {});
  for (int v = 0; v < numPins_; ++v) {
    for (int e = faninStart_[static_cast<std::size_t>(v)];
         e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
      fanout_[static_cast<std::size_t>(fanins_[static_cast<std::size_t>(e)].fromPin)].push_back(v);
    }
  }

  // Levels via Kahn over the fanin edges (doubles as the cycle check):
  // level(v) = 1 + max level over fanin sources, final when v pops because
  // all of its sources popped first.
  level_.assign(np, 0);
  {
    std::vector<int> indeg(np, 0);
    for (int v = 0; v < numPins_; ++v) {
      indeg[static_cast<std::size_t>(v)] =
          faninStart_[static_cast<std::size_t>(v) + 1] - faninStart_[static_cast<std::size_t>(v)];
    }
    std::vector<int> queue;
    queue.reserve(np);
    for (int v = 0; v < numPins_; ++v) {
      if (indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const int v = queue[qi];
      int lv = 0;
      for (int e = faninStart_[static_cast<std::size_t>(v)];
           e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
        lv = std::max(
            lv, level_[static_cast<std::size_t>(fanins_[static_cast<std::size_t>(e)].fromPin)] + 1);
      }
      level_[static_cast<std::size_t>(v)] = lv;
      for (const int f : fanout_[static_cast<std::size_t>(v)]) {
        if (--indeg[static_cast<std::size_t>(f)] == 0) queue.push_back(f);
      }
    }
    assert(static_cast<int>(queue.size()) == numPins_ && "combinational cycle detected");
    (void)queue;
  }
  levelBucketsDirty_ = true;

  // Drop caches; the first query runs a full sweep.
  arrValid_ = false;
  paramValid_ = false;
  pendingArr_.clear();
  pendingParam_.clear();
  coneStamp_.clear();
  coneEpoch_ = 0;
}

void Sta::rebuildAll() {
  build();
}

void Sta::markDirty(int pin) const {
  pendingArr_.push_back(pin);
  pendingParam_.push_back(pin);
}

void Sta::ensureLevels() const {
  if (!levelBucketsDirty_) return;
  const std::size_t np = static_cast<std::size_t>(numPins_);
  int numLevels = 1;
  for (const int lv : level_) numLevels = std::max(numLevels, lv + 1);
  levelStart_.assign(static_cast<std::size_t>(numLevels) + 1, 0);
  for (std::size_t v = 0; v < np; ++v) ++levelStart_[static_cast<std::size_t>(level_[v]) + 1];
  for (int l = 0; l < numLevels; ++l) {
    levelStart_[static_cast<std::size_t>(l) + 1] += levelStart_[static_cast<std::size_t>(l)];
  }
  levelNodes_.resize(np);
  {
    std::vector<int> cursor(levelStart_.begin(), levelStart_.end() - 1);
    // Pin-id order within each level (iterate ids ascending).
    for (int v = 0; v < numPins_; ++v) {
      levelNodes_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(level_[static_cast<std::size_t>(v)])]++)] = v;
    }
  }
  levelBucketsDirty_ = false;
  obs::gauge("sta.levels").set(static_cast<double>(numLevels));
}

void Sta::recomputeLevels(const std::vector<int>& seeds) {
  // Worklist relaxation: recompute level(v) from its fanins; on change push
  // the fanouts. Structural edits only deepen paths, so levels ratchet up
  // and the loop terminates. A stale queue entry just recomputes to the
  // same value.
  std::vector<int> work(seeds);
  std::vector<std::uint8_t> inQueue(static_cast<std::size_t>(numPins_), 0);
  for (const int s : work) inQueue[static_cast<std::size_t>(s)] = 1;
  for (std::size_t qi = 0; qi < work.size(); ++qi) {
    const int v = work[qi];
    inQueue[static_cast<std::size_t>(v)] = 0;
    int lv = 0;
    for (int e = faninStart_[static_cast<std::size_t>(v)];
         e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
      lv = std::max(
          lv, level_[static_cast<std::size_t>(fanins_[static_cast<std::size_t>(e)].fromPin)] + 1);
    }
    if (lv == level_[static_cast<std::size_t>(v)]) continue;
    level_[static_cast<std::size_t>(v)] = lv;
    levelBucketsDirty_ = true;
    for (const int f : fanout_[static_cast<std::size_t>(v)]) {
      if (!inQueue[static_cast<std::size_t>(f)]) {
        inQueue[static_cast<std::size_t>(f)] = 1;
        work.push_back(f);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental edit API

void Sta::invalidateNet(NetId n) {
  assert(n >= 0 && static_cast<std::size_t>(n) < paras_.size());
  if (static_cast<std::size_t>(n) >= netLoad_.size()) {
    netLoad_.resize(static_cast<std::size_t>(nl_.numNets()), 0.0);
  }
  const NetParasitics& pp = paras_[static_cast<std::size_t>(n)];
  netLoad_[static_cast<std::size_t>(n)] = pp.totalLoad();
  const Net& net = nl_.net(n);
  if (net.driverIdx < 0) return;
  const int u = pinId(net.pins[static_cast<std::size_t>(net.driverIdx)]);
  for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
    if (k == net.driverIdx) continue;
    const int v = pinId(net.pins[static_cast<std::size_t>(k)]);
    const int e = faninStart_[static_cast<std::size_t>(v)];
    assert(faninStart_[static_cast<std::size_t>(v) + 1] - e == 1 && "net sink must have one wire fanin");
    assert(fanins_[static_cast<std::size_t>(e)].fromPin == u && "stale wire edge; missing applyBufferInsertion?");
    fanins_[static_cast<std::size_t>(e)].delay =
        corner_.delayDerate * pp.sinkWireDelay[static_cast<std::size_t>(k)];
    markDirty(v);
  }
  // The driver's own cell arcs see the new load; a CK->Q launch seed reads
  // netLoad_ live, so marking the pin dirty is enough there.
  bool driverDirty = false;
  for (int e = faninStart_[static_cast<std::size_t>(u)];
       e < faninStart_[static_cast<std::size_t>(u) + 1]; ++e) {
    fanins_[static_cast<std::size_t>(e)].delay =
        corner_.delayDerate * (faninArc_[static_cast<std::size_t>(e)].intrinsic +
                               faninArc_[static_cast<std::size_t>(e)].driveRes *
                                   netLoad_[static_cast<std::size_t>(n)]);
    driverDirty = true;
  }
  if (u >= numPortPins_ && isLaunchPin_[static_cast<std::size_t>(u)]) driverDirty = true;
  if (driverDirty) markDirty(u);
}

void Sta::invalidateNets(const std::vector<NetId>& nets) {
  for (const NetId n : nets) invalidateNet(n);
}

void Sta::invalidateAllNets() {
  for (NetId n = 0; n < nl_.numNets(); ++n) invalidateNet(n);
  // A whole-design refresh re-sweeps everything anyway; resetting the
  // caches runs it as a plain full sweep instead of an aborted cone (which
  // would count as a fallback in the telemetry).
  arrValid_ = false;
  paramValid_ = false;
  pendingArr_.clear();
  pendingParam_.clear();
}

void Sta::applyResize(InstId inst) {
  const CellType& c = nl_.cellOf(inst);
  const Instance& in = nl_.instance(inst);
  const int base = instPinBase_[static_cast<std::size_t>(inst)];
  std::vector<const TimingArc*> arcScratch;
  for (int p = 0; p < static_cast<int>(c.pins.size()); ++p) {
    if (c.pins[static_cast<std::size_t>(p)].dir != PinDir::kOutput) continue;
    const int v = base + p;
    collectCombArcsInto(c, p, arcScratch);
    const int rb = faninStart_[static_cast<std::size_t>(v)];
    const int re = faninStart_[static_cast<std::size_t>(v) + 1];
    if (re - rb != static_cast<int>(arcScratch.size())) {
      // The new master declares a different arc set — a CSR row would have
      // to change size. Not a shape the drive families produce; degrade to
      // a full rebuild rather than corrupt the graph.
      M3D_LOG(warn) << "sta applyResize: arc count changed for " << in.name
                    << "; rebuilding timing graph";
      rebuildAll();
      return;
    }
    const NetId outNet = in.pinNets[static_cast<std::size_t>(p)];
    const double load = outNet != kInvalidId ? netLoad_[static_cast<std::size_t>(outNet)] : 0.0;
    for (int i = 0; i < static_cast<int>(arcScratch.size()); ++i) {
      const TimingArc* a = arcScratch[static_cast<std::size_t>(i)];
      fanins_[static_cast<std::size_t>(rb + i)] = {
          base + a->fromPin, corner_.delayDerate * (a->intrinsic + a->driveRes * load)};
      faninArc_[static_cast<std::size_t>(rb + i)] = {a->intrinsic, a->driveRes};
    }
    if (re > rb) markDirty(v);
  }

  // CK->Q launch arcs of the new master replace the instance's old block
  // (launchArcs_ is sorted by toPin, and all of an instance's pins are a
  // contiguous id range, so its arcs are a contiguous block).
  std::vector<Arc> fresh;
  for (const TimingArc& a : c.arcs) {
    if (!c.pins[static_cast<std::size_t>(a.fromPin)].isClock) continue;
    fresh.push_back({base + a.fromPin, base + a.toPin, a.intrinsic, a.driveRes});
  }
  std::stable_sort(fresh.begin(), fresh.end(),
                   [](const Arc& a, const Arc& b) { return a.toPin < b.toPin; });
  const auto lo = std::lower_bound(launchArcs_.begin(), launchArcs_.end(), base,
                                   [](const Arc& a, int pin) { return a.toPin < pin; });
  const int hiPin = base + static_cast<int>(c.pins.size());
  auto hi = lo;
  while (hi != launchArcs_.end() && hi->toPin < hiPin) ++hi;
  for (auto it = lo; it != hi; ++it) {
    isLaunchPin_[static_cast<std::size_t>(it->toPin)] = 0;
    markDirty(it->toPin);
  }
  const auto at = launchArcs_.erase(lo, hi);
  launchArcs_.insert(at, fresh.begin(), fresh.end());
  for (const Arc& a : fresh) {
    isLaunchPin_[static_cast<std::size_t>(a.toPin)] = 1;
    markDirty(a.toPin);
  }
}

void Sta::applyBufferInsertion(InstId buf, NetId drivenNet, NetId newNet) {
  assert(buf == nl_.numInstances() - 1 && "buffer must be the newest instance");
  assert(static_cast<int>(instPinBase_.size()) == buf && "one applyBufferInsertion per addInstance");
  const CellType& c = nl_.cellOf(buf);
  assert(!c.isSequential() && !c.isMacro() && "only combinational cells can be inserted");
  (void)drivenNet;

  const int base = numPins_;
  instPinBase_.push_back(base);
  const int nPins = static_cast<int>(c.pins.size());
  const std::size_t np = static_cast<std::size_t>(base + nPins);
  isLaunchPin_.resize(np, 0);
  fanout_.resize(np);
  level_.resize(np, 0);
  levelBucketsDirty_ = true;
  arr_.resize(np, kNoArrival);
  pred_.resize(np, -1);
  arr0_.resize(np, kNoArrival);
  arrH_.resize(np, kNoArrival);
  if (coneStamp_.size() < np) coneStamp_.resize(np, 0);
  netLoad_.resize(static_cast<std::size_t>(nl_.numNets()), 0.0);

  // Fanin rows of the new pins, appended in pin order. Delays start at 0
  // and are patched by the mandatory invalidateNets({drivenNet, newNet}).
  const Instance& in = nl_.instance(buf);
  std::vector<const TimingArc*> arcScratch;
  std::vector<int> seeds;
  for (int p = 0; p < nPins; ++p) {
    const int v = base + p;
    markDirty(v);
    seeds.push_back(v);
    if (c.pins[static_cast<std::size_t>(p)].dir == PinDir::kInput) {
      const NetId n = in.pinNets[static_cast<std::size_t>(p)];
      if (n != kInvalidId && nl_.net(n).driverIdx >= 0) {
        const Net& net = nl_.net(n);
        const int u = pinId(net.pins[static_cast<std::size_t>(net.driverIdx)]);
        fanins_.push_back({u, 0.0});
        faninArc_.push_back({});
        fanout_[static_cast<std::size_t>(u)].push_back(v);
      }
    } else {
      collectCombArcsInto(c, p, arcScratch);
      for (const TimingArc* a : arcScratch) {
        fanins_.push_back({base + a->fromPin, 0.0});
        faninArc_.push_back({a->intrinsic, a->driveRes});
        fanout_[static_cast<std::size_t>(base + a->fromPin)].push_back(v);
      }
    }
    faninStart_.push_back(static_cast<int>(fanins_.size()));
  }
  numPins_ = base + nPins;

  // Repoint the wire edge of every sink that moved onto the buffered net.
  const Net& nn = nl_.net(newNet);
  assert(nn.driverIdx >= 0);
  const int yPin = pinId(nn.pins[static_cast<std::size_t>(nn.driverIdx)]);
  for (int k = 0; k < static_cast<int>(nn.pins.size()); ++k) {
    if (k == nn.driverIdx) continue;
    const int v = pinId(nn.pins[static_cast<std::size_t>(k)]);
    if (v >= base) continue;  // the buffer's own pins were just built
    const int e = faninStart_[static_cast<std::size_t>(v)];
    assert(faninStart_[static_cast<std::size_t>(v) + 1] - e == 1);
    const int uOld = fanins_[static_cast<std::size_t>(e)].fromPin;
    if (uOld != yPin) {
      auto& fo = fanout_[static_cast<std::size_t>(uOld)];
      fo.erase(std::find(fo.begin(), fo.end(), v));
      fanins_[static_cast<std::size_t>(e)].fromPin = yPin;
      fanout_[static_cast<std::size_t>(yPin)].push_back(v);
    }
    markDirty(v);
    seeds.push_back(v);
  }

  recomputeLevels(seeds);
}

// ---------------------------------------------------------------------------
// Arrival sweeps

bool Sta::recomputeArr(int v, double period) const {
  // One pin's full pull: launch seed as the initial best, then every fanin
  // edge in CSR row order with a strict compare — exactly the full sweep's
  // per-pin computation, so a cone update that reruns it on final fanin
  // values reproduces the from-scratch arrival and predecessor bit for bit.
  double best = kNoArrival;
  int bestPred = -1;
  if (v < numPortPins_) {
    const Port& port = nl_.port(v);
    if (port.dir == PinDir::kInput && !port.isClock) {
      best = port.halfCycle ? period / 2.0 : 0.0;
    }
  } else if (isLaunchPin_[static_cast<std::size_t>(v)]) {
    auto it = std::lower_bound(launchArcs_.begin(), launchArcs_.end(), v,
                               [](const Arc& a, int pin) { return a.toPin < pin; });
    const NetPin qp = pinOf(v);
    const Instance& inst = nl_.instance(qp.inst);
    const double lat = clock_ ? clock_->latencyOf(qp.inst) : 0.0;
    for (; it != launchArcs_.end() && it->toPin == v; ++it) {
      const NetId qNet = inst.pinNets[static_cast<std::size_t>(qp.libPin)];
      if (qNet == kInvalidId) continue;
      const double t = lat + corner_.delayDerate *
                                 (it->intrinsic + it->driveRes * netLoad_[static_cast<std::size_t>(qNet)]);
      if (t > best) best = t;
    }
  }
  for (int e = faninStart_[static_cast<std::size_t>(v)];
       e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
    const FaninEdge& fe = fanins_[static_cast<std::size_t>(e)];
    const double au = arr_[static_cast<std::size_t>(fe.fromPin)];
    if (au <= kNoArrival) continue;
    const double cand = au + fe.delay;
    if (cand > best) {
      best = cand;
      bestPred = fe.fromPin;
    }
  }
  const bool changed = arr_[static_cast<std::size_t>(v)] != best;
  arr_[static_cast<std::size_t>(v)] = best;
  pred_[static_cast<std::size_t>(v)] = bestPred;
  return changed;
}

bool Sta::recomputeParam(int v) const {
  // Parametric pair: arr0 carries fixed-time launches (full-cycle ports,
  // CK->Q), arrH carries half-cycle launches with the T/2 offset factored
  // out. Arc delays are period-independent, so one sweep of this pair
  // determines the arrival at any period.
  double b0 = kNoArrival;
  double bH = kNoArrival;
  if (v < numPortPins_) {
    const Port& port = nl_.port(v);
    if (port.dir == PinDir::kInput && !port.isClock) {
      (port.halfCycle ? bH : b0) = 0.0;
    }
  } else if (isLaunchPin_[static_cast<std::size_t>(v)]) {
    auto it = std::lower_bound(launchArcs_.begin(), launchArcs_.end(), v,
                               [](const Arc& a, int pin) { return a.toPin < pin; });
    const NetPin qp = pinOf(v);
    const Instance& inst = nl_.instance(qp.inst);
    const double lat = clock_ ? clock_->latencyOf(qp.inst) : 0.0;
    for (; it != launchArcs_.end() && it->toPin == v; ++it) {
      const NetId qNet = inst.pinNets[static_cast<std::size_t>(qp.libPin)];
      if (qNet == kInvalidId) continue;
      const double t = lat + corner_.delayDerate *
                                 (it->intrinsic + it->driveRes * netLoad_[static_cast<std::size_t>(qNet)]);
      if (t > b0) b0 = t;
    }
  }
  for (int e = faninStart_[static_cast<std::size_t>(v)];
       e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
    const FaninEdge& fe = fanins_[static_cast<std::size_t>(e)];
    const double a0 = arr0_[static_cast<std::size_t>(fe.fromPin)];
    if (a0 > kNoArrival) b0 = std::max(b0, a0 + fe.delay);
    const double aH = arrH_[static_cast<std::size_t>(fe.fromPin)];
    if (aH > kNoArrival) bH = std::max(bH, aH + fe.delay);
  }
  const bool changed =
      arr0_[static_cast<std::size_t>(v)] != b0 || arrH_[static_cast<std::size_t>(v)] != bH;
  arr0_[static_cast<std::size_t>(v)] = b0;
  arrH_[static_cast<std::size_t>(v)] = bH;
  return changed;
}

template <typename Recompute>
std::int64_t Sta::coneSweep(const std::vector<int>& seeds, Recompute&& re) const {
  // Levelized worklist: process the dirty set level by level, re-pulling
  // each active pin and expanding over the fanouts of pins whose value
  // changed. Deterministic at any thread count: the active set per level is
  // a pure function of the values (sorted by pin id before processing),
  // each pin writes only its own slot, and expansion happens sequentially
  // after the level's parallel region. Returns pins visited, or -1 once the
  // cone exceeds coneFallbackRatio_ * numPins (caller runs a full sweep).
  ensureLevels();
  const int numLevels = static_cast<int>(levelStart_.size()) - 1;
  if (static_cast<int>(coneActive_.size()) < numLevels) coneActive_.resize(static_cast<std::size_t>(numLevels));
  if (coneStamp_.size() < static_cast<std::size_t>(numPins_)) {
    coneStamp_.assign(static_cast<std::size_t>(numPins_), 0);
    coneEpoch_ = 0;
  }
  if (++coneEpoch_ == 0) {
    std::fill(coneStamp_.begin(), coneStamp_.end(), 0);
    coneEpoch_ = 1;
  }
  const auto push = [&](int v) {
    if (coneStamp_[static_cast<std::size_t>(v)] == coneEpoch_) return;
    coneStamp_[static_cast<std::size_t>(v)] = coneEpoch_;
    coneActive_[static_cast<std::size_t>(level_[static_cast<std::size_t>(v)])].push_back(v);
  };
  for (const int s : seeds) push(s);

  const std::int64_t limit = std::max<std::int64_t>(
      64, static_cast<std::int64_t>(coneFallbackRatio_ * static_cast<double>(numPins_)));
  std::int64_t visited = 0;
  bool aborted = false;
  for (int l = 0; l < numLevels; ++l) {
    std::vector<int>& q = coneActive_[static_cast<std::size_t>(l)];
    if (q.empty()) continue;
    if (!aborted) {
      visited += static_cast<std::int64_t>(q.size());
      if (visited > limit) aborted = true;
    }
    if (aborted) {
      q.clear();
      continue;
    }
    std::sort(q.begin(), q.end());
    coneChanged_.assign(q.size(), 0);
    par::parallelFor(
        0, static_cast<std::int64_t>(q.size()), kLevelGrain,
        [&](std::int64_t i) {
          coneChanged_[static_cast<std::size_t>(i)] = re(q[static_cast<std::size_t>(i)]) ? 1 : 0;
        },
        numThreads_);
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (!coneChanged_[i]) continue;
      for (const int f : fanout_[static_cast<std::size_t>(q[i])]) push(f);
    }
    q.clear();
  }
  return aborted ? -1 : visited;
}

void Sta::fullArrSweep(double period) const {
  ensureLevels();
  arr_.resize(static_cast<std::size_t>(numPins_));
  pred_.resize(static_cast<std::size_t>(numPins_));
  const int numLevels = static_cast<int>(levelStart_.size()) - 1;
  for (int l = 0; l < numLevels; ++l) {
    par::parallelFor(
        levelStart_[static_cast<std::size_t>(l)], levelStart_[static_cast<std::size_t>(l) + 1],
        kLevelGrain,
        [&](std::int64_t idx) { recomputeArr(levelNodes_[static_cast<std::size_t>(idx)], period); },
        numThreads_);
  }
  arrValid_ = true;
  arrPeriod_ = period;
  pendingArr_.clear();
  ++stats_.fullSweeps;
}

void Sta::fullParamSweep() const {
  ensureLevels();
  arr0_.resize(static_cast<std::size_t>(numPins_));
  arrH_.resize(static_cast<std::size_t>(numPins_));
  const int numLevels = static_cast<int>(levelStart_.size()) - 1;
  for (int l = 0; l < numLevels; ++l) {
    par::parallelFor(
        levelStart_[static_cast<std::size_t>(l)], levelStart_[static_cast<std::size_t>(l) + 1],
        kLevelGrain,
        [&](std::int64_t idx) { recomputeParam(levelNodes_[static_cast<std::size_t>(idx)]); },
        numThreads_);
  }
  paramValid_ = true;
  pendingParam_.clear();
  ++stats_.fullSweeps;
}

void Sta::ensureArrivals(double period) const {
  if (!arrValid_) {
    fullArrSweep(period);
    return;
  }
  std::vector<int>& dirty = pendingArr_;
  if (period != arrPeriod_ && hasHalfCycleInput_) {
    // Only half-cycle input ports launch at a period-dependent time; a
    // period change re-seeds exactly those cones.
    for (PortId p = 0; p < nl_.numPorts(); ++p) {
      const Port& port = nl_.port(p);
      if (port.dir == PinDir::kInput && !port.isClock && port.halfCycle) dirty.push_back(p);
    }
  }
  if (dirty.empty()) {
    arrPeriod_ = period;
    return;
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  const std::int64_t visited =
      coneSweep(dirty, [&](int v) { return recomputeArr(v, period); });
  if (visited < 0) {
    ++stats_.fullFallbacks;
    obs::counter("sta.full_fallbacks").add(1);
    fullArrSweep(period);
  } else {
    ++stats_.incrUpdates;
    stats_.coneNodes += visited;
    obs::counter("sta.incr_updates").add(1);
    obs::counter("sta.cone_nodes").add(visited);
    dirty.clear();
    arrPeriod_ = period;
  }
}

void Sta::ensureParam() const {
  if (!paramValid_) {
    fullParamSweep();
    return;
  }
  std::vector<int>& dirty = pendingParam_;
  if (dirty.empty()) return;
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  const std::int64_t visited = coneSweep(dirty, [&](int v) { return recomputeParam(v); });
  if (visited < 0) {
    ++stats_.fullFallbacks;
    obs::counter("sta.full_fallbacks").add(1);
    fullParamSweep();
  } else {
    ++stats_.incrUpdates;
    stats_.coneNodes += visited;
    obs::counter("sta.incr_updates").add(1);
    obs::counter("sta.cone_nodes").add(visited);
    dirty.clear();
  }
}

// ---------------------------------------------------------------------------
// Queries

double Sta::endpointSlack(double period, const std::vector<double>& arr, int pin,
                          double* reqOut) const {
  const double a = arr[static_cast<std::size_t>(pin)];
  if (a <= kNoArrival) {
    if (reqOut) *reqOut = 0.0;
    return std::numeric_limits<double>::infinity();  // unconstrained
  }
  const NetPin p = pinOf(pin);
  double req = 0.0;
  if (p.kind == NetPin::Kind::kPort) {
    const Port& port = nl_.port(p.port);
    req = port.halfCycle ? period / 2.0 : period;
  } else {
    const CellType& c = nl_.cellOf(p.inst);
    const double lat = clock_ ? clock_->latencyOf(p.inst) : 0.0;
    const double unc = clock_ ? clock_->uncertainty : 0.0;
    req = period - corner_.delayDerate * c.setup + lat - unc;
  }
  if (reqOut) *reqOut = req;
  return req - a;
}

std::vector<double> Sta::netCriticality(double period) const {
  ensureArrivals(period);

  // Backward required-time sweep. Seeded at the constrained endpoints with
  // the same required times the setup check uses, then relaxed over the
  // fanin CSR in reverse level order (reverse-topological): the required
  // time at an edge's source is at most the sink's requirement minus the
  // edge delay. min is exact, so the relaxation order cannot matter.
  constexpr double kNoReq = 1e30;
  std::vector<double> req(static_cast<std::size_t>(numPins_), kNoReq);
  for (const int e : endpoints_) {
    double r = 0.0;
    const double s = endpointSlack(period, arr_, e, &r);
    if (s == std::numeric_limits<double>::infinity()) continue;
    req[static_cast<std::size_t>(e)] = std::min(req[static_cast<std::size_t>(e)], r);
  }
  for (int i = numPins_ - 1; i >= 0; --i) {
    const int v = levelNodes_[static_cast<std::size_t>(i)];
    const double rv = req[static_cast<std::size_t>(v)];
    if (rv >= kNoReq) continue;
    for (int k = faninStart_[static_cast<std::size_t>(v)];
         k < faninStart_[static_cast<std::size_t>(v) + 1]; ++k) {
      const FaninEdge& fe = fanins_[static_cast<std::size_t>(k)];
      double& rf = req[static_cast<std::size_t>(fe.fromPin)];
      rf = std::min(rf, rv - fe.delay);
    }
  }

  // Net criticality = worst sink pin: clamp(1 - slack / period, 0, 1).
  std::vector<double> crit(static_cast<std::size_t>(nl_.numNets()), 0.0);
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    const Net& net = nl_.net(n);
    if (net.pins.size() < 2 || net.driverIdx < 0) continue;
    double worst = 0.0;
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      const int pin = pinId(net.pins[static_cast<std::size_t>(k)]);
      const double a = arr_[static_cast<std::size_t>(pin)];
      const double r = req[static_cast<std::size_t>(pin)];
      if (a <= kNoArrival || r >= kNoReq) continue;  // unconstrained sink
      const double slack = r - a;
      worst = std::max(worst, std::clamp(1.0 - slack / period, 0.0, 1.0));
    }
    crit[static_cast<std::size_t>(n)] = worst;
  }
  return crit;
}

TimingReport Sta::analyze(double period) const {
  ensureArrivals(period);

  TimingReport rep;
  rep.period = period;
  rep.wns = std::numeric_limits<double>::infinity();
  int worst = -1;
  for (int e : endpoints_) {
    const double s = endpointSlack(period, arr_, e);
    if (s == std::numeric_limits<double>::infinity()) continue;
    if (s < rep.wns) {
      rep.wns = s;
      worst = e;
    }
    if (s < 0.0) {
      rep.tns += s;
      ++rep.failingEndpoints;
    }
  }
  if (worst < 0) {
    rep.wns = 0.0;
    obs::series("sta.wns_ps").record(0.0);
    return rep;
  }

  // Trace the critical path.
  std::vector<int> pathIds;
  for (int u = worst; u != -1; u = pred_[static_cast<std::size_t>(u)]) pathIds.push_back(u);
  std::reverse(pathIds.begin(), pathIds.end());
  for (int u : pathIds) {
    rep.criticalPath.push_back({pinOf(u), arr_[static_cast<std::size_t>(u)]});
  }

  // Accumulate wire length along net edges of the path.
  for (std::size_t k = 1; k < pathIds.size(); ++k) {
    const NetPin a = pinOf(pathIds[k - 1]);
    const NetPin b = pinOf(pathIds[k]);
    const bool sameInst = a.kind == NetPin::Kind::kInstPin && b.kind == NetPin::Kind::kInstPin &&
                          a.inst == b.inst;
    if (sameInst) continue;  // gate arc
    // Net edge: find b's index in its net.
    NetId netId = kInvalidId;
    if (b.kind == NetPin::Kind::kInstPin) {
      netId = nl_.instance(b.inst).pinNets[static_cast<std::size_t>(b.libPin)];
    } else {
      netId = nl_.port(b.port).net;
    }
    if (netId == kInvalidId) continue;
    const Net& net = nl_.net(netId);
    for (int i = 0; i < static_cast<int>(net.pins.size()); ++i) {
      if (net.pins[static_cast<std::size_t>(i)] == b) {
        rep.critPathWirelengthUm +=
            paras_[static_cast<std::size_t>(netId)].sinkWireLengthUm[static_cast<std::size_t>(i)];
        break;
      }
    }
  }

  const NetPin wp = pinOf(worst);
  if (wp.kind == NetPin::Kind::kPort) {
    rep.critEndpointName = nl_.port(wp.port).name;
  } else {
    rep.critEndpointName = nl_.instance(wp.inst).name + "/" +
                           nl_.cellOf(wp.inst).pins[static_cast<std::size_t>(wp.libPin)].name;
  }
  obs::series("sta.wns_ps").record(rep.wns * 1e12);
  M3D_LOG(debug) << "sta analyze: wns_ps=" << rep.wns * 1e12
                 << " failing=" << rep.failingEndpoints << " endpoint=" << rep.critEndpointName;
  return rep;
}

double Sta::worstSlack(double period) const {
  ensureArrivals(period);
  double wns = std::numeric_limits<double>::infinity();
  for (int e : endpoints_) {
    const double s = endpointSlack(period, arr_, e);
    wns = std::min(wns, s);
  }
  return wns == std::numeric_limits<double>::infinity() ? 0.0 : wns;
}

void Sta::propagateMin(std::vector<double>& arr) const {
  ensureLevels();
  constexpr double kNoMinArrival = 1e30;
  arr.assign(static_cast<std::size_t>(numPins_), kNoMinArrival);

  // Early launch edges: input ports at 0 (hold checks use the same-edge
  // relationship) and sequential CK->Q at the capture latency.
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    const Port& port = nl_.port(p);
    if (port.dir != PinDir::kInput || port.isClock) continue;
    arr[static_cast<std::size_t>(p)] = 0.0;
  }
  for (const Arc& a : launchArcs_) {
    const NetPin qp = pinOf(a.toPin);
    const Instance& inst = nl_.instance(qp.inst);
    const NetId qNet = inst.pinNets[static_cast<std::size_t>(qp.libPin)];
    if (qNet == kInvalidId) continue;
    const double lat = clock_ ? clock_->latencyOf(qp.inst) : 0.0;
    const double t = lat + corner_.delayDerate *
                               (a.intrinsic + a.driveRes * netLoad_[static_cast<std::size_t>(qNet)]);
    arr[static_cast<std::size_t>(a.toPin)] = std::min(arr[static_cast<std::size_t>(a.toPin)], t);
  }

  // Levelized pull sweep (min variant); see recomputeArr()/coneSweep() for
  // the determinism argument.
  const int numLevels = static_cast<int>(levelStart_.size()) - 1;
  for (int l = 0; l < numLevels; ++l) {
    par::parallelFor(
        levelStart_[static_cast<std::size_t>(l)],
        levelStart_[static_cast<std::size_t>(l) + 1], kLevelGrain,
        [&](std::int64_t idx) {
          const int v = levelNodes_[static_cast<std::size_t>(idx)];
          double best = arr[static_cast<std::size_t>(v)];
          for (int e = faninStart_[static_cast<std::size_t>(v)];
               e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
            const FaninEdge& fe = fanins_[static_cast<std::size_t>(e)];
            const double au = arr[static_cast<std::size_t>(fe.fromPin)];
            if (au >= kNoMinArrival) continue;
            best = std::min(best, au + fe.delay);
          }
          arr[static_cast<std::size_t>(v)] = best;
        },
        numThreads_);
  }
}

double Sta::worstHoldSlack(double holdMargin) const {
  std::vector<double> minArr;
  propagateMin(minArr);
  double worst = std::numeric_limits<double>::infinity();
  for (int e : endpoints_) {
    const double a = minArr[static_cast<std::size_t>(e)];
    if (a >= 1e29) continue;
    const NetPin p = pinOf(e);
    if (p.kind == NetPin::Kind::kPort) continue;  // ports carry no hold check
    const double lat = clock_ ? clock_->latencyOf(p.inst) : 0.0;
    const double unc = clock_ ? clock_->uncertainty : 0.0;
    worst = std::min(worst, a - (lat + unc + holdMargin));
  }
  return worst == std::numeric_limits<double>::infinity() ? 0.0 : worst;
}

std::vector<double> Sta::portArrivals(double period) const {
  ensureArrivals(period);
  std::vector<double> out(static_cast<std::size_t>(nl_.numPorts()));
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    out[static_cast<std::size_t>(p)] = arr_[static_cast<std::size_t>(p)];
  }
  return out;
}

double Sta::findMinPeriod(double loPs, double hiPs) const {
  obs::ScopedPhase phase("sta.find_min_period");
  (void)hiPs;  // the exact solve needs no bracket; kept for call compatibility
  ensureParam();

  // Each endpoint contributes closed-form bounds on T. With s' the derated
  // setup and d0/dH the parametric arrivals:
  //   sequential endpoint:  d0 <= T - s' + lat - unc    => T >= d0 + s' - lat + unc
  //                         T/2 + dH <= T - s' + ...    => T >= 2 (dH + s' - lat + unc)
  //   full-cycle out port:  T >= d0,  T >= 2 dH
  //   half-cycle out port:  T >= 2 d0; dH > 0 is infeasible at any period.
  double t = loPs * 1e-12;
  bool infeasible = false;
  for (const int e : endpoints_) {
    const double a0 = arr0_[static_cast<std::size_t>(e)];
    const double aH = arrH_[static_cast<std::size_t>(e)];
    const NetPin p = pinOf(e);
    if (p.kind == NetPin::Kind::kPort) {
      const Port& port = nl_.port(p.port);
      if (port.halfCycle) {
        if (a0 > kNoArrival) t = std::max(t, 2.0 * a0);
        if (aH > kNoArrival && aH > 0.0) infeasible = true;
      } else {
        if (a0 > kNoArrival) t = std::max(t, a0);
        if (aH > kNoArrival) t = std::max(t, 2.0 * aH);
      }
    } else {
      const CellType& c = nl_.cellOf(p.inst);
      const double lat = clock_ ? clock_->latencyOf(p.inst) : 0.0;
      const double unc = clock_ ? clock_->uncertainty : 0.0;
      const double margin = corner_.delayDerate * c.setup - lat + unc;
      if (a0 > kNoArrival) t = std::max(t, a0 + margin);
      if (aH > kNoArrival) t = std::max(t, 2.0 * (aH + margin));
    }
  }
  if (infeasible) {
    M3D_LOG(warn) << "sta find_min_period: no feasible period (half-cycle output port "
                     "reached by a half-cycle launch); returning sentinel";
    obs::counter("sta.min_period_infeasible").add(1);
    return kInfeasiblePeriod;
  }
  // The parametric accumulation can differ from the at-period sweep by a few
  // ulps (T/2 is added at the endpoint here, at the launch there), so nudge
  // until the conventional check agrees — preserving the bisection-era
  // invariant worstSlack(findMinPeriod()) >= 0.
  for (int guard = 0; guard < 8; ++guard) {
    const double ws = worstSlack(t);
    if (ws >= 0.0) break;
    t += std::max(-2.0 * ws, t * 1e-16);
  }
  phase.attr("min_period_ns", t * 1e9);
  obs::series("sta.min_period_ns").record(t * 1e9);
  return t;
}

double Sta::findMinPeriodBisect(double loPs, double hiPs) const {
  obs::ScopedPhase phase("sta.find_min_period_bisect");
  double lo = loPs * 1e-12;
  double hi = hiPs * 1e-12;
  // Ensure hi is feasible.
  int guard = 0;
  while (worstSlack(hi) < 0.0 && guard++ < 8) hi *= 2.0;
  if (worstSlack(hi) < 0.0) {
    M3D_LOG(warn) << "sta find_min_period_bisect: upper bound still infeasible after 8 "
                     "doublings (hi_ns="
                  << hi * 1e9 << "); returning sentinel";
    obs::counter("sta.min_period_infeasible").add(1);
    return kInfeasiblePeriod;
  }
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (worstSlack(mid) >= 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  phase.attr("min_period_ns", hi * 1e9);
  return hi;
}

}  // namespace m3d
