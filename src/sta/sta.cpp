#include "sta/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/parallel.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace m3d {

namespace {
constexpr double kNoArrival = -1e30;
/// Pins per parallelFor chunk inside one topological level.
constexpr std::int64_t kLevelGrain = 64;
}

Sta::Sta(const Netlist& nl, const std::vector<NetParasitics>& paras, const ClockModel* clock,
         Corner corner, int numThreads)
    : nl_(nl), paras_(paras), clock_(clock), corner_(corner), numThreads_(numThreads) {
  assert(static_cast<int>(paras.size()) == nl.numNets());
  assert(corner_.delayDerate > 0.0);
  build();
}

int Sta::pinId(const NetPin& p) const {
  if (p.kind == NetPin::Kind::kPort) return portBase_ + p.port;
  return instPinBase_[static_cast<std::size_t>(p.inst)] + p.libPin;
}

NetPin Sta::pinOf(int id) const {
  if (id >= portBase_) return NetPin::makePort(id - portBase_);
  // Binary search the instance owning this pin id.
  const auto it = std::upper_bound(instPinBase_.begin(), instPinBase_.end(), id);
  const InstId inst = static_cast<InstId>(it - instPinBase_.begin()) - 1;
  return NetPin::makeInstPin(inst, id - instPinBase_[static_cast<std::size_t>(inst)]);
}

void Sta::build() {
  // Pin id layout.
  instPinBase_.resize(static_cast<std::size_t>(nl_.numInstances()));
  int next = 0;
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    instPinBase_[static_cast<std::size_t>(i)] = next;
    next += static_cast<int>(nl_.cellOf(i).pins.size());
  }
  portBase_ = next;
  numPins_ = next + nl_.numPorts();

  // Net loads.
  netLoad_.resize(static_cast<std::size_t>(nl_.numNets()));
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    netLoad_[static_cast<std::size_t>(n)] = paras_[static_cast<std::size_t>(n)].totalLoad();
  }

  // Arcs.
  arcsFrom_.assign(static_cast<std::size_t>(numPins_), {});
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    const CellType& c = nl_.cellOf(i);
    const int base = instPinBase_[static_cast<std::size_t>(i)];
    for (const TimingArc& a : c.arcs) {
      Arc arc;
      arc.fromPin = base + a.fromPin;
      arc.toPin = base + a.toPin;
      arc.intrinsic = a.intrinsic;
      arc.driveRes = a.driveRes;
      if (c.pins[static_cast<std::size_t>(a.fromPin)].isClock) {
        launchArcs_.push_back(arc);
      } else {
        arcsFrom_[static_cast<std::size_t>(arc.fromPin)].push_back(arc);
      }
    }
    // Endpoints: non-clock inputs of sequential cells and macros.
    if (c.isSequential() || c.isMacro()) {
      for (int p = 0; p < static_cast<int>(c.pins.size()); ++p) {
        const LibPin& lp = c.pins[static_cast<std::size_t>(p)];
        if (lp.dir == PinDir::kInput && !lp.isClock) endpoints_.push_back(base + p);
      }
    }
  }
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    if (nl_.port(p).dir == PinDir::kOutput) endpoints_.push_back(portBase_ + p);
  }

  // Topological order (Kahn) over net edges + combinational arcs.
  std::vector<int> indeg(static_cast<std::size_t>(numPins_), 0);
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    const Net& net = nl_.net(n);
    if (net.driverIdx < 0) continue;
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      ++indeg[static_cast<std::size_t>(pinId(net.pins[static_cast<std::size_t>(k)]))];
    }
  }
  for (int u = 0; u < numPins_; ++u) {
    for (const Arc& a : arcsFrom_[static_cast<std::size_t>(u)]) {
      ++indeg[static_cast<std::size_t>(a.toPin)];
    }
  }
  std::vector<int> queue;
  queue.reserve(static_cast<std::size_t>(numPins_));
  for (int u = 0; u < numPins_; ++u) {
    if (indeg[static_cast<std::size_t>(u)] == 0) queue.push_back(u);
  }
  topo_.clear();
  topo_.reserve(static_cast<std::size_t>(numPins_));
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const int u = queue[qi];
    topo_.push_back(u);
    // Net fanout if u drives a net.
    const NetPin up = pinOf(u);
    NetId netId = kInvalidId;
    if (up.kind == NetPin::Kind::kInstPin) {
      netId = nl_.instance(up.inst).pinNets[static_cast<std::size_t>(up.libPin)];
    } else {
      netId = nl_.port(up.port).net;
    }
    if (netId != kInvalidId) {
      const Net& net = nl_.net(netId);
      if (net.driverIdx >= 0 &&
          pinId(net.pins[static_cast<std::size_t>(net.driverIdx)]) == u) {
        for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
          if (k == net.driverIdx) continue;
          const int v = pinId(net.pins[static_cast<std::size_t>(k)]);
          if (--indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
        }
      }
    }
    for (const Arc& a : arcsFrom_[static_cast<std::size_t>(u)]) {
      if (--indeg[static_cast<std::size_t>(a.toPin)] == 0) queue.push_back(a.toPin);
    }
  }
  assert(static_cast<int>(topo_.size()) == numPins_ && "combinational cycle detected");

  // Fanin CSR: every timing edge keyed by its sink, with the full derated
  // edge delay precomputed (constant across sweeps; only the launch seeds
  // depend on the analysis period). Max and min sweeps share these edges.
  const std::size_t np = static_cast<std::size_t>(numPins_);
  faninStart_.assign(np + 1, 0);
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    const Net& net = nl_.net(n);
    if (net.driverIdx < 0) continue;
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      ++faninStart_[static_cast<std::size_t>(pinId(net.pins[static_cast<std::size_t>(k)])) + 1];
    }
  }
  for (int u = 0; u < numPins_; ++u) {
    for (const Arc& a : arcsFrom_[static_cast<std::size_t>(u)]) {
      ++faninStart_[static_cast<std::size_t>(a.toPin) + 1];
    }
  }
  for (std::size_t v = 0; v < np; ++v) faninStart_[v + 1] += faninStart_[v];
  fanins_.resize(static_cast<std::size_t>(faninStart_[np]));
  {
    std::vector<int> cursor(faninStart_.begin(), faninStart_.end() - 1);
    for (NetId n = 0; n < nl_.numNets(); ++n) {
      const Net& net = nl_.net(n);
      if (net.driverIdx < 0) continue;
      const int u = pinId(net.pins[static_cast<std::size_t>(net.driverIdx)]);
      const NetParasitics& pp = paras_[static_cast<std::size_t>(n)];
      for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
        if (k == net.driverIdx) continue;
        const int v = pinId(net.pins[static_cast<std::size_t>(k)]);
        fanins_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
            {u, corner_.delayDerate * pp.sinkWireDelay[static_cast<std::size_t>(k)]};
      }
    }
    for (int u = 0; u < numPins_; ++u) {
      for (const Arc& a : arcsFrom_[static_cast<std::size_t>(u)]) {
        const NetPin op = pinOf(a.toPin);
        const NetId outNet = nl_.instance(op.inst).pinNets[static_cast<std::size_t>(op.libPin)];
        const double load = outNet != kInvalidId ? netLoad_[static_cast<std::size_t>(outNet)] : 0.0;
        fanins_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(a.toPin)]++)] =
            {u, corner_.delayDerate * (a.intrinsic + a.driveRes * load)};
      }
    }
  }

  // Levelization: level(v) = 1 + max level over fanin sources. All of a
  // pin's fanins sit in strictly lower levels, so a per-level sweep can
  // relax every pin of one level concurrently without write sharing.
  std::vector<int> level(np, 0);
  int numLevels = 1;
  for (int v : topo_) {
    int lv = 0;
    for (int e = faninStart_[static_cast<std::size_t>(v)];
         e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
      lv = std::max(lv, level[static_cast<std::size_t>(fanins_[static_cast<std::size_t>(e)].fromPin)] + 1);
    }
    level[static_cast<std::size_t>(v)] = lv;
    numLevels = std::max(numLevels, lv + 1);
  }
  levelStart_.assign(static_cast<std::size_t>(numLevels) + 1, 0);
  for (std::size_t v = 0; v < np; ++v) ++levelStart_[static_cast<std::size_t>(level[v]) + 1];
  for (int l = 0; l < numLevels; ++l) {
    levelStart_[static_cast<std::size_t>(l) + 1] += levelStart_[static_cast<std::size_t>(l)];
  }
  levelNodes_.resize(np);
  {
    std::vector<int> cursor(levelStart_.begin(), levelStart_.end() - 1);
    // Pin-id order within each level (iterate ids ascending).
    for (int v = 0; v < numPins_; ++v) {
      levelNodes_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(level[static_cast<std::size_t>(v)])]++)] = v;
    }
  }
  obs::gauge("sta.levels").set(static_cast<double>(numLevels));
}

void Sta::propagate(double period, std::vector<double>& arr, std::vector<int>& pred) const {
  arr.assign(static_cast<std::size_t>(numPins_), kNoArrival);
  pred.assign(static_cast<std::size_t>(numPins_), -1);

  // Launch from input ports.
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    const Port& port = nl_.port(p);
    if (port.dir != PinDir::kInput || port.isClock) continue;
    arr[static_cast<std::size_t>(portBase_ + p)] = port.halfCycle ? period / 2.0 : 0.0;
  }
  // Launch from sequential CK->Q.
  for (const Arc& a : launchArcs_) {
    const NetPin qp = pinOf(a.toPin);
    const Instance& inst = nl_.instance(qp.inst);
    const NetId qNet = inst.pinNets[static_cast<std::size_t>(qp.libPin)];
    if (qNet == kInvalidId) continue;
    const double lat = clock_ ? clock_->latencyOf(qp.inst) : 0.0;
    const double t = lat + corner_.delayDerate *
                               (a.intrinsic + a.driveRes * netLoad_[static_cast<std::size_t>(qNet)]);
    if (t > arr[static_cast<std::size_t>(a.toPin)]) {
      arr[static_cast<std::size_t>(a.toPin)] = t;
      pred[static_cast<std::size_t>(a.toPin)] = -1;
    }
  }

  // Levelized pull sweep. Every fanin source of a pin sits in a strictly
  // lower level, so by the time level L runs all its inputs are settled and
  // each pin writes only its own arrival — the per-level loop parallelizes
  // with bit-identical results at any thread count (same candidate set,
  // same comparison order per pin). Launch seeds above participate as the
  // initial "best" and survive unless a pulled candidate strictly beats them.
  const int numLevels = static_cast<int>(levelStart_.size()) - 1;
  for (int l = 0; l < numLevels; ++l) {
    par::parallelFor(
        levelStart_[static_cast<std::size_t>(l)],
        levelStart_[static_cast<std::size_t>(l) + 1], kLevelGrain,
        [&](std::int64_t idx) {
          const int v = levelNodes_[static_cast<std::size_t>(idx)];
          double best = arr[static_cast<std::size_t>(v)];
          int bestPred = pred[static_cast<std::size_t>(v)];
          for (int e = faninStart_[static_cast<std::size_t>(v)];
               e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
            const FaninEdge& fe = fanins_[static_cast<std::size_t>(e)];
            const double au = arr[static_cast<std::size_t>(fe.fromPin)];
            if (au <= kNoArrival) continue;
            const double cand = au + fe.delay;
            if (cand > best) {
              best = cand;
              bestPred = fe.fromPin;
            }
          }
          arr[static_cast<std::size_t>(v)] = best;
          pred[static_cast<std::size_t>(v)] = bestPred;
        },
        numThreads_);
  }
}

double Sta::endpointSlack(double period, const std::vector<double>& arr, int pin,
                          double* reqOut) const {
  const double a = arr[static_cast<std::size_t>(pin)];
  if (a <= kNoArrival) {
    if (reqOut) *reqOut = 0.0;
    return std::numeric_limits<double>::infinity();  // unconstrained
  }
  const NetPin p = pinOf(pin);
  double req = 0.0;
  if (p.kind == NetPin::Kind::kPort) {
    const Port& port = nl_.port(p.port);
    req = port.halfCycle ? period / 2.0 : period;
  } else {
    const CellType& c = nl_.cellOf(p.inst);
    const double lat = clock_ ? clock_->latencyOf(p.inst) : 0.0;
    const double unc = clock_ ? clock_->uncertainty : 0.0;
    req = period - corner_.delayDerate * c.setup + lat - unc;
  }
  if (reqOut) *reqOut = req;
  return req - a;
}

std::vector<double> Sta::netCriticality(double period) const {
  std::vector<double> arr;
  std::vector<int> pred;
  propagate(period, arr, pred);

  // Backward required-time sweep. Seeded at the constrained endpoints with
  // the same required times the setup check uses, then relaxed over the
  // fanin CSR in reverse topological order: the required time at an edge's
  // source is at most the sink's requirement minus the edge delay.
  constexpr double kNoReq = 1e30;
  std::vector<double> req(static_cast<std::size_t>(numPins_), kNoReq);
  for (const int e : endpoints_) {
    double r = 0.0;
    const double s = endpointSlack(period, arr, e, &r);
    if (s == std::numeric_limits<double>::infinity()) continue;
    req[static_cast<std::size_t>(e)] = std::min(req[static_cast<std::size_t>(e)], r);
  }
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const int v = *it;
    const double rv = req[static_cast<std::size_t>(v)];
    if (rv >= kNoReq) continue;
    for (int k = faninStart_[static_cast<std::size_t>(v)];
         k < faninStart_[static_cast<std::size_t>(v) + 1]; ++k) {
      const FaninEdge& fe = fanins_[static_cast<std::size_t>(k)];
      double& rf = req[static_cast<std::size_t>(fe.fromPin)];
      rf = std::min(rf, rv - fe.delay);
    }
  }

  // Net criticality = worst sink pin: clamp(1 - slack / period, 0, 1).
  std::vector<double> crit(static_cast<std::size_t>(nl_.numNets()), 0.0);
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    const Net& net = nl_.net(n);
    if (net.pins.size() < 2 || net.driverIdx < 0) continue;
    double worst = 0.0;
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      const int pin = pinId(net.pins[static_cast<std::size_t>(k)]);
      const double a = arr[static_cast<std::size_t>(pin)];
      const double r = req[static_cast<std::size_t>(pin)];
      if (a <= kNoArrival || r >= kNoReq) continue;  // unconstrained sink
      const double slack = r - a;
      worst = std::max(worst, std::clamp(1.0 - slack / period, 0.0, 1.0));
    }
    crit[static_cast<std::size_t>(n)] = worst;
  }
  return crit;
}

TimingReport Sta::analyze(double period) const {
  std::vector<double> arr;
  std::vector<int> pred;
  propagate(period, arr, pred);

  TimingReport rep;
  rep.period = period;
  rep.wns = std::numeric_limits<double>::infinity();
  int worst = -1;
  for (int e : endpoints_) {
    const double s = endpointSlack(period, arr, e);
    if (s == std::numeric_limits<double>::infinity()) continue;
    if (s < rep.wns) {
      rep.wns = s;
      worst = e;
    }
    if (s < 0.0) {
      rep.tns += s;
      ++rep.failingEndpoints;
    }
  }
  if (worst < 0) {
    rep.wns = 0.0;
    obs::series("sta.wns_ps").record(0.0);
    return rep;
  }

  // Trace the critical path.
  std::vector<int> pathIds;
  for (int u = worst; u != -1; u = pred[static_cast<std::size_t>(u)]) pathIds.push_back(u);
  std::reverse(pathIds.begin(), pathIds.end());
  for (int u : pathIds) {
    rep.criticalPath.push_back({pinOf(u), arr[static_cast<std::size_t>(u)]});
  }

  // Accumulate wire length along net edges of the path.
  for (std::size_t k = 1; k < pathIds.size(); ++k) {
    const NetPin a = pinOf(pathIds[k - 1]);
    const NetPin b = pinOf(pathIds[k]);
    const bool sameInst = a.kind == NetPin::Kind::kInstPin && b.kind == NetPin::Kind::kInstPin &&
                          a.inst == b.inst;
    if (sameInst) continue;  // gate arc
    // Net edge: find b's index in its net.
    NetId netId = kInvalidId;
    if (b.kind == NetPin::Kind::kInstPin) {
      netId = nl_.instance(b.inst).pinNets[static_cast<std::size_t>(b.libPin)];
    } else {
      netId = nl_.port(b.port).net;
    }
    if (netId == kInvalidId) continue;
    const Net& net = nl_.net(netId);
    for (int i = 0; i < static_cast<int>(net.pins.size()); ++i) {
      if (net.pins[static_cast<std::size_t>(i)] == b) {
        rep.critPathWirelengthUm +=
            paras_[static_cast<std::size_t>(netId)].sinkWireLengthUm[static_cast<std::size_t>(i)];
        break;
      }
    }
  }

  const NetPin wp = pinOf(worst);
  if (wp.kind == NetPin::Kind::kPort) {
    rep.critEndpointName = nl_.port(wp.port).name;
  } else {
    rep.critEndpointName = nl_.instance(wp.inst).name + "/" +
                           nl_.cellOf(wp.inst).pins[static_cast<std::size_t>(wp.libPin)].name;
  }
  obs::series("sta.wns_ps").record(rep.wns * 1e12);
  M3D_LOG(debug) << "sta analyze: wns_ps=" << rep.wns * 1e12
                 << " failing=" << rep.failingEndpoints << " endpoint=" << rep.critEndpointName;
  return rep;
}

double Sta::worstSlack(double period) const {
  std::vector<double> arr;
  std::vector<int> pred;
  propagate(period, arr, pred);
  double wns = std::numeric_limits<double>::infinity();
  for (int e : endpoints_) {
    const double s = endpointSlack(period, arr, e);
    wns = std::min(wns, s);
  }
  return wns == std::numeric_limits<double>::infinity() ? 0.0 : wns;
}

void Sta::propagateMin(std::vector<double>& arr) const {
  constexpr double kNoMinArrival = 1e30;
  arr.assign(static_cast<std::size_t>(numPins_), kNoMinArrival);

  // Early launch edges: input ports at 0 (hold checks use the same-edge
  // relationship) and sequential CK->Q at the capture latency.
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    const Port& port = nl_.port(p);
    if (port.dir != PinDir::kInput || port.isClock) continue;
    arr[static_cast<std::size_t>(portBase_ + p)] = 0.0;
  }
  for (const Arc& a : launchArcs_) {
    const NetPin qp = pinOf(a.toPin);
    const Instance& inst = nl_.instance(qp.inst);
    const NetId qNet = inst.pinNets[static_cast<std::size_t>(qp.libPin)];
    if (qNet == kInvalidId) continue;
    const double lat = clock_ ? clock_->latencyOf(qp.inst) : 0.0;
    const double t = lat + corner_.delayDerate *
                               (a.intrinsic + a.driveRes * netLoad_[static_cast<std::size_t>(qNet)]);
    arr[static_cast<std::size_t>(a.toPin)] = std::min(arr[static_cast<std::size_t>(a.toPin)], t);
  }

  // Levelized pull sweep (min variant); see propagate() for the
  // determinism argument.
  const int numLevels = static_cast<int>(levelStart_.size()) - 1;
  for (int l = 0; l < numLevels; ++l) {
    par::parallelFor(
        levelStart_[static_cast<std::size_t>(l)],
        levelStart_[static_cast<std::size_t>(l) + 1], kLevelGrain,
        [&](std::int64_t idx) {
          const int v = levelNodes_[static_cast<std::size_t>(idx)];
          double best = arr[static_cast<std::size_t>(v)];
          for (int e = faninStart_[static_cast<std::size_t>(v)];
               e < faninStart_[static_cast<std::size_t>(v) + 1]; ++e) {
            const FaninEdge& fe = fanins_[static_cast<std::size_t>(e)];
            const double au = arr[static_cast<std::size_t>(fe.fromPin)];
            if (au >= kNoMinArrival) continue;
            best = std::min(best, au + fe.delay);
          }
          arr[static_cast<std::size_t>(v)] = best;
        },
        numThreads_);
  }
}

double Sta::worstHoldSlack(double holdMargin) const {
  std::vector<double> minArr;
  propagateMin(minArr);
  double worst = std::numeric_limits<double>::infinity();
  for (int e : endpoints_) {
    const double a = minArr[static_cast<std::size_t>(e)];
    if (a >= 1e29) continue;
    const NetPin p = pinOf(e);
    if (p.kind == NetPin::Kind::kPort) continue;  // ports carry no hold check
    const double lat = clock_ ? clock_->latencyOf(p.inst) : 0.0;
    const double unc = clock_ ? clock_->uncertainty : 0.0;
    worst = std::min(worst, a - (lat + unc + holdMargin));
  }
  return worst == std::numeric_limits<double>::infinity() ? 0.0 : worst;
}

std::vector<double> Sta::portArrivals(double period) const {
  std::vector<double> arr;
  std::vector<int> pred;
  propagate(period, arr, pred);
  std::vector<double> out(static_cast<std::size_t>(nl_.numPorts()));
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    out[static_cast<std::size_t>(p)] = arr[static_cast<std::size_t>(portBase_ + p)];
  }
  return out;
}

double Sta::findMinPeriod(double loPs, double hiPs) const {
  obs::ScopedPhase phase("sta.find_min_period");
  double lo = loPs * 1e-12;
  double hi = hiPs * 1e-12;
  // Ensure hi is feasible.
  int guard = 0;
  while (worstSlack(hi) < 0.0 && guard++ < 8) hi *= 2.0;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (worstSlack(mid) >= 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  phase.attr("min_period_ns", hi * 1e9);
  obs::series("sta.min_period_ns").record(hi * 1e9);
  return hi;
}

}  // namespace m3d
