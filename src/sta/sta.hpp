#pragma once

/// \file sta.hpp
/// Graph-based static timing analysis.
///
/// Delay model: gate arc delay = intrinsic + driveRes * Cload(net); wire
/// delay per sink from the extractor's Elmore values. Sequential cells and
/// macros launch at CK->Q and capture at data pins with a setup margin.
/// Clock arrivals come from a ClockModel (ideal zero-latency by default;
/// CTS fills in per-sink latencies). Inter-tile ports carry the paper's
/// half-cycle constraint (Sec. V-1): input ports launch at T/2, half-cycle
/// output ports require arrival by T/2.
///
/// The maximum achievable clock frequency — the paper's performance metric —
/// is found by binary search on the period.

#include <string>
#include <vector>

#include "extract/extraction.hpp"
#include "netlist/netlist.hpp"

namespace m3d {

/// Clock arrival model. Ideal (all zero) unless CTS populated it.
struct ClockModel {
  /// Clock arrival (insertion delay) at each instance's CK pin [s], indexed
  /// by InstId; empty = ideal clock.
  std::vector<double> latency;
  int maxTreeDepth = 0;      ///< buffer levels, reported in Table II.
  double maxLatency = 0.0;   ///< [s]
  double skew = 0.0;         ///< raw (pre-balancing) max - min sink latency [s]
  /// Clock uncertainty subtracted from every setup check [s]. After CTS
  /// balancing this models the residual skew + jitter, which grows with the
  /// tree's insertion delay (deeper/longer trees are harder to balance).
  double uncertainty = 0.0;

  double latencyOf(InstId i) const {
    return latency.empty() ? 0.0 : latency[static_cast<std::size_t>(i)];
  }
};

/// One step of a reported timing path.
struct PathStep {
  NetPin pin;
  double arrival = 0.0;      ///< [s]
};

struct TimingReport {
  double period = 0.0;       ///< [s] analysis period.
  double wns = 0.0;          ///< worst negative slack [s] (positive = met).
  double tns = 0.0;          ///< total negative slack [s] (<= 0).
  int failingEndpoints = 0;
  std::vector<PathStep> criticalPath;   ///< source..endpoint.
  double critPathWirelengthUm = 0.0;    ///< wire length along the path.
  std::string critEndpointName;
};

/// A process corner as a single delay derating factor (the paper signs off
/// timing at the slowest corner and reports power at the typical one,
/// Sec. V-2). Wire and cell delays scale together.
struct Corner {
  const char* name = "typical";
  double delayDerate = 1.0;
};
inline constexpr Corner kTypicalCorner{"typical", 1.0};
inline constexpr Corner kSlowCorner{"slow", 1.12};
inline constexpr Corner kFastCorner{"fast", 0.88};

class Sta {
 public:
  /// \p paras must be indexed by NetId (from extractDesign/estimateDesign).
  /// \p corner scales every cell and wire delay (and setup margins).
  /// \p numThreads: threads for the levelized arrival sweeps (0 = auto:
  /// M3D_THREADS env, else hardware_concurrency). Arrivals are bit-identical
  /// at any thread count: within a topological level every pin pulls its
  /// own arrival from already-settled lower levels, so there are no writes
  /// shared between pins and no order dependence.
  Sta(const Netlist& nl, const std::vector<NetParasitics>& paras,
      const ClockModel* clock = nullptr, Corner corner = kTypicalCorner,
      int numThreads = 0);

  /// Full analysis at \p period.
  TimingReport analyze(double period) const;

  /// Smallest period with WNS >= 0, via binary search within
  /// [loPs, hiPs] picoseconds. Returns the period [s].
  double findMinPeriod(double loPs = 50.0, double hiPs = 100000.0) const;

  /// Maximum frequency [Hz] = 1 / findMinPeriod().
  double maxFrequency() const { return 1.0 / findMinPeriod(); }

  /// Slack of the worst path at \p period (cheap entry point for the
  /// optimizer; equivalent to analyze(period).wns but skips path tracing).
  double worstSlack(double period) const;

  /// Arrival time at every top-level port at \p period, indexed by PortId
  /// (-infinity for ports no path reaches). Used by the tile-array checker
  /// to stitch inter-tile half-paths.
  std::vector<double> portArrivals(double period) const;

  /// Per-net setup criticality at \p period, indexed by NetId, for the
  /// timing-driven router (RouterOptions::netCriticality). A net's
  /// criticality is max over its sink pins of clamp(1 - slack / period,
  /// 0, 1), with pin slack = required - arrival from a full forward
  /// arrival sweep plus a backward required-time sweep over the same
  /// fanin CSR. Pins no constrained path reaches get slack +inf, i.e.
  /// criticality 0. Deterministic: the backward sweep is a sequential
  /// reverse-topological relaxation.
  std::vector<double> netCriticality(double period) const;

  /// Hold analysis: worst hold slack over all sequential/macro data
  /// endpoints, using minimum (earliest) arrivals. Hold slack =
  /// minArrival - (captureLatency + holdMargin). With a balanced clock and
  /// the library's zero hold requirement the check passes unless a path is
  /// direct (no logic); \p holdMargin models the per-cell hold requirement.
  double worstHoldSlack(double holdMargin = 10e-12) const;

 private:
  struct Arc {
    int fromPin;   ///< global pin id.
    int toPin;
    double intrinsic;
    double driveRes;
  };

  int pinId(const NetPin& p) const;
  NetPin pinOf(int id) const;
  void build();
  void propagate(double period, std::vector<double>& arr, std::vector<int>& pred) const;
  void propagateMin(std::vector<double>& arr) const;
  double endpointSlack(double period, const std::vector<double>& arr, int pin,
                       double* reqOut = nullptr) const;

  const Netlist& nl_;
  const std::vector<NetParasitics>& paras_;
  const ClockModel* clock_;
  Corner corner_;

  int numPins_ = 0;
  std::vector<int> instPinBase_;    ///< first global pin id per instance.
  int portBase_ = 0;                ///< first global pin id of ports.

  std::vector<int> topo_;           ///< pin ids in topological order.
  std::vector<Arc> launchArcs_;     ///< CK->Q arcs of sequential cells.
  std::vector<std::vector<Arc>> arcsFrom_;  ///< comb arcs by from-pin.
  std::vector<int> endpoints_;      ///< data pins of seq cells + output ports.
  std::vector<double> netLoad_;     ///< total load per net.

  /// One timing edge seen from its sink: the source pin plus the full
  /// derated edge delay (wire delay for net edges, intrinsic + drive * load
  /// for cell arcs). Both max (setup) and min (hold) sweeps share these.
  struct FaninEdge {
    int fromPin;
    double delay;
  };
  // CSR fanin adjacency + levelization (built once in build()).
  std::vector<int> faninStart_;     ///< size numPins_+1; offsets into fanins_.
  std::vector<FaninEdge> fanins_;
  std::vector<int> levelStart_;     ///< size numLevels+1; offsets into levelNodes_.
  std::vector<int> levelNodes_;     ///< pin ids, ascending within a level.
  int numThreads_ = 0;              ///< requested (0 = auto), resolved per sweep.
};

}  // namespace m3d
