#pragma once

/// \file sta.hpp
/// Graph-based static timing analysis with incremental update support.
///
/// Delay model: gate arc delay = intrinsic + driveRes * Cload(net); wire
/// delay per sink from the extractor's Elmore values. Sequential cells and
/// macros launch at CK->Q and capture at data pins with a setup margin.
/// Clock arrivals come from a ClockModel (ideal zero-latency by default;
/// CTS fills in per-sink latencies). Inter-tile ports carry the paper's
/// half-cycle constraint (Sec. V-1): input ports launch at T/2, half-cycle
/// output ports require arrival by T/2.
///
/// The engine is persistent: it caches arrival sweeps and survives netlist
/// edits through a dirty-net API (invalidateNet / applyResize /
/// applyBufferInsertion). Edits patch only the affected fanin-CSR rows, and
/// the next query re-propagates arrivals over just the fanout cone of the
/// dirty pins (falling back to a full levelized sweep when the cone grows
/// past a size ratio). Incremental results are bit-identical to a
/// from-scratch Sta on the same netlist state — see DESIGN.md Sec. 5j.
///
/// The maximum achievable clock frequency — the paper's performance metric —
/// comes from a single parametric arrival sweep (arc delays are
/// period-independent, so the min feasible period is a closed-form max over
/// endpoints); findMinPeriodBisect keeps the legacy binary search as a
/// cross-check.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "extract/extraction.hpp"
#include "netlist/netlist.hpp"

namespace m3d {

/// Clock arrival model. Ideal (all zero) unless CTS populated it.
struct ClockModel {
  /// Clock arrival (insertion delay) at each instance's CK pin [s], indexed
  /// by InstId; empty = ideal clock.
  std::vector<double> latency;
  int maxTreeDepth = 0;      ///< buffer levels, reported in Table II.
  double maxLatency = 0.0;   ///< [s]
  double skew = 0.0;         ///< raw (pre-balancing) max - min sink latency [s]
  /// Clock uncertainty subtracted from every setup check [s]. After CTS
  /// balancing this models the residual skew + jitter, which grows with the
  /// tree's insertion delay (deeper/longer trees are harder to balance).
  double uncertainty = 0.0;

  double latencyOf(InstId i) const {
    return latency.empty() ? 0.0 : latency[static_cast<std::size_t>(i)];
  }
};

/// One step of a reported timing path.
struct PathStep {
  NetPin pin;
  double arrival = 0.0;      ///< [s]
};

struct TimingReport {
  double period = 0.0;       ///< [s] analysis period.
  double wns = 0.0;          ///< worst negative slack [s] (positive = met).
  double tns = 0.0;          ///< total negative slack [s] (<= 0).
  int failingEndpoints = 0;
  std::vector<PathStep> criticalPath;   ///< source..endpoint.
  double critPathWirelengthUm = 0.0;    ///< wire length along the path.
  std::string critEndpointName;
};

/// A process corner as a single delay derating factor (the paper signs off
/// timing at the slowest corner and reports power at the typical one,
/// Sec. V-2). Wire and cell delays scale together.
struct Corner {
  const char* name = "typical";
  double delayDerate = 1.0;
};
inline constexpr Corner kTypicalCorner{"typical", 1.0};
inline constexpr Corner kSlowCorner{"slow", 1.12};
inline constexpr Corner kFastCorner{"fast", 0.88};

class Sta {
 public:
  /// \p paras must be indexed by NetId (from extractDesign/estimateDesign).
  /// \p corner scales every cell and wire delay (and setup margins).
  /// \p numThreads: threads for the levelized arrival sweeps (0 = auto:
  /// M3D_THREADS env, else hardware_concurrency). Arrivals are bit-identical
  /// at any thread count: within a topological level every pin pulls its
  /// own arrival from already-settled lower levels, so there are no writes
  /// shared between pins and no order dependence.
  ///
  /// The engine keeps references to \p nl and \p paras: both must outlive
  /// it, and every structural edit to \p nl must be mirrored through the
  /// incremental API below before the next query. Queries mutate internal
  /// caches, so a single Sta must not be queried from multiple threads
  /// concurrently (the sweeps themselves parallelize internally).
  Sta(const Netlist& nl, const std::vector<NetParasitics>& paras,
      const ClockModel* clock = nullptr, Corner corner = kTypicalCorner,
      int numThreads = 0);

  // --- incremental edit API ----------------------------------------------
  //
  // Contract with callers (the optimizer follows it): after netlist edits,
  //  1. call applyResize / applyBufferInsertion immediately after each
  //     structural Netlist edit (these patch the timing graph's structure
  //     and use placeholder delays where parasitics are not yet known),
  //  2. refresh the parasitics of every touched net, then
  //  3. call invalidateNets with the touched nets (this re-derives the
  //     edge delays and net loads from the refreshed parasitics).
  // No query may run between step 1 and step 3.

  /// Re-reads paras_[n]: updates the net's load, the wire-edge delay into
  /// every sink pin, and the cell-arc delays into the driver pin (whose
  /// load changed). Marks the touched pins dirty for the next sweep.
  void invalidateNet(NetId n);
  void invalidateNets(const std::vector<NetId>& nets);
  /// invalidateNet over every net plus a cache reset (the next query runs
  /// one full sweep, not a cone update). For bulk parasitics swaps, e.g.
  /// re-extraction after a routing iteration.
  void invalidateAllNets();

  /// Mirrors Netlist::resize(inst, ...): re-derives the cell-arc fanin rows
  /// of the instance's output pins and its CK->Q launch arcs from the new
  /// master. The nets on the instance's *input* pins (whose pin caps
  /// changed) must go through refresh + invalidateNets afterwards.
  void applyResize(InstId inst);

  /// Mirrors the optimizer's buffer insertion: instance \p buf (which must
  /// be the newest instance, combinational) was inserted on \p drivenNet
  /// (its input now hangs on that net) and drives \p newNet, onto which
  /// some of drivenNet's former sinks were moved. Appends the buffer's pins
  /// to the graph and repoints the moved sinks' wire edges. Delays are
  /// placeholders until invalidateNets({drivenNet, newNet}).
  void applyBufferInsertion(InstId buf, NetId drivenNet, NetId newNet);

  // --- queries ------------------------------------------------------------

  /// Full analysis at \p period.
  TimingReport analyze(double period) const;

  /// Returned by findMinPeriod / findMinPeriodBisect when no finite period
  /// satisfies every constraint (a half-cycle output port reached by a
  /// half-cycle launch with positive delay: T/2 + d <= T/2 has no
  /// solution). Checked by the optimizer.
  static constexpr double kInfeasiblePeriod = std::numeric_limits<double>::infinity();

  /// Smallest feasible period [s], clamped to >= loPs picoseconds, from a
  /// single parametric arrival sweep: arc delays are period-independent, so
  /// each endpoint yields a closed-form bound on T (full-cycle launches
  /// bound T directly, half-cycle launches bound T/2). Returns
  /// kInfeasiblePeriod (and records sta.min_period_infeasible) when
  /// unsatisfiable. \p hiPs is accepted for signature compatibility with
  /// the bisection cross-check; the exact solve does not need a bracket.
  double findMinPeriod(double loPs = 50.0, double hiPs = 100000.0) const;

  /// Legacy bisection on worstSlack within [loPs, hiPs] picoseconds; kept
  /// as a cross-check for findMinPeriod. Returns kInfeasiblePeriod (with a
  /// warning and the sta.min_period_infeasible counter) when the bracket's
  /// upper bound is still infeasible after 8 doublings.
  double findMinPeriodBisect(double loPs = 50.0, double hiPs = 100000.0) const;

  /// Maximum frequency [Hz] = 1 / findMinPeriod() (0 when infeasible).
  double maxFrequency() const { return 1.0 / findMinPeriod(); }

  /// Slack of the worst path at \p period (cheap entry point for the
  /// optimizer; equivalent to analyze(period).wns but skips path tracing).
  double worstSlack(double period) const;

  /// Arrival time at every top-level port at \p period, indexed by PortId
  /// (-infinity for ports no path reaches). Used by the tile-array checker
  /// to stitch inter-tile half-paths.
  std::vector<double> portArrivals(double period) const;

  /// Per-net setup criticality at \p period, indexed by NetId, for the
  /// timing-driven router (RouterOptions::netCriticality). A net's
  /// criticality is max over its sink pins of clamp(1 - slack / period,
  /// 0, 1), with pin slack = required - arrival from a full forward
  /// arrival sweep plus a backward required-time sweep over the same
  /// fanin CSR. Pins no constrained path reaches get slack +inf, i.e.
  /// criticality 0. Deterministic: the backward sweep is a sequential
  /// reverse-level relaxation (min is exact, so the order within a level
  /// cannot matter).
  std::vector<double> netCriticality(double period) const;

  /// Hold analysis: worst hold slack over all sequential/macro data
  /// endpoints, using minimum (earliest) arrivals. Hold slack =
  /// minArrival - (captureLatency + holdMargin). With a balanced clock and
  /// the library's zero hold requirement the check passes unless a path is
  /// direct (no logic); \p holdMargin models the per-cell hold requirement.
  double worstHoldSlack(double holdMargin = 10e-12) const;

  // --- incremental introspection (tests / benches) ------------------------

  struct IncrStats {
    std::int64_t incrUpdates = 0;    ///< cone updates that completed.
    std::int64_t coneNodes = 0;      ///< pins visited by completed cones.
    std::int64_t fullFallbacks = 0;  ///< cones aborted into a full sweep.
    std::int64_t fullSweeps = 0;     ///< full levelized sweeps run.
  };
  const IncrStats& incrStats() const { return stats_; }

  /// Cone update aborts into a full sweep once it has visited more than
  /// ratio * numPins pins (the worklist bookkeeping then costs more than
  /// the straight-line sweep). Deterministic: the visit count is a pure
  /// function of the dirty set and the arrival values.
  void setConeFallbackRatio(double ratio) { coneFallbackRatio_ = ratio; }

 private:
  struct Arc {
    int fromPin;   ///< global pin id.
    int toPin;
    double intrinsic;
    double driveRes;
  };

  /// One timing edge seen from its sink: the source pin plus the full
  /// derated edge delay (wire delay for net edges, intrinsic + drive * load
  /// for cell arcs). Both max (setup) and min (hold) sweeps share these.
  struct FaninEdge {
    int fromPin;
    double delay;
  };
  /// Cell-arc coefficients of a fanin edge (zero for wire edges), kept so
  /// invalidateNet can re-derive the derated delay when the driven net's
  /// load changes without consulting the library.
  struct FaninArcGain {
    double intrinsic = 0.0;
    double driveRes = 0.0;
  };

  int pinId(const NetPin& p) const;
  NetPin pinOf(int id) const;
  void build();
  void rebuildAll();

  void markDirty(int pin) const;
  void ensureLevels() const;
  void recomputeLevels(const std::vector<int>& seeds);

  bool recomputeArr(int v, double period) const;
  bool recomputeParam(int v) const;
  void fullArrSweep(double period) const;
  void fullParamSweep() const;
  void ensureArrivals(double period) const;
  void ensureParam() const;
  template <typename Recompute>
  std::int64_t coneSweep(const std::vector<int>& seeds, Recompute&& re) const;

  void propagateMin(std::vector<double>& arr) const;
  double endpointSlack(double period, const std::vector<double>& arr, int pin,
                       double* reqOut = nullptr) const;

  const Netlist& nl_;
  const std::vector<NetParasitics>& paras_;
  const ClockModel* clock_;
  Corner corner_;

  // Pin id layout: ports first ([0, numPortPins_)), then instance pins in
  // instance order — so appending an instance appends pin ids and the
  // existing graph arrays extend in place.
  int numPins_ = 0;
  int numPortPins_ = 0;
  std::vector<int> instPinBase_;    ///< first global pin id per instance.

  std::vector<Arc> launchArcs_;     ///< CK->Q arcs, sorted by toPin.
  std::vector<std::uint8_t> isLaunchPin_;  ///< pin has >= 1 launch arc.
  std::vector<int> endpoints_;      ///< data pins of seq cells + output ports.
  std::vector<double> netLoad_;     ///< total load per net.
  bool hasHalfCycleInput_ = false;  ///< any half-cycle input port (arrivals
                                    ///< then depend on the period).

  // CSR fanin adjacency (+ per-edge arc coefficients) and its fanout
  // mirror. Rows are patchable in place: a sink pin always has exactly one
  // wire fanin and an output pin only cell-arc fanins, so no edit the
  // incremental API supports changes a row's size.
  std::vector<int> faninStart_;     ///< size numPins_+1; offsets into fanins_.
  std::vector<FaninEdge> fanins_;
  std::vector<FaninArcGain> faninArc_;  ///< parallel to fanins_.
  std::vector<std::vector<int>> fanout_;  ///< timing successors per pin.

  // Levelization: level_ is maintained incrementally (worklist relaxation
  // on structural edits); the flat level buckets are re-derived lazily.
  std::vector<int> level_;
  mutable std::vector<int> levelStart_;  ///< size numLevels+1.
  mutable std::vector<int> levelNodes_;  ///< pin ids, ascending within a level.
  mutable bool levelBucketsDirty_ = true;

  int numThreads_ = 0;              ///< requested (0 = auto), resolved per sweep.
  double coneFallbackRatio_ = 0.5;

  // Cached at-period arrivals (arr_/pred_ valid at arrPeriod_) and the
  // parametric pair: arr0_ = latest arrival over fixed-time launches
  // (t = 0 ports, CK->Q), arrH_ = latest arrival over half-cycle launches
  // *excluding* the T/2 offset. pending* hold the dirty pins each cache
  // still has to re-propagate.
  mutable std::vector<double> arr_;
  mutable std::vector<int> pred_;
  mutable bool arrValid_ = false;
  mutable double arrPeriod_ = 0.0;
  mutable std::vector<double> arr0_;
  mutable std::vector<double> arrH_;
  mutable bool paramValid_ = false;
  mutable std::vector<int> pendingArr_;
  mutable std::vector<int> pendingParam_;

  // Cone-sweep scratch (reused across updates; epoch-stamped dedup).
  mutable std::vector<std::vector<int>> coneActive_;
  mutable std::vector<std::uint32_t> coneStamp_;
  mutable std::uint32_t coneEpoch_ = 0;
  mutable std::vector<std::uint8_t> coneChanged_;

  mutable IncrStats stats_;
};

}  // namespace m3d
