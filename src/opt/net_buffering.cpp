#include "opt/net_buffering.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace m3d {

namespace {

/// Splits one net: sinks farther than maxLength from the driver are grouped
/// by coarse grid cluster; each cluster gets a repeater at its centroid
/// (stepped toward the driver so segments shrink each round). Returns the
/// ids of newly created nets (which may still be long and get re-processed).
std::vector<NetId> splitNet(Netlist& nl, const Floorplan& fp, NetId netId,
                            const NetBufferingOptions& opt, CellTypeId bufId, int bufA, int bufY,
                            int& counter) {
  const Dbu maxLength = opt.maxLength;
  std::vector<NetId> created;
  const Net& net = nl.net(netId);
  if (net.isClock || net.pins.size() < 2 || net.driverIdx < 0) return created;

  const Point drv = nl.pinPosition(net.pins[static_cast<std::size_t>(net.driverIdx)]);
  const bool fanoutSplit =
      static_cast<int>(net.pins.size()) - 1 > opt.maxFanout;

  // Cluster sinks that need buffering on a grid of maxLength cells: far
  // sinks always; for over-fanout nets, every sink beyond the first
  // maxFanout-1 nearest ones.
  std::map<std::pair<Dbu, Dbu>, std::vector<NetPin>> clusters;
  if (fanoutSplit) {
    // Keep the closest sinks direct; everything else moves to buffer trees.
    std::vector<std::pair<Dbu, int>> byDist;
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      byDist.push_back({manhattanDistance(drv, nl.pinPosition(net.pins[static_cast<std::size_t>(k)])), k});
    }
    std::sort(byDist.begin(), byDist.end());
    for (std::size_t i = static_cast<std::size_t>(opt.maxFanout) - 1; i < byDist.size(); ++i) {
      const NetPin& p = net.pins[static_cast<std::size_t>(byDist[i].second)];
      const Point pp = nl.pinPosition(p);
      clusters[{pp.x / maxLength, pp.y / maxLength}].push_back(p);
    }
  } else {
    for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
      if (k == net.driverIdx) continue;
      const NetPin& p = net.pins[static_cast<std::size_t>(k)];
      const Point pp = nl.pinPosition(p);
      if (manhattanDistance(drv, pp) <= maxLength) continue;
      clusters[{pp.x / maxLength, pp.y / maxLength}].push_back(p);
    }
  }
  if (clusters.empty()) return created;

  for (auto& [cell, pins] : clusters) {
    (void)cell;
    // Centroid of the cluster, stepped 40% toward the driver so that each
    // round provably shortens the remaining span.
    std::int64_t sx = 0;
    std::int64_t sy = 0;
    for (const NetPin& p : pins) {
      const Point pp = nl.pinPosition(p);
      sx += pp.x;
      sy += pp.y;
    }
    Point c{sx / static_cast<std::int64_t>(pins.size()),
            sy / static_cast<std::int64_t>(pins.size())};
    c.x = c.x + (drv.x - c.x) * 2 / 5;
    c.y = c.y + (drv.y - c.y) * 2 / 5;
    c = fp.die.clamp(c);

    const InstId buf = nl.addInstance("rep_buf_" + std::to_string(counter), bufId);
    nl.instance(buf).pos = c;
    const NetId newNet = nl.addNet("rep_net_" + std::to_string(counter));
    ++counter;
    for (const NetPin& p : pins) {
      nl.disconnect(netId, p);
      if (p.kind == NetPin::Kind::kInstPin) {
        nl.connect(newNet, p.inst, p.libPin);
      } else {
        nl.connectPort(newNet, p.port);
      }
    }
    nl.connect(netId, buf, bufA);
    nl.connect(newNet, buf, bufY);
    created.push_back(newNet);
  }
  return created;
}

}  // namespace

NetBufferingResult bufferLongNets(Netlist& nl, const Floorplan& fp,
                                  const NetBufferingOptions& opt) {
  NetBufferingResult result;
  const CellTypeId bufId = nl.library().findCell(opt.bufferCell);
  assert(bufId != kInvalidCellType);
  const int bufA = *nl.library().cell(bufId).findPin("A");
  const int bufY = *nl.library().cell(bufId).findPin("Y");

  int counter = 0;
  std::vector<NetId> work;
  for (NetId n = 0; n < nl.numNets(); ++n) work.push_back(n);

  for (int round = 0; round < opt.maxRounds && !work.empty(); ++round) {
    std::vector<NetId> next;
    for (NetId n : work) {
      const std::vector<NetId> created =
          splitNet(nl, fp, n, opt, bufId, bufA, bufY, counter);
      if (!created.empty()) {
        ++result.netsProcessed;
        next.insert(next.end(), created.begin(), created.end());
        next.push_back(n);  // the original may still have far clusters
      }
    }
    work = std::move(next);
  }
  result.buffersInserted = counter;
  return result;
}

}  // namespace m3d
