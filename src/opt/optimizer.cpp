#include "opt/optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <set>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace m3d {

void EstimatedParasitics::refresh(const Netlist& nl, const std::vector<NetId>& nets,
                                  std::vector<NetParasitics>& paras) {
  if (static_cast<int>(paras.size()) < nl.numNets()) {
    paras.resize(static_cast<std::size_t>(nl.numNets()));
  }
  for (NetId n : nets) {
    paras[static_cast<std::size_t>(n)] = estimateNet(nl, n, opt_);
  }
}

void RoutedParasitics::refresh(const Netlist& nl, const std::vector<NetId>& nets,
                               std::vector<NetParasitics>& paras) {
  assert(static_cast<int>(paras.size()) == nl.numNets() &&
         "routed provider cannot handle netlist growth");
  for (NetId n : nets) {
    paras[static_cast<std::size_t>(n)] =
        extractRouted(nl, n, grid_, routes_.nets[static_cast<std::size_t>(n)]);
  }
}

namespace {

/// Nets whose parasitics change when \p inst changes size: every net on an
/// input pin (pin cap changes the net's load and Elmore).
std::vector<NetId> inputNetsOf(const Netlist& nl, InstId inst) {
  std::vector<NetId> out;
  const CellType& c = nl.cellOf(inst);
  const Instance& in = nl.instance(inst);
  for (std::size_t p = 0; p < c.pins.size(); ++p) {
    if (c.pins[p].dir != PinDir::kInput) continue;
    const NetId n = in.pinNets[p];
    if (n != kInvalidId) out.push_back(n);
  }
  return out;
}

}  // namespace

int presizeForLoad(Netlist& nl, std::vector<NetParasitics>& paras,
                   ParasiticsProvider& provider, double maxStageDelay,
                   const std::function<bool(InstId, CellTypeId)>& resizeGuard) {
  const Library& lib = nl.library();
  int resized = 0;
  std::vector<NetId> dirty;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const CellType& c = nl.cellOf(i);
    if (c.isMacro() || c.cls == CellClass::kFiller || c.family.empty()) continue;
    const auto outPin = c.firstOutputPin();
    if (!outPin) continue;
    const NetId outNet = nl.instance(i).pinNets[static_cast<std::size_t>(*outPin)];
    if (outNet == kInvalidId) continue;
    const double load = paras[static_cast<std::size_t>(outNet)].totalLoad();
    bool changed = false;
    while (true) {
      double worstRes = 0.0;
      for (const TimingArc& a : nl.cellOf(i).arcs) worstRes = std::max(worstRes, a.driveRes);
      if (worstRes * load <= maxStageDelay) break;
      const CellTypeId up = lib.nextSizeUp(nl.instance(i).type);
      if (up == kInvalidCellType) break;
      if (resizeGuard && !resizeGuard(i, up)) break;
      nl.resize(i, up);
      changed = true;
      ++resized;
    }
    if (changed) {
      for (NetId n : inputNetsOf(nl, i)) dirty.push_back(n);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  provider.refresh(nl, dirty, paras);
  obs::counter("opt.cells_presized").add(resized);
  M3D_LOG(debug) << "presize: resized=" << resized;
  return resized;
}

namespace {

/// Shared pass loop. With \p engine set, netlist edits are mirrored into the
/// persistent incremental Sta; with engine == nullptr a fresh Sta is built at
/// every probe point (the legacy shape, kept for A/B benchmarking). Both
/// paths run the same queries on the same netlist/parasitics state, so their
/// results are bit-identical.
OptimizeResult optimizeTimingImpl(Sta* engine, Netlist& nl, std::vector<NetParasitics>& paras,
                                  ParasiticsProvider& provider, const ClockModel* clock,
                                  const OptimizerOptions& opt) {
  OptimizeResult result;
  if (opt.maxPasses <= 0) return result;  // nothing to do: skip the initial probe
  const Library& lib = nl.library();
  const CellTypeId bufId = lib.findCell(opt.bufferCell);
  assert(bufId != kInvalidCellType);
  const int bufA = *lib.cell(bufId).findPin("A");
  const int bufY = *lib.cell(bufId).findPin("Y");

  std::optional<Sta> local;
  const auto freshSta = [&]() -> Sta& {
    if (engine) return *engine;
    local.emplace(nl, paras, clock, kTypicalCorner, opt.numThreads);
    return *local;
  };

  double wns = freshSta().worstSlack(opt.targetPeriod);
  result.initialWns = wns;

  int bufCounter = 0;
  for (int pass = 0; pass < opt.maxPasses; ++pass) {
    obs::ScopedPhase passPhase("opt.pass");
    result.passes = pass + 1;
    if (wns >= 0.0) break;

    const TimingReport rep = freshSta().analyze(opt.targetPeriod);
    if (rep.criticalPath.size() < 2) break;

    // Snapshot for revert.
    struct Resize {
      InstId inst;
      CellTypeId oldType;
    };
    std::vector<Resize> resizes;
    std::vector<NetId> dirty;
    int buffersThisPass = 0;

    // --- Gate sizing along the critical path ------------------------------
    for (const PathStep& step : rep.criticalPath) {
      if (step.pin.kind != NetPin::Kind::kInstPin) continue;
      const InstId inst = step.pin.inst;
      const CellType& c = nl.cellOf(inst);
      if (c.pins[static_cast<std::size_t>(step.pin.libPin)].dir != PinDir::kOutput) continue;
      const CellTypeId up = lib.nextSizeUp(nl.instance(inst).type);
      if (up == kInvalidCellType) continue;
      if (opt.resizeGuard && !opt.resizeGuard(inst, up)) continue;
      resizes.push_back({inst, nl.instance(inst).type});
      nl.resize(inst, up);
      if (engine) engine->applyResize(inst);
      ++result.cellsResized;
      for (NetId n : inputNetsOf(nl, inst)) dirty.push_back(n);
    }

    // --- Buffering of long critical wires ---------------------------------
    if (provider.allowBuffering()) {
      for (std::size_t k = 1; k < rep.criticalPath.size(); ++k) {
        const NetPin& a = rep.criticalPath[k - 1].pin;
        const NetPin& b = rep.criticalPath[k].pin;
        const bool sameInst = a.kind == NetPin::Kind::kInstPin &&
                              b.kind == NetPin::Kind::kInstPin && a.inst == b.inst;
        if (sameInst) continue;  // gate arc, not a wire
        if (b.kind != NetPin::Kind::kInstPin) continue;  // don't buffer into ports
        const NetId netId = nl.instance(b.inst).pinNets[static_cast<std::size_t>(b.libPin)];
        if (netId == kInvalidId || nl.net(netId).isClock) continue;
        // Copy the pin list up front: inserting the buffer below grows the
        // netlist's net storage and would invalidate any Net reference.
        const std::vector<NetPin> netPins = nl.net(netId).pins;
        const int driverIdx = nl.net(netId).driverIdx;
        double wireDelay = 0.0;
        for (int i = 0; i < static_cast<int>(netPins.size()); ++i) {
          if (netPins[static_cast<std::size_t>(i)] == b) {
            wireDelay =
                paras[static_cast<std::size_t>(netId)].sinkWireDelay[static_cast<std::size_t>(i)];
            break;
          }
        }
        if (wireDelay < opt.bufferWireDelayThreshold) continue;

        // Insert a buffer at the midpoint of driver->b and move b (plus any
        // sink within a quarter of the span of b) onto the buffered subnet.
        const Point pa = nl.pinPosition(a);
        const Point pb = nl.pinPosition(b);
        const Point mid{(pa.x + pb.x) / 2, (pa.y + pb.y) / 2};
        const InstId buf = nl.addInstance("opt_buf_" + std::to_string(bufCounter++), bufId);
        nl.instance(buf).pos = mid;
        result.insertedBuffers.push_back(buf);
        const NetId newNet = nl.addNet("opt_net_" + std::to_string(bufCounter));
        // Move b and nearby sinks to the new net.
        const Dbu radius = manhattanDistance(pa, pb) / 4;
        std::vector<NetPin> toMove;
        for (int i = 0; i < static_cast<int>(netPins.size()); ++i) {
          if (i == driverIdx) continue;
          const NetPin& p = netPins[static_cast<std::size_t>(i)];
          if (p == b || manhattanDistance(nl.pinPosition(p), pb) <= radius) {
            toMove.push_back(p);
          }
        }
        for (const NetPin& p : toMove) {
          nl.disconnect(netId, p);
          if (p.kind == NetPin::Kind::kInstPin) {
            nl.connect(newNet, p.inst, p.libPin);
          } else {
            nl.connectPort(newNet, p.port);
          }
        }
        nl.connect(netId, buf, bufA);
        nl.connect(newNet, buf, bufY);
        if (engine) engine->applyBufferInsertion(buf, netId, newNet);
        ++buffersThisPass;
        ++result.buffersInserted;
        dirty.push_back(netId);
        dirty.push_back(newNet);
        break;  // one buffer per pass keeps the path report valid
      }
    }

    if (resizes.empty() && buffersThisPass == 0) break;  // nothing left to try

    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    provider.refresh(nl, dirty, paras);
    if (engine) engine->invalidateNets(dirty);

    const double newWns = freshSta().worstSlack(opt.targetPeriod);
    if (newWns <= wns + 1e-15 && buffersThisPass == 0) {
      // Sizing made things worse (upstream loading): revert and stop.
      for (const Resize& r : resizes) {
        nl.resize(r.inst, r.oldType);
        if (engine) engine->applyResize(r.inst);
      }
      provider.refresh(nl, dirty, paras);
      if (engine) engine->invalidateNets(dirty);
      break;
    }
    passPhase.attr("wns_ps", newWns * 1e12);
    obs::series("opt.wns_ps").record(newWns * 1e12);
    passPhase.attr("resized", static_cast<double>(resizes.size()));
    passPhase.attr("buffers", static_cast<double>(buffersThisPass));
    M3D_LOG(debug) << "opt pass " << (pass + 1) << ": wns_ps=" << newWns * 1e12
                   << " resized=" << resizes.size() << " buffers=" << buffersThisPass;
    wns = newWns;
  }

  obs::counter("opt.cells_resized").add(result.cellsResized);
  obs::counter("opt.buffers_inserted").add(result.buffersInserted);
  obs::series("opt.cells_resized").record(static_cast<double>(result.cellsResized));
  result.finalWns = wns;
  return result;
}

}  // namespace

OptimizeResult optimizeTiming(Netlist& nl, std::vector<NetParasitics>& paras,
                              ParasiticsProvider& provider, const ClockModel* clock,
                              const OptimizerOptions& opt) {
  if (opt.incrementalSta && opt.maxPasses > 0) {
    Sta sta(nl, paras, clock, kTypicalCorner, opt.numThreads);
    return optimizeTimingImpl(&sta, nl, paras, provider, clock, opt);
  }
  return optimizeTimingImpl(nullptr, nl, paras, provider, clock, opt);
}

OptimizeResult optimizeTiming(Sta& sta, Netlist& nl, std::vector<NetParasitics>& paras,
                              ParasiticsProvider& provider, const ClockModel* clock,
                              const OptimizerOptions& opt) {
  return optimizeTimingImpl(&sta, nl, paras, provider, clock, opt);
}

MaxFreqOptResult optimizeForMaxFrequency(Netlist& nl, std::vector<NetParasitics>& paras,
                                         ParasiticsProvider& provider, const ClockModel* clock,
                                         OptimizerOptions base, int rounds, double tighten) {
  MaxFreqOptResult out;
  // One engine for the whole schedule: every round's passes feed it the
  // dirty net list, so the per-round min-period probes ride the arrival
  // cache instead of rebuilding the graph.
  std::optional<Sta> persistent;
  if (base.incrementalSta) persistent.emplace(nl, paras, clock, kTypicalCorner, base.numThreads);
  const auto minPeriodNow = [&]() {
    if (persistent) return persistent->findMinPeriod();
    return Sta(nl, paras, clock, kTypicalCorner, base.numThreads).findMinPeriod();
  };
  double best = minPeriodNow();
  if (!std::isfinite(best)) {
    M3D_LOG(warn) << "maxfreq: design has no feasible period; skipping optimization";
    out.minPeriod = best;
    return out;
  }
  for (int r = 0; r < rounds; ++r) {
    obs::ScopedPhase round("opt.round");
    out.rounds = r + 1;
    base.targetPeriod = best * tighten;
    const OptimizeResult res = persistent
                                   ? optimizeTimingImpl(&*persistent, nl, paras, provider, clock, base)
                                   : optimizeTimingImpl(nullptr, nl, paras, provider, clock, base);
    out.cellsResized += res.cellsResized;
    out.buffersInserted += res.buffersInserted;
    out.insertedBuffers.insert(out.insertedBuffers.end(), res.insertedBuffers.begin(),
                               res.insertedBuffers.end());
    const double now = minPeriodNow();
    round.attr("min_period_ns", now * 1e9);
    round.attr("resized", static_cast<double>(res.cellsResized));
    obs::series("opt.min_period_ns").record(now * 1e9);
    M3D_LOG(debug) << "maxfreq round " << (r + 1) << ": min_period_ns=" << now * 1e9
                   << " resized=" << res.cellsResized << " buffers=" << res.buffersInserted;
    if (!std::isfinite(now)) {
      out.minPeriod = now;
      return out;
    }
    if (now >= best * 0.999) {
      best = std::min(best, now);
      break;
    }
    best = now;
  }
  out.minPeriod = best;
  return out;
}

}  // namespace m3d
