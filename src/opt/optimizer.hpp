#pragma once

/// \file optimizer.hpp
/// Timing optimization: greedy critical-path gate sizing and net buffering.
///
/// The optimizer is parasitics-agnostic: it works against a
/// ParasiticsProvider so the same engine optimizes
///  - true designs (routed extraction: 2D baseline, Macro-3D), and
///  - pseudo designs (estimated/scaled parasitics: S2D, C2D).
/// This is how the paper's central failure mode is reproduced honestly: S2D
/// and C2D run their optimization against mispredicted parasitics, and the
/// final (true) timing of the 3D design inherits the wrongly sized buffers
/// (Sec. III: "many paths being over-optimized ... or under-optimized").

#include <functional>
#include <memory>
#include <vector>

#include "extract/extraction.hpp"
#include "sta/sta.hpp"

namespace m3d {

/// Supplies parasitics for nets after netlist edits.
class ParasiticsProvider {
 public:
  virtual ~ParasiticsProvider() = default;
  /// Recomputes parasitics of \p nets into \p paras (resizing it if the
  /// netlist has grown).
  virtual void refresh(const Netlist& nl, const std::vector<NetId>& nets,
                       std::vector<NetParasitics>& paras) = 0;
  /// Whether the optimizer may insert buffers (pre-route only: routed
  /// geometry cannot absorb new nets without rerouting).
  virtual bool allowBuffering() const = 0;
};

/// Estimation-backed provider (pre-route / pseudo-design optimization).
class EstimatedParasitics final : public ParasiticsProvider {
 public:
  explicit EstimatedParasitics(EstimationOptions opt) : opt_(opt) {}
  void refresh(const Netlist& nl, const std::vector<NetId>& nets,
               std::vector<NetParasitics>& paras) override;
  bool allowBuffering() const override { return true; }

 private:
  EstimationOptions opt_;
};

/// Routed-extraction-backed provider (post-route sizing).
class RoutedParasitics final : public ParasiticsProvider {
 public:
  RoutedParasitics(const RouteGrid& grid, const RoutingResult& routes)
      : grid_(grid), routes_(routes) {}
  void refresh(const Netlist& nl, const std::vector<NetId>& nets,
               std::vector<NetParasitics>& paras) override;
  bool allowBuffering() const override { return false; }

 private:
  const RouteGrid& grid_;
  const RoutingResult& routes_;
};

struct OptimizerOptions {
  double targetPeriod = 2.0e-9;  ///< optimize until WNS(target) >= 0.
  int maxPasses = 20;
  /// Threads for the STA sweeps the optimizer runs between passes (0 = auto:
  /// M3D_THREADS env, else hardware_concurrency). Bit-identical results at
  /// any count.
  int numThreads = 0;
  /// Wire delay beyond which a critical net stage gets a buffer [s].
  double bufferWireDelayThreshold = 40e-12;
  const char* bufferCell = "BUF_X8";
  /// Keep one incremental Sta alive across passes/rounds (cone-limited
  /// arrival updates fed by the dirty net list) instead of rebuilding the
  /// timing graph from scratch per pass. Results are bit-identical either
  /// way (see DESIGN.md Sec. 5j), so the flag is excluded from checkpoint
  /// stage keys; it exists to A/B the rebuild cost (bench_sta).
  bool incrementalSta = true;
  /// Optional veto on in-place resizes: called with the instance and the
  /// candidate master before committing; returning false skips that resize.
  /// Post-route flows install a frozen-placement footprint guard here --
  /// nothing re-legalizes after routing, so a wider master is only legal
  /// while it still fits between its frozen row neighbors.
  std::function<bool(InstId, CellTypeId)> resizeGuard;
};

struct OptimizeResult {
  int cellsResized = 0;
  int buffersInserted = 0;
  int passes = 0;
  double initialWns = 0.0;
  double finalWns = 0.0;
  std::vector<InstId> insertedBuffers;
};

/// Optimizes \p nl against \p paras (updated in place through \p provider).
/// The clock model (may be null) is honored for launch/capture times.
OptimizeResult optimizeTiming(Netlist& nl, std::vector<NetParasitics>& paras,
                              ParasiticsProvider& provider, const ClockModel* clock,
                              const OptimizerOptions& opt);

/// Same optimization driven through a caller-owned persistent \p sta (which
/// must have been built over this \p nl / \p paras pair). Netlist edits are
/// mirrored into the engine via its incremental API, so repeated calls
/// (e.g. the max-frequency rounds) never rebuild the timing graph.
OptimizeResult optimizeTiming(Sta& sta, Netlist& nl, std::vector<NetParasitics>& paras,
                              ParasiticsProvider& provider, const ClockModel* clock,
                              const OptimizerOptions& opt);

/// Global load-based presizing (synthesis-style): upsizes every cell whose
/// output stage delay (driveRes * load) exceeds \p maxStageDelay until it
/// meets the target or tops out its drive family. One linear sweep; refresh
/// is called for nets whose pin caps changed. Returns cells resized.
int presizeForLoad(Netlist& nl, std::vector<NetParasitics>& paras,
                   ParasiticsProvider& provider, double maxStageDelay = 130e-12,
                   const std::function<bool(InstId, CellTypeId)>& resizeGuard = {});

struct MaxFreqOptResult {
  double minPeriod = 0.0;   ///< [s] after optimization.
  int rounds = 0;
  int cellsResized = 0;
  int buffersInserted = 0;
  std::vector<InstId> insertedBuffers;
};

/// Repeatedly tightens the target period toward the achievable minimum and
/// re-optimizes — the "max-performance" recipe the paper's comparisons use.
MaxFreqOptResult optimizeForMaxFrequency(Netlist& nl, std::vector<NetParasitics>& paras,
                                         ParasiticsProvider& provider, const ClockModel* clock,
                                         OptimizerOptions base, int rounds = 5,
                                         double tighten = 0.93);

}  // namespace m3d
