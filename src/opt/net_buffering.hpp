#pragma once

/// \file net_buffering.hpp
/// Global repeater insertion: splits every long signal net into bounded-
/// length segments by inserting buffer trees, the way commercial P&R inserts
/// thousands of repeaters in wire-dominated nodes. Runs geometrically
/// (no STA) before timing optimization; the sizing optimizer then tunes the
/// critical ones.

#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"

namespace m3d {

struct NetBufferingOptions {
  /// Maximum driver->sink Manhattan length before a repeater is inserted
  /// [DBU].
  Dbu maxLength = umToDbu(100.0);
  /// Maximum sink count before the net gets a buffer tree (synthesis-style
  /// fanout buffering).
  int maxFanout = 6;
  const char* bufferCell = "BUF_X8";
  int maxRounds = 6;  ///< recursion bound for very long nets.
};

struct NetBufferingResult {
  int buffersInserted = 0;
  int netsProcessed = 0;
};

/// Inserts repeaters on all non-clock nets whose driver->sink spans exceed
/// maxLength. Buffer positions are clamped into the die; run legalize()
/// afterwards. Deterministic.
NetBufferingResult bufferLongNets(Netlist& nl, const Floorplan& fp,
                                  const NetBufferingOptions& opt = NetBufferingOptions{});

}  // namespace m3d
