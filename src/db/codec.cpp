#include "db/codec.hpp"

#include <set>
#include <utility>

#include "db/hash.hpp"

namespace m3d::db {

namespace {

void encodePoint(BinWriter& w, const Point& p) {
  w.i64(p.x);
  w.i64(p.y);
}

Point decodePoint(BinReader& r) {
  Point p;
  p.x = r.i64();
  p.y = r.i64();
  return p;
}

void encodeRect(BinWriter& w, const Rect& rc) {
  w.i64(rc.xlo);
  w.i64(rc.ylo);
  w.i64(rc.xhi);
  w.i64(rc.yhi);
}

Rect decodeRect(BinReader& r) {
  Rect rc;
  rc.xlo = r.i64();
  rc.ylo = r.i64();
  rc.xhi = r.i64();
  rc.yhi = r.i64();
  return rc;
}

void encodeDoubleVec(BinWriter& w, const std::vector<double>& v) {
  w.u64(static_cast<std::uint64_t>(v.size()));
  for (double x : v) w.f64(x);
}

bool decodeDoubleVec(BinReader& r, std::vector<double>& out) {
  const std::uint64_t n = r.count(8);
  if (!r.ok()) return false;
  out.resize(static_cast<std::size_t>(n));
  for (auto& x : out) x = r.f64();
  return r.ok();
}

void encodeI64Vec(BinWriter& w, const std::vector<std::int64_t>& v) {
  w.u64(static_cast<std::uint64_t>(v.size()));
  for (std::int64_t x : v) w.i64(x);
}

bool decodeI64Vec(BinReader& r, std::vector<std::int64_t>& out) {
  const std::uint64_t n = r.count(8);
  if (!r.ok()) return false;
  out.resize(static_cast<std::size_t>(n));
  for (auto& x : out) x = r.i64();
  return r.ok();
}

/// Decodes a vector of ids, each required to be in [\p lo, \p hi).
bool decodeIdVec(BinReader& r, std::vector<std::int32_t>& out, std::int32_t lo,
                 std::int32_t hi) {
  const std::uint64_t n = r.count(4);
  if (!r.ok()) return false;
  out.resize(static_cast<std::size_t>(n));
  for (auto& x : out) {
    x = r.i32();
    if (x < lo || x >= hi) {
      r.fail();
      return false;
    }
  }
  return r.ok();
}

}  // namespace

// --- Library ---------------------------------------------------------------

void encodeLibrary(BinWriter& w, const Library& lib) {
  w.u64(static_cast<std::uint64_t>(lib.numCells()));
  for (CellTypeId id = 0; id < lib.numCells(); ++id) {
    const CellType& c = lib.cell(id);
    w.str(c.name);
    w.u8(static_cast<std::uint8_t>(c.cls));
    w.i64(c.width);
    w.i64(c.height);
    w.i64(c.substrateWidth);
    w.i64(c.substrateHeight);
    w.u64(c.pins.size());
    for (const LibPin& p : c.pins) {
      w.str(p.name);
      w.u8(static_cast<std::uint8_t>(p.dir));
      w.f64(p.cap);
      w.b(p.isClock);
      w.str(p.layer);
      encodePoint(w, p.offset);
    }
    w.u64(c.arcs.size());
    for (const TimingArc& a : c.arcs) {
      w.i32(a.fromPin);
      w.i32(a.toPin);
      w.f64(a.intrinsic);
      w.f64(a.driveRes);
    }
    w.u64(c.obstructions.size());
    for (const Obstruction& o : c.obstructions) {
      w.str(o.layer);
      encodeRect(w, o.rect);
    }
    w.f64(c.setup);
    w.f64(c.leakage);
    w.f64(c.energyPerToggle);
    w.str(c.family);
    w.i32(c.driveStrength);
  }
  w.str(lib.bufferFamily());
  w.i32(lib.fillerCell());
}

bool decodeLibrary(BinReader& r, Library& out) {
  const std::uint64_t numCells = r.count(8);
  if (!r.ok()) return false;
  std::set<std::string> names;
  for (std::uint64_t i = 0; i < numCells; ++i) {
    CellType c;
    c.name = r.str();
    const std::uint8_t cls = r.u8();
    c.width = r.i64();
    c.height = r.i64();
    c.substrateWidth = r.i64();
    c.substrateHeight = r.i64();
    // Guard the invariants Library::addCell asserts, so a corrupt payload
    // fails closed instead of tripping an assert.
    if (!r.ok() || c.name.empty() || !names.insert(c.name).second || cls > 4 ||
        c.width <= 0 || c.height <= 0 || c.substrateWidth < 0 || c.substrateHeight < 0) {
      r.fail();
      return false;
    }
    c.cls = static_cast<CellClass>(cls);
    const std::uint64_t numPins = r.count(8);
    if (!r.ok()) return false;
    for (std::uint64_t k = 0; k < numPins; ++k) {
      LibPin p;
      p.name = r.str();
      const std::uint8_t dir = r.u8();
      p.cap = r.f64();
      p.isClock = r.b();
      p.layer = r.str();
      p.offset = decodePoint(r);
      if (!r.ok() || dir > 2) {
        r.fail();
        return false;
      }
      p.dir = static_cast<PinDir>(dir);
      c.pins.push_back(std::move(p));
    }
    const std::uint64_t numArcs = r.count(8);
    if (!r.ok()) return false;
    for (std::uint64_t k = 0; k < numArcs; ++k) {
      TimingArc a;
      a.fromPin = r.i32();
      a.toPin = r.i32();
      a.intrinsic = r.f64();
      a.driveRes = r.f64();
      const int np = static_cast<int>(c.pins.size());
      if (!r.ok() || a.fromPin < 0 || a.fromPin >= np || a.toPin < 0 || a.toPin >= np) {
        r.fail();
        return false;
      }
      c.arcs.push_back(a);
    }
    const std::uint64_t numObs = r.count(8);
    if (!r.ok()) return false;
    for (std::uint64_t k = 0; k < numObs; ++k) {
      Obstruction o;
      o.layer = r.str();
      o.rect = decodeRect(r);
      if (!r.ok()) return false;
      c.obstructions.push_back(std::move(o));
    }
    c.setup = r.f64();
    c.leakage = r.f64();
    c.energyPerToggle = r.f64();
    c.family = r.str();
    c.driveStrength = r.i32();
    if (!r.ok()) return false;
    out.addCell(std::move(c));
  }
  out.setBufferFamily(r.str());
  const std::int32_t filler = r.i32();
  if (!r.ok() || filler < -1 || filler >= out.numCells()) {
    r.fail();
    return false;
  }
  out.setFillerCell(filler);
  return true;
}

// --- Netlist ---------------------------------------------------------------

void encodeNetlist(BinWriter& w, const Netlist& nl) {
  w.u64(static_cast<std::uint64_t>(nl.numInstances()));
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    w.str(inst.name);
    w.i32(inst.type);
    encodePoint(w, inst.pos);
    w.b(inst.fixed);
    w.u8(static_cast<std::uint8_t>(inst.die));
    w.u64(inst.pinNets.size());
    for (NetId n : inst.pinNets) w.i32(n);
  }
  w.u64(static_cast<std::uint64_t>(nl.numNets()));
  for (NetId n = 0; n < nl.numNets(); ++n) {
    const Net& net = nl.net(n);
    w.str(net.name);
    w.u64(net.pins.size());
    for (const NetPin& p : net.pins) {
      w.u8(static_cast<std::uint8_t>(p.kind));
      w.i32(p.inst);
      w.i32(p.libPin);
      w.i32(p.port);
    }
    w.i32(net.driverIdx);
    w.b(net.isClock);
  }
  w.u64(static_cast<std::uint64_t>(nl.numPorts()));
  for (PortId p = 0; p < nl.numPorts(); ++p) {
    const Port& port = nl.port(p);
    w.str(port.name);
    w.u8(static_cast<std::uint8_t>(port.dir));
    w.b(port.isClock);
    w.f64(port.cap);
    w.u8(static_cast<std::uint8_t>(port.side));
    encodePoint(w, port.pos);
    w.str(port.layer);
    w.i32(port.net);
    w.i32(port.pairTag);
    w.b(port.halfCycle);
  }
}

bool decodeNetlist(BinReader& r, Netlist& out) {
  const Library& lib = out.library();
  std::vector<Instance> insts;
  std::vector<Net> nets;
  std::vector<Port> ports;

  const std::uint64_t numInsts = r.count(8);
  if (!r.ok()) return false;
  insts.reserve(static_cast<std::size_t>(numInsts));
  for (std::uint64_t i = 0; i < numInsts; ++i) {
    Instance inst;
    inst.name = r.str();
    inst.type = r.i32();
    inst.pos = decodePoint(r);
    inst.fixed = r.b();
    const std::uint8_t die = r.u8();
    if (!r.ok() || inst.type < 0 || inst.type >= lib.numCells() || die > 1) {
      r.fail();
      return false;
    }
    inst.die = static_cast<DieId>(die);
    const std::uint64_t numPinNets = r.count(4);
    if (!r.ok() || numPinNets != lib.cell(inst.type).pins.size()) {
      r.fail();
      return false;
    }
    inst.pinNets.resize(static_cast<std::size_t>(numPinNets));
    for (auto& n : inst.pinNets) n = r.i32();
    if (!r.ok()) return false;
    insts.push_back(std::move(inst));
  }

  const std::uint64_t numNets = r.count(8);
  if (!r.ok()) return false;
  nets.reserve(static_cast<std::size_t>(numNets));
  for (std::uint64_t n = 0; n < numNets; ++n) {
    Net net;
    net.name = r.str();
    const std::uint64_t numPins = r.count(13);
    if (!r.ok()) return false;
    net.pins.reserve(static_cast<std::size_t>(numPins));
    for (std::uint64_t k = 0; k < numPins; ++k) {
      NetPin p;
      const std::uint8_t kind = r.u8();
      p.inst = r.i32();
      p.libPin = r.i32();
      p.port = r.i32();
      if (!r.ok() || kind > 1) {
        r.fail();
        return false;
      }
      p.kind = static_cast<NetPin::Kind>(kind);
      if (p.kind == NetPin::Kind::kInstPin) {
        if (p.inst < 0 || static_cast<std::uint64_t>(p.inst) >= numInsts || p.libPin < 0 ||
            static_cast<std::size_t>(p.libPin) >=
                lib.cell(insts[static_cast<std::size_t>(p.inst)].type).pins.size()) {
          r.fail();
          return false;
        }
      }
      net.pins.push_back(p);
    }
    net.driverIdx = r.i32();
    net.isClock = r.b();
    if (!r.ok() || net.driverIdx < -1 ||
        net.driverIdx >= static_cast<int>(net.pins.size())) {
      r.fail();
      return false;
    }
    nets.push_back(std::move(net));
  }

  const std::uint64_t numPorts = r.count(8);
  if (!r.ok()) return false;
  ports.reserve(static_cast<std::size_t>(numPorts));
  for (std::uint64_t p = 0; p < numPorts; ++p) {
    Port port;
    port.name = r.str();
    const std::uint8_t dir = r.u8();
    port.isClock = r.b();
    port.cap = r.f64();
    const std::uint8_t side = r.u8();
    port.pos = decodePoint(r);
    port.layer = r.str();
    port.net = r.i32();
    port.pairTag = r.i32();
    port.halfCycle = r.b();
    if (!r.ok() || dir > 2 || side > 3 || port.net < -1 ||
        static_cast<std::uint64_t>(port.net + 1) > numNets) {
      r.fail();
      return false;
    }
    port.dir = static_cast<PinDir>(dir);
    port.side = static_cast<Side>(side);
    ports.push_back(std::move(port));
  }

  // Cross-check net pin references against the now-known counts: pinNets
  // entries and port back-references must be valid net ids, port pins valid
  // port ids.
  const auto numNetsI = static_cast<std::int32_t>(numNets);
  const auto numPortsI = static_cast<std::int32_t>(numPorts);
  for (const Instance& inst : insts) {
    for (NetId n : inst.pinNets) {
      if (n < -1 || n >= numNetsI) return false;
    }
  }
  for (const Net& net : nets) {
    for (const NetPin& p : net.pins) {
      if (p.kind == NetPin::Kind::kPort && (p.port < 0 || p.port >= numPortsI)) return false;
    }
  }

  out.restore(std::move(insts), std::move(nets), std::move(ports));
  return true;
}

// --- Tile groups / config --------------------------------------------------

void encodeTileGroups(BinWriter& w, const TileGroups& g) {
  auto ids = [&w](const std::vector<InstId>& v) {
    w.u64(v.size());
    for (InstId i : v) w.i32(i);
  };
  ids(g.macros);
  ids(g.coreCells);
  ids(g.cacheCtrlCells);
  ids(g.nocCells);
  w.u64(g.modules.size());
  for (const auto& [name, cells] : g.modules) {
    w.str(name);
    ids(cells);
  }
  w.i32(g.clockNet);
  w.i32(g.clockPort);
}

bool decodeTileGroups(BinReader& r, TileGroups& out, int numInstances, int numNets,
                      int numPorts) {
  out = TileGroups{};
  if (!decodeIdVec(r, out.macros, 0, numInstances)) return false;
  if (!decodeIdVec(r, out.coreCells, 0, numInstances)) return false;
  if (!decodeIdVec(r, out.cacheCtrlCells, 0, numInstances)) return false;
  if (!decodeIdVec(r, out.nocCells, 0, numInstances)) return false;
  const std::uint64_t numModules = r.count(8);
  if (!r.ok()) return false;
  for (std::uint64_t i = 0; i < numModules; ++i) {
    std::string name = r.str();
    std::vector<InstId> cells;
    if (!decodeIdVec(r, cells, 0, numInstances)) return false;
    out.modules.emplace_back(std::move(name), std::move(cells));
  }
  out.clockNet = r.i32();
  out.clockPort = r.i32();
  if (!r.ok() || out.clockNet < -1 || out.clockNet >= numNets || out.clockPort < -1 ||
      out.clockPort >= numPorts) {
    r.fail();
    return false;
  }
  return true;
}

void encodeTileConfig(BinWriter& w, const TileConfig& c) {
  w.str(c.name);
  w.i32(c.cache.l1iKb);
  w.i32(c.cache.l1dKb);
  w.i32(c.cache.l2Kb);
  w.i32(c.cache.l3Kb);
  w.i32(c.coreGates);
  w.i32(c.coreRegs);
  w.i32(c.l1CtrlGates);
  w.i32(c.l1CtrlRegs);
  w.i32(c.l2CtrlGates);
  w.i32(c.l2CtrlRegs);
  w.i32(c.l3CtrlGates);
  w.i32(c.l3CtrlRegs);
  w.i32(c.nocGates);
  w.i32(c.nocRegs);
  w.i32(c.numNocs);
  w.i32(c.nocDataBits);
  w.i32(c.wordBits);
  w.i32(c.maxBankKb);
  w.f64(c.bitcellUm2);
  w.u64(c.seed);
}

bool decodeTileConfig(BinReader& r, TileConfig& out) {
  out = TileConfig{};
  out.name = r.str();
  out.cache.l1iKb = r.i32();
  out.cache.l1dKb = r.i32();
  out.cache.l2Kb = r.i32();
  out.cache.l3Kb = r.i32();
  out.coreGates = r.i32();
  out.coreRegs = r.i32();
  out.l1CtrlGates = r.i32();
  out.l1CtrlRegs = r.i32();
  out.l2CtrlGates = r.i32();
  out.l2CtrlRegs = r.i32();
  out.l3CtrlGates = r.i32();
  out.l3CtrlRegs = r.i32();
  out.nocGates = r.i32();
  out.nocRegs = r.i32();
  out.numNocs = r.i32();
  out.nocDataBits = r.i32();
  out.wordBits = r.i32();
  out.maxBankKb = r.i32();
  out.bitcellUm2 = r.f64();
  out.seed = r.u64();
  return r.ok();
}

// --- Tech / BEOL -----------------------------------------------------------

void encodeBeol(BinWriter& w, const Beol& beol) {
  w.u64(static_cast<std::uint64_t>(beol.numMetals()));
  for (const MetalLayer& m : beol.metals()) {
    w.str(m.name);
    w.u8(static_cast<std::uint8_t>(m.dir));
    w.i64(m.pitch);
    w.i64(m.width);
    w.f64(m.rPerUm);
    w.f64(m.cPerUm);
    w.u8(static_cast<std::uint8_t>(m.die));
  }
  w.u64(static_cast<std::uint64_t>(beol.numCuts()));
  for (const CutLayer& c : beol.cuts()) {
    w.str(c.name);
    w.f64(c.res);
    w.f64(c.cap);
    w.i64(c.pitch);
    w.i64(c.size);
    w.b(c.isF2f);
    w.u8(static_cast<std::uint8_t>(c.die));
  }
  w.b(beol.macroDieFlipped());
}

bool decodeBeol(BinReader& r, Beol& out) {
  out = Beol{};
  const std::uint64_t numMetals = r.count(8);
  if (!r.ok()) return false;
  std::vector<MetalLayer> metals;
  for (std::uint64_t i = 0; i < numMetals; ++i) {
    MetalLayer m;
    m.name = r.str();
    const std::uint8_t dir = r.u8();
    m.pitch = r.i64();
    m.width = r.i64();
    m.rPerUm = r.f64();
    m.cPerUm = r.f64();
    const std::uint8_t die = r.u8();
    if (!r.ok() || dir > 1 || die > 1) {
      r.fail();
      return false;
    }
    m.dir = static_cast<LayerDir>(dir);
    m.die = static_cast<DieId>(die);
    metals.push_back(std::move(m));
  }
  const std::uint64_t numCuts = r.count(8);
  // Beol invariant: strict metal/cut alternation (cuts == metals - 1).
  if (!r.ok() || (numMetals == 0 ? numCuts != 0 : numCuts != numMetals - 1)) {
    r.fail();
    return false;
  }
  std::vector<CutLayer> cuts;
  for (std::uint64_t i = 0; i < numCuts; ++i) {
    CutLayer c;
    c.name = r.str();
    c.res = r.f64();
    c.cap = r.f64();
    c.pitch = r.i64();
    c.size = r.i64();
    c.isF2f = r.b();
    const std::uint8_t die = r.u8();
    if (!r.ok() || die > 1) {
      r.fail();
      return false;
    }
    c.die = static_cast<DieId>(die);
    cuts.push_back(std::move(c));
  }
  const bool flipped = r.b();
  if (!r.ok()) return false;
  for (std::uint64_t i = 0; i < numMetals; ++i) {
    out.addMetal(metals[static_cast<std::size_t>(i)]);
    if (i < numCuts) out.addCut(cuts[static_cast<std::size_t>(i)]);
  }
  out.setMacroDieFlipped(flipped);
  return true;
}

void encodeTechNode(BinWriter& w, const TechNode& t) {
  w.str(t.name);
  w.i64(t.siteWidth);
  w.i64(t.rowHeight);
  w.f64(t.vdd);
  encodeBeol(w, t.beol);
}

bool decodeTechNode(BinReader& r, TechNode& out) {
  out = TechNode{};
  out.name = r.str();
  out.siteWidth = r.i64();
  out.rowHeight = r.i64();
  out.vdd = r.f64();
  if (!r.ok()) return false;
  return decodeBeol(r, out.beol);
}

// --- Floorplan -------------------------------------------------------------

void encodeFloorplan(BinWriter& w, const Floorplan& fp) {
  encodeRect(w, fp.die);
  w.u64(fp.blockages.size());
  for (const Blockage& b : fp.blockages) {
    encodeRect(w, b.rect);
    w.f64(b.density);
  }
  w.i64(fp.rowHeight);
  w.i64(fp.siteWidth);
}

bool decodeFloorplan(BinReader& r, Floorplan& out) {
  out = Floorplan{};
  out.die = decodeRect(r);
  const std::uint64_t numBlockages = r.count(40);
  if (!r.ok()) return false;
  out.blockages.resize(static_cast<std::size_t>(numBlockages));
  for (Blockage& b : out.blockages) {
    b.rect = decodeRect(r);
    b.density = r.f64();
  }
  out.rowHeight = r.i64();
  out.siteWidth = r.i64();
  return r.ok();
}

// --- CTS -------------------------------------------------------------------

void encodeCtsResult(BinWriter& w, const CtsResult& cts) {
  w.u64(cts.buffers.size());
  for (const CtsBuffer& b : cts.buffers) {
    w.i32(b.inst);
    w.i32(b.parent);
    w.i32(b.level);
    w.i32(b.inputNet);
    w.i32(b.outputNet);
  }
  w.i32(cts.maxDepth);
  w.f64(cts.estWirelengthUm);
  w.i32(cts.numSinks);
}

bool decodeCtsResult(BinReader& r, CtsResult& out) {
  out = CtsResult{};
  const std::uint64_t numBuffers = r.count(20);
  if (!r.ok()) return false;
  out.buffers.resize(static_cast<std::size_t>(numBuffers));
  for (std::size_t i = 0; i < out.buffers.size(); ++i) {
    CtsBuffer& b = out.buffers[i];
    b.inst = r.i32();
    b.parent = r.i32();
    b.level = r.i32();
    b.inputNet = r.i32();
    b.outputNet = r.i32();
    if (!r.ok() || b.parent < -1 || b.parent >= static_cast<int>(i)) {
      r.fail();
      return false;
    }
  }
  out.maxDepth = r.i32();
  out.estWirelengthUm = r.f64();
  out.numSinks = r.i32();
  return r.ok();
}

// --- Routing ---------------------------------------------------------------

void encodeRoutingResult(BinWriter& w, const RoutingResult& routes) {
  w.u64(routes.nets.size());
  for (const NetRoute& nr : routes.nets) {
    w.b(nr.routed);
    w.u64(nr.segs.size());
    for (const RouteSeg& s : nr.segs) {
      w.b(s.isVia);
      w.i32(s.layer);
      w.i32(s.fromNode);
      w.i32(s.toNode);
    }
  }
  w.f64(routes.totalWirelengthUm);
  encodeDoubleVec(w, routes.wirelengthPerLayerUm);
  encodeI64Vec(w, routes.viasPerCut);
  w.i64(routes.f2fBumps);
  w.i32(routes.overflowedEdges);
  w.i64(routes.totalOverflow);
  w.i32(routes.unroutedNets);
  w.i32(routes.iterationsUsed);
  w.i64(routes.nodesPopped);
  w.i64(routes.nodesRelaxed);
  w.i64(routes.windowFallbacks);
  // Format v3: region-parallel and incremental-ECO statistics.
  w.i32(routes.regionCount);
  w.i64(routes.regionLocalNets);
  w.i64(routes.regionCrossNets);
  w.i64(routes.ecoDirtyGcells);
  w.i64(routes.ecoNetsReused);
  w.i64(routes.ecoNetsRipped);
}

bool decodeRoutingResult(BinReader& r, RoutingResult& out) {
  out = RoutingResult{};
  const std::uint64_t numNets = r.count(9);
  if (!r.ok()) return false;
  out.nets.resize(static_cast<std::size_t>(numNets));
  for (NetRoute& nr : out.nets) {
    nr.routed = r.b();
    const std::uint64_t numSegs = r.count(13);
    if (!r.ok()) return false;
    nr.segs.resize(static_cast<std::size_t>(numSegs));
    for (RouteSeg& s : nr.segs) {
      s.isVia = r.b();
      s.layer = r.i32();
      s.fromNode = r.i32();
      s.toNode = r.i32();
      if (!r.ok() || s.layer < 0 || s.fromNode < 0 || s.toNode < 0) {
        r.fail();
        return false;
      }
    }
  }
  out.totalWirelengthUm = r.f64();
  if (!decodeDoubleVec(r, out.wirelengthPerLayerUm)) return false;
  if (!decodeI64Vec(r, out.viasPerCut)) return false;
  out.f2fBumps = r.i64();
  out.overflowedEdges = r.i32();
  out.totalOverflow = r.i64();
  out.unroutedNets = r.i32();
  out.iterationsUsed = r.i32();
  out.nodesPopped = r.i64();
  out.nodesRelaxed = r.i64();
  out.windowFallbacks = r.i64();
  out.regionCount = r.i32();
  out.regionLocalNets = r.i64();
  out.regionCrossNets = r.i64();
  out.ecoDirtyGcells = r.i64();
  out.ecoNetsReused = r.i64();
  out.ecoNetsRipped = r.i64();
  return r.ok();
}

// --- Parasitics ------------------------------------------------------------

void encodeParasitics(BinWriter& w, const std::vector<NetParasitics>& paras) {
  w.u64(paras.size());
  for (const NetParasitics& p : paras) {
    w.f64(p.wireCap);
    w.f64(p.pinCap);
    w.f64(p.totalRes);
    encodeDoubleVec(w, p.sinkWireDelay);
    encodeDoubleVec(w, p.sinkWireLengthUm);
  }
}

bool decodeParasitics(BinReader& r, std::vector<NetParasitics>& out) {
  out.clear();
  const std::uint64_t n = r.count(40);
  if (!r.ok()) return false;
  out.resize(static_cast<std::size_t>(n));
  for (NetParasitics& p : out) {
    p.wireCap = r.f64();
    p.pinCap = r.f64();
    p.totalRes = r.f64();
    if (!decodeDoubleVec(r, p.sinkWireDelay)) return false;
    if (!decodeDoubleVec(r, p.sinkWireLengthUm)) return false;
  }
  return r.ok();
}

// --- Clock model -----------------------------------------------------------

void encodeClockModel(BinWriter& w, const ClockModel& clock) {
  encodeDoubleVec(w, clock.latency);
  w.i32(clock.maxTreeDepth);
  w.f64(clock.maxLatency);
  w.f64(clock.skew);
  w.f64(clock.uncertainty);
}

bool decodeClockModel(BinReader& r, ClockModel& out) {
  out = ClockModel{};
  if (!decodeDoubleVec(r, out.latency)) return false;
  out.maxTreeDepth = r.i32();
  out.maxLatency = r.f64();
  out.skew = r.f64();
  out.uncertainty = r.f64();
  return r.ok();
}

// --- Verify report ---------------------------------------------------------

void encodeVerifyReport(BinWriter& w, const VerifyReport& rep) {
  w.u64(rep.violations.size());
  for (const Violation& v : rep.violations) {
    w.u8(static_cast<std::uint8_t>(v.kind));
    w.i32(v.net);
    w.i32(v.otherNet);
    w.i32(v.cell);
    w.i32(v.layer);
    encodeRect(w, v.rect);
    w.str(v.detail);
  }
  w.i64(rep.errors);
  w.i64(rep.warnings);
  w.i32(rep.recomputedOverflowedEdges);
  w.i64(rep.recomputedTotalOverflow);
  w.i64(rep.f2fBumpCount);
  encodeI64Vec(w, rep.f2fBumpsPerNet);
}

bool decodeVerifyReport(BinReader& r, VerifyReport& out) {
  out = VerifyReport{};
  const std::uint64_t n = r.count(57);
  if (!r.ok()) return false;
  out.violations.resize(static_cast<std::size_t>(n));
  for (Violation& v : out.violations) {
    const std::uint8_t kind = r.u8();
    v.net = r.i32();
    v.otherNet = r.i32();
    v.cell = r.i32();
    v.layer = r.i32();
    v.rect = decodeRect(r);
    v.detail = r.str();
    if (!r.ok() || kind > static_cast<std::uint8_t>(ViolationKind::kMacroDieLayerLeak)) {
      r.fail();
      return false;
    }
    v.kind = static_cast<ViolationKind>(kind);
  }
  out.errors = r.i64();
  out.warnings = r.i64();
  out.recomputedOverflowedEdges = r.i32();
  out.recomputedTotalOverflow = r.i64();
  out.f2fBumpCount = r.i64();
  if (!decodeI64Vec(r, out.f2fBumpsPerNet)) return false;
  return r.ok();
}

// --- Content hashes --------------------------------------------------------

namespace {
template <typename Encode>
std::uint64_t hashEncoded(Encode&& encode) {
  BinWriter w;
  encode(w);
  return fnv1a64(w.buffer().data(), w.size());
}
}  // namespace

std::uint64_t hashLibrary(const Library& lib) {
  return hashEncoded([&](BinWriter& w) { encodeLibrary(w, lib); });
}
std::uint64_t hashNetlist(const Netlist& nl) {
  return hashEncoded([&](BinWriter& w) { encodeNetlist(w, nl); });
}
std::uint64_t hashTileGroups(const TileGroups& g) {
  return hashEncoded([&](BinWriter& w) { encodeTileGroups(w, g); });
}
std::uint64_t hashBeol(const Beol& beol) {
  return hashEncoded([&](BinWriter& w) { encodeBeol(w, beol); });
}
std::uint64_t hashFloorplan(const Floorplan& fp) {
  return hashEncoded([&](BinWriter& w) { encodeFloorplan(w, fp); });
}

}  // namespace m3d::db
