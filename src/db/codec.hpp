#pragma once

/// \file codec.hpp
/// Binary codecs between the in-memory design objects and design-database
/// section payloads. Encoders are deterministic (fixed field order, id
/// order for containers) so equal state yields equal bytes — the property
/// the content hashes and the byte-identity round-trip tests rely on.
/// Decoders validate structure (enum ranges, cross-references, counts)
/// against the bounds-checked BinReader and report failure through the
/// reader's sticky failed state plus a false return; they never trust a
/// field enough to index with it unchecked.

#include <cstdint>
#include <vector>

#include "cts/cts.hpp"
#include "db/serialize.hpp"
#include "extract/extraction.hpp"
#include "floorplan/floorplan.hpp"
#include "lib/library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/openpiton.hpp"
#include "route/router.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"
#include "verify/verify.hpp"

namespace m3d::db {

// Each pair is symmetric: encodeX appends to the writer exactly what
// decodeX consumes. decodeX returns false (leaving the output in an
// unspecified but safe state) on any structural violation.

void encodeLibrary(BinWriter& w, const Library& lib);
bool decodeLibrary(BinReader& r, Library& out);

/// Netlist payload covers instances/nets/ports only; the Library travels in
/// its own section. \p decode validates every cross-reference against
/// \p out's library and replaces the netlist state in place (object
/// identity — and every outstanding Netlist& — survives the restore).
void encodeNetlist(BinWriter& w, const Netlist& nl);
bool decodeNetlist(BinReader& r, Netlist& out);

void encodeTileGroups(BinWriter& w, const TileGroups& g);
bool decodeTileGroups(BinReader& r, TileGroups& out, int numInstances, int numNets,
                      int numPorts);

void encodeTileConfig(BinWriter& w, const TileConfig& c);
bool decodeTileConfig(BinReader& r, TileConfig& out);

void encodeBeol(BinWriter& w, const Beol& beol);
bool decodeBeol(BinReader& r, Beol& out);

void encodeTechNode(BinWriter& w, const TechNode& t);
bool decodeTechNode(BinReader& r, TechNode& out);

void encodeFloorplan(BinWriter& w, const Floorplan& fp);
bool decodeFloorplan(BinReader& r, Floorplan& out);

void encodeCtsResult(BinWriter& w, const CtsResult& cts);
bool decodeCtsResult(BinReader& r, CtsResult& out);

void encodeRoutingResult(BinWriter& w, const RoutingResult& routes);
bool decodeRoutingResult(BinReader& r, RoutingResult& out);

void encodeParasitics(BinWriter& w, const std::vector<NetParasitics>& paras);
bool decodeParasitics(BinReader& r, std::vector<NetParasitics>& out);

void encodeClockModel(BinWriter& w, const ClockModel& clock);
bool decodeClockModel(BinReader& r, ClockModel& out);

void encodeVerifyReport(BinWriter& w, const VerifyReport& rep);
bool decodeVerifyReport(BinReader& r, VerifyReport& out);

// Content hashes (FNV-1a over the encoded bytes). Used for stage-cache
// keys; hashX(a) == hashX(b) iff encodeX(a) == encodeX(b).
std::uint64_t hashLibrary(const Library& lib);
std::uint64_t hashNetlist(const Netlist& nl);
std::uint64_t hashTileGroups(const TileGroups& g);
std::uint64_t hashBeol(const Beol& beol);
std::uint64_t hashFloorplan(const Floorplan& fp);

}  // namespace m3d::db
