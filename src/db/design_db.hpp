#pragma once

/// \file design_db.hpp
/// Versioned binary container of the design database.
///
/// A DesignDb is an ordered set of named byte sections (each produced by a
/// codec from codec.hpp). On disk (see DESIGN.md, "Design database
/// format"):
///
///   [ 8B magic "M3DDB\r\n\x1a" ][ u32 version ][ u32 sectionCount ]
///   [ u64 tableHash ][ section table ][ payloads... ]
///
/// The section table holds, per section: name (length-prefixed), payload
/// offset (relative to the payload area), payload size, and the payload's
/// FNV-1a hash. tableHash is the FNV-1a of the serialized table bytes, so
/// corruption anywhere — header, table or payload — is detected before any
/// payload is decoded. Loading fails closed: parse() returns a typed
/// DbStatus and leaves the object empty on any error; it never exposes a
/// partially validated file.
///
/// Section order is preserved (insertion order on build, file order on
/// load) and the writers emit sections in a fixed order, so
/// save -> load -> save is byte-identical.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "db/serialize.hpp"

namespace m3d::db {

class DesignDb {
 public:
  /// Container format version. Bump on any incompatible layout change;
  /// loaders reject other versions with DbError::kBadVersion.
  static constexpr std::uint32_t kFormatVersion = 4;  // v4: metrics carry place engine/overflow/iters
  /// 8-byte magic: identifies the format and (via \r\n\x1a) catches text-
  /// mode and truncation mangling early.
  static const char kMagic[9];
  /// Hard cap on sections per file (a corrupt count fails fast).
  static constexpr std::uint32_t kMaxSections = 256;

  /// Adds (or replaces) a section. Insertion order is the file order.
  void setSection(std::string_view name, std::vector<std::uint8_t> payload);

  /// Payload of \p name, or nullptr when absent.
  const std::vector<std::uint8_t>* section(std::string_view name) const;
  /// FNV-1a hash of the section payload (0 when absent).
  std::uint64_t sectionHash(std::string_view name) const;
  std::vector<std::string> sectionNames() const;
  int numSections() const { return static_cast<int>(sections_.size()); }
  void clear() { sections_.clear(); }

  /// Serializes the container (header + table + payloads).
  std::vector<std::uint8_t> serialize() const;

  /// Parses and fully verifies \p bytes (magic, version, table hash, every
  /// section hash). On failure the container is left empty.
  DbStatus parse(const std::vector<std::uint8_t>& bytes);

  /// serialize() + atomic file replacement.
  DbStatus saveFile(const std::string& path) const;
  /// Whole-file read + parse().
  DbStatus loadFile(const std::string& path);

 private:
  struct Section {
    std::string name;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Section> sections_;
};

}  // namespace m3d::db
