#include "db/design_db.hpp"

#include <cstring>

#include "db/hash.hpp"
#include "io/fsutil.hpp"

namespace m3d::db {

const char DesignDb::kMagic[9] = "M3DDB\r\n\x1a";

const char* dbErrorName(DbError e) {
  switch (e) {
    case DbError::kNone: return "none";
    case DbError::kIoError: return "io_error";
    case DbError::kBadMagic: return "bad_magic";
    case DbError::kBadVersion: return "bad_version";
    case DbError::kTruncated: return "truncated";
    case DbError::kHashMismatch: return "hash_mismatch";
    case DbError::kMissingSection: return "missing_section";
    case DbError::kMalformed: return "malformed";
  }
  return "?";
}

void DesignDb::setSection(std::string_view name, std::vector<std::uint8_t> payload) {
  for (Section& s : sections_) {
    if (s.name == name) {
      s.payload = std::move(payload);
      return;
    }
  }
  sections_.push_back(Section{std::string(name), std::move(payload)});
}

const std::vector<std::uint8_t>* DesignDb::section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return &s.payload;
  }
  return nullptr;
}

std::uint64_t DesignDb::sectionHash(std::string_view name) const {
  const std::vector<std::uint8_t>* p = section(name);
  return p == nullptr ? 0 : fnv1a64(p->data(), p->size());
}

std::vector<std::string> DesignDb::sectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const Section& s : sections_) names.push_back(s.name);
  return names;
}

std::vector<std::uint8_t> DesignDb::serialize() const {
  // Table first (into its own buffer so its hash covers exactly its bytes).
  BinWriter table;
  std::uint64_t offset = 0;
  for (const Section& s : sections_) {
    table.str(s.name);
    table.u64(offset);
    table.u64(static_cast<std::uint64_t>(s.payload.size()));
    table.u64(fnv1a64(s.payload.data(), s.payload.size()));
    offset += s.payload.size();
  }
  const std::vector<std::uint8_t>& tableBytes = table.buffer();

  BinWriter out;
  out.bytes(kMagic, 8);
  out.u32(kFormatVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  out.u64(fnv1a64(tableBytes.data(), tableBytes.size()));
  out.bytes(tableBytes.data(), tableBytes.size());
  for (const Section& s : sections_) out.bytes(s.payload.data(), s.payload.size());
  return out.take();
}

DbStatus DesignDb::parse(const std::vector<std::uint8_t>& bytes) {
  sections_.clear();
  BinReader r(bytes);
  char magic[8] = {};
  if (!r.read(magic, 8)) {
    return DbStatus::fail(DbError::kTruncated, "file shorter than the 8-byte magic");
  }
  if (std::memcmp(magic, kMagic, 8) != 0) {
    return DbStatus::fail(DbError::kBadMagic, "not an M3DDB file");
  }
  const std::uint32_t version = r.u32();
  const std::uint32_t count = r.u32();
  const std::uint64_t tableHash = r.u64();
  if (!r.ok()) return DbStatus::fail(DbError::kTruncated, "header truncated");
  if (version != kFormatVersion) {
    return DbStatus::fail(DbError::kBadVersion,
                          "format version " + std::to_string(version) + ", expected " +
                              std::to_string(kFormatVersion));
  }
  if (count > kMaxSections) {
    return DbStatus::fail(DbError::kMalformed,
                          "section count " + std::to_string(count) + " exceeds the cap");
  }

  struct Entry {
    std::string name;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint64_t hash = 0;
  };
  std::vector<Entry> entries;
  entries.reserve(count);
  const std::size_t tableStart = r.position();
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry e;
    e.name = r.str();
    e.offset = r.u64();
    e.size = r.u64();
    e.hash = r.u64();
    if (!r.ok()) return DbStatus::fail(DbError::kTruncated, "section table truncated");
    if (e.name.empty()) return DbStatus::fail(DbError::kMalformed, "empty section name");
    entries.push_back(std::move(e));
  }
  const std::size_t tableEnd = r.position();
  if (fnv1a64(bytes.data() + tableStart, tableEnd - tableStart) != tableHash) {
    return DbStatus::fail(DbError::kHashMismatch, "section table hash mismatch");
  }

  const std::size_t payloadStart = tableEnd;
  const std::size_t payloadSize = bytes.size() - payloadStart;
  std::uint64_t expectedOffset = 0;
  for (const Entry& e : entries) {
    // Offsets must tile the payload area contiguously in table order — the
    // invariant the writer maintains and the byte-identity property needs.
    if (e.offset != expectedOffset) {
      return DbStatus::fail(DbError::kMalformed, "section '" + e.name + "' offset mismatch");
    }
    if (e.size > payloadSize || e.offset > payloadSize - e.size) {
      return DbStatus::fail(DbError::kTruncated,
                            "section '" + e.name + "' runs past the end of the file");
    }
    expectedOffset += e.size;
  }
  if (expectedOffset != payloadSize) {
    return DbStatus::fail(DbError::kTruncated, "payload area size mismatch");
  }
  for (const Entry& e : entries) {
    const std::uint8_t* p = bytes.data() + payloadStart + e.offset;
    if (fnv1a64(p, static_cast<std::size_t>(e.size)) != e.hash) {
      return DbStatus::fail(DbError::kHashMismatch, "section '" + e.name + "' hash mismatch");
    }
  }
  // Fully verified: materialize.
  for (const Entry& e : entries) {
    const std::uint8_t* p = bytes.data() + payloadStart + e.offset;
    sections_.push_back(
        Section{e.name, std::vector<std::uint8_t>(p, p + static_cast<std::size_t>(e.size))});
  }
  return DbStatus::success();
}

DbStatus DesignDb::saveFile(const std::string& path) const {
  std::string err;
  if (!io::atomicWriteFile(path, serialize(), &err)) {
    return DbStatus::fail(DbError::kIoError, err);
  }
  return DbStatus::success();
}

DbStatus DesignDb::loadFile(const std::string& path) {
  sections_.clear();
  std::vector<std::uint8_t> bytes;
  std::string err;
  if (!io::readFileBytes(path, bytes, &err)) {
    return DbStatus::fail(DbError::kIoError, err);
  }
  return parse(bytes);
}

}  // namespace m3d::db
