#include "db/stage_cache.hpp"

#include "io/fsutil.hpp"
#include "obs/log.hpp"

namespace m3d::db {

StageCache::StageCache(std::string dir, bool resume)
    : dir_(std::move(dir)), resume_(resume) {
  if (dir_.empty()) return;
  if (!io::ensureDirectories(dir_)) {
    M3D_LOG(warn) << "stage cache disabled: cannot create directory " << dir_;
    dir_.clear();
  }
}

std::string StageCache::path(int stageIdx, std::string_view stageName,
                             std::uint64_t key) const {
  static const char* kHex = "0123456789abcdef";
  std::string keyHex(16, '0');
  for (int i = 15; i >= 0; --i) {
    keyHex[static_cast<std::size_t>(i)] = kHex[key & 0xF];
    key >>= 4;
  }
  std::string p = dir_;
  p += "/stage";
  p += std::to_string(stageIdx);
  p += '_';
  p.append(stageName.data(), stageName.size());
  p += '_';
  p += keyHex;
  p += ".m3ddb";
  return p;
}

bool StageCache::has(int stageIdx, std::string_view stageName, std::uint64_t key) const {
  return enabled() && io::fileExists(path(stageIdx, stageName, key));
}

}  // namespace m3d::db
