#include "db/stage_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "io/fsutil.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace m3d::db {

namespace fs = std::filesystem;

namespace {

constexpr const char* kIndexName = "cache_index.v1";
constexpr const char* kLockName = "cache_index.lock";
constexpr const char* kIndexMagic = "m3d.cache_index/1";

/// Exclusive advisory lock on the cache directory's lock file. Guards every
/// index mutation across threads and processes (flock is per-open-file, so
/// each locker opens its own descriptor). On platforms without flock the
/// lock degrades to open/close -- single-process use stays correct because
/// all callers still serialize on the index rewrite's atomicity.
class DirLock {
 public:
  explicit DirLock(const std::string& dir) {
#ifdef __unix__
    const std::string lockPath = dir + "/" + kLockName;
    fd_ = ::open(lockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0) {
      while (::flock(fd_, LOCK_EX) != 0) {
        if (errno != EINTR) break;
      }
    }
#else
    (void)dir;
#endif
  }
  ~DirLock() {
#ifdef __unix__
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
#endif
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

 private:
  int fd_ = -1;
};

struct IndexEntry {
  std::uint64_t seq = 0;   ///< LRU order: lower = older.
  std::int64_t bytes = 0;
  std::string name;        ///< file name relative to the cache dir.
};

struct CacheIndex {
  std::uint64_t nextSeq = 1;
  std::vector<IndexEntry> entries;

  std::int64_t totalBytes() const {
    std::int64_t t = 0;
    for (const IndexEntry& e : entries) t += e.bytes;
    return t;
  }

  IndexEntry* find(const std::string& name) {
    for (IndexEntry& e : entries) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }
};

/// Rebuilds the index from a directory scan (missing/corrupt index file, or
/// entries published by a binary that predates the index). Derived state:
/// LRU order degrades to filename order, which is still deterministic.
CacheIndex rebuildFromScan(const std::string& dir) {
  CacheIndex idx;
  std::error_code ec;
  std::vector<std::string> names;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".m3ddb") continue;
    names.push_back(it->path().filename().string());
  }
  std::sort(names.begin(), names.end());
  for (const std::string& n : names) {
    const std::int64_t bytes = io::fileSizeBytes(dir + "/" + n);
    if (bytes < 0) continue;
    idx.entries.push_back(IndexEntry{idx.nextSeq++, bytes, n});
  }
  return idx;
}

/// Parses the index file; falls back to a directory scan on any mismatch.
/// The scan also reconciles entries that exist on disk but are missing from
/// the index (a writer crashed between publish and index update).
CacheIndex loadIndex(const std::string& dir) {
  std::ifstream f(dir + "/" + kIndexName);
  if (!f) return rebuildFromScan(dir);
  CacheIndex idx;
  std::string magic;
  if (!(f >> magic) || magic != kIndexMagic || !(f >> idx.nextSeq)) {
    return rebuildFromScan(dir);
  }
  IndexEntry e;
  while (f >> e.seq >> e.bytes >> e.name) {
    if (e.seq >= idx.nextSeq || e.bytes < 0 || e.name.empty()) {
      return rebuildFromScan(dir);
    }
    // Drop index entries whose file has vanished (external cleanup).
    if (io::fileExists(dir + "/" + e.name)) idx.entries.push_back(e);
  }
  return idx;
}

void saveIndex(const std::string& dir, const CacheIndex& idx) {
  std::ostringstream os;
  os << kIndexMagic << ' ' << idx.nextSeq << '\n';
  for (const IndexEntry& e : idx.entries) {
    os << e.seq << ' ' << e.bytes << ' ' << e.name << '\n';
  }
  const std::string text = os.str();
  std::vector<std::uint8_t> bytes(text.begin(), text.end());
  std::string err;
  if (!io::atomicWriteFile(dir + "/" + kIndexName, bytes, &err)) {
    M3D_LOG(warn) << "stage cache: index write failed: " << err;
  }
}

}  // namespace

StageCache::StageCache(std::string dir, bool resume, StageCacheOptions opt)
    : dir_(std::move(dir)), resume_(resume), opt_(opt) {
  if (dir_.empty()) return;
  if (!io::ensureDirectories(dir_)) {
    M3D_LOG(warn) << "stage cache disabled: cannot create directory " << dir_;
    dir_.clear();
  }
}

std::string StageCache::path(int stageIdx, std::string_view stageName,
                             std::uint64_t key) const {
  static const char* kHex = "0123456789abcdef";
  std::string keyHex(16, '0');
  for (int i = 15; i >= 0; --i) {
    keyHex[static_cast<std::size_t>(i)] = kHex[key & 0xF];
    key >>= 4;
  }
  std::string p = dir_;
  p += "/stage";
  p += std::to_string(stageIdx);
  p += '_';
  p.append(stageName.data(), stageName.size());
  p += '_';
  p += keyHex;
  p += ".m3ddb";
  return p;
}

bool StageCache::has(int stageIdx, std::string_view stageName, std::uint64_t key) const {
  return enabled() && io::fileExists(path(stageIdx, stageName, key));
}

void StageCache::noteStored(const std::string& entryPath) {
  if (!enabled()) return;
  const std::string name = fs::path(entryPath).filename().string();
  DirLock lock(dir_);
  CacheIndex idx = loadIndex(dir_);
  const std::int64_t bytes = io::fileSizeBytes(entryPath);
  if (IndexEntry* e = idx.find(name)) {
    e->seq = idx.nextSeq++;
    if (bytes >= 0) e->bytes = bytes;
  } else if (bytes >= 0) {
    idx.entries.push_back(IndexEntry{idx.nextSeq++, bytes, name});
  }
  // LRU eviction under the byte budget; the entry just published is exempt
  // (evicting it would turn its own run's restore into a guaranteed miss).
  if (opt_.maxBytes > 0) {
    while (idx.totalBytes() > opt_.maxBytes) {
      std::size_t victim = idx.entries.size();
      std::uint64_t oldest = ~0ull;
      for (std::size_t i = 0; i < idx.entries.size(); ++i) {
        if (idx.entries[i].name == name) continue;
        if (idx.entries[i].seq < oldest) {
          oldest = idx.entries[i].seq;
          victim = i;
        }
      }
      if (victim == idx.entries.size()) break;  // only the new entry remains
      const IndexEntry& v = idx.entries[victim];
      std::error_code ec;
      fs::remove(dir_ + "/" + v.name, ec);
      obs::counter("db.stage_cache_evictions").add(1);
      obs::counter("db.stage_cache_evicted_bytes").add(v.bytes);
      M3D_LOG(debug) << "stage cache: evicted " << v.name << " (" << v.bytes << " B, LRU)";
      idx.entries.erase(idx.entries.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  obs::gauge("db.stage_cache_bytes").set(static_cast<double>(idx.totalBytes()));
  saveIndex(dir_, idx);
}

void StageCache::noteUsed(const std::string& entryPath) {
  if (!enabled()) return;
  const std::string name = fs::path(entryPath).filename().string();
  DirLock lock(dir_);
  CacheIndex idx = loadIndex(dir_);
  if (IndexEntry* e = idx.find(name)) {
    e->seq = idx.nextSeq++;
  }
  saveIndex(dir_, idx);
}

void StageCache::removeEntry(const std::string& entryPath) {
  if (!enabled()) return;
  const std::string name = fs::path(entryPath).filename().string();
  DirLock lock(dir_);
  CacheIndex idx = loadIndex(dir_);
  std::error_code ec;
  fs::remove(dir_ + "/" + name, ec);
  for (std::size_t i = 0; i < idx.entries.size(); ++i) {
    if (idx.entries[i].name == name) {
      idx.entries.erase(idx.entries.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  saveIndex(dir_, idx);
}

std::int64_t StageCache::indexedBytes() const {
  if (!enabled()) return -1;
  DirLock lock(dir_);
  return loadIndex(dir_).totalBytes();
}

}  // namespace m3d::db
