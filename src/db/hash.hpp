#pragma once

/// \file hash.hpp
/// Content hashing for the design database and the stage cache: 64-bit
/// FNV-1a over raw bytes, plus a typed incremental HashStream used to build
/// stage-cache keys from heterogeneous option fields. Dependency-free by
/// design (the repo bakes in no hashing library) and stable across
/// platforms: every multi-byte value is folded in little-endian order, so a
/// key computed on one machine matches any other.

#include <cstdint>
#include <cstring>
#include <string_view>

namespace m3d::db {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over \p n bytes, continuing from \p seed (chainable).
inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t seed = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnvPrime;
  }
  return h;
}

/// Incremental typed hasher. Strings are length-prefixed and every scalar
/// is tagged with its width, so field boundaries cannot alias ("ab"+"c"
/// hashes differently from "a"+"bc").
class HashStream {
 public:
  void bytes(const void* data, std::size_t n) { h_ = fnv1a64(data, n, h_); }

  void u8(std::uint8_t v) { fixed(&v, sizeof v); }
  void u32(std::uint32_t v) { fixed(&v, sizeof v); }
  void u64(std::uint64_t v) { fixed(&v, sizeof v); }
  void i32(std::int32_t v) { fixed(&v, sizeof v); }
  void i64(std::int64_t v) { fixed(&v, sizeof v); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// Doubles are hashed by bit pattern: two values contribute identically
  /// iff they are bitwise identical (matches the bit-identity contract of
  /// the deterministic flows).
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    fixed(&bits, sizeof bits);
  }
  void str(std::string_view s) {
    u64(static_cast<std::uint64_t>(s.size()));
    bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return h_; }

 private:
  /// Folds a scalar in little-endian byte order regardless of host
  /// endianness, with a leading width tag.
  void fixed(const void* data, std::size_t n) {
    unsigned char le[8];
    std::memcpy(le, data, n);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    for (std::size_t i = 0; i < n / 2; ++i) {
      const unsigned char t = le[i];
      le[i] = le[n - 1 - i];
      le[n - 1 - i] = t;
    }
#endif
    const auto tag = static_cast<unsigned char>(n);
    h_ = fnv1a64(&tag, 1, h_);
    h_ = fnv1a64(le, n, h_);
  }

  std::uint64_t h_ = kFnvOffsetBasis;
};

/// Order-dependent combination of two digests (used to chain stage keys).
inline std::uint64_t mixHash(std::uint64_t a, std::uint64_t b) {
  HashStream hs;
  hs.u64(a);
  hs.u64(b);
  return hs.digest();
}

}  // namespace m3d::db
