#pragma once

/// \file stage_cache.hpp
/// Content-addressed on-disk cache of pipeline stage checkpoints.
///
/// Each of the seven flow_common pipeline stages has a 64-bit content key:
/// a chained hash of the pipeline entry state (library, netlist, floorplan,
/// tile groups), the stage name, and the FlowOptions subset that stage
/// actually reads (see flows/flow_checkpoint.hpp for the key recipe). The
/// cache is purely a filename convention over a directory:
///
///   <dir>/stage<idx>_<name>_<key-hex>.m3ddb
///
/// so a cache hit is an existence check and validity is implied by the key
/// (content-addressed entries are immutable; a config or input change
/// yields a different key, never a stale read). Corrupt or truncated files
/// are detected by the DesignDb loader at restore time and treated as
/// misses. Thread counts never enter a key: the deterministic-parallelism
/// contract makes results bit-identical at any count, so checkpoints are
/// shared across thread configurations.

#include <cstdint>
#include <string>
#include <string_view>

namespace m3d::db {

class StageCache {
 public:
  /// Disabled cache: enabled() == false, every query misses.
  StageCache() = default;

  /// Cache over \p dir (created on demand). \p resume gates restoring:
  /// when false the cache still records checkpoints but never reads them
  /// (cold run that warms the cache).
  StageCache(std::string dir, bool resume);

  bool enabled() const { return !dir_.empty(); }
  bool resumeEnabled() const { return enabled() && resume_; }
  const std::string& dir() const { return dir_; }

  /// Checkpoint file path of (\p stageIdx, \p stageName, \p key).
  std::string path(int stageIdx, std::string_view stageName, std::uint64_t key) const;
  /// True when the checkpoint file exists (the cache-hit test).
  bool has(int stageIdx, std::string_view stageName, std::uint64_t key) const;

 private:
  std::string dir_;
  bool resume_ = true;
};

}  // namespace m3d::db
