#pragma once

/// \file stage_cache.hpp
/// Content-addressed on-disk cache of pipeline stage checkpoints, safe for
/// concurrent multi-job (and multi-process) use.
///
/// Each of the seven flow_common pipeline stages has a 64-bit content key:
/// a chained hash of the pipeline entry state (library, netlist, floorplan,
/// tile groups), the stage name, and the FlowOptions subset that stage
/// actually reads (see flows/flow_checkpoint.hpp for the key recipe). The
/// cache is a filename convention over a directory:
///
///   <dir>/stage<idx>_<name>_<key-hex>.m3ddb
///
/// so a cache hit is an existence check and validity is implied by the key
/// (content-addressed entries are immutable; a config or input change
/// yields a different key, never a stale read). Corrupt or truncated files
/// are detected by the DesignDb loader at restore time and treated as
/// misses. Thread counts never enter a key: the deterministic-parallelism
/// contract makes results bit-identical at any count, so checkpoints are
/// shared across thread configurations.
///
/// Concurrency model (the m3d_serve shared-cache contract)
/// -------------------------------------------------------
/// - Entry files are immutable once published and written via unique-temp
///   atomic replacement (io::atomicWriteFile), so a reader never parses a
///   torn file. Two jobs racing on the same key deterministically compute
///   identical bytes; whichever rename lands last wins whole.
/// - Bookkeeping (LRU order, total size, eviction) lives in a single-writer
///   index file, <dir>/cache_index.v1, mutated only under an exclusive OS
///   file lock on <dir>/cache_index.lock -- one writer at a time across all
///   threads AND processes sharing the directory. A missing or corrupt
///   index is rebuilt from a directory scan; it is derived state, never
///   authoritative for entry validity.
/// - Eviction: when StageCacheOptions::maxBytes > 0, publishing an entry
///   evicts least-recently-used entries (lowest index sequence number)
///   until the directory fits the budget; the entry just published is never
///   evicted. Hits bump an entry's sequence number (noteUsed). A reader
///   that loses the race with an eviction simply misses and recomputes --
///   the fail-closed restore path makes that safe.
/// Counters: db.stage_cache_evictions, db.stage_cache_evicted_bytes, and
/// the db.stage_cache_bytes gauge surface through the obs run report.

#include <cstdint>
#include <string>
#include <string_view>

namespace m3d::db {

/// Behavior knobs of the shared stage cache.
struct StageCacheOptions {
  /// Byte budget of the cache directory (entry payloads only). 0 keeps the
  /// cache unbounded; > 0 enables LRU eviction at publish time.
  std::int64_t maxBytes = 0;
};

class StageCache {
 public:
  /// Disabled cache: enabled() == false, every query misses.
  StageCache() = default;

  /// Cache over \p dir (created on demand). \p resume gates restoring:
  /// when false the cache still records checkpoints but never reads them
  /// (cold run that warms the cache).
  StageCache(std::string dir, bool resume, StageCacheOptions opt = {});

  bool enabled() const { return !dir_.empty(); }
  bool resumeEnabled() const { return enabled() && resume_; }
  const std::string& dir() const { return dir_; }
  const StageCacheOptions& options() const { return opt_; }

  /// Checkpoint file path of (\p stageIdx, \p stageName, \p key).
  std::string path(int stageIdx, std::string_view stageName, std::uint64_t key) const;
  /// True when the checkpoint file exists (the cache-hit test).
  bool has(int stageIdx, std::string_view stageName, std::uint64_t key) const;

  /// Publishes a just-written entry file: under the index lock, records it
  /// as most recently used and evicts LRU entries while the directory
  /// exceeds the byte budget (the published entry is exempt). Call after a
  /// successful atomic write of \p entryPath.
  void noteStored(const std::string& entryPath);
  /// LRU touch: under the index lock, bumps \p entryPath to most recently
  /// used. Call after a successful restore from the entry.
  void noteUsed(const std::string& entryPath);
  /// Self-heal: unlinks \p entryPath and drops its index record, under the
  /// index lock. Called when a restore finds the entry corrupt (a torn
  /// write from a crashed producer), so the recomputing run can re-publish
  /// a good copy instead of the stale bytes shadowing the key forever.
  void removeEntry(const std::string& entryPath);

  /// Total entry bytes currently indexed (reads the index under the lock;
  /// rebuilds it from a directory scan when missing/corrupt). -1 when the
  /// cache is disabled.
  std::int64_t indexedBytes() const;

 private:
  std::string dir_;
  bool resume_ = true;
  StageCacheOptions opt_;
};

}  // namespace m3d::db
